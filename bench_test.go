// Benchmarks, one per table/figure of the paper's evaluation (see
// DESIGN.md for the experiment index) plus ablations of the design
// choices. cmd/dpbench runs the same experiments at paper scale and
// prints the full tables; these benches keep instances small enough for
// "go test -bench=.". Shape metrics (speedup, efficiency, peak edges)
// are attached with b.ReportMetric.
package dpgen

import (
	"testing"

	"dpgen/internal/balance"
	"dpgen/internal/ehrhart"
	"dpgen/internal/engine"
	"dpgen/internal/fm"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
	"dpgen/internal/obs"
	"dpgen/internal/problems"
	"dpgen/internal/simsched"
	"dpgen/internal/tiling"
	"dpgen/internal/workload"
)

func benchTiling(b *testing.B, name string, width int64) *tiling.Tiling {
	b.Helper()
	p, err := problems.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	sp := *p.Spec
	if width > 0 {
		w := make([]int64, len(sp.Vars))
		for i := range w {
			w[i] = width
		}
		sp.TileWidths = w
	}
	tl, err := tiling.New(&sp)
	if err != nil {
		b.Fatal(err)
	}
	return tl
}

func benchKernel(b *testing.B, name string) engine.Kernel {
	b.Helper()
	p, err := problems.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return p.Kernel
}

// BenchmarkFig1Bandit2 measures the hybrid solve of the Section II
// problem (whose value the tests verify bit-exactly against Figure 1).
func BenchmarkFig1Bandit2(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	kernel := benchKernel(b, "bandit2")
	params := []int64{30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(tl, kernel, params, engine.Config{Nodes: 2, Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerOverhead runs the BenchmarkFig1Bandit2 workload with
// tracing disabled (the shipping default: one nil check per event
// site) and enabled (a fresh tracer per run), so the two can be
// compared directly; Disabled must stay within noise of
// BenchmarkFig1Bandit2 itself.
func BenchmarkTracerOverhead(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	kernel := benchKernel(b, "bandit2")
	params := []int64{30}
	b.Run("Disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(tl, kernel, params, engine.Config{Nodes: 2, Threads: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracer := obs.NewTracer()
			if _, err := engine.Run(tl, kernel, params, engine.Config{Nodes: 2, Threads: 2, Tracer: tracer}); err != nil {
				b.Fatal(err)
			}
			if tr := tracer.Snapshot(); len(tr.Events) == 0 {
				b.Fatal("enabled tracer recorded nothing")
			}
		}
	})
}

// BenchmarkTracerOverheadDistributed is the cross-rank sibling of
// BenchmarkTracerOverhead: a two-rank lcs2 job over real loopback TCP,
// with tracing disabled (the shipping default — DATA frames still carry
// the aligned send timestamp, but no trace events are recorded) and
// enabled (a tracer per rank, as `dprun -launch -trace` runs). Each
// iteration includes the mesh dial and clock-sync handshake, matching
// what a distributed run pays end to end.
func BenchmarkTracerOverheadDistributed(b *testing.B) {
	p, err := problems.Get("lcs2")
	if err != nil {
		b.Fatal(err)
	}
	params := p.DefaultParams
	b.Run("Disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runDistributedTCP(b, p, params, 2, 2)
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracers := make([]*obs.Tracer, 2)
			runDistributedTCPOpts(b, p, params, 2, 2, nil, func(r int, c *engine.Config) {
				tracers[r] = obs.NewTracer()
				c.Tracer = tracers[r]
			})
			for r, tr := range tracers {
				if len(tr.Snapshot().Events) == 0 {
					b.Fatalf("rank %d tracer recorded nothing", r)
				}
			}
		}
	})
}

// BenchmarkFig2Balance measures the Ehrhart-weighted prefix balancer
// across 3 nodes and reports the achieved imbalance.
func BenchmarkFig2Balance(b *testing.B) {
	tl := benchTiling(b, "bandit2", 4)
	params := []int64{40}
	var im float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := balance.Build(tl, params, 3, balance.Prefix)
		if err != nil {
			b.Fatal(err)
		}
		im = a.Imbalance()
	}
	b.ReportMetric(im, "imbalance")
}

// BenchmarkFig3LoopGen measures the full generation-time analysis
// (Fourier–Motzkin projections, loop-bound synthesis, pack nests).
func BenchmarkFig3LoopGen(b *testing.B) {
	p, err := problems.Get("bandit2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.New(p.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig45Memory runs the priority-policy memory experiment and
// reports the peak buffered edges under each policy.
func BenchmarkFig45Memory(b *testing.B) {
	tl := benchTiling(b, "bandit2", 4)
	kernel := benchKernel(b, "bandit2")
	params := []int64{20}
	for _, tc := range []struct {
		name string
		prio engine.Priority
	}{{"ColumnMajor", engine.ColumnMajor}, {"LevelSet", engine.LevelSet}} {
		b.Run(tc.name, func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(tl, kernel, params, engine.Config{Priority: tc.prio})
				if err != nil {
					b.Fatal(err)
				}
				peak = res.Stats[0].PeakPendingEdges
			}
			b.ReportMetric(float64(peak), "peak-edges")
		})
	}
}

// BenchmarkFig6SharedScaling simulates the 24-core shared-memory point
// of Figure 6 and reports the speedup.
func BenchmarkFig6SharedScaling(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	params := []int64{90}
	cache := simsched.NewCostCache()
	var sp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simsched.Simulate(tl, params, simsched.Config{Nodes: 1, Cores: 24, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		sp = res.Speedup()
	}
	b.ReportMetric(sp, "speedup-24c")
}

// BenchmarkFig7WeakScaling simulates the 8-node point of Figure 7 and
// reports per-location-normalized efficiency against a 1-node run.
func BenchmarkFig7WeakScaling(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	base, err := simsched.Simulate(tl, []int64{60}, simsched.Config{Nodes: 1, Cores: 24})
	if err != nil {
		b.Fatal(err)
	}
	basePerLoc := base.Makespan / float64(base.TotalCells)
	cache := simsched.NewCostCache()
	var eff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simsched.Simulate(tl, []int64{103}, simsched.Config{Nodes: 8, Cores: 24, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		eff = basePerLoc / (res.Makespan * 8 / float64(res.TotalCells))
	}
	b.ReportMetric(100*eff, "weak-eff-%")
}

// BenchmarkTileWidthSweep simulates the Section VI-C tile-size effect at
// two widths on 8 nodes.
func BenchmarkTileWidthSweep(b *testing.B) {
	for _, w := range []int64{6, 24} {
		tl := benchTiling(b, "bandit2", w)
		cache := simsched.NewCostCache()
		cost := simsched.DefaultCostModel()
		cost.TileOverhead = 20e-6
		b.Run(map[int64]string{6: "w6", 24: "w24"}[w], func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				res, err := simsched.Simulate(tl, []int64{120}, simsched.Config{
					Nodes: 8, Cores: 24, Cache: cache, Cost: cost,
				})
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
			}
			b.ReportMetric(mk*1e3, "makespan-ms")
		})
	}
}

// BenchmarkBufferSweep simulates the Section VI-C send-buffer effect.
func BenchmarkBufferSweep(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	cost := simsched.DefaultCostModel()
	cost.MsgLatency = 100e-6
	for _, bufs := range []int{1, 16} {
		cache := simsched.NewCostCache()
		b.Run(map[int]string{1: "bufs1", 16: "bufs16"}[bufs], func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				res, err := simsched.Simulate(tl, []int64{60}, simsched.Config{
					Nodes: 8, Cores: 24, SendBufs: bufs, Cost: cost, Cache: cache,
				})
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
			}
			b.ReportMetric(mk*1e3, "makespan-ms")
		})
	}
}

// BenchmarkInitialTiles measures the serial initial-tile generation scan
// of Section IV-K.
func BenchmarkInitialTiles(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	params := []int64{100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		initial, total := tl.InitialTiles(params)
		if len(initial) == 0 || total == 0 {
			b.Fatal("no tiles")
		}
	}
}

// BenchmarkPendingMemory measures a full run and reports the peak
// buffered-edge memory relative to the full-space table (Section V-B).
func BenchmarkPendingMemory(b *testing.B) {
	tl := benchTiling(b, "bandit2", 5)
	kernel := benchKernel(b, "bandit2")
	N := int64(40)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Run(tl, kernel, []int64{N}, engine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		loc := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
		ratio = float64(res.Stats[0].PeakBufferedElems) / float64(loc)
	}
	b.ReportMetric(100*ratio, "peak/space-%")
}

// BenchmarkFig8Hyperplane simulates the hyperplane balancer (Fig 8).
func BenchmarkFig8Hyperplane(b *testing.B) {
	tl := benchTiling(b, "bandit2", 5)
	for _, tc := range []struct {
		name string
		m    balance.Method
	}{{"Prefix", balance.Prefix}, {"Hyperplane", balance.Hyperplane}} {
		cache := simsched.NewCostCache()
		b.Run(tc.name, func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				res, err := simsched.Simulate(tl, []int64{60}, simsched.Config{
					Nodes: 4, Cores: 24, Balance: tc.m, Cache: cache,
				})
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
			}
			b.ReportMetric(mk*1e3, "makespan-ms")
		})
	}
}

// ---- ablations ----

// BenchmarkFMRedundancy compares Fourier–Motzkin with syntactic-only
// deduplication against full simplex redundancy pruning, reporting the
// surviving constraint counts.
func BenchmarkFMRedundancy(b *testing.B) {
	// A pairwise-constrained system where Fourier–Motzkin famously
	// multiplies constraints: x_i + x_j <= N for all i < j, x_i >= 0;
	// eliminating the middle variables squares the count per step unless
	// redundancy is pruned.
	vars := []string{"x1", "x2", "x3", "x4", "x5", "x6"}
	s := lin.MustSpace([]string{"N"}, vars)
	sys := lin.NewSystem(s)
	for i := range vars {
		sys.AddGE(lin.Var(s, vars[i]), lin.Zero(s))
		for j := i + 1; j < len(vars); j++ {
			sys.AddLE(lin.Var(s, vars[i]).Add(lin.Var(s, vars[j])), lin.Var(s, "N"))
		}
	}
	for _, tc := range []struct {
		name string
		opts fm.Options
	}{
		{"Syntactic", fm.Options{Prune: fm.PruneSyntactic}},
		{"Simplex", fm.Options{Prune: fm.PruneSimplex}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				out, err := fm.EliminateAll(sys, vars[1:5], tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				n = len(out.Ineqs)
			}
			b.ReportMetric(float64(n), "constraints")
		})
	}
}

// BenchmarkPackedVsWhole reports the communication saving of packed edge
// slabs against shipping whole tiles (Section IV-I: one bandit edge is
// w^3 of a w^4 tile).
func BenchmarkPackedVsWhole(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	params := []int64{60}
	var packed, whole int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed, whole = 0, 0
		tl.ForEachTile(params, func(t []int64) bool {
			tc := append([]int64(nil), t...)
			for j := range tl.TileDeps {
				packed += tl.EdgeSize(params, tc, j)
				whole += tl.AllocLen
			}
			return true
		})
	}
	b.ReportMetric(float64(whole)/float64(packed), "whole/packed")
}

// BenchmarkEhrhart measures quasi-polynomial reconstruction for the
// bandit space (the paper's Barvinok step).
func BenchmarkEhrhart(b *testing.B) {
	p, err := problems.Get("bandit2")
	if err != nil {
		b.Fatal(err)
	}
	nest, err := loopgen.Build(p.Spec.System(), p.Spec.Order(), fm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ehrhart.Interpolate(nest, ehrhart.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures end-to-end program generation (spec to
// formatted standalone source).
func BenchmarkGenerate(b *testing.B) {
	p, err := problems.Get("bandit2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p.Spec, GenOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCellThroughput reports the in-process runtime's cell
// rate on the 2-arm bandit kernel (single node, single thread).
func BenchmarkEngineCellThroughput(b *testing.B) {
	tl := benchTiling(b, "bandit2", 6)
	kernel := benchKernel(b, "bandit2")
	N := int64(40)
	cells := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(tl, kernel, []int64{N}, engine.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkEnginePaperBandit2 runs the 2-arm bandit at the paper's
// N=100 on a single node, with the interior fast path on (default) and
// forced off, reporting ns/cell. The snapshot in BENCH_engine.json is
// produced from the same workload by cmd/dpbench -bench-json.
func BenchmarkEnginePaperBandit2(b *testing.B) {
	tl := benchTiling(b, "bandit2", 0)
	kernel := benchKernel(b, "bandit2")
	N := int64(100)
	cells := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	for _, tc := range []struct {
		name string
		slow bool
	}{{"Fast", false}, {"Boundary", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(tl, kernel, []int64{N}, engine.Config{DisableFastPath: tc.slow}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(cells)*1e9, "ns/cell")
		})
	}
}

// BenchmarkEnginePaperLCS2 runs pairwise LCS on 2000-base DNA strings
// (the paper's string-problem scale) on a single node, fast path on and
// off, reporting ns/cell.
func BenchmarkEnginePaperLCS2(b *testing.B) {
	p := problems.LCS2(workload.DNA(2000, 9), workload.DNA(2000, 10))
	tl, err := tiling.New(p.Spec)
	if err != nil {
		b.Fatal(err)
	}
	params := p.DefaultParams
	cells := (params[0] + 1) * (params[1] + 1)
	for _, tc := range []struct {
		name string
		slow bool
	}{{"Fast", false}, {"Boundary", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(tl, p.Kernel, params, engine.Config{DisableFastPath: tc.slow}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(cells)*1e9, "ns/cell")
		})
	}
}

// BenchmarkEngineNonserial runs the three bounded-template builtins —
// matrix-chain multiplication, optimal binary search trees, and the
// bounded knapsack — at their default parameters on a single node,
// reporting ns/cell. These are the range/variable-distance dependence
// paths (footprint unpacking, per-cell length clamps) that the
// constant-offset benchmarks above never touch.
func BenchmarkEngineNonserial(b *testing.B) {
	for _, name := range []string{"mcm", "obst", "knap"} {
		b.Run(name, func(b *testing.B) {
			p, err := problems.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			tl, err := tiling.New(p.Spec)
			if err != nil {
				b.Fatal(err)
			}
			var cells int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(tl, p.Kernel, p.DefaultParams, engine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				cells = 0
				for _, st := range res.Stats {
					cells += st.CellsComputed
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(cells)*1e9, "ns/cell")
		})
	}
}

// BenchmarkSimplexRedundant measures the exact-rational redundancy test.
func BenchmarkSimplexRedundant(b *testing.B) {
	s := lin.MustSpace([]string{"N"}, []string{"x", "y"})
	sys := lin.NewSystem(s)
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "N"))
	sys.AddLE(lin.Var(s, "x").Add(lin.Var(s, "y")), lin.Var(s, "N").AddConst(5))
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fm.Simplify(sys, fm.Options{Prune: fm.PruneSimplex}); err != nil {
			b.Fatal(err)
		}
	}
}
