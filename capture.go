package dpgen

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Table is a concurrency-safe store of computed cell values, supporting
// the solution-recovery pattern of the paper's Section VII-A: the
// generated programs normally discard interior values, so a caller who
// wants a traceback captures them during the run and walks the table
// afterwards.
//
// Use NewTable to build one and pass its Hook as Config.OnCell.
type Table struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewTable creates an empty table.
func NewTable() *Table { return &Table{m: make(map[string]float64)} }

// Hook returns an OnCell callback that records every computed cell.
func (t *Table) Hook() func(x []int64, v float64) {
	return func(x []int64, v float64) {
		k := key(x)
		t.mu.Lock()
		t.m[k] = v
		t.mu.Unlock()
	}
}

// Get returns the value at x and whether it was computed.
func (t *Table) Get(x ...int64) (float64, bool) {
	t.mu.Lock()
	v, ok := t.m[key(x)]
	t.mu.Unlock()
	return v, ok
}

// At returns the value at x, panicking if the cell was never computed —
// convenient inside tracebacks where absence is a logic error.
func (t *Table) At(x ...int64) float64 {
	v, ok := t.Get(x...)
	if !ok {
		panic(fmt.Sprintf("dpgen: Table.At(%v): cell not captured", x))
	}
	return v
}

// Len returns the number of captured cells.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func key(x []int64) string {
	var b strings.Builder
	for _, v := range x {
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(',')
	}
	return b.String()
}
