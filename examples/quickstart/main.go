// Quickstart: solve the paper's running example — the 2-arm Bernoulli
// bandit of Section II — on the in-process hybrid runtime, and check the
// answer against the straightforward serial recursion of Figure 1.
//
//	go run ./examples/quickstart [-N 40] [-nodes 4] [-threads 6]
package main

import (
	"flag"
	"fmt"
	"log"

	"dpgen"
)

func main() {
	var (
		N       = flag.Int64("N", 40, "number of trials")
		nodes   = flag.Int("nodes", 4, "simulated MPI ranks")
		threads = flag.Int("threads", 6, "worker threads per node")
	)
	flag.Parse()

	// Built-in problems bundle the generator spec, the center-loop
	// kernel, and an independent serial solver.
	problem, err := dpgen.Builtin("bandit2")
	if err != nil {
		log.Fatal(err)
	}

	res, err := dpgen.RunProblem(problem, []int64{*N}, dpgen.Config{
		Nodes:   *nodes,
		Threads: *threads,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2-arm bandit, N = %d trials, uniform priors\n", *N)
	fmt.Printf("expected successes under optimal play: V(0) = %.12f\n", res.Value)
	fmt.Printf("(%d nodes x %d threads, %d tile edges exchanged, %s total)\n",
		*nodes, *threads, res.Messages, res.TotalTime)

	want := problem.Serial([]int64{*N})
	if res.Value != want {
		log.Fatalf("MISMATCH: serial solver says %.12f", want)
	}
	fmt.Println("matches the serial Figure 1 recursion bit-for-bit")

	// Always-pull-arm-1 baseline: expected successes of a fixed design.
	// The adaptive value must beat it (that is the point of bandits).
	fixed := fixedArmValue(*N)
	fmt.Printf("fixed single-arm design achieves %.12f — adaptive gain %.2f%%\n",
		fixed, 100*(res.Value-fixed)/fixed)

	// The nodes above are simulated in this process. To run the same
	// problem with each rank in its own OS process over TCP, see
	// examples/distributed (or: dprun -problem bandit2 -distributed
	// -launch 2 -check).
}

// fixedArmValue computes the expected successes when always pulling one
// arm with a uniform prior: sum over trials of E[p | history]. By
// exchangeability this is N * E[p] = N/2.
func fixedArmValue(N int64) float64 { return float64(N) / 2 }
