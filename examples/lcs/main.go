// Longest common subsequence of three DNA strings, with solution
// recovery (the traceback of Section VII-A): the run captures every cell
// value through the OnCell hook and walks the table from the goal to
// reconstruct an actual common subsequence, not just its length.
//
//	go run ./examples/lcs [-len 36] [-seed 11] [-nodes 2] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"dpgen"
)

func dna(n int, seed uint64) string {
	s := seed
	b := make([]byte, n)
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = "ACGT"[(s>>33)%4]
	}
	return string(b)
}

func main() {
	var (
		length  = flag.Int("len", 36, "sequence length")
		seed    = flag.Uint64("seed", 11, "workload seed")
		nodes   = flag.Int("nodes", 2, "simulated MPI ranks")
		threads = flag.Int("threads", 4, "worker threads per node")
	)
	flag.Parse()

	a := dna(*length, *seed)
	b := dna(*length-2, *seed+1)
	c := dna(*length-4, *seed+2)

	sp, err := dpgen.NewSpec("lcs3", []string{"LA", "LB", "LC"}, []string{"i", "j", "k"})
	if err != nil {
		log.Fatal(err)
	}
	for _, cons := range []string{"0 <= i <= LA", "0 <= j <= LB", "0 <= k <= LC"} {
		if err := sp.Constrain(cons); err != nil {
			log.Fatal(err)
		}
	}
	sp.AddDep("di", 1, 0, 0)
	sp.AddDep("dj", 0, 1, 0)
	sp.AddDep("dk", 0, 0, 1)
	sp.AddDep("diag", 1, 1, 1)
	sp.TileWidths = []int64{8, 8, 8}
	sp.LBDims = []string{"i", "j"}

	kernel := func(cx *dpgen.Ctx) {
		i, j, k := cx.X[0], cx.X[1], cx.X[2]
		if cx.DepValid[3] && a[i] == b[j] && a[i] == c[k] {
			cx.V[cx.Loc] = 1 + cx.V[cx.DepLoc[3]]
			return
		}
		var best float64
		for m := 0; m < 3; m++ {
			if cx.DepValid[m] && cx.V[cx.DepLoc[m]] > best {
				best = cx.V[cx.DepLoc[m]]
			}
		}
		cx.V[cx.Loc] = best
	}

	// Capture the full table for the traceback (Section VII-A notes the
	// generated programs discard interior values; the OnCell hook is this
	// library's way to keep what a traceback needs).
	var mu sync.Mutex
	table := map[[3]int64]float64{}
	params := []int64{int64(len(a)), int64(len(b)), int64(len(c))}
	res, err := dpgen.Run(sp, kernel, params, dpgen.Config{
		Nodes: *nodes, Threads: *threads,
		OnCell: func(x []int64, v float64) {
			mu.Lock()
			table[[3]int64{x[0], x[1], x[2]}] = v
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("A: %s\nB: %s\nC: %s\n", a, b, c)
	fmt.Printf("LCS length: %.0f\n", res.Value)

	// Traceback: greedily follow any move that preserves the value.
	var lcs []byte
	i, j, k := int64(0), int64(0), int64(0)
	LA, LB, LC := int64(len(a)), int64(len(b)), int64(len(c))
	for i < LA && j < LB && k < LC {
		cur := table[[3]int64{i, j, k}]
		if a[i] == b[j] && a[i] == c[k] && cur == 1+table[[3]int64{i + 1, j + 1, k + 1}] {
			lcs = append(lcs, a[i])
			i, j, k = i+1, j+1, k+1
			continue
		}
		switch cur {
		case table[[3]int64{i + 1, j, k}]:
			i++
		case table[[3]int64{i, j + 1, k}]:
			j++
		default:
			k++
		}
	}
	fmt.Printf("one LCS:    %s\n", lcs)
	if int64(len(lcs)) != int64(res.Value) {
		log.Fatalf("traceback recovered %d characters, value says %d", len(lcs), int64(res.Value))
	}

	// Verify the subsequence really occurs in all three strings.
	for name, s := range map[string]string{"A": a, "B": b, "C": c} {
		if !subseq(string(lcs), s) {
			log.Fatalf("recovered LCS is not a subsequence of %s", name)
		}
	}
	fmt.Println("verified: the recovered string is a common subsequence of A, B and C")
}

func subseq(needle, hay string) bool {
	i := 0
	for j := 0; j < len(hay) && i < len(needle); j++ {
		if hay[j] == needle[i] {
			i++
		}
	}
	return i == len(needle)
}
