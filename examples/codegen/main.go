// Program generation end to end: parse a generator input file (the
// paper's Section IV-A description, written inline below), emit the
// standalone hybrid Go program, and print how to build and run it.
//
//	go run ./examples/codegen [-o /tmp/bandit2_gen.go]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dpgen"
)

// specText is a complete generator input: the 2-arm bandit of Section II
// with the center-loop code written against the generated symbols
// (V, loc, loc_r1..loc_r4, is_valid_r1, and the loop variables).
const specText = `
# 2-arm Bernoulli bandit (Section II of the paper)
name bandit2
params N
vars s1 f1 s2 f2

constraint s1 + f1 + s2 + f2 <= N
constraint s1 >= 0
constraint f1 >= 0
constraint s2 >= 0
constraint f2 >= 0

dep r1 <1, 0, 0, 0>
dep r2 <0, 1, 0, 0>
dep r3 <0, 0, 1, 0>
dep r4 <0, 0, 0, 1>

order s1 f1 s2 f2
balance s1 f1
tile 6 6 6 6
goal 0 0 0 0

kernel:
p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
v1 := 0.0
v2 := 0.0
if is_valid_r1 {
	v1 = p1*(1+V[loc_r1]) + (1-p1)*V[loc_r2]
	v2 = p2*(1+V[loc_r3]) + (1-p2)*V[loc_r4]
}
if v1 > v2 {
	V[loc] = v1
} else {
	V[loc] = v2
}
end
`

func main() {
	out := flag.String("o", "/tmp/bandit2_gen.go", "output path for the generated program")
	flag.Parse()

	sp, err := dpgen.ParseSpec(specText)
	if err != nil {
		log.Fatal(err)
	}

	// The analysis behind the generated code, for the curious.
	tl, err := dpgen.Analyze(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis of %q:\n", sp.Name)
	fmt.Printf("  template deps -> %d tile-to-tile dependencies\n", len(tl.TileDeps))
	fmt.Printf("  tile buffer: %d elements (with ghost shell)\n", tl.AllocLen)
	fmt.Printf("  tiles at N=60: %d covering %s cells\n",
		tl.TileCount([]int64{60}), "635376")

	src, err := dpgen.Generate(sp, dpgen.GenOptions{ParamDefaults: []int64{60}})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes of standalone, stdlib-only Go)\n", *out, len(src))
	fmt.Println("\nto build and run it:")
	fmt.Printf("  mkdir /tmp/gen && cp %s /tmp/gen/main.go\n", *out)
	fmt.Println("  cd /tmp/gen && go mod init gen && go build")
	fmt.Println("  ./gen -N 60 -nodes 4 -threads 6 -stats")
	fmt.Println("\nor do it in one step with the CLI:")
	fmt.Println("  go run dpgen/cmd/dpgen -builtin bandit2 -build /tmp/bandit2")
}
