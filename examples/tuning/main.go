// Performance tuning with the cluster simulator: Section VI-C of the
// paper notes that tile size, buffer counts and load-balancing
// dimensions all shift the optimum and "would require a parameter sweep
// in order to find the best values". This example runs that sweep for
// the 2-arm bandit on a modeled cluster and prints the best
// configuration — without needing the cluster.
//
// The sweep uses dpgen.DefaultCostModel's nominal machine constants.
// To tune for a real machine, calibrate CellTime (and TileOverhead)
// from the measured per-cell rates in BENCH_engine.json — regenerate
// with `go run ./cmd/dpbench -bench-json BENCH_engine.json` — and pass
// the adjusted model via SimConfig.Cost.
//
//	go run ./examples/tuning [-N 120] [-nodes 4] [-cores 24]
package main

import (
	"flag"
	"fmt"
	"log"

	"dpgen"
)

func main() {
	var (
		N     = flag.Int64("N", 120, "problem size")
		nodes = flag.Int("nodes", 4, "simulated nodes")
		cores = flag.Int("cores", 24, "cores per node")
	)
	flag.Parse()

	problem, err := dpgen.Builtin("bandit2")
	if err != nil {
		log.Fatal(err)
	}

	type config struct {
		width   int64
		lb      []string
		balance dpgen.BalanceMethod
	}
	var best config
	bestTime := -1.0

	fmt.Printf("2-arm bandit N=%d on %d nodes x %d cores (simulated)\n\n", *N, *nodes, *cores)
	fmt.Printf("%-7s %-12s %-11s %-12s %-8s\n", "width", "lb dims", "balance", "makespan", "idle")
	for _, width := range []int64{6, 9, 12, 18} {
		for _, lb := range [][]string{{"s1"}, {"s1", "f1"}} {
			for _, bal := range []dpgen.BalanceMethod{dpgen.Prefix, dpgen.Hyperplane} {
				sp := *problem.Spec // copy, then override the tunables
				sp.TileWidths = []int64{width, width, width, width}
				sp.LBDims = lb
				res, err := dpgen.Simulate(&sp, []int64{*N}, dpgen.SimConfig{
					Nodes: *nodes, Cores: *cores, Balance: bal,
				})
				if err != nil {
					log.Fatal(err)
				}
				var idle float64
				for _, f := range res.IdleFrac {
					idle += f
				}
				idle /= float64(len(res.IdleFrac))
				fmt.Printf("%-7d %-12s %-11v %-12s %5.1f%%\n",
					width, fmt.Sprint(lb), bal, fmt.Sprintf("%.4fs", res.Makespan), 100*idle)
				if bestTime < 0 || res.Makespan < bestTime {
					bestTime = res.Makespan
					best = config{width: width, lb: lb, balance: bal}
				}
			}
		}
	}
	fmt.Printf("\nbest: tile width %d, balance over %v with the %v method (%.4fs)\n",
		best.width, best.lb, best.balance, bestTime)
	fmt.Println("\nfeed the winner back into a real run or into dpgen code generation:")
	fmt.Printf("  tile %d %d %d %d\n  balance %s\n",
		best.width, best.width, best.width, best.width, joinsp(best.lb))
}

func joinsp(v []string) string {
	out := ""
	for i, s := range v {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}
