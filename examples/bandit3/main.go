// Adaptive clinical trial design with three treatments: the 3-arm
// Bernoulli bandit (the problem hand-parallelized in the paper's
// reference [3]), run hybrid across several simulated nodes, plus a
// simulated strong-scaling sweep of the same instance on a modeled
// 24-core-per-node cluster.
//
//	go run ./examples/bandit3 [-N 20] [-nodes 4] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"dpgen"
)

func main() {
	var (
		N       = flag.Int64("N", 20, "number of patients (trials)")
		nodes   = flag.Int("nodes", 4, "simulated MPI ranks")
		threads = flag.Int("threads", 4, "worker threads per node")
	)
	flag.Parse()

	problem, err := dpgen.Builtin("bandit3")
	if err != nil {
		log.Fatal(err)
	}

	res, err := dpgen.RunProblem(problem, []int64{*N}, dpgen.Config{
		Nodes: *nodes, Threads: *threads,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-arm bandit (adaptive trial with 3 treatments), N = %d\n", *N)
	fmt.Printf("expected successes under the optimal adaptive design: %.12f\n", res.Value)

	two, err := dpgen.Builtin("bandit2")
	if err != nil {
		log.Fatal(err)
	}
	r2, err := dpgen.RunProblem(two, []int64{*N}, dpgen.Config{Nodes: *nodes, Threads: *threads})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with only two treatments the value would be:       %.12f\n", r2.Value)
	fmt.Printf("a third arm adds %.3f expected successes\n\n", res.Value-r2.Value)

	// Per-node statistics show the static Ehrhart load balance at work.
	for i, st := range res.Stats {
		fmt.Printf("node %d: %6d tiles, %9d cells, %5d edges sent\n",
			i, st.TilesExecuted, st.CellsComputed, st.EdgesSentRemote)
	}

	// Project the same instance onto a modeled cluster.
	fmt.Printf("\nsimulated strong scaling (24-core nodes, modeled interconnect):\n")
	for _, n := range []int{1, 2, 4, 8} {
		sim, err := dpgen.Simulate(problem.Spec, []int64{*N}, dpgen.SimConfig{Nodes: n, Cores: 24})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d node(s): makespan %8.4fs  speedup %6.2f\n", n, sim.Makespan, sim.Speedup())
	}
}
