// Exact multiple sequence alignment of three DNA sequences — the
// bioinformatics workload motivating the paper's introduction (exact MSA
// is usually abandoned for heuristics beyond two sequences; the
// generator makes the exact cubic DP parallel).
//
// The example builds the problem spec through the public API rather than
// using the built-in, to show what a user writes: variables, parameters,
// constraints, template vectors, and a kernel closure.
//
//	go run ./examples/msa [-len 40] [-seed 7] [-nodes 3] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"dpgen"
)

// dna generates a deterministic random sequence (a stand-in for reading
// a FASTA file).
func dna(n int, seed uint64) string {
	s := seed
	b := make([]byte, n)
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = "ACGT"[(s>>33)%4]
	}
	return string(b)
}

// subTransition scores DNA with transition/transversion awareness:
// match 0, transition (A<->G, C<->T) 0.5, transversion 1.
func subTransition(x, y byte) float64 {
	if x == y {
		return 0
	}
	purine := func(c byte) bool { return c == 'A' || c == 'G' }
	if purine(x) == purine(y) {
		return 0.5
	}
	return 1
}

func main() {
	var (
		length  = flag.Int("len", 40, "sequence length")
		seed    = flag.Uint64("seed", 7, "workload seed")
		nodes   = flag.Int("nodes", 3, "simulated MPI ranks")
		threads = flag.Int("threads", 4, "worker threads per node")
	)
	flag.Parse()

	a := dna(*length, *seed)
	b := dna(*length-3, *seed+1)
	c := dna(*length-5, *seed+2)
	const gap = 1.0
	sub := subTransition // transition-aware DNA scoring

	// The generator input: a 3-D iteration space over suffix positions,
	// with the seven alignment moves as template vectors.
	sp, err := dpgen.NewSpec("msa3", []string{"LA", "LB", "LC"}, []string{"i", "j", "k"})
	if err != nil {
		log.Fatal(err)
	}
	for _, cons := range []string{"0 <= i <= LA", "0 <= j <= LB", "0 <= k <= LC"} {
		if err := sp.Constrain(cons); err != nil {
			log.Fatal(err)
		}
	}
	moves := [][3]int64{
		{0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
	}
	for m, mv := range moves {
		sp.AddDep(fmt.Sprintf("m%d", m), mv[0], mv[1], mv[2])
	}
	sp.TileWidths = []int64{8, 8, 8}
	sp.LBDims = []string{"i", "j"}

	colCost := func(i, j, k int64, mv [3]int64) float64 {
		var cost float64
		if mv[0] == 1 && mv[1] == 1 {
			cost += sub(a[i], b[j])
		} else if mv[0]+mv[1] == 1 {
			cost += gap
		}
		if mv[0] == 1 && mv[2] == 1 {
			cost += sub(a[i], c[k])
		} else if mv[0]+mv[2] == 1 {
			cost += gap
		}
		if mv[1] == 1 && mv[2] == 1 {
			cost += sub(b[j], c[k])
		} else if mv[1]+mv[2] == 1 {
			cost += gap
		}
		return cost
	}

	kernel := func(cx *dpgen.Ctx) {
		i, j, k := cx.X[0], cx.X[1], cx.X[2]
		best := math.Inf(1)
		for m := range moves {
			if !cx.DepValid[m] {
				continue
			}
			if v := cx.V[cx.DepLoc[m]] + colCost(i, j, k, moves[m]); v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			best = 0 // the (LA, LB, LC) corner: nothing left to align
		}
		cx.V[cx.Loc] = best
	}

	params := []int64{int64(len(a)), int64(len(b)), int64(len(c))}
	res, err := dpgen.Run(sp, kernel, params, dpgen.Config{Nodes: *nodes, Threads: *threads})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequences: %d, %d, %d nt (seed %d)\n", len(a), len(b), len(c), *seed)
	fmt.Printf("  A: %s\n  B: %s\n  C: %s\n", clip(a), clip(b), clip(c))
	fmt.Printf("optimal sum-of-pairs alignment cost: %.1f\n", res.Value)
	fmt.Printf("(%d cells across %d nodes in %s; %d edges exchanged)\n",
		totalCells(res), *nodes, res.TotalTime, res.Messages)

	// Sanity: the sum of optimal pairwise distances is a lower bound.
	lower := pairDist(a, b, sub, gap) + pairDist(a, c, sub, gap) + pairDist(b, c, sub, gap)
	fmt.Printf("pairwise lower bound: %.1f (MSA >= bound: %v)\n", lower, res.Value >= lower-1e-9)
}

func clip(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func totalCells(res *dpgen.Result) int64 {
	var n int64
	for _, st := range res.Stats {
		n += st.CellsComputed
	}
	return n
}

// pairDist solves the pairwise alignment serially.
func pairDist(x, y string, sub func(a, b byte) float64, gap float64) float64 {
	m, n := len(x), len(y)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for j := n; j >= 0; j-- {
		prev[j] = float64(n-j) * gap
	}
	for i := m - 1; i >= 0; i-- {
		cur[n] = float64(m-i) * gap
		for j := n - 1; j >= 0; j-- {
			best := prev[j+1] + sub(x[i], y[j]) // consume both
			if v := prev[j] + gap; v < best {   // consume x[i] only
				best = v
			}
			if v := cur[j+1] + gap; v < best { // consume y[j] only
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[0]
}
