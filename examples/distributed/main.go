// Distributed: solve the 2-arm bandit (specs/bandit2.dps as a builtin)
// with each MPI rank in its own OS process, exchanging tile edges over
// TCP — the deployed form of the paper's hybrid model, where
// examples/quickstart simulates the ranks in one process.
//
// Run with no flags and the program forks itself into two rank
// processes on loopback, waits for both, and verifies that rank 0's
// answer is bit-identical to the serial Figure 1 recursion:
//
//	go run ./examples/distributed [-N 30] [-threads 2]
//
// The internal -rank/-peers flags are how the parent tells each child
// which endpoint of the mesh it is; you could equally start the two
// rank processes by hand (on different machines) the way
// cmd/dprun -distributed does.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"

	"dpgen"
)

const nranks = 2

func main() {
	var (
		N       = flag.Int64("N", 30, "number of trials")
		threads = flag.Int("threads", 2, "worker threads per rank")
		rank    = flag.Int("rank", -1, "internal: this child's rank")
		peers   = flag.String("peers", "", "internal: comma-joined rank listen addresses")
	)
	flag.Parse()

	if *rank >= 0 {
		child(*rank, strings.Split(*peers, ","), *N, *threads)
		return
	}
	parent(*N, *threads)
}

// parent reserves one loopback port per rank, then re-executes this
// binary once per rank with -rank/-peers set and relays their output.
func parent(N int64, threads int) {
	addrs := make([]string, nranks)
	for r := range addrs {
		// Bind :0 to have the kernel pick a free port, then release it
		// for the child to re-bind. The window between close and
		// re-listen is covered by the transport's dial retry.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[r] = l.Addr().String()
		l.Close()
	}
	peers := strings.Join(addrs, ",")

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("forking %d rank processes (peers %s)\n", nranks, peers)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes relayed output lines
	failed := false
	for r := 0; r < nranks; r++ {
		cmd := exec.Command(self,
			"-rank", strconv.Itoa(r), "-peers", peers,
			"-N", strconv.FormatInt(N, 10), "-threads", strconv.Itoa(threads))
		out, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				mu.Lock()
				fmt.Printf("[rank %d] %s\n", r, sc.Text())
				mu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				mu.Lock()
				fmt.Printf("[rank %d] exited: %v\n", r, err)
				failed = true
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if failed {
		os.Exit(1)
	}
}

// child runs one rank of the job: dial the mesh, run the engine with
// the TCP transport, report. Every rank recomputes tiling, balance and
// ownership deterministically from the same spec and parameters, so
// the processes only exchange tile edges and the final result merge.
func child(rank int, peers []string, N int64, threads int) {
	problem, err := dpgen.Builtin("bandit2")
	if err != nil {
		log.Fatal(err)
	}

	tr, err := dpgen.DialTCP(rank, peers, dpgen.TCPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh up: rank %d of %d\n", tr.ID(), tr.Size())

	// The run takes ownership of the transport and closes it. Nodes is
	// taken from the transport; every rank passes the same Config.
	res, err := dpgen.RunProblem(problem, []int64{N}, dpgen.Config{
		Transport: tr,
		Threads:   threads,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V(0) = %.12f (%d edges exchanged job-wide, %s)\n",
		res.Value, res.Messages, res.TotalTime)

	// The merged result is identical on every rank; let rank 0 do the
	// serial cross-check.
	if rank == 0 {
		want := problem.Serial([]int64{N})
		if res.Value != want {
			log.Fatalf("MISMATCH: serial solver says %.12f", want)
		}
		fmt.Println("bit-identical to the serial recursion across processes")
	}
}
