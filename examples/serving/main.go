// Serving: run the DP-as-a-service stack end to end inside one
// process — start a dpserve instance on a free port, then act as its
// client: warm the compiled-spec cache, issue the same query from two
// spellings of one spec (one compile), repeat a query (result-memo
// hit), fire identical queries concurrently (request coalescing), and
// read the serving counters back from /v1/stats.
//
//	go run ./examples/serving [-N 40] [-concurrent 8]
//
// docs/SERVING.md walks the same flow against a long-running server
// with curl and dploadgen.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"

	"dpgen/internal/serve"
)

// Two spellings of one triangular DP space: constraint order, spelling
// and comments differ, the canonical form does not.
const spellingA = `
name tri
params N
vars i j
constraint 0 <= i <= N
constraint 0 <= j <= i
dep left -1 0
dep down 0 -1
`

const spellingB = `
# the same problem, spelled differently
name tri
params N
vars i j
constraint j <= i
constraint i >= 0
constraint i <= N
constraint j >= 0
dep left -1 0
dep down 0 -1
`

func main() {
	var (
		N          = flag.Int64("N", 40, "triangle size parameter")
		concurrent = flag.Int("concurrent", 8, "identical queries to fire at once")
	)
	flag.Parse()

	// A dpserve instance, embedded. `dpserve -addr :8080` runs the same
	// server as a standalone daemon.
	srv := serve.New(serve.Options{MaxThreads: 8})
	h, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	base := "http://" + h.Addr()
	fmt.Printf("dpserve listening on %s\n\n", h.Addr())

	// 1. Warm the compiled-spec cache without running anything.
	var comp serve.CompileResponse
	postJSON(base+"/v1/compile", serve.QueryRequest{Spec: spellingA}, &comp)
	fmt.Printf("compiled spec %s in %.1f ms (FM nests, Ehrhart counts, tiling)\n",
		comp.SpecHash, comp.CompileMs)

	// 2. The other spelling maps to the same compiled program.
	var q serve.QueryResponse
	postJSON(base+"/v1/query", serve.QueryRequest{Spec: spellingB, Params: []int64{*N}}, &q)
	fmt.Printf("spelling B: hash %s, compile cached: %v, value %.4f (%d cells, %.1f ms)\n",
		q.SpecHash, q.CompileCached, q.Value, q.Cells, q.RunMs)
	if q.SpecHash != comp.SpecHash {
		log.Fatal("MISMATCH: equivalent spellings produced different spec hashes")
	}

	// 3. Repeating the query is a result-memo hit: no engine run at all.
	var q2 serve.QueryResponse
	postJSON(base+"/v1/query", serve.QueryRequest{Spec: spellingA, Params: []int64{*N}}, &q2)
	fmt.Printf("repeat:     cached %v, same value: %v\n", q2.Cached, q2.Value == q.Value)

	// 4. Identical in-flight queries coalesce into one engine run.
	fresh := serve.QueryRequest{Spec: spellingA, Params: []int64{*N + 1}, NoResultCache: true}
	var wg sync.WaitGroup
	coalesced := make(chan bool, *concurrent)
	for i := 0; i < *concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qr serve.QueryResponse
			postJSON(base+"/v1/query", fresh, &qr)
			coalesced <- qr.Coalesced
		}()
	}
	wg.Wait()
	close(coalesced)
	shared := 0
	for c := range coalesced {
		if c {
			shared++
		}
	}
	fmt.Printf("%d identical concurrent queries: %d coalesced onto the leader's run\n",
		*concurrent, shared)

	// 5. The serving counters confirm what happened.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nserver stats: %d compiles, %d engine runs, %d result-memo hits, %d coalesced\n",
		st.Compiles, st.Runs, st.ResultCache.Hits, st.Coalesced)
	if st.Compiles != 1 {
		log.Fatalf("MISMATCH: expected exactly one compile, saw %d", st.Compiles)
	}
	fmt.Println("one compile served every request: the compiled-spec cache works")
}

// postJSON posts req and decodes the 2xx response into out.
func postJSON(url string, req serve.QueryRequest, out any) {
	data, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
