package dpgen

import (
	"fmt"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	p, err := Builtin("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProblem(p, []int64{15}, Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Serial([]int64{15}); res.Value != want {
		t.Fatalf("Value = %v, want %v", res.Value, want)
	}
}

func TestBuiltinsComplete(t *testing.T) {
	names := Builtins()
	if len(names) < 6 {
		t.Fatalf("only %d builtins", len(names))
	}
	for _, n := range names {
		if _, err := Builtin(n); err != nil {
			t.Errorf("Builtin(%q): %v", n, err)
		}
	}
	if _, err := Builtin("zzz"); err == nil {
		t.Error("unknown builtin should fail")
	}
}

func TestParseAndRunSpecFromText(t *testing.T) {
	text := `
name count
params N
vars x y
constraint 0 <= x <= N
constraint 0 <= y <= N
dep a 1 0
dep b 0 1
tile 4 4
`
	sp, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	// f(x,y) = 1 + f(x+1,y) + f(x,y+1) with 0 outside: binomial sums.
	kernel := func(c *Ctx) {
		v := 1.0
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += c.V[c.DepLoc[1]]
		}
		c.V[c.Loc] = v
	}
	res, err := Run(sp, kernel, []int64{3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Paths-ish count: value at origin for N=3 computed by hand:
	// f(x,y) = C(ways) ... verified against a direct recursion:
	want := func() float64 {
		var f func(x, y int64) float64
		memo := map[[2]int64]float64{}
		f = func(x, y int64) float64 {
			if x > 3 || y > 3 {
				return 0
			}
			k := [2]int64{x, y}
			if v, ok := memo[k]; ok {
				return v
			}
			v := 1 + f(x+1, y) + f(x, y+1)
			memo[k] = v
			return v
		}
		return f(0, 0)
	}()
	if res.Value != want {
		t.Fatalf("Value = %v, want %v", res.Value, want)
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/spec.dps"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestGenerateFacade(t *testing.T) {
	p, err := Builtin("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(p.Spec, GenOptions{ParamDefaults: []int64{40}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func main()") {
		t.Error("generated program lacks main")
	}
}

func TestSimulateFacade(t *testing.T) {
	p, err := Builtin("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p.Spec, []int64{30}, SimConfig{Nodes: 2, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("speedup %v on 16 cores", res.Speedup())
	}
}

func TestAnalyzeFacade(t *testing.T) {
	p, err := Builtin("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Analyze(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if tl.TileCount([]int64{24}) <= 0 {
		t.Error("no tiles")
	}
	// RunAnalyzed reuses the analysis.
	res, err := RunAnalyzed(tl, p.Kernel, []int64{12}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Serial([]int64{12}); res.Value != want {
		t.Errorf("Value = %v, want %v", res.Value, want)
	}
}

func TestSimulateAnalyzedAndCostModel(t *testing.T) {
	p, err := Builtin("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Analyze(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	if cm.CellTime <= 0 || cm.CoreContention <= 0 {
		t.Errorf("implausible default cost model: %+v", cm)
	}
	res, err := SimulateAnalyzed(tl, []int64{24}, SimConfig{Nodes: 2, Cores: 4, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	if res.TilesExecuted == 0 {
		t.Error("no tiles executed")
	}
}

func TestLoadSpecHappyPath(t *testing.T) {
	sp, err := LoadSpec("specs/bandit2.dps")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "bandit2" || len(sp.Deps) != 4 {
		t.Errorf("loaded spec wrong: %s with %d deps", sp.Name, len(sp.Deps))
	}
	// The shipped spec file must generate a valid program.
	if _, err := Generate(sp, GenOptions{}); err != nil {
		t.Errorf("shipped spec does not generate: %v", err)
	}
	sp2, err := LoadSpec("specs/grid2.dps")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(sp2, GenOptions{}); err != nil {
		t.Errorf("grid2 spec does not generate: %v", err)
	}
	// The extended-template specs: a range template (mcm) and a
	// variable-distance range template (knap).
	sp3, err := LoadSpec("specs/mcm.dps")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp3.Deps) != 2 || !sp3.HasRangeDeps() {
		t.Errorf("mcm spec wrong: %d deps, ranges=%v", len(sp3.Deps), sp3.HasRangeDeps())
	}
	if _, err := Generate(sp3, GenOptions{}); err != nil {
		t.Errorf("mcm spec does not generate: %v", err)
	}
	sp4, err := LoadSpec("specs/knap.dps")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(sp4, GenOptions{}); err != nil {
		t.Errorf("knap spec does not generate: %v", err)
	}
	sp5, err := LoadSpec("specs/obst.dps")
	if err != nil {
		t.Fatal(err)
	}
	if len(sp5.Deps) != 2 || !sp5.HasRangeDeps() {
		t.Errorf("obst spec wrong: %d deps, ranges=%v", len(sp5.Deps), sp5.HasRangeDeps())
	}
	if _, err := Generate(sp5, GenOptions{}); err != nil {
		t.Errorf("obst spec does not generate: %v", err)
	}
}

func TestStringersCovered(t *testing.T) {
	for _, s := range []fmt.Stringer{ColumnMajor, LevelSet, FIFO, Priority(99), Prefix, Hyperplane, BalanceMethod(99)} {
		if s.String() == "" {
			t.Errorf("empty String() for %T", s)
		}
	}
}
