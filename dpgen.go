// Package dpgen is an automatic generator of hybrid parallel programs
// for multidimensional dynamic programming problems with template
// dependencies, reproducing VandenBerg & Stout, "Automatic Hybrid
// OpenMP + MPI Program Generation for Dynamic Programming Problems"
// (IEEE CLUSTER 2011).
//
// A problem is described by a Spec: loop variables, integer parameters,
// a system of linear inequalities bounding the iteration space, constant
// template dependence vectors (f(x) depends on f(x + r)), a loop order,
// tile widths, and load-balancing dimensions. From a Spec, dpgen can
//
//   - Run the problem on the in-process hybrid runtime (worker
//     goroutines per simulated node standing in for OpenMP threads,
//     bounded channels between nodes standing in for MPI), given a Go
//     Kernel for the center loop;
//
//   - Generate a complete, self-contained Go program (stdlib-only) that
//     solves the problem — the paper's code-generation artifact — from a
//     spec whose kernel is supplied as Go source text; and
//
//   - Simulate the generated program's execution on a modeled cluster
//     (cores, NICs, links) to study scaling beyond the host machine.
//
// The quickstart example:
//
//	p, _ := dpgen.Builtin("bandit2")
//	res, _ := dpgen.RunProblem(p, []int64{40}, dpgen.Config{Nodes: 4, Threads: 6})
//	fmt.Println(res.Value)
package dpgen

import (
	"fmt"
	"io"
	"os"

	"dpgen/internal/balance"
	"dpgen/internal/codegen"
	"dpgen/internal/engine"
	"dpgen/internal/mpi"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/obs"
	"dpgen/internal/problems"
	"dpgen/internal/simsched"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// Spec is a problem description (see dpgen/internal/spec for the full
// field documentation and the text input format).
type Spec = spec.Spec

// Dep is a template dependence vector.
type Dep = spec.Dep

// Kernel is the center-loop body executed once per location.
type Kernel = engine.Kernel

// Ctx is the per-location kernel context: the state array V, the
// current location Loc, the dependence locations DepLoc, the validity
// flags DepValid, and the loop variable and parameter values.
type Ctx = engine.Ctx

// Config controls an in-process run: nodes, threads per node, buffer
// counts, priority policy and balance method.
type Config = engine.Config

// Result is the outcome of a run.
type Result = engine.Result

// NodeStats are per-node runtime counters.
type NodeStats = engine.NodeStats

// Priority selects the ready-tile execution order.
type Priority = engine.Priority

// Priority policies (Section V-B of the paper).
const (
	ColumnMajor = engine.ColumnMajor
	LevelSet    = engine.LevelSet
	FIFO        = engine.FIFO
)

// Sched selects the tile scheduler (Config.Sched).
type Sched = engine.Sched

// Schedulers: SchedHybrid (the default) precomputes a wavefront order
// for interior tiles with node-local producers and dependence-counts the
// rest; SchedDynamic dependence-counts every tile. Bit-identical
// results.
const (
	SchedHybrid  = engine.SchedHybrid
	SchedDynamic = engine.SchedDynamic
)

// BalanceMethod selects the static load balancer.
type BalanceMethod = balance.Method

// Balance methods: Prefix is the paper's production balancer
// (Section IV-J); Hyperplane its future-work refinement (Section VII-B).
const (
	Prefix     = balance.Prefix
	Hyperplane = balance.Hyperplane
)

// Problem bundles a Spec with a Kernel and a serial reference solver.
type Problem = problems.Problem

// Transport is the inter-node message layer behind a run: the seam
// between the hybrid runtime and the network. Set Config.Transport to
// run this process as one rank of a distributed job; leave it nil to
// simulate Config.Nodes ranks in-process. See docs/TRANSPORT.md for
// the contract.
type Transport = mpi.Transport

// TCPOptions configures a DialTCP endpoint: buffer counts, dial
// retry/backoff and timeouts, and the Recovery fault-tolerance
// protocol. The zero value selects sensible defaults.
type TCPOptions = tcp.Options

// CheckpointConfig configures the engine's fault-tolerance checkpoints
// (Config.Checkpoint). See docs/FAULT_TOLERANCE.md.
type CheckpointConfig = engine.CheckpointConfig

// ElasticConfig enables elastic cluster membership (Config.Elastic):
// ranks join and leave a distributed run mid-flight, with live
// re-partitioning and migration of the in-flight tile state. See
// docs/ELASTICITY.md.
type ElasticConfig = engine.ElasticConfig

// ScaleEvent is one entry of the elastic coordinator's scale schedule
// (ElasticConfig.ScaleAt).
type ScaleEvent = engine.ScaleEvent

// PeerDownError is the typed error a recovery-enabled transport fails
// with when a peer stays down past its timeout; it carries the dead
// peer's rank.
type PeerDownError = mpi.PeerDownError

// GenOptions configures program generation.
type GenOptions = codegen.Options

// SimConfig configures a simulated cluster run.
type SimConfig = simsched.Config

// SimResult is the outcome of a simulated run.
type SimResult = simsched.Result

// CostModel holds the simulated machine constants.
type CostModel = simsched.CostModel

// Analysis is the generation-time analysis of a spec: tile space, tile
// dependencies, validity functions, memory layout and pack/unpack scans.
type Analysis = tiling.Tiling

// NewSpec creates an empty spec with the given name, parameters and
// loop variables; add constraints and dependencies with its methods.
func NewSpec(name string, params, vars []string) (*Spec, error) {
	return spec.New(name, params, vars)
}

// ParseSpec parses the generator's text input format.
func ParseSpec(text string) (*Spec, error) { return spec.Parse(text) }

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dpgen: %w", err)
	}
	sp, err := spec.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("dpgen: %s: %w", path, err)
	}
	return sp, nil
}

// Analyze runs the generation-time analysis of a spec.
func Analyze(sp *Spec) (*Analysis, error) { return tiling.New(sp) }

// Run executes a spec with the given kernel on the in-process hybrid
// runtime.
func Run(sp *Spec, kernel Kernel, params []int64, cfg Config) (*Result, error) {
	tl, err := tiling.New(sp)
	if err != nil {
		return nil, err
	}
	return engine.Run(tl, kernel, params, cfg)
}

// RunAnalyzed executes a previously analyzed spec (saves the analysis
// cost across repeated runs).
func RunAnalyzed(tl *Analysis, kernel Kernel, params []int64, cfg Config) (*Result, error) {
	return engine.Run(tl, kernel, params, cfg)
}

// RunProblem executes a built-in problem.
func RunProblem(p *Problem, params []int64, cfg Config) (*Result, error) {
	return Run(p.Spec, p.Kernel, params, cfg)
}

// Prepared is an analyzed spec additionally load-balanced for fixed
// parameter values and node count: Prepared.Run skips both the balance
// computation and the initial-tile scan on every execution. This is the
// unit dpserve's compiled-spec cache stores per (spec, params, nodes).
type Prepared = engine.Prepared

// Prepare builds a Prepared run front for repeated executions of one
// (analysis, params, nodes) combination. The kernel and the remaining
// Config knobs (threads, scheduler, tracing) stay free per run;
// Config.Nodes and Config.Balance must match what was prepared.
func Prepare(tl *Analysis, params []int64, nodes int, method BalanceMethod) (*Prepared, error) {
	return engine.Prepare(tl, params, nodes, method)
}

// DialTCP establishes this process's endpoint of a multi-process TCP
// mesh: peers[r] is rank r's listen address and rank is this process's
// index into it. It blocks until the full mesh is connected (peers may
// start in any order within the dial timeout). Pass the result as
// Config.Transport; the run takes ownership and closes it.
func DialTCP(rank int, peers []string, opts TCPOptions) (Transport, error) {
	return tcp.Dial(rank, peers, opts)
}

// DialTCPRejoin reconnects a restarted rank into a live Recovery mesh:
// it re-listens on peers[rank], identifies itself to every surviving
// rank with a REJOIN frame, and receives their retained send histories.
// Pair it with Config.Checkpoint.Resume to continue from the rank's
// last checkpoint. See docs/FAULT_TOLERANCE.md.
func DialTCPRejoin(rank int, peers []string, opts TCPOptions) (Transport, error) {
	return tcp.DialRejoin(rank, peers, opts)
}

// CheckpointPath returns the checkpoint file rank writes inside dir
// (dir/rank-<rank>.ckpt) when Config.Checkpoint is enabled.
func CheckpointPath(dir string, rank int) string {
	return engine.CheckpointPath(dir, rank)
}

// Generate emits a standalone hybrid Go program for the spec. The spec
// must carry center-loop code (Spec.KernelCode).
func Generate(sp *Spec, opts GenOptions) ([]byte, error) {
	return codegen.Generate(sp, opts)
}

// Simulate runs the spec's tile schedule on a modeled cluster and
// reports makespan, idle time and traffic.
func Simulate(sp *Spec, params []int64, cfg SimConfig) (*SimResult, error) {
	tl, err := tiling.New(sp)
	if err != nil {
		return nil, err
	}
	return simsched.Simulate(tl, params, cfg)
}

// SimulateAnalyzed simulates a previously analyzed spec.
func SimulateAnalyzed(tl *Analysis, params []int64, cfg SimConfig) (*SimResult, error) {
	return simsched.Simulate(tl, params, cfg)
}

// Builtin returns a built-in problem by name; see Builtins.
func Builtin(name string) (*Problem, error) { return problems.Get(name) }

// Builtins lists the built-in problem names: the paper's bandit
// problems and the sequence problems its introduction motivates.
func Builtins() []string { return problems.Names() }

// DefaultCostModel returns the simulator's calibrated machine constants.
func DefaultCostModel() CostModel { return simsched.DefaultCostModel() }

// Tracer records per-worker tile-lifecycle timelines during a run or a
// simulation; attach one via Config.Tracer or SimConfig.Tracer. See
// dpgen/internal/obs for the event schema.
type Tracer = obs.Tracer

// Trace is an immutable snapshot of a Tracer; it exports to Chrome
// trace-event JSON (WriteChrome) and aggregates to runtime metrics
// (Metrics).
type Trace = obs.Trace

// RunMetrics is a per-node aggregate of a Trace, exportable in
// Prometheus text-exposition format (WritePrometheus).
type RunMetrics = obs.Metrics

// PathReport is the result of a critical-path analysis over a Trace.
type PathReport = obs.PathReport

// NewTracer creates a tracer for one run.
func NewTracer() *Tracer { return obs.NewTracer() }

// ParseTrace decodes Chrome trace-event JSON previously written by
// Trace.WriteChrome — from a real run or a simulated one; the schema
// is shared.
func ParseTrace(r io.Reader) (*Trace, error) { return obs.ParseChrome(r) }

// CriticalPath replays the traced tile DAG of an analyzed spec with
// measured times and reports the longest compute+communication chain
// against the measured makespan.
func CriticalPath(tl *Analysis, tr *Trace) (*PathReport, error) {
	return obs.CriticalPath(tr, depOffsets(tl))
}

func depOffsets(tl *Analysis) [][]int64 {
	offsets := make([][]int64, len(tl.TileDeps))
	for j := range tl.TileDeps {
		offsets[j] = tl.TileDeps[j].Offset
	}
	return offsets
}

// TraceMeta is the clock-alignment metadata a distributed run stamps
// into each rank's trace file (Trace.Meta); MergeTraces aligns on it.
type TraceMeta = obs.TraceMeta

// TraceFlow is one cross-rank message arrow of a merged trace.
type TraceFlow = obs.Flow

// RunReport is the run-wide analyzer output of BuildRunReport: per-rank
// busy/stall/comm breakdowns, load-imbalance ratio, straggler tiles,
// edge-latency distribution and the cross-rank critical path.
type RunReport = obs.RunReport

// LatencyHistogram is an immutable histogram snapshot (edge latencies).
type LatencyHistogram = obs.HistogramSnapshot

// TCPNetStats is the wire-level statistics snapshot of a DialTCP
// endpoint: totals, per-peer frame/byte counters, clock-sync state and
// the live edge-latency histogram.
type TCPNetStats = tcp.NetStats

// Recovery event names delivered to TCPOptions.Observer: a peer
// declared dead, sends to it parked, the peer rejoining, and the
// retained-frame replay that completes its recovery.
const (
	ObsPeerDown = tcp.ObsPeerDown
	ObsPark     = tcp.ObsPark
	ObsRejoin   = tcp.ObsRejoin
	ObsReplay   = tcp.ObsReplay
)

// MergeTraces merges the per-rank trace files of one distributed run
// into a single clock-aligned trace with synthesized send-to-receive
// flow arrows; see docs/OBSERVABILITY.md.
func MergeTraces(traces []*Trace) (*Trace, error) { return obs.MergeRanks(traces) }

// VerifyMergedTrace checks a merged trace's invariants (alignment,
// monotonic timestamps, flow pairing — exact pairing only when strict)
// and returns the violations found, empty when sound. Recovery runs
// replay frames and must be verified with strict=false.
func VerifyMergedTrace(tr *Trace, strict bool) []string { return obs.VerifyMerged(tr, strict) }

// BuildRunReport computes the run-wide report over a (merged) trace of
// an analyzed spec; topK bounds the straggler list (<=0 means 5).
func BuildRunReport(tl *Analysis, tr *Trace, topK int) (*RunReport, error) {
	return obs.BuildReport(tr, depOffsets(tl), topK)
}

// TransportNetStats snapshots the wire-level statistics of a DialTCP
// transport; ok is false for transports without them (in-process).
func TransportNetStats(tr Transport) (TCPNetStats, bool) {
	if t, ok := tr.(interface{ NetStats() tcp.NetStats }); ok {
		return t.NetStats(), true
	}
	return TCPNetStats{}, false
}

// ServeObs starts the live observability endpoints (/metrics,
// /debug/pprof, /healthz) on addr; metrics is invoked per scrape and
// must only read concurrency-safe state. Returns the server, whose
// Addr reports the bound address (useful with port :0).
func ServeObs(addr string, metrics func(io.Writer) error) (*ObsServer, error) {
	return obs.Serve(addr, metrics)
}

// ObsServer is a live observability endpoint server (ServeObs).
type ObsServer = obs.Server
