// The server-side kernel registry. The in-process engine needs a Go
// function for the center loop; a network request cannot ship one. A
// request therefore names its kernel: builtin problems carry their own
// (the problem field), and spec-text requests pick a generic kernel by
// name. Generic kernels work for any spec — they read only the Ctx
// contract (dependence values, validity flags, coordinates) — and are
// deterministic, so memoized results are exact.

package serve

import (
	"fmt"

	"dpgen/internal/engine"
)

// DefaultKernel is the kernel used by spec-text requests that do not
// name one.
const DefaultKernel = "mix"

// GenericKernels lists the kernels available to spec-text requests, in
// a stable order.
func GenericKernels() []string { return []string{"mix", "sum", "longest"} }

// lookupKernel resolves a generic kernel by name; every generic kernel
// adapts to the spec's dependence count through the Ctx slices and
// walks full range-template footprints through DepLen/DepStride (a
// point dependence is the one-cell footprint).
func lookupKernel(name string) (engine.Kernel, error) {
	switch name {
	case "", DefaultKernel:
		// A contraction mix of coordinates and dependence values with
		// geometrically decaying footprint weights, so values stay
		// bounded along any dependence chain (the dpfuzz reference
		// kernel's recipe).
		return func(c *engine.Ctx) {
			v := 1.0
			for k, xv := range c.X {
				v += float64((int64(k+1)*31+xv*17)%23) * 0.0625
			}
			for j := range c.DepValid {
				if !c.DepValid[j] {
					v -= float64(j+1) * 0.125
					continue
				}
				w := 0.5 / float64(j+1)
				for t := int64(0); t < c.DepLen[j]; t++ {
					v += c.V[c.DepLoc[j]+t*c.DepStride[j]] * w
					w *= 0.5
				}
			}
			c.V[c.Loc] = v
		}, nil
	case "sum":
		// Path counting: 1 plus the sum over every valid dependence
		// footprint cell. Can overflow to +Inf on large spaces; still
		// deterministic.
		return func(c *engine.Ctx) {
			v := 1.0
			for j := range c.DepValid {
				if !c.DepValid[j] {
					continue
				}
				for t := int64(0); t < c.DepLen[j]; t++ {
					v += c.V[c.DepLoc[j]+t*c.DepStride[j]]
				}
			}
			c.V[c.Loc] = v
		}, nil
	case "longest":
		// Longest dependence chain: max over valid dependence footprint
		// cells plus one.
		return func(c *engine.Ctx) {
			v := 0.0
			for j := range c.DepValid {
				if !c.DepValid[j] {
					continue
				}
				for t := int64(0); t < c.DepLen[j]; t++ {
					if d := c.V[c.DepLoc[j]+t*c.DepStride[j]] + 1; d > v {
						v = d
					}
				}
			}
			c.V[c.Loc] = v
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown kernel %q (have %v)", name, GenericKernels())
	}
}
