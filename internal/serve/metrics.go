// Per-tenant serving metrics in the Prometheus text-exposition format,
// served at /metrics next to the run-level families the rest of the
// system already exports (dpgen/internal/obs). Counter reads are
// atomic; histograms reuse obs.Histogram, whose snapshots are safe to
// take mid-flight.

package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"dpgen/internal/obs"
)

// serveLatencyBounds are the request/compile/run latency buckets:
// 100µs to ~27s in x4 steps — compiles sit in the milliseconds, paper
// runs in the seconds.
var serveLatencyBounds = []float64{
	100e-6, 400e-6, 1.6e-3, 6.4e-3, 25.6e-3, 102.4e-3, 409.6e-3, 1.6384, 6.5536, 26.2144,
}

// tenantStats is one tenant's counter block.
type tenantStats struct {
	ok        atomic.Int64 // 2xx
	badReq    atomic.Int64 // 4xx other than shed
	shed      atomic.Int64 // 429
	failed    atomic.Int64 // 5xx
	coalesced atomic.Int64
	resultHit atomic.Int64
}

// metrics is the server-wide metrics registry.
type metrics struct {
	mu      sync.RWMutex
	tenants map[string]*tenantStats

	compiles      atomic.Int64
	compileErrors atomic.Int64
	runs          atomic.Int64
	coalesced     atomic.Int64
	shed          atomic.Int64

	compileHist *obs.Histogram
	runHist     *obs.Histogram
	requestHist *obs.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		tenants:     map[string]*tenantStats{},
		compileHist: obs.NewHistogram(serveLatencyBounds...),
		runHist:     obs.NewHistogram(serveLatencyBounds...),
		requestHist: obs.NewHistogram(serveLatencyBounds...),
	}
}

// tenant returns (lazily creating) the counter block for one tenant.
func (m *metrics) tenant(name string) *tenantStats {
	m.mu.RLock()
	ts, ok := m.tenants[name]
	m.mu.RUnlock()
	if ok {
		return ts
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts, ok = m.tenants[name]; !ok {
		ts = &tenantStats{}
		m.tenants[name] = ts
	}
	return ts
}

// writePrometheus renders every serving family; s supplies the gauge
// sources (gates and caches).
func (m *metrics) writePrometheus(w io.Writer, s *Server) error {
	m.mu.RLock()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	blocks := make([]*tenantStats, len(names))
	for i, name := range names {
		blocks[i] = m.tenants[name]
	}
	m.mu.RUnlock()

	fmt.Fprintf(w, "# HELP dp_serve_requests_total Requests by tenant and outcome code class.\n# TYPE dp_serve_requests_total counter\n")
	for i, name := range names {
		ts := blocks[i]
		for _, c := range []struct {
			code string
			v    int64
		}{
			{"ok", ts.ok.Load()},
			{"bad_request", ts.badReq.Load()},
			{"shed", ts.shed.Load()},
			{"error", ts.failed.Load()},
		} {
			fmt.Fprintf(w, "dp_serve_requests_total{tenant=%q,code=%q} %d\n", name, c.code, c.v)
		}
	}
	fmt.Fprintf(w, "# HELP dp_serve_coalesced_total Requests that shared another request's in-flight run.\n# TYPE dp_serve_coalesced_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "dp_serve_coalesced_total{tenant=%q} %d\n", name, blocks[i].coalesced.Load())
	}
	fmt.Fprintf(w, "# HELP dp_serve_shed_total Requests shed with 429 by tenant.\n# TYPE dp_serve_shed_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "dp_serve_shed_total{tenant=%q} %d\n", name, blocks[i].shed.Load())
	}
	fmt.Fprintf(w, "# HELP dp_serve_result_cache_hits_total Result-memo hits by tenant.\n# TYPE dp_serve_result_cache_hits_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "dp_serve_result_cache_hits_total{tenant=%q} %d\n", name, blocks[i].resultHit.Load())
	}

	for _, c := range []struct {
		name, help string
		cache      *lruCache
	}{
		{"dp_serve_spec_cache", "Compiled-spec cache", s.specCache},
		{"dp_serve_result_cache", "Result memo", s.resultCache},
	} {
		entries, bytes, hits, misses, evictions := c.cache.stats()
		fmt.Fprintf(w, "# HELP %s_events_total %s hit/miss/eviction counters.\n# TYPE %s_events_total counter\n",
			c.name, c.help, c.name)
		fmt.Fprintf(w, "%s_events_total{event=\"hit\"} %d\n", c.name, hits)
		fmt.Fprintf(w, "%s_events_total{event=\"miss\"} %d\n", c.name, misses)
		fmt.Fprintf(w, "%s_events_total{event=\"eviction\"} %d\n", c.name, evictions)
		fmt.Fprintf(w, "# HELP %s_entries %s current entries.\n# TYPE %s_entries gauge\n", c.name, c.help, c.name)
		fmt.Fprintf(w, "%s_entries %d\n", c.name, entries)
		fmt.Fprintf(w, "# HELP %s_bytes %s approximate bytes.\n# TYPE %s_bytes gauge\n", c.name, c.help, c.name)
		fmt.Fprintf(w, "%s_bytes %d\n", c.name, bytes)
	}

	fmt.Fprintf(w, "# HELP dp_serve_compiles_total Spec compiles performed (cache misses).\n# TYPE dp_serve_compiles_total counter\ndp_serve_compiles_total %d\n", m.compiles.Load())
	fmt.Fprintf(w, "# HELP dp_serve_compile_errors_total Distinct specs that failed to compile (negatively cached).\n# TYPE dp_serve_compile_errors_total counter\ndp_serve_compile_errors_total %d\n", m.compileErrors.Load())
	fmt.Fprintf(w, "# HELP dp_serve_runs_total Engine runs performed (memo misses, after coalescing).\n# TYPE dp_serve_runs_total counter\ndp_serve_runs_total %d\n", m.runs.Load())

	fmt.Fprintf(w, "# HELP dp_serve_queue_depth Current waiters per admission gate.\n# TYPE dp_serve_queue_depth gauge\n")
	fmt.Fprintf(w, "# HELP dp_serve_inflight Current holders per admission gate.\n# TYPE dp_serve_inflight gauge\n")
	for _, g := range []struct {
		name string
		gate *gate
	}{{"compile", s.compileGate}, {"run", s.runGate}} {
		queued, inflight := g.gate.depth()
		fmt.Fprintf(w, "dp_serve_queue_depth{queue=%q} %d\n", g.name, queued)
		fmt.Fprintf(w, "dp_serve_inflight{queue=%q} %d\n", g.name, inflight)
	}

	if err := m.compileHist.Snapshot().WritePrometheus(w, "dp_serve_compile_seconds",
		"Spec compile latency (cache misses only).", ""); err != nil {
		return err
	}
	if err := m.runHist.Snapshot().WritePrometheus(w, "dp_serve_run_seconds",
		"Engine run latency (memo misses only).", ""); err != nil {
		return err
	}
	return m.requestHist.Snapshot().WritePrometheus(w, "dp_serve_request_seconds",
		"End-to-end /v1/query latency, all outcomes.", "")
}
