package serve

import (
	"strings"
	"testing"

	"dpgen/internal/problems"
	"dpgen/internal/spec"
)

// Textually different but semantically identical specs: constraint
// order, spelling (0 <= i vs i >= 0), strictness rewrites, comments,
// explicit defaults, and code fragments must not change the hash.
const triSpecA = `
name tri
params N
vars i j
constraint 0 <= i <= N
constraint 0 <= j <= i
dep left -1 0
dep down 0 -1
`

const triSpecB = `
# same triangle, different spelling
name tri
params N
vars i j
constraint j <= i
constraint i <= N
constraint i >= 0
constraint j > -1
dep left <-1, 0>
dep down <0, -1>
order i j
tile 8 8
elem float64
goal 0 0
kernel:
  ignored by the server
end
`

func mustParse(t *testing.T, text string) *spec.Spec {
	t.Helper()
	sp, err := spec.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sp
}

func TestCanonicalizeEquivalentSpecs(t *testing.T) {
	a := Canonicalize(mustParse(t, triSpecA))
	b := Canonicalize(mustParse(t, triSpecB))
	if a != b {
		t.Fatalf("equivalent specs canonicalize differently:\n--- A ---\n%s--- B ---\n%s", a, b)
	}
	if SpecHash(a) != SpecHash(b) {
		t.Fatalf("hash mismatch for identical canonical forms")
	}
}

func TestCanonicalizeDistinguishesSemantics(t *testing.T) {
	base := Canonicalize(mustParse(t, triSpecA))
	for _, mod := range []struct{ name, text string }{
		{"constraint", strings.Replace(triSpecA, "j <= i", "j <= i + 1", 1)},
		{"dep order", strings.Replace(triSpecA, "dep left -1 0\ndep down 0 -1", "dep down 0 -1\ndep left -1 0", 1)},
		{"tile", triSpecA + "tile 4 4\n"},
		{"goal", triSpecA + "goal 1 0\n"},
	} {
		got := Canonicalize(mustParse(t, mod.text))
		if got == base {
			t.Errorf("%s change did not change the canonical form", mod.name)
		}
	}
}

// The canonical form must re-parse to a spec with the same canonical
// form (fixed point), for every builtin problem.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, name := range problems.Names() {
		p, err := problems.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		canon := Canonicalize(p.Spec)
		sp2, err := spec.Parse(canon)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v\n%s", name, err, canon)
		}
		if again := Canonicalize(sp2); again != canon {
			t.Errorf("%s: canonicalization is not a fixed point:\n--- first ---\n%s--- second ---\n%s", name, canon, again)
		}
	}
}
