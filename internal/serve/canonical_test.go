package serve

import (
	"strings"
	"testing"

	"dpgen/internal/problems"
	"dpgen/internal/spec"
)

// Textually different but semantically identical specs: constraint
// order, spelling (0 <= i vs i >= 0), strictness rewrites, comments,
// explicit defaults, and code fragments must not change the hash.
const triSpecA = `
name tri
params N
vars i j
constraint 0 <= i <= N
constraint 0 <= j <= i
dep left -1 0
dep down 0 -1
`

const triSpecB = `
# same triangle, different spelling
name tri
params N
vars i j
constraint j <= i
constraint i <= N
constraint i >= 0
constraint j > -1
dep left <-1, 0>
dep down <0, -1>
order i j
tile 8 8
elem float64
goal 0 0
kernel:
  ignored by the server
end
`

// Extended-template twins: a variable-distance offset and a range
// dependence, spelled with different bound order, constraint spelling,
// affine term order, and explicit defaults.
const vardistSpecA = `
name vd
params N D
vars i j
constraint 0 <= i <= N
constraint 0 <= j <= N
bound N 1 32
bound D 1 3
dep back <D, 0>
dep band <1, 0> step <0, D> count D + 1
`

const vardistSpecB = `
# same templates, different spelling
name vd
params N D
vars i j
constraint i <= N
constraint i >= 0
constraint j > -1
constraint j <= N
bound D 1 3
bound N 1 32
dep back <D, 0>
dep band <1, 0> step <0, D> count 1 + D
order i j
elem float64
`

func mustParse(t *testing.T, text string) *spec.Spec {
	t.Helper()
	sp, err := spec.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sp
}

func TestCanonicalizeEquivalentSpecs(t *testing.T) {
	a := Canonicalize(mustParse(t, triSpecA))
	b := Canonicalize(mustParse(t, triSpecB))
	if a != b {
		t.Fatalf("equivalent specs canonicalize differently:\n--- A ---\n%s--- B ---\n%s", a, b)
	}
	if SpecHash(a) != SpecHash(b) {
		t.Fatalf("hash mismatch for identical canonical forms")
	}
}

func TestCanonicalizeDistinguishesSemantics(t *testing.T) {
	base := Canonicalize(mustParse(t, triSpecA))
	for _, mod := range []struct{ name, text string }{
		{"constraint", strings.Replace(triSpecA, "j <= i", "j <= i + 1", 1)},
		{"dep order", strings.Replace(triSpecA, "dep left -1 0\ndep down 0 -1", "dep down 0 -1\ndep left -1 0", 1)},
		{"tile", triSpecA + "tile 4 4\n"},
		{"goal", triSpecA + "goal 1 0\n"},
	} {
		got := Canonicalize(mustParse(t, mod.text))
		if got == base {
			t.Errorf("%s change did not change the canonical form", mod.name)
		}
	}
}

func TestCanonicalizeEquivalentExtendedSpecs(t *testing.T) {
	a := Canonicalize(mustParse(t, vardistSpecA))
	b := Canonicalize(mustParse(t, vardistSpecB))
	if a != b {
		t.Fatalf("equivalent extended specs canonicalize differently:\n--- A ---\n%s--- B ---\n%s", a, b)
	}
	if SpecHash(a) != SpecHash(b) {
		t.Fatalf("hash mismatch for identical canonical forms")
	}
}

// Every semantic knob of an extended template — parameter bound,
// variable-distance offset, step, count — must reach the hash.
func TestCanonicalizeDistinguishesTemplates(t *testing.T) {
	base := Canonicalize(mustParse(t, vardistSpecA))
	for _, mod := range []struct{ name, old, new string }{
		{"bound", "bound D 1 3", "bound D 1 2"},
		{"offset", "dep back <D, 0>", "dep back <D, 1>"},
		{"step", "step <0, D>", "step <0, 1>"},
		{"count", "count D + 1", "count D + 2"},
	} {
		text := strings.Replace(vardistSpecA, mod.old, mod.new, 1)
		if text == vardistSpecA {
			t.Fatalf("%s: replacement %q did not apply", mod.name, mod.old)
		}
		got := Canonicalize(mustParse(t, text))
		if got == base {
			t.Errorf("%s change did not change the canonical form", mod.name)
		}
	}
}

// The canonical form of an extended spec must itself be a fixed point
// of parse-then-canonicalize.
func TestCanonicalExtendedFixedPoint(t *testing.T) {
	canon := Canonicalize(mustParse(t, vardistSpecA))
	sp2, err := spec.Parse(canon)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
	}
	if again := Canonicalize(sp2); again != canon {
		t.Fatalf("canonicalization is not a fixed point:\n--- first ---\n%s--- second ---\n%s", canon, again)
	}
	for _, want := range []string{"bound D 1 3", "bound N 1 32", "step <", "count "} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical form lost %q:\n%s", want, canon)
		}
	}
}

// The canonical form must re-parse to a spec with the same canonical
// form (fixed point), for every builtin problem.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, name := range problems.Names() {
		p, err := problems.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		canon := Canonicalize(p.Spec)
		sp2, err := spec.Parse(canon)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v\n%s", name, err, canon)
		}
		if again := Canonicalize(sp2); again != canon {
			t.Errorf("%s: canonicalization is not a fixed point:\n--- first ---\n%s--- second ---\n%s", name, canon, again)
		}
	}
}
