// Admission control: bounded concurrency with bounded waiting. The
// server has two global gates (compile and run) plus one small gate per
// tenant; a request that cannot even queue is shed immediately with
// 429 and a Retry-After estimate instead of growing an unbounded
// backlog — the server degrades by refusing work, never by stalling
// everything it already accepted.

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errShed is returned by gate.enter when the wait queue is full.
var errShed = errors.New("serve: queue full")

// gate bounds concurrent holders (slots) and waiting requests
// (maxQueue); beyond both, enter sheds.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	shed     atomic.Int64
	// holdNs accumulates slot hold time for the Retry-After estimate.
	holdNs    atomic.Int64
	holdCount atomic.Int64
}

func newGate(slots, maxQueue int) *gate {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, slots), maxQueue: int64(maxQueue)}
}

// enter acquires a slot, queueing up to maxQueue waiters; a full queue
// returns errShed without blocking, a cancelled context its error.
func (g *gate) enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return errShed
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// leave releases a slot held since start.
func (g *gate) leave(start time.Time) {
	g.holdNs.Add(time.Since(start).Nanoseconds())
	g.holdCount.Add(1)
	<-g.slots
}

// depth returns current waiters and holders.
func (g *gate) depth() (queued, inflight int64) {
	return g.queued.Load(), int64(len(g.slots))
}

// retryAfter estimates, in whole seconds (>= 1), how long until a shed
// request would plausibly be admitted: the backlog ahead of it divided
// by the gate's drain rate (slots / mean hold time).
func (g *gate) retryAfter() int {
	mean := 100 * time.Millisecond
	if n := g.holdCount.Load(); n > 0 {
		mean = time.Duration(g.holdNs.Load() / n)
	}
	backlog := g.queued.Load() + int64(len(g.slots))
	est := time.Duration(backlog+1) * mean / time.Duration(cap(g.slots))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// tenantGates hands out one admission gate per tenant, created lazily.
type tenantGates struct {
	mu    sync.Mutex
	gates map[string]*gate
	slots int
	queue int
}

func newTenantGates(slots, queue int) *tenantGates {
	return &tenantGates{gates: map[string]*gate{}, slots: slots, queue: queue}
}

func (t *tenantGates) get(tenant string) *gate {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gates[tenant]
	if !ok {
		g = newGate(t.slots, t.queue)
		t.gates[tenant] = g
	}
	return g
}
