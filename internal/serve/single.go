// A minimal singleflight: concurrent callers with one key share one
// execution and one result. This is the request-coalescing layer — N
// identical in-flight queries cost one compile and one engine run — and
// also what keeps a compile stampede on a cold cache to one compile
// per distinct spec. (The stdlib has no singleflight and the repo is
// dependency-free by policy, hence the local implementation.)

package serve

import "sync"

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// flightGroup deduplicates concurrent calls by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn once per concurrently-active key; late callers block and
// share the leader's result. shared reports whether this caller
// coalesced onto another's execution.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
