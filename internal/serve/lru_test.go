package serve

import (
	"fmt"
	"testing"
)

func TestLRUByteBoundEviction(t *testing.T) {
	c := newLRU(0, 100)
	for i := 0; i < 10; i++ {
		c.add(fmt.Sprintf("k%d", i), i, 30) // 10 * 30 = 300 bytes offered
	}
	entries, bytes, _, _, evictions := c.stats()
	if bytes > 100 {
		t.Fatalf("bytes %d over bound 100", bytes)
	}
	if entries != 3 {
		t.Fatalf("entries = %d, want 3 (3*30 <= 100 < 4*30)", entries)
	}
	if evictions != 7 {
		t.Fatalf("evictions = %d, want 7", evictions)
	}
	// The survivors are the most recently added.
	for i := 7; i < 10; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing, want resident", i)
		}
	}
	if _, ok := c.get("k0"); ok {
		t.Errorf("k0 resident, want evicted")
	}
}

func TestLRUEntryBoundAndRecency(t *testing.T) {
	c := newLRU(2, 0)
	c.add("a", 1, 1)
	c.add("b", 2, 1)
	if _, ok := c.get("a"); !ok { // refresh a; b is now coldest
		t.Fatal("a missing")
	}
	c.add("c", 3, 1)
	if _, ok := c.get("b"); ok {
		t.Error("b resident, want evicted (coldest)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted, want resident (recently used)")
	}
}

func TestLRUKeepsSingleOversizeEntry(t *testing.T) {
	c := newLRU(0, 10)
	c.add("big", 1, 1000)
	if _, ok := c.get("big"); !ok {
		t.Fatal("single over-budget entry should stay resident")
	}
	c.add("big2", 2, 1000)
	entries, _, _, _, _ := c.stats()
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
}

func TestLRURefreshUpdatesCost(t *testing.T) {
	c := newLRU(0, 100)
	c.add("k", 1, 40)
	c.add("k", 2, 60)
	entries, bytes, _, _, _ := c.stats()
	if entries != 1 || bytes != 60 {
		t.Fatalf("entries=%d bytes=%d, want 1/60", entries, bytes)
	}
	v, ok := c.get("k")
	if !ok || v.(int) != 2 {
		t.Fatalf("get k = %v/%v, want 2/true", v, ok)
	}
}
