// A size-bounded LRU shared by the compiled-spec cache and the result
// memo. Entries carry an explicit byte cost so the result cache can be
// bounded in memory, not just in entry count; eviction walks from the
// least recently used end until both bounds hold.

package serve

import (
	"container/list"
	"sync"
)

// lruCache is a concurrency-safe LRU bounded by entry count and by
// total entry cost (approximate bytes). A bound of zero disables that
// bound.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List
	items      map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key  string
	val  any
	cost int64
}

func newLRU(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key with the given cost and evicts from
// the cold end until both bounds hold again.
func (c *lruCache) add(key string, val any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for c.over() {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= e.cost
		c.evictions++
	}
}

// over reports whether either bound is exceeded, keeping at least one
// entry so a single over-budget value can still be cached.
func (c *lruCache) over() bool {
	if c.ll.Len() <= 1 {
		return false
	}
	return (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// stats snapshots the cache counters.
func (c *lruCache) stats() (entries int, bytes, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.hits, c.misses, c.evictions
}
