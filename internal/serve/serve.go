// Package serve is the multi-tenant DP query service behind cmd/dpserve:
// a long-running HTTP daemon that accepts spec text (or builtin problem
// names) plus parameters and answers with goal values computed by the
// in-process hybrid runtime.
//
// The expensive artifact is the compiled spec — the Fourier–Motzkin
// nests, Ehrhart counts, tiling, pack/unpack scans of dpgen/internal/
// tiling plus the per-(params, nodes) load balance of engine.Prepare —
// so the server is built around amortizing it:
//
//   - a compiled-spec cache keyed by the content hash of the
//     canonicalized spec (canonical.go), with compile failures cached
//     negatively so a bad spec is rejected from cache instead of
//     re-occupying the compile queue;
//   - request coalescing: identical in-flight (spec, kernel, params)
//     queries share one engine run via singleflight (single.go);
//   - a size-bounded LRU result memo (lru.go) — results are
//     bit-identical across node/thread/scheduler configurations by the
//     engine's determinism guarantee, so the memo key deliberately
//     excludes them;
//   - admission control (admission.go): bounded compile and run queues
//     plus per-tenant concurrency caps, shedding with 429 + Retry-After
//     under overload and 503 while draining.
//
// Per-tenant Prometheus families and compile/run/request latency
// histograms are served at /metrics (metrics.go). docs/SERVING.md is
// the operator reference.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/obs"
	"dpgen/internal/problems"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// Options configures a Server. Zero values select the noted defaults.
type Options struct {
	// MaxConcurrentRuns bounds engine runs in flight (default
	// runtime.GOMAXPROCS(0)); MaxRunQueue bounds requests waiting for a
	// run slot (default 64) — beyond it, requests shed with 429.
	MaxConcurrentRuns int
	MaxRunQueue       int
	// MaxConcurrentCompiles bounds spec compiles in flight (default 2);
	// MaxCompileQueue bounds waiters (default 16).
	MaxConcurrentCompiles int
	MaxCompileQueue       int
	// TenantConcurrency caps one tenant's concurrent admitted requests
	// (default MaxConcurrentRuns); TenantQueue its waiters (default
	// MaxRunQueue).
	TenantConcurrency int
	TenantQueue       int
	// SpecCacheEntries bounds the compiled-spec cache (default 256
	// entries, including negative entries).
	SpecCacheEntries int
	// ResultCacheEntries and ResultCacheBytes bound the result memo
	// (defaults 4096 entries, 16 MiB; set ResultCacheEntries < 0 to
	// disable the memo entirely).
	ResultCacheEntries int
	ResultCacheBytes   int64
	// MaxNodes and MaxThreads cap what a request may ask for (defaults
	// 8 and runtime.GOMAXPROCS(0)).
	MaxNodes   int
	MaxThreads int
	// MaxBodyBytes caps a request body, spec text included (default
	// 1 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrentRuns <= 0 {
		o.MaxConcurrentRuns = runtime.GOMAXPROCS(0)
	}
	if o.MaxRunQueue == 0 {
		o.MaxRunQueue = 64
	}
	if o.MaxConcurrentCompiles <= 0 {
		o.MaxConcurrentCompiles = 2
	}
	if o.MaxCompileQueue == 0 {
		o.MaxCompileQueue = 16
	}
	if o.TenantConcurrency <= 0 {
		o.TenantConcurrency = o.MaxConcurrentRuns
	}
	if o.TenantQueue == 0 {
		o.TenantQueue = o.MaxRunQueue
	}
	if o.SpecCacheEntries <= 0 {
		o.SpecCacheEntries = 256
	}
	if o.ResultCacheEntries == 0 {
		o.ResultCacheEntries = 4096
	}
	if o.ResultCacheBytes <= 0 {
		o.ResultCacheBytes = 16 << 20
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 8
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = runtime.GOMAXPROCS(0)
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Server is the multi-tenant query service. Create with New, mount
// Handler on any HTTP server or use Listen, stop accepting with Drain.
type Server struct {
	opts  Options
	start time.Time
	met   *metrics

	specCache   *lruCache // spec hash -> *compiledSpec
	resultCache *lruCache // result key -> memoResult
	flights     flightGroup

	compileGate *gate
	runGate     *gate
	tenants     *tenantGates

	draining atomic.Bool

	// testRunStarted, when set by tests, is invoked at the start of
	// every engine run (inside the run slot).
	testRunStarted func()
}

// compiledSpec is one compiled-spec cache entry: the parsed spec and
// its tiling analysis, or the negatively cached compile failure, plus
// the prepared per-(params, nodes) run fronts.
type compiledSpec struct {
	hash      string
	canonical string
	sp        *spec.Spec
	tl        *tiling.Tiling
	err       error // non-nil: negative entry
	compileMs float64

	mu       sync.Mutex
	prepared map[string]*engine.Prepared
}

// memoResult is one result-memo entry.
type memoResult struct {
	value float64
	max   float64
	cells int64
}

// memoResultCost is the approximate per-entry result-memo footprint:
// three 8-byte fields, the key string, map/list overhead.
const memoResultCost = 160

// New creates a Server with the given options.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	resultEntries := opts.ResultCacheEntries
	if resultEntries < 0 {
		resultEntries = 1 // effectively disabled; get() never consulted
	}
	return &Server{
		opts:        opts,
		start:       time.Now(),
		met:         newMetrics(),
		specCache:   newLRU(opts.SpecCacheEntries, 0),
		resultCache: newLRU(resultEntries, opts.ResultCacheBytes),
		compileGate: newGate(opts.MaxConcurrentCompiles, opts.MaxCompileQueue),
		runGate:     newGate(opts.MaxConcurrentRuns, opts.MaxRunQueue),
		tenants:     newTenantGates(opts.TenantConcurrency, opts.TenantQueue),
	}
}

// Drain makes the server refuse new queries with 503 while in-flight
// requests finish — the shutdown half of load shedding.
func (s *Server) Drain() { s.draining.Store(true) }

// Handler returns the server's HTTP handler: /v1/query, /v1/compile,
// /v1/catalog, /v1/stats, /metrics, /healthz and /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/catalog", s.handleCatalog)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.met.writePrometheus(w, s); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running HTTP endpoint for one Server (Listen).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with port :0).
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close stops the endpoint.
func (h *HTTPServer) Close() error { return h.srv.Close() }

// Listen serves the Handler on addr (host:port; port 0 picks a free
// one) in a background goroutine.
func (s *Server) Listen(addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	h := &HTTPServer{ln: ln, srv: &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}}
	go h.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return h, nil
}

// apiError is an error with an HTTP status and a stable code; shed
// errors additionally carry a Retry-After estimate.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: ErrBadRequest, msg: fmt.Sprintf(format, args...)}
}

func shedError(g *gate) *apiError {
	return &apiError{
		status:     http.StatusTooManyRequests,
		code:       ErrOverloaded,
		msg:        "serve: overloaded, queue full",
		retryAfter: g.retryAfter(),
	}
}

// writeError renders an apiError (or wraps any error as 500).
func writeError(w http.ResponseWriter, err error) *apiError {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = &apiError{status: http.StatusInternalServerError, code: ErrInternal, msg: err.Error()}
	}
	if ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	json.NewEncoder(w).Encode(ErrorResponse{Code: ae.code, Error: ae.msg}) //nolint:errcheck
	return ae
}

// resolved is a request after name resolution and validation, before
// compilation.
type resolved struct {
	canonical  string
	hash       string
	kernelName string
	kernel     engine.Kernel
	params     []int64
	nodes      int
	threads    int
	sched      engine.Sched
	// parse rebuilds the compiled artifacts on a spec-cache miss.
	parse func() (*spec.Spec, error)
	// parseErr is a spec-text parse/validate failure: the request is a
	// compile error attributable to (and negatively cached under) the
	// raw spec text.
	parseErr error
}

// resolve validates a QueryRequest into a resolved query.
func (s *Server) resolve(req *QueryRequest) (*resolved, *apiError) {
	if (req.Problem == "") == (req.Spec == "") {
		return nil, badRequest("serve: exactly one of problem and spec must be set")
	}
	r := &resolved{
		params:  append([]int64(nil), req.Params...),
		nodes:   req.Nodes,
		threads: req.Threads,
	}
	if r.nodes == 0 {
		r.nodes = 1
	}
	if r.threads == 0 {
		r.threads = 1
	}
	if r.nodes < 1 || r.nodes > s.opts.MaxNodes {
		return nil, badRequest("serve: nodes %d out of range [1, %d]", r.nodes, s.opts.MaxNodes)
	}
	if r.threads < 1 || r.threads > s.opts.MaxThreads {
		return nil, badRequest("serve: threads %d out of range [1, %d]", r.threads, s.opts.MaxThreads)
	}
	switch req.Sched {
	case "", "hybrid":
		r.sched = engine.SchedHybrid
	case "dynamic":
		r.sched = engine.SchedDynamic
	default:
		return nil, badRequest("serve: unknown scheduler %q (want hybrid or dynamic)", req.Sched)
	}

	if req.Problem != "" {
		if req.Kernel != "" {
			return nil, badRequest("serve: kernel applies only to spec requests (builtin problems carry their own)")
		}
		p, err := problems.Get(req.Problem)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		r.canonical = Canonicalize(p.Spec)
		r.hash = SpecHash(r.canonical)
		r.kernelName = "builtin:" + req.Problem
		r.kernel = p.Kernel
		if len(r.params) == 0 {
			r.params = append([]int64(nil), p.DefaultParams...)
		}
		if len(r.params) != len(p.Spec.Params) {
			return nil, badRequest("serve: problem %s wants %d params, got %d", req.Problem, len(p.Spec.Params), len(r.params))
		}
		if err := p.Spec.CheckParams(r.params); err != nil {
			return nil, badRequest("%v", err)
		}
		if p.FixedParams {
			// The kernel closes over inputs sized by the defaults; other
			// values would index out of the baked-in data.
			for i, v := range r.params {
				if v != p.DefaultParams[i] {
					return nil, badRequest("serve: problem %s has fixed params %v (its inputs are baked into the kernel)", req.Problem, p.DefaultParams)
				}
			}
		}
		name := req.Problem
		r.parse = func() (*spec.Spec, error) {
			p, err := problems.Get(name)
			if err != nil {
				return nil, err
			}
			return p.Spec, nil
		}
		return r, nil
	}

	kname := req.Kernel
	if kname == "" {
		kname = DefaultKernel
	}
	kernel, err := lookupKernel(kname)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	r.kernelName, r.kernel = kname, kernel
	text := req.Spec
	sp, err := spec.Parse(text)
	if err != nil {
		// Unparseable text cannot be canonicalized; negative-cache it
		// under the hash of the raw text so repeats stay out of the
		// compile queue.
		r.hash = SpecHash("raw:" + text)
		r.parseErr = err
		return r, nil
	}
	r.canonical = Canonicalize(sp)
	r.hash = SpecHash(r.canonical)
	r.parse = func() (*spec.Spec, error) { return spec.Parse(text) }
	if len(r.params) != len(sp.Params) {
		return nil, badRequest("serve: spec %s wants %d params, got %d", sp.Name, len(sp.Params), len(r.params))
	}
	// Out-of-bounds template parameters would step outside the ghost
	// shells and tile crossings the compiled program was sized for.
	if err := sp.CheckParams(r.params); err != nil {
		return nil, badRequest("%v", err)
	}
	return r, nil
}

// getCompiled returns the compiled-spec cache entry for r, compiling
// (under the compile gate, coalesced per hash) on a miss. Negative
// entries count as hits. The returned entry's err field carries a
// negatively cached compile failure.
func (s *Server) getCompiled(ctx context.Context, r *resolved) (cs *compiledSpec, cached bool, err error) {
	if v, ok := s.specCache.get(r.hash); ok {
		return v.(*compiledSpec), true, nil
	}
	v, err, shared := s.flights.do("c:"+r.hash, func() (any, error) {
		if v, ok := s.specCache.get(r.hash); ok {
			return v, nil
		}
		if err := s.compileGate.enter(ctx); err != nil {
			if errors.Is(err, errShed) {
				return nil, shedError(s.compileGate)
			}
			return nil, err
		}
		t0 := time.Now()
		defer s.compileGate.leave(t0)
		cs := &compiledSpec{hash: r.hash, canonical: r.canonical, prepared: map[string]*engine.Prepared{}}
		if r.parseErr != nil {
			cs.err = r.parseErr
		} else {
			sp, err := r.parse()
			if err == nil {
				cs.sp = sp
				cs.tl, err = tiling.New(sp)
			}
			cs.err = err
		}
		cs.compileMs = float64(time.Since(t0).Nanoseconds()) / 1e6
		s.met.compileHist.ObserveNs(time.Since(t0).Nanoseconds())
		s.met.compiles.Add(1)
		if cs.err != nil {
			s.met.compileErrors.Add(1)
		}
		s.specCache.add(r.hash, cs, int64(len(r.canonical))+1024)
		return cs, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*compiledSpec), shared, nil
}

// getPrepared returns the prepared run front for (cs, params, nodes),
// building and caching it on first use (coalesced per key).
func (s *Server) getPrepared(cs *compiledSpec, params []int64, nodes int) (*engine.Prepared, error) {
	key := fmt.Sprintf("%d|%v", nodes, params)
	cs.mu.Lock()
	prep, ok := cs.prepared[key]
	cs.mu.Unlock()
	if ok {
		return prep, nil
	}
	v, err, _ := s.flights.do("p:"+cs.hash+"|"+key, func() (any, error) {
		cs.mu.Lock()
		prep, ok := cs.prepared[key]
		cs.mu.Unlock()
		if ok {
			return prep, nil
		}
		prep, err := engine.Prepare(cs.tl, params, nodes, balance.Prefix)
		if err != nil {
			return nil, err
		}
		cs.mu.Lock()
		cs.prepared[key] = prep
		cs.mu.Unlock()
		return prep, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*engine.Prepared), nil
}

// resultKey is the result-memo and coalescing key. Node, thread and
// scheduler counts are deliberately absent: the engine guarantees
// bit-identical cell values across them, so configurations share
// results.
func (r *resolved) resultKey() string {
	return "r:" + r.hash + "|" + r.kernelName + "|" + fmt.Sprint(r.params)
}

// outcome is what a query computation produces for response assembly.
type outcome struct {
	res           memoResult
	compileCached bool
	compileMs     float64
	runMs         float64
	trace         json.RawMessage
}

// compute runs the full pipeline for one resolved query: compile (or
// spec-cache hit), prepare, admission, engine run, memoization.
func (s *Server) compute(ctx context.Context, r *resolved, tenant string, memoize, withTrace bool) (*outcome, error) {
	cs, compCached, err := s.getCompiled(ctx, r)
	if err != nil {
		return nil, err
	}
	if cs.err != nil {
		return nil, &apiError{status: http.StatusBadRequest, code: ErrCompile,
			msg: fmt.Sprintf("serve: spec %s failed to compile: %v", cs.hash, cs.err)}
	}
	prep, err := s.getPrepared(cs, r.params, r.nodes)
	if err != nil {
		return nil, err
	}

	tg := s.tenants.get(tenant)
	if err := tg.enter(ctx); err != nil {
		if errors.Is(err, errShed) {
			return nil, shedError(tg)
		}
		return nil, err
	}
	tStart := time.Now()
	defer tg.leave(tStart)
	if err := s.runGate.enter(ctx); err != nil {
		if errors.Is(err, errShed) {
			return nil, shedError(s.runGate)
		}
		return nil, err
	}
	t0 := time.Now()
	defer s.runGate.leave(t0)

	if s.testRunStarted != nil {
		s.testRunStarted()
	}
	cfg := engine.Config{Nodes: r.nodes, Threads: r.threads, Sched: r.sched}
	var tracer *obs.Tracer
	if withTrace {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	res, err := prep.Run(r.kernel, cfg)
	runNs := time.Since(t0).Nanoseconds()
	s.met.runHist.ObserveNs(runNs)
	s.met.runs.Add(1)
	if err != nil {
		return nil, fmt.Errorf("serve: engine run failed: %w", err)
	}
	var cells int64
	for i := range res.Stats {
		cells += res.Stats[i].CellsComputed
	}
	out := &outcome{
		res:           memoResult{value: res.Value, max: res.Max, cells: cells},
		compileCached: compCached,
		compileMs:     cs.compileMs,
		runMs:         float64(runNs) / 1e6,
	}
	if compCached {
		out.compileMs = 0
	}
	if tracer != nil {
		var b strings.Builder
		if err := tracer.Snapshot().WriteChrome(&b); err == nil {
			out.trace = json.RawMessage(b.String())
		}
	}
	if memoize && s.opts.ResultCacheEntries >= 0 {
		s.resultCache.add(r.resultKey(), out.res, memoResultCost+int64(len(r.resultKey())))
	}
	return out, nil
}

// handleQuery serves POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.met.requestHist.ObserveNs(time.Since(t0).Nanoseconds()) }()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if ae := s.decode(w, r, &req); ae != nil {
		s.count("default", ae)
		writeError(w, ae)
		return
	}
	tenant := s.tenantOf(r, &req)
	if s.draining.Load() {
		ae := &apiError{status: http.StatusServiceUnavailable, code: ErrShutdown, msg: "serve: draining"}
		s.count(tenant, ae)
		writeError(w, ae)
		return
	}
	rq, ae := s.resolve(&req)
	if ae != nil {
		s.count(tenant, ae)
		writeError(w, ae)
		return
	}

	resp := QueryResponse{SpecHash: rq.hash, Kernel: rq.kernelName}
	useMemo := !req.NoResultCache && !req.Trace && s.opts.ResultCacheEntries >= 0
	if useMemo && rq.parseErr == nil {
		if v, ok := s.resultCache.get(rq.resultKey()); ok {
			s.met.tenant(tenant).resultHit.Add(1)
			s.finishQuery(w, tenant, &resp, v.(memoResult), true)
			return
		}
	}

	var out *outcome
	var err error
	if req.Trace {
		out, err = s.compute(r.Context(), rq, tenant, false, true)
	} else {
		var v any
		var shared bool
		v, err, shared = s.flights.do(rq.resultKey(), func() (any, error) {
			return s.compute(r.Context(), rq, tenant, useMemo, false)
		})
		if err == nil {
			out = v.(*outcome)
			resp.Coalesced = shared
			if shared {
				s.met.tenant(tenant).coalesced.Add(1)
				s.met.coalesced.Add(1)
			}
		}
	}
	if err != nil {
		ae := writeError(w, err)
		s.count(tenant, ae)
		return
	}
	resp.CompileCached = out.compileCached
	resp.CompileMs = out.compileMs
	resp.RunMs = out.runMs
	resp.Trace = out.trace
	s.finishQuery(w, tenant, &resp, out.res, false)
}

// finishQuery fills the result fields and writes the 200 response.
func (s *Server) finishQuery(w http.ResponseWriter, tenant string, resp *QueryResponse, res memoResult, cached bool) {
	resp.Value = res.value
	resp.Cells = res.cells
	resp.Cached = cached
	if cached {
		resp.CompileCached = true
	}
	if res.max == res.max { // not NaN
		m := res.max
		resp.Max = &m
	}
	s.met.tenant(tenant).ok.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// handleCompile serves POST /v1/compile: compile (or confirm cached)
// without running — cache warming for latency-sensitive tenants.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if ae := s.decode(w, r, &req); ae != nil {
		s.count("default", ae)
		writeError(w, ae)
		return
	}
	tenant := s.tenantOf(r, &req)
	if s.draining.Load() {
		ae := &apiError{status: http.StatusServiceUnavailable, code: ErrShutdown, msg: "serve: draining"}
		s.count(tenant, ae)
		writeError(w, ae)
		return
	}
	// Parameter arity is unknowable without the spec; tolerate missing
	// params on compile by resolving with a placeholder count.
	rq, ae := s.resolveForCompile(&req)
	if ae != nil {
		s.count(tenant, ae)
		writeError(w, ae)
		return
	}
	cs, cached, err := s.getCompiled(r.Context(), rq)
	if err != nil {
		ae := writeError(w, err)
		s.count(tenant, ae)
		return
	}
	if cs.err != nil {
		ae := &apiError{status: http.StatusBadRequest, code: ErrCompile,
			msg: fmt.Sprintf("serve: spec %s failed to compile: %v", cs.hash, cs.err)}
		s.count(tenant, ae)
		writeError(w, ae)
		return
	}
	s.met.tenant(tenant).ok.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(CompileResponse{ //nolint:errcheck
		SpecHash:      cs.hash,
		CompileCached: cached,
		CompileMs:     cs.compileMs,
		Canonical:     cs.canonical,
	})
}

// resolveForCompile is resolve without the parameter-arity check —
// /v1/compile takes no parameters.
func (s *Server) resolveForCompile(req *QueryRequest) (*resolved, *apiError) {
	if (req.Problem == "") == (req.Spec == "") {
		return nil, badRequest("serve: exactly one of problem and spec must be set")
	}
	if req.Problem != "" {
		p, err := problems.Get(req.Problem)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		canon := Canonicalize(p.Spec)
		name := req.Problem
		return &resolved{canonical: canon, hash: SpecHash(canon), parse: func() (*spec.Spec, error) {
			p, err := problems.Get(name)
			if err != nil {
				return nil, err
			}
			return p.Spec, nil
		}}, nil
	}
	text := req.Spec
	sp, err := spec.Parse(text)
	if err != nil {
		return &resolved{hash: SpecHash("raw:" + text), parseErr: err}, nil
	}
	canon := Canonicalize(sp)
	return &resolved{canonical: canon, hash: SpecHash(canon),
		parse: func() (*spec.Spec, error) { return spec.Parse(text) }}, nil
}

// handleCatalog serves GET /v1/catalog: builtin problems and generic
// kernels.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"problems": problems.Names(),
		"kernels":  GenericKernels(),
	})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Uptime:     time.Since(s.start).Seconds(),
		Requests:   map[string]int64{},
		QueueDepth: map[string]int64{},
		Inflight:   map[string]int64{},
	}
	s.met.mu.RLock()
	for _, ts := range s.met.tenants {
		resp.Requests["ok"] += ts.ok.Load()
		resp.Requests["bad_request"] += ts.badReq.Load()
		resp.Requests["shed"] += ts.shed.Load()
		resp.Requests["error"] += ts.failed.Load()
	}
	s.met.mu.RUnlock()
	fill := func(cs *CacheStats, c *lruCache) {
		cs.Entries, cs.Bytes, cs.Hits, cs.Misses, cs.Evictions = c.stats()
	}
	fill(&resp.SpecCache, s.specCache)
	fill(&resp.ResultCache, s.resultCache)
	resp.Coalesced = s.met.coalesced.Load()
	resp.Shed = s.met.shed.Load()
	resp.CompileErrors = s.met.compileErrors.Load()
	resp.Compiles = s.met.compiles.Load()
	resp.Runs = s.met.runs.Load()
	for name, g := range map[string]*gate{"compile": s.compileGate, "run": s.runGate} {
		q, in := g.depth()
		resp.QueueDepth[name] = q
		resp.Inflight[name] = in
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// decode reads a JSON request body under the body-size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into *QueryRequest) *apiError {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		return &apiError{status: http.StatusRequestEntityTooLarge, code: ErrBadRequest,
			msg: fmt.Sprintf("serve: request body over %d bytes", s.opts.MaxBodyBytes)}
	}
	if err := json.Unmarshal(data, into); err != nil {
		return badRequest("serve: bad JSON: %v", err)
	}
	return nil
}

// tenantOf resolves the request's tenant: X-DP-Tenant header, then the
// body field, then "default".
func (s *Server) tenantOf(r *http.Request, req *QueryRequest) string {
	if t := r.Header.Get("X-DP-Tenant"); t != "" {
		return t
	}
	if req.Tenant != "" {
		return req.Tenant
	}
	return "default"
}

// count books a failed request into the tenant's counters.
func (s *Server) count(tenant string, ae *apiError) {
	ts := s.met.tenant(tenant)
	switch {
	case ae.status == http.StatusTooManyRequests:
		ts.shed.Add(1)
		s.met.shed.Add(1)
	case ae.status >= 500:
		ts.failed.Add(1)
	default:
		ts.badReq.Add(1)
	}
}
