// Spec canonicalization: the cache key of the compiled-spec cache.
// Two requests whose spec texts differ only in comments, whitespace,
// constraint spelling (0 <= x vs x >= 0), constraint order, or code
// fragments map to one canonical form, one hash, and one compiled
// program. Code fragments are excluded deliberately: the in-process
// server resolves kernels from its registry by name (see kernels.go),
// so the polyhedral artifacts being cached — FM nests, Ehrhart counts,
// tiling, pack/unpack scans — do not depend on them. Everything that
// does shape those artifacts (names, variables, constraints, the
// dependence vectors in declaration order, loop order, balance dims,
// tile widths, element type, goal) is part of the canonical form.

package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"dpgen/internal/lin"
	"dpgen/internal/spec"
)

// Canonicalize renders a parsed, validated spec into its canonical
// text form: directives in fixed order, constraints tightened and
// sorted, dependence vectors in declaration order (their order is
// semantic — kernels address them by index), defaults made explicit.
// The output re-parses to an equivalent spec.
func Canonicalize(sp *spec.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", sp.Name)
	if len(sp.Params) > 0 {
		fmt.Fprintf(&b, "params %s\n", strings.Join(sp.Params, " "))
	}
	fmt.Fprintf(&b, "vars %s\n", strings.Join(sp.Vars, " "))

	cons := make([]string, 0, len(sp.Constraints))
	seen := map[string]bool{}
	for _, q := range sp.Constraints {
		c := renderIneq(q.Tighten())
		if !seen[c] {
			seen[c] = true
			cons = append(cons, c)
		}
	}
	sort.Strings(cons)
	for _, c := range cons {
		fmt.Fprintf(&b, "constraint %s\n", c)
	}
	// Parameter bounds sorted by name: declaration order is not
	// semantic, only the (name, lo, hi) set is.
	bounds := append([]spec.ParamBound(nil), sp.ParamBounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Name < bounds[j].Name })
	for _, pb := range bounds {
		fmt.Fprintf(&b, "bound %s %d %d\n", pb.Name, pb.Lo, pb.Hi)
	}
	for j := range sp.Deps {
		// FormatDep renders each component as a normalized affine form,
		// so parameter offsets, steps, and counts survive the round trip;
		// for constant point templates it degenerates to the plain
		// integer vector.
		name, base, dir, count := sp.FormatDep(j)
		if dir == "" {
			fmt.Fprintf(&b, "dep %s <%s>\n", name, base)
		} else {
			fmt.Fprintf(&b, "dep %s <%s> step <%s> count %s\n", name, base, dir, count)
		}
	}
	fmt.Fprintf(&b, "order %s\n", strings.Join(sp.Order(), " "))
	fmt.Fprintf(&b, "balance %s\n", strings.Join(sp.Balance(), " "))
	widths := make([]string, 0, len(sp.Vars))
	for _, w := range sp.Widths() {
		widths = append(widths, fmt.Sprintf("%d", w))
	}
	fmt.Fprintf(&b, "tile %s\n", strings.Join(widths, " "))
	fmt.Fprintf(&b, "elem %s\n", sp.ElemType())
	goal := make([]string, 0, len(sp.Vars))
	for _, g := range sp.GoalPoint() {
		goal = append(goal, fmt.Sprintf("%d", g))
	}
	fmt.Fprintf(&b, "goal %s\n", strings.Join(goal, " "))
	return b.String()
}

// renderIneq renders expr >= 0 as "pos >= neg" with only nonnegative
// terms on each side, so the result survives a round trip through the
// constraint parser (which has no unary minus).
func renderIneq(q lin.Ineq) string {
	space := q.Space()
	var pos, neg []string
	for i, c := range q.Coef {
		name := space.Name(i)
		switch {
		case c == 1:
			pos = append(pos, name)
		case c > 1:
			pos = append(pos, fmt.Sprintf("%d*%s", c, name))
		case c == -1:
			neg = append(neg, name)
		case c < -1:
			neg = append(neg, fmt.Sprintf("%d*%s", -c, name))
		}
	}
	if q.K > 0 {
		pos = append(pos, fmt.Sprintf("%d", q.K))
	} else if q.K < 0 {
		neg = append(neg, fmt.Sprintf("%d", -q.K))
	}
	lhs, rhs := strings.Join(pos, " + "), strings.Join(neg, " + ")
	if lhs == "" {
		lhs = "0"
	}
	if rhs == "" {
		rhs = "0"
	}
	return lhs + " >= " + rhs
}

// SpecHash returns the content hash of a canonical spec form — the
// compiled-spec cache key, reported to clients as specHash.
func SpecHash(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:16])
}
