package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpgen/internal/problems"
)

// testServer wires a Server to an httptest endpoint.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 8 // independent of the host's GOMAXPROCS
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends req to path and decodes the response into out (when the
// status is 2xx) or returns the raw body.
func post(t *testing.T, url, path string, req QueryRequest, out any) (status int, body []byte, hdr http.Header) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s response: %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode, body, resp.Header
}

func query(t *testing.T, url string, req QueryRequest) QueryResponse {
	t.Helper()
	var qr QueryResponse
	status, body, _ := post(t, url, "/v1/query", req, &qr)
	if status != http.StatusOK {
		t.Fatalf("query: status %d\n%s", status, body)
	}
	return qr
}

// Served builtin answers must match the independent serial references,
// across node/thread configurations.
func TestQueryBuiltinMatchesSerial(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, name := range []string{"editdist", "bandit2", "localalign"} {
		p, err := problems.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		want := p.Serial(p.DefaultParams)
		for _, cfg := range []struct{ nodes, threads int }{{1, 1}, {2, 2}} {
			qr := query(t, ts.URL, QueryRequest{Problem: name, Nodes: cfg.nodes, Threads: cfg.threads})
			got := qr.Value
			if p.UseMax {
				if qr.Max == nil {
					t.Fatalf("%s: no max in response", name)
				}
				got = *qr.Max
			}
			if got != want {
				t.Errorf("%s n=%d t=%d: got %v, want %v", name, cfg.nodes, cfg.threads, got, want)
			}
		}
	}
}

// Spec-text queries with extended templates (variable-distance offsets
// and range dependences) compile and run end to end, bit-identically
// across node/thread configurations, and within-bounds parameter
// values are accepted.
func TestQueryExtendedSpecText(t *testing.T) {
	_, ts := testServer(t, Options{})
	for _, kernel := range []string{"", "sum", "longest"} {
		base := query(t, ts.URL, QueryRequest{Spec: vardistSpecA, Kernel: kernel, Params: []int64{8, 2}})
		for _, cfg := range []struct{ nodes, threads int }{{2, 2}, {1, 4}} {
			qr := query(t, ts.URL, QueryRequest{Spec: vardistSpecA, Kernel: kernel,
				Params: []int64{8, 2}, Nodes: cfg.nodes, Threads: cfg.threads, NoResultCache: true})
			if qr.Value != base.Value {
				t.Errorf("kernel %q n=%d t=%d: value %v, want %v", kernel, cfg.nodes, cfg.threads, qr.Value, base.Value)
			}
		}
	}
}

// A repeated identical query is a result-memo hit: no second compile,
// no second run, identical answer. The memo key excludes nodes/threads
// (engine results are bit-identical across configurations), so a
// different configuration of the same query also hits.
func TestResultMemoHit(t *testing.T) {
	s, ts := testServer(t, Options{})
	q1 := query(t, ts.URL, QueryRequest{Problem: "editdist", Nodes: 2, Threads: 2})
	if q1.Cached {
		t.Fatal("first query reported cached")
	}
	q2 := query(t, ts.URL, QueryRequest{Problem: "editdist", Nodes: 2, Threads: 2})
	if !q2.Cached {
		t.Fatal("second identical query missed the result memo")
	}
	q3 := query(t, ts.URL, QueryRequest{Problem: "editdist", Nodes: 1, Threads: 4})
	if !q3.Cached {
		t.Fatal("same query at a different node/thread config missed the memo")
	}
	if q2.Value != q1.Value || q3.Value != q1.Value {
		t.Fatalf("cached values diverge: %v %v %v", q1.Value, q2.Value, q3.Value)
	}
	if got := s.met.runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	if got := s.met.compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1", got)
	}
}

// Two concurrent identical spec-text queries compile once and run
// once: the second coalesces onto the first's in-flight execution.
func TestConcurrentIdenticalQueriesCoalesce(t *testing.T) {
	s, ts := testServer(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testRunStarted = func() {
		once.Do(func() { close(started) })
		<-release
	}

	req := QueryRequest{Spec: triSpecA, Params: []int64{40}, NoResultCache: true}
	results := make(chan QueryResponse, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- query(t, ts.URL, req)
		}()
		if i == 0 {
			<-started // leader is inside its run slot
		}
	}
	// Give the follower time to reach the coalescing point, then let
	// the leader finish. (If the follower were somehow late, it would
	// run separately and the runs==1 assertion below would catch it.)
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)

	var coalesced int
	var vals []float64
	for r := range results {
		if r.Coalesced {
			coalesced++
		}
		vals = append(vals, r.Value)
	}
	if got := s.met.compiles.Load(); got != 1 {
		t.Errorf("compiles = %d, want 1", got)
	}
	if got := s.met.runs.Load(); got != 1 {
		t.Errorf("runs = %d, want 1 (second query should coalesce)", got)
	}
	if coalesced != 1 {
		t.Errorf("coalesced responses = %d, want exactly 1", coalesced)
	}
	if len(vals) == 2 && vals[0] != vals[1] {
		t.Errorf("coalesced values diverge: %v vs %v", vals[0], vals[1])
	}
}

// A spec that fails to compile is negatively cached: the second
// submission is rejected from cache without a second compile, and the
// server keeps answering good queries.
func TestNegativeCompileCache(t *testing.T) {
	s, ts := testServer(t, Options{})
	bad := []QueryRequest{
		// Unbounded space: parses, fails polyhedral analysis.
		{Spec: "name unbounded\nparams N\nvars i\nconstraint i >= 0\ndep d -1\n", Params: []int64{5}},
		// Unparseable text.
		{Spec: "this is not a spec"},
	}
	for _, req := range bad {
		for round := 0; round < 2; round++ {
			status, body, _ := post(t, ts.URL, "/v1/query", req, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("bad spec round %d: status %d\n%s", round, status, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Code != ErrCompile {
				t.Fatalf("bad spec round %d: code %q (err %v), want %q", round, er.Code, err, ErrCompile)
			}
		}
	}
	if got := s.met.compiles.Load(); got != 2 {
		t.Errorf("compiles = %d, want 2 (one per distinct bad spec, repeats cached)", got)
	}
	if got := s.met.compileErrors.Load(); got != 2 {
		t.Errorf("compileErrors = %d, want 2", got)
	}
	// The queue is not poisoned: a good query still works.
	qr := query(t, ts.URL, QueryRequest{Problem: "lcs2"})
	if math.IsNaN(qr.Value) {
		t.Fatal("good query after bad specs returned NaN")
	}
}

// Equivalent spec texts share one compiled program: the second text
// spelling reports the same specHash and a compile cache hit.
func TestEquivalentSpecsShareCompiledProgram(t *testing.T) {
	s, ts := testServer(t, Options{})
	q1 := query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{30}})
	q2 := query(t, ts.URL, QueryRequest{Spec: triSpecB, Params: []int64{30}})
	if q1.SpecHash != q2.SpecHash {
		t.Fatalf("spec hashes differ: %s vs %s", q1.SpecHash, q2.SpecHash)
	}
	if !q2.Cached && !q2.CompileCached {
		t.Error("second spelling did not reuse the compiled program")
	}
	if got := s.met.compiles.Load(); got != 1 {
		t.Errorf("compiles = %d, want 1", got)
	}
	if q1.Value != q2.Value {
		t.Errorf("values differ: %v vs %v", q1.Value, q2.Value)
	}
}

// Under overload the server sheds with 429 and a Retry-After estimate
// instead of queueing without bound.
func TestOverloadSheds429WithRetryAfter(t *testing.T) {
	s, ts := testServer(t, Options{
		MaxConcurrentRuns: 1,
		MaxRunQueue:       -1, // no run queue: second run sheds immediately
		TenantConcurrency: 4,
		TenantQueue:       4,
	})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.testRunStarted = func() {
		once.Do(func() { close(started) })
		<-release
	}

	done := make(chan QueryResponse, 1)
	go func() { done <- query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{40}}) }()
	<-started

	// Distinct params: no coalescing, needs its own run slot.
	status, body, hdr := post(t, ts.URL, "/v1/query", QueryRequest{Spec: triSpecA, Params: []int64{41}}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded query: status %d, want 429\n%s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != ErrOverloaded {
		t.Fatalf("overloaded query: code %q (err %v), want %q", er.Code, err, ErrOverloaded)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	close(release)
	<-done
	if got := s.met.shed.Load(); got < 1 {
		t.Errorf("shed counter = %d, want >= 1", got)
	}
}

// A draining server refuses new queries with 503 but keeps /metrics
// and /v1/stats up.
func TestDrainRefusesWith503(t *testing.T) {
	s, ts := testServer(t, Options{})
	query(t, ts.URL, QueryRequest{Problem: "lcs2"})
	s.Drain()
	status, body, _ := post(t, ts.URL, "/v1/query", QueryRequest{Problem: "lcs2"}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503\n%s", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Code != ErrShutdown {
		t.Fatalf("code %q (err %v), want %q", er.Code, err, ErrShutdown)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics while draining: %v status %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// Bad requests are 400 with stable codes.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{MaxNodes: 2})
	for _, tc := range []struct {
		name string
		req  QueryRequest
	}{
		{"neither problem nor spec", QueryRequest{}},
		{"both problem and spec", QueryRequest{Problem: "lcs2", Spec: triSpecA}},
		{"unknown problem", QueryRequest{Problem: "nope"}},
		{"unknown kernel", QueryRequest{Spec: triSpecA, Kernel: "nope", Params: []int64{4}}},
		{"kernel with builtin", QueryRequest{Problem: "lcs2", Kernel: "mix"}},
		{"wrong param count", QueryRequest{Problem: "lcs2", Params: []int64{1, 2, 3, 4, 5}}},
		{"non-default params on a fixed-params problem", QueryRequest{Problem: "editdist", Params: []int64{10, 10}}},
		{"nodes over cap", QueryRequest{Problem: "lcs2", Nodes: 3}},
		{"bad scheduler", QueryRequest{Problem: "lcs2", Sched: "static"}},
		{"builtin param over declared bound", QueryRequest{Problem: "mcm", Params: []int64{1000}}},
		{"builtin param under declared bound", QueryRequest{Problem: "knap", Params: []int64{10, 30, 0}}},
		{"spec template param out of bounds", QueryRequest{Spec: vardistSpecA, Params: []int64{8, 9}}},
	} {
		status, body, _ := post(t, ts.URL, "/v1/query", tc.req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400\n%s", tc.name, status, body)
		}
	}
}

// /v1/compile warms the cache; the follow-up query reports
// compileCached without having run anything yet.
func TestCompileWarmsCache(t *testing.T) {
	s, ts := testServer(t, Options{})
	var cr CompileResponse
	status, body, _ := post(t, ts.URL, "/v1/compile", QueryRequest{Spec: triSpecA}, &cr)
	if status != http.StatusOK {
		t.Fatalf("compile: status %d\n%s", status, body)
	}
	if cr.SpecHash == "" || cr.CompileCached {
		t.Fatalf("compile response: %+v", cr)
	}
	if !strings.Contains(cr.Canonical, "name tri") {
		t.Fatalf("canonical form missing name: %q", cr.Canonical)
	}
	if got := s.met.runs.Load(); got != 0 {
		t.Fatalf("compile triggered %d runs", got)
	}
	qr := query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{25}})
	if !qr.CompileCached {
		t.Error("query after compile warming missed the spec cache")
	}
	if qr.SpecHash != cr.SpecHash {
		t.Errorf("hash mismatch: query %s vs compile %s", qr.SpecHash, cr.SpecHash)
	}
}

// Trace requests return Chrome trace-event JSON and bypass the memo.
func TestTraceCapture(t *testing.T) {
	_, ts := testServer(t, Options{})
	query(t, ts.URL, QueryRequest{Problem: "lcs2"}) // populate memo
	qr := query(t, ts.URL, QueryRequest{Problem: "lcs2", Trace: true})
	if qr.Cached {
		t.Fatal("trace request served from memo (needs a run of its own)")
	}
	if len(qr.Trace) == 0 || !json.Valid(qr.Trace) {
		t.Fatalf("trace missing or invalid JSON (%d bytes)", len(qr.Trace))
	}
}

// /v1/stats and /metrics expose the serving counters.
func TestStatsAndMetrics(t *testing.T) {
	_, ts := testServer(t, Options{})
	query(t, ts.URL, QueryRequest{Problem: "lcs2", Tenant: "team-a"})
	query(t, ts.URL, QueryRequest{Problem: "lcs2", Tenant: "team-a"})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests["ok"] != 2 || st.Compiles != 1 || st.Runs != 1 || st.ResultCache.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		`dp_serve_requests_total{tenant="team-a",code="ok"} 2`,
		`dp_serve_result_cache_hits_total{tenant="team-a"} 1`,
		"dp_serve_spec_cache_entries 1",
		"dp_serve_compile_seconds_bucket",
		"dp_serve_run_seconds_count 1",
		"dp_serve_request_seconds_count",
		`dp_serve_queue_depth{queue="run"}`,
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// The tenant header overrides the body field.
func TestTenantHeaderPrecedence(t *testing.T) {
	s, ts := testServer(t, Options{})
	data, _ := json.Marshal(QueryRequest{Problem: "lcs2", Tenant: "body-tenant"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(data))
	req.Header.Set("X-DP-Tenant", "header-tenant")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.met.tenant("header-tenant").ok.Load(); got != 1 {
		t.Fatalf("header-tenant ok = %d, want 1", got)
	}
	if got := s.met.tenant("body-tenant").ok.Load(); got != 0 {
		t.Fatalf("body-tenant ok = %d, want 0", got)
	}
}

// Result-memo eviction under a tight byte bound: distinct queries
// evict, the server stays correct, stats report the evictions.
func TestResultMemoEvictionUnderByteBound(t *testing.T) {
	s, ts := testServer(t, Options{ResultCacheBytes: 2 * memoResultCost})
	for n := int64(20); n < 28; n++ {
		query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{n}})
	}
	_, bytes, _, _, evictions := s.resultCache.stats()
	if evictions == 0 {
		t.Fatal("no evictions under a 2-entry byte budget and 8 distinct queries")
	}
	if bytes > 2*memoResultCost+64 {
		t.Fatalf("result cache bytes %d over bound", bytes)
	}
	// The most recent query is still memoized; an old one re-runs but
	// still answers identically.
	recent := query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{27}})
	if !recent.Cached {
		t.Error("most recent result evicted unexpectedly")
	}
	old1 := query(t, ts.URL, QueryRequest{Spec: triSpecA, Params: []int64{20}})
	if old1.Cached {
		t.Error("oldest result survived a 2-entry budget")
	}
}
