// The wire API of dpserve: JSON request/response schemas and error
// codes. docs/SERVING.md is the user-facing reference for everything
// in this file; keep the two in sync.

package serve

import "encoding/json"

// QueryRequest is the body of POST /v1/query (and, without run
// options, POST /v1/compile). Exactly one of Problem and Spec must be
// set.
type QueryRequest struct {
	// Tenant attributes the request for metrics and per-tenant
	// admission control; the X-DP-Tenant header takes precedence.
	// Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Problem names a builtin problem (dpgen.Builtins) to run with its
	// own kernel and serial-reference semantics.
	Problem string `json:"problem,omitempty"`
	// Spec is generator spec text (docs/SPEC.md). Its code fragments
	// are ignored; the center loop comes from Kernel.
	Spec string `json:"spec,omitempty"`
	// Kernel names a generic kernel for Spec requests (GenericKernels;
	// default "mix"). Ignored with Problem.
	Kernel string `json:"kernel,omitempty"`
	// Params are the parameter values, one per spec parameter. Empty
	// selects the builtin's defaults (Problem requests only).
	Params []int64 `json:"params,omitempty"`
	// Nodes and Threads size the in-process run (defaults 1 and 1,
	// capped by the server's -max-nodes/-max-threads).
	Nodes   int `json:"nodes,omitempty"`
	Threads int `json:"threads,omitempty"`
	// Sched selects the tile scheduler: "hybrid" (default) or
	// "dynamic".
	Sched string `json:"sched,omitempty"`
	// NoResultCache skips the result memo for this request (it still
	// coalesces with identical in-flight queries and still uses the
	// compiled-spec cache).
	NoResultCache bool `json:"noResultCache,omitempty"`
	// Trace captures a tile-lifecycle trace of this run and returns it
	// as Chrome trace-event JSON. Trace requests bypass the result memo
	// and coalescing (they need a run of their own).
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	// Value is the state value at the spec's goal location; Max the
	// maximum over the whole space (absent when no finite maximum was
	// tracked, e.g. all-NaN).
	Value float64  `json:"value"`
	Max   *float64 `json:"max,omitempty"`
	// Cells is the number of iteration-space cells the run computed.
	Cells int64 `json:"cells"`
	// SpecHash is the compiled-spec cache key of the canonicalized
	// spec; repeat it in /v1/stats output and metrics to correlate.
	SpecHash string `json:"specHash"`
	// Kernel is the kernel the run used (a generic kernel name, or
	// "builtin:<problem>").
	Kernel string `json:"kernel"`
	// Cached reports a result-memo hit (no engine run at all);
	// Coalesced that this request shared another request's in-flight
	// run; CompileCached that the spec compile was a cache hit.
	Cached        bool `json:"cached"`
	Coalesced     bool `json:"coalesced"`
	CompileCached bool `json:"compileCached"`
	// CompileMs and RunMs are this request's compile and engine-run
	// wall times (zero on cache hits).
	CompileMs float64 `json:"compileMs"`
	RunMs     float64 `json:"runMs"`
	// Trace is the Chrome trace-event JSON of the run, when requested.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// CompileResponse is the body of a successful POST /v1/compile.
type CompileResponse struct {
	// SpecHash is the compiled-spec cache key.
	SpecHash string `json:"specHash"`
	// CompileCached reports whether the spec was already compiled.
	CompileCached bool `json:"compileCached"`
	// CompileMs is the compile wall time (zero on a cache hit).
	CompileMs float64 `json:"compileMs"`
	// Canonical is the canonical spec form the hash covers.
	Canonical string `json:"canonical"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Code is a stable machine-readable error code (Err* constants).
	Code string `json:"code"`
	// Error is the human-readable message.
	Error string `json:"error"`
}

// Stable error codes carried in ErrorResponse.Code.
const (
	// ErrBadRequest: malformed JSON, missing/conflicting fields, bad
	// parameters or unknown problem/kernel/scheduler names (HTTP 400).
	ErrBadRequest = "bad_request"
	// ErrCompile: the spec failed to parse, validate or analyze; the
	// failure is negatively cached under the spec's hash (HTTP 400).
	ErrCompile = "compile_error"
	// ErrOverloaded: a compile/run/tenant queue was full and the
	// request was shed; Retry-After carries the backoff estimate
	// (HTTP 429).
	ErrOverloaded = "overloaded"
	// ErrShutdown: the server is draining (HTTP 503).
	ErrShutdown = "shutting_down"
	// ErrInternal: an engine failure not attributable to the request
	// (HTTP 500).
	ErrInternal = "internal"
)

// StatsResponse is the body of GET /v1/stats: a point-in-time snapshot
// of the server's caches, queues and counters.
type StatsResponse struct {
	// Uptime is seconds since the server started.
	Uptime float64 `json:"uptimeSeconds"`
	// Requests counts every /v1/query and /v1/compile request by
	// outcome class.
	Requests map[string]int64 `json:"requests"`
	// SpecCache and ResultCache are cache counters.
	SpecCache   CacheStats `json:"specCache"`
	ResultCache CacheStats `json:"resultCache"`
	// Coalesced counts requests that shared another's in-flight run;
	// Shed counts 429 responses; CompileErrors counts negatively
	// cached compile failures (distinct specs).
	Coalesced     int64 `json:"coalesced"`
	Shed          int64 `json:"shed"`
	CompileErrors int64 `json:"compileErrors"`
	// Compiles and Runs count work actually performed (cache misses).
	Compiles int64 `json:"compiles"`
	Runs     int64 `json:"runs"`
	// QueueDepth reports current waiters per gate ("compile", "run").
	QueueDepth map[string]int64 `json:"queueDepth"`
	// Inflight reports current holders per gate.
	Inflight map[string]int64 `json:"inflight"`
}

// CacheStats is one cache's counters inside StatsResponse.
type CacheStats struct {
	// Entries and Bytes are current occupancy (Bytes is approximate
	// and zero for caches without a byte bound).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits, Misses and Evictions are cumulative.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}
