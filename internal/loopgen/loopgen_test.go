package loopgen

import (
	"math/rand"
	"testing"

	"dpgen/internal/fm"
	"dpgen/internal/lin"
)

// banditSys builds the 2-arm bandit iteration space over (N | vars).
func banditSys(t testing.TB) (*lin.Space, *lin.System) {
	t.Helper()
	s := lin.MustSpace([]string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sys := lin.NewSystem(s)
	sum := lin.Var(s, "s1").Add(lin.Var(s, "f1")).Add(lin.Var(s, "s2")).Add(lin.Var(s, "f2"))
	sys.AddLE(sum, lin.Var(s, "N"))
	for _, v := range s.Vars() {
		sys.AddGE(lin.Var(s, v), lin.Zero(s))
	}
	return s, sys
}

// choose4 computes C(n+4, 4), the simplex point count.
func choose4(n int64) int64 { return (n + 1) * (n + 2) * (n + 3) * (n + 4) / 24 }

func TestBuildBandit(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Levels) != 4 {
		t.Fatalf("levels = %d", len(n.Levels))
	}
	// Innermost level f2: 0 <= f2 <= N - s1 - f1 - s2 (Fig 1 of the paper).
	lvl := n.Levels[3]
	if lvl.Var != "f2" || len(lvl.Lower) != 1 || len(lvl.Upper) != 1 {
		t.Fatalf("innermost level wrong: %+v", lvl)
	}
	up := lvl.Upper[0]
	if up.Div != 1 || up.Num.Coeff("N") != 1 || up.Num.Coeff("s1") != -1 ||
		up.Num.Coeff("f1") != -1 || up.Num.Coeff("s2") != -1 {
		t.Errorf("upper bound of f2 wrong: %v", up)
	}
}

func TestCountBandit(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, N := range []int64{0, 1, 2, 5, 10, 30} {
		if got, want := n.Count([]int64{N}), choose4(N); got != want {
			t.Errorf("Count(N=%d) = %d, want %d", N, got, want)
		}
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seen int64
	n.Enumerate([]int64{6}, func(vals []int64) bool {
		if !sys.Contains(vals) {
			t.Fatalf("enumerated point %v outside system", vals)
		}
		seen++
		return true
	})
	if want := choose4(6); seen != want {
		t.Errorf("enumerated %d points, want %d", seen, want)
	}
	_ = s
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 100))
	n, err := Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	n.Enumerate(nil, func([]int64) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("early stop visited %d points, want 5", seen)
	}
}

func TestCountWithPrefix(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	N := int64(8)
	// Sum over all s1 slabs equals the total.
	var total int64
	for v := int64(0); v <= N; v++ {
		total += n.CountWithPrefix([]int64{N}, []int64{v})
	}
	if want := choose4(N); total != want {
		t.Errorf("slab sum = %d, want %d", total, want)
	}
	// Out-of-range prefix counts zero.
	if got := n.CountWithPrefix([]int64{N}, []int64{N + 1}); got != 0 {
		t.Errorf("out-of-range prefix counted %d", got)
	}
}

func TestBuildUnbounded(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s)) // no upper bound
	if _, err := Build(sys, []string{"x"}, fm.Options{}); err == nil {
		t.Error("unbounded variable should fail")
	}
}

func TestBuildOrderValidation(t *testing.T) {
	s, sys := banditSys(t)
	if _, err := Build(sys, []string{"s1", "f1", "s2"}, fm.Options{}); err == nil {
		t.Error("short order should fail")
	}
	if _, err := Build(sys, []string{"s1", "f1", "s2", "N"}, fm.Options{}); err == nil {
		t.Error("param in order should fail")
	}
	if _, err := Build(sys, []string{"s1", "f1", "s2", "s2"}, fm.Options{}); err == nil {
		t.Error("duplicate in order should fail")
	}
	_ = s
}

func TestResidualParamsGate(t *testing.T) {
	// Space requires N >= 3 via x: 3 <= x <= N.
	s := lin.MustSpace([]string{"N"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 3))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "N"))
	n, err := Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Count([]int64{2}); got != 0 {
		t.Errorf("Count(N=2) = %d, want 0", got)
	}
	if got := n.Count([]int64{5}); got != 3 {
		t.Errorf("Count(N=5) = %d, want 3", got)
	}
}

func TestDivisorBounds(t *testing.T) {
	// 0 <= 2x <= N: x in [0, floor(N/2)] -> count floor(N/2)+1.
	s := lin.MustSpace([]string{"N"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Term(s, 2, "x"), lin.Var(s, "N"))
	n, err := Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for N := int64(0); N <= 9; N++ {
		if got, want := n.Count([]int64{N}), N/2+1; got != want {
			t.Errorf("Count(N=%d) = %d, want %d", N, got, want)
		}
	}
	divs := n.Divisors()
	has2 := false
	for _, d := range divs {
		if d == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Errorf("Divisors = %v, want to include 2", divs)
	}
}

// Property: Count agrees with brute-force enumeration on random bounded
// 2-D systems, for every loop order.
func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := lin.MustSpace(nil, []string{"x", "y"})
	for trial := 0; trial < 40; trial++ {
		sys := lin.NewSystem(s)
		for i := 0; i < 3; i++ {
			e := lin.Const(s, int64(rng.Intn(13)))
			e = e.Add(lin.Term(s, int64(rng.Intn(5)-2), "x"))
			e = e.Add(lin.Term(s, int64(rng.Intn(5)-2), "y"))
			sys.Ineqs = append(sys.Ineqs, lin.Ineq{Expr: e})
		}
		for _, v := range s.Vars() {
			sys.AddGE(lin.Var(s, v), lin.Const(s, -4))
			sys.AddLE(lin.Var(s, v), lin.Const(s, 4))
		}
		var brute int64
		for x := int64(-4); x <= 4; x++ {
			for y := int64(-4); y <= 4; y++ {
				if sys.Contains([]int64{x, y}) {
					brute++
				}
			}
		}
		for _, order := range [][]string{{"x", "y"}, {"y", "x"}} {
			n, err := Build(sys, order, fm.Options{Prune: fm.PruneSimplex})
			if err == fm.ErrInfeasible {
				if brute != 0 {
					t.Fatalf("trial %d: infeasible but brute=%d", trial, brute)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := n.Count(nil); got != brute {
				t.Fatalf("trial %d order %v: Count=%d brute=%d\nsys=%v\nnest:\n%s",
					trial, order, got, brute, sys, n)
			}
		}
	}
}

func TestStringRendersNest(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := n.String()
	for _, want := range []string{"for s1 from", "for f2 from", "{body}"} {
		if !contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEnumerateDir(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x", "y"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 1))
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "y"), lin.Const(s, 1))
	n, err := Build(sys, []string{"x", "y"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got [][2]int64
	n.EnumerateDir(nil, []int{-1, 1}, func(vals []int64) bool {
		got = append(got, [2]int64{vals[0], vals[1]})
		return true
	})
	want := [][2]int64{{1, 0}, {1, 1}, {0, 0}, {0, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	// Mismatched dirs length panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong dirs length")
		}
	}()
	n.EnumerateDir(nil, []int{1}, func([]int64) bool { return true })
}

func TestNestSpaceAccessor(t *testing.T) {
	s, sys := banditSys(t)
	n, err := Build(sys, s.Vars(), fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !n.Space().Equal(s) {
		t.Error("Nest.Space does not round-trip")
	}
}
