// Package loopgen synthesizes perfectly nested loop bounds from a system
// of linear inequalities and a loop ordering, the way Section IV-D of the
// paper does with Fourier–Motzkin elimination: the bounds of each loop
// variable are max/min combinations of affine expressions in the
// parameters and the enclosing loop variables, with ceiling and floor
// divisions where coefficients exceed one.
//
// A Nest supports evaluating bounds, enumerating all integer points, and
// counting points with a closed-form innermost level (the basis of the
// Ehrhart machinery in dpgen/internal/ehrhart).
package loopgen

import (
	"fmt"
	"strings"

	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/lin"
)

// Bound is one affine bound Num/Div on a loop variable: a lower bound
// contributes ceil(Num/Div), an upper bound floor(Num/Div). Num involves
// only parameters and variables of enclosing loops; Div > 0.
type Bound struct {
	Num lin.Expr
	Div int64
}

// EvalLower returns ceil(Num/Div) at the given full-space values.
func (b Bound) EvalLower(vals []int64) int64 { return ints.CeilDiv(b.Num.Eval(vals), b.Div) }

// EvalUpper returns floor(Num/Div) at the given full-space values.
func (b Bound) EvalUpper(vals []int64) int64 { return ints.FloorDiv(b.Num.Eval(vals), b.Div) }

func (b Bound) String() string {
	if b.Div == 1 {
		return b.Num.String()
	}
	return fmt.Sprintf("(%s)/%d", b.Num, b.Div)
}

// Level holds the synthesized bounds of one loop variable.
type Level struct {
	Var   string
	Idx   int // index of Var in the space
	Lower []Bound
	Upper []Bound
}

// Nest is a synthesized loop nest over the variables of a space, ordered
// outermost first. Residual is the parameter-only system that remains
// after eliminating every loop variable: when it is violated the nest is
// empty for those parameter values.
type Nest struct {
	space    *lin.Space
	Order    []string
	Levels   []Level
	Residual *lin.System
}

// Space returns the space the nest scans.
func (n *Nest) Space() *lin.Space { return n.space }

// Build synthesizes a nest scanning the integer points of sys with the
// given loop order (outermost first). Every variable of the space must
// appear exactly once in order, and every variable must be bounded above
// and below given the parameters; otherwise an error is returned.
// ErrInfeasible from elimination propagates when the system is empty for
// all parameter values.
func Build(sys *lin.System, order []string, opts fm.Options) (*Nest, error) {
	sp := sys.Space()
	if len(order) != sp.NumVars() {
		return nil, fmt.Errorf("loopgen: order has %d names, space has %d vars", len(order), sp.NumVars())
	}
	seen := map[string]bool{}
	for _, v := range order {
		i := sp.Index(v)
		if i < 0 || sp.IsParam(i) {
			return nil, fmt.Errorf("loopgen: order name %q is not a variable of %v", v, sp)
		}
		if seen[v] {
			return nil, fmt.Errorf("loopgen: duplicate order name %q", v)
		}
		seen[v] = true
	}

	n := &Nest{space: sp, Order: append([]string(nil), order...), Levels: make([]Level, len(order))}
	cur, err := fm.Simplify(sys, opts)
	if err != nil {
		return nil, err
	}
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		idx := sp.Index(v)
		lvl := Level{Var: v, Idx: idx}
		for _, q := range cur.Ineqs {
			c := q.CoeffAt(idx)
			switch {
			case c > 0:
				// c*v + rest >= 0  ->  v >= ceil(-rest / c)
				num := q.Expr.Clone()
				num.Coef[idx] = 0
				lvl.Lower = append(lvl.Lower, Bound{Num: num.Neg(), Div: c})
			case c < 0:
				// -|c|*v + rest >= 0  ->  v <= floor(rest / |c|)
				num := q.Expr.Clone()
				num.Coef[idx] = 0
				lvl.Upper = append(lvl.Upper, Bound{Num: num, Div: -c})
			}
		}
		if len(lvl.Lower) == 0 || len(lvl.Upper) == 0 {
			return nil, fmt.Errorf("loopgen: variable %q is unbounded %s", v, boundSide(len(lvl.Lower) == 0))
		}
		n.Levels[k] = lvl
		if cur, err = fm.Eliminate(cur, v, opts); err != nil {
			return nil, err
		}
	}
	n.Residual = cur
	return n, nil
}

func boundSide(lower bool) string {
	if lower {
		return "below"
	}
	return "above"
}

// Bounds evaluates the [lo, hi] range of level k given vals, a full-space
// value vector in which the parameters and the variables of enclosing
// levels are set. The range is empty when hi < lo.
func (n *Nest) Bounds(k int, vals []int64) (lo, hi int64) {
	lvl := &n.Levels[k]
	lo = lvl.Lower[0].EvalLower(vals)
	for _, b := range lvl.Lower[1:] {
		lo = ints.Max(lo, b.EvalLower(vals))
	}
	hi = lvl.Upper[0].EvalUpper(vals)
	for _, b := range lvl.Upper[1:] {
		hi = ints.Min(hi, b.EvalUpper(vals))
	}
	return lo, hi
}

// ParamsOK reports whether the residual (parameter-only) constraints hold
// for vals.
func (n *Nest) ParamsOK(vals []int64) bool { return n.Residual.Contains(vals) }

// Enumerate visits every integer point of the nest for the given
// parameter values, in loop order (every level ascending).
// The callback receives the full-space value vector, which it must not
// retain or modify; returning false stops the enumeration early.
func (n *Nest) Enumerate(params []int64, visit func(vals []int64) bool) {
	n.EnumerateDir(params, nil, visit)
}

// EnumerateDir is Enumerate with a per-level direction: dirs[k] = -1
// makes level k iterate from its upper bound down to its lower bound
// (the paper's Figure 3 order for positive template vectors); +1 (or a
// nil dirs) ascends.
func (n *Nest) EnumerateDir(params []int64, dirs []int, visit func(vals []int64) bool) {
	if dirs != nil && len(dirs) != len(n.Levels) {
		panic(fmt.Sprintf("loopgen: %d dirs for %d levels", len(dirs), len(n.Levels)))
	}
	vals := n.valsFromParams(params)
	if !n.ParamsOK(vals) {
		return
	}
	n.enum(0, vals, dirs, visit)
}

func (n *Nest) enum(k int, vals []int64, dirs []int, visit func([]int64) bool) bool {
	if k == len(n.Levels) {
		return visit(vals)
	}
	lo, hi := n.Bounds(k, vals)
	idx := n.Levels[k].Idx
	if dirs != nil && dirs[k] < 0 {
		for v := hi; v >= lo; v-- {
			vals[idx] = v
			if !n.enum(k+1, vals, dirs, visit) {
				return false
			}
		}
	} else {
		for v := lo; v <= hi; v++ {
			vals[idx] = v
			if !n.enum(k+1, vals, dirs, visit) {
				return false
			}
		}
	}
	vals[idx] = 0
	return true
}

// Count returns the number of integer points for the given parameter
// values, using a closed-form innermost level (cost proportional to the
// number of points divided by the innermost extent). A nest with no loop
// variables counts one point when the residual constraints hold.
func (n *Nest) Count(params []int64) int64 {
	vals := n.valsFromParams(params)
	if !n.ParamsOK(vals) {
		return 0
	}
	if len(n.Levels) == 0 {
		return 1
	}
	return n.countFrom(0, vals)
}

// CountWithPrefix counts points with the first fixed levels pinned to the
// given values (fixed[i] is the value of Order[i]). Parameters come from
// params. Used for per-slab work counting in load balancing.
func (n *Nest) CountWithPrefix(params []int64, fixed []int64) int64 {
	vals := n.valsFromParams(params)
	if !n.ParamsOK(vals) {
		return 0
	}
	for i, v := range fixed {
		lo, hi := n.Bounds(i, vals)
		if v < lo || v > hi {
			return 0
		}
		vals[n.Levels[i].Idx] = v
	}
	return n.countFrom(len(fixed), vals)
}

func (n *Nest) countFrom(k int, vals []int64) int64 {
	lo, hi := n.Bounds(k, vals)
	if hi < lo {
		return 0
	}
	if k == len(n.Levels)-1 {
		return hi - lo + 1
	}
	idx := n.Levels[k].Idx
	var total int64
	for v := lo; v <= hi; v++ {
		vals[idx] = v
		total += n.countFrom(k+1, vals)
	}
	vals[idx] = 0
	return total
}

func (n *Nest) valsFromParams(params []int64) []int64 {
	if len(params) != n.space.NumParams() {
		panic(fmt.Sprintf("loopgen: got %d params for space %v", len(params), n.space))
	}
	vals := make([]int64, n.space.N())
	copy(vals, params)
	return vals
}

// Divisors returns the set of all divisors appearing in the nest's
// bounds; their lcm is a period candidate for Ehrhart interpolation.
func (n *Nest) Divisors() []int64 {
	set := map[int64]bool{}
	for _, lvl := range n.Levels {
		for _, b := range append(append([]Bound{}, lvl.Lower...), lvl.Upper...) {
			set[b.Div] = true
		}
	}
	out := make([]int64, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	return out
}

// String renders the nest in the style of Figure 3 of the paper.
func (n *Nest) String() string {
	var b strings.Builder
	indent := ""
	for _, lvl := range n.Levels {
		var lows, ups []string
		for _, bd := range lvl.Lower {
			lows = append(lows, bd.String())
		}
		for _, bd := range lvl.Upper {
			ups = append(ups, bd.String())
		}
		fmt.Fprintf(&b, "%sfor %s from max(%s) to min(%s)\n",
			indent, lvl.Var, strings.Join(lows, ", "), strings.Join(ups, ", "))
		indent += "  "
	}
	fmt.Fprintf(&b, "%s{body}", indent)
	return b.String()
}
