package simplex

import (
	"math/big"
	"testing"
	"testing/quick"

	"dpgen/internal/lin"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

// box builds 0 <= x <= hx, 0 <= y <= hy.
func box(s *lin.Space, hx, hy int64) *lin.System {
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, hx))
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "y"), lin.Const(s, hy))
	return sys
}

func TestMinimizeBox(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x", "y"})
	sys := box(s, 10, 5)
	// min x + y = 0 at origin
	sol := Minimize(sys, lin.Var(s, "x").Add(lin.Var(s, "y")))
	if sol.Status != Optimal || sol.Value.Cmp(rat(0, 1)) != 0 {
		t.Fatalf("min x+y: %v %v", sol.Status, sol.Value)
	}
	// max x + y = 15
	sol = Maximize(sys, lin.Var(s, "x").Add(lin.Var(s, "y")))
	if sol.Status != Optimal || sol.Value.Cmp(rat(15, 1)) != 0 {
		t.Fatalf("max x+y: %v %v", sol.Status, sol.Value)
	}
	// min -2x + 3 = -17
	sol = Minimize(sys, lin.Term(s, -2, "x").AddConst(3))
	if sol.Status != Optimal || sol.Value.Cmp(rat(-17, 1)) != 0 {
		t.Fatalf("min -2x+3: %v %v", sol.Status, sol.Value)
	}
}

func TestMinimizeFractionalOptimum(t *testing.T) {
	// min y s.t. 2y >= 1, y <= 5: optimum 1/2 (exact rational).
	s := lin.MustSpace(nil, []string{"y"})
	sys := lin.NewSystem(s)
	// 2y - 1 >= 0: add without tightening (Add would tighten to y >= 1).
	sys.Ineqs = append(sys.Ineqs, lin.Ineq{Expr: lin.Term(s, 2, "y").AddConst(-1)})
	sys.AddLE(lin.Var(s, "y"), lin.Const(s, 5))
	sol := Minimize(sys, lin.Var(s, "y"))
	if sol.Status != Optimal || sol.Value.Cmp(rat(1, 2)) != 0 {
		t.Fatalf("got %v %v, want 1/2", sol.Status, sol.Value)
	}
}

func TestUnbounded(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sol := Minimize(sys, lin.Var(s, "x").Neg()) // min -x, x >= 0
	if sol.Status != Unbounded {
		t.Fatalf("want unbounded, got %v", sol.Status)
	}
	sol = Maximize(sys, lin.Var(s, "x"))
	if sol.Status != Unbounded {
		t.Fatalf("max: want unbounded, got %v", sol.Status)
	}
}

func TestInfeasible(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 5))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 3))
	if Feasible(sys) {
		t.Fatal("infeasible system reported feasible")
	}
	sol := Minimize(sys, lin.Var(s, "x"))
	if sol.Status != Infeasible {
		t.Fatalf("want infeasible, got %v", sol.Status)
	}
}

func TestFeasibleEmptySystem(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	if !Feasible(lin.NewSystem(s)) {
		t.Fatal("empty system should be feasible")
	}
}

func TestFreeVariables(t *testing.T) {
	// min x s.t. x >= -7 (negative optimum requires free-variable handling).
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, -7))
	sol := Minimize(sys, lin.Var(s, "x"))
	if sol.Status != Optimal || sol.Value.Cmp(rat(-7, 1)) != 0 {
		t.Fatalf("got %v %v, want -7", sol.Status, sol.Value)
	}
}

func TestPointSatisfiesSystem(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x", "y"})
	sys := box(s, 10, 5)
	sys.AddGE(lin.Var(s, "x").Add(lin.Var(s, "y")), lin.Const(s, 3))
	sol := Minimize(sys, lin.Var(s, "x").Add(lin.Term(s, 2, "y")))
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Check the returned point satisfies every inequality (rationally).
	for _, q := range sys.Ineqs {
		acc := new(big.Rat).SetInt64(q.K)
		for j := 0; j < s.N(); j++ {
			c := q.CoeffAt(j)
			if c != 0 {
				term := new(big.Rat).Mul(big.NewRat(c, 1), sol.Point[j])
				acc.Add(acc, term)
			}
		}
		if acc.Sign() < 0 {
			t.Errorf("optimal point violates %v: %v", q, acc)
		}
	}
	// min x+2y with x+y >= 3 inside the box is 3 at (3, 0).
	if sol.Value.Cmp(rat(3, 1)) != 0 {
		t.Errorf("value = %v, want 3", sol.Value)
	}
}

func TestRedundant(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 5)) // x >= 5
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 3)) // x >= 3, redundant
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 9)) // x <= 9, not redundant
	if Redundant(sys, 0) {
		t.Error("x >= 5 wrongly redundant")
	}
	if !Redundant(sys, 1) {
		t.Error("x >= 3 should be redundant")
	}
	if Redundant(sys, 2) {
		t.Error("x <= 9 wrongly redundant")
	}
}

func TestRedundantOfInfeasibleRest(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 5))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 3))
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, -100))
	// Removing index 2 leaves an infeasible system; the inequality is
	// vacuously redundant.
	if !Redundant(sys, 2) {
		t.Error("inequality over infeasible rest should be redundant")
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A degenerate vertex (many constraints through origin); Bland's rule
	// must terminate.
	s := lin.MustSpace(nil, []string{"x", "y", "z"})
	sys := lin.NewSystem(s)
	for _, v := range []string{"x", "y", "z"} {
		sys.AddGE(lin.Var(s, v), lin.Zero(s))
	}
	sys.AddLE(lin.Var(s, "x").Add(lin.Var(s, "y")), lin.Zero(s))
	sys.AddLE(lin.Var(s, "y").Add(lin.Var(s, "z")), lin.Zero(s))
	sol := Minimize(sys, lin.Var(s, "x").Add(lin.Var(s, "y")).Add(lin.Var(s, "z")))
	if sol.Status != Optimal || sol.Value.Sign() != 0 {
		t.Fatalf("got %v %v, want optimal 0", sol.Status, sol.Value)
	}
}

func TestParamsAreFreeInRedundancy(t *testing.T) {
	// Over space (N | x): x <= N and x <= N+5; the latter is redundant for
	// every N.
	s := lin.MustSpace([]string{"N"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "N"))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "N").AddConst(5))
	if !Redundant(sys, 1) {
		t.Error("x <= N+5 should be redundant given x <= N")
	}
	if Redundant(sys, 0) {
		t.Error("x <= N wrongly redundant")
	}
}

// Property: for random 1-D systems a <= x <= b, Minimize(x) returns a when
// a <= b and Infeasible otherwise.
func TestMinimizeIntervalProperty(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	f := func(a, b int16) bool {
		sys := lin.NewSystem(s)
		sys.AddGE(lin.Var(s, "x"), lin.Const(s, int64(a)))
		sys.AddLE(lin.Var(s, "x"), lin.Const(s, int64(b)))
		sol := Minimize(sys, lin.Var(s, "x"))
		if a > b {
			return sol.Status == Infeasible
		}
		return sol.Status == Optimal && sol.Value.Cmp(rat(int64(a), 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Unbounded, Infeasible, Status(9)} {
		if s.String() == "" {
			t.Error("empty Status string")
		}
	}
}
