// Package simplex implements an exact two-phase primal simplex method
// over arbitrary-precision rationals (math/big.Rat) with Bland's
// anti-cycling rule.
//
// It answers the two questions the polyhedral layer needs:
//
//   - is a system of linear inequalities feasible over the rationals, and
//   - what is the minimum of an affine objective over the system,
//
// which together give exact redundancy tests for Fourier–Motzkin
// elimination (an inequality e >= 0 is redundant iff min e >= 0 over the
// remaining system). Variables are free (unrestricted in sign), matching
// the iteration-space setting where lower bounds are ordinary
// inequalities rather than implicit nonnegativity.
package simplex

import (
	"fmt"
	"math/big"

	"dpgen/internal/lin"
)

// Status classifies the outcome of an optimization.
type Status int

const (
	// Optimal means a finite optimum was found.
	Optimal Status = iota
	// Unbounded means the objective decreases without bound.
	Unbounded
	// Infeasible means the constraint system has no rational solution.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case Infeasible:
		return "infeasible"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of Minimize.
type Solution struct {
	Status Status
	// Value is the optimal objective value when Status == Optimal.
	Value *big.Rat
	// Point is an optimal assignment, indexed like the system's space.
	Point []*big.Rat
}

// Minimize computes min obj over the rational relaxation of sys. All
// names in the space (parameters included) are treated as free rational
// variables.
func Minimize(sys *lin.System, obj lin.Expr) Solution {
	if !obj.Space().Equal(sys.Space()) {
		panic("simplex: objective space mismatch")
	}
	t := newTableau(sys)
	if !t.phaseOne() {
		return Solution{Status: Infeasible}
	}
	st := t.phaseTwo(obj)
	if st == Unbounded {
		return Solution{Status: Unbounded}
	}
	v := t.objValue()
	v.Add(v, big.NewRat(obj.K, 1))
	return Solution{Status: Optimal, Value: v, Point: t.point()}
}

// Maximize computes max obj over sys. Status Unbounded means the
// objective increases without bound.
func Maximize(sys *lin.System, obj lin.Expr) Solution {
	sol := Minimize(sys, obj.Neg())
	if sol.Status == Optimal {
		sol.Value.Neg(sol.Value)
		// obj.Neg() negated K too; Minimize already added it back, so the
		// sign flip above restores max obj = -(min -obj).
	}
	return sol
}

// Feasible reports whether sys has a rational solution.
func Feasible(sys *lin.System) bool {
	t := newTableau(sys)
	return t.phaseOne()
}

// Redundant reports whether inequality index idx of sys is implied by the
// other inequalities over the rationals. An inequality is also considered
// redundant when the remaining system is infeasible.
func Redundant(sys *lin.System, idx int) bool {
	rest := lin.NewSystem(sys.Space())
	for i, q := range sys.Ineqs {
		if i == idx {
			continue
		}
		rest.Ineqs = append(rest.Ineqs, q)
	}
	sol := Minimize(rest, sys.Ineqs[idx].Expr)
	switch sol.Status {
	case Infeasible:
		return true
	case Unbounded:
		return false
	default:
		return sol.Value.Sign() >= 0
	}
}

// tableau is a dense simplex tableau in standard form:
//
//	min c.y   s.t.  A y = b,  y >= 0
//
// built from the free-variable system via y = (u, v, s, art):
// x = u - v, one slack s per inequality, one artificial per row.
// Column layout: [0,n) u, [n,2n) v, [2n,2n+m) slacks, [2n+m,2n+2m) artificials.
// a has m rows of width ncols+1 (last column is the RHS).
type tableau struct {
	nx    int // original free variables
	m     int // rows
	ncols int // structural + artificial columns
	art0  int // first artificial column
	a     [][]*big.Rat
	cost  []*big.Rat // ncols+1; last entry is -z
	basis []int
}

func newTableau(sys *lin.System) *tableau {
	nx := sys.Space().N()
	m := len(sys.Ineqs)
	t := &tableau{
		nx:    nx,
		m:     m,
		ncols: 2*nx + 2*m,
		art0:  2*nx + m,
	}
	t.a = make([][]*big.Rat, m)
	for i, q := range sys.Ineqs {
		row := make([]*big.Rat, t.ncols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		// q: a.x + K >= 0  ->  a.x - s = -K  ->  a.u - a.v - s = -K
		for j := 0; j < nx; j++ {
			c := q.CoeffAt(j)
			if c != 0 {
				row[j].SetInt64(c)
				row[nx+j].SetInt64(-c)
			}
		}
		row[2*nx+i].SetInt64(-1) // slack
		row[t.ncols].SetInt64(-q.K)
		// Make RHS nonnegative so the artificial basis is feasible.
		if row[t.ncols].Sign() < 0 {
			for j := range row {
				row[j].Neg(row[j])
			}
		}
		row[t.art0+i].SetInt64(1) // artificial
		t.a[i] = row
	}
	t.basis = make([]int, m)
	for i := range t.basis {
		t.basis[i] = t.art0 + i
	}
	return t
}

// phaseOne minimizes the sum of artificials; reports feasibility.
func (t *tableau) phaseOne() bool {
	t.cost = make([]*big.Rat, t.ncols+1)
	for j := range t.cost {
		t.cost[j] = new(big.Rat)
	}
	for j := t.art0; j < t.ncols; j++ {
		t.cost[j].SetInt64(1)
	}
	// Price out the artificial basis.
	for i := range t.a {
		t.subtractRow(t.cost, t.a[i], big.NewRat(1, 1))
	}
	if st := t.iterate(); st != Optimal {
		// Phase-one objective is bounded below by 0; Unbounded is impossible.
		panic("simplex: phase one " + st.String())
	}
	if t.objValue().Sign() != 0 {
		return false
	}
	t.expelArtificials()
	return true
}

// expelArtificials pivots degenerate basic artificials out of the basis,
// dropping rows that are redundant (all-zero on structural columns).
func (t *tableau) expelArtificials() {
	keep := t.a[:0]
	keptBasis := t.basis[:0]
	for i := 0; i < len(t.a); i++ {
		if t.basis[i] < t.art0 {
			keep = append(keep, t.a[i])
			keptBasis = append(keptBasis, t.basis[i])
			continue
		}
		// Basic artificial at value zero: pivot on any structural column.
		pivoted := false
		for j := 0; j < t.art0; j++ {
			if t.a[i][j].Sign() != 0 {
				t.pivot(i, j)
				keep = append(keep, t.a[i])
				keptBasis = append(keptBasis, t.basis[i])
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Structurally zero row: redundant constraint, drop it.
			continue
		}
	}
	t.a = keep
	t.basis = keptBasis
	t.m = len(t.a)
	// Zero out artificial columns so they can never re-enter.
	for i := range t.a {
		for j := t.art0; j < t.ncols; j++ {
			t.a[i][j].SetInt64(0)
		}
	}
}

// phaseTwo installs the true objective (min obj over x = u - v) and iterates.
func (t *tableau) phaseTwo(obj lin.Expr) Status {
	for j := range t.cost {
		t.cost[j].SetInt64(0)
	}
	for j := 0; j < t.nx; j++ {
		c := obj.CoeffAt(j)
		if c != 0 {
			t.cost[j].SetInt64(c)
			t.cost[t.nx+j].SetInt64(-c)
		}
	}
	// Keep artificials priced prohibitively: they are zeroed in the rows,
	// so a zero cost suffices; they can never enter (column is zero).
	// Price out current basis.
	for i, b := range t.basis {
		if t.cost[b].Sign() != 0 {
			t.subtractRow(t.cost, t.a[i], new(big.Rat).Set(t.cost[b]))
		}
	}
	return t.iterate()
}

// iterate runs Bland-rule pivots to optimality or unboundedness.
func (t *tableau) iterate() Status {
	for {
		enter := -1
		for j := 0; j < t.art0; j++ {
			if t.cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Also allow artificial columns in phase one.
			for j := t.art0; j < t.ncols; j++ {
				if t.cost[j].Sign() < 0 {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		var best big.Rat
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(t.a[i][t.ncols], t.a[i][enter])
			if leave == -1 || ratio.Cmp(&best) < 0 ||
				(ratio.Cmp(&best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best.Set(ratio)
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column c basic in row r.
func (t *tableau) pivot(r, c int) {
	pr := t.a[r]
	inv := new(big.Rat).Inv(pr[c])
	for j := range pr {
		pr[j].Mul(pr[j], inv)
	}
	for i := 0; i < t.m; i++ {
		if i == r || t.a[i][c].Sign() == 0 {
			continue
		}
		t.subtractRow(t.a[i], pr, new(big.Rat).Set(t.a[i][c]))
	}
	if t.cost[c].Sign() != 0 {
		t.subtractRow(t.cost, pr, new(big.Rat).Set(t.cost[c]))
	}
	t.basis[r] = c
}

// subtractRow computes dst -= f * src elementwise.
func (t *tableau) subtractRow(dst, src []*big.Rat, f *big.Rat) {
	tmp := new(big.Rat)
	for j := range dst {
		if src[j].Sign() == 0 {
			continue
		}
		tmp.Mul(src[j], f)
		dst[j].Sub(dst[j], tmp)
	}
}

// objValue returns the current objective value (-cost[rhs]).
func (t *tableau) objValue() *big.Rat {
	return new(big.Rat).Neg(t.cost[t.ncols])
}

// point reconstructs x = u - v from the basic solution.
func (t *tableau) point() []*big.Rat {
	y := make([]*big.Rat, t.ncols)
	for j := range y {
		y[j] = new(big.Rat)
	}
	for i, b := range t.basis {
		y[b].Set(t.a[i][t.ncols])
	}
	x := make([]*big.Rat, t.nx)
	for j := 0; j < t.nx; j++ {
		x[j] = new(big.Rat).Sub(y[j], y[t.nx+j])
	}
	return x
}
