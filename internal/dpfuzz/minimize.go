package dpfuzz

// Minimize shrinks a failing instance while fails keeps reporting it
// as failing (fails must be deterministic): it tries dropping extra constraints
// and dependencies, zeroing dependence components, shrinking tile
// widths and N, and resetting the loop order and balance dimensions to
// their defaults, iterating to a fixpoint. Every candidate it accepts
// still passes spec.Validate, so the result is a well-formed
// counterexample ready for GoLiteral.
func Minimize(in *Instance, fails func(*Instance) bool) *Instance {
	cur := in
	for changed := true; changed; {
		changed = false
		for _, cand := range candidates(cur) {
			if cand.Spec.Validate() != nil {
				continue
			}
			if fails(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// candidates proposes one-step simplifications of the instance, most
// aggressive first.
func candidates(in *Instance) []*Instance {
	var out []*Instance
	sp := in.Spec
	d := len(sp.Vars)

	// Drop an extra constraint (the first 2d are the base box).
	for i := 2 * d; i < len(sp.Constraints); i++ {
		c := clone(in)
		c.Spec.Constraints = append(c.Spec.Constraints[:i], c.Spec.Constraints[i+1:]...)
		out = append(out, c)
	}
	// Drop a dependence (at least one must remain).
	if len(sp.Deps) > 1 {
		for j := range sp.Deps {
			c := clone(in)
			c.Spec.Deps = append(c.Spec.Deps[:j], c.Spec.Deps[j+1:]...)
			out = append(out, c)
		}
	}
	// Shrink a dependence component toward zero. Range templates keep a
	// nonzero base unless a parameter part remains: a zero base would
	// put the cell itself at footprint step 0, a different shape than
	// the one being minimized.
	for j, dep := range sp.Deps {
		for k, r := range dep.Vec {
			if r == 0 {
				continue
			}
			if dep.IsRange() && dep.PVec == nil {
				nonzero := 0
				for _, v := range dep.Vec {
					if v != 0 {
						nonzero++
					}
				}
				if nonzero == 1 && (r == 1 || r == -1) {
					continue
				}
			}
			c := clone(in)
			step := int64(1)
			if r < 0 {
				step = -1
			}
			c.Spec.Deps[j].Vec[k] = r - step
			out = append(out, c)
		}
	}
	// Simplify an extended template: drop its parameter parts, turn a
	// range into its base point dependence, or shorten its count.
	for j := range sp.Deps {
		dep := &sp.Deps[j]
		if dep.PVec != nil {
			c := clone(in)
			c.Spec.Deps[j].PVec = nil
			out = append(out, c)
		}
		if dep.PDir != nil {
			c := clone(in)
			c.Spec.Deps[j].PDir = nil
			out = append(out, c)
		}
		if dep.IsRange() {
			c := clone(in)
			c.Spec.Deps[j].Dir = nil
			c.Spec.Deps[j].PDir = nil
			c.Spec.Deps[j].Len = nil
			out = append(out, c)
		}
		if dep.Len != nil && dep.Len.K > 1 {
			c := clone(in)
			c.Spec.Deps[j].Len.K--
			out = append(out, c)
		}
	}
	// Calm the bounded template parameter.
	if in.D > 1 {
		c := clone(in)
		c.D = 1
		out = append(out, c)
	}
	// Shrink a tile width.
	for k, w := range sp.TileWidths {
		if w > 1 {
			c := clone(in)
			c.Spec.TileWidths[k] = w - 1
			out = append(out, c)
		}
	}
	// Halve or decrement N.
	if in.N > 1 {
		c := clone(in)
		c.N = in.N / 2
		out = append(out, c)
		c2 := clone(in)
		c2.N = in.N - 1
		out = append(out, c2)
	}
	// Default the loop order and balance dims.
	if !sameStrings(sp.LoopOrder, sp.Vars) {
		c := clone(in)
		c.Spec.LoopOrder = append([]string(nil), sp.Vars...)
		out = append(out, c)
	}
	if len(sp.LBDims) != 1 || sp.LBDims[0] != sp.Vars[0] {
		c := clone(in)
		c.Spec.LBDims = []string{sp.Vars[0]}
		out = append(out, c)
	}
	// Calm the runtime knobs.
	if in.Nodes > 2 || in.Threads > 2 || in.QueueGroups > 1 || in.PollingRecv {
		c := clone(in)
		c.Nodes, c.Threads, c.QueueGroups, c.PollingRecv = 2, 2, 1, false
		out = append(out, c)
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
