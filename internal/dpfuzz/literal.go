package dpfuzz

import (
	"fmt"
	"strings"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/spec"
)

// GoLiteral renders the instance as compilable Go source that rebuilds
// it exactly — the form counterexamples are reported in and committed
// to the regression table. Constraints round-trip through the spec
// constraint syntax (lin.Ineq.String emits it).
func GoLiteral(in *Instance) string {
	sp := in.Spec
	var b strings.Builder
	fmt.Fprintf(&b, "in := &dpfuzz.Instance{\n")
	if in.D != 0 {
		fmt.Fprintf(&b, "\tSeed: %#x, N: %d, D: %d,\n", in.Seed, in.N, in.D)
	} else {
		fmt.Fprintf(&b, "\tSeed: %#x, N: %d,\n", in.Seed, in.N)
	}
	fmt.Fprintf(&b, "\tNodes: %d, Threads: %d, SendBufs: %d, RecvBufs: %d, QueueGroups: %d,\n",
		in.Nodes, in.Threads, in.SendBufs, in.RecvBufs, in.QueueGroups)
	fmt.Fprintf(&b, "\tPriority: %s, Sched: %s, Balance: %s, PollingRecv: %v,\n",
		priorityName(in.Priority), schedName(in.Sched), balanceName(in.Balance), in.PollingRecv)
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "sp := spec.MustNew(%q, %s, %s)\n", sp.Name, stringsLit(sp.Params), stringsLit(sp.Vars))
	for _, q := range sp.Constraints {
		fmt.Fprintf(&b, "sp.MustConstrain(%q)\n", q.String())
	}
	for _, pb := range sp.ParamBounds {
		fmt.Fprintf(&b, "sp.Bound(%q, %d, %d)\n", pb.Name, pb.Lo, pb.Hi)
	}
	for j := range sp.Deps {
		if !sp.Deps[j].Extended() {
			fmt.Fprintf(&b, "sp.AddDep(%q%s)\n", sp.Deps[j].Name, int64sArgs(sp.Deps[j].Vec))
			continue
		}
		// Extended templates round-trip through the input syntax, the
		// same canonical form Parse and dpserve use.
		name, base, dir, count := sp.FormatDep(j)
		fmt.Fprintf(&b, "sp.MustAddDepSpec(%q, %q, %q, %q)\n", name, base, dir, count)
	}
	if len(sp.LoopOrder) > 0 {
		fmt.Fprintf(&b, "sp.LoopOrder = %s\n", stringsLit(sp.LoopOrder))
	}
	if len(sp.LBDims) > 0 {
		fmt.Fprintf(&b, "sp.LBDims = %s\n", stringsLit(sp.LBDims))
	}
	if len(sp.TileWidths) > 0 {
		fmt.Fprintf(&b, "sp.TileWidths = %s\n", int64sLit(sp.TileWidths))
	}
	if sp.Elem != "" {
		fmt.Fprintf(&b, "sp.Elem = %q\n", sp.Elem)
	}
	if sp.Goal != nil {
		fmt.Fprintf(&b, "sp.Goal = %s\n", int64sLit(sp.Goal))
	}
	fmt.Fprintf(&b, "in.Spec = sp\n")
	return b.String()
}

func stringsLit(ss []string) string {
	quoted := make([]string, len(ss))
	for i, s := range ss {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return "[]string{" + strings.Join(quoted, ", ") + "}"
}

func int64sLit(vs []int64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprint(v)
	}
	return "[]int64{" + strings.Join(parts, ", ") + "}"
}

func int64sArgs(vs []int64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, ", %d", v)
	}
	return b.String()
}

func priorityName(p engine.Priority) string {
	switch p {
	case engine.ColumnMajor:
		return "engine.ColumnMajor"
	case engine.LevelSet:
		return "engine.LevelSet"
	case engine.FIFO:
		return "engine.FIFO"
	}
	return fmt.Sprintf("engine.Priority(%d)", p)
}

func schedName(s engine.Sched) string {
	switch s {
	case engine.SchedHybrid:
		return "engine.SchedHybrid"
	case engine.SchedDynamic:
		return "engine.SchedDynamic"
	}
	return fmt.Sprintf("engine.Sched(%d)", s)
}

func balanceName(m balance.Method) string {
	switch m {
	case balance.Prefix:
		return "balance.Prefix"
	case balance.Hyperplane:
		return "balance.Hyperplane"
	}
	return fmt.Sprintf("balance.Method(%d)", m)
}

// clone deep-copies an instance so the minimizer can mutate candidates
// freely.
func clone(in *Instance) *Instance {
	out := *in
	// Candidates mutate the Spec, so the clone must rebuild its own
	// pipeline artifacts from scratch.
	out.nest, out.nestErr = nil, nil
	out.tl, out.tlErr = nil, nil
	sp, err := spec.New(in.Spec.Name, append([]string(nil), in.Spec.Params...), append([]string(nil), in.Spec.Vars...))
	if err != nil {
		panic(err)
	}
	for _, q := range in.Spec.Constraints {
		// Round-trip through the constraint syntax so the clone's
		// expressions are bound to the clone's own space.
		if err := sp.Constrain(q.String()); err != nil {
			panic(err)
		}
	}
	for _, pb := range in.Spec.ParamBounds {
		sp.Bound(pb.Name, pb.Lo, pb.Hi)
	}
	for j := range in.Spec.Deps {
		if !in.Spec.Deps[j].Extended() {
			dep := in.Spec.Deps[j]
			sp.AddDep(dep.Name, append([]int64(nil), dep.Vec...)...)
			continue
		}
		// Extended templates round-trip through the canonical input
		// syntax, like GoLiteral renders them.
		name, base, dir, count := in.Spec.FormatDep(j)
		sp.MustAddDepSpec(name, base, dir, count)
	}
	sp.LoopOrder = append([]string(nil), in.Spec.LoopOrder...)
	sp.LBDims = append([]string(nil), in.Spec.LBDims...)
	sp.TileWidths = append([]int64(nil), in.Spec.TileWidths...)
	sp.Elem = in.Spec.Elem
	if in.Spec.Goal != nil {
		sp.Goal = append([]int64(nil), in.Spec.Goal...)
	}
	out.Spec = sp
	return &out
}
