package dpfuzz

import (
	"fmt"
	"testing"
)

// TestElasticBitIdentical pushes a handful of generated specs through
// the elastic-membership differential: a three-rank TCP mesh that
// scales 2 -> 3 -> 2 mid-run (one join admitted, one voluntary leave
// granted) and must stay bit-identical to the independent serial
// reference on every rank. Skipped in -short mode — each seed is a
// full multi-epoch view-change and migration cycle.
func TestElasticBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping elastic-membership soak in -short mode")
	}
	for _, seed := range []uint64{3, 7, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := CheckElastic(Generate(seed)); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		})
	}
}
