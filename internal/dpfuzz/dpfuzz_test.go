package dpfuzz

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRandomSpecs is the fixed seed sweep: every seed in [0,
// randomSpecCount) is generated and pushed through all four oracle
// layers (the cost-gated Ehrhart layer must still run for a healthy
// fraction of them). Failures print the minimized instance as a Go
// literal ready for regress_test.go.
func TestRandomSpecs(t *testing.T) {
	n := uint64(200)
	if testing.Short() {
		n = 32
	}
	var ehrhartRan atomic.Int64
	t.Run("sweep", func(t *testing.T) {
		for seed := uint64(0); seed < n; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
				t.Parallel()
				in := Generate(seed)
				checked, err := CheckAll(in)
				if checked {
					ehrhartRan.Add(1)
				}
				if err != nil {
					reportFailure(t, in, err)
				}
			})
		}
	})
	if got, min := ehrhartRan.Load(), int64(n/2); got < min && !t.Failed() {
		t.Errorf("Ehrhart layer ran for only %d of %d specs (cost gate too tight; want >= %d)", got, n, min)
	}
}

// reportFailure minimizes the failing instance and logs it as a
// reproducible Go literal.
func reportFailure(t *testing.T, in *Instance, err error) {
	t.Helper()
	min := Minimize(in, func(c *Instance) bool {
		_, e := CheckAll(c)
		return e != nil
	})
	_, merr := CheckAll(min)
	t.Errorf("oracle failure: %v\nminimized failure: %v\nreproduce with:\n%s", err, merr, GoLiteral(min))
}

// TestGenerateDeterministic: the same seed must yield byte-identical
// instances, or corpus seeds and minimized literals would not
// reproduce.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if GoLiteral(a) != GoLiteral(b) {
			t.Fatalf("seed %d: non-deterministic generation:\n%s\nvs\n%s", seed, GoLiteral(a), GoLiteral(b))
		}
	}
}

// TestGenerateDiverse: the sweep must actually cover the spec space —
// every dimension count, both template sign directions, multi-dep
// specs, and specs with extra constraints.
func TestGenerateDiverse(t *testing.T) {
	dims := map[int]int{}
	var extras, multiDep, negSign, posSign int
	for seed := uint64(0); seed < 200; seed++ {
		in := Generate(seed)
		d := len(in.Spec.Vars)
		dims[d]++
		if len(in.Spec.Constraints) > 2*d {
			extras++
		}
		if len(in.Spec.Deps) > 1 {
			multiDep++
		}
		for _, dep := range in.Spec.Deps {
			for _, r := range dep.Vec {
				if r > 0 {
					posSign++
				} else if r < 0 {
					negSign++
				}
			}
		}
	}
	for d := 1; d <= 4; d++ {
		if dims[d] < 20 {
			t.Errorf("only %d specs of dimension %d in 200 seeds", dims[d], d)
		}
	}
	if extras < 30 {
		t.Errorf("only %d specs with extra constraints", extras)
	}
	if multiDep < 50 {
		t.Errorf("only %d specs with multiple dependencies", multiDep)
	}
	if posSign == 0 || negSign == 0 {
		t.Errorf("template signs not diverse: %d positive, %d negative components", posSign, negSign)
	}
}

// TestMinimizeShrinks: the minimizer must reduce a large failing
// instance to something strictly simpler while preserving the failure
// (here simulated by a predicate on the dependence count).
func TestMinimizeShrinks(t *testing.T) {
	var in *Instance
	for seed := uint64(0); ; seed++ {
		in = Generate(seed)
		if len(in.Spec.Deps) >= 2 && len(in.Spec.Vars) >= 2 {
			break
		}
	}
	fails := func(c *Instance) bool { return len(c.Spec.Deps) >= 1 }
	min := Minimize(in, fails)
	if err := min.Spec.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if len(min.Spec.Deps) != 1 {
		t.Errorf("minimizer kept %d deps, want 1", len(min.Spec.Deps))
	}
	if min.N >= in.N && min.N > 1 {
		t.Errorf("minimizer did not shrink N: %d -> %d", in.N, min.N)
	}
}
