package dpfuzz

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRandomSpecs is the fixed seed sweep: every seed in [0,
// randomSpecCount) is generated and pushed through all four oracle
// layers (the cost-gated Ehrhart layer must still run for a healthy
// fraction of them). Failures print the minimized instance as a Go
// literal ready for regress_test.go.
func TestRandomSpecs(t *testing.T) {
	n := uint64(200)
	if testing.Short() {
		n = 32
	}
	var ehrhartRan atomic.Int64
	t.Run("sweep", func(t *testing.T) {
		for seed := uint64(0); seed < n; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
				t.Parallel()
				in := Generate(seed)
				checked, err := CheckAll(in)
				if checked {
					ehrhartRan.Add(1)
				}
				if err != nil {
					reportFailure(t, in, err)
				}
			})
		}
	})
	if got, min := ehrhartRan.Load(), int64(n/2); got < min && !t.Failed() {
		t.Errorf("Ehrhart layer ran for only %d of %d specs (cost gate too tight; want >= %d)", got, n, min)
	}
}

// reportFailure minimizes the failing instance and logs it as a
// reproducible Go literal.
func reportFailure(t *testing.T, in *Instance, err error) {
	t.Helper()
	min := Minimize(in, func(c *Instance) bool {
		_, e := CheckAll(c)
		return e != nil
	})
	_, merr := CheckAll(min)
	t.Errorf("oracle failure: %v\nminimized failure: %v\nreproduce with:\n%s", err, merr, GoLiteral(min))
}

// TestGenerateDeterministic: the same seed must yield byte-identical
// instances, or corpus seeds and minimized literals would not
// reproduce.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if GoLiteral(a) != GoLiteral(b) {
			t.Fatalf("seed %d: non-deterministic generation:\n%s\nvs\n%s", seed, GoLiteral(a), GoLiteral(b))
		}
	}
}

// TestGenerateDiverse: the sweep must actually cover the spec space —
// every dimension count, every template class, both template sign
// directions, multi-dep specs, and specs with extra constraints.
func TestGenerateDiverse(t *testing.T) {
	dims := map[int]int{}
	var extras, multiDep, negSign, posSign int
	var vardist, ranges, varSteps, varCounts int
	for seed := uint64(0); seed < 200; seed++ {
		in := Generate(seed)
		d := len(in.Spec.Vars)
		dims[d]++
		if len(in.Spec.Constraints) > 2*d {
			extras++
		}
		if len(in.Spec.Deps) > 1 {
			multiDep++
		}
		if in.Spec.HasRangeDeps() {
			ranges++
		} else if in.Spec.HasExtendedDeps() {
			vardist++
		}
		for j := range in.Spec.Deps {
			dep := &in.Spec.Deps[j]
			for _, r := range dep.Vec {
				if r > 0 {
					posSign++
				} else if r < 0 {
					negSign++
				}
			}
			if dep.PDir != nil {
				varSteps++
			}
			if dep.Len != nil && !dep.Len.IsConst() {
				varCounts++
			}
		}
	}
	for d := 1; d <= 4; d++ {
		if dims[d] < 20 {
			t.Errorf("only %d specs of dimension %d in 200 seeds", dims[d], d)
		}
	}
	if extras < 30 {
		t.Errorf("only %d specs with extra constraints", extras)
	}
	if multiDep < 50 {
		t.Errorf("only %d specs with multiple dependencies", multiDep)
	}
	if posSign == 0 || negSign == 0 {
		t.Errorf("template signs not diverse: %d positive, %d negative components", posSign, negSign)
	}
	if vardist < 20 {
		t.Errorf("only %d variable-distance specs in 200 seeds", vardist)
	}
	if ranges < 20 {
		t.Errorf("only %d range-template specs in 200 seeds", ranges)
	}
	if varSteps == 0 {
		t.Error("no range template with a parameter-affine step in 200 seeds")
	}
	if varCounts == 0 {
		t.Error("no range template with a non-constant count in 200 seeds")
	}
}

// TestGenerateClassForces: GenerateClass must honor the forced class
// on every seed while matching Generate's draw on everything else the
// class does not control.
func TestGenerateClassForces(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		if in := GenerateClass(seed, ClassConst); in.Spec.HasExtendedDeps() {
			t.Errorf("seed %d: forced const class produced extended deps", seed)
		}
		if in := GenerateClass(seed, ClassVarDist); !in.Spec.HasExtendedDeps() || in.Spec.HasRangeDeps() {
			t.Errorf("seed %d: forced vardist class produced ranges=%v extended=%v",
				seed, in.Spec.HasRangeDeps(), in.Spec.HasExtendedDeps())
		}
		if in := GenerateClass(seed, ClassRange); !in.Spec.HasRangeDeps() {
			t.Errorf("seed %d: forced range class produced no range dep", seed)
		}
		if in := GenerateClass(seed, ClassAny); GoLiteral(in) != GoLiteral(Generate(seed)) {
			t.Errorf("seed %d: GenerateClass(ClassAny) differs from Generate", seed)
		}
	}
}

// TestMinimizeShrinks: the minimizer must reduce a large failing
// instance to something strictly simpler while preserving the failure
// (here simulated by a predicate on the dependence count).
func TestMinimizeShrinks(t *testing.T) {
	var in *Instance
	for seed := uint64(0); ; seed++ {
		in = Generate(seed)
		if len(in.Spec.Deps) >= 2 && len(in.Spec.Vars) >= 2 {
			break
		}
	}
	fails := func(c *Instance) bool { return len(c.Spec.Deps) >= 1 }
	min := Minimize(in, fails)
	if err := min.Spec.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if len(min.Spec.Deps) != 1 {
		t.Errorf("minimizer kept %d deps, want 1", len(min.Spec.Deps))
	}
	if min.N >= in.N && min.N > 1 {
		t.Errorf("minimizer did not shrink N: %d -> %d", in.N, min.N)
	}
}
