package dpfuzz

import (
	"fmt"
	"math/rand"
	"testing"

	"dpgen/internal/fm"
	"dpgen/internal/lin"
)

// FuzzSpec is the full-pipeline fuzz target: every input seed becomes
// a generated instance pushed through all four oracle layers. Crashers
// found by `go test -fuzz=FuzzSpec` land in testdata/fuzz/FuzzSpec and
// replay on every plain `go test` thereafter.
func FuzzSpec(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	// A couple of large seeds so the corpus is not just small integers.
	f.Add(uint64(0x9e3779b97f4a7c15))
	f.Add(uint64(0xdeadbeefcafe))
	// Class-representative seeds: 23 draws a variable-distance spec, 18
	// and 27 draw range templates (with a parameter-affine step and a
	// shrinking count between them).
	f.Add(uint64(18))
	f.Add(uint64(23))
	f.Add(uint64(27))
	f.Fuzz(func(t *testing.T, seed uint64) {
		in := Generate(seed)
		if _, err := CheckAll(in); err != nil {
			reportFailure(t, in, err)
		}
	})
}

// FuzzEhrhart exercises only the counting layers (loop bounds and
// Ehrhart interpolation), which are cheap enough for the fuzzer to get
// through thousands of specs per run.
func FuzzEhrhart(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		in := Generate(seed)
		if err := CheckNest(in); err != nil {
			t.Errorf("seed %d: nest oracle: %v\nreproduce with:\n%s", seed, err, GoLiteral(in))
		}
		if _, err := CheckEhrhart(in); err != nil {
			t.Errorf("seed %d: ehrhart oracle: %v\nreproduce with:\n%s", seed, err, GoLiteral(in))
		}
	})
}

// FuzzFM characterizes single-variable Fourier–Motzkin elimination
// directly, below the spec layer, on arbitrary (including infeasible
// and unbounded) systems the spec generator can never produce.
//
// The oracle is the defining property of the elimination: for an
// integer point p over the remaining variables,
//
//	p ∈ Eliminate(sys, x)  ⇔  every x-free inequality holds at p and
//	                          every (lower, upper) bound pair on x is
//	                          rationally consistent at p,
//
// where the pair (l: a*x + L >= 0, a > 0) and (u: -b*x + U >= 0,
// b > 0) is consistent iff b*L(p) + a*U(p) >= 0 (the cross-multiplied
// comparison of -L/a <= U/b; integer tightening of the combined
// constraint preserves truth at integer points, and simplex pruning
// preserves the rational solution set). ErrInfeasible additionally
// implies the original system has no integer points at all.
func FuzzFM(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkFMSeed(t, seed)
	})
}

// fmScan is the half-width of the lattice box the FM oracle scans.
const fmScan = 5

// checkFMSeed derives a random inequality system from seed, eliminates
// one variable at a random prune level, and checks the pairwise-bound
// characterization at every lattice point of a scan box.
func checkFMSeed(t *testing.T, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	nv := 2 + rng.Intn(2)
	names := make([]string, nv)
	for k := range names {
		names[k] = fmt.Sprintf("x%d", k)
	}
	space := lin.MustSpace(nil, names)
	sys := lin.NewSystem(space)
	for m := 3 + rng.Intn(5); m > 0; m-- {
		e := lin.Const(space, int64(rng.Intn(17))-8)
		for _, name := range names {
			if c := int64(rng.Intn(7)) - 3; c != 0 {
				e = e.Add(lin.Term(space, c, name))
			}
		}
		sys.Add(lin.Ineq{Expr: e})
	}
	xi := rng.Intn(nv)
	prune := []fm.PruneLevel{fm.PruneAuto, fm.PruneSyntactic, fm.PruneSimplex}[rng.Intn(3)]

	elim, err := fm.Eliminate(sys, names[xi], fm.Options{Prune: prune})
	if err == fm.ErrInfeasible {
		// Infeasibility is a rational certificate, so in particular no
		// integer point of the scan box may satisfy the system.
		forEachBoxPoint(nv, fmScan, func(vals []int64) {
			if sys.Contains(vals) {
				t.Fatalf("seed %d: Eliminate(%s) says infeasible but %v satisfies %v", seed, names[xi], vals, sys)
			}
		})
		return
	}
	if err != nil {
		t.Fatalf("seed %d: Eliminate(%s) on %v: %v", seed, names[xi], sys, err)
	}
	if elim.InvolvedIn(names[xi]) {
		t.Fatalf("seed %d: Eliminate(%s) result still involves it: %v", seed, names[xi], elim)
	}

	var lower, upper []lin.Ineq
	var free []lin.Ineq
	for _, q := range sys.Ineqs {
		switch c := q.CoeffAt(xi); {
		case c > 0:
			lower = append(lower, q)
		case c < 0:
			upper = append(upper, q)
		default:
			free = append(free, q)
		}
	}

	// Scan the remaining variables; the eliminated slot stays 0, which
	// is inert in both elim and the x-free / x-zeroed evaluations.
	forEachBoxPoint(nv, fmScan, func(vals []int64) {
		if vals[xi] != 0 {
			return
		}
		expected := true
		for _, q := range free {
			if !q.Holds(vals) {
				expected = false
				break
			}
		}
		for _, l := range lower {
			if !expected {
				break
			}
			a, lval := l.CoeffAt(xi), l.Eval(vals)
			for _, u := range upper {
				b, uval := -u.CoeffAt(xi), u.Eval(vals)
				if b*lval+a*uval < 0 {
					expected = false
					break
				}
			}
		}
		if got := elim.Contains(vals); got != expected {
			t.Fatalf("seed %d: point %v: Eliminate(%s) membership %v, pairwise bounds say %v\nsystem: %v\nresult: %v",
				seed, vals, names[xi], got, expected, sys, elim)
		}
	})
}

// forEachBoxPoint visits every lattice point of [-scan, scan]^d.
func forEachBoxPoint(d int, scan int64, visit func([]int64)) {
	vals := make([]int64, d)
	var rec func(k int)
	rec = func(k int) {
		if k == d {
			visit(vals)
			return
		}
		for v := -scan; v <= scan; v++ {
			vals[k] = v
			rec(k + 1)
		}
	}
	rec(0)
}
