package dpfuzz

import (
	"fmt"
	"testing"
)

// TestKillRecoverBitIdentical pushes a handful of generated specs
// through the fault-tolerance differential: rank 1 of a two-rank TCP
// run is killed mid-execution and restarted with resume/rejoin, and
// the recovered run must stay bit-identical to the independent serial
// reference. Skipped in -short mode — each seed is a full crash,
// heartbeat-detection, and replay cycle.
func TestKillRecoverBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping crash-recovery soak in -short mode")
	}
	for _, seed := range []uint64{3, 7, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := CheckKillRecover(Generate(seed)); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		})
	}
}
