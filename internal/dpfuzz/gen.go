// Package dpfuzz is the generative correctness harness of the
// generator: a seeded random source of valid-by-construction DP specs
// plus a layered oracle stack that checks every stage of the pipeline
// against brute force (see docs/TESTING.md).
//
// The layers, from the bottom of the pipeline up:
//
//  1. FM-synthesized loop bounds (dpgen/internal/fm + loopgen) against
//     direct lattice enumeration of the constraint system;
//  2. Ehrhart point counts (dpgen/internal/ehrhart) against exhaustive
//     counting on small instances;
//  3. the tiling analysis's pack/unpack index sets and validity
//     functions (dpgen/internal/tiling) against the dependence
//     definition itself;
//  4. end-to-end engine results: an independent serial solver vs. the
//     threaded runtime vs. fast path on/off vs. a two-rank TCP
//     transport run, all required bit-identical.
//
// Three consumers drive it: TestRandomSpecs (a fixed seed sweep run on
// every `go test`), the native fuzz targets FuzzSpec/FuzzFM/
// FuzzEhrhart, and the cmd/dpfuzz soak CLI which minimizes failures
// and prints them as reproducible Go literals.
package dpfuzz

import (
	"fmt"
	"math/rand"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/fm"
	"dpgen/internal/loopgen"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// Instance is one generated test case: a valid spec, the parameter
// value the engine layers run at, and the runtime configuration knobs
// the differential layer varies. Everything is a deterministic
// function of Seed.
type Instance struct {
	Seed uint64
	Spec *spec.Spec
	// N is the value of the single parameter "N" used by the engine
	// and pack/unpack layers; the counting layers sweep smaller values.
	N int64

	// Randomized runtime knobs for the differential layer.
	Nodes       int
	Threads     int
	SendBufs    int
	RecvBufs    int
	QueueGroups int
	Priority    engine.Priority
	Sched       engine.Sched
	Balance     balance.Method
	PollingRecv bool

	// Lazily built pipeline artifacts, shared across the oracle layers
	// (each instance is exercised by a single goroutine).
	nest    *loopgen.Nest
	nestErr error
	tl      *tiling.Tiling
	tlErr   error
}

// iterNest lazily synthesizes the iteration-space loop nest via
// Fourier–Motzkin elimination, exactly as the generator does.
func (in *Instance) iterNest() (*loopgen.Nest, error) {
	if in.nest == nil && in.nestErr == nil {
		in.nest, in.nestErr = loopgen.Build(in.Spec.System(), in.Spec.Order(), fm.Options{Prune: fm.PruneSimplex})
	}
	return in.nest, in.nestErr
}

// tiling lazily runs the full generation-time analysis.
func (in *Instance) tiling() (*tiling.Tiling, error) {
	if in.tl == nil && in.tlErr == nil {
		in.tl, in.tlErr = tiling.New(in.Spec)
	}
	return in.tl, in.tlErr
}

// maxTestN returns the largest parameter value any oracle layer will
// evaluate this instance at.
func (in *Instance) maxTestN() int64 {
	if in.N > countMaxN {
		return in.N
	}
	return countMaxN
}

// countMaxN is the largest parameter value the counting layers
// (loop-bound and Ehrhart oracles) enumerate exhaustively.
const countMaxN = 5

// engineBaseN is the smallest engine-layer parameter value per
// dimension count, chosen so the brute-force serial reference stays
// around a few thousand cells while still spanning several tiles.
var engineBaseN = map[int]int64{1: 24, 2: 11, 3: 7, 4: 5}

// Generate derives a valid-by-construction instance from seed: random
// dimension 1–4, a bounded parametric box plus up to two random extra
// half-spaces, random single-direction-per-dimension template vectors,
// a random loop order, tile widths, load-balancing dimensions, and
// random runtime knobs. The returned spec always passes
// spec.Validate, keeps the origin goal inside the iteration space at
// every parameter value the oracles test, and admits at least one
// initial tile (the template sign discipline makes the tile graph
// acyclic).
func Generate(seed uint64) *Instance {
	rng := rand.New(rand.NewSource(int64(seed)))
	d := 1 + rng.Intn(4)

	vars := make([]string, d)
	for k := range vars {
		vars[k] = fmt.Sprintf("v%d", k)
	}
	sp := spec.MustNew(fmt.Sprintf("fuzz_%016x", seed), []string{"N"}, vars)

	in := &Instance{
		Seed: seed,
		Spec: sp,
		N:    engineBaseN[d] + int64(rng.Intn(3)),
	}

	// Base box: guarantees a bounded nonempty space containing the
	// origin at every N >= 0, and both-sided bounds for every variable
	// (a loopgen requirement).
	for _, v := range vars {
		sp.MustConstrain(fmt.Sprintf("0 <= %s <= N", v))
	}

	// Up to two extra random half-spaces, kept only when the origin
	// stays feasible at every parameter value the oracles will use
	// (so the goal cell always exists for the engine layer).
	for extra := rng.Intn(3); extra > 0; extra-- {
		for try := 0; try < 8; try++ {
			if q, ok := randomHalfSpace(rng, vars, in.maxTestN()); ok {
				sp.MustConstrain(q)
				break
			}
		}
	}

	// Template vectors: one direction sign per dimension (a Validate
	// rule — mixed signs would make the cell order cyclic), components
	// in {0, ±1, ±2}, no zero vectors, distinct when possible.
	signs := make([]int64, d)
	for k := range signs {
		signs[k] = 1
		if rng.Intn(2) == 0 {
			signs[k] = -1
		}
	}
	ndeps := 1 + rng.Intn(3)
	seen := map[string]bool{}
	for j := 0; j < ndeps; j++ {
		var vec []int64
		for try := 0; ; try++ {
			vec = make([]int64, d)
			zero := true
			for k := range vec {
				vec[k] = signs[k] * int64(rng.Intn(3))
				if vec[k] != 0 {
					zero = false
				}
			}
			key := fmt.Sprint(vec)
			if !zero && (!seen[key] || try >= 4) {
				seen[key] = true
				break
			}
		}
		sp.AddDep(fmt.Sprintf("r%d", j+1), vec...)
	}

	// Tile widths: at least the template reach (a Validate rule),
	// randomly up to a little wider.
	lo, hi := sp.Reach()
	sp.TileWidths = make([]int64, d)
	for k := range sp.TileWidths {
		need := max(lo[k], hi[k])
		if need == 0 {
			need = 1
		}
		sp.TileWidths[k] = need + int64(rng.Intn(3))
	}

	// Random loop order; random nonempty load-balancing prefix.
	order := append([]string(nil), vars...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	sp.LoopOrder = order
	lb := append([]string(nil), vars...)
	rng.Shuffle(len(lb), func(i, j int) { lb[i], lb[j] = lb[j], lb[i] })
	sp.LBDims = lb[:1+rng.Intn(d)]

	// Runtime knobs for the differential layer.
	in.Nodes = 2 + rng.Intn(2)
	in.Threads = 2 + rng.Intn(2)
	in.SendBufs = 1 + rng.Intn(4)
	in.RecvBufs = 1 + rng.Intn(4)
	in.QueueGroups = 1 + rng.Intn(2)
	in.Priority = []engine.Priority{engine.ColumnMajor, engine.LevelSet, engine.FIFO}[rng.Intn(3)]
	in.Sched = []engine.Sched{engine.SchedHybrid, engine.SchedDynamic}[rng.Intn(2)]
	in.Balance = []balance.Method{balance.Prefix, balance.Hyperplane}[rng.Intn(2)]
	in.PollingRecv = rng.Intn(2) == 0

	if err := sp.Validate(); err != nil {
		// Unreachable by construction; a panic here is itself a
		// generator bug worth a crasher.
		panic(fmt.Sprintf("dpfuzz: generated invalid spec (seed %d): %v", seed, err))
	}
	return in
}

// randomHalfSpace draws a random inequality over vars (written in the
// spec constraint syntax) whose origin evaluation stays nonnegative
// for every N in [0, maxN] — i.e. keeping the goal feasible — and
// which involves at least one variable. ok is false when the draw is
// origin-infeasible and should be retried.
func randomHalfSpace(rng *rand.Rand, vars []string, maxN int64) (string, bool) {
	cN := int64(rng.Intn(4)) - 1  // [-1, 2]
	c0 := int64(rng.Intn(13)) - 4 // [-4, 8]
	cv := make([]int64, len(vars))
	anyVar := false
	for k := range cv {
		cv[k] = int64(rng.Intn(5)) - 2 // [-2, 2]
		if cv[k] != 0 {
			anyVar = true
		}
	}
	if !anyVar {
		return "", false
	}
	// Origin feasibility for all tested N: cN*N + c0 >= 0 on [0, maxN].
	for _, n := range []int64{0, maxN} {
		if cN*n+c0 < 0 {
			return "", false
		}
	}
	s := ""
	addTerm := func(c int64, name string) {
		if c == 0 {
			return
		}
		switch {
		case s == "" && name == "":
			s = fmt.Sprint(c)
		case s == "":
			s = fmt.Sprintf("%d*%s", c, name)
		default:
			op := " + "
			if c < 0 {
				op, c = " - ", -c
			}
			if name == "" {
				s += op + fmt.Sprint(c)
			} else {
				s += op + fmt.Sprintf("%d*%s", c, name)
			}
		}
	}
	for k, c := range cv {
		addTerm(c, vars[k])
	}
	addTerm(cN, "N")
	addTerm(c0, "")
	return s + " >= 0", true
}
