// Package dpfuzz is the generative correctness harness of the
// generator: a seeded random source of valid-by-construction DP specs
// plus a layered oracle stack that checks every stage of the pipeline
// against brute force (see docs/TESTING.md).
//
// The layers, from the bottom of the pipeline up:
//
//  1. FM-synthesized loop bounds (dpgen/internal/fm + loopgen) against
//     direct lattice enumeration of the constraint system;
//  2. Ehrhart point counts (dpgen/internal/ehrhart) against exhaustive
//     counting on small instances;
//  3. the tiling analysis's pack/unpack index sets and validity
//     functions (dpgen/internal/tiling) against the dependence
//     definition itself;
//  4. end-to-end engine results: an independent serial solver vs. the
//     threaded runtime vs. fast path on/off vs. a two-rank TCP
//     transport run, all required bit-identical.
//
// Three consumers drive it: TestRandomSpecs (a fixed seed sweep run on
// every `go test`), the native fuzz targets FuzzSpec/FuzzFM/
// FuzzEhrhart, and the cmd/dpfuzz soak CLI which minimizes failures
// and prints them as reproducible Go literals.
package dpfuzz

import (
	"fmt"
	"math/rand"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/loopgen"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// Instance is one generated test case: a valid spec, the parameter
// value the engine layers run at, and the runtime configuration knobs
// the differential layer varies. Everything is a deterministic
// function of Seed.
type Instance struct {
	Seed uint64
	Spec *spec.Spec
	// N is the value of the first parameter "N" used by the engine
	// and pack/unpack layers; the counting layers sweep smaller values.
	N int64
	// D is the value of the second, bounded parameter "D" that the
	// variable-distance and range template classes thread through their
	// offset/step/count forms; zero when the spec has no such parameter.
	D int64

	// Randomized runtime knobs for the differential layer.
	Nodes       int
	Threads     int
	SendBufs    int
	RecvBufs    int
	QueueGroups int
	Priority    engine.Priority
	Sched       engine.Sched
	Balance     balance.Method
	PollingRecv bool

	// Lazily built pipeline artifacts, shared across the oracle layers
	// (each instance is exercised by a single goroutine).
	nest    *loopgen.Nest
	nestErr error
	tl      *tiling.Tiling
	tlErr   error
}

// iterNest lazily synthesizes the iteration-space loop nest via
// Fourier–Motzkin elimination, exactly as the generator does.
func (in *Instance) iterNest() (*loopgen.Nest, error) {
	if in.nest == nil && in.nestErr == nil {
		in.nest, in.nestErr = loopgen.Build(in.Spec.System(), in.Spec.Order(), fm.Options{Prune: fm.PruneSimplex})
	}
	return in.nest, in.nestErr
}

// tiling lazily runs the full generation-time analysis.
func (in *Instance) tiling() (*tiling.Tiling, error) {
	if in.tl == nil && in.tlErr == nil {
		in.tl, in.tlErr = tiling.New(in.Spec)
	}
	return in.tl, in.tlErr
}

// countNest returns the nest the Ehrhart layer interpolates over N:
// the iteration nest itself for single-parameter specs, or a rebuilt
// single-parameter nest when the spec's extra template parameters
// (which Ehrhart interpolation cannot handle) never appear in a
// constraint — true for every generated extended-class spec, whose
// bounded parameter only occurs inside dependence templates. ok is
// false when the reduction does not apply and the layer must skip.
func (in *Instance) countNest() (nest *loopgen.Nest, ok bool, err error) {
	sp := in.Spec
	if len(sp.Params) == 1 {
		nest, err = in.iterNest()
		return nest, true, err
	}
	for _, q := range sp.Constraints {
		for _, p := range sp.Params[1:] {
			if q.Coeff(p) != 0 {
				return nil, false, nil
			}
		}
	}
	red := spec.MustNew(sp.Name, sp.Params[:1], append([]string(nil), sp.Vars...))
	for _, q := range sp.Constraints {
		if cerr := red.Constrain(q.String()); cerr != nil {
			return nil, false, nil
		}
	}
	red.LoopOrder = append([]string(nil), sp.LoopOrder...)
	nest, err = loopgen.Build(red.System(), red.Order(), fm.Options{Prune: fm.PruneSimplex})
	return nest, true, err
}

// maxTestN returns the largest parameter value any oracle layer will
// evaluate this instance at.
func (in *Instance) maxTestN() int64 {
	if in.N > countMaxN {
		return in.N
	}
	return countMaxN
}

// pvals returns the full parameter vector for running the instance at
// the given N: just {N} for single-parameter specs, {N, D} when the
// spec declares the bounded template parameter.
func (in *Instance) pvals(N int64) []int64 {
	if len(in.Spec.Params) > 1 {
		return []int64{N, in.D}
	}
	return []int64{N}
}

// countMaxN is the largest parameter value the counting layers
// (loop-bound and Ehrhart oracles) enumerate exhaustively.
const countMaxN = 5

// engineBaseN is the smallest engine-layer parameter value per
// dimension count, chosen so the brute-force serial reference stays
// around a few thousand cells while still spanning several tiles.
var engineBaseN = map[int]int64{1: 24, 2: 11, 3: 7, 4: 5}

// Class selects which dependence-template class Generate draws:
// constant vectors (the paper's form), variable-distance offsets
// (parameter-affine components over a bounded parameter), or range
// templates (a cell depends on an interval of predecessors, the
// nonserial polyadic case; some steps and counts also involve the
// bounded parameter).
type Class int

const (
	// ClassAny lets the seed choose the class.
	ClassAny Class = iota - 1
	// ClassConst generates constant template vectors only.
	ClassConst
	// ClassVarDist generates point templates with parameter-affine
	// (variable-distance) offset components.
	ClassVarDist
	// ClassRange generates range templates, mixed with point templates.
	ClassRange
)

// String names the class as accepted by ParseClass.
func (c Class) String() string {
	switch c {
	case ClassConst:
		return "const"
	case ClassVarDist:
		return "vardist"
	case ClassRange:
		return "range"
	}
	return "any"
}

// ParseClass maps a command-line name to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "any":
		return ClassAny, nil
	case "const":
		return ClassConst, nil
	case "vardist":
		return ClassVarDist, nil
	case "range":
		return ClassRange, nil
	}
	return ClassAny, fmt.Errorf("dpfuzz: unknown template class %q (want const, vardist, range, or any)", s)
}

// Generate derives a valid-by-construction instance from seed: random
// dimension 1–4, a random template class, a bounded parametric box
// plus up to two random extra half-spaces, random
// single-direction-per-dimension templates, a random loop order, tile
// widths, load-balancing dimensions, and random runtime knobs. The
// returned spec always passes spec.Validate, keeps the origin goal
// inside the iteration space at every parameter value the oracles
// test, and admits at least one initial tile (the template sign
// discipline makes the tile graph acyclic).
func Generate(seed uint64) *Instance { return GenerateClass(seed, ClassAny) }

// GenerateClass is Generate with the template class forced (the
// cmd/dpfuzz -class soak restriction). ClassAny draws the class from
// the seed; a forced class consumes the same random stream, so the
// rest of the instance matches the ClassAny draw of the same seed.
func GenerateClass(seed uint64, class Class) *Instance {
	rng := rand.New(rand.NewSource(int64(seed)))
	d := 1 + rng.Intn(4)
	cls := Class(rng.Intn(3))
	if class != ClassAny {
		cls = class
	}

	vars := make([]string, d)
	for k := range vars {
		vars[k] = fmt.Sprintf("v%d", k)
	}
	params := []string{"N"}
	if cls != ClassConst {
		params = append(params, "D")
	}
	sp := spec.MustNew(fmt.Sprintf("fuzz_%016x", seed), params, vars)

	in := &Instance{
		Seed: seed,
		Spec: sp,
		N:    engineBaseN[d] + int64(rng.Intn(3)),
	}
	if cls != ClassConst {
		in.D = 1 + int64(rng.Intn(2))
		sp.Bound("D", 1, 2)
	}

	// Base box: guarantees a bounded nonempty space containing the
	// origin at every N >= 0, and both-sided bounds for every variable
	// (a loopgen requirement).
	for _, v := range vars {
		sp.MustConstrain(fmt.Sprintf("0 <= %s <= N", v))
	}

	// Up to two extra random half-spaces, kept only when the origin
	// stays feasible at every parameter value the oracles will use
	// (so the goal cell always exists for the engine layer).
	for extra := rng.Intn(3); extra > 0; extra-- {
		for try := 0; try < 8; try++ {
			if q, ok := randomHalfSpace(rng, vars, in.maxTestN()); ok {
				sp.MustConstrain(q)
				break
			}
		}
	}

	// Templates: one direction sign per dimension (a Validate rule —
	// mixed signs would make the cell order cyclic). Constant-class
	// vectors have components in {0, ±1, ±2}, no zero vectors, distinct
	// when possible. The extended classes anchor every dependence on a
	// random dimension where its whole footprint excludes zero (so no
	// cell can depend on itself at any admissible D), and track the
	// exact footprint reach per dimension over D in [1, 2] so tile
	// widths below can bound the tile-crossing enumeration.
	signs := make([]int64, d)
	for k := range signs {
		signs[k] = 1
		if rng.Intn(2) == 0 {
			signs[k] = -1
		}
	}
	const maxD = 2
	ndeps := 1 + rng.Intn(3)
	estReach := make([]int64, d)
	seen := map[string]bool{}
	addConstDep := func(j int) {
		var vec []int64
		for try := 0; ; try++ {
			vec = make([]int64, d)
			zero := true
			for k := range vec {
				vec[k] = signs[k] * int64(rng.Intn(3))
				if vec[k] != 0 {
					zero = false
				}
			}
			key := fmt.Sprint(vec)
			if !zero && (!seen[key] || try >= 4) {
				seen[key] = true
				break
			}
		}
		for k, r := range vec {
			if a := ints.Abs(r); a > estReach[k] {
				estReach[k] = a
			}
		}
		sp.AddDep(fmt.Sprintf("r%d", j+1), vec...)
	}
	dTerm := func(k, m int64) []spec.AffTerm {
		if m == 0 {
			return nil
		}
		return []spec.AffTerm{{Coef: k * m, Name: "D"}}
	}
	for j := 0; j < ndeps; j++ {
		switch {
		case cls == ClassConst:
			addConstDep(j)
		case cls == ClassVarDist:
			// Point template with parameter-affine components
			// signs[k]*(c + m*D); the first dependence's anchor always
			// carries a D term so every vardist spec exercises the
			// variable distance.
			anchor := rng.Intn(d)
			dep := spec.Dep{Name: fmt.Sprintf("r%d", j+1), Vec: make([]int64, d)}
			pvec := make([]spec.Affine, d)
			anyP := false
			var reach int64
			for k := 0; k < d; k++ {
				c := int64(rng.Intn(3))
				m := int64(rng.Intn(3) / 2)
				if k == anchor {
					if j == 0 {
						m = 1
					}
					if c == 0 && m == 0 {
						c = 1
					}
				}
				dep.Vec[k] = signs[k] * c
				pvec[k] = spec.Affine{Terms: dTerm(signs[k], m)}
				if m != 0 {
					anyP = true
				}
				if reach = c + m*maxD; reach > estReach[k] {
					estReach[k] = reach
				}
			}
			if anyP {
				dep.PVec = pvec
			}
			sp.Deps = append(sp.Deps, dep)
		case j > 0 && rng.Intn(2) == 0:
			// The range class mixes in plain point templates, as real
			// nonserial problems do.
			addConstDep(j)
		default:
			// Range template: base anchored off zero, a sign-disciplined
			// step (sometimes the bounded parameter itself, the
			// knapsack shape), and a count that is constant, shrinks
			// along a loop variable (the matrix-chain shape), or is the
			// bounded parameter plus a constant.
			anchor := rng.Intn(d)
			dep := spec.Dep{Name: fmt.Sprintf("r%d", j+1), Vec: make([]int64, d), Dir: make([]int64, d)}
			base := make([]int64, d)
			dirC := make([]int64, d)
			dirM := make([]int64, d)
			for k := 0; k < d; k++ {
				base[k] = int64(rng.Intn(2))
				dirC[k] = int64(rng.Intn(2))
			}
			if base[anchor] == 0 {
				base[anchor] = 1
			}
			if rng.Intn(3) == 0 {
				dirC[anchor], dirM[anchor] = 0, 1
			}
			zeroDir := true
			for k := 0; k < d; k++ {
				if dirC[k] != 0 || dirM[k] != 0 {
					zeroDir = false
				}
			}
			if zeroDir {
				dirC[anchor] = 1
			}
			var count spec.Affine
			var lmax int64
			switch rng.Intn(3) {
			case 0:
				count = spec.AffConst(2 + int64(rng.Intn(2)))
				lmax = count.K
			case 1:
				k := 2 + int64(rng.Intn(2))
				count = spec.Affine{K: k, Terms: []spec.AffTerm{{Coef: -1, Name: vars[rng.Intn(d)]}}}
				lmax = k
			default:
				count = spec.Affine{K: int64(rng.Intn(2)), Terms: []spec.AffTerm{{Coef: 1, Name: "D"}}}
				lmax = count.K + maxD
			}
			anyPD := false
			pdir := make([]spec.Affine, d)
			for k := 0; k < d; k++ {
				dep.Vec[k] = signs[k] * base[k]
				dep.Dir[k] = signs[k] * dirC[k]
				pdir[k] = spec.Affine{Terms: dTerm(signs[k], dirM[k])}
				if dirM[k] != 0 {
					anyPD = true
				}
				reach := base[k] + (lmax-1)*(dirC[k]+dirM[k]*maxD)
				if reach > estReach[k] {
					estReach[k] = reach
				}
			}
			if anyPD {
				dep.PDir = pdir
			}
			dep.Len = &count
			sp.Deps = append(sp.Deps, dep)
		}
	}

	// Tile widths. The constant class keeps the classic draw (at least
	// the template reach, randomly a little wider). The extended
	// classes use at least half the footprint reach, so a dependence
	// crosses at most two tile boundaries per dimension and the
	// tile-crossing cross product stays well under the analysis cap.
	sp.TileWidths = make([]int64, d)
	if cls == ClassConst {
		lo, hi := sp.Reach()
		for k := range sp.TileWidths {
			need := max(lo[k], hi[k])
			if need == 0 {
				need = 1
			}
			sp.TileWidths[k] = need + int64(rng.Intn(3))
		}
	} else {
		for k := range sp.TileWidths {
			need := (estReach[k] + 1) / 2
			if need == 0 {
				need = 1
			}
			sp.TileWidths[k] = need + int64(rng.Intn(2))
		}
	}

	// Random loop order; random nonempty load-balancing prefix.
	order := append([]string(nil), vars...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	sp.LoopOrder = order
	lb := append([]string(nil), vars...)
	rng.Shuffle(len(lb), func(i, j int) { lb[i], lb[j] = lb[j], lb[i] })
	sp.LBDims = lb[:1+rng.Intn(d)]

	// Runtime knobs for the differential layer.
	in.Nodes = 2 + rng.Intn(2)
	in.Threads = 2 + rng.Intn(2)
	in.SendBufs = 1 + rng.Intn(4)
	in.RecvBufs = 1 + rng.Intn(4)
	in.QueueGroups = 1 + rng.Intn(2)
	in.Priority = []engine.Priority{engine.ColumnMajor, engine.LevelSet, engine.FIFO}[rng.Intn(3)]
	in.Sched = []engine.Sched{engine.SchedHybrid, engine.SchedDynamic}[rng.Intn(2)]
	in.Balance = []balance.Method{balance.Prefix, balance.Hyperplane}[rng.Intn(2)]
	in.PollingRecv = rng.Intn(2) == 0

	if err := sp.Validate(); err != nil {
		// Unreachable by construction; a panic here is itself a
		// generator bug worth a crasher.
		panic(fmt.Sprintf("dpfuzz: generated invalid spec (seed %d): %v", seed, err))
	}
	return in
}

// randomHalfSpace draws a random inequality over vars (written in the
// spec constraint syntax) whose origin evaluation stays nonnegative
// for every N in [0, maxN] — i.e. keeping the goal feasible — and
// which involves at least one variable. ok is false when the draw is
// origin-infeasible and should be retried.
func randomHalfSpace(rng *rand.Rand, vars []string, maxN int64) (string, bool) {
	cN := int64(rng.Intn(4)) - 1  // [-1, 2]
	c0 := int64(rng.Intn(13)) - 4 // [-4, 8]
	cv := make([]int64, len(vars))
	anyVar := false
	for k := range cv {
		cv[k] = int64(rng.Intn(5)) - 2 // [-2, 2]
		if cv[k] != 0 {
			anyVar = true
		}
	}
	if !anyVar {
		return "", false
	}
	// Origin feasibility for all tested N: cN*N + c0 >= 0 on [0, maxN].
	for _, n := range []int64{0, maxN} {
		if cN*n+c0 < 0 {
			return "", false
		}
	}
	s := ""
	addTerm := func(c int64, name string) {
		if c == 0 {
			return
		}
		switch {
		case s == "" && name == "":
			s = fmt.Sprint(c)
		case s == "":
			s = fmt.Sprintf("%d*%s", c, name)
		default:
			op := " + "
			if c < 0 {
				op, c = " - ", -c
			}
			if name == "" {
				s += op + fmt.Sprint(c)
			} else {
				s += op + fmt.Sprintf("%d*%s", c, name)
			}
		}
	}
	for k, c := range cv {
		addTerm(c, vars[k])
	}
	addTerm(cN, "N")
	addTerm(c0, "")
	return s + " >= 0", true
}
