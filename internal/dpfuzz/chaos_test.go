package dpfuzz

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestChaosTCPBitIdentical runs a handful of generated specs over the
// two-rank TCP transport with seeded random per-message delivery
// delays (tcp.Options.ChaosDelay), so data messages — including
// messages from the same peer — arrive out of order, and requires the
// results to stay bit-identical to the independent serial reference.
// This is the transport-reordering leg of oracle layer 4: tile-level
// dataflow scheduling must make arrival order irrelevant.
func TestChaosTCPBitIdentical(t *testing.T) {
	seeds := []uint64{2, 7, 11, 23}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			in := Generate(seed)
			ref := serialSolve(in.Spec, in.pvals(in.N))
			tl, err := in.tiling()
			if err != nil {
				t.Fatalf("seed %d: tiling.New: %v", seed, err)
			}
			kernel := fuzzKernel(len(in.Spec.Deps))
			chaos := func(rank int) func(src, tag int) time.Duration {
				var mu sync.Mutex
				rng := rand.New(rand.NewSource(int64(seed)<<8 | int64(rank)))
				return func(src, tag int) time.Duration {
					mu.Lock()
					defer mu.Unlock()
					if rng.Intn(3) == 0 {
						return 0
					}
					return time.Duration(rng.Intn(1500)) * time.Microsecond
				}
			}
			results, err := runTCP(tl, kernel, in.pvals(in.N), 2, 2, in.SendBufs, in.RecvBufs, chaos)
			if err != nil {
				t.Fatalf("seed %d: chaos tcp run: %v", seed, err)
			}
			for r, res := range results {
				if res.Value != ref.goal || res.Max != ref.max {
					t.Errorf("seed %d rank %d: value %.17g max %.17g under chaos, serial reference %.17g / %.17g",
						seed, r, res.Value, res.Max, ref.goal, ref.max)
				}
			}
			if results[0].Messages != results[1].Messages || results[0].Elems != results[1].Elems {
				t.Errorf("seed %d: ranks disagree on merged traffic under chaos: %d/%d vs %d/%d",
					seed, results[0].Messages, results[0].Elems, results[1].Messages, results[1].Elems)
			}
		})
	}
}
