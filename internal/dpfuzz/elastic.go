package dpfuzz

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
)

// CheckElastic is the elastic-membership leg of the differential
// oracle: a three-rank TCP mesh that starts with members {0, 1}, grows
// to {0, 1, 2} when rank 2's join is admitted, and shrinks again when
// rank 1's voluntary leave is granted (2 -> 3 -> 2). The thresholds
// are tiny so both view changes land mid-run on all but the smallest
// instances; instances that finish before a threshold degrade into a
// plain distributed run plus trailing no-op view changes, which must
// be equally bit-identical. Every rank's result is compared against
// the independent serial reference.
//
// Specs outside the elastic engine's envelope — more than 64 tile
// dependences (the fault-tolerance dedup mask it reuses) or tilings
// without exact per-slab tile counts — are skipped, mirroring the
// engine's own rejection.
func CheckElastic(in *Instance) error {
	sp := in.Spec
	params := in.pvals(in.N)
	ref := serialSolve(sp, params)
	kernel := fuzzKernel(len(sp.Deps))
	tl, err := in.tiling()
	if err != nil {
		return fmt.Errorf("tiling.New: %w", err)
	}
	if len(tl.TileDeps) > 64 {
		return nil
	}

	const world = 3
	threads := in.Threads
	if threads < 1 {
		threads = 1
	}
	lns := make([]net.Listener, world)
	peers := make([]string, world)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			return err
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	elastic := func(r int) engine.ElasticConfig {
		ec := engine.ElasticConfig{Enabled: true, Members: []int{0, 1}}
		switch r {
		case 0:
			ec.ScaleAt = []engine.ScaleEvent{{AfterTiles: 2, Delta: +1}}
			ec.ExpectLeaves = 1
		case 1:
			ec.LeaveAfterTiles = 2
		case 2:
			ec.JoinRequest = true
		}
		return ec
	}

	results := make([]*engine.Result, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcp.Dial(r, peers, tcp.Options{
				SendBufs: in.SendBufs, RecvBufs: in.RecvBufs,
				DialTimeout: 15 * time.Second,
				Listener:    lns[r],
			})
			if err != nil {
				errs[r] = fmt.Errorf("dial: %w", err)
				return
			}
			defer tr.Close()
			results[r], errs[r] = engine.Run(tl, kernel, params, engine.Config{
				Transport: tr, Threads: threads,
				Elastic: elastic(r),
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			// The exactness rejection is deterministic and identical on
			// every rank: the spec is outside the elastic envelope, not a
			// differential failure.
			if strings.Contains(err.Error(), "exact per-slab tile counts") {
				return nil
			}
			return fmt.Errorf("elastic rank %d: %w", r, err)
		}
	}
	for r, res := range results {
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("elastic rank %d: value %.17g max %.17g, serial reference %.17g / %.17g",
				r, res.Value, res.Max, ref.goal, ref.max)
		}
	}
	return nil
}
