package dpfuzz

import (
	"testing"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/spec"
)

// regressionCases replays pinned counterexamples and corner-case
// shapes through all four oracle layers. Every entry is a Go literal
// in exactly the form Minimize/GoLiteral reports failures in, so a
// crasher found by the fuzz targets or a cmd/dpfuzz soak is committed
// here by pasting its output into a new build function.
//
// The soak-found entries pin real bugs (with the minimized literal the
// soak reported); the rest pin the corner shapes development showed to
// be the sharp edges of the pipeline — tile width exactly equal to the
// template reach, magnitude-2 dependence components (ghost regions two
// cells deep), thin diagonal iteration spaces from extra half-spaces,
// a 1-D chain (degenerate tile graph), and a reversed loop order with
// all-negative templates.
var regressionCases = []struct {
	name  string
	build func() *Instance
}{
	{
		// Soak seed 10067 (minimized): the extra constraint
		// -v1 - 2*v2 >= 0 pins v1 = v2 = 0, so the tile offset for the
		// v2-crossing dependence is unrealizable and its pack-slab
		// system is rationally infeasible. fm's simplex pruning used to
		// strip an infeasible system bare (every inequality of an
		// infeasible system is vacuously implied by the rest), and
		// loop synthesis then failed with "variable unbounded below".
		name: "soak-10067-infeasible-pack-slab",
		build: func() *Instance {
			in := &Instance{
				Seed: 0x2753, N: 1,
				Nodes: 2, Threads: 2, SendBufs: 2, RecvBufs: 3, QueueGroups: 1,
				Priority: engine.ColumnMajor, Balance: balance.Hyperplane,
			}
			sp := spec.MustNew("fuzz_0000000000002753", []string{"N"}, []string{"v0", "v1", "v2", "v3"})
			sp.MustConstrain("v0 >= 0")
			sp.MustConstrain("N - v0 >= 0")
			sp.MustConstrain("v1 >= 0")
			sp.MustConstrain("N - v1 >= 0")
			sp.MustConstrain("v2 >= 0")
			sp.MustConstrain("N - v2 >= 0")
			sp.MustConstrain("v3 >= 0")
			sp.MustConstrain("N - v3 >= 0")
			sp.MustConstrain("-v1 - 2*v2 >= 0")
			sp.AddDep("r1", 0, 0, -1, 0)
			sp.LoopOrder = []string{"v0", "v1", "v2", "v3"}
			sp.LBDims = []string{"v0"}
			sp.TileWidths = []int64{1, 1, 2, 1}
			in.Spec = sp
			return in
		},
	},
	{
		// Soak seed 10629 (minimized): same root cause through a
		// different door — -v0 + 1 >= 0 caps the space at two cells of
		// a width-3 tile, so the offset -1 pack band (i0 >= 2) is
		// infeasible against the tile-space bound t0 >= 0.
		name: "soak-10629-thin-dim-pack-band",
		build: func() *Instance {
			in := &Instance{
				Seed: 0x2985, N: 1,
				Nodes: 2, Threads: 2, SendBufs: 2, RecvBufs: 4, QueueGroups: 1,
				Priority: engine.LevelSet, Balance: balance.Hyperplane,
			}
			sp := spec.MustNew("fuzz_0000000000002985", []string{"N"}, []string{"v0", "v1", "v2"})
			sp.MustConstrain("v0 >= 0")
			sp.MustConstrain("N - v0 >= 0")
			sp.MustConstrain("v1 >= 0")
			sp.MustConstrain("N - v1 >= 0")
			sp.MustConstrain("v2 >= 0")
			sp.MustConstrain("N - v2 >= 0")
			sp.MustConstrain("-v0 + 1 >= 0")
			sp.AddDep("r1", -1, 0, 0)
			sp.LoopOrder = []string{"v2", "v1", "v0"}
			sp.LBDims = []string{"v0"}
			sp.TileWidths = []int64{3, 1, 1}
			in.Spec = sp
			return in
		},
	},
	{
		// Soak seed 10709 (minimized): the 10629 shape under a
		// different loop order and Prefix balancing.
		name: "soak-10709-thin-dim-reordered",
		build: func() *Instance {
			in := &Instance{
				Seed: 0x29d5, N: 1,
				Nodes: 2, Threads: 2, SendBufs: 2, RecvBufs: 4, QueueGroups: 1,
				Priority: engine.LevelSet, Balance: balance.Prefix,
			}
			sp := spec.MustNew("fuzz_00000000000029d5", []string{"N"}, []string{"v0", "v1", "v2"})
			sp.MustConstrain("v0 >= 0")
			sp.MustConstrain("N - v0 >= 0")
			sp.MustConstrain("v1 >= 0")
			sp.MustConstrain("N - v1 >= 0")
			sp.MustConstrain("v2 >= 0")
			sp.MustConstrain("N - v2 >= 0")
			sp.MustConstrain("-v0 + 1 >= 0")
			sp.AddDep("r2", -1, 0, 0)
			sp.LoopOrder = []string{"v2", "v0", "v1"}
			sp.LBDims = []string{"v0"}
			sp.TileWidths = []int64{3, 1, 1}
			in.Spec = sp
			return in
		},
	},
	{
		// 1-D chain: the degenerate tile graph (a path), smallest
		// possible widths, FIFO priority.
		name: "chain-1d-width-eq-reach",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0001, N: 25,
				Nodes: 2, Threads: 2, SendBufs: 1, RecvBufs: 1, QueueGroups: 1,
				Priority: engine.FIFO, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_chain", []string{"N"}, []string{"v0"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.AddDep("r1", -1)
			sp.TileWidths = []int64{1}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// Magnitude-2 components with tile widths exactly equal to the
		// reach: the ghost band is as deep as a whole tile.
		name: "width-eq-reach-mag2",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0002, N: 11,
				Nodes: 3, Threads: 2, SendBufs: 2, RecvBufs: 2, QueueGroups: 2,
				Priority: engine.ColumnMajor, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_mag2", []string{"N"}, []string{"v0", "v1"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.AddDep("r1", -2, -1)
			sp.AddDep("r2", -1, -2)
			sp.TileWidths = []int64{2, 2}
			sp.LBDims = []string{"v1", "v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// Thin diagonal band: two extra half-spaces squeeze the box to a
		// strip, so most tiles are partial and many are empty.
		name: "thin-diagonal-band",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0003, N: 12,
				Nodes: 2, Threads: 3, SendBufs: 1, RecvBufs: 3, QueueGroups: 1,
				Priority: engine.LevelSet, Balance: balance.Hyperplane,
			}
			sp := spec.MustNew("regress_band", []string{"N"}, []string{"v0", "v1"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.MustConstrain("v1 - v0 + 2 >= 0")
			sp.MustConstrain("v0 - v1 + 2 >= 0")
			sp.AddDep("r1", -1, 0)
			sp.AddDep("r2", 0, -1)
			sp.TileWidths = []int64{3, 2}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// All-negative-direction templates with a reversed loop order:
		// the sweep runs from the far corner toward the origin goal.
		name: "reversed-order-positive-deps",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0004, N: 7,
				Nodes: 3, Threads: 3, SendBufs: 4, RecvBufs: 1, QueueGroups: 2,
				Priority: engine.ColumnMajor, Balance: balance.Prefix, PollingRecv: true,
			}
			sp := spec.MustNew("regress_rev", []string{"N"}, []string{"v0", "v1", "v2"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.MustConstrain("0 <= v2 <= N")
			sp.AddDep("r1", 1, 0, 1)
			sp.AddDep("r2", 0, 2, 0)
			sp.LoopOrder = []string{"v2", "v0", "v1"}
			sp.TileWidths = []int64{2, 3, 2}
			sp.LBDims = []string{"v2"}
			in.Spec = sp
			return in
		},
	},
	{
		// Mixed template signs across dimensions plus an extra
		// constraint involving the parameter with coefficient 2.
		name: "mixed-signs-param-coeff",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0005, N: 6,
				Nodes: 2, Threads: 2, SendBufs: 3, RecvBufs: 2, QueueGroups: 1,
				Priority: engine.LevelSet, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_mixed", []string{"N"}, []string{"v0", "v1", "v2"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.MustConstrain("0 <= v2 <= N")
			sp.MustConstrain("-2*v0 - v1 + 2*N + 1 >= 0")
			sp.AddDep("r1", -1, 1, -1)
			sp.AddDep("r2", -2, 0, 0)
			sp.AddDep("r3", 0, 1, 0)
			sp.TileWidths = []int64{2, 2, 1}
			sp.LoopOrder = []string{"v1", "v2", "v0"}
			sp.LBDims = []string{"v1", "v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// The generator-bug shape from development: a half-space whose
		// every coefficient is negative exercised the constraint
		// printer/parser round-trip ("- 1*N" vs "+ -1*N").
		name: "all-negative-halfspace-roundtrip",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0006, N: 13,
				Nodes: 2, Threads: 2, SendBufs: 1, RecvBufs: 1, QueueGroups: 1,
				Priority: engine.FIFO, Balance: balance.Hyperplane,
			}
			sp := spec.MustNew("regress_neg", []string{"N"}, []string{"v0", "v1"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.MustConstrain("-1*v0 - 2*v1 + 2*N + 3 >= 0")
			sp.AddDep("r1", -1, -1)
			sp.TileWidths = []int64{2, 2}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// Variable-distance offsets crossing multiple tiles: with D = 2
		// and a width-1 dimension, the -D offset jumps two whole tiles,
		// so the crossing enumeration, ghost shells, and pack slabs all
		// come from the parameter hull rather than the constant vector.
		name: "vardist-multi-tile-crossing",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0008, N: 12, D: 2,
				Nodes: 2, Threads: 2, SendBufs: 2, RecvBufs: 2, QueueGroups: 1,
				Priority: engine.ColumnMajor, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_vardist", []string{"N", "D"}, []string{"v0", "v1"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.Bound("D", 1, 2)
			sp.MustAddDepSpec("r1", "-D, 0", "", "")
			sp.MustAddDepSpec("r2", "-1, -D", "", "")
			sp.TileWidths = []int64{1, 2}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// Range template on a 1-D chain with width-1 tiles and a count
		// that is the bounded parameter itself: every cell reads a
		// three-cell interval spanning three whole tiles, the deepest
		// multi-tile footprint the generator's width rule allows.
		name: "range-chain-param-count",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0009, N: 24, D: 2,
				Nodes: 2, Threads: 2, SendBufs: 1, RecvBufs: 2, QueueGroups: 1,
				Priority: engine.FIFO, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_rangechain", []string{"N", "D"}, []string{"v0"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.Bound("D", 1, 2)
			sp.MustAddDepSpec("r1", "1", "1", "D + 1")
			sp.TileWidths = []int64{1}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
	{
		// The knapsack shape: a range template whose step distance is
		// the bounded parameter and whose count shrinks along a loop
		// variable, mixed with a plain point template. Exercises the
		// variable step-stride in pack/unpack and the per-cell length
		// clamp hitting zero (base-case cells) away from the boundary.
		name: "range-varstep-shrinking-count",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de000a, N: 11, D: 2,
				Nodes: 3, Threads: 2, SendBufs: 2, RecvBufs: 2, QueueGroups: 2,
				Priority: engine.LevelSet, Balance: balance.Hyperplane,
			}
			sp := spec.MustNew("regress_varstep", []string{"N", "D"}, []string{"v0", "v1"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.MustConstrain("0 <= v1 <= N")
			sp.Bound("D", 1, 2)
			sp.MustAddDepSpec("take", "1, 0", "0, D", "3 - v0")
			sp.MustAddDepSpec("r2", "0, 1", "", "")
			sp.TileWidths = []int64{2, 2}
			sp.LBDims = []string{"v1"}
			in.Spec = sp
			return in
		},
	},
	{
		// All-boundary shape for the hybrid scheduler: a 1-D chain of
		// six tiles spread over six nodes, so every non-initial tile's
		// single producer lives on another rank and the static wavefront
		// set is empty on every node. Pins the hybrid scheduler's pure
		// fallback path (StaticTiles == 0, all tiles through dynamic
		// dependence counting) against the serial reference.
		name: "all-boundary-empty-static-set",
		build: func() *Instance {
			in := &Instance{
				Seed: 0xc0de0007, N: 11,
				Nodes: 6, Threads: 2, SendBufs: 1, RecvBufs: 1, QueueGroups: 1,
				Priority: engine.ColumnMajor, Sched: engine.SchedHybrid, Balance: balance.Prefix,
			}
			sp := spec.MustNew("regress_allboundary", []string{"N"}, []string{"v0"})
			sp.MustConstrain("0 <= v0 <= N")
			sp.AddDep("r1", -1)
			sp.TileWidths = []int64{2}
			sp.LBDims = []string{"v0"}
			in.Spec = sp
			return in
		},
	},
}

// TestRegressions replays every pinned case through the full oracle
// stack; each must validate and pass bit-identically, forever.
func TestRegressions(t *testing.T) {
	for _, tc := range regressionCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			in := tc.build()
			if err := in.Spec.Validate(); err != nil {
				t.Fatalf("pinned spec fails validation: %v", err)
			}
			if _, err := CheckAll(in); err != nil {
				t.Errorf("pinned case regressed: %v\nliteral:\n%s", err, GoLiteral(in))
			}
		})
	}
}

// TestGoLiteralRoundTrip: the literal printer must reproduce each
// pinned instance's spec exactly when its constraints are re-parsed —
// the property that makes reported counterexamples trustworthy.
func TestGoLiteralRoundTrip(t *testing.T) {
	for _, tc := range regressionCases {
		in := tc.build()
		c := clone(in)
		if got, want := GoLiteral(c), GoLiteral(in); got != want {
			t.Errorf("%s: clone literal differs:\n%s\nvs\n%s", tc.name, got, want)
		}
	}
}
