package dpfuzz

import (
	"fmt"

	"dpgen/internal/ehrhart"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// CheckAll runs every oracle layer on the instance, in pipeline order.
// ehrhartChecked reports whether the Ehrhart layer actually ran (it is
// cost-gated; see CheckEhrhart). The first failing layer's error is
// returned, tagged with the layer name and the seed.
func CheckAll(in *Instance) (ehrhartChecked bool, err error) {
	if err := CheckNest(in); err != nil {
		return false, fmt.Errorf("seed %d: nest oracle: %w", in.Seed, err)
	}
	ehrhartChecked, err = CheckEhrhart(in)
	if err != nil {
		return ehrhartChecked, fmt.Errorf("seed %d: ehrhart oracle: %w", in.Seed, err)
	}
	if err := CheckPackUnpack(in); err != nil {
		return ehrhartChecked, fmt.Errorf("seed %d: pack/unpack oracle: %w", in.Seed, err)
	}
	if err := CheckEngine(in); err != nil {
		return ehrhartChecked, fmt.Errorf("seed %d: engine oracle: %w", in.Seed, err)
	}
	return ehrhartChecked, nil
}

// pointKey is the map key of an integer point.
func pointKey(x []int64) string { return fmt.Sprint(x) }

// brutePoints enumerates the iteration space at the given parameter
// vector (params[0] is N) by scanning the bounding box [0,N]^d and
// testing every lattice point against the raw constraint system — no
// FM, no loopgen. The box is complete because the generator's base
// constraints 0 <= v_k <= N are part of every spec.
func brutePoints(sp *spec.Spec, params []int64) [][]int64 {
	sys := sp.System()
	d := len(sp.Vars)
	np := len(sp.Params)
	N := params[0]
	vals := make([]int64, np+d)
	copy(vals, params)
	var out [][]int64
	var rec func(k int)
	rec = func(k int) {
		if k == d {
			if sys.Contains(vals) {
				out = append(out, append([]int64(nil), vals[np:]...))
			}
			return
		}
		for v := int64(0); v <= N; v++ {
			vals[np+k] = v
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// CheckNest is oracle layer 1: the FM-synthesized loop nest must visit
// exactly the integer points of the constraint system (soundness and
// completeness), in strictly increasing lexicographic order of the
// spec's loop order, and Nest.Count must agree with the visit count.
func CheckNest(in *Instance) error {
	sp := in.Spec
	nest, err := in.iterNest()
	if err != nil {
		return fmt.Errorf("loopgen.Build: %w", err)
	}
	sys := sp.System()
	np := len(sp.Params)
	orderIdx := make([]int, len(sp.Order()))
	for i, name := range sp.Order() {
		orderIdx[i] = sp.VarIndex(name)
	}
	for N := int64(0); N <= countMaxN; N++ {
		params := in.pvals(N)
		brute := brutePoints(sp, params)
		seen := make(map[string]bool, len(brute))
		var prev []int64
		visited := int64(0)
		bad := ""
		nest.Enumerate(params, func(vals []int64) bool {
			x := vals[np:]
			visited++
			if !sys.Contains(vals) {
				bad = fmt.Sprintf("N=%d: nest visits %v outside the system", N, x)
				return false
			}
			if prev != nil && !lexLess(prev, x, orderIdx) {
				bad = fmt.Sprintf("N=%d: nest order violation: %v before %v (order %v)", N, prev, x, sp.Order())
				return false
			}
			prev = append(prev[:0], x...)
			k := pointKey(x)
			if seen[k] {
				bad = fmt.Sprintf("N=%d: nest visits %v twice", N, x)
				return false
			}
			seen[k] = true
			return true
		})
		if bad != "" {
			return fmt.Errorf("%s", bad)
		}
		if visited != int64(len(brute)) {
			return fmt.Errorf("N=%d: nest visits %d points, brute force finds %d", N, visited, len(brute))
		}
		for _, x := range brute {
			if !seen[pointKey(x)] {
				return fmt.Errorf("N=%d: nest misses in-space point %v", N, x)
			}
		}
		if c := nest.Count(params); c != visited {
			return fmt.Errorf("N=%d: Nest.Count %d != enumerated %d", N, c, visited)
		}
	}
	return nil
}

// lexLess reports a < b lexicographically in the given dimension order.
func lexLess(a, b []int64, orderIdx []int) bool {
	for _, k := range orderIdx {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// ehrhartCostCap bounds the estimated enumeration work ((maxN)^d lattice
// points, summed over interpolation samples and brute verification) the
// Ehrhart layer will pay per instance; costlier instances are skipped.
const ehrhartCostCap = 2_000_000

// CheckEhrhart is oracle layer 2: the interpolated Ehrhart
// quasi-polynomial of the iteration-space nest must reproduce
// brute-force lattice counts. checked is false when the layer was
// cost-gated away: interpolation needs samples up to MinN +
// period*(degree+1+verify), and specs with extra constraints are
// additionally evaluated from a MinN past the small-N chamber breaks
// their constant terms can introduce (a parametric polytope's count is
// only piecewise quasi-polynomial; the generator's base box alone is a
// pure dilation, so for box-only specs interpolation from 0 must
// succeed and any failure is a bug).
func CheckEhrhart(in *Instance) (checked bool, err error) {
	sp := in.Spec
	nest, ok, err := in.countNest()
	if err != nil {
		return false, fmt.Errorf("loopgen.Build: %w", err)
	}
	if !ok {
		return false, nil
	}
	d := len(sp.Vars)
	extras := len(sp.Constraints) > 2*d
	minN := int64(0)
	if extras {
		minN = 10
	}
	const verify, window = 3, 4
	period := int64(1)
	for _, div := range nest.Divisors() {
		period = lcm(period, div)
	}
	for attempt := 0; ; attempt++ {
		maxN := minN + period*int64(d+1+verify) + window
		if cost := ipow(maxN+2, d); cost > ehrhartCostCap {
			return false, nil
		}
		q, ierr := ehrhart.Interpolate(nest, ehrhart.Options{MinN: minN, Verify: verify})
		if ierr != nil {
			if !extras {
				return true, fmt.Errorf("box-only spec must interpolate from 0: %v", ierr)
			}
			if attempt == 0 {
				// One retry from a later chamber; persistent failure is
				// treated as a chamber artifact, not a bug.
				minN += 8
				continue
			}
			return false, nil
		}
		for N := minN; N <= minN+window; N++ {
			want := int64(len(brutePoints(sp, in.pvals(N))))
			if got := q.Eval(N); got != want {
				return true, fmt.Errorf("quasi-polynomial %v evaluates to %d at N=%d, brute force counts %d", q, got, N, want)
			}
		}
		return true, nil
	}
}

// lcm returns the least common multiple of a and b.
func lcm(a, b int64) int64 {
	x, y := a, b
	for y != 0 {
		x, y = y, x%y
	}
	return a / x * b
}

// ipow returns base**exp without overflow concerns for the small
// arguments the cost gate uses.
func ipow(base int64, exp int) int64 {
	out := int64(1)
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// CheckPackUnpack is oracle layer 3: the tiling analysis against the
// dependence definition itself. At the engine-layer parameter value it
// verifies that the tile decomposition partitions the brute-force
// iteration space exactly, that the validity functions agree with
// literal membership of x+r, that every tile-crossing dependence maps
// to a registered tile-dependence whose pack slab contains the
// producer cell, that unpack lands the producer's value exactly where
// the consumer's dependence location points, and that the initial-tile
// scan finds a nonempty frontier.
func CheckPackUnpack(in *Instance) error {
	tl, err := in.tiling()
	if err != nil {
		return fmt.Errorf("tiling.New: %w", err)
	}
	for _, N := range packUnpackNs(in) {
		if err := checkPackUnpackAt(in, tl, N); err != nil {
			return fmt.Errorf("N=%d: %w", N, err)
		}
	}
	return nil
}

// packUnpackNs returns the parameter values layer 3 runs at: the engine
// value plus a small one that produces degenerate partial tiles.
func packUnpackNs(in *Instance) []int64 {
	if in.N > 2 {
		return []int64{2, in.N}
	}
	return []int64{in.N}
}

func checkPackUnpackAt(in *Instance, tl *tiling.Tiling, N int64) error {
	sp := in.Spec
	sys := sp.System()
	d := len(sp.Vars)
	np := len(sp.Params)
	params := in.pvals(N)

	// The template dependence memory offsets are the strides applied to
	// the template's base and step vectors evaluated at the run's
	// parameters (the mapping functions of IV-H).
	locOff := tl.DepLocOffAt(params)
	strideOff := tl.DepStrideAt(params)
	bases := make([][]int64, len(sp.Deps))
	dirs := make([][]int64, len(sp.Deps))
	for j := range sp.Deps {
		bases[j] = sp.BaseAt(j, params)
		dirs[j] = sp.DirAt(j, params)
		wantLoc, wantStride := int64(0), int64(0)
		for k := 0; k < d; k++ {
			wantLoc += bases[j][k] * tl.Strides[k]
			wantStride += dirs[j][k] * tl.Strides[k]
		}
		if locOff[j] != wantLoc {
			return fmt.Errorf("DepLocOffAt[%d] = %d, strides give %d", j, locOff[j], wantLoc)
		}
		if strideOff[j] != wantStride {
			return fmt.Errorf("DepStrideAt[%d] = %d, strides give %d", j, strideOff[j], wantStride)
		}
		if !sp.Deps[j].Extended() && tl.DepLocOff[j] != wantLoc {
			return fmt.Errorf("DepLocOff[%d] = %d, strides give %d", j, tl.DepLocOff[j], wantLoc)
		}
	}

	brute := brutePoints(sp, params)
	bruteSet := make(map[string]bool, len(brute))
	for _, x := range brute {
		bruteSet[pointKey(x)] = true
	}

	var tiles [][]int64
	var tileBad error
	tl.ForEachTile(params, func(t []int64) bool {
		if !tl.InTileSpace(params, t) {
			tileBad = fmt.Errorf("ForEachTile yields %v but TileSys rejects it", t)
			return false
		}
		tiles = append(tiles, append([]int64(nil), t...))
		return true
	})
	if tileBad != nil {
		return tileBad
	}

	// edgeCells memoizes the producer-side pack slab of (tile, dep).
	edgeCells := map[string]map[string]bool{}
	edgeSet := func(t []int64, dep int) (map[string]bool, error) {
		k := fmt.Sprintf("%v|%d", t, dep)
		if s, ok := edgeCells[k]; ok {
			return s, nil
		}
		s := map[string]bool{}
		var bad error
		tl.ForEachEdgeCell(params, t, dep, func(i []int64) bool {
			y := tl.GlobalOf(t, i)
			if !sys.Contains(append(append([]int64(nil), params...), y...)) {
				bad = fmt.Errorf("pack slab of tile %v dep %d includes out-of-space cell %v", t, dep, y)
				return false
			}
			s[pointKey(i)] = true
			return true
		})
		if bad != nil {
			return nil, bad
		}
		if int64(len(s)) != tl.EdgeSize(params, t, dep) {
			return nil, fmt.Errorf("tile %v dep %d: EdgeSize %d != enumerated %d", t, dep, tl.EdgeSize(params, t, dep), len(s))
		}
		edgeCells[k] = s
		return s, nil
	}

	svals := make([]int64, np+d)
	copy(svals, params)
	y := make([]int64, d)
	cellTotal := int64(0)
	seen := make(map[string]bool, len(brute))
	for _, t := range tiles {
		count := int64(0)
		var bad error
		tl.ForEachCell(params, t, func(i []int64) bool {
			count++
			x := tl.GlobalOf(t, i)
			copy(svals[np:], x)
			if !sys.Contains(svals) {
				bad = fmt.Errorf("tile %v cell %v: global %v outside the space", t, i, x)
				return false
			}
			if tt, _ := tl.TileOf(x); pointKey(tt) != pointKey(t) {
				bad = fmt.Errorf("tile %v cell %v: global %v maps to tile %v", t, i, x, tt)
				return false
			}
			pk := pointKey(x)
			if seen[pk] {
				bad = fmt.Errorf("cell %v enumerated by two tiles", x)
				return false
			}
			seen[pk] = true

			for j := range sp.Deps {
				dep := &sp.Deps[j]
				// The brute usable footprint prefix, straight from the
				// dependence definition: walk t = 0, 1, ... up to the
				// declared count, stopping at the first cell outside.
				var n int64
				if !dep.IsRange() {
					for k := range y {
						y[k] = x[k] + bases[j][k]
					}
					inSpace := bruteSet[pointKey(y)]
					if inSpace {
						n = 1
					}
					if got := tl.DepValid(j, svals); got != inSpace {
						bad = fmt.Errorf("cell %v dep %s: DepValid %v but x+r in space is %v", x, dep.Name, got, inSpace)
						return false
					}
				} else {
					sem := tl.LenExprs[j].Eval(svals)
					for n < sem {
						for k := range y {
							y[k] = x[k] + bases[j][k] + n*dirs[j][k]
						}
						if !bruteSet[pointKey(y)] {
							break
						}
						n++
					}
					if got := tl.DepLenAt(j, svals); got != n {
						bad = fmt.Errorf("cell %v dep %s: DepLenAt %d but brute footprint prefix is %d", x, dep.Name, got, n)
						return false
					}
				}
				for ft := int64(0); ft < n; ft++ {
					for k := range y {
						y[k] = x[k] + bases[j][k] + ft*dirs[j][k]
					}
					ty, ly := tl.TileOf(y)
					if pointKey(ty) == pointKey(t) {
						continue
					}
					jd := -1
					for cand, td := range tl.TileDeps {
						match := true
						for k := range ty {
							if ty[k]-t[k] != td.Offset[k] {
								match = false
								break
							}
						}
						if match {
							jd = cand
							break
						}
					}
					if jd < 0 {
						bad = fmt.Errorf("cell %v dep %s step %d: producer tile %v has no registered tile-dependence offset from %v", x, dep.Name, ft, ty, t)
						return false
					}
					slab, serr := edgeSet(ty, jd)
					if serr != nil {
						bad = serr
						return false
					}
					if !slab[pointKey(ly)] {
						bad = fmt.Errorf("cell %v dep %s step %d: producer cell %v (local %v of tile %v) not in pack slab %d", x, dep.Name, ft, y, ly, ty, jd)
						return false
					}
					consLoc := tl.Loc(i) + locOff[j] + ft*strideOff[j]
					if got := tl.UnpackLoc(jd, ly); got != consLoc {
						bad = fmt.Errorf("cell %v dep %s step %d: UnpackLoc %d != consumer DepLoc %d", x, dep.Name, ft, got, consLoc)
						return false
					}
				}
			}
			return true
		})
		if bad != nil {
			return bad
		}
		if want := tl.CellCount(params, t); want != count {
			return fmt.Errorf("tile %v: CellCount %d != enumerated %d", t, want, count)
		}
		cellTotal += count
	}
	if cellTotal != int64(len(brute)) {
		return fmt.Errorf("tiles cover %d cells, brute force finds %d", cellTotal, len(brute))
	}

	initial, total := tl.InitialTiles(params)
	if total != int64(len(tiles)) {
		return fmt.Errorf("InitialTiles total %d != tile count %d", total, len(tiles))
	}
	if len(brute) > 0 && len(initial) == 0 {
		return fmt.Errorf("nonempty space with no initial tiles (cyclic tile graph?)")
	}
	for _, t := range initial {
		if n := tl.DepCount(params, t); n != 0 {
			return fmt.Errorf("initial tile %v has %d unmet dependencies", t, n)
		}
	}
	return nil
}
