package dpfuzz

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
)

// CheckKillRecover is the fault-tolerance leg of the differential
// oracle: a two-rank Recovery-mode TCP run in which rank 1 crashes
// (transport killed) after a fixed number of executed tiles and is
// then restarted with resume/rejoin against the checkpoints in a
// temporary directory. Both surviving ranks must produce values
// bit-identical to the independent serial reference. Instances small
// enough that rank 1 finishes before the crash point simply complete
// as a plain distributed run, which is validated the same way.
func CheckKillRecover(in *Instance) error {
	sp := in.Spec
	params := in.pvals(in.N)
	ref := serialSolve(sp, params)
	kernel := fuzzKernel(len(sp.Deps))
	tl, err := in.tiling()
	if err != nil {
		return fmt.Errorf("tiling.New: %w", err)
	}
	if len(tl.TileDeps) > 64 {
		// The engine's fault-tolerance dedup bitmask covers 64 tile
		// dependences; specs beyond that (deep multi-tile range
		// footprints) are rejected by engine.Run in Recovery mode, so the
		// crash differential does not apply.
		return nil
	}
	ckdir, err := os.MkdirTemp("", "dpfuzz-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckdir)

	const nranks = 2
	threads := in.Threads
	if threads < 1 {
		threads = 1
	}
	lns := make([]net.Listener, nranks)
	peers := make([]string, nranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			return err
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	opts := func(r int) tcp.Options {
		return tcp.Options{
			Recovery: true,
			SendBufs: in.SendBufs, RecvBufs: in.RecvBufs,
			DialTimeout: 15 * time.Second,
			Listener:    lns[r],
		}
	}
	ckpt := engine.CheckpointConfig{Dir: ckdir, EveryTiles: 2}

	var wg sync.WaitGroup
	var res0 *engine.Result
	var err0 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := tcp.Dial(0, peers, opts(0))
		if err != nil {
			err0 = err
			return
		}
		res0, err0 = engine.Run(tl, kernel, params, engine.Config{
			Transport: tr, Threads: threads, Checkpoint: ckpt,
		})
	}()

	tr1, err := tcp.Dial(1, peers, opts(1))
	if err != nil {
		return fmt.Errorf("rank 1 dial: %w", err)
	}
	res1, err1 := engine.Run(tl, kernel, params, engine.Config{
		Transport: tr1, Threads: threads, Checkpoint: ckpt,
		CrashAfterTiles: 3,
		CrashFn:         tr1.Kill,
	})
	if err1 != nil {
		// The injected crash fired: restart rank 1 with resume/rejoin.
		resumed := ckpt
		resumed.Resume = true
		tr1b, err := tcp.DialRejoin(1, peers, tcp.Options{
			SendBufs: in.SendBufs, RecvBufs: in.RecvBufs,
			DialTimeout: 15 * time.Second,
		})
		if err != nil {
			return fmt.Errorf("rank 1 rejoin: %w", err)
		}
		res1, err1 = engine.Run(tl, kernel, params, engine.Config{
			Transport: tr1b, Threads: threads, Checkpoint: resumed,
		})
		if err1 != nil {
			return fmt.Errorf("rank 1 resumed run: %w", err1)
		}
	}
	wg.Wait()
	if err0 != nil {
		return fmt.Errorf("rank 0: %w", err0)
	}
	for r, res := range []*engine.Result{res0, res1} {
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("kill-recover rank %d: value %.17g max %.17g, serial reference %.17g / %.17g",
				r, res.Value, res.Max, ref.goal, ref.max)
		}
	}
	return nil
}
