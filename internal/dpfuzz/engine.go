package dpfuzz

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/lin"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// cellValue is the deterministic kernel body shared by the independent
// serial reference and the engine kernel: a mix of the coordinates and
// the per-dependence footprint values. deps[j] holds the usable
// footprint prefix of dependence j (a single value for a satisfied
// point template, possibly several for a range template, empty when
// the dependence is unsatisfied). Footprint values fold with
// geometrically decaying weights so values stay bounded along any
// dependence chain, and the fold order is the footprint order, so any
// truncation or ordering bug shows up as a bit difference. Because
// both sides call this one function, any fusion or evaluation-order
// freedom the compiler has applies identically to both, and
// bit-identity of the results is meaningful.
func cellValue(x []int64, deps [][]float64) float64 {
	v := 1.0
	for k, xv := range x {
		v += float64((int64(k+1)*31+xv*17)%23) * 0.0625
	}
	for j, dv := range deps {
		if len(dv) == 0 {
			v -= float64(j+1) * 0.125
			continue
		}
		w := 0.5 / float64(j+1)
		for _, val := range dv {
			v += val * w
			w *= 0.5
		}
	}
	return v
}

// fuzzKernel adapts cellValue to the engine's kernel contract: the
// footprint of dependence j is the DepLen[j] cells starting at
// DepLoc[j], spaced DepStride[j] apart (point dependences have length
// 1/0 and stride 0, so this collapses to the classic DepValid read).
func fuzzKernel(ndeps int) engine.Kernel {
	return func(c *engine.Ctx) {
		var vbuf [64]float64
		var deps [8][]float64
		vals := vbuf[:0]
		for j := 0; j < ndeps; j++ {
			start := len(vals)
			for t := int64(0); t < c.DepLen[j]; t++ {
				vals = append(vals, c.V[c.DepLoc[j]+t*c.DepStride[j]])
			}
			deps[j] = vals[start:len(vals):len(vals)]
		}
		c.V[c.Loc] = cellValue(c.X, deps[:ndeps])
	}
}

// serialResult is the independent reference solution.
type serialResult struct {
	cells map[string]float64
	goal  float64
	max   float64
	n     int64
}

// serialSolve computes the instance with a plain recursive sweep over
// the bounding box: per-dimension directions are derived directly from
// the template signs at the run's parameter values (dependencies with
// positive components point to larger coordinates, which must
// therefore be computed first), with no tiling, no FM, and no runtime
// involved. Range templates are resolved exactly as the spec defines
// them: walk the footprint t = 0, 1, ... up to the declared count and
// stop at the first cell outside the space.
func serialSolve(sp *spec.Spec, params []int64) *serialResult {
	sys := sp.System()
	d := len(sp.Vars)
	np := len(sp.Params)
	N := params[0]
	desc := make([]bool, d)
	bases := make([][]int64, len(sp.Deps))
	dirs := make([][]int64, len(sp.Deps))
	lens := make([]lin.Expr, len(sp.Deps))
	for j := range sp.Deps {
		bases[j] = sp.BaseAt(j, params)
		dirs[j] = sp.DirAt(j, params)
		lens[j] = sp.LenExpr(j)
		for k := 0; k < d; k++ {
			if bases[j][k] > 0 || dirs[j][k] > 0 {
				desc[k] = true
			}
		}
	}
	res := &serialResult{cells: map[string]float64{}}
	vals := make([]int64, np+d)
	copy(vals, params)
	x := vals[np:]
	y := make([]int64, d)
	deps := make([][]float64, len(sp.Deps))
	first := true
	var rec func(k int)
	rec = func(k int) {
		if k == d {
			if !sys.Contains(vals) {
				return
			}
			for j := range sp.Deps {
				deps[j] = deps[j][:0]
				n := int64(1)
				if sp.Deps[j].IsRange() {
					n = lens[j].Eval(vals)
				}
				for t := int64(0); t < n; t++ {
					for kk := range y {
						y[kk] = x[kk] + bases[j][kk] + t*dirs[j][kk]
					}
					v, ok := res.cells[pointKey(y)]
					if !ok {
						break
					}
					deps[j] = append(deps[j], v)
				}
			}
			v := cellValue(x, deps)
			res.cells[pointKey(x)] = v
			res.n++
			if first || v > res.max {
				res.max = v
				first = false
			}
			return
		}
		if desc[k] {
			for v := N; v >= 0; v-- {
				x[k] = v
				rec(k + 1)
			}
		} else {
			for v := int64(0); v <= N; v++ {
				x[k] = v
				rec(k + 1)
			}
		}
	}
	rec(0)
	res.goal = res.cells[pointKey(make([]int64, d))]
	return res
}

// CheckEngine is oracle layer 4, the end-to-end differential: the
// independent serial sweep, a single-threaded engine run (compared
// cell by cell via OnCell), the threaded multi-node run with the
// instance's randomized knobs, the same run with the interior-tile
// fast path disabled, the same run under both tile schedulers (hybrid
// static/dynamic and pure-dynamic), and a two-rank run over real
// localhost TCP sockets must all produce bit-identical values.
func CheckEngine(in *Instance) error {
	sp := in.Spec
	params := in.pvals(in.N)
	ref := serialSolve(sp, params)
	kernel := fuzzKernel(len(sp.Deps))

	tl, err := in.tiling()
	if err != nil {
		return fmt.Errorf("tiling.New: %w", err)
	}

	// Single-threaded engine run, compared cell by cell.
	var mu sync.Mutex
	got := make(map[string]float64, len(ref.cells))
	base, err := engine.Run(tl, kernel, params, engine.Config{
		Nodes: 1, Threads: 1,
		OnCell: func(x []int64, v float64) {
			mu.Lock()
			got[pointKey(x)] = v
			mu.Unlock()
		},
	})
	if err != nil {
		return fmt.Errorf("engine.Run (serial): %w", err)
	}
	if int64(len(got)) != ref.n {
		return fmt.Errorf("engine computed %d cells, serial reference %d", len(got), ref.n)
	}
	for k, want := range ref.cells {
		if g, ok := got[k]; !ok || g != want {
			return fmt.Errorf("cell %s: engine %.17g, serial reference %.17g", k, got[k], want)
		}
	}
	if base.Value != ref.goal {
		return fmt.Errorf("engine goal %.17g != serial reference %.17g", base.Value, ref.goal)
	}
	if base.Max != ref.max {
		return fmt.Errorf("engine max %.17g != serial reference %.17g", base.Max, ref.max)
	}

	// Threaded differential: randomized knobs, then the same with the
	// fast path disabled, then the scheduler axis — the hybrid
	// static/dynamic scheduler against pure-dynamic dependence counting
	// must be bit-identical tile for tile.
	multi := engine.Config{
		Nodes: in.Nodes, Threads: in.Threads,
		SendBufs: in.SendBufs, RecvBufs: in.RecvBufs,
		QueueGroups: in.QueueGroups, Priority: in.Priority,
		Sched: in.Sched, Balance: in.Balance, PollingRecv: in.PollingRecv,
	}
	noFast := multi
	noFast.DisableFastPath = true
	hybridSched := multi
	hybridSched.Sched = engine.SchedHybrid
	dynSched := multi
	dynSched.Sched = engine.SchedDynamic
	for _, c := range []struct {
		name string
		cfg  engine.Config
	}{{"threaded", multi}, {"nofastpath", noFast},
		{"hybrid-sched", hybridSched}, {"dynamic-sched", dynSched}} {
		name, cfg := c.name, c.cfg
		res, err := engine.Run(tl, kernel, params, cfg)
		if err != nil {
			return fmt.Errorf("engine.Run (%s): %w", name, err)
		}
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("%s run: value %.17g max %.17g, serial reference %.17g / %.17g",
				name, res.Value, res.Max, ref.goal, ref.max)
		}
	}

	// Two-rank TCP differential over real localhost sockets. The ranks
	// share the analysis (its lazy scans are concurrency-safe), as the
	// in-process runs above already warmed it.
	results, err := runTCP(tl, kernel, params, 2, 2, in.SendBufs, in.RecvBufs, nil)
	if err != nil {
		return fmt.Errorf("tcp run: %w", err)
	}
	for r, res := range results {
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("tcp rank %d: value %.17g max %.17g, serial reference %.17g / %.17g",
				r, res.Value, res.Max, ref.goal, ref.max)
		}
	}
	if results[0].Messages != results[1].Messages || results[0].Elems != results[1].Elems {
		return fmt.Errorf("tcp ranks disagree on merged traffic: %d/%d vs %d/%d",
			results[0].Messages, results[0].Elems, results[1].Messages, results[1].Elems)
	}
	return nil
}

// runTCP executes the analyzed spec as nranks engine.Run calls, each
// rank a goroutine with its own TCP endpoint over loopback — the
// in-process analog of separate OS processes. chaos, if non-nil,
// builds a per-rank delivery-delay hook (tcp.Options.ChaosDelay) so
// the run also covers out-of-order message arrival.
func runTCP(tl *tiling.Tiling, kernel engine.Kernel, params []int64, nranks, threads, sendBufs, recvBufs int, chaos func(rank int) func(src, tag int) time.Duration) ([]*engine.Result, error) {
	lns := make([]net.Listener, nranks)
	peers := make([]string, nranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			return nil, err
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	results := make([]*engine.Result, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := tcp.Options{
				SendBufs: sendBufs, RecvBufs: recvBufs,
				DialTimeout: 15 * time.Second,
				Listener:    lns[r],
			}
			if chaos != nil {
				o.ChaosDelay = chaos(r)
			}
			tr, err := tcp.Dial(r, peers, o)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = engine.Run(tl, kernel, params, engine.Config{
				Transport: tr,
				Threads:   threads,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return results, nil
}
