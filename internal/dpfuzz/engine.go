package dpfuzz

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// cellValue is the deterministic kernel body shared by the independent
// serial reference and the engine kernel: a mix of the coordinates and
// the (valid) dependence values with contraction weights summing below
// one, so values stay bounded along any dependence chain. Because both
// sides call this one function, any fusion or evaluation-order freedom
// the compiler has applies identically to both, and bit-identity of
// the results is meaningful.
func cellValue(x []int64, depVals []float64, depValid []bool) float64 {
	v := 1.0
	for k, xv := range x {
		v += float64((int64(k+1)*31+xv*17)%23) * 0.0625
	}
	for j := range depVals {
		if depValid[j] {
			v += depVals[j] * (0.5 / float64(j+1))
		} else {
			v -= float64(j+1) * 0.125
		}
	}
	return v
}

// fuzzKernel adapts cellValue to the engine's kernel contract.
func fuzzKernel(ndeps int) engine.Kernel {
	return func(c *engine.Ctx) {
		var vals [8]float64
		for j := 0; j < ndeps; j++ {
			if c.DepValid[j] {
				vals[j] = c.V[c.DepLoc[j]]
			}
		}
		c.V[c.Loc] = cellValue(c.X, vals[:ndeps], c.DepValid)
	}
}

// serialResult is the independent reference solution.
type serialResult struct {
	cells map[string]float64
	goal  float64
	max   float64
	n     int64
}

// serialSolve computes the instance with a plain recursive sweep over
// the bounding box: per-dimension directions are derived directly from
// the template signs (dependencies with positive components point to
// larger coordinates, which must therefore be computed first), with no
// tiling, no FM, and no runtime involved.
func serialSolve(sp *spec.Spec, N int64) *serialResult {
	sys := sp.System()
	d := len(sp.Vars)
	desc := make([]bool, d)
	for _, dep := range sp.Deps {
		for k, r := range dep.Vec {
			if r > 0 {
				desc[k] = true
			}
		}
	}
	res := &serialResult{cells: map[string]float64{}}
	vals := make([]int64, 1+d)
	vals[0] = N
	x := vals[1:]
	y := make([]int64, d)
	depVals := make([]float64, len(sp.Deps))
	depValid := make([]bool, len(sp.Deps))
	first := true
	var rec func(k int)
	rec = func(k int) {
		if k == d {
			if !sys.Contains(vals) {
				return
			}
			for j, dep := range sp.Deps {
				for kk := range y {
					y[kk] = x[kk] + dep.Vec[kk]
				}
				if v, ok := res.cells[pointKey(y)]; ok {
					depVals[j], depValid[j] = v, true
				} else {
					depVals[j], depValid[j] = 0, false
				}
			}
			v := cellValue(x, depVals, depValid)
			res.cells[pointKey(x)] = v
			res.n++
			if first || v > res.max {
				res.max = v
				first = false
			}
			return
		}
		if desc[k] {
			for v := N; v >= 0; v-- {
				x[k] = v
				rec(k + 1)
			}
		} else {
			for v := int64(0); v <= N; v++ {
				x[k] = v
				rec(k + 1)
			}
		}
	}
	rec(0)
	res.goal = res.cells[pointKey(make([]int64, d))]
	return res
}

// CheckEngine is oracle layer 4, the end-to-end differential: the
// independent serial sweep, a single-threaded engine run (compared
// cell by cell via OnCell), the threaded multi-node run with the
// instance's randomized knobs, the same run with the interior-tile
// fast path disabled, the same run under both tile schedulers (hybrid
// static/dynamic and pure-dynamic), and a two-rank run over real
// localhost TCP sockets must all produce bit-identical values.
func CheckEngine(in *Instance) error {
	sp := in.Spec
	params := []int64{in.N}
	ref := serialSolve(sp, in.N)
	kernel := fuzzKernel(len(sp.Deps))

	tl, err := in.tiling()
	if err != nil {
		return fmt.Errorf("tiling.New: %w", err)
	}

	// Single-threaded engine run, compared cell by cell.
	var mu sync.Mutex
	got := make(map[string]float64, len(ref.cells))
	base, err := engine.Run(tl, kernel, params, engine.Config{
		Nodes: 1, Threads: 1,
		OnCell: func(x []int64, v float64) {
			mu.Lock()
			got[pointKey(x)] = v
			mu.Unlock()
		},
	})
	if err != nil {
		return fmt.Errorf("engine.Run (serial): %w", err)
	}
	if int64(len(got)) != ref.n {
		return fmt.Errorf("engine computed %d cells, serial reference %d", len(got), ref.n)
	}
	for k, want := range ref.cells {
		if g, ok := got[k]; !ok || g != want {
			return fmt.Errorf("cell %s: engine %.17g, serial reference %.17g", k, got[k], want)
		}
	}
	if base.Value != ref.goal {
		return fmt.Errorf("engine goal %.17g != serial reference %.17g", base.Value, ref.goal)
	}
	if base.Max != ref.max {
		return fmt.Errorf("engine max %.17g != serial reference %.17g", base.Max, ref.max)
	}

	// Threaded differential: randomized knobs, then the same with the
	// fast path disabled, then the scheduler axis — the hybrid
	// static/dynamic scheduler against pure-dynamic dependence counting
	// must be bit-identical tile for tile.
	multi := engine.Config{
		Nodes: in.Nodes, Threads: in.Threads,
		SendBufs: in.SendBufs, RecvBufs: in.RecvBufs,
		QueueGroups: in.QueueGroups, Priority: in.Priority,
		Sched: in.Sched, Balance: in.Balance, PollingRecv: in.PollingRecv,
	}
	noFast := multi
	noFast.DisableFastPath = true
	hybridSched := multi
	hybridSched.Sched = engine.SchedHybrid
	dynSched := multi
	dynSched.Sched = engine.SchedDynamic
	for _, c := range []struct {
		name string
		cfg  engine.Config
	}{{"threaded", multi}, {"nofastpath", noFast},
		{"hybrid-sched", hybridSched}, {"dynamic-sched", dynSched}} {
		name, cfg := c.name, c.cfg
		res, err := engine.Run(tl, kernel, params, cfg)
		if err != nil {
			return fmt.Errorf("engine.Run (%s): %w", name, err)
		}
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("%s run: value %.17g max %.17g, serial reference %.17g / %.17g",
				name, res.Value, res.Max, ref.goal, ref.max)
		}
	}

	// Two-rank TCP differential over real localhost sockets. The ranks
	// share the analysis (its lazy scans are concurrency-safe), as the
	// in-process runs above already warmed it.
	results, err := runTCP(tl, kernel, params, 2, 2, in.SendBufs, in.RecvBufs, nil)
	if err != nil {
		return fmt.Errorf("tcp run: %w", err)
	}
	for r, res := range results {
		if res.Value != ref.goal || res.Max != ref.max {
			return fmt.Errorf("tcp rank %d: value %.17g max %.17g, serial reference %.17g / %.17g",
				r, res.Value, res.Max, ref.goal, ref.max)
		}
	}
	if results[0].Messages != results[1].Messages || results[0].Elems != results[1].Elems {
		return fmt.Errorf("tcp ranks disagree on merged traffic: %d/%d vs %d/%d",
			results[0].Messages, results[0].Elems, results[1].Messages, results[1].Elems)
	}
	return nil
}

// runTCP executes the analyzed spec as nranks engine.Run calls, each
// rank a goroutine with its own TCP endpoint over loopback — the
// in-process analog of separate OS processes. chaos, if non-nil,
// builds a per-rank delivery-delay hook (tcp.Options.ChaosDelay) so
// the run also covers out-of-order message arrival.
func runTCP(tl *tiling.Tiling, kernel engine.Kernel, params []int64, nranks, threads, sendBufs, recvBufs int, chaos func(rank int) func(src, tag int) time.Duration) ([]*engine.Result, error) {
	lns := make([]net.Listener, nranks)
	peers := make([]string, nranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:r] {
				l.Close()
			}
			return nil, err
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	results := make([]*engine.Result, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := tcp.Options{
				SendBufs: sendBufs, RecvBufs: recvBufs,
				DialTimeout: 15 * time.Second,
				Listener:    lns[r],
			}
			if chaos != nil {
				o.ChaosDelay = chaos(r)
			}
			tr, err := tcp.Dial(r, peers, o)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = engine.Run(tl, kernel, params, engine.Config{
				Transport: tr,
				Threads:   threads,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return results, nil
}
