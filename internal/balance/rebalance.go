package balance

import "fmt"

// MoveStats reports how much ownership a Rebalance shifted: slabs whose
// owner changed, and the unexecuted tiles and work they carry (the
// migration volume the engine must ship).
type MoveStats struct {
	MovedSlabs int64
	MovedTiles int64
	MovedWork  int64
}

// Rebalance re-runs the Ehrhart-weighted assignment over only the
// *unexecuted* remainder of each slab for a new member set, keeping
// every slab with its previous owner when that owner is still a member
// and not overloaded — minimizing moved tiles while bounding imbalance.
// executed[i] is the global count of already-executed tiles of slab i
// (prev.Slabs() order); it must be identical on every rank, which is
// why the elastic protocol's EPOCH message carries a merged census.
//
// The result is fully deterministic in its inputs: every rank computes
// the same new assignment locally, so no ownership table ever crosses
// the wire. Work and Tiles of the returned assignment count only the
// remaining (unexecuted) load; Total is inherited from prev.
//
// The algorithm is three passes over the slabs in assignment order:
// fully-executed slabs keep their owner (nothing left to move); then
// slabs whose previous owner is a member keep it while that member's
// remaining load stays under cap = ceil(totalRemaining/len(members));
// the rest go to the least-loaded member, lowest rank on ties.
func Rebalance(prev *Assignment, members []int, executed []int64) (*Assignment, MoveStats, error) {
	var mv MoveStats
	if len(members) < 1 {
		return nil, mv, fmt.Errorf("balance: rebalance needs at least 1 member")
	}
	if len(executed) != len(prev.slabs) {
		return nil, mv, fmt.Errorf("balance: census has %d slabs, assignment has %d", len(executed), len(prev.slabs))
	}
	isMember := make(map[int]bool, len(members))
	for _, r := range members {
		if r < 0 || r >= prev.Nodes {
			return nil, mv, fmt.Errorf("balance: member rank %d out of range [0,%d)", r, prev.Nodes)
		}
		isMember[r] = true
	}

	// Remaining work per slab, estimated as Work scaled by the fraction
	// of unexecuted tiles (Ehrhart counts are per-slab, not per-tile).
	rem := make([]int64, len(prev.slabs))
	var totalRem int64
	for i, s := range prev.slabs {
		left := s.Tiles - executed[i]
		if left < 0 {
			return nil, mv, fmt.Errorf("balance: slab %d census %d exceeds its %d tiles", i, executed[i], s.Tiles)
		}
		if left > 0 {
			rem[i] = s.Work * left / s.Tiles
			if rem[i] == 0 {
				rem[i] = 1 // never let a live slab weigh nothing
			}
		}
		totalRem += rem[i]
	}

	a := &Assignment{
		Nodes:     prev.Nodes,
		Method:    prev.Method,
		Work:      make([]int64, prev.Nodes),
		Tiles:     make([]int64, prev.Nodes),
		Total:     prev.Total,
		slabs:     prev.slabs,
		slabOwner: make([]int, len(prev.slabs)),
		lbIdx:     prev.lbIdx,
		index:     prev.index,
	}
	capLoad := (totalRem + int64(len(members)) - 1) / int64(len(members))
	load := make(map[int]int64, len(members))
	var deferred []int
	for i := range prev.slabs {
		owner := prev.slabOwner[i]
		if rem[i] == 0 {
			// Fully executed: keep the owner label for determinism; it
			// carries no load and nothing will migrate.
			a.slabOwner[i] = owner
			continue
		}
		if isMember[owner] && load[owner]+rem[i] <= capLoad {
			a.slabOwner[i] = owner
			load[owner] += rem[i]
			continue
		}
		deferred = append(deferred, i)
	}
	for _, i := range deferred {
		best, bestLoad := -1, int64(0)
		for _, r := range members {
			if best == -1 || load[r] < bestLoad || (load[r] == bestLoad && r < best) {
				best, bestLoad = r, load[r]
			}
		}
		a.slabOwner[i] = best
		load[best] += rem[i]
		if best != prev.slabOwner[i] {
			mv.MovedSlabs++
			mv.MovedTiles += prev.slabs[i].Tiles - executed[i]
			mv.MovedWork += rem[i]
		}
	}
	for i, s := range prev.slabs {
		if left := s.Tiles - executed[i]; left > 0 {
			a.Work[a.slabOwner[i]] += rem[i]
			a.Tiles[a.slabOwner[i]] += left
		}
	}
	return a, mv, nil
}
