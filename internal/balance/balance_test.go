package balance

import (
	"testing"

	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

func bandit2Tiling(t testing.TB, w int64, lb []string) *tiling.Tiling {
	t.Helper()
	sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{w, w, w, w}
	sp.LBDims = lb
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestWorkConservation(t *testing.T) {
	// Per-node work must sum to the total work, which must equal the
	// iteration-space size, for both methods and several node counts.
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(20)
	want := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	for _, m := range []Method{Prefix, Hyperplane} {
		for _, nodes := range []int{1, 2, 3, 8} {
			a, err := Build(tl, []int64{N}, nodes, m)
			if err != nil {
				t.Fatalf("%v/%d: %v", m, nodes, err)
			}
			if a.Total != want {
				t.Errorf("%v/%d: Total = %d, want %d", m, nodes, a.Total, want)
			}
			var sum int64
			for _, w := range a.Work {
				sum += w
			}
			if sum != want {
				t.Errorf("%v/%d: work sums to %d, want %d", m, nodes, sum, want)
			}
		}
	}
}

func TestOwnershipCoversAllTiles(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{16}
	a, err := Build(tl, params, 3, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 3)
	tl.ForEachTile(params, func(tile []int64) bool {
		n := a.Owner(tile)
		if n < 0 || n >= 3 {
			t.Fatalf("tile %v owned by %d", tile, n)
		}
		counts[n]++
		return true
	})
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d owns no tiles", n)
		}
	}
	// Per-node work recomputed from actual tile ownership must match
	// the assignment's Work.
	work := make([]int64, 3)
	tl.ForEachTile(params, func(tile []int64) bool {
		tc := append([]int64(nil), tile...)
		work[a.Owner(tc)] += tl.CellCount(params, tc)
		return true
	})
	for n := range work {
		if work[n] != a.Work[n] {
			t.Errorf("node %d: recomputed work %d != assignment %d", n, work[n], a.Work[n])
		}
	}
}

func TestOwnershipDependsOnlyOnLBDims(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{16}
	a, err := Build(tl, params, 3, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]int{}
	tl.ForEachTile(params, func(tile []int64) bool {
		k := key([]int64{tile[0], tile[1]})
		n := a.Owner(tile)
		if prev, ok := owners[k]; ok && prev != n {
			t.Fatalf("tiles sharing lb coords %s owned by %d and %d", k, prev, n)
		}
		owners[k] = n
		return true
	})
}

// TestFig2TwoDimsBeatOne reproduces the claim behind Figure 2: balancing
// over two of the dimensions gives a much better split across 3 nodes
// than balancing over one.
func TestFig2TwoDimsBeatOne(t *testing.T) {
	params := []int64{40}
	one := bandit2Tiling(t, 4, []string{"s1"})
	two := bandit2Tiling(t, 4, []string{"s1", "f1"})
	a1, err := Build(one, params, 3, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Build(two, params, 3, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Imbalance() >= a1.Imbalance() {
		t.Errorf("2-dim imbalance %.3f not better than 1-dim %.3f", a2.Imbalance(), a1.Imbalance())
	}
	if a2.Imbalance() > 1.10 {
		t.Errorf("2-dim imbalance %.3f, want near-even (<= 1.10)", a2.Imbalance())
	}
}

func TestHyperplaneOrdersByLevel(t *testing.T) {
	// With the hyperplane method on 2 lb dims, the node of a cell must be
	// non-decreasing in the diagonal level sum.
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{20}
	a, err := Build(tl, params, 4, Hyperplane)
	if err != nil {
		t.Fatal(err)
	}
	maxNodePerLevel := map[int64]int{}
	minNodePerLevel := map[int64]int{}
	tl.ForEachTile(params, func(tile []int64) bool {
		lvl := tile[0] + tile[1]
		n := a.Owner(tile)
		if cur, ok := maxNodePerLevel[lvl]; !ok || n > cur {
			maxNodePerLevel[lvl] = n
		}
		if cur, ok := minNodePerLevel[lvl]; !ok || n < cur {
			minNodePerLevel[lvl] = n
		}
		return true
	})
	for l1, max1 := range maxNodePerLevel {
		for l2, min2 := range minNodePerLevel {
			if l1 < l2 && max1 > min2 {
				t.Fatalf("level %d has node %d above level %d node %d", l1, max1, l2, min2)
			}
		}
	}
}

func TestSingleNode(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	a, err := Build(tl, []int64{10}, 1, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Imbalance() != 1.0 {
		t.Errorf("single node imbalance = %v", a.Imbalance())
	}
	tl.ForEachTile([]int64{10}, func(tile []int64) bool {
		if a.Owner(tile) != 0 {
			t.Fatalf("tile %v not on node 0", tile)
		}
		return true
	})
}

func TestBuildErrors(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	if _, err := Build(tl, []int64{10}, 0, Prefix); err == nil {
		t.Error("0 nodes should fail")
	}
}

func TestMoreNodesThanSlabsStillCovers(t *testing.T) {
	// N small enough that there are fewer lb1 slabs than nodes; every tile
	// must still get an owner in range.
	tl := bandit2Tiling(t, 4, []string{"s1"})
	params := []int64{6} // two slabs of s1 tiles (t in {0,1})
	a, err := Build(tl, params, 8, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	tl.ForEachTile(params, func(tile []int64) bool {
		n := a.Owner(tile)
		if n < 0 || n >= 8 {
			t.Fatalf("owner %d out of range", n)
		}
		return true
	})
}

func TestTilesSumToTileCount(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{17}
	for _, nodes := range []int{1, 3, 5} {
		a, err := Build(tl, params, nodes, Prefix)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, n := range a.Tiles {
			sum += n
		}
		if want := tl.TileCount(params); sum != want {
			t.Errorf("nodes=%d: Tiles sum %d, want %d", nodes, sum, want)
		}
		// Per-node tile counts must match a direct ownership scan.
		direct := make([]int64, nodes)
		tl.ForEachTile(params, func(tile []int64) bool {
			direct[a.Owner(tile)]++
			return true
		})
		for i := range direct {
			if direct[i] != a.Tiles[i] {
				t.Errorf("nodes=%d node %d: Tiles %d, scan %d", nodes, i, a.Tiles[i], direct[i])
			}
		}
	}
}
