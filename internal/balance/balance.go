// Package balance implements the static load balancers of the paper:
//
//   - Prefix (Section IV-J): work — counted per load-balancing slab with
//     the Ehrhart machinery — is accumulated over the load-balancing
//     cells in priority-lexicographic order and cut into equal-work
//     contiguous ranges, one per node. Cuts fall on lb1 boundaries and
//     are refined within a boundary slab by lb2 and so on, exactly the
//     "highest priority dimension cuts, lesser dimensions refine"
//     behaviour of Figure 2.
//
//   - Hyperplane (Section VII-B, Figure 8): cells are ordered by the
//     diagonal level sum(t_lb) before the lexicographic refinement, so
//     the cuts approximate hyperplanes that slice wedge-shaped spaces
//     more evenly and shorten the pipeline critical path.
//
// All tiles sharing load-balancing coordinates go to the same node, as in
// the paper (ownership is a function of the load-balancing indices only).
package balance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dpgen/internal/tiling"
)

// Method selects the partitioning strategy.
type Method int

const (
	// Prefix is the paper's production balancer (Section IV-J).
	Prefix Method = iota
	// Hyperplane is the paper's future-work balancer (Section VII-B).
	Hyperplane
)

func (m Method) String() string {
	switch m {
	case Prefix:
		return "prefix"
	case Hyperplane:
		return "hyperplane"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Assignment maps tiles to nodes for fixed parameter values.
type Assignment struct {
	Nodes  int
	Method Method
	// Work is the per-node total work (iteration-space cells).
	Work []int64
	// Tiles is the per-node owned-tile count (used by the runtime for
	// termination without a full tile-space scan).
	Tiles []int64
	// Total is the problem's total work, the paper's first Ehrhart
	// polynomial evaluated at the parameters.
	Total int64

	lbIdx []int
	owner map[string]int
}

// Build computes the node assignment for the given tiling, parameter
// values and node count.
func Build(tl *tiling.Tiling, params []int64, nodes int, m Method) (*Assignment, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("balance: need at least 1 node, got %d", nodes)
	}
	nest, err := tl.LBNest()
	if err != nil {
		return nil, err
	}
	type cell struct {
		lb    []int64
		work  int64
		tiles int64
	}
	var cells []cell
	np := len(params)
	var total int64
	var walkErr error
	nest.Enumerate(params, func(vals []int64) bool {
		lb := append([]int64(nil), vals[np:]...)
		w, err := tl.SlabWork(params, lb)
		if err != nil {
			walkErr = err
			return false
		}
		if w == 0 {
			return true // empty slab: no tiles to own
		}
		nt, err := tl.SlabTiles(params, lb)
		if err != nil {
			walkErr = err
			return false
		}
		cells = append(cells, cell{lb: lb, work: w, tiles: nt})
		total += w
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if total == 0 {
		return nil, fmt.Errorf("balance: problem has no work for params %v", params)
	}

	if m == Hyperplane {
		// Order by diagonal level first, keeping lexicographic refinement
		// within a level. Enumeration order is already lexicographic, so a
		// stable sort by level suffices.
		sort.SliceStable(cells, func(i, j int) bool {
			return sum(cells[i].lb) < sum(cells[j].lb)
		})
	}

	a := &Assignment{
		Nodes:  nodes,
		Method: m,
		Work:   make([]int64, nodes),
		Tiles:  make([]int64, nodes),
		Total:  total,
		lbIdx:  tl.LBIndices(),
		owner:  make(map[string]int, len(cells)),
	}
	var cum int64
	for _, c := range cells {
		// Assign by the midpoint of the cell's work interval so cells
		// straddling a cut go to the node owning most of them.
		mid := cum + c.work/2
		node := int(mid * int64(nodes) / total)
		if node >= nodes {
			node = nodes - 1
		}
		a.owner[key(c.lb)] = node
		a.Work[node] += c.work
		a.Tiles[node] += c.tiles
		cum += c.work
	}
	return a, nil
}

// Owner returns the node owning the given tile (Vars-order tile index).
func (a *Assignment) Owner(t []int64) int {
	lb := make([]int64, len(a.lbIdx))
	for i, k := range a.lbIdx {
		lb[i] = t[k]
	}
	n, ok := a.owner[key(lb)]
	if !ok {
		// Tiles outside the load-balancing space should not exist; owning
		// them on node 0 keeps the runtime total-footed rather than
		// panicking deep inside a worker.
		return 0
	}
	return n
}

// Imbalance returns max(Work)/mean(Work); 1.0 is perfect.
func (a *Assignment) Imbalance() float64 {
	var max int64
	for _, w := range a.Work {
		if w > max {
			max = w
		}
	}
	mean := float64(a.Total) / float64(a.Nodes)
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

func key(lb []int64) string {
	var b strings.Builder
	for _, v := range lb {
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(',')
	}
	return b.String()
}

func sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}
