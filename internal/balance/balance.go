// Package balance implements the static load balancers of the paper:
//
//   - Prefix (Section IV-J): work — counted per load-balancing slab with
//     the Ehrhart machinery — is accumulated over the load-balancing
//     cells in priority-lexicographic order and cut into equal-work
//     contiguous ranges, one per node. Cuts fall on lb1 boundaries and
//     are refined within a boundary slab by lb2 and so on, exactly the
//     "highest priority dimension cuts, lesser dimensions refine"
//     behaviour of Figure 2.
//
//   - Hyperplane (Section VII-B, Figure 8): cells are ordered by the
//     diagonal level sum(t_lb) before the lexicographic refinement, so
//     the cuts approximate hyperplanes that slice wedge-shaped spaces
//     more evenly and shorten the pipeline critical path.
//
// All tiles sharing load-balancing coordinates go to the same node, as in
// the paper (ownership is a function of the load-balancing indices only).
package balance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dpgen/internal/tiling"
)

// Method selects the partitioning strategy.
type Method int

const (
	// Prefix is the paper's production balancer (Section IV-J).
	Prefix Method = iota
	// Hyperplane is the paper's future-work balancer (Section VII-B).
	Hyperplane
)

func (m Method) String() string {
	switch m {
	case Prefix:
		return "prefix"
	case Hyperplane:
		return "hyperplane"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Slab is one load-balancing cell: the set of tiles sharing
// load-balancing coordinates, all owned by one node. Work and Tiles are
// the slab's Ehrhart-counted iteration-space cells and tile count.
type Slab struct {
	LB    []int64
	Work  int64
	Tiles int64
}

// Assignment maps tiles to nodes for fixed parameter values.
type Assignment struct {
	Nodes  int
	Method Method
	// Work is the per-node total work (iteration-space cells). For an
	// assignment produced by Rebalance it counts only the work that was
	// unexecuted at the rebalance point.
	Work []int64
	// Tiles is the per-node owned-tile count (used by the runtime for
	// termination without a full tile-space scan). Remaining tiles only
	// for a Rebalance assignment.
	Tiles []int64
	// Total is the problem's total work, the paper's first Ehrhart
	// polynomial evaluated at the parameters.
	Total int64

	slabs     []Slab
	slabOwner []int
	lbIdx     []int
	index     map[string]int // lb key -> slab index
}

// Build computes the node assignment for the given tiling, parameter
// values and node count.
func Build(tl *tiling.Tiling, params []int64, nodes int, m Method) (*Assignment, error) {
	return BuildMembers(tl, params, nodes, nil, m)
}

// BuildMembers computes an assignment over a world of `world` ranks in
// which only `members` (nil means all of 0..world-1) own tiles: the
// equal-work cuts are made among the members and mapped onto their rank
// numbers, so an elastic run can start with a subset of the mesh active
// and admit the rest later. Work and Tiles are indexed by rank over the
// full world.
func BuildMembers(tl *tiling.Tiling, params []int64, world int, members []int, m Method) (*Assignment, error) {
	if world < 1 {
		return nil, fmt.Errorf("balance: need at least 1 node, got %d", world)
	}
	if members == nil {
		members = make([]int, world)
		for i := range members {
			members[i] = i
		}
	}
	if len(members) < 1 {
		return nil, fmt.Errorf("balance: need at least 1 member")
	}
	for _, r := range members {
		if r < 0 || r >= world {
			return nil, fmt.Errorf("balance: member rank %d out of range [0,%d)", r, world)
		}
	}
	nest, err := tl.LBNest()
	if err != nil {
		return nil, err
	}
	var slabs []Slab
	np := len(params)
	var total int64
	var walkErr error
	nest.Enumerate(params, func(vals []int64) bool {
		lb := append([]int64(nil), vals[np:]...)
		w, err := tl.SlabWork(params, lb)
		if err != nil {
			walkErr = err
			return false
		}
		if w == 0 {
			return true // empty slab: no tiles to own
		}
		nt, err := tl.SlabTiles(params, lb)
		if err != nil {
			walkErr = err
			return false
		}
		slabs = append(slabs, Slab{LB: lb, Work: w, Tiles: nt})
		total += w
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if total == 0 {
		return nil, fmt.Errorf("balance: problem has no work for params %v", params)
	}

	if m == Hyperplane {
		// Order by diagonal level first, keeping lexicographic refinement
		// within a level. Enumeration order is already lexicographic, so a
		// stable sort by level suffices.
		sort.SliceStable(slabs, func(i, j int) bool {
			return sum(slabs[i].LB) < sum(slabs[j].LB)
		})
	}

	a := &Assignment{
		Nodes:     world,
		Method:    m,
		Work:      make([]int64, world),
		Tiles:     make([]int64, world),
		Total:     total,
		slabs:     slabs,
		slabOwner: make([]int, len(slabs)),
		lbIdx:     tl.LBIndices(),
		index:     make(map[string]int, len(slabs)),
	}
	n := len(members)
	var cum int64
	for i, s := range slabs {
		// Assign by the midpoint of the slab's work interval so slabs
		// straddling a cut go to the member owning most of them.
		mid := cum + s.Work/2
		pos := int(mid * int64(n) / total)
		if pos >= n {
			pos = n - 1
		}
		node := members[pos]
		a.index[key(s.LB)] = i
		a.slabOwner[i] = node
		a.Work[node] += s.Work
		a.Tiles[node] += s.Tiles
		cum += s.Work
	}
	return a, nil
}

// Owner returns the node owning the given tile (Vars-order tile index).
func (a *Assignment) Owner(t []int64) int {
	i := a.SlabIndex(t)
	if i < 0 {
		// Tiles outside the load-balancing space should not exist; owning
		// them on node 0 keeps the runtime total-footed rather than
		// panicking deep inside a worker.
		return 0
	}
	return a.slabOwner[i]
}

// Slabs returns the load-balancing slabs in assignment order — the
// deterministic order Rebalance walks, identical on every rank.
func (a *Assignment) Slabs() []Slab { return a.slabs }

// SlabOwner returns the owner of slab i (an index into Slabs).
func (a *Assignment) SlabOwner(i int) int { return a.slabOwner[i] }

// SlabIndex returns the index into Slabs of the slab containing the
// given tile, or -1 if the tile is outside the load-balancing space.
func (a *Assignment) SlabIndex(t []int64) int {
	lb := make([]int64, len(a.lbIdx))
	for i, k := range a.lbIdx {
		lb[i] = t[k]
	}
	i, ok := a.index[key(lb)]
	if !ok {
		return -1
	}
	return i
}

// Imbalance returns max(Work)/mean(Work); 1.0 is perfect.
func (a *Assignment) Imbalance() float64 {
	var max int64
	for _, w := range a.Work {
		if w > max {
			max = w
		}
	}
	mean := float64(a.Total) / float64(a.Nodes)
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

func key(lb []int64) string {
	var b strings.Builder
	for _, v := range lb {
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(',')
	}
	return b.String()
}

func sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}
