package balance

import "testing"

func TestBuildMembersSubset(t *testing.T) {
	// A world of 4 with members {0, 2}: every slab must be owned by a
	// member, and the non-members must carry zero work.
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{16}
	a, err := BuildMembers(tl, params, 4, []int{0, 2}, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != 4 || len(a.Work) != 4 {
		t.Fatalf("Nodes = %d, len(Work) = %d, want 4", a.Nodes, len(a.Work))
	}
	for _, r := range []int{1, 3} {
		if a.Work[r] != 0 || a.Tiles[r] != 0 {
			t.Errorf("non-member rank %d owns work %d / tiles %d", r, a.Work[r], a.Tiles[r])
		}
	}
	for i := range a.Slabs() {
		if o := a.SlabOwner(i); o != 0 && o != 2 {
			t.Errorf("slab %d owned by non-member rank %d", i, o)
		}
	}
	// The two-member cuts must match a plain two-node build, rank-mapped.
	b, err := Build(tl, params, 2, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Work[0] != b.Work[0] || a.Work[2] != b.Work[1] {
		t.Errorf("member work (%d, %d) differs from 2-node build (%d, %d)",
			a.Work[0], a.Work[2], b.Work[0], b.Work[1])
	}
}

func TestRebalanceDeterministicAndConserving(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{16}
	prev, err := BuildMembers(tl, params, 4, []int{0, 1}, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	slabs := prev.Slabs()
	// Pretend the first third of each rank-0 slab count is executed.
	executed := make([]int64, len(slabs))
	for i, s := range slabs {
		if prev.SlabOwner(i) == 0 {
			executed[i] = s.Tiles / 3
		}
	}
	members := []int{0, 1, 2, 3}
	a1, mv1, err := Rebalance(prev, members, executed)
	if err != nil {
		t.Fatal(err)
	}
	a2, mv2, err := Rebalance(prev, members, executed)
	if err != nil {
		t.Fatal(err)
	}
	if mv1 != mv2 {
		t.Errorf("move stats differ across identical reruns: %+v vs %+v", mv1, mv2)
	}
	var remTiles, gotTiles int64
	for i, s := range slabs {
		if a1.SlabOwner(i) != a2.SlabOwner(i) {
			t.Fatalf("slab %d owner differs across identical reruns: %d vs %d",
				i, a1.SlabOwner(i), a2.SlabOwner(i))
		}
		remTiles += s.Tiles - executed[i]
	}
	for _, n := range a1.Tiles {
		gotTiles += n
	}
	if gotTiles != remTiles {
		t.Errorf("rebalanced tiles sum to %d, want the %d unexecuted tiles", gotTiles, remTiles)
	}
	if mv1.MovedTiles == 0 {
		t.Error("scaling 2 -> 4 members moved no tiles")
	}
	// Every slab with remaining tiles must land on a member.
	for i, s := range slabs {
		if s.Tiles-executed[i] > 0 {
			o := a1.SlabOwner(i)
			if o < 0 || o > 3 {
				t.Errorf("slab %d owner %d out of world", i, o)
			}
		}
	}
}

func TestRebalanceShrinkKeepsSurvivors(t *testing.T) {
	// Shrinking 3 -> 2 members: every slab previously owned by a
	// survivor whose load allows it should stay put; rank 2's slabs must
	// all move off it.
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	params := []int64{16}
	prev, err := BuildMembers(tl, params, 3, nil, Prefix)
	if err != nil {
		t.Fatal(err)
	}
	executed := make([]int64, len(prev.Slabs()))
	a, mv, err := Rebalance(prev, []int{0, 1}, executed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prev.Slabs() {
		if a.SlabOwner(i) == 2 {
			t.Errorf("slab %d still owned by departed rank 2", i)
		}
	}
	if mv.MovedTiles == 0 {
		t.Error("departure moved no tiles")
	}
}
