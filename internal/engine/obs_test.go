package engine

import (
	"bytes"
	"fmt"
	"testing"

	"dpgen/internal/obs"
)

// TestTraceEventInvariants checks, across all three priority policies
// and both receive modes, that the traced tile lifecycle matches the
// aggregate counters: one kernel event per executed (CellsComputed-
// bearing) tile, one pop and one ready per tile, sends equal receives,
// and the traced cell total equals CellsComputed.
func TestTraceEventInvariants(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(14)
	for _, prio := range []Priority{ColumnMajor, LevelSet, FIFO} {
		for _, polling := range []bool{false, true} {
			name := fmt.Sprintf("%v/polling=%v", prio, polling)
			tracer := obs.NewTracer()
			res, err := Run(tl, bandit2Kernel, []int64{N}, Config{
				Nodes: 2, Threads: 2, Priority: prio, PollingRecv: polling, Tracer: tracer,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			tr := tracer.Snapshot()
			if tr.Dropped() != 0 {
				t.Fatalf("%s: %d events dropped; invariants need a complete trace", name, tr.Dropped())
			}
			counts := map[obs.Kind]int64{}
			var tracedCells, sentElems int64
			for _, e := range tr.Events {
				counts[e.Kind]++
				if e.Kind == obs.KKernel {
					tracedCells += e.Val
				}
				if e.Kind == obs.KSend {
					sentElems += e.Val
				}
			}
			var tiles, cells, sent, recv int64
			for _, st := range res.Stats {
				tiles += st.TilesExecuted
				cells += st.CellsComputed
				sent += st.EdgesSentRemote
				recv += st.EdgesRecvRemote
			}
			if counts[obs.KKernel] != tiles {
				t.Errorf("%s: %d kernel events, %d tiles executed", name, counts[obs.KKernel], tiles)
			}
			if counts[obs.KPop] != tiles || counts[obs.KReady] != tiles {
				t.Errorf("%s: pop %d / ready %d events, want %d each",
					name, counts[obs.KPop], counts[obs.KReady], tiles)
			}
			if counts[obs.KUnpack] != tiles || counts[obs.KPack] != tiles {
				t.Errorf("%s: unpack %d / pack %d events, want %d each",
					name, counts[obs.KUnpack], counts[obs.KPack], tiles)
			}
			if tracedCells != cells {
				t.Errorf("%s: traced cells %d != CellsComputed %d", name, tracedCells, cells)
			}
			if counts[obs.KSend] != sent || counts[obs.KRecv] != recv {
				t.Errorf("%s: send %d / recv %d events, stats say %d / %d",
					name, counts[obs.KSend], counts[obs.KRecv], sent, recv)
			}
			if sentElems != res.Elems {
				t.Errorf("%s: traced sent elems %d != comm elems %d", name, sentElems, res.Elems)
			}
			if counts[obs.KPending] != tiles {
				t.Errorf("%s: %d pending samples, want one per tile (%d)", name, counts[obs.KPending], tiles)
			}
		}
	}
}

// TestCriticalPathWithinMakespan: the replayed compute+communication
// chain must never exceed the traced makespan, on every policy and
// receive mode.
func TestCriticalPathWithinMakespan(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	offsets := make([][]int64, len(tl.TileDeps))
	for j := range tl.TileDeps {
		offsets[j] = tl.TileDeps[j].Offset
	}
	N := int64(14)
	for _, prio := range []Priority{ColumnMajor, LevelSet, FIFO} {
		for _, polling := range []bool{false, true} {
			tracer := obs.NewTracer()
			if _, err := Run(tl, bandit2Kernel, []int64{N}, Config{
				Nodes: 3, Threads: 2, Priority: prio, PollingRecv: polling, Tracer: tracer,
			}); err != nil {
				t.Fatal(err)
			}
			tr := tracer.Snapshot()
			rep, err := obs.CriticalPath(tr, offsets)
			if err != nil {
				t.Fatal(err)
			}
			if rep.CriticalPath <= 0 {
				t.Errorf("%v/polling=%v: nonpositive critical path %v", prio, polling, rep.CriticalPath)
			}
			if rep.CriticalPath > rep.Makespan {
				t.Errorf("%v/polling=%v: critical path %v exceeds makespan %v",
					prio, polling, rep.CriticalPath, rep.Makespan)
			}
			if rep.Tiles != int(tl.TileCount([]int64{N})) {
				t.Errorf("%v/polling=%v: analyzer saw %d tiles, want %d",
					prio, polling, rep.Tiles, tl.TileCount([]int64{N}))
			}
			if rep.ChainTiles < 1 || rep.ChainTiles > rep.Tiles {
				t.Errorf("chain tiles %d out of range", rep.ChainTiles)
			}
		}
	}
}

// TestTraceSendStallConsistency: the traced stall spans must sum to
// (approximately, and never above) NodeStats.SendStallTime.
func TestTraceSendStallConsistency(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	tracer := obs.NewTracer()
	// 1-deep buffers on a chatty decomposition force real stalls.
	res, err := Run(tl, bandit2Kernel, []int64{16}, Config{
		Nodes: 4, Threads: 2, SendBufs: 1, RecvBufs: 1, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	var statStall int64
	for _, st := range res.Stats {
		statStall += int64(st.SendStallTime)
	}
	var traceStall int64
	for _, e := range tracer.Snapshot().Events {
		if e.Kind == obs.KStall {
			traceStall += e.Dur
		}
	}
	if traceStall > statStall {
		t.Errorf("traced stall %d ns exceeds stats stall %d ns", traceStall, statStall)
	}
	// Every stall above the emission threshold is traced, so the two
	// must agree exactly here.
	if traceStall != statStall {
		t.Errorf("traced stall %d ns != stats stall %d ns", traceStall, statStall)
	}
}

// TestChromeExportFromEngine: a real run's trace serializes to valid
// Chrome trace JSON and survives the shared decoder.
func TestChromeExportFromEngine(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	tracer := obs.NewTracer()
	if _, err := Run(tl, bandit2Kernel, []int64{12}, Config{Nodes: 2, Threads: 2, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	tr := tracer.Snapshot()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Errorf("decoded %d events, wrote %d", len(back.Events), len(tr.Events))
	}
	// One lane per (node, worker/receiver) plus the init lanes.
	if len(back.Lanes) != len(tr.Lanes) {
		t.Errorf("decoded %d lanes, wrote %d", len(back.Lanes), len(tr.Lanes))
	}
}
