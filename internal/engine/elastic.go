// Elastic cluster membership: ranks may join or leave a distributed
// run while it executes (Config.Elastic; see docs/ELASTICITY.md). The
// transport mesh is fixed at the world size W up front; membership is
// the subset of ranks that own tiles. Rank 0 coordinates view changes:
//
//	PREP(e)  rank 0 -> all W ranks. Each rank pauses its workers at a
//	         tile boundary, drains its unacknowledged sends to zero,
//	         and answers ACK(e, census) with its executed-per-slab
//	         counts. ACKs are sent at the transport's quiescence point
//	         (acknowledgements fire after delivery), so all W ACKs at
//	         rank 0 mean every dependence edge ever sent has been
//	         applied somewhere — nothing is in flight.
//	EPOCH(e, members, census)  rank 0 -> all W ranks, after merging
//	         the per-rank censuses. Every rank runs the same
//	         deterministic balance.Rebalance locally — no ownership
//	         table crosses the wire — extracts the live tiles it no
//	         longer owns, resumes its workers, and ships the extracted
//	         tiles (with their buffered edges) to the new owners as
//	         DATA frames with tag -1, riding the normal
//	         acknowledgement and backpressure machinery.
//	FIN      rank 0 -> all W ranks once the scale schedule and every
//	         expected voluntary leave have been honoured; termination
//	         is gated on it so a rank that currently owns zero tiles
//	         (a standby before its join, a member after its leave)
//	         keeps serving the mesh instead of exiting.
//
// JOIN and LEAVE are requests to rank 0: a joining rank announces
// itself and is admitted by the scale schedule; a leaving rank asks out
// after LeaveAfterTiles executed tiles and keeps executing until the
// view change strips its ownership. Departed ranks stay connected —
// they answer PREPs trivially and join the final result merge — so a
// "leave" is a transfer of work, not a socket teardown.
//
// Bit-identity is preserved because nothing about cell arithmetic
// changes: each tile still executes exactly once, from exactly the
// edges its producers packed, on whichever rank owns it at execution
// time. The migration blob moves buffered edges byte-for-byte, and the
// duplicate-edge filter (shared with fault tolerance) makes any stale
// or replayed edge a no-op.

package engine

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"dpgen/internal/balance"
	"dpgen/internal/mpi"
	"dpgen/internal/obs"
)

// ScaleEvent is one entry of rank 0's scale schedule: once rank 0 has
// executed AfterTiles tiles, Delta ranks are admitted (positive; from
// the announced joiners) or removed (negative; highest-ranked members
// first, never rank 0).
type ScaleEvent struct {
	AfterTiles int64
	Delta      int
}

// ElasticConfig enables elastic membership (Config.Elastic). It
// requires a distributed run over a transport that supports the
// membership frames (dpgen/internal/mpi/tcp) and composes with neither
// PollingRecv nor Checkpoint.
type ElasticConfig struct {
	Enabled bool
	// Members is the initial member set (rank numbers within the
	// world); nil means every rank. Must include rank 0, the
	// coordinator. Identical on every rank.
	Members []int
	// ScaleAt is rank 0's view-change schedule, processed in
	// AfterTiles order; only rank 0 reads it. If rank 0 finishes its
	// own tiles before an event's threshold, the remaining events fire
	// immediately (admitting however many joiners have announced).
	ScaleAt []ScaleEvent
	// JoinRequest makes this rank announce itself to rank 0 as a
	// joiner at startup. It runs as a standby (owning nothing) until a
	// positive ScaleAt event admits it.
	JoinRequest bool
	// LeaveAfterTiles, if positive, makes this rank request a
	// voluntary leave once it has executed that many tiles (or all of
	// its tiles, whichever comes first). The rank keeps executing
	// until the leave is granted, then serves as a standby.
	LeaveAfterTiles int64
	// ExpectLeaves is the number of voluntary leave requests rank 0
	// waits for before declaring the membership final (FIN); only
	// rank 0 reads it. Without it a leave racing the end of the run
	// could be granted or not depending on timing.
	ExpectLeaves int
}

// elasticTransport is the transport facet elastic membership needs,
// implemented by dpgen/internal/mpi/tcp. The in-memory communicator
// deliberately lacks it: elasticity is about processes, and the
// in-process simulation has nothing to join or leave.
type elasticTransport interface {
	SendElastic(dst int, kind byte, payload []byte) error
	ElasticCh() <-chan mpi.ElasticMsg
	SetEpoch(e uint32)
	PendingSends() int
}

// normalizeMembers validates and sorts an initial member list.
func normalizeMembers(members []int, world int) ([]int, error) {
	if members == nil {
		members = make([]int, world)
		for i := range members {
			members[i] = i
		}
		return members, nil
	}
	m := append([]int(nil), members...)
	sort.Ints(m)
	for i, r := range m {
		if r < 0 || r >= world {
			return nil, fmt.Errorf("engine: elastic member rank %d out of range [0,%d)", r, world)
		}
		if i > 0 && m[i-1] == r {
			return nil, fmt.Errorf("engine: duplicate elastic member rank %d", r)
		}
	}
	if len(m) == 0 || m[0] != 0 {
		return nil, fmt.Errorf("engine: elastic members must include rank 0 (the coordinator)")
	}
	return m, nil
}

// ownerOf resolves a tile's owning rank under the current epoch's
// assignment; outside elastic runs it is the static assignment.
func (e *engine) ownerOf(t []int64) int {
	if a := e.assignP.Load(); a != nil {
		return a.Owner(t)
	}
	return e.assign.Owner(t)
}

// ---- worker pause protocol ----
//
// A view change must observe the rank at a tile boundary: no tile in
// execution, so the executed census and the live-tile tables are a
// consistent cut. Workers claim an executing slot *before* popping a
// tile (so a popped tile is always covered by a slot) and release it
// after the tile retires or the pop comes up empty. The pauser raises
// paused, which parks workers at the gate, and waits for the in-flight
// slots to drain. Receivers never pause — acknowledgements must keep
// flowing or no rank could ever drain its sends.

// pauseGate parks the worker while a view change is in progress, then
// claims an executing slot.
func (n *node) pauseGate() {
	n.mu.Lock()
	for n.paused && !n.done {
		n.pauseCond.Wait()
	}
	n.executingN++
	n.mu.Unlock()
}

// execDone releases the worker's executing slot, waking the pauser
// when the last in-flight tile retires.
func (n *node) execDone() {
	n.mu.Lock()
	n.executingN--
	if n.executingN == 0 && n.paused {
		n.quietCond.Signal()
	}
	n.mu.Unlock()
}

// pauseWorkers stops tile execution at the next tile boundary and
// waits until no tile is in flight. Called from the elastic loop.
func (n *node) pauseWorkers() {
	n.mu.Lock()
	n.paused = true
	for n.executingN > 0 {
		n.quietCond.Wait()
	}
	n.mu.Unlock()
}

// resumeWorkers reopens the gate and wakes sleepers so they rescan the
// queues (the view change may have migrated ready tiles in).
func (n *node) resumeWorkers() {
	n.mu.Lock()
	n.paused = false
	n.pauseCond.Broadcast()
	n.cond.Broadcast()
	n.mu.Unlock()
}

// ---- wire payloads ----

// encodeAck snapshots this rank's executed-per-slab census (sparse:
// only nonzero slabs) under the pending-table lock, prefixed with the
// epoch being acknowledged.
func (n *node) encodeAck(epoch uint32) []byte {
	st0 := &n.stripes[0]
	st0.mu.Lock()
	nz := 0
	for _, c := range n.executedPerSlab {
		if c != 0 {
			nz++
		}
	}
	b := make([]byte, 0, 8+12*nz)
	b = binary.LittleEndian.AppendUint32(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(nz))
	for i, c := range n.executedPerSlab {
		if c != 0 {
			b = binary.LittleEndian.AppendUint32(b, uint32(i))
			b = binary.LittleEndian.AppendUint64(b, uint64(c))
		}
	}
	st0.mu.Unlock()
	return b
}

// mergeAck folds one rank's sparse census into the coordinator's
// global census. Returns the acknowledged epoch.
func mergeAck(pl []byte, census []int64) (uint32, error) {
	if len(pl) < 8 {
		return 0, fmt.Errorf("engine: truncated elastic ACK")
	}
	epoch := binary.LittleEndian.Uint32(pl)
	nz := int(binary.LittleEndian.Uint32(pl[4:]))
	pl = pl[8:]
	if len(pl) != 12*nz {
		return 0, fmt.Errorf("engine: elastic ACK length %d for %d entries", len(pl), nz)
	}
	for k := 0; k < nz; k++ {
		i := int(binary.LittleEndian.Uint32(pl[12*k:]))
		c := int64(binary.LittleEndian.Uint64(pl[12*k+4:]))
		if i < 0 || i >= len(census) {
			return 0, fmt.Errorf("engine: elastic ACK slab index %d of %d", i, len(census))
		}
		census[i] += c
	}
	return epoch, nil
}

// encodeEpochPayload builds the EPOCH broadcast: epoch, member list,
// dense merged census.
func encodeEpochPayload(epoch uint32, members []int, census []int64) []byte {
	b := make([]byte, 0, 12+4*len(members)+8*len(census))
	b = binary.LittleEndian.AppendUint32(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(members)))
	for _, r := range members {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(census)))
	for _, c := range census {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return b
}

func decodeEpochPayload(pl []byte) (epoch uint32, members []int, census []int64, err error) {
	bad := fmt.Errorf("engine: truncated elastic EPOCH payload")
	if len(pl) < 8 {
		return 0, nil, nil, bad
	}
	epoch = binary.LittleEndian.Uint32(pl)
	nm := int(binary.LittleEndian.Uint32(pl[4:]))
	pl = pl[8:]
	if nm < 0 || len(pl) < 4*nm+4 {
		return 0, nil, nil, bad
	}
	members = make([]int, nm)
	for i := range members {
		members[i] = int(binary.LittleEndian.Uint32(pl[4*i:]))
	}
	pl = pl[4*nm:]
	ns := int(binary.LittleEndian.Uint32(pl))
	pl = pl[4:]
	if ns < 0 || len(pl) != 8*ns {
		return 0, nil, nil, bad
	}
	census = make([]int64, ns)
	for i := range census {
		census[i] = int64(binary.LittleEndian.Uint64(pl[8*i:]))
	}
	return epoch, members, census, nil
}

// ---- migration blob ----
//
// The blob a rank ships when a view change moves live tiles off it:
// the tile coordinates plus every buffered edge, byte-identical to how
// the edges arrived. It rides a normal DATA frame (tag -1) with the
// blob bytes packed into the float64 payload bit-for-bit and meta[0]
// holding the byte length, so migration inherits the transport's
// acknowledgement, backpressure and retention machinery unchanged.

const migMagic = "DPMIG01\n"

// encodeMigration serializes the tiles bound for one destination.
// Format mirrors the checkpoint codec: magic | epoch | ntiles |
// tiles{coords, edges{dep, ndata, data}} | fnv1a checksum.
func (e *engine) encodeMigration(epoch uint32, tiles []*pendTile) []byte {
	b := make([]byte, 0, 64)
	b = append(b, migMagic...)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	u64(uint64(epoch))
	i64(int64(len(tiles)))
	for _, p := range tiles {
		for _, c := range p.tile {
			i64(c)
		}
		i64(int64(len(p.edges)))
		for _, ed := range p.edges {
			i64(int64(ed.dep))
			i64(int64(len(ed.data)))
			for _, v := range ed.data {
				u64(math.Float64bits(v))
			}
		}
	}
	h := fnv.New64a()
	h.Write(b)
	u64(h.Sum64())
	return b
}

// blobToFloats packs blob bytes into a pooled float64 payload
// bit-for-bit (the last word zero-padded) with meta[0] carrying the
// byte length.
func blobToFloats(blob []byte) (data []float64, meta []int64) {
	nw := (len(blob) + 7) / 8
	data = mpi.GetData(nw)
	for i := 0; i < nw; i++ {
		var w [8]byte
		copy(w[:], blob[8*i:])
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(w[:]))
	}
	meta = mpi.GetMeta(1)
	meta[0] = int64(len(blob))
	return data, meta
}

// floatsToBlob is the inverse of blobToFloats.
func floatsToBlob(data []float64, nbytes int64) []byte {
	blob := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(blob[8*i:], math.Float64bits(v))
	}
	if nbytes < 0 || nbytes > int64(len(blob)) {
		return nil
	}
	return blob[:nbytes]
}

// applyMigration absorbs one inbound migration blob on the receiver
// goroutine: every carried tile is re-materialized by re-delivering
// its buffered edges through the normal delivery path (the duplicate
// filter makes this idempotent), and a carried tile with no edges — an
// initial tile, which has no producers — is seeded directly. The
// transport slot is released only after this returns, so the sender's
// next quiescence point proves the blob was applied.
func (n *node) applyMigration(data []float64, meta []int64, lane *obs.Lane, ds *delivState) {
	e := n.eng
	blob := floatsToBlob(data, meta[0])
	if len(blob) < len(migMagic)+8 || string(blob[:len(migMagic)]) != migMagic {
		panic(fmt.Sprintf("engine: rank %d received a corrupt migration blob (%d bytes)", n.id, len(blob)))
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		panic(fmt.Sprintf("engine: migration blob into rank %d failed its checksum", n.id))
	}
	r := &ckptReader{b: body[len(migMagic):]}
	r.u64() // epoch, informational
	d := len(e.tl.Spec.Vars)
	nt, _ := r.count()
	var tiles, edges int64
	for i := 0; i < nt && r.err == nil; i++ {
		t := make([]int64, d)
		for k := range t {
			t[k] = r.i64()
		}
		ne, _ := r.count()
		if ne == 0 {
			// An initial tile (no producers): nothing will ever deliver
			// an edge for it, so seed it the way run() seeds initial
			// tiles, unless this rank somehow already has it.
			n.seedMigrated(t, lane)
			tiles++
			continue
		}
		for j := 0; j < ne && r.err == nil; j++ {
			dep := int(r.i64())
			nv, ok := r.count()
			if !ok {
				break
			}
			buf := mpi.GetData(nv)
			for v := 0; v < nv; v++ {
				buf[v] = r.f64()
			}
			n.deliver(t, dep, buf, false, lane, ds)
			edges++
		}
		tiles++
	}
	if r.err != nil {
		panic(fmt.Sprintf("engine: decode migration blob into rank %d: %v", n.id, r.err))
	}
	n.mu.Lock()
	n.st.TilesMigratedIn += tiles
	n.st.EdgesMigratedIn += edges
	n.mu.Unlock()
	if lane != nil {
		lane.Instant(obs.KMigrateIn, "", -1, tiles)
	}
}

// seedMigrated enqueues a migrated-in initial tile.
func (n *node) seedMigrated(t []int64, lane *obs.Lane) {
	e := n.eng
	ik := e.intKey(t)
	st0 := &n.stripes[0]
	st0.mu.Lock()
	if _, dup := n.executedSet[ik]; dup {
		st0.mu.Unlock()
		return
	}
	if _, dup := n.started[ik]; dup {
		st0.mu.Unlock()
		return
	}
	p := &pendTile{
		tile: t,
		key:  make([]int64, len(e.keyDims)),
		seq:  n.seqA.Add(1),
	}
	e.makeKey(p.tile, p.key)
	p.level = -sum64(p.key)
	p.group = n.shardOf(p.tile)
	n.started[ik] = p
	st0.mu.Unlock()
	n.enqueue(p, lane)
}

// ---- epoch application ----

// applyEpoch runs on the elastic loop when the EPOCH broadcast
// arrives. The rank's workers are paused at a tile boundary and the
// whole job is quiescent (that is what the coordinator's ACK
// collection proved), so the pending/started tables and the census are
// a consistent global cut. It recomputes ownership, extracts the live
// tiles this rank no longer owns, installs the new assignment and
// owned-tile total, resumes the workers, and only then ships the
// migration blobs — inline on the elastic loop, so this rank cannot
// acknowledge the *next* PREP before its blobs are on the wire (and
// therefore, by the quiescence rule, applied).
func (n *node) applyEpoch(epoch uint32, members []int, census []int64, lane *obs.Lane) {
	e := n.eng
	prev := e.assignP.Load()
	next, _, err := balance.Rebalance(prev, members, census)
	if err != nil {
		// Every input is protocol-carried state that all ranks compute
		// identically; a failure here is a protocol bug, not a user error.
		panic(fmt.Sprintf("engine: rank %d rebalance at epoch %d: %v", n.id, epoch, err))
	}

	// Extract the live tiles whose new owner is elsewhere. Partial
	// tiles live in the pending table; ready-but-unexecuted tiles in
	// the started map (and, by pointer, in some shard queue — workers
	// are paused with no tile popped, so the queues hold all of them).
	out := make(map[int][]*pendTile)
	var drop map[*pendTile]bool
	st0 := &n.stripes[0]
	st0.mu.Lock()
	for k, p := range st0.pending {
		if o := next.Owner(p.tile); o != n.id {
			delete(st0.pending, k)
			n.pendingTiles.Add(-1)
			out[o] = append(out[o], p)
		}
	}
	for k, p := range n.started {
		if o := next.Owner(p.tile); o != n.id {
			delete(n.started, k)
			out[o] = append(out[o], p)
			if drop == nil {
				drop = make(map[*pendTile]bool)
			}
			drop[p] = true
		}
	}
	st0.mu.Unlock()
	if drop != nil {
		n.dropQueued(drop)
	}

	// New owned-tile total: everything this rank already executed plus
	// the globally unexecuted remainder of every slab it now owns.
	var remaining int64
	slabs := next.Slabs()
	for i := range slabs {
		if next.SlabOwner(i) == n.id {
			remaining += slabs[i].Tiles - census[i]
		}
	}

	e.assignP.Store(next)
	n.curEpoch.Store(epoch)
	n.et.SetEpoch(epoch)
	n.mu.Lock()
	n.ownedTotal = n.executed + remaining
	n.st.Epochs++
	n.mu.Unlock()
	if lane != nil {
		lane.Instant(obs.KEpoch, "", -1, int64(epoch))
	}
	n.resumeWorkers()

	// Ship the extracted tiles. Sends may block on backpressure; that
	// is fine (workers are already running) and even load-bearing: the
	// elastic loop cannot reach the next PREP until the blobs are sent.
	var tilesOut, edgesOut int64
	for dst, tiles := range out {
		blob := e.encodeMigration(epoch, tiles)
		var freedEdges, freedElems int64
		for _, p := range tiles {
			tilesOut++
			for i := range p.edges {
				edgesOut++
				freedEdges++
				freedElems += int64(len(p.edges[i].data))
				mpi.PutData(p.edges[i].data)
				p.edges[i] = edge{}
			}
			p.edges = p.edges[:0]
		}
		n.pendingEdges.Add(-freedEdges)
		n.bufferedElems.Add(-freedElems)
		data, meta := blobToFloats(blob)
		n.rank.Send(dst, -1, data, meta)
		if lane != nil {
			lane.Instant(obs.KMigrateOut, "", int32(dst), int64(len(tiles)))
		}
	}
	if tilesOut > 0 || edgesOut > 0 {
		n.mu.Lock()
		n.st.TilesMigratedOut += tilesOut
		n.st.EdgesMigratedOut += edgesOut
		n.mu.Unlock()
	}
	// A leaver may now own exactly what it already executed.
	n.checkFinished()
}

// dropQueued removes migrated-out ready tiles from the shard queues by
// pointer identity, restoring the heap invariant afterwards.
func (n *node) dropQueued(drop map[*pendTile]bool) {
	var removed int64
	for si := range n.shards {
		s := &n.shards[si]
		s.mu.Lock()
		kept := s.heap.items[:0]
		before := len(s.heap.items)
		for _, p := range s.heap.items {
			if drop[p] {
				removed++
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) != before {
			for i := len(kept); i < before; i++ {
				s.heap.items[i] = nil
			}
			s.heap.items = kept
			heap.Init(&s.heap)
		}
		// The static deque is unused under elastic (the static phase
		// is disabled), but keep it honest anyway.
		keptDq := s.dq[s.dqHead:][:0]
		for _, p := range s.dq[s.dqHead:] {
			if drop[p] {
				removed++
			} else {
				keptDq = append(keptDq, p)
			}
		}
		s.dq = keptDq
		s.dqHead = 0
		s.mu.Unlock()
	}
	n.qlen.Add(-removed)
}

// ---- the per-rank elastic loop ----

// elasticLoop is the rank's membership goroutine: participant protocol
// on every rank, plus the coordinator state machine on rank 0. It runs
// from launch until after the final result merge (so departed and
// standby ranks keep answering PREPs), stopping via n.stopElastic.
func (e *engine) elasticLoop(n *node, lane *obs.Lane) {
	defer n.elasticWG.Done()
	cfg := e.cfg.Elastic
	et := n.et
	world := e.cfg.Nodes

	// Coordinator state (rank 0 only).
	var (
		members    []int
		schedule   []ScaleEvent
		joiners    []int
		leaveReqs  []int
		leavesSeen int
		epoch      uint32
		acksLeft   int // ranks yet to ACK; 0 = no view change in flight
		census     []int64
		nextM      []int // member set of the in-flight view change
		finSent    bool
	)
	if n.id == 0 {
		members = append([]int(nil), e.initialMembers...)
		schedule = append([]ScaleEvent(nil), cfg.ScaleAt...)
		sort.SliceStable(schedule, func(i, j int) bool {
			return schedule[i].AfterTiles < schedule[j].AfterTiles
		})
		census = make([]int64, len(e.assign.Slabs()))
	}

	aborted := func() bool {
		select {
		case <-n.stopElastic:
			return true
		default:
			return false
		}
	}
	contains := func(s []int, r int) bool {
		for _, v := range s {
			if v == r {
				return true
			}
		}
		return false
	}

	startView := func(m []int) {
		epoch++
		nextM = m
		acksLeft = world
		for i := range census {
			census[i] = 0
		}
		var pl [4]byte
		binary.LittleEndian.PutUint32(pl[:], epoch)
		for r := 0; r < world; r++ {
			et.SendElastic(r, mpi.ElasticEpochPrep, pl[:])
		}
	}

	// maybeAct runs the coordinator triggers: the scale schedule in
	// order, then queued voluntary leaves, then FIN. One view change at
	// a time. If rank 0 has finished its own tiles the remaining
	// schedule flushes immediately — its executed counter will never
	// advance past a threshold it has not already crossed.
	maybeAct := func() {
		if n.id != 0 || finSent || acksLeft > 0 {
			return
		}
		n.mu.Lock()
		ex := n.executed
		localDone := n.executed == n.ownedTotal
		n.mu.Unlock()
		for len(schedule) > 0 {
			ev := schedule[0]
			if ex < ev.AfterTiles && !localDone {
				return
			}
			if ev.Delta > 0 {
				take := ev.Delta
				if len(joiners) < take {
					if !localDone {
						return // wait for the announcements
					}
					take = len(joiners)
				}
				if take == 0 {
					schedule = schedule[1:]
					continue
				}
				m := append(append([]int(nil), members...), joiners[:take]...)
				sort.Ints(m)
				joiners = append([]int(nil), joiners[take:]...)
				schedule = schedule[1:]
				startView(m)
				return
			}
			// Shrink: drop the highest-ranked members; rank 0 (first,
			// since members stay sorted) is never removed.
			m := append([]int(nil), members...)
			for k := -ev.Delta; k > 0 && len(m) > 1; k-- {
				m = m[:len(m)-1]
			}
			schedule = schedule[1:]
			if len(m) == len(members) {
				continue
			}
			startView(m)
			return
		}
		if len(leaveReqs) > 0 {
			m := make([]int, 0, len(members))
			for _, r := range members {
				if !contains(leaveReqs, r) {
					m = append(m, r)
				}
			}
			leaveReqs = nil
			if len(m) < len(members) && len(m) >= 1 {
				startView(m)
				return
			}
		}
		if leavesSeen >= cfg.ExpectLeaves {
			for r := 0; r < world; r++ {
				et.SendElastic(r, mpi.ElasticFin, nil)
			}
			finSent = true
		}
	}

	handle := func(m mpi.ElasticMsg) bool {
		switch m.Kind {
		case mpi.ElasticJoin:
			if n.id != 0 {
				return true
			}
			if !contains(members, m.Src) && !contains(joiners, m.Src) && !contains(nextM, m.Src) {
				joiners = append(joiners, m.Src)
				sort.Ints(joiners)
			}
		case mpi.ElasticLeave:
			if n.id != 0 {
				return true
			}
			leavesSeen++
			if m.Src != 0 && !contains(leaveReqs, m.Src) {
				leaveReqs = append(leaveReqs, m.Src)
				sort.Ints(leaveReqs)
			}
		case mpi.ElasticEpochPrep:
			if len(m.Payload) < 4 {
				return true
			}
			prepEpoch := binary.LittleEndian.Uint32(m.Payload)
			n.pauseWorkers()
			for et.PendingSends() != 0 {
				if aborted() {
					return false
				}
				time.Sleep(20 * time.Microsecond)
			}
			et.SendElastic(0, mpi.ElasticEpochAck, n.encodeAck(prepEpoch))
		case mpi.ElasticEpochAck:
			if n.id != 0 || acksLeft == 0 {
				return true
			}
			got, err := mergeAck(m.Payload, census)
			if err != nil || got != epoch {
				panic(fmt.Sprintf("engine: coordinator: bad elastic ACK from rank %d for epoch %d (want %d): %v",
					m.Src, got, epoch, err))
			}
			acksLeft--
			if acksLeft == 0 {
				pl := encodeEpochPayload(epoch, nextM, census)
				for r := 0; r < world; r++ {
					et.SendElastic(r, mpi.ElasticEpoch, pl)
				}
				members = nextM
				nextM = nil
			}
		case mpi.ElasticEpoch:
			ep, mems, cen, err := decodeEpochPayload(m.Payload)
			if err != nil {
				panic(fmt.Sprintf("engine: rank %d: %v", n.id, err))
			}
			n.applyEpoch(ep, mems, cen, lane)
		case mpi.ElasticFin:
			n.mu.Lock()
			n.elasticFin = true
			n.mu.Unlock()
			n.checkFinished()
		}
		return true
	}

	if cfg.JoinRequest {
		et.SendElastic(0, mpi.ElasticJoin, nil)
	}

	// maybeLeave is the zero-work fallback for the voluntary-leave
	// trigger in execTile: a rank that owns no tiles at all (or finished
	// everything it owned before reaching its threshold) never executes
	// another tile, so the ticker fires the request once the rank is
	// locally idle. Without it a tile-less leaver would leave rank 0
	// waiting on ExpectLeaves forever.
	maybeLeave := func() {
		if cfg.LeaveAfterTiles <= 0 {
			return
		}
		n.mu.Lock()
		fire := !n.leaveSent && (n.executed >= cfg.LeaveAfterTiles || n.executed == n.ownedTotal)
		if fire {
			n.leaveSent = true
		}
		n.mu.Unlock()
		if fire {
			et.SendElastic(0, mpi.ElasticLeave, nil)
		}
	}

	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-n.stopElastic:
			return
		case m := <-et.ElasticCh():
			if !handle(m) {
				return
			}
			maybeAct()
		case <-tick.C:
			maybeLeave()
			maybeAct()
		}
	}
}
