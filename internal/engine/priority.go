package engine

import "container/heap"

// Priority selects the order in which ready tiles are executed
// (Section V-B, Figures 4 and 5). The choice does not affect results,
// only memory-buffering behaviour and parallelism.
type Priority int

const (
	// ColumnMajor is the paper's production policy (Figure 5): a
	// column-major order whose highest-priority dimensions are the
	// load-balancing dimensions, so tiles that cause communication
	// execute first and buffered-edge memory stays near n+1 edges.
	ColumnMajor Priority = iota
	// LevelSet executes by dependence level sets (Figure 4b): maximum
	// parallelism, but buffered-edge memory grows to about 2(n-1) edges
	// in 2-D and toward d times the column-major peak in d dimensions.
	LevelSet
	// FIFO executes tiles in the order they become ready; a baseline.
	FIFO
)

// String names the policy for logs and flag output.
func (p Priority) String() string {
	switch p {
	case ColumnMajor:
		return "column-major"
	case LevelSet:
		return "level-set"
	case FIFO:
		return "fifo"
	}
	return "unknown"
}

// pendTile is a tile known to a node: pending (waiting on dependence
// edges) and then queued for execution.
type pendTile struct {
	tile      []int64 // Vars order
	remaining int     // unsatisfied dependence edges
	edges     []edge  // received, still-packed edges
	key       []int64 // priority key (see makeKey)
	level     int64   // wavefront level (-sum of key), for LevelSet and sched.go
	seq       int64   // arrival order, for FIFO and tie-breaking
	index     int     // heap index
	group     int     // home shard (computed off-lock at insert)
	got       uint64  // per-dep arrival bitmask for fault-tolerance dedup
	// static marks a wavefront-scheduled tile (sched.go): its edges
	// slice is preallocated with one slot per tile dependence, filled
	// in place by producers instead of appended under a lock.
	static bool
}

type edge struct {
	dep  int
	data []float64
}

// tileHeap orders ready tiles by the configured priority.
type tileHeap struct {
	items []*pendTile
	prio  Priority
}

func (h *tileHeap) Len() int { return len(h.items) }

func (h *tileHeap) Less(a, b int) bool {
	x, y := h.items[a], h.items[b]
	switch h.prio {
	case FIFO:
		return x.seq < y.seq
	case LevelSet:
		if x.level != y.level {
			return x.level < y.level
		}
	}
	for k := range x.key {
		if x.key[k] != y.key[k] {
			return x.key[k] < y.key[k]
		}
	}
	return x.seq < y.seq
}

func (h *tileHeap) Swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.items[a].index = a
	h.items[b].index = b
}

func (h *tileHeap) Push(v any) {
	p := v.(*pendTile)
	p.index = len(h.items)
	h.items = append(h.items, p)
}

func (h *tileHeap) Pop() any {
	old := h.items
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return p
}

func (h *tileHeap) push(p *pendTile) { heap.Push(h, p) }
func (h *tileHeap) pop() *pendTile   { return heap.Pop(h).(*pendTile) }

// makeKey arranges and orients a tile's coordinates so that
// lexicographically smaller keys execute first: load-balancing
// dimensions first (priority order), then the remaining dimensions in
// loop order. Components are oriented so that tiles *further along* the
// execution direction sort first — those are the tiles whose edges feed
// neighbouring nodes ("tiles that cause communication execute more
// quickly", Section V-B), which keeps the cross-node pipeline fed.
func (e *engine) makeKey(tile []int64, dst []int64) []int64 {
	if dst == nil {
		dst = make([]int64, len(e.keyDims))
	}
	for i, k := range e.keyDims {
		if e.tl.ExecDirs[k] < 0 {
			// Execution descends: smaller t is more advanced.
			dst[i] = tile[k]
		} else {
			dst[i] = -tile[k]
		}
	}
	return dst
}
