package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dpgen/internal/balance"
	"dpgen/internal/mpi"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// ---- 2-arm bandit fixture (Fig 1 of the paper) ----

func bandit2Tiling(t testing.TB, w int64, lb []string) *tiling.Tiling {
	t.Helper()
	sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{w, w, w, w}
	sp.LBDims = lb
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// bandit2Kernel computes the expected number of future successes under
// optimal play with uniform priors.
func bandit2Kernel(c *Ctx) {
	if !c.DepValid[0] { // all four deps share the same validity constraint
		c.V[c.Loc] = 0
		return
	}
	s1, f1 := float64(c.X[0]), float64(c.X[1])
	s2, f2 := float64(c.X[2]), float64(c.X[3])
	p1 := (s1 + 1) / (s1 + f1 + 2)
	p2 := (s2 + 1) / (s2 + f2 + 2)
	v1 := p1*(1+c.V[c.DepLoc[0]]) + (1-p1)*c.V[c.DepLoc[1]]
	v2 := p2*(1+c.V[c.DepLoc[2]]) + (1-p2)*c.V[c.DepLoc[3]]
	if v1 > v2 {
		c.V[c.Loc] = v1
	} else {
		c.V[c.Loc] = v2
	}
}

// bandit2Serial solves the same recurrence with plain nested loops
// (the paper's Figure 1) and returns the full table keyed by coords.
func bandit2Serial(N int64) map[[4]int64]float64 {
	tab := map[[4]int64]float64{}
	get := func(s1, f1, s2, f2 int64) float64 { return tab[[4]int64{s1, f1, s2, f2}] }
	for s1 := N; s1 >= 0; s1-- {
		for f1 := N - s1; f1 >= 0; f1-- {
			for s2 := N - s1 - f1; s2 >= 0; s2-- {
				for f2 := N - s1 - f1 - s2; f2 >= 0; f2-- {
					var v float64
					if s1+f1+s2+f2 < N {
						p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
						p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
						v1 := p1*(1+get(s1+1, f1, s2, f2)) + (1-p1)*get(s1, f1+1, s2, f2)
						v2 := p2*(1+get(s1, f1, s2+1, f2)) + (1-p2)*get(s1, f1, s2, f2+1)
						v = max(v1, v2)
					}
					tab[[4]int64{s1, f1, s2, f2}] = v
				}
			}
		}
	}
	return tab
}

func TestBandit2SingleNode(t *testing.T) {
	tl := bandit2Tiling(t, 6, nil)
	N := int64(20)
	res, err := Run(tl, bandit2Kernel, []int64{N}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := bandit2Serial(N)[[4]int64{0, 0, 0, 0}]
	if res.Value != want {
		t.Fatalf("Value = %v, want %v (must be bit-identical)", res.Value, want)
	}
	cells := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	if res.Stats[0].CellsComputed != cells {
		t.Errorf("cells = %d, want %d", res.Stats[0].CellsComputed, cells)
	}
	if res.Messages != 0 {
		t.Errorf("single node sent %d messages", res.Messages)
	}
}

func TestBandit2EveryCellMatchesSerial(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(13)
	want := bandit2Serial(N)
	var mu sync.Mutex
	got := map[[4]int64]float64{}
	cfg := Config{
		Nodes: 3, Threads: 4,
		OnCell: func(x []int64, v float64) {
			mu.Lock()
			got[[4]int64{x[0], x[1], x[2], x[3]}] = v
			mu.Unlock()
		},
	}
	res, err := Run(tl, bandit2Kernel, []int64{N}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("computed %d cells, want %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("cell %v = %v, want %v", k, g, w)
		}
	}
	if res.Value != want[[4]int64{0, 0, 0, 0}] {
		t.Errorf("goal value mismatch")
	}
}

func TestBandit2HybridConfigsAgree(t *testing.T) {
	tl := bandit2Tiling(t, 5, []string{"s1", "f1"})
	N := int64(17)
	var base float64
	for i, cfg := range []Config{
		{Nodes: 1, Threads: 1},
		{Nodes: 1, Threads: 8},
		{Nodes: 4, Threads: 2},
		{Nodes: 8, Threads: 1, SendBufs: 1, RecvBufs: 1},
		{Nodes: 2, Threads: 3, Priority: LevelSet},
		{Nodes: 2, Threads: 3, Priority: FIFO},
		{Nodes: 3, Threads: 2, Balance: balance.Hyperplane},
	} {
		res, err := Run(tl, bandit2Kernel, []int64{N}, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if i == 0 {
			base = res.Value
		} else if res.Value != base {
			t.Errorf("cfg %d: Value = %v, want %v", i, res.Value, base)
		}
		var cells int64
		for _, st := range res.Stats {
			cells += st.CellsComputed
		}
		want := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
		if cells != want {
			t.Errorf("cfg %d: computed %d cells, want %d", i, cells, want)
		}
	}
	if base <= float64(N)/2 || base > float64(N) {
		t.Errorf("bandit value %v implausible for N=%d", base, N)
	}
}

func TestRemoteEdgesFlow(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	res, err := Run(tl, bandit2Kernel, []int64{16}, Config{Nodes: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recv int64
	for _, st := range res.Stats {
		sent += st.EdgesSentRemote
		recv += st.EdgesRecvRemote
	}
	if sent == 0 {
		t.Error("multi-node run sent no remote edges")
	}
	if sent != recv {
		t.Errorf("sent %d != recv %d", sent, recv)
	}
	if res.Messages != sent {
		t.Errorf("comm messages %d != sent edges %d", res.Messages, sent)
	}
}

// ---- 2-D problems: diagonal template and negative component ----

// diag2 computes a Delannoy-style path count from (N,N) down to (0,0):
// D(x,y) = D(x+1,y) + D(x,y+1) + D(x+1,y+1), D at the upper boundary
// seeds 1 at (N,N). Checked against an independent serial recursion.
func TestDiagonalTemplate(t *testing.T) {
	sp := spec.MustNew("delannoy", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("r", 1, 0)
	sp.AddDep("d", 0, 1)
	sp.AddDep("rd", 1, 1)
	sp.TileWidths = []int64{3, 3}
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(c *Ctx) {
		N := c.P[0]
		if c.X[0] == N && c.X[1] == N {
			c.V[c.Loc] = 1
			return
		}
		var v float64
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += c.V[c.DepLoc[1]]
		}
		if c.DepValid[2] {
			v += c.V[c.DepLoc[2]]
		}
		c.V[c.Loc] = v
	}
	N := int64(7)
	res, err := Run(tl, kernel, []int64{N}, Config{Nodes: 3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Serial Delannoy-style reference.
	tab := make([][]float64, N+1)
	for i := range tab {
		tab[i] = make([]float64, N+1)
	}
	for x := N; x >= 0; x-- {
		for y := N; y >= 0; y-- {
			if x == N && y == N {
				tab[x][y] = 1
				continue
			}
			var v float64
			if x+1 <= N {
				v += tab[x+1][y]
			}
			if y+1 <= N {
				v += tab[x][y+1]
			}
			if x+1 <= N && y+1 <= N {
				v += tab[x+1][y+1]
			}
			tab[x][y] = v
		}
	}
	if res.Value != tab[0][0] {
		t.Fatalf("Value = %v, want %v", res.Value, tab[0][0])
	}
	if res.Value != 48639 { // Delannoy number D(7,7)
		t.Errorf("D(7,7) = %v, want 48639", res.Value)
	}
}

func TestNegativeTemplateComponent(t *testing.T) {
	// f(x,y) = f(x-2,y+1) + f(x,y+1) + 1 with zero outside; goal (N, 0).
	sp := spec.MustNew("neg", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("a", -2, 1)
	sp.AddDep("b", 0, 1)
	sp.TileWidths = []int64{4, 4}
	sp.Goal = []int64{6, 0}
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(c *Ctx) {
		v := 1.0
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += c.V[c.DepLoc[1]]
		}
		c.V[c.Loc] = v
	}
	N := int64(6)
	res, err := Run(tl, kernel, []int64{N}, Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: y descending, x ascending.
	tab := make(map[[2]int64]float64)
	for y := N; y >= 0; y-- {
		for x := int64(0); x <= N; x++ {
			v := 1.0
			if x-2 >= 0 && y+1 <= N {
				v += tab[[2]int64{x - 2, y + 1}]
			}
			if y+1 <= N {
				v += tab[[2]int64{x, y + 1}]
			}
			tab[[2]int64{x, y}] = v
		}
	}
	if want := tab[[2]int64{6, 0}]; res.Value != want {
		t.Fatalf("Value = %v, want %v", res.Value, want)
	}
}

// ---- Priority policy memory behaviour (Figures 4 and 5) ----

// pipe2 builds an n x n tile grid (2-D square space) with unit deps.
func pipe2(t testing.TB, tilesPerDim int64) *tiling.Tiling {
	t.Helper()
	w := int64(2)
	sp := spec.MustNew("pipe2", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("r", 1, 0)
	sp.AddDep("d", 0, 1)
	sp.TileWidths = []int64{w, w}
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func sumKernel(c *Ctx) {
	var v float64 = 1
	if c.DepValid[0] {
		v += c.V[c.DepLoc[0]]
	}
	if c.DepValid[1] {
		v += c.V[c.DepLoc[1]]
	}
	c.V[c.Loc] = v
}

func TestPriorityMemoryFig4(t *testing.T) {
	// Single node, single thread: column-major buffers ~n+1 edges at
	// peak, level-set ~2(n-1) (Figure 4). n = 8 tiles per dimension.
	n := int64(8)
	tl := pipe2(t, n)
	N := 2*n - 1 // w=2 -> n tiles per dim
	peak := map[Priority]int64{}
	for _, prio := range []Priority{ColumnMajor, LevelSet} {
		// SchedDynamic: the figure measures what the *priority policy*
		// buffers; hybrid static release frees whole levels at once and
		// erases the difference between the policies.
		res, err := Run(tl, sumKernel, []int64{N}, Config{Priority: prio, Sched: SchedDynamic})
		if err != nil {
			t.Fatal(err)
		}
		peak[prio] = res.Stats[0].PeakPendingEdges
	}
	if peak[LevelSet] <= peak[ColumnMajor] {
		t.Errorf("level-set peak %d not above column-major %d", peak[LevelSet], peak[ColumnMajor])
	}
	// Column-major should be near n+1; allow slack for corner effects.
	if peak[ColumnMajor] > n+3 {
		t.Errorf("column-major peak %d, want about %d", peak[ColumnMajor], n+1)
	}
	if peak[LevelSet] < 2*(n-2) {
		t.Errorf("level-set peak %d, want about %d", peak[LevelSet], 2*(n-1))
	}
}

// ---- error paths ----

func TestRunErrors(t *testing.T) {
	tl := bandit2Tiling(t, 6, nil)
	if _, err := Run(tl, nil, []int64{10}, Config{}); err == nil {
		t.Error("nil kernel should fail")
	}
	if _, err := Run(tl, bandit2Kernel, []int64{10, 20}, Config{}); err == nil {
		t.Error("wrong param arity should fail")
	}
	if _, err := Run(tl, bandit2Kernel, []int64{-1}, Config{}); err == nil {
		t.Error("goal outside space should fail")
	}
}

func TestMoreNodesThanTiles(t *testing.T) {
	tl := bandit2Tiling(t, 6, nil)
	// N=5 with w=6: a single tile; 4 nodes, 3 of which own nothing.
	res, err := Run(tl, bandit2Kernel, []int64{5}, Config{Nodes: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := bandit2Serial(5)[[4]int64{0, 0, 0, 0}]
	if res.Value != want {
		t.Errorf("Value = %v, want %v", res.Value, want)
	}
}

func TestStatsSanity(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(15)
	res, err := Run(tl, bandit2Kernel, []int64{N}, Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var tiles int64
	for _, st := range res.Stats {
		tiles += st.TilesExecuted
	}
	if want := tl.TileCount([]int64{N}); tiles != want {
		t.Errorf("tiles executed %d, want %d", tiles, want)
	}
	if res.TotalTime < res.InitTime {
		t.Error("TotalTime < InitTime")
	}
	if len(res.Work) != 2 {
		t.Errorf("Work = %v", res.Work)
	}
}

func TestDeterministicValuesAcrossRuns(t *testing.T) {
	tl := bandit2Tiling(t, 5, []string{"s1"})
	N := int64(12)
	collect := func(nodes, threads int) map[string]float64 {
		var mu sync.Mutex
		m := map[string]float64{}
		_, err := Run(tl, bandit2Kernel, []int64{N}, Config{
			Nodes: nodes, Threads: threads,
			OnCell: func(x []int64, v float64) {
				mu.Lock()
				m[fmt.Sprint(x)] = v
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := collect(1, 1)
	b := collect(3, 4)
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("cell %s: %v vs %v", k, v, b[k])
		}
	}
}

// TestNonDefaultLoopOrder verifies that reordering the loop nest changes
// neither values nor coverage (the paper's order input only affects
// memory layout and iteration order).
func TestNonDefaultLoopOrder(t *testing.T) {
	mk := func(order []string) *tiling.Tiling {
		sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
		sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
		for _, v := range sp.Vars {
			sp.MustConstrain(v + " >= 0")
		}
		sp.AddDep("r1", 1, 0, 0, 0)
		sp.AddDep("r2", 0, 1, 0, 0)
		sp.AddDep("r3", 0, 0, 1, 0)
		sp.AddDep("r4", 0, 0, 0, 1)
		sp.TileWidths = []int64{4, 4, 4, 4}
		sp.LoopOrder = order
		tl, err := tiling.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	N := int64(11)
	var want float64
	for i, order := range [][]string{
		{"s1", "f1", "s2", "f2"},
		{"f2", "s2", "f1", "s1"},
		{"s2", "f2", "s1", "f1"},
	} {
		res, err := Run(mk(order), bandit2Kernel, []int64{N}, Config{Nodes: 2, Threads: 2})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if i == 0 {
			want = res.Value
		} else if res.Value != want {
			t.Errorf("order %v: Value %v != %v", order, res.Value, want)
		}
	}
}

// TestRectangularTiles verifies non-square tile widths.
func TestRectangularTiles(t *testing.T) {
	sp := spec.MustNew("rect", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("r", 1, 0)
	sp.AddDep("d", 0, 1)
	sp.TileWidths = []int64{3, 7}
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tl, sumKernel, []int64{12}, Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// sumKernel computes f(x,y) = 1 + f(x+1,y) + f(x,y+1); f(0,0) counts
	// weighted paths; compare against direct recursion.
	memo := map[[2]int64]float64{}
	var f func(x, y int64) float64
	f = func(x, y int64) float64 {
		if x > 12 || y > 12 {
			return 0
		}
		k := [2]int64{x, y}
		if v, ok := memo[k]; ok {
			return v
		}
		v := 1 + f(x+1, y) + f(x, y+1)
		memo[k] = v
		return v
	}
	if want := f(0, 0); res.Value != want {
		t.Fatalf("Value = %v, want %v", res.Value, want)
	}
}

// TestEmptyParamSpace: a parameter choice that empties the space must
// error rather than hang.
func TestEmptyParamSpace(t *testing.T) {
	sp := spec.MustNew("gated", []string{"N"}, []string{"x"})
	sp.MustConstrain("3 <= x <= N")
	sp.AddDep("r", 1)
	sp.TileWidths = []int64{4}
	sp.Goal = []int64{3}
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	k := func(c *Ctx) {
		v := 1.0
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		c.V[c.Loc] = v
	}
	if _, err := Run(tl, k, []int64{1}, Config{}); err == nil {
		t.Error("empty space should error")
	}
	// And a valid param works.
	if _, err := Run(tl, k, []int64{5}, Config{}); err != nil {
		t.Errorf("valid params failed: %v", err)
	}
}

// TestQueueGroups: the Section VII-C per-group ready queues must not
// change any value, and stealing keeps all workers fed.
func TestQueueGroups(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(15)
	base, err := Run(tl, bandit2Kernel, []int64{N}, Config{Nodes: 2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, groups := range []int{2, 4, 9 /* clamped to Threads */} {
		res, err := Run(tl, bandit2Kernel, []int64{N}, Config{
			Nodes: 2, Threads: 4, QueueGroups: groups,
		})
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if res.Value != base.Value {
			t.Errorf("groups=%d: Value %v != %v", groups, res.Value, base.Value)
		}
		var cells int64
		for _, st := range res.Stats {
			cells += st.CellsComputed
		}
		want := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
		if cells != want {
			t.Errorf("groups=%d: %d cells, want %d", groups, cells, want)
		}
	}
}

// TestQueueGroupsSingleThreadSteals: one worker with several groups must
// drain them all via stealing.
func TestQueueGroupsSingleThreadSteals(t *testing.T) {
	tl := bandit2Tiling(t, 4, nil)
	res, err := Run(tl, bandit2Kernel, []int64{12}, Config{Threads: 1, QueueGroups: 3})
	if err != nil {
		t.Fatal(err)
	}
	// QueueGroups is clamped to Threads=1, so no steals are possible.
	if res.Stats[0].Steals != 0 {
		t.Errorf("clamped run recorded %d steals", res.Stats[0].Steals)
	}
	// Explicitly multi-group, multi-thread: steals are allowed but the
	// result is unchanged (checked above); here just exercise the field.
	res2, err := Run(tl, bandit2Kernel, []int64{12}, Config{Threads: 3, QueueGroups: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value != res.Value {
		t.Errorf("multi-group value differs")
	}
}

// TestPollingRecvMode runs the paper's polling progress model, including
// a deadlock-prone configuration (1 send and 1 receive buffer, single
// thread per node) that only completes because blocked sends poll.
func TestPollingRecvMode(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(14)
	base, err := Run(tl, bandit2Kernel, []int64{N}, Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Nodes: 2, Threads: 2, PollingRecv: true},
		{Nodes: 4, Threads: 1, PollingRecv: true, SendBufs: 1, RecvBufs: 1},
		{Nodes: 3, Threads: 2, PollingRecv: true, QueueGroups: 2},
	} {
		res, err := Run(tl, bandit2Kernel, []int64{N}, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Value != base.Value {
			t.Errorf("%+v: Value %v != %v", cfg, res.Value, base.Value)
		}
		var sent, recv int64
		for _, st := range res.Stats {
			sent += st.EdgesSentRemote
			recv += st.EdgesRecvRemote
		}
		if sent != recv {
			t.Errorf("%+v: sent %d != recv %d", cfg, sent, recv)
		}
	}
}

// TestKernelPanicAnnotated: a panicking kernel must crash with the tile
// identified.
func TestKernelPanicAnnotated(t *testing.T) {
	tl := bandit2Tiling(t, 6, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "kernel panic in tile") {
			t.Fatalf("panic not annotated: %v", msg)
		}
	}()
	// Threads=1 so the panic unwinds through this goroutine's Run call...
	// it does not: workers are separate goroutines, so the panic would
	// crash the process. Instead invoke execTile's path via a tiny run
	// in the same goroutine using the exported API is impossible;
	// exercise the annotation through a direct worker call.
	e := &engine{tl: tl, params: []int64{5}, kernel: func(c *Ctx) { panic("boom") },
		cfg: Config{}.withDefaults()}
	e.buildKeyDims()
	n := newNode2ForTest(e)
	p := &pendTile{tile: []int64{0, 0, 0, 0}}
	n.execTile(p, newWorkerState(e), false)
}

// newNode2ForTest builds a minimal node wired to a 1-rank comm.
func newNode2ForTest(e *engine) *node {
	c, err := mpi.NewComm(1, 1, 1)
	if err != nil {
		panic(err)
	}
	e.comm = c
	return newNode(e, 0, c.Rank(0))
}
