// Package engine is the hybrid runtime of the generated programs
// (Section V of the paper), with goroutine worker pools standing in for
// OpenMP threads and dpgen/internal/mpi standing in for MPI ranks.
//
// Each simulated node owns a set of tiles (static load balancing,
// Section IV-J) and schedules them with the hybrid static/dynamic
// scheduler of sched.go: boundary and remote-fed tiles go through a
// striped pending table with per-tile dependence counting, while
// interior tiles with all-local producers are precomputed into a
// wavefront order released level by level through one atomic counter
// per level. Ready tiles land in per-worker shards (steal.go); worker
// goroutines loop popping locally (priority heap first, then the
// static deque LIFO), stealing from other shards when empty, then
// unpack the tile's edges into a per-worker buffer with a ghost-cell
// shell, run the user kernel over the tile's cells in dependence
// order, pack the outgoing edges, and deliver them locally or send
// them to the owning rank. A receiver goroutine per node plays the
// role of the paper's "poll for incoming edges" step.
//
// The hot path is split by the interior-tile classification of
// dpgen/internal/tiling: tiles whose whole dependence shell lies inside
// the iteration space run a precompiled dense loop nest with no per-cell
// validity checks, and pack/unpack collapse to strided copies; only
// boundary tiles pay for the exact nest. Edge buffers cycle through the
// mpi package's pools and the pending table is keyed by a collision-free
// integer packing of the tile coordinates, so the steady-state loop
// allocates nothing.
//
// Only tiles in execution have full buffers; tiles awaiting execution
// hold just their edges, giving the O(n^{d-1}) memory behaviour of
// Section V-B. Cell values are bit-identical for every node count,
// thread count and priority policy, because each cell is computed exactly
// once from fully determined inputs.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpgen/internal/balance"
	"dpgen/internal/mpi"
	"dpgen/internal/obs"
	"dpgen/internal/tiling"
)

// Config controls a run. Zero values select the defaults noted.
type Config struct {
	Nodes    int // simulated MPI ranks (default 1); ignored when Transport is set
	Threads  int // workers per node, the OpenMP analog (default 1)
	SendBufs int // send buffers per rank (default 4)
	RecvBufs int // receive buffers per rank (default 16)
	// Transport, if set, switches Run to distributed single-rank mode:
	// this process executes only rank Transport.ID() of a
	// Transport.Size()-rank job, and inter-node edges travel over the
	// given transport (e.g. dpgen/internal/mpi/tcp) instead of an
	// internally created in-memory communicator. Nodes is taken from
	// Transport.Size(); SendBufs/RecvBufs are configured on the
	// transport itself at construction. Every rank must run the same
	// problem with the same configuration — tiling, balance and
	// ownership are recomputed identically on each process. Run takes
	// ownership of the transport and closes it. See docs/TRANSPORT.md.
	Transport mpi.Transport
	// PollingRecv replaces each node's receiver goroutine with the
	// paper's polling progress model (Section V-A step 6): workers probe
	// the MPI inbox between tiles and while blocked in sends. The
	// default (false) uses a dedicated receiver goroutine per node.
	PollingRecv bool
	// QueueGroups is accepted for compatibility but inert: the
	// scheduler now always shards the ready queue per worker with
	// stealing (see steal.go), which subsumes the Section VII-C
	// grouped-queue proposal this knob used to select.
	QueueGroups int
	Priority    Priority
	// Sched selects the tile scheduler: SchedHybrid (default) uses the
	// static wavefront phase for interior all-local tiles, SchedDynamic
	// counts every tile's dependences dynamically. Bit-identical either
	// way; see sched.go.
	Sched   Sched
	Balance balance.Method
	// DisableFastPath forces every tile through the exact
	// boundary-tile machinery (per-cell validity checks, nest-driven
	// pack/unpack), bypassing the interior-tile classification. Results
	// are bit-identical either way; the flag exists for verification
	// and overhead measurement.
	DisableFastPath bool
	// OnCell, if set, is invoked for every computed cell with the global
	// coordinates and the computed value. Called concurrently from
	// workers; the coordinate slice must not be retained.
	OnCell func(x []int64, v float64)
	// Tracer, if set, records the tile lifecycle (ready, pop, unpack,
	// kernel, pack, edge traffic, stalls, idle) on per-worker timelines;
	// see dpgen/internal/obs. Nil costs one pointer check per event
	// site. A tracer must not be reused across runs.
	Tracer *obs.Tracer
	// Checkpoint enables the fault-tolerance layer: periodic per-rank
	// checkpoints of the completed-tile frontier and buffered edges,
	// plus the duplicate-edge filtering that makes a restarted peer's
	// replayed traffic safe. Every rank of a recovery-enabled job (tcp
	// Options.Recovery) must set it. See docs/FAULT_TOLERANCE.md.
	Checkpoint CheckpointConfig
	// CrashAfterTiles, if positive, invokes CrashFn once after this
	// rank has executed that many tiles — the deterministic
	// fault-injection hook behind the recovery tests and dprun's
	// -crash-after-tiles flag. Checkpoint writes stop once the crash
	// fires, so the surviving checkpoint reflects a pre-crash frontier.
	CrashAfterTiles int64
	// CrashFn is the crash action for CrashAfterTiles: an os.Exit
	// wrapper in real processes, a transport Kill in in-process tests.
	// Required when CrashAfterTiles is positive.
	CrashFn func()
	// Elastic enables elastic cluster membership: ranks joining and
	// leaving mid-run with live re-partitioning and migration of the
	// in-flight tile state. Requires a distributed run over a
	// transport with membership support (dpgen/internal/mpi/tcp) and
	// composes with neither PollingRecv nor Checkpoint. See
	// docs/ELASTICITY.md.
	Elastic ElasticConfig
}

// CheckpointConfig configures the engine's fault-tolerance checkpoints
// (Config.Checkpoint). The checkpoint holds the rank's executed-tile
// set, its buffered dependence edges (the O(n^{d-1}) live state), and
// the goal/max accumulators; it is written only when the transport
// reports no unacknowledged sends, which guarantees every recorded
// tile's outgoing edges were received by their consumers. Correctness
// never depends on checkpoint recency — a missing or stale checkpoint
// only means more tiles are recomputed on resume.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; empty disables the
	// fault-tolerance layer. Each rank writes Dir/rank-<id>.ckpt
	// atomically (temp file + rename).
	Dir string
	// EveryTiles is the checkpoint cadence in executed tiles
	// (default 64 when Dir is set).
	EveryTiles int64
	// Resume restores the rank's state from Dir/rank-<id>.ckpt before
	// the run starts: recorded tiles are not re-executed, recorded
	// edges are replayed into the pending table, and everything else is
	// recomputed — remote edges lost with the crashed process arrive
	// again from the peers' retained send histories (tcp.DialRejoin).
	// A missing checkpoint file resumes from scratch.
	Resume bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.SendBufs == 0 {
		c.SendBufs = 4
	}
	if c.RecvBufs == 0 {
		c.RecvBufs = 16
	}
	if c.QueueGroups < 1 {
		c.QueueGroups = 1
	}
	if c.QueueGroups > c.Threads {
		c.QueueGroups = c.Threads
	}
	if c.Checkpoint.Dir != "" && c.Checkpoint.EveryTiles <= 0 {
		c.Checkpoint.EveryTiles = 64
	}
	return c
}

// NodeStats are per-node runtime counters.
type NodeStats struct {
	TilesExecuted int64
	CellsComputed int64
	// EdgesSentRemote / EdgesRecvRemote count MPI edge messages;
	// EdgesLocal counts same-node deliveries.
	EdgesSentRemote int64
	EdgesRecvRemote int64
	EdgesLocal      int64
	// PeakPendingEdges is the maximum number of packed edges buffered at
	// once (the Figure 4 quantity); PeakBufferedElems the same in
	// float64 elements.
	PeakPendingEdges  int64
	PeakBufferedElems int64
	// PeakPendingTiles is the maximum size of the pending table plus
	// ready queue.
	PeakPendingTiles int64
	// IdleTime is total worker time spent waiting for ready tiles.
	IdleTime time.Duration
	// SendStallTime is total worker time blocked in remote sends on
	// exhausted send (or destination receive) buffers — the counter
	// that explains the Section VI-C buffer-count sweep.
	SendStallTime time.Duration
	// Steals counts tiles a worker took from another worker's shard;
	// LocalPops counts tiles popped from the worker's own shard. Their
	// sum is TilesExecuted.
	Steals    int64
	LocalPops int64
	// QueueDepthPeak is the maximum number of ready tiles queued across
	// the node's shards at once.
	QueueDepthPeak int64
	// StaticTiles counts tiles scheduled by the static wavefront phase
	// (zero with SchedDynamic, DisableFastPath, fault tolerance, or an
	// all-boundary tile space).
	StaticTiles int64
	// EdgesDroppedDup counts duplicate edges dropped by the
	// fault-tolerance deduplication layer — replayed traffic after a
	// peer restart, or a resumed rank's own recomputed sends.
	EdgesDroppedDup int64
	// Checkpoints and CheckpointBytes count fault-tolerance checkpoint
	// writes and their total encoded size.
	Checkpoints     int64
	CheckpointBytes int64
	// HeartbeatMisses and PeerRestarts are the transport's recovery
	// counters (tcp.Transport.RecoveryStats), sampled after the run's
	// result merge; only the local rank's entry is populated.
	HeartbeatMisses int64
	PeerRestarts    int64
	// Epochs counts membership epochs this rank applied (elastic
	// runs; see Config.Elastic). TilesMigratedOut/In and
	// EdgesMigratedOut/In count the live tiles and their buffered
	// edges shipped off or absorbed at view changes; EdgesForwarded
	// counts stale-epoch edges re-sent to a tile's current owner.
	Epochs           int64
	TilesMigratedOut int64
	TilesMigratedIn  int64
	EdgesMigratedOut int64
	EdgesMigratedIn  int64
	EdgesForwarded   int64
	// WireBytesSent and WireBytesRecv are the transport's raw
	// bytes-on-wire counters (tcp.Transport.Bytes), frame headers
	// included, sampled after the run's result merge. Zero for
	// in-process transports; only the local rank's entry is populated.
	WireBytesSent int64
	WireBytesRecv int64
}

// Result is the outcome of a run.
type Result struct {
	// Value is the state value at the spec's goal location.
	Value float64
	// Max is the maximum state value over the whole iteration space —
	// the answer for problems like local sequence alignment whose
	// optimum is not anchored at a fixed location. NaN when no cells
	// were computed.
	Max float64
	// Stats has one entry per node.
	Stats []NodeStats
	// Messages and Elems are communicator totals.
	Messages, Elems int64
	// BalanceTime is the load-balancing cost (Section IV-J; the paper
	// evaluates precomputed Ehrhart polynomials here, we count directly).
	// InitTime is the serial initial-tile generation scan of Section
	// IV-K. TotalTime covers the whole run.
	BalanceTime, InitTime, TotalTime time.Duration
	// Assignment records per-node work for balance diagnostics.
	Work []int64
}

type engine struct {
	tl     *tiling.Tiling
	kernel Kernel
	params []int64
	cfg    Config
	assign *balance.Assignment
	comm   *mpi.Comm

	// Per-run dependence geometry: the template base offsets and range
	// steps evaluated at this run's parameter values (variable-distance
	// templates make them parameter-dependent), plus the interior-tile
	// evaluation plan for range lengths.
	depLocOff []int64
	depStride []int64
	rangeLens []rangeLen

	keyDims   []int // priority key dimension order (var indexes)
	goalTile  []int64
	goalLocal []int64

	// Mixed-radix packing of tile coordinates into the collision-free
	// uint64 pending-table key (see buildIntKeys).
	keyLo  []int64
	keyMul []uint64

	goalMu  sync.Mutex
	goalVal float64
	goalSet bool
	maxVal  float64
	maxSet  bool

	// Elastic membership (Config.Elastic): assignP is the current
	// epoch's assignment, swapped atomically at view changes while
	// every worker is paused (nil outside elastic runs — ownerOf falls
	// back to the static assign). initialMembers seeds rank 0's
	// coordinator state.
	assignP        atomic.Pointer[balance.Assignment]
	initialMembers []int

	finished sync.WaitGroup // one per node: all owned tiles executed
}

// Run executes the problem described by tl with the given kernel and
// parameter values. With cfg.Transport set it runs as one rank of a
// distributed job (see Config.Transport); otherwise it simulates all
// cfg.Nodes ranks in-process.
func Run(tl *tiling.Tiling, kernel Kernel, params []int64, cfg Config) (*Result, error) {
	return run(tl, kernel, params, cfg, nil)
}

// run is the shared body behind Run and Prepared.Run. A non-nil prep
// supplies the precomputed load-balance assignment and initial-tile
// scan (see prepare.go), skipping the per-run cost of both.
func run(tl *tiling.Tiling, kernel Kernel, params []int64, cfg Config, prep *Prepared) (*Result, error) {
	cfg = cfg.withDefaults()
	tr := cfg.Transport
	distributed := tr != nil
	if distributed {
		cfg.Nodes = tr.Size()
	}
	if kernel == nil {
		return nil, fmt.Errorf("engine: nil kernel")
	}
	if len(params) != len(tl.Spec.Params) {
		return nil, fmt.Errorf("engine: got %d params, spec has %d", len(params), len(tl.Spec.Params))
	}
	if err := tl.Spec.CheckParams(params); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	goal := tl.Spec.GoalPoint()
	goalVals := append(append([]int64{}, params...), goal...)
	if !tl.Spec.System().Contains(goalVals) {
		return nil, fmt.Errorf("engine: goal %v outside the iteration space for params %v", goal, params)
	}
	ft := cfg.Checkpoint.Dir != ""
	if cfg.Checkpoint.Resume && !ft {
		return nil, fmt.Errorf("engine: Checkpoint.Resume requires Checkpoint.Dir")
	}
	if ft && len(tl.TileDeps) > 64 {
		return nil, fmt.Errorf("engine: fault tolerance supports at most 64 tile dependences, spec has %d",
			len(tl.TileDeps))
	}
	if cfg.CrashAfterTiles > 0 && cfg.CrashFn == nil {
		return nil, fmt.Errorf("engine: CrashAfterTiles requires CrashFn")
	}
	el := cfg.Elastic.Enabled
	var elMembers []int
	if el {
		switch {
		case !distributed:
			return nil, fmt.Errorf("engine: Elastic requires a Transport (distributed run)")
		case cfg.PollingRecv:
			return nil, fmt.Errorf("engine: Elastic does not compose with PollingRecv")
		case ft:
			return nil, fmt.Errorf("engine: Elastic does not compose with Checkpoint")
		case prep != nil:
			return nil, fmt.Errorf("engine: Elastic does not compose with Prepared runs")
		case len(tl.TileDeps) > 64:
			return nil, fmt.Errorf("engine: elastic membership supports at most 64 tile dependences, spec has %d",
				len(tl.TileDeps))
		}
		if _, ok := tr.(elasticTransport); !ok {
			return nil, fmt.Errorf("engine: transport %T does not support elastic membership", tr)
		}
		var err error
		if elMembers, err = normalizeMembers(cfg.Elastic.Members, cfg.Nodes); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	var assign *balance.Assignment
	var balanceTime time.Duration
	var err error
	if prep != nil {
		if err = prep.check(cfg); err != nil {
			return nil, err
		}
		assign, balanceTime = prep.assign, prep.balanceTime
	} else if el {
		assign, err = balance.BuildMembers(tl, params, cfg.Nodes, elMembers, cfg.Balance)
		if err != nil {
			return nil, err
		}
		balanceTime = time.Since(start)
	} else {
		assign, err = balance.Build(tl, params, cfg.Nodes, cfg.Balance)
		if err != nil {
			return nil, err
		}
		balanceTime = time.Since(start)
	}
	var comm *mpi.Comm
	if !distributed {
		comm, err = mpi.NewComm(cfg.Nodes, cfg.SendBufs, cfg.RecvBufs)
		if err != nil {
			return nil, err
		}
	}
	e := &engine{
		tl:     tl,
		kernel: kernel,
		params: append([]int64(nil), params...),
		cfg:    cfg,
		assign: assign,
		comm:   comm,
	}
	if el {
		e.initialMembers = elMembers
		e.assignP.Store(assign)
	}
	e.goalTile, e.goalLocal = tl.GoalTile()
	e.depLocOff = tl.DepLocOffAt(params)
	e.depStride = tl.DepStrideAt(params)
	e.buildRangeLens()
	e.buildKeyDims()
	if err := e.buildIntKeys(); err != nil {
		return nil, err
	}

	// Serial initialization (Section IV-K): owned-tile totals come from
	// the balancer's per-slab tile counts, and the initial tiles from the
	// boundary band scan, so startup touches only O(n^{d-1}) tiles. The
	// exhaustive scan remains as a fallback. In distributed mode only the
	// local rank's node exists; nodeByRank is nil at remote ranks and
	// their tiles are skipped (every process seeds its own).
	initStart := time.Now()
	nodeByRank := make([]*node, cfg.Nodes)
	var nodes []*node
	if distributed {
		n := newNode(e, tr.ID(), tr)
		n.ownedTotal = assign.Tiles[tr.ID()]
		if el {
			n.et = tr.(elasticTransport)
		}
		nodeByRank[tr.ID()] = n
		nodes = []*node{n}
	} else {
		nodes = make([]*node, cfg.Nodes)
		for i := range nodes {
			nodes[i] = newNode(e, i, comm.Rank(i))
			nodes[i].ownedTotal = assign.Tiles[i]
			nodeByRank[i] = nodes[i]
		}
	}
	var initial [][]int64
	var ownedTotals []int64
	if prep != nil {
		initial, ownedTotals = prep.initial, prep.ownedTotals
	} else {
		initial, ownedTotals = initialAndTotals(tl, params, assign, cfg.Nodes)
	}
	if ownedTotals != nil {
		if el {
			// The rebalancer's owned-tile arithmetic needs the exact
			// per-slab tile counts; a tiling whose totals come from the
			// fallback full scan cannot provide them.
			return nil, fmt.Errorf("engine: Elastic requires exact per-slab tile counts for this tiling")
		}
		for _, n := range nodes {
			n.ownedTotal = ownedTotals[n.id]
		}
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("engine: no initial tiles — the dependence graph is cyclic or the space is empty")
	}
	if cfg.Checkpoint.Resume {
		for _, n := range nodes {
			if err := n.loadResume(); err != nil {
				return nil, err
			}
		}
	}
	for _, t := range initial {
		n := nodeByRank[assign.Owner(t)]
		if n == nil {
			continue
		}
		var ik uint64
		if n.ft {
			// A resumed rank's already-executed seed tiles are not re-run.
			ik = e.intKey(t)
			if _, done := n.executedSet[ik]; done {
				continue
			}
		}
		p := &pendTile{
			tile: append([]int64(nil), t...),
			key:  make([]int64, len(e.keyDims)),
			seq:  n.seqA.Add(1),
		}
		e.makeKey(p.tile, p.key)
		p.level = -sum64(p.key)
		p.group = n.shardOf(p.tile)
		if n.ft {
			n.started[ik] = p
		}
		n.enqueue(p, n.initLane())
	}
	for _, n := range nodes {
		if n.resumeCk != nil {
			n.replayCheckpoint(n.initLane())
		}
	}
	// Static phase (sched.go): classify and order interior all-local
	// tiles once, before workers exist, so the per-level structures
	// need no construction-time locking.
	e.buildStatic(nodeByRank)
	initTime := time.Since(initStart)

	// Launch: per node, Threads workers plus one receiver. Each
	// goroutine owns one trace lane (workers 0..Threads-1, the receiver
	// after them), so event emission is lock-free.
	var workers sync.WaitGroup
	var receivers sync.WaitGroup
	for _, n := range nodes {
		e.finished.Add(1)
		n.checkFinished() // nodes owning zero tiles are already done
		if !cfg.PollingRecv {
			receivers.Add(1)
			go func(n *node) {
				defer receivers.Done()
				var lane *obs.Lane
				if cfg.Tracer != nil {
					lane = cfg.Tracer.Lane(n.id, cfg.Threads, "recv")
				}
				n.receiver(lane)
			}(n)
		}
		if n.ft && n.ckptPath != "" {
			receivers.Add(1)
			go func(n *node) {
				defer receivers.Done()
				var lane *obs.Lane
				if cfg.Tracer != nil {
					lane = cfg.Tracer.Lane(n.id, laneInit(cfg)+1, "ckpt")
				}
				n.checkpointer(lane)
			}(n)
		}
		if n.elastic {
			n.elasticWG.Add(1)
			go func(n *node) {
				var lane *obs.Lane
				if cfg.Tracer != nil {
					lane = cfg.Tracer.Lane(n.id, laneInit(cfg)+3, "elastic")
				}
				e.elasticLoop(n, lane)
			}(n)
		}
		for w := 0; w < cfg.Threads; w++ {
			workers.Add(1)
			go func(n *node, w int) {
				defer workers.Done()
				var lane *obs.Lane
				if cfg.Tracer != nil {
					lane = cfg.Tracer.Lane(n.id, w, "worker"+strconv.Itoa(w))
				}
				if cfg.PollingRecv {
					n.workerPolling(w, lane)
				} else {
					n.worker(w, lane)
				}
			}(n, w)
		}
	}

	// Coordinator: once every node has executed all its owned tiles,
	// no further messages can be in flight (a consumer finishes only
	// after receiving every edge it needs), so the communicator can be
	// closed and the workers woken for exit. In distributed mode the
	// local rank instead joins the collective result merge before
	// closing its transport endpoint; a failed transport (peer death)
	// aborts the run with an error rather than hanging.
	var merged *mergedResult
	var runErr error
	if distributed {
		if runErr = e.awaitLocal(tr); runErr == nil {
			merged, runErr = e.mergeDistributed(tr)
		}
		if rs, ok := tr.(interface{ RecoveryStats() (int64, int64) }); ok {
			hb, pr := rs.RecoveryStats()
			n := nodes[0]
			n.mu.Lock()
			n.st.HeartbeatMisses, n.st.PeerRestarts = hb, pr
			n.mu.Unlock()
			if cfg.Tracer != nil && (hb > 0 || pr > 0) {
				lane := cfg.Tracer.Lane(n.id, laneInit(cfg), "init")
				lane.Instant(obs.KHeartbeatMiss, "", -1, hb)
				lane.Instant(obs.KPeerRestart, "", -1, pr)
			}
		}
		if bs, ok := tr.(interface{ Bytes() (int64, int64) }); ok {
			sent, recvd := bs.Bytes()
			n := nodes[0]
			n.mu.Lock()
			n.st.WireBytesSent, n.st.WireBytesRecv = sent, recvd
			n.mu.Unlock()
		}
		if el {
			// The elastic loop outlives the local finish so departed and
			// standby ranks keep answering view changes; it stops only
			// after the collective merge proved every rank is done.
			close(nodes[0].stopElastic)
			nodes[0].elasticWG.Wait()
		}
		tr.Close()
	} else {
		e.finished.Wait()
		comm.Close()
	}
	for _, n := range nodes {
		n.mu.Lock()
		n.done = true
		n.cond.Broadcast()
		if n.elastic {
			n.pauseCond.Broadcast()
		}
		n.mu.Unlock()
	}
	workers.Wait()
	receivers.Wait()
	if runErr != nil {
		// Nodes that never finished (the aborted run's whole point)
		// force their Done so the awaitLocal waiter blocked in
		// finished.Wait exits instead of leaking.
		for _, n := range nodes {
			n.finishOnce.Do(e.finished.Done)
		}
		return nil, fmt.Errorf("engine: distributed run failed: %w", runErr)
	}

	res := &Result{
		Stats:       make([]NodeStats, cfg.Nodes),
		BalanceTime: balanceTime,
		InitTime:    initTime,
		TotalTime:   time.Since(start),
		Work:        assign.Work,
	}
	for _, n := range nodes {
		n.st.Steals = n.stealsA.Load()
		n.st.LocalPops = n.localPopsA.Load()
		n.st.EdgesLocal = n.edgesLocalA.Load()
		n.st.EdgesRecvRemote = n.edgesRecvRemoteA.Load()
		n.st.PeakPendingEdges = n.peakPendingEdges.Load()
		n.st.PeakBufferedElems = n.peakBufferedElems.Load()
		n.st.PeakPendingTiles = n.peakPendingTiles.Load()
		n.st.QueueDepthPeak = n.peakQueueDepth.Load()
		if n.sd != nil {
			n.st.StaticTiles = n.sd.staticTotal
		}
		res.Stats[n.id] = n.st
	}
	if distributed {
		// Globally merged values; Stats carries only the local rank's
		// entry (the others stay zero — they live in other processes).
		res.Value = merged.goal
		res.Max = merged.max
		res.Messages, res.Elems = merged.messages, merged.elems
		return res, nil
	}
	res.Messages, res.Elems = comm.Stats()
	e.goalMu.Lock()
	if !e.goalSet {
		e.goalMu.Unlock()
		return nil, fmt.Errorf("engine: goal tile %v never executed", e.goalTile)
	}
	res.Value = e.goalVal
	if e.maxSet {
		res.Max = e.maxVal
	} else {
		res.Max = math.NaN()
	}
	e.goalMu.Unlock()
	return res, nil
}

// buildKeyDims orders the priority key dimensions: load-balancing
// dimensions first (priority order), then the remaining dimensions in
// loop order (Figure 5).
func (e *engine) buildKeyDims() {
	inLB := map[int]bool{}
	for _, k := range e.tl.LBIndices() {
		e.keyDims = append(e.keyDims, k)
		inLB[k] = true
	}
	for _, v := range e.tl.Spec.Order() {
		k := e.tl.Spec.VarIndex(v)
		if !inLB[k] {
			e.keyDims = append(e.keyDims, k)
		}
	}
}

// buildIntKeys derives the mixed-radix strides that pack a tile's
// coordinates into one uint64: coordinates are offset by the tile-space
// bounding box and weighted by the running extent product, so distinct
// tiles always map to distinct keys.
func (e *engine) buildIntKeys() error {
	lo, hi := e.tl.TileBounds(e.params)
	e.keyLo = lo
	e.keyMul = make([]uint64, len(lo))
	m := int64(1)
	for k := range lo {
		e.keyMul[k] = uint64(m)
		ext := hi[k] - lo[k] + 1
		if ext < 1 {
			ext = 1
		}
		if m > math.MaxInt64/ext {
			return fmt.Errorf("engine: tile space too large for integer keys (extents %v)", hi)
		}
		m *= ext
	}
	return nil
}

// intKey packs tile coordinates into the collision-free pending-table
// key.
func (e *engine) intKey(t []int64) uint64 {
	k := uint64(0)
	for i, v := range t {
		k += uint64(v-e.keyLo[i]) * e.keyMul[i]
	}
	return k
}

// node is one simulated shared-memory node. Its rank endpoint is an
// mpi.Transport: an in-process *mpi.Rank in simulated runs, or (in
// distributed mode) the process's single external transport endpoint.
type node struct {
	eng  *engine
	id   int
	rank mpi.Transport

	// mu guards the done flag, the batched per-tile stats, and the
	// fault-tolerance cadence; workers with nothing to do sleep on
	// cond. Lock order where several are held: pstripe.mu → shard.mu →
	// mu (the reverse never occurs).
	mu   sync.Mutex
	cond *sync.Cond
	done bool

	// Scheduler state (see sched.go / steal.go): per-worker ready-queue
	// shards, the striped dynamic pending table, and (under SchedHybrid)
	// the static wavefront phase.
	shards  []shard
	stripes []pstripe
	smask   uint64
	sd      *nodeSched

	// epoch/sleepers implement the lost-wakeup-free worker sleep of
	// steal.go; qlen counts queued tiles across shards and pendingTiles
	// the dynamic pending-table entries.
	epoch        atomic.Uint64
	sleepers     atomic.Int32
	qlen         atomic.Int64
	pendingTiles atomic.Int64
	seqA         atomic.Int64

	ownedTotal int64
	executed   int64
	finishOnce sync.Once

	// Fault-tolerance state (Config.Checkpoint). The dedup maps
	// executedSet/started are guarded by stripes[0].mu — fault
	// tolerance collapses the pending table to one stripe so every
	// per-tile transition shares that lock; the cadence flags stay
	// under mu. executedSet records every executed owned tile's intKey
	// for duplicate-edge filtering and checkpointing; started holds
	// tiles whose dependences are complete (queued or executing) so
	// their still-held edges stay checkpointable until the executed
	// mark.
	ft          bool
	executedSet map[uint64]struct{}
	started     map[uint64]*pendTile
	ckptPath    string
	ckptEvery   int64
	ckptDue     bool
	ckptBusy    bool
	crashAt     int64
	crashed     bool
	resumeCk    *checkpoint

	// Elastic membership state (Config.Elastic; see elastic.go).
	// paused/executingN/elasticFin/leaveSent are under mu: pauseCond
	// parks workers during a view change, quietCond wakes the pauser
	// when the last in-flight tile retires. executedPerSlab — this
	// rank's contribution to the global executed census, indexed like
	// assign.Slabs() — is under stripes[0].mu next to executedSet.
	elastic         bool
	et              elasticTransport
	paused          bool
	executingN      int
	elasticFin      bool
	leaveSent       bool
	pauseCond       *sync.Cond
	quietCond       *sync.Cond
	curEpoch        atomic.Uint32
	executedPerSlab []int64
	stopElastic     chan struct{}
	elasticWG       sync.WaitGroup

	// Counters off the hot locks: edge-memory accounting plus the
	// scheduler and traffic totals folded into st after the run.
	pendingEdges      atomic.Int64
	bufferedElems     atomic.Int64
	peakPendingEdges  atomic.Int64
	peakBufferedElems atomic.Int64
	peakPendingTiles  atomic.Int64
	peakQueueDepth    atomic.Int64
	stealsA           atomic.Int64
	localPopsA        atomic.Int64
	edgesLocalA       atomic.Int64
	edgesRecvRemoteA  atomic.Int64

	st NodeStats
}

func newNode(e *engine, id int, rank mpi.Transport) *node {
	n := &node{
		eng:  e,
		id:   id,
		rank: rank,
	}
	n.cond = sync.NewCond(&n.mu)
	threads := e.cfg.Threads
	if threads < 1 {
		threads = 1
	}
	n.shards = make([]shard, threads)
	for i := range n.shards {
		n.shards[i].heap = tileHeap{prio: e.cfg.Priority}
		n.shards[i].rng = uint64(i+1) * 0x9E3779B97F4A7C15
	}
	// Stripe count: a few stripes per worker, power of two for the
	// mask; one stripe under fault tolerance or elastic membership
	// (see pstripe — both need one lock over every per-tile transition).
	nstripes := 1
	if e.cfg.Checkpoint.Dir == "" && !e.cfg.Elastic.Enabled {
		nstripes = 4
		for nstripes < 4*threads && nstripes < 64 {
			nstripes *= 2
		}
	}
	n.stripes = make([]pstripe, nstripes)
	for i := range n.stripes {
		n.stripes[i].pending = make(map[uint64]*pendTile)
	}
	n.smask = uint64(nstripes - 1)
	if e.cfg.Checkpoint.Dir != "" || e.cfg.Elastic.Enabled {
		// Elastic runs reuse the fault-tolerance tracking (dedup maps,
		// edge retention until the executed mark) without the on-disk
		// checkpoints: migration needs exactly the same live state.
		n.ft = true
		n.executedSet = make(map[uint64]struct{})
		n.started = make(map[uint64]*pendTile)
	}
	if e.cfg.Checkpoint.Dir != "" {
		n.ckptPath = CheckpointPath(e.cfg.Checkpoint.Dir, id)
		n.ckptEvery = e.cfg.Checkpoint.EveryTiles
	}
	if e.cfg.Elastic.Enabled {
		n.elastic = true
		n.pauseCond = sync.NewCond(&n.mu)
		n.quietCond = sync.NewCond(&n.mu)
		n.executedPerSlab = make([]int64, len(e.assign.Slabs()))
		n.stopElastic = make(chan struct{})
	}
	n.crashAt = e.cfg.CrashAfterTiles
	return n
}

// laneInit is the trace-lane index for the serial seeding phase
// (workers take 0..Threads-1, the receiver Threads).
func laneInit(cfg Config) int { return cfg.Threads + 1 }

// initLane returns the node's seeding-phase trace lane (nil untraced).
func (n *node) initLane() *obs.Lane {
	if n.eng.cfg.Tracer == nil {
		return nil
	}
	return n.eng.cfg.Tracer.Lane(n.id, laneInit(n.eng.cfg), "init")
}

// worker is the per-thread main loop (Section V-A): claim a ready tile
// — own shard first, stealing otherwise — execute it, repeat. With
// nothing claimable anywhere the worker sleeps; the epoch check makes
// the empty-scan-then-sleep sequence race-free against concurrent
// enqueues (see enqueue).
func (n *node) worker(w int, lane *obs.Lane) {
	ws := newWorkerState(n.eng)
	ws.lane = lane
	for {
		if n.elastic {
			// Claim the executing slot before the pop, so a popped tile
			// is always covered by a slot and the view-change pauser can
			// wait for a true tile boundary (see elastic.go).
			n.pauseGate()
		}
		e0 := n.epoch.Load()
		p, stolen := n.popAny(w)
		if p != nil {
			n.execTile(p, ws, stolen)
			if n.elastic {
				n.execDone()
			}
			continue
		}
		if n.elastic {
			n.execDone()
		}
		n.mu.Lock()
		if n.done {
			n.mu.Unlock()
			return
		}
		n.sleepers.Add(1)
		if n.epoch.Load() != e0 {
			// An enqueue landed after the empty scan; rescan.
			n.sleepers.Add(-1)
			n.mu.Unlock()
			continue
		}
		idleStart := time.Now()
		n.cond.Wait()
		n.sleepers.Add(-1)
		idle := time.Since(idleStart)
		n.st.IdleTime += idle
		n.mu.Unlock()
		if lane != nil {
			lane.Emit(obs.Event{Kind: obs.KIdle, Start: lane.At(idleStart), Dur: int64(idle), Dep: -1})
		}
	}
}

// workerPolling is the worker loop of the paper's progress model: no
// receiver goroutine exists, so workers probe the inbox whenever they
// have no ready tile and while blocked inside sends; they never sleep.
func (n *node) workerPolling(w int, lane *obs.Lane) {
	ws := newWorkerState(n.eng)
	ws.lane = lane
	for {
		p, stolen := n.popAny(w)
		if p != nil {
			n.execTile(p, ws, stolen)
			continue
		}
		if n.poll(lane, &ws.ds) {
			continue
		}
		n.mu.Lock()
		done := n.done
		n.mu.Unlock()
		if done {
			return
		}
		runtime.Gosched()
	}
}

// poll drains at most one pending inbox message; reports whether one was
// processed. Delivered-edge events go to the polling goroutine's lane.
func (n *node) poll(lane *obs.Lane, ds *delivState) bool {
	m, ok := n.rank.Iprobe()
	if !ok {
		return false
	}
	n.deliver(m.Meta, m.Tag, m.Data, true, lane, ds)
	m.ReleaseSlot()
	mpi.PutMeta(m.Meta)
	return true
}

// receiver drains the node's MPI inbox, delivering edges into the
// pending table. It is the progress engine standing in for the paper's
// lock-guarded polling step; it exits when the communicator closes.
func (n *node) receiver(lane *obs.Lane) {
	ds := newDelivState(n.eng)
	for {
		m, ok := n.rank.Recv()
		if !ok {
			return
		}
		if n.elastic {
			if m.Tag < 0 {
				// A migration blob (see elastic.go). The slot — and with
				// it the acknowledgement — is released only after the
				// blob is fully applied, so the sender's next quiescence
				// point proves these tiles live here now.
				n.applyMigration(m.Data, m.Meta, lane, ds)
				mpi.PutData(m.Data)
				m.ReleaseSlot()
				mpi.PutMeta(m.Meta)
				continue
			}
			if m.Epoch < n.curEpoch.Load() {
				// An edge sent under an older membership epoch. The view
				// change drained all data traffic, so this cannot happen
				// in supported configurations — but if it does, a tile
				// that moved away gets its edge forwarded to the current
				// owner instead of being dropped or double-applied (the
				// duplicate filter below handles the still-owned case).
				if o := n.eng.ownerOf(m.Meta); o != n.id {
					meta := mpi.GetMeta(len(m.Meta))
					copy(meta, m.Meta)
					n.rank.Send(o, m.Tag, m.Data, meta)
					n.mu.Lock()
					n.st.EdgesForwarded++
					n.mu.Unlock()
					m.ReleaseSlot()
					mpi.PutMeta(m.Meta)
					continue
				}
			}
		}
		n.deliver(m.Meta, m.Tag, m.Data, true, lane, ds)
		m.ReleaseSlot()
		mpi.PutMeta(m.Meta)
	}
}

// delivState is per-goroutine delivery scratch: a reusable polytope
// probe and a recycled pending-table entry, so the steady-state deliver
// path allocates nothing.
type delivState struct {
	probe *tiling.TileProbe
	spare *pendTile
}

func newDelivState(e *engine) *delivState {
	return &delivState{probe: e.tl.NewProbe(e.params)}
}

// recycle offers an executed tile's entry for reuse by the next
// pending-table miss on this goroutine.
func (ds *delivState) recycle(p *pendTile) {
	if ds.spare != nil {
		return
	}
	for i := range p.edges {
		p.edges[i] = edge{}
	}
	p.edges = p.edges[:0]
	ds.spare = p
}

// prepTile builds a ready-to-insert pending-table entry. The dependence
// count, priority key, level and home shard are all polytope
// evaluations, so this runs outside the stripe lock.
func (n *node) prepTile(ds *delivState, consumer []int64) *pendTile {
	e := n.eng
	p := ds.spare
	if p != nil {
		ds.spare = nil
	} else {
		p = &pendTile{
			tile: make([]int64, len(consumer)),
			key:  make([]int64, len(e.keyDims)),
		}
	}
	copy(p.tile, consumer)
	p.remaining = ds.probe.DepCount(p.tile)
	p.got = 0
	e.makeKey(p.tile, p.key)
	p.level = -sum64(p.key)
	p.group = n.shardOf(p.tile)
	return p
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// deliver records one incoming edge for a consumer tile. Static tiles
// take a lock-free path: the edge lands directly in its preassigned
// slot (the producer is the slot's only writer, and the wavefront
// frontier cannot release the tile before the producer retires).
// Dynamic tiles go through the consumer's pending-table stripe and move
// to their home shard when the last dependence arrives. lane is the
// calling goroutine's trace lane (nil when untraced); ds is its
// delivery scratch.
func (n *node) deliver(consumer []int64, dep int, data []float64, remote bool, lane *obs.Lane, ds *delivState) {
	e := n.eng
	if remote && lane != nil {
		lane.Instant(obs.KRecv, obs.TileID(consumer), int32(dep), int64(len(data)))
	}
	atomicMax(&n.peakPendingEdges, n.pendingEdges.Add(1))
	atomicMax(&n.peakBufferedElems, n.bufferedElems.Add(int64(len(data))))

	k := e.intKey(consumer)
	if sd := n.sd; sd != nil {
		if p := sd.idx[k]; p != nil {
			// sd.idx is read-only after buildStatic, and remote edges
			// never target static tiles (their producers are all
			// node-local by classification).
			p.edges[dep] = edge{dep: dep, data: data}
			n.edgesLocalA.Add(1)
			return
		}
	}
	st := n.stripeFor(k)
	st.mu.Lock()
	if n.ft {
		// Duplicate-edge filter: after a peer restart its replayed
		// history re-delivers edges this rank already applied. A tile
		// that executed, or whose dependences are already complete
		// (started), or that already received this dependence (got bit)
		// drops the copy — each cell stays computed exactly once from
		// determined inputs, so recovery preserves bit-identity.
		_, executed := n.executedSet[k]
		if !executed {
			_, executed = n.started[k]
		}
		if executed {
			n.st.EdgesDroppedDup++
			st.mu.Unlock()
			n.pendingEdges.Add(-1)
			n.bufferedElems.Add(-int64(len(data)))
			mpi.PutData(data)
			return
		}
	}
	p := st.pending[k]
	if p == nil {
		// First edge for this tile. The entry needs polytope work
		// (prepTile), which must not run under the lock: release it,
		// prepare, re-check. Another deliverer may win the race, in
		// which case the prepared entry is kept as the next spare.
		st.mu.Unlock()
		prep := n.prepTile(ds, consumer)
		st.mu.Lock()
		if p = st.pending[k]; p == nil {
			p = prep
			st.pending[k] = p
			n.pendingTiles.Add(1)
		} else {
			ds.spare = prep
		}
	}
	if n.ft {
		if p.got&(1<<uint(dep)) != 0 {
			n.st.EdgesDroppedDup++
			st.mu.Unlock()
			n.pendingEdges.Add(-1)
			n.bufferedElems.Add(-int64(len(data)))
			mpi.PutData(data)
			return
		}
		p.got |= 1 << uint(dep)
	}
	if remote {
		n.edgesRecvRemoteA.Add(1)
	} else {
		n.edgesLocalA.Add(1)
	}
	p.edges = append(p.edges, edge{dep: dep, data: data})
	p.remaining--
	ready := p.remaining == 0
	if ready {
		delete(st.pending, k)
		n.pendingTiles.Add(-1)
		if n.ft {
			n.started[k] = p
		}
	}
	st.mu.Unlock()
	atomicMax(&n.peakPendingTiles, n.pendingTiles.Load()+n.qlen.Load())
	if ready {
		p.seq = n.seqA.Add(1)
		n.enqueue(p, lane)
	}
}

// rangeLen is the interior-tile evaluation plan for one range
// dependence's length form: base folds the parameter part at the run's
// values and coef holds the loop-variable coefficients, so the per-cell
// length is base + coef.x clamped at zero. Interior tiles never clamp
// against the space boundary — the whole footprint shell is inside —
// so the semantic length is the usable length.
type rangeLen struct {
	j    int
	base int64
	coef []int64
}

func (e *engine) buildRangeLens() {
	sp := e.tl.Spec
	if !sp.HasRangeDeps() {
		return
	}
	vals := make([]int64, sp.Space().N())
	copy(vals, e.params)
	for j := range sp.Deps {
		if !sp.Deps[j].IsRange() {
			continue
		}
		le := e.tl.LenExprs[j]
		rl := rangeLen{j: j, base: le.Eval(vals), coef: make([]int64, len(sp.Vars))}
		for k, v := range sp.Vars {
			rl.coef[k] = le.Coeff(v)
		}
		e.rangeLens = append(e.rangeLens, rl)
	}
}

// setRangeLens fills the per-cell range lengths (and the matching
// validity flags) for one interior cell at original coordinates x.
func setRangeLens(ctx *Ctx, rls []rangeLen, x []int64) {
	for _, rl := range rls {
		v := rl.base
		for k, c := range rl.coef {
			if c != 0 {
				v += c * x[k]
			}
		}
		if v < 0 {
			v = 0
		}
		ctx.DepLen[rl.j] = v
		ctx.DepValid[rl.j] = v > 0
	}
}

// workerState is per-worker scratch: the tile buffer with its ghost
// shell, the kernel context, and the reusable polytope probe.
type workerState struct {
	buf      []float64
	ctx      Ctx
	specVals []int64
	x        []int64
	i        []int64
	tbuf     []int64 // producer/consumer tile scratch
	probe    *tiling.TileProbe
	ds       delivState
	lane     *obs.Lane // trace timeline; nil when untraced
}

func newWorkerState(e *engine) *workerState {
	d := len(e.tl.Spec.Vars)
	w := &workerState{
		buf:      make([]float64, e.tl.AllocLen),
		specVals: make([]int64, e.tl.Spec.Space().N()),
		x:        make([]int64, d),
		i:        make([]int64, d),
		tbuf:     make([]int64, d),
		probe:    e.tl.NewProbe(e.params),
	}
	// The probe is shared with the delivery scratch: all uses are
	// call-scoped on this worker's goroutine.
	w.ds = delivState{probe: w.probe}
	copy(w.specVals, e.params)
	w.ctx = Ctx{
		V:        w.buf,
		DepLoc:   make([]int64, len(e.tl.Spec.Deps)),
		DepValid: make([]bool, len(e.tl.Spec.Deps)),
		DepLen:   make([]int64, len(e.tl.Spec.Deps)),
		// The range steps are constant within a run, so every worker
		// shares the engine's read-only slice.
		DepStride: e.depStride,
		X:         w.x,
		P:         e.params,
	}
	return w
}

// execTile runs one tile: unpack edges, execute cells, pack and deliver
// outgoing edges, and update termination and scheduler state. stolen
// marks a tile claimed from another worker's shard (recorded on the
// pop event). A panicking user kernel still crashes the run (there is
// no safe way to unwind a half-computed distributed wavefront), but the
// panic is annotated with the tile so the kernel bug is findable.
func (n *node) execTile(p *pendTile, w *workerState, stolen bool) {
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("engine: kernel panic in tile %v on node %d: %v", p.tile, n.id, r))
		}
	}()
	e := n.eng
	tl := e.tl
	d := len(tl.Spec.Vars)
	fast := !e.cfg.DisableFastPath

	// Tracing: one nil check per phase; tid and timestamps are only
	// computed when a tracer is attached.
	lane := w.lane
	var tid string
	var t0 int64
	if lane != nil {
		tid = obs.TileID(p.tile)
		var stolenVal int64
		if stolen {
			stolenVal = 1
		}
		lane.Instant(obs.KPop, tid, -1, stolenVal)
		t0 = lane.Now()
	}

	// Unpack received edges into the ghost shell. The producer of edge
	// dep j is p.tile + offset_j; pack and unpack share that producer's
	// slab order, so the elements match exactly. A full-slab edge (its
	// length equals the dense size) unpacks with the precompiled strided
	// copy regardless of how the producer packed it; partial boundary
	// slabs walk the exact nest.
	var freedElems int64
	var nEdges int64
	for _, ed := range p.edges {
		if ed.data == nil {
			// A static tile's slot for a producer that does not exist
			// (an out-of-space neighbor whose ghost cells no valid
			// dependence ever reads).
			continue
		}
		nEdges++
		if fast && int64(len(ed.data)) == tl.InteriorEdgeSize[ed.dep] {
			tl.UnpackInterior(ed.dep, w.buf, ed.data)
		} else {
			producer := w.tbuf
			off := tl.TileDeps[ed.dep].Offset
			for k := 0; k < d; k++ {
				producer[k] = p.tile[k] + off[k]
			}
			idx := 0
			tl.ForEachEdgeCell(e.params, producer, ed.dep, func(i []int64) bool {
				w.buf[tl.UnpackLoc(ed.dep, i)] = ed.data[idx]
				idx++
				return true
			})
			if idx != len(ed.data) {
				panic(fmt.Sprintf("engine: unpack size mismatch: %d cells, %d values", idx, len(ed.data)))
			}
		}
		freedElems += int64(len(ed.data))
		// Edge storage returns to the shared pool once unpacked — except
		// in fault-tolerance mode, where the edges stay attached (and
		// checkpointable) until the tile's executed mark below.
		if !n.ft {
			mpi.PutData(ed.data)
		}
	}
	n.pendingEdges.Add(-nEdges)
	n.bufferedElems.Add(-freedElems)
	if !n.ft {
		for i := range p.edges {
			p.edges[i] = edge{}
		}
		p.edges = p.edges[:0]
	}
	if lane != nil {
		lane.Span(obs.KUnpack, tid, -1, 0, t0)
		t0 = lane.Now()
	}

	// Execute the cells in dependence order: interior tiles through the
	// precompiled dense nest, boundary tiles through the exact
	// bound-evaluating enumerator with per-cell validity checks.
	var cells int64
	tileMax := math.Inf(-1)
	interior := fast && (p.static || w.probe.Interior(p.tile))
	if interior {
		cells, tileMax = n.execInterior(p, w)
	} else {
		np := len(e.params)
		nd := len(tl.Spec.Deps)
		tl.ForEachCell(e.params, p.tile, func(i []int64) bool {
			cells++
			loc := tl.Loc(i)
			for k := 0; k < d; k++ {
				w.x[k] = i[k] + tl.Widths[k]*p.tile[k]
				w.specVals[np+k] = w.x[k]
			}
			w.ctx.Loc = loc
			w.ctx.I = i
			for j := 0; j < nd; j++ {
				w.ctx.DepLoc[j] = loc + e.depLocOff[j]
				ln := tl.DepLenAt(j, w.specVals)
				w.ctx.DepLen[j] = ln
				w.ctx.DepValid[j] = ln > 0
			}
			e.kernel(&w.ctx)
			if v := w.buf[loc]; v > tileMax {
				tileMax = v
			}
			if e.cfg.OnCell != nil {
				e.cfg.OnCell(w.x, w.buf[loc])
			}
			return true
		})
	}
	if lane != nil {
		lane.Span(obs.KKernel, tid, -1, cells, t0)
	}

	if sameTile(p.tile, e.goalTile) {
		v := w.buf[tl.Loc(e.goalLocal)]
		e.goalMu.Lock()
		e.goalVal = v
		e.goalSet = true
		e.goalMu.Unlock()
	}
	if cells > 0 {
		e.goalMu.Lock()
		if !e.maxSet || tileMax > e.maxVal {
			e.maxVal = tileMax
			e.maxSet = true
		}
		e.goalMu.Unlock()
	}

	// Pack and deliver outgoing edges (steps 4a/4b of Section V-A).
	// Buffers come from the shared pool, sized by the dense slab bound,
	// so packing never grows a slice; interior tiles fill with strided
	// copies.
	if lane != nil {
		t0 = lane.Now()
	}
	var sentRemote int64
	var stallSum time.Duration
	for j := range tl.TileDeps {
		off := tl.TileDeps[j].Offset
		consumer := w.tbuf
		for k := 0; k < d; k++ {
			consumer[k] = p.tile[k] - off[k]
		}
		if !w.probe.InSpace(consumer) {
			continue
		}
		var data []float64
		if interior {
			data = mpi.GetData(int(tl.InteriorEdgeSize[j]))
			tl.PackInterior(j, w.buf, data)
		} else {
			data = mpi.GetData(int(tl.InteriorEdgeSize[j]))[:0]
			tl.ForEachEdgeCell(e.params, p.tile, j, func(i []int64) bool {
				data = append(data, w.buf[tl.Loc(i)])
				return true
			})
		}
		owner := e.ownerOf(consumer)
		if owner == n.id {
			n.deliver(consumer, j, data, false, lane, &w.ds)
		} else {
			meta := mpi.GetMeta(d)
			copy(meta, consumer)
			var sendT0 int64
			if lane != nil {
				sendT0 = lane.Now()
			}
			var stall time.Duration
			if e.cfg.PollingRecv {
				stall = n.rank.SendPolling(owner, j, data, meta, func() {
					if !n.poll(lane, &w.ds) {
						runtime.Gosched()
					}
				})
			} else {
				stall = n.rank.Send(owner, j, data, meta)
			}
			if lane != nil {
				if stall > 0 {
					lane.Emit(obs.Event{Kind: obs.KStall, Start: sendT0, Dur: int64(stall), Tile: tid, Dep: int32(j)})
				}
				lane.Span(obs.KSend, obs.TileID(consumer), int32(j), int64(len(data)), sendT0)
			}
			sentRemote++
			stallSum += stall
		}
	}
	if lane != nil {
		lane.Span(obs.KPack, tid, -1, 0, t0)
	}

	// Executed mark for fault tolerance, under the (single) pending
	// stripe's lock so checkpoints see the dedup-set insert and the
	// edge release as one transition: the tile's sends are issued, so
	// it joins the dedup set and its retained edges finally return to
	// the pool.
	if n.ft {
		k := e.intKey(p.tile)
		st0 := &n.stripes[0]
		st0.mu.Lock()
		delete(n.started, k)
		n.executedSet[k] = struct{}{}
		if n.elastic {
			// Slab indices are stable across rebalances (the slab table
			// is shared), so the census can use the initial assignment.
			if si := e.assign.SlabIndex(p.tile); si >= 0 {
				n.executedPerSlab[si]++
			}
		}
		for i := range p.edges {
			mpi.PutData(p.edges[i].data)
			p.edges[i] = edge{}
		}
		p.edges = p.edges[:0]
		st0.mu.Unlock()
	}

	// One batched stats update per tile.
	var crash, wantLeave bool
	n.mu.Lock()
	n.st.TilesExecuted++
	n.st.CellsComputed += cells
	n.st.EdgesSentRemote += sentRemote
	n.st.SendStallTime += stallSum
	n.executed++
	if n.ft && n.ckptEvery > 0 && !n.crashed && n.executed%n.ckptEvery == 0 {
		n.ckptDue = true
	}
	if n.crashAt > 0 && !n.crashed && n.executed >= n.crashAt {
		n.crashed = true // no further checkpoints: the crash point is final
		crash = true
	}
	finished := n.executed == n.ownedTotal
	if n.elastic && !n.leaveSent {
		// Voluntary departure: ask the coordinator out once the
		// threshold is reached — or on local completion, so a rank
		// whose tiles ran out early still honours its leave (and the
		// coordinator's ExpectLeaves accounting).
		if la := e.cfg.Elastic.LeaveAfterTiles; la > 0 && (n.executed >= la || finished) {
			n.leaveSent = true
			wantLeave = true
		}
	}
	n.mu.Unlock()
	if crash {
		e.cfg.CrashFn()
	}
	if wantLeave {
		n.et.SendElastic(0, mpi.ElasticLeave, nil)
	}
	// Retire the tile from its wavefront level, releasing the next
	// static level if this drained the frontier. Must follow the
	// outgoing-edge deliveries above: a released consumer's slots are
	// only complete once every lower-level producer has delivered.
	n.tileRetired(p, lane)
	// Sample the pending-edge curve (the Figure 4 quantity as a time
	// series) and the ready-queue depth at every tile completion.
	if lane != nil {
		lane.Instant(obs.KPending, "", -1, n.pendingEdges.Load())
		lane.Instant(obs.KQueueDepth, "", -1, n.qlen.Load())
	}
	if !p.static {
		w.ds.recycle(p)
	}
	if finished {
		n.checkFinished()
	}
}

// execInterior runs the precompiled dense loop nest over an interior
// tile: every cell of the full rectangle is in the iteration space and
// every template dependence is valid at every cell, so there are no
// per-cell bound evaluations, no validity checks and no enumerator
// closures — just an odometer over the outer levels and a tight
// innermost loop with incremental buffer locations.
func (n *node) execInterior(p *pendTile, w *workerState) (cells int64, tileMax float64) {
	e := n.eng
	tl := e.tl
	lv := tl.Dense
	d := len(lv)
	ctx := &w.ctx
	ctx.I = w.i
	for j := range ctx.DepValid {
		ctx.DepValid[j] = true
		ctx.DepLen[j] = 1
	}
	rls := e.rangeLens
	depOff := e.depLocOff
	nd := len(depOff)
	kernel := e.kernel
	onCell := e.cfg.OnCell
	buf := w.buf

	// Outer-level odometer state; rowLoc is the buffer index of the
	// current row's origin (innermost variable at local 0).
	var idxArr [16]int64
	idx := idxArr[:]
	if d > len(idxArr) {
		idx = make([]int64, d)
	}
	rowLoc := tl.BaseOff
	for l := 0; l < d-1; l++ {
		L := lv[l]
		if L.Dir < 0 {
			idx[l] = L.Width - 1
		}
		rowLoc += idx[l] * L.Stride
		w.i[L.Var] = idx[l]
		w.x[L.Var] = tl.Widths[L.Var]*p.tile[L.Var] + idx[l]
	}
	in := lv[d-1]
	iv := in.Var
	xb := tl.Widths[iv] * p.tile[iv]
	tileMax = math.Inf(-1)
	for {
		if in.Dir >= 0 {
			loc := rowLoc
			for i := int64(0); i < in.Width; i++ {
				w.i[iv] = i
				w.x[iv] = xb + i
				ctx.Loc = loc
				for j := 0; j < nd; j++ {
					ctx.DepLoc[j] = loc + depOff[j]
				}
				if len(rls) != 0 {
					setRangeLens(ctx, rls, w.x)
				}
				kernel(ctx)
				if v := buf[loc]; v > tileMax {
					tileMax = v
				}
				if onCell != nil {
					onCell(w.x, buf[loc])
				}
				loc += in.Stride
			}
		} else {
			loc := rowLoc + (in.Width-1)*in.Stride
			for i := in.Width - 1; i >= 0; i-- {
				w.i[iv] = i
				w.x[iv] = xb + i
				ctx.Loc = loc
				for j := 0; j < nd; j++ {
					ctx.DepLoc[j] = loc + depOff[j]
				}
				if len(rls) != 0 {
					setRangeLens(ctx, rls, w.x)
				}
				kernel(ctx)
				if v := buf[loc]; v > tileMax {
					tileMax = v
				}
				if onCell != nil {
					onCell(w.x, buf[loc])
				}
				loc -= in.Stride
			}
		}
		cells += in.Width

		// Advance the outer odometer (innermost outer level first).
		l := d - 2
		for ; l >= 0; l-- {
			L := lv[l]
			if L.Dir >= 0 {
				idx[l]++
				rowLoc += L.Stride
				w.i[L.Var] = idx[l]
				w.x[L.Var]++
				if idx[l] < L.Width {
					break
				}
				idx[l] = 0
				rowLoc -= L.Width * L.Stride
				w.i[L.Var] = 0
				w.x[L.Var] -= L.Width
			} else {
				idx[l]--
				rowLoc -= L.Stride
				w.i[L.Var] = idx[l]
				w.x[L.Var]--
				if idx[l] >= 0 {
					break
				}
				idx[l] = L.Width - 1
				rowLoc += L.Width * L.Stride
				w.i[L.Var] = idx[l]
				w.x[L.Var] += L.Width
			}
		}
		if l < 0 {
			return cells, tileMax
		}
	}
}

// checkFinished signals global termination bookkeeping exactly once when
// the node has executed every owned tile (including owning none). Under
// elastic membership it additionally waits for the coordinator's FIN:
// owning zero tiles is transient there (a standby may be admitted, a
// view change may migrate tiles in), so only the FIN broadcast makes
// "nothing owned, nothing left" final.
func (n *node) checkFinished() {
	n.mu.Lock()
	done := n.executed == n.ownedTotal && (!n.elastic || n.elasticFin)
	n.mu.Unlock()
	if done {
		n.finishOnce.Do(n.eng.finished.Done)
	}
}

func sameTile(a, b []int64) bool {
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

func sum64(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}
