package engine

import (
	"sync"
	"testing"
)

// ---- hybrid static/dynamic scheduler ----

// TestSchedulersBitIdentical: the hybrid and pure-dynamic schedulers
// must produce bit-identical cell values under every node/thread shape
// — the static wavefront phase may only change execution order within
// what the dependence DAG already allows.
func TestSchedulersBitIdentical(t *testing.T) {
	n := int64(10)
	tl := pipe2(t, n)
	N := 2*n - 1
	for _, shape := range []struct{ nodes, threads int }{
		{1, 1}, {1, 4}, {3, 2},
	} {
		var ref map[[2]int64]float64
		for _, sched := range []Sched{SchedHybrid, SchedDynamic} {
			var mu sync.Mutex
			got := map[[2]int64]float64{}
			res, err := Run(tl, sumKernel, []int64{N}, Config{
				Nodes: shape.nodes, Threads: shape.threads, Sched: sched,
				OnCell: func(x []int64, v float64) {
					mu.Lock()
					got[[2]int64{x[0], x[1]}] = v
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("%dx%d %v: %v", shape.nodes, shape.threads, sched, err)
			}
			if res.Value == 0 {
				t.Fatalf("%dx%d %v: zero goal value", shape.nodes, shape.threads, sched)
			}
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("%dx%d %v: %d cells, hybrid computed %d",
					shape.nodes, shape.threads, sched, len(got), len(ref))
			}
			for k, want := range ref {
				if got[k] != want {
					t.Fatalf("%dx%d %v: cell %v = %v, hybrid %v",
						shape.nodes, shape.threads, sched, k, got[k], want)
				}
			}
		}
	}
}

// TestStaticTilesOnInteriorRichProblem: a large single-node square
// grid is dominated by interior tiles with local producers, so the
// hybrid scheduler must classify most of them static; with multiple
// nodes, boundary rows flip back to dynamic but plenty remain.
func TestStaticTilesOnInteriorRichProblem(t *testing.T) {
	n := int64(12)
	tl := pipe2(t, n)
	N := 2*n - 1
	for _, nodes := range []int{1, 2} {
		res, err := Run(tl, sumKernel, []int64{N}, Config{Nodes: nodes, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		var static, tiles int64
		for _, st := range res.Stats {
			static += st.StaticTiles
			tiles += st.TilesExecuted
		}
		if static == 0 {
			t.Errorf("nodes=%d: no static tiles on an interior-rich grid", nodes)
		}
		if static > tiles {
			t.Errorf("nodes=%d: static %d exceeds executed %d", nodes, static, tiles)
		}
		// Single node, all producers local: everything but the edge
		// rows/columns (non-interior) and the initial tile is static.
		if nodes == 1 && static < tiles/2 {
			t.Errorf("single node: only %d of %d tiles static", static, tiles)
		}
	}
}

// TestStaticPhaseDisabledPaths: every configuration that must fall
// back to pure-dynamic scheduling reports zero static tiles.
func TestStaticPhaseDisabledPaths(t *testing.T) {
	n := int64(8)
	tl := pipe2(t, n)
	N := 2*n - 1
	for name, cfg := range map[string]Config{
		"dynamic":    {Threads: 2, Sched: SchedDynamic},
		"nofastpath": {Threads: 2, DisableFastPath: true},
		"checkpoint": {Threads: 2, Checkpoint: CheckpointConfig{Dir: t.TempDir(), EveryTiles: 1}},
		// One worker: nothing for the static phase to desynchronize,
		// so the classification scan is skipped outright.
		"singlethread": {Threads: 1},
	} {
		res, err := Run(tl, sumKernel, []int64{N}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, st := range res.Stats {
			if st.StaticTiles != 0 {
				t.Errorf("%s: node %d reports %d static tiles, want 0", name, i, st.StaticTiles)
			}
		}
	}
}

// TestPopAccounting: every executed tile is either a local pop or a
// steal, under both schedulers and any thread count.
func TestPopAccounting(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(15)
	for _, cfg := range []Config{
		{Nodes: 1, Threads: 1},
		{Nodes: 1, Threads: 4},
		{Nodes: 2, Threads: 3},
		{Nodes: 2, Threads: 3, Sched: SchedDynamic},
	} {
		res, err := Run(tl, bandit2Kernel, []int64{N}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range res.Stats {
			if st.Steals+st.LocalPops != st.TilesExecuted {
				t.Errorf("nodes=%d threads=%d sched=%v node %d: steals %d + local %d != executed %d",
					cfg.Nodes, cfg.Threads, cfg.Sched, i, st.Steals, st.LocalPops, st.TilesExecuted)
			}
			if st.TilesExecuted > 0 && st.QueueDepthPeak < 1 {
				t.Errorf("node %d executed %d tiles with queue peak %d", i, st.TilesExecuted, st.QueueDepthPeak)
			}
			if cfg.Threads == 1 && st.Steals != 0 {
				t.Errorf("node %d stole %d tiles with a single worker", i, st.Steals)
			}
		}
	}
}

// TestSchedStringer covers the flag-facing names.
func TestSchedStringer(t *testing.T) {
	for s, want := range map[Sched]string{
		SchedHybrid: "hybrid", SchedDynamic: "dynamic", Sched(7): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Sched(%d).String() = %q, want %q", s, got, want)
		}
	}
}
