package engine

import (
	"math"
	"time"

	"dpgen/internal/mpi"
)

// Distributed single-rank mode (Config.Transport). Every process of
// the job computes the same tiling, balance and ownership — all are
// deterministic functions of the spec and parameters — so the only
// cross-process coordination is the edge traffic itself plus the fixed
// collective sequence below that merges the per-rank results. The
// merge moves values without arithmetic on them (the goal value is
// selected, not reduced), so a distributed run is bit-identical to the
// in-process simulation with the same node count.

// mergedResult is the outcome of the collective result merge.
type mergedResult struct {
	goal, max       float64
	messages, elems int64
}

// awaitLocal waits for the local rank to finish its owned tiles while
// watching the transport for failure, so peer death aborts the run
// instead of stalling it forever on edges that will never arrive. On a
// transport error the waiter goroutine stays blocked in Wait until
// Run's teardown force-finishes the aborted nodes, at which point it
// exits — no goroutine outlives Run.
func (e *engine) awaitLocal(tr mpi.Transport) error {
	done := make(chan struct{})
	go func() {
		e.finished.Wait()
		close(done)
	}()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return tr.Err()
		case <-tick.C:
			if err := tr.Err(); err != nil {
				return err
			}
		}
	}
}

// mergeDistributed runs the fixed collective sequence that combines
// per-rank results: a barrier (every rank finished), the goal-executed
// census, the goal-value selection, the global max, and the traffic
// totals. The goal value crosses ranks via a selecting reduction — the
// owner contributes its value, everyone else NaN, and the first
// non-NaN wins — so no floating-point arithmetic touches it and the
// result is bit-identical to a single-process run.
func (e *engine) mergeDistributed(tr mpi.Transport) (*mergedResult, error) {
	if err := tr.Barrier(); err != nil {
		return nil, err
	}

	e.goalMu.Lock()
	goalSet, goalVal := e.goalSet, e.goalVal
	maxSet, maxVal := e.maxSet, e.maxVal
	e.goalMu.Unlock()

	executed := 0.0
	if goalSet {
		executed = 1
	}
	n, err := tr.AllReduce(executed, func(a, b float64) float64 { return a + b })
	if err != nil {
		return nil, err
	}
	if n == 0 {
		// Mirrors the in-process "goal tile never executed" failure;
		// all ranks observe the same census, so all fail identically.
		return nil, &goalNeverExecutedError{tile: e.goalTile}
	}

	contrib := math.NaN()
	if goalSet {
		contrib = goalVal
	}
	goal, err := tr.AllReduce(contrib, selectNonNaN)
	if err != nil {
		return nil, err
	}

	contrib = math.NaN()
	if maxSet {
		contrib = maxVal
	}
	max, err := tr.AllReduce(contrib, maxIgnoringNaN)
	if err != nil {
		return nil, err
	}

	msgs, elems := tr.Stats()
	tmsgs, err := tr.AllReduce(float64(msgs), func(a, b float64) float64 { return a + b })
	if err != nil {
		return nil, err
	}
	telems, err := tr.AllReduce(float64(elems), func(a, b float64) float64 { return a + b })
	if err != nil {
		return nil, err
	}
	return &mergedResult{
		goal:     goal,
		max:      max,
		messages: int64(tmsgs),
		elems:    int64(telems),
	}, nil
}

// selectNonNaN keeps the first non-NaN operand: the reduction that
// broadcasts the goal owner's value without arithmetic on it.
func selectNonNaN(a, b float64) float64 {
	if !math.IsNaN(a) {
		return a
	}
	return b
}

// maxIgnoringNaN is max over the ranks that computed any cells
// (non-participants contribute NaN).
func maxIgnoringNaN(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case b > a:
		return b
	default:
		return a
	}
}

// goalNeverExecutedError reports a goal tile no rank executed.
type goalNeverExecutedError struct{ tile []int64 }

func (e *goalNeverExecutedError) Error() string {
	return "goal tile never executed on any rank"
}
