package engine

import (
	"strings"
	"testing"

	"dpgen/internal/balance"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// prepGridSpec is a small 2-D grid problem for the prepare tests.
func prepGridSpec(t *testing.T) *spec.Spec {
	t.Helper()
	sp, err := spec.New("prepgrid", []string{"N"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("right", 1, 0)
	sp.AddDep("down", 0, 1)
	sp.TileWidths = []int64{4, 4}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func prepKernel(c *Ctx) {
	v := 1.0
	if c.DepValid[0] {
		v += 0.5 * c.V[c.DepLoc[0]]
	}
	if c.DepValid[1] {
		v += 0.25 * c.V[c.DepLoc[1]]
	}
	c.V[c.Loc] = v
}

// TestPreparedRunBitIdentical requires Prepared.Run to match a plain
// Run bit for bit, including when one Prepared backs several
// configurations and concurrent runs.
func TestPreparedRunBitIdentical(t *testing.T) {
	tl, err := tiling.New(prepGridSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{30}
	prep, err := Prepare(tl, params, 2, balance.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 3} {
		cfg := Config{Nodes: 2, Threads: threads}
		want, err := Run(tl, prepKernel, params, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prep.Run(prepKernel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value {
			t.Errorf("threads=%d: prepared value %v != plain value %v", threads, got.Value, want.Value)
		}
		var cells, wantCells int64
		for i := range got.Stats {
			cells += got.Stats[i].CellsComputed
			wantCells += want.Stats[i].CellsComputed
		}
		if cells != wantCells {
			t.Errorf("threads=%d: prepared cells %d != plain cells %d", threads, cells, wantCells)
		}
	}

	// Concurrent reuse of one Prepared.
	const par = 4
	errs := make(chan error, par)
	vals := make(chan float64, par)
	for i := 0; i < par; i++ {
		go func() {
			res, err := prep.Run(prepKernel, Config{Nodes: 2, Threads: 2})
			if err != nil {
				errs <- err
				vals <- 0
				return
			}
			errs <- nil
			vals <- res.Value
		}()
	}
	var first float64
	for i := 0; i < par; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		v := <-vals
		if i == 0 {
			first = v
		} else if v != first {
			t.Errorf("concurrent prepared runs disagree: %v != %v", v, first)
		}
	}
}

// TestPreparedRunConfigMismatch requires a clear error when the run
// config contradicts what the program was prepared for.
func TestPreparedRunConfigMismatch(t *testing.T) {
	tl, err := tiling.New(prepGridSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Prepare(tl, []int64{12}, 2, balance.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(prepKernel, Config{Nodes: 3}); err == nil || !strings.Contains(err.Error(), "prepared for 2 nodes") {
		t.Errorf("node mismatch: got %v, want prepared-for-2-nodes error", err)
	}
	if _, err := prep.Run(prepKernel, Config{Nodes: 2, Balance: balance.Hyperplane}); err == nil || !strings.Contains(err.Error(), "balance method") {
		t.Errorf("balance mismatch: got %v, want balance-method error", err)
	}
	if _, err := Prepare(tl, []int64{1, 2}, 1, balance.Prefix); err == nil {
		t.Error("Prepare with wrong param arity: got nil error")
	}
}
