package engine

// Ctx is the per-location view handed to a Kernel, mirroring the symbols
// the generator provides to the user's center-loop code (Section IV-B):
// the state array V, the current location loc, the constant-offset
// dependence locations loc_rj, the dependence validity flags
// is_valid_rj, the original loop variable values, and the parameters.
type Ctx struct {
	// V is the tile's state buffer, including the ghost-cell shell.
	V []float64
	// Loc is the buffer index of the current location.
	Loc int64
	// DepLoc[j] is the buffer index of template dependence j
	// (Loc plus a constant offset — the mapping functions of IV-H).
	DepLoc []int64
	// DepValid[j] reports whether dependence j stays inside the
	// iteration space (the is_valid_rj variables of IV-G). Reading
	// V[DepLoc[j]] with DepValid[j] == false yields garbage, exactly as
	// in the generated C code; the kernel must branch on it.
	DepValid []bool
	// DepStride[j] is the buffer step between consecutive footprint
	// cells of a range dependence (the stride_rj symbol): cell t of the
	// interval lives at DepLoc[j] + t*DepStride[j]. Zero for point
	// dependences. Constant within a run.
	DepStride []int64
	// DepLen[j] is the usable footprint length of dependence j at the
	// current location (the len_rj symbol): the declared count clamped
	// to the longest prefix of footprint cells inside the iteration
	// space, never negative. Point dependences get 1 when valid and 0
	// otherwise, so DepValid[j] == (DepLen[j] > 0) always; range
	// kernels loop t in [0, DepLen[j]) instead of branching on
	// DepValid.
	DepLen []int64
	// X holds the original loop variable values (Vars order).
	X []int64
	// I holds the tile-local indices (Vars order).
	I []int64
	// P holds the parameter values.
	P []int64
}

// Kernel is the center-loop body: it computes V[Loc] from the
// dependencies. It must write only the current location and must not
// assume any particular cell execution order beyond dependence validity
// (Section IV-B). Kernels are called concurrently from many workers on
// different tiles; they must not share mutable state without
// synchronization.
type Kernel func(c *Ctx)
