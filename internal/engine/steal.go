// Per-worker ready-queue shards with randomized work stealing. Each
// worker owns one shard holding two queues: a priority heap of
// dynamically released tiles (boundary and remote-fed work, kept in
// column-major order so communication-causing tiles leave first) and a
// deque of statically released wavefront tiles. The owner pops the heap
// first, then the deque's tail (LIFO — the hottest cache lines); a
// thief scans the other shards from a random start and takes the
// victim's best heap tile or the deque's head (FIFO — the oldest tile,
// the one the owner is least likely to want next). An epoch/sleeper
// protocol parks workers when every shard is empty without losing
// wakeups.

package engine

import (
	"sync"

	"dpgen/internal/obs"
)

// shard is one worker's slice of the node's ready queue.
type shard struct {
	mu   sync.Mutex
	heap tileHeap    // dynamically released tiles, priority order
	dq   []*pendTile // statically released tiles; [dqHead:] is live
	// dqHead indexes the deque's steal end; popping from the head just
	// advances it, and the slice recycles once it empties.
	dqHead int
	// rng seeds the owning worker's victim-selection PRNG (xorshift).
	// Only the owner touches it, so it needs no lock.
	rng uint64
}

// popLocal removes the owner's preferred tile (mu held): best dynamic
// tile first, else the newest static tile.
func (s *shard) popLocal() *pendTile {
	if s.heap.Len() > 0 {
		return s.heap.pop()
	}
	if n := len(s.dq); n > s.dqHead {
		p := s.dq[n-1]
		s.dq[n-1] = nil
		s.dq = s.dq[:n-1]
		if s.dqHead == len(s.dq) {
			s.dq = s.dq[:0]
			s.dqHead = 0
		}
		return p
	}
	return nil
}

// stealOne removes a thief's tile (mu held): the victim's best dynamic
// tile first, else the oldest static tile.
func (s *shard) stealOne() *pendTile {
	if s.heap.Len() > 0 {
		return s.heap.pop()
	}
	if s.dqHead < len(s.dq) {
		p := s.dq[s.dqHead]
		s.dq[s.dqHead] = nil
		s.dqHead++
		if s.dqHead == len(s.dq) {
			s.dq = s.dq[:0]
			s.dqHead = 0
		}
		return p
	}
	return nil
}

// shardOf hashes a tile to its home shard (FNV-1a over the
// coordinates), fixing which worker's queue a dynamic tile lands in.
func (n *node) shardOf(t []int64) int {
	if len(n.shards) <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, v := range t {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return int(h % uint64(len(n.shards)))
}

func xorshift64(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// popAny claims a tile for worker w: its own shard first, then — if the
// node-wide queued count says there is anything to take — the other
// shards in a randomized rotation. Reports whether the tile was stolen.
func (n *node) popAny(w int) (*pendTile, bool) {
	s := &n.shards[w]
	s.mu.Lock()
	p := s.popLocal()
	s.mu.Unlock()
	if p != nil {
		n.qlen.Add(-1)
		n.localPopsA.Add(1)
		return p, false
	}
	ns := len(n.shards)
	if ns == 1 || n.qlen.Load() == 0 {
		return nil, false
	}
	start := int(xorshift64(&s.rng) % uint64(ns-1))
	for i := 0; i < ns-1; i++ {
		v := &n.shards[(w+1+(start+i)%(ns-1))%ns]
		v.mu.Lock()
		p = v.stealOne()
		v.mu.Unlock()
		if p != nil {
			n.qlen.Add(-1)
			n.stealsA.Add(1)
			return p, true
		}
	}
	return nil, false
}

// enqueue makes a tile runnable: emit its ready event, push it into its
// home shard (heap for dynamic tiles, deque for static ones), and wake
// a sleeping worker if there is one. The epoch bump is what makes the
// wakeup race-free: a worker only commits to sleeping if the epoch it
// read before its (empty) scan is still current, so either it sees this
// push's epoch change and rescans, or its registration in sleepers is
// visible here and the signal lands. lane is the caller's trace lane.
func (n *node) enqueue(p *pendTile, lane *obs.Lane) {
	if lane != nil {
		lane.Instant(obs.KReady, obs.TileID(p.tile), -1, 0)
	}
	s := &n.shards[p.group]
	s.mu.Lock()
	if p.static {
		s.dq = append(s.dq, p)
	} else {
		s.heap.push(p)
	}
	s.mu.Unlock()
	atomicMax(&n.peakQueueDepth, n.qlen.Add(1))
	n.epoch.Add(1)
	if n.sleepers.Load() > 0 {
		n.mu.Lock()
		n.cond.Signal()
		n.mu.Unlock()
	}
}
