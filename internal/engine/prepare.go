// Prepared-program reuse: the front half of a run — the static load
// balance and the initial-tile scan, both pure functions of
// (tiling, params, nodes, balance method) — computed once and replayed
// across runs. This is the engine-side entry point behind the dpserve
// compiled-spec cache (dpgen/internal/serve): the expensive polyhedral
// analysis lives in tiling.New, the per-(params, nodes) remainder lives
// here, and a repeat query pays for neither.

package engine

import (
	"fmt"
	"time"

	"dpgen/internal/balance"
	"dpgen/internal/tiling"
)

// Prepared is the reusable front half of a run for one fixed
// (tiling, params, nodes, balance method) tuple: the load-balance
// assignment and the initial-tile set. It is immutable after Prepare
// and safe to share across concurrent Run calls — the same guarantee
// the tiling analysis itself gives.
type Prepared struct {
	tl          *tiling.Tiling
	params      []int64
	nodes       int
	method      balance.Method
	assign      *balance.Assignment
	initial     [][]int64
	ownedTotals []int64 // nil when assign.Tiles is already exact
	balanceTime time.Duration
}

// Prepare computes the reusable front half of a run: the static load
// balance (Section IV-J) and the initial-tile scan (Section IV-K) for
// the given parameter values, node count (minimum 1) and balance
// method. The result can back any number of concurrent Run calls whose
// Config agrees on nodes and balance method.
func Prepare(tl *tiling.Tiling, params []int64, nodes int, method balance.Method) (*Prepared, error) {
	if tl == nil {
		return nil, fmt.Errorf("engine: Prepare with nil tiling")
	}
	if nodes < 1 {
		nodes = 1
	}
	if len(params) != len(tl.Spec.Params) {
		return nil, fmt.Errorf("engine: got %d params, spec has %d", len(params), len(tl.Spec.Params))
	}
	start := time.Now()
	assign, err := balance.Build(tl, params, nodes, method)
	if err != nil {
		return nil, err
	}
	initial, ownedTotals := initialAndTotals(tl, params, assign, nodes)
	return &Prepared{
		tl:          tl,
		params:      append([]int64(nil), params...),
		nodes:       nodes,
		method:      method,
		assign:      assign,
		initial:     initial,
		ownedTotals: ownedTotals,
		balanceTime: time.Since(start),
	}, nil
}

// Run executes the prepared problem with the given kernel. cfg.Nodes
// (or cfg.Transport's size, in distributed mode) and cfg.Balance must
// match the values the program was prepared for; everything else —
// threads, scheduler, priority, buffers, tracing, checkpointing — is
// free to vary per run. Results are bit-identical to an unprepared
// engine.Run with the same configuration.
func (p *Prepared) Run(kernel Kernel, cfg Config) (*Result, error) {
	return run(p.tl, kernel, p.params, cfg, p)
}

// Tiling returns the analysis the program was prepared from.
func (p *Prepared) Tiling() *tiling.Tiling { return p.tl }

// Params returns a copy of the prepared parameter values.
func (p *Prepared) Params() []int64 { return append([]int64(nil), p.params...) }

// Nodes returns the node count the program was prepared for.
func (p *Prepared) Nodes() int { return p.nodes }

// Work returns the balancer's per-node work assignment (iteration-space
// cells per node), for capacity planning and diagnostics.
func (p *Prepared) Work() []int64 { return append([]int64(nil), p.assign.Work...) }

// check validates a resolved run Config against the prepared state;
// cfg must already have defaults applied and the transport size folded
// into Nodes.
func (p *Prepared) check(cfg Config) error {
	if cfg.Nodes != p.nodes {
		return fmt.Errorf("engine: program prepared for %d nodes, config wants %d", p.nodes, cfg.Nodes)
	}
	if cfg.Balance != p.method {
		return fmt.Errorf("engine: program prepared with balance method %v, config wants %v", p.method, cfg.Balance)
	}
	return nil
}

// initialAndTotals computes the initial (no in-space producer) tile set
// and, when the fast boundary-band scan cannot prove its totals, the
// exact per-node owned-tile counts via a full tile-space scan.
// ownedTotals is nil when assign.Tiles is already exact (the fast path
// succeeded).
func initialAndTotals(tl *tiling.Tiling, params []int64, assign *balance.Assignment, nodes int) (initial [][]int64, ownedTotals []int64) {
	initial, _, err := tl.InitialTilesFast(params)
	if err == nil {
		return initial, nil
	}
	ownedTotals = make([]int64, nodes)
	tl.ForEachTile(params, func(t []int64) bool {
		ownedTotals[assign.Owner(t)]++
		return true
	})
	initial, _ = tl.InitialTiles(params)
	return initial, ownedTotals
}
