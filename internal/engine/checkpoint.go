// Fault-tolerance checkpoints: the on-disk snapshot a rank writes
// periodically (Config.Checkpoint) and restores from after a crash
// (Checkpoint.Resume). A checkpoint records exactly the rank's durable
// progress — the executed-tile set, the buffered dependence edges of
// tiles still waiting or queued (the O(n^{d-1}) live state), and the
// goal/max accumulators. It is encoded only while the transport reports
// zero unacknowledged sends and the node lock is held, so every tile it
// records as executed has had its outgoing edges received by their
// consumers; a tile missing from the checkpoint simply re-executes and
// re-sends on resume, and the receivers' duplicate-edge filter keeps
// every cell computed exactly once. Correctness therefore never depends
// on how fresh (or whether) a checkpoint file is.
//
// Format (little-endian, "DPCKPT1\n" magic, trailing FNV-1a checksum):
//
//	magic | rank nodes d nd | params | ownedTotal executed |
//	flags goalVal maxVal | executedKeys | tiles{coords, edges{dep,data}} |
//	fnv1a(everything above)

package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"time"

	"dpgen/internal/mpi"
	"dpgen/internal/obs"
)

const ckptMagic = "DPCKPT1\n"

// CheckpointPath returns the checkpoint file a rank writes inside dir:
// dir/rank-<rank>.ckpt. dprun's supervisor uses it to point a restarted
// rank at its own snapshot.
func CheckpointPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank-%d.ckpt", rank))
}

// checkpoint is the decoded in-memory form of one rank's snapshot.
type checkpoint struct {
	rank, nodes, d, nd int
	params             []int64
	ownedTotal         int64
	executed           int64
	goalSet            bool
	goalVal            float64
	maxSet             bool
	maxVal             float64
	executedKeys       []uint64
	tiles              []ckptTile
}

// ckptTile is one pending or started tile with its buffered edges.
type ckptTile struct {
	tile  []int64
	edges []ckptEdge
}

// ckptEdge is one buffered dependence edge.
type ckptEdge struct {
	dep  int
	data []float64
}

// encodeCheckpoint serializes the node's durable state. The caller
// holds stripes[0].mu (fault tolerance runs the pending table on one
// stripe, so that lock covers the pending/started/executedSet maps) and
// n.mu; goalMu is taken briefly inside. No code path acquires any of
// them in the reverse order.
func (n *node) encodeCheckpoint() []byte {
	e := n.eng
	b := make([]byte, 0, 64+16*len(n.executedSet))
	b = append(b, ckptMagic...)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	i64(int64(n.id))
	i64(int64(e.cfg.Nodes))
	d := len(e.tl.Spec.Vars)
	i64(int64(d))
	i64(int64(len(e.tl.Spec.Deps)))
	i64(int64(len(e.params)))
	for _, p := range e.params {
		i64(p)
	}
	i64(n.ownedTotal)
	i64(n.executed)

	e.goalMu.Lock()
	var flags uint64
	if e.goalSet {
		flags |= 1
	}
	if e.maxSet {
		flags |= 2
	}
	goalVal, maxVal := e.goalVal, e.maxVal
	e.goalMu.Unlock()
	u64(flags)
	f64(goalVal)
	f64(maxVal)

	i64(int64(len(n.executedSet)))
	for k := range n.executedSet {
		u64(k)
	}

	// Buffered edges live on pending tiles (some dependences missing)
	// and started tiles (complete, but not yet unpacked and executed).
	ntiles := 0
	for _, p := range n.stripes[0].pending {
		if len(p.edges) > 0 {
			ntiles++
		}
	}
	for _, p := range n.started {
		if len(p.edges) > 0 {
			ntiles++
		}
	}
	i64(int64(ntiles))
	emit := func(p *pendTile) {
		if len(p.edges) == 0 {
			return
		}
		for _, c := range p.tile {
			i64(c)
		}
		i64(int64(len(p.edges)))
		for _, ed := range p.edges {
			i64(int64(ed.dep))
			i64(int64(len(ed.data)))
			for _, v := range ed.data {
				f64(v)
			}
		}
	}
	for _, p := range n.stripes[0].pending {
		emit(p)
	}
	for _, p := range n.started {
		emit(p)
	}

	h := fnv.New64a()
	h.Write(b)
	u64(h.Sum64())
	return b
}

// writeCheckpointFile writes the blob atomically: temp file in the same
// directory, fsync, rename over the final path. A crash mid-write
// leaves the previous checkpoint intact.
func writeCheckpointFile(path string, blob []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// ckptReader is a bounds-checked cursor over an encoded checkpoint.
type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("engine: truncated checkpoint")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *ckptReader) i64() int64   { return int64(r.u64()) }
func (r *ckptReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *ckptReader) count() (int, bool) {
	v := r.i64()
	if r.err == nil && (v < 0 || v > int64(len(r.b))) {
		r.err = fmt.Errorf("engine: corrupt checkpoint count %d", v)
	}
	return int(v), r.err == nil
}

// loadCheckpoint reads and validates one checkpoint file. A missing
// file is not an error: it returns (nil, nil) and the rank resumes from
// scratch (peers redeliver everything it needs).
func loadCheckpoint(path string) (*checkpoint, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(blob) < len(ckptMagic)+8 || string(blob[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("engine: %s is not a checkpoint file", path)
	}
	body, sum := blob[:len(blob)-8], binary.LittleEndian.Uint64(blob[len(blob)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("engine: checkpoint %s failed its checksum", path)
	}
	r := &ckptReader{b: body[len(ckptMagic):]}
	ck := &checkpoint{
		rank:  int(r.i64()),
		nodes: int(r.i64()),
		d:     int(r.i64()),
		nd:    int(r.i64()),
	}
	if np, ok := r.count(); ok {
		ck.params = make([]int64, np)
		for i := range ck.params {
			ck.params[i] = r.i64()
		}
	}
	ck.ownedTotal = r.i64()
	ck.executed = r.i64()
	flags := r.u64()
	ck.goalSet = flags&1 != 0
	ck.goalVal = r.f64()
	ck.maxSet = flags&2 != 0
	ck.maxVal = r.f64()
	if nk, ok := r.count(); ok {
		ck.executedKeys = make([]uint64, nk)
		for i := range ck.executedKeys {
			ck.executedKeys[i] = r.u64()
		}
	}
	if nt, ok := r.count(); ok {
		ck.tiles = make([]ckptTile, 0, nt)
		for i := 0; i < nt && r.err == nil; i++ {
			t := ckptTile{tile: make([]int64, ck.d)}
			for k := range t.tile {
				t.tile[k] = r.i64()
			}
			ne, _ := r.count()
			for j := 0; j < ne && r.err == nil; j++ {
				ed := ckptEdge{dep: int(r.i64())}
				nv, _ := r.count()
				ed.data = make([]float64, nv)
				for v := range ed.data {
					ed.data[v] = r.f64()
				}
				t.edges = append(t.edges, ed)
			}
			ck.tiles = append(ck.tiles, t)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("engine: decode %s: %w", path, r.err)
	}
	return ck, nil
}

// loadResume reads the node's checkpoint (if any), validates it against
// this run's configuration, and restores the executed-tile set and the
// goal/max accumulators. The buffered edges are replayed later, by
// replayCheckpoint, once the ready queues are seeded.
func (n *node) loadResume() error {
	e := n.eng
	ck, err := loadCheckpoint(n.ckptPath)
	if err != nil || ck == nil {
		return err
	}
	switch {
	case ck.rank != n.id:
		err = fmt.Errorf("rank %d, want %d", ck.rank, n.id)
	case ck.nodes != e.cfg.Nodes:
		err = fmt.Errorf("%d ranks, want %d", ck.nodes, e.cfg.Nodes)
	case ck.d != len(e.tl.Spec.Vars) || ck.nd != len(e.tl.Spec.Deps):
		err = fmt.Errorf("%d vars/%d deps, want %d/%d",
			ck.d, ck.nd, len(e.tl.Spec.Vars), len(e.tl.Spec.Deps))
	case len(ck.params) != len(e.params) || !sameTile(ck.params, e.params):
		err = fmt.Errorf("params %v, want %v", ck.params, e.params)
	case ck.ownedTotal != n.ownedTotal:
		err = fmt.Errorf("%d owned tiles, want %d", ck.ownedTotal, n.ownedTotal)
	}
	if err != nil {
		return fmt.Errorf("engine: checkpoint %s is from a different run (%w)", n.ckptPath, err)
	}
	for _, k := range ck.executedKeys {
		n.executedSet[k] = struct{}{}
	}
	n.executed = ck.executed
	e.goalMu.Lock()
	if ck.goalSet {
		e.goalVal = ck.goalVal
		e.goalSet = true
	}
	if ck.maxSet && (!e.maxSet || ck.maxVal > e.maxVal) {
		e.maxVal = ck.maxVal
		e.maxSet = true
	}
	e.goalMu.Unlock()
	n.resumeCk = ck
	return nil
}

// replayCheckpoint re-delivers the checkpoint's buffered edges into the
// pending table, rebuilding each stored tile's dependence state exactly
// as it was: edges from producers this rank already executed arrive
// only here (those producers will not re-run), while edges from
// not-yet-executed producers arrive again later and are dropped by the
// duplicate filter. Runs on the seeding goroutine, before workers start.
func (n *node) replayCheckpoint(lane *obs.Lane) {
	ck := n.resumeCk
	var t0 int64
	if lane != nil {
		t0 = lane.Now()
	}
	ds := newDelivState(n.eng)
	var edges int64
	for _, t := range ck.tiles {
		for _, ed := range t.edges {
			data := mpi.GetData(len(ed.data))
			copy(data, ed.data)
			n.deliver(t.tile, ed.dep, data, false, lane, ds)
			edges++
		}
	}
	if lane != nil {
		lane.Span(obs.KRecover, "", -1, edges, t0)
	}
}

// quiescer is the optional transport facet the checkpointer consults:
// zero pending (unacknowledged) sends means every issued edge has been
// received, which is what makes the executed-tile frontier durable.
// Transports without the method (the in-memory communicator, whose
// deliveries are synchronous) are always quiescent.
type quiescer interface {
	PendingSends() int
}

// checkpointer is the per-node background loop that writes due
// checkpoints. It exists so waiting for transport quiescence happens
// off the worker hot path: a tile's completion instant almost always
// has that tile's own sends still unacknowledged, so an inline check at
// completion would nearly always skip on sender-heavy ranks. Polling at
// a millisecond cadence instead catches the short quiescent windows
// between send bursts. The loop exits after the node is marked done,
// with one final attempt so the on-disk snapshot reflects the finished
// frontier.
func (n *node) checkpointer(lane *obs.Lane) {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		n.mu.Lock()
		done := n.done
		due := n.ckptDue && !n.crashed
		n.mu.Unlock()
		if due {
			n.maybeCheckpoint(lane)
		}
		if done {
			return
		}
		<-tick.C
	}
}

// maybeCheckpoint writes a checkpoint if one is due (ckptEvery executed
// tiles elapsed) and the transport is quiescent. Encoding happens under
// the node lock; the file write does not. A failed or skipped write
// just leaves the checkpoint due — the checkpointer retries.
func (n *node) maybeCheckpoint(lane *obs.Lane) {
	st0 := &n.stripes[0]
	st0.mu.Lock()
	n.mu.Lock()
	if !n.ckptDue || n.ckptBusy || n.crashed {
		n.mu.Unlock()
		st0.mu.Unlock()
		return
	}
	if q, ok := n.rank.(quiescer); ok && q.PendingSends() != 0 {
		n.mu.Unlock()
		st0.mu.Unlock()
		return
	}
	n.ckptBusy = true
	n.ckptDue = false
	var t0 int64
	if lane != nil {
		t0 = lane.Now()
	}
	blob := n.encodeCheckpoint()
	n.mu.Unlock()
	st0.mu.Unlock()

	err := writeCheckpointFile(n.ckptPath, blob)
	n.mu.Lock()
	n.ckptBusy = false
	if err == nil {
		n.st.Checkpoints++
		n.st.CheckpointBytes += int64(len(blob))
	} else {
		n.ckptDue = true
	}
	n.mu.Unlock()
	if err == nil && lane != nil {
		lane.Span(obs.KCheckpoint, "", -1, int64(len(blob)), t0)
	}
}
