package engine

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// encodeTestCheckpoint builds a checkpoint blob for the given decoded
// form, independently of encodeCheckpoint, so the decoder is tested
// against the documented format rather than against the encoder.
func encodeTestCheckpoint(ck *checkpoint) []byte {
	b := []byte(ckptMagic)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	i64(int64(ck.rank))
	i64(int64(ck.nodes))
	i64(int64(ck.d))
	i64(int64(ck.nd))
	i64(int64(len(ck.params)))
	for _, p := range ck.params {
		i64(p)
	}
	i64(ck.ownedTotal)
	i64(ck.executed)
	var flags uint64
	if ck.goalSet {
		flags |= 1
	}
	if ck.maxSet {
		flags |= 2
	}
	u64(flags)
	f64(ck.goalVal)
	f64(ck.maxVal)
	i64(int64(len(ck.executedKeys)))
	for _, k := range ck.executedKeys {
		u64(k)
	}
	i64(int64(len(ck.tiles)))
	for _, t := range ck.tiles {
		for _, c := range t.tile {
			i64(c)
		}
		i64(int64(len(t.edges)))
		for _, ed := range t.edges {
			i64(int64(ed.dep))
			i64(int64(len(ed.data)))
			for _, v := range ed.data {
				f64(v)
			}
		}
	}
	h := fnv.New64a()
	h.Write(b)
	u64(h.Sum64())
	return b
}

func TestCheckpointRoundtrip(t *testing.T) {
	want := &checkpoint{
		rank: 1, nodes: 2, d: 2, nd: 3,
		params:       []int64{64, 64},
		ownedTotal:   40,
		executed:     17,
		goalSet:      true,
		goalVal:      3.25,
		maxSet:       true,
		maxVal:       9.5,
		executedKeys: []uint64{7, 11, 42},
		tiles: []ckptTile{
			{tile: []int64{3, 5}, edges: []ckptEdge{
				{dep: 0, data: []float64{1, 2.5}},
				{dep: 2, data: []float64{-4}},
			}},
			{tile: []int64{0, 9}, edges: []ckptEdge{
				{dep: 1, data: []float64{0.125, 8, 16}},
			}},
		},
	}
	path := CheckpointPath(t.TempDir(), want.rank)
	if err := writeCheckpointFile(path, encodeTestCheckpoint(want)); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.rank != want.rank || got.nodes != want.nodes || got.d != want.d || got.nd != want.nd ||
		got.ownedTotal != want.ownedTotal || got.executed != want.executed ||
		got.goalSet != want.goalSet || got.goalVal != want.goalVal ||
		got.maxSet != want.maxSet || got.maxVal != want.maxVal {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.params) != 2 || got.params[0] != 64 || got.params[1] != 64 {
		t.Errorf("params = %v", got.params)
	}
	if len(got.executedKeys) != 3 || got.executedKeys[2] != 42 {
		t.Errorf("executedKeys = %v", got.executedKeys)
	}
	if len(got.tiles) != 2 {
		t.Fatalf("tiles = %d, want 2", len(got.tiles))
	}
	t0 := got.tiles[0]
	if t0.tile[0] != 3 || t0.tile[1] != 5 || len(t0.edges) != 2 ||
		t0.edges[0].dep != 0 || t0.edges[0].data[1] != 2.5 ||
		t0.edges[1].dep != 2 || t0.edges[1].data[0] != -4 {
		t.Errorf("tile 0 = %+v", t0)
	}
	if got.tiles[1].edges[0].data[2] != 16 {
		t.Errorf("tile 1 = %+v", got.tiles[1])
	}

	// The atomic write must not leave its temp file behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Errorf("stray temp file %s after writeCheckpointFile", e.Name())
		}
	}
}

// TestCheckpointMissingFile: a rank with no snapshot resumes from
// scratch, so a missing file is (nil, nil), not an error.
func TestCheckpointMissingFile(t *testing.T) {
	ck, err := loadCheckpoint(CheckpointPath(t.TempDir(), 0))
	if ck != nil || err != nil {
		t.Fatalf("missing checkpoint = (%v, %v), want (nil, nil)", ck, err)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	blob := encodeTestCheckpoint(&checkpoint{rank: 0, nodes: 1, d: 1, nd: 1, params: []int64{8}})

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		errPart string
	}{
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, "not a checkpoint"},
		{"flipped-bit", func(b []byte) []byte { b[len(ckptMagic)+3] ^= 0x40; return b }, "checksum"},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-9] }, "checksum"},
		{"too-short", func(b []byte) []byte { return b[:4] }, "not a checkpoint"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".ckpt")
			mutated := tc.mutate(append([]byte(nil), blob...))
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			ck, err := loadCheckpoint(path)
			if err == nil {
				t.Fatalf("corrupt checkpoint decoded: %+v", ck)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q lacks %q", err, tc.errPart)
			}
		})
	}

	// An absurd element count inside a checksummed body must still be
	// rejected by the bounds-checked reader, not crash the decoder.
	evil := []byte(ckptMagic)
	for i := 0; i < 4; i++ {
		evil = binary.LittleEndian.AppendUint64(evil, 0)
	}
	evil = binary.LittleEndian.AppendUint64(evil, 1<<40) // params count
	h := fnv.New64a()
	h.Write(evil)
	evil = binary.LittleEndian.AppendUint64(evil, h.Sum64())
	path := filepath.Join(dir, "evil-count.ckpt")
	if err := os.WriteFile(path, evil, 0o644); err != nil {
		t.Fatal(err)
	}
	if ck, err := loadCheckpoint(path); err == nil {
		t.Fatalf("oversized count decoded: %+v", ck)
	}
}
