// Hybrid static/dynamic tile scheduling. The dynamic half is the
// paper's Section V model — per-tile dependence counting in a pending
// table — with the table striped by tile key so concurrent deliveries
// rarely share a lock. The static half removes even that: tiles whose
// whole dependence pattern is known at partition time (interior tiles
// with every producer on the same node) are laid out in wavefront-level
// order up front, and a single atomic counter per level replaces their
// pending-table entries. When the counter for the frontier level drains
// to zero the next level's tiles are released wholesale into the
// per-worker deques of steal.go. Boundary tiles and tiles fed by remote
// edges keep full dynamic counting, and keep their column-major
// priority, so the Figure 5 communication-first ordering still governs
// everything that talks to other nodes.

package engine

import (
	"sync"
	"sync/atomic"

	"dpgen/internal/obs"
)

// Sched selects the engine's tile scheduler (Config.Sched).
type Sched int

const (
	// SchedHybrid (the default) classifies tiles at partition time:
	// interior tiles whose producers are all node-local execute in a
	// precomputed wavefront order gated by one atomic counter per
	// level, while boundary and remote-fed tiles go through dynamic
	// dependence counting. Falls back to pure-dynamic scheduling when
	// the fast path is disabled, fault tolerance is on (a resumed
	// rank's frontier invalidates the precomputed order), or each node
	// runs a single worker (no synchronization to remove).
	SchedHybrid Sched = iota
	// SchedDynamic forces every tile through dynamic dependence
	// counting in the striped pending table. Results are bit-identical
	// with SchedHybrid; the knob exists for verification and for
	// measuring what the static phase buys.
	SchedDynamic
)

// String names the scheduler for logs and flag output.
func (s Sched) String() string {
	switch s {
	case SchedHybrid:
		return "hybrid"
	case SchedDynamic:
		return "dynamic"
	}
	return "unknown"
}

// pstripe is one stripe of the dynamic pending table. Deliveries hash
// their consumer's integer key to a stripe, so two workers delivering
// edges for different tiles almost never contend. Fault tolerance
// collapses the table to a single stripe: the dedup maps
// (executedSet/started) need one lock covering every per-tile
// transition, and recovery runs are not scheduler-bound.
type pstripe struct {
	mu      sync.Mutex
	pending map[uint64]*pendTile
}

// stripeFor returns the pending-table stripe owning an integer tile key.
func (n *node) stripeFor(k uint64) *pstripe {
	return &n.stripes[k&n.smask]
}

// maxStaticLevels bounds the per-level counter array; a level range
// beyond it (degenerate chain-shaped tile spaces) just skips the static
// phase rather than allocating a huge array.
const maxStaticLevels = 1 << 22

// nodeSched is a node's static-phase state: the wavefront-ordered
// interior tiles and the per-level release counters. Built once before
// workers launch; idx and levels are read-only afterwards, remain is
// atomic, and frontier/rr are guarded by fmu.
type nodeSched struct {
	minLevel int64
	// remain[l] counts the node's not-yet-executed owned tiles at level
	// minLevel+l — every owned tile, static or dynamic, because a static
	// tile at level L may consume edges from a dynamic (boundary) tile
	// at any lower level.
	remain []atomic.Int64
	// levels[l] holds the static tiles of level minLevel+l in priority
	// order, awaiting release.
	levels [][]*pendTile
	// idx maps a static tile's integer key to its entry, so deliver can
	// write producer edges straight into their slot with no lock: each
	// slot has exactly one producer, and the frontier can only release
	// the tile after that producer finished.
	idx map[uint64]*pendTile

	staticTotal int64

	fmu      sync.Mutex
	frontier int // next unreleased level index (≤ len(levels))
	rr       int // round-robin shard cursor for released tiles
}

// staticEnabled reports whether the configuration admits a static
// phase. Fault tolerance disables it because a resumed rank re-executes
// only part of each level, and DisableFastPath disables it because the
// classification is exactly the interior-tile fast path's. Elastic
// membership disables it because ownership — the basis of the
// classification — is no longer fixed at partition time. A single
// worker per node disables it too: the phase exists to remove per-tile
// synchronization between workers, and with one worker there is none —
// only the classification scan's cost would remain (measurable on
// scan-heavy cases like lcs2@paper, ~4k tiles).
func (e *engine) staticEnabled() bool {
	return e.cfg.Sched == SchedHybrid && e.cfg.Threads > 1 &&
		!e.cfg.DisableFastPath && e.cfg.Checkpoint.Dir == "" &&
		!e.cfg.Elastic.Enabled
}

// buildStatic runs the partition-time classification scan for every
// local node: one pass over the tile space accumulates the per-level
// owned-tile counters, and interior tiles whose producers all live on
// the same node become static entries in wavefront order. Runs on the
// seeding goroutine before workers start; releases any leading levels
// (nodes whose lowest levels hold no owned tiles) at the end.
func (e *engine) buildStatic(nodeByRank []*node) {
	if !e.staticEnabled() {
		return
	}
	lo, hi := e.tl.TileLevelBounds(e.params)
	if hi < lo || hi-lo+1 > maxStaticLevels {
		return
	}
	nlv := int(hi - lo + 1)
	for _, n := range nodeByRank {
		if n != nil {
			n.sd = &nodeSched{
				minLevel: lo,
				remain:   make([]atomic.Int64, nlv),
				levels:   make([][]*pendTile, nlv),
				idx:      make(map[uint64]*pendTile),
			}
		}
	}
	d := len(e.tl.Spec.Vars)
	ndeps := len(e.tl.TileDeps)
	probe := e.tl.NewProbe(e.params)
	prod := make([]int64, d)
	single := e.cfg.Nodes == 1
	e.tl.ForEachTileLevel(e.params, func(t []int64, level int64, interior bool) bool {
		owner := 0
		if !single {
			owner = e.assign.Owner(t)
		}
		n := nodeByRank[owner]
		if n == nil {
			return true
		}
		sd := n.sd
		li := int(level - lo)
		sd.remain[li].Add(1)
		if !interior {
			return true
		}
		// Static iff the tile has producers (initial tiles are already
		// seeded) and every producer is owned by this node. Remote
		// edges can then never target it, so its edge slots have
		// exactly one local writer each. With a single node the
		// same-owner half is vacuous — only the producer count matters.
		nprod := 0
		static := true
		for j := 0; j < ndeps; j++ {
			off := e.tl.TileDeps[j].Offset
			for k := 0; k < d; k++ {
				prod[k] = t[k] + off[k]
			}
			if !probe.InSpace(prod) {
				continue
			}
			nprod++
			if !single && e.assign.Owner(prod) != owner {
				static = false
				break
			}
		}
		if !static || nprod == 0 {
			return true
		}
		p := &pendTile{
			tile:   append([]int64(nil), t...),
			key:    make([]int64, len(e.keyDims)),
			edges:  make([]edge, ndeps),
			level:  level,
			static: true,
		}
		e.makeKey(p.tile, p.key)
		sd.levels[li] = append(sd.levels[li], p)
		sd.idx[e.intKey(t)] = p
		sd.staticTotal++
		return true
	})
	for _, n := range nodeByRank {
		if n != nil {
			n.sd.advance(n, n.initLane())
		}
	}
}

// advance releases every fully unblocked level. A static tile's
// producers all sit at strictly lower levels on the same node, so once
// every level below f has retired, level f's static tiles are safe to
// run: advance releases the frontier level's tiles round-robin into the
// worker deques, then moves the frontier past each level whose
// owned-tile counter has drained. Any goroutine whose decrement zeroes
// a counter calls advance; frontier movement is serialized by fmu, and
// only the zeroing of the *frontier* level can unblock it, so no
// release is ever missed (a released level is nilled, making re-entry
// idempotent). lane is the caller's trace lane.
func (sd *nodeSched) advance(n *node, lane *obs.Lane) {
	sd.fmu.Lock()
	for sd.frontier < len(sd.remain) {
		for _, p := range sd.levels[sd.frontier] {
			p.seq = n.seqA.Add(1)
			p.group = sd.rr % len(n.shards)
			sd.rr++
			n.enqueue(p, lane)
		}
		sd.levels[sd.frontier] = nil
		if sd.remain[sd.frontier].Load() != 0 {
			break
		}
		sd.frontier++
	}
	sd.fmu.Unlock()
}

// tileRetired is execTile's scheduler epilogue: the executed tile comes
// off its level counter, and a drained frontier level releases the next
// wavefront. No-op on nodes without a static phase.
func (n *node) tileRetired(p *pendTile, lane *obs.Lane) {
	sd := n.sd
	if sd == nil {
		return
	}
	if sd.remain[p.level-sd.minLevel].Add(-1) == 0 {
		sd.advance(n, lane)
	}
}
