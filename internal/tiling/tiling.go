// Package tiling performs the core analyses of the program generator
// (Sections IV-E through IV-L of the paper): it extends the iteration
// space with tile and local indices (x_k = i_k + w_k * t_k), derives the
// tile space and the per-tile local iteration space with Fourier–Motzkin
// elimination, determines tile-to-tile dependencies from the template
// vectors, builds template-recurrence validity functions, lays out tile
// memory with ghost-cell shells and constant-offset mapping functions,
// and constructs the pack/unpack index sets for every tile edge.
package tiling

import (
	"fmt"
	"sync"

	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
	"dpgen/internal/spec"
)

// TileDep is a dependence between tiles: the consumer tile t reads data
// produced by tile t + Offset. PackNest scans the producer-local cells of
// the edge slab, in an order shared exactly by packing and unpacking
// (Section IV-I).
type TileDep struct {
	// Offset has one entry per variable, each in {-1, 0, +1}.
	Offset []int64
	// PackNest scans the producer's slab cells; its space treats the
	// parameters and the producer's tile indices as parameters and the
	// local indices as loop variables.
	PackNest *loopgen.Nest
}

// Tiling is the complete generation-time analysis of a spec.
type Tiling struct {
	Spec *spec.Spec

	// Per-variable geometry, indexed like Spec.Vars.
	Widths   []int64 // tile width w_k
	GhostLo  []int64 // ghost shell below (max negative template reach)
	GhostHi  []int64 // ghost shell above (max positive template reach)
	Alloc    []int64 // allocated extent: GhostLo + Widths + GhostHi
	Strides  []int64 // memory stride per variable (innermost loop var = 1)
	BaseOff  int64   // sum GhostLo_k * Strides_k, the offset of local origin
	AllocLen int64   // product of Alloc: per-tile buffer length

	// DepLocOff[j] is the constant part of template dependence j's
	// memory offset relative to the current location (the mapping
	// functions of IV-H). For variable-distance templates the full
	// offset is parameter-dependent: runtimes use DepLocOffAt.
	DepLocOff []int64

	// DepLocExpr[j] and DepStrideExpr[j] are the base and range-step
	// memory offsets of dependence j as parameter-only expressions over
	// the spec space (see extended.go). LenExprs[j] is range dependence
	// j's length form (parameters and loop variables); RangeChecks[j]
	// its per-constraint footprint prefix checks. LenMax[j] bounds the
	// length over the whole space and parameter bounds.
	DepLocExpr    []lin.Expr
	DepStrideExpr []lin.Expr
	LenExprs      []lin.Expr
	RangeChecks   [][]RangeCheck
	LenMax        []int64

	// Validity[j] lists the iteration-space constraints that template
	// dependence j can violate, pre-shifted by the template vector
	// (Section IV-G): dependence j is valid at x iff every listed
	// inequality holds at (params, x).
	Validity [][]lin.Ineq

	// TileSys is the tile space over (params | t) (Section IV-E).
	TileSys *lin.System
	// TileNest scans the tile space in loop order.
	TileNest *loopgen.Nest
	// LocalNest scans a tile's cells; its space treats params and tile
	// indices as parameters and local indices i as loop variables.
	LocalNest *loopgen.Nest

	// TileDeps are the distinct tile-to-tile dependence offsets
	// (Section IV-F), in a deterministic order.
	TileDeps []TileDep

	// InteriorSys is the tile space shrunk by the dependence shell: a
	// tile satisfying it has every cell of its full rectangle inside the
	// iteration space and every template dependence valid at every cell,
	// so the runtime may use the dense fast path (see fastpath.go).
	InteriorSys *lin.System
	// Dense is the precompiled interior-tile cell nest, in loop order.
	Dense []DenseLevel
	// InteriorEdgeSize[j] is the cell count of tile dependence j's full
	// edge slab — the exact edge size for interior producers and an
	// upper bound for boundary producers.
	InteriorEdgeSize []int64

	// ExecDirs gives the cell iteration direction per variable: -1 when
	// templates are positive in that dimension (loops run from the upper
	// bound down, Fig 3), +1 otherwise. Indexed like Spec.Vars.
	ExecDirs []int

	tileSpace     *lin.Space    // (params | t...) in Vars order
	localSpace    *lin.Space    // (params, t... | i...) — params+tiles as parameters
	orderIdx      []int         // loop order as indexes into Spec.Vars
	lazyMu        sync.Mutex    // guards lazy nest construction below
	lbNest        *loopgen.Nest // cached load-balancing space scan
	slabNest      *loopgen.Nest // cached slab work counter
	slabMu        sync.Mutex
	slabMemo      map[string]int64 // memoized slab work per (params, lb)
	bandNests     []*loopgen.Nest  // boundary band scans for InitialTilesFast
	slabTilesNest *loopgen.Nest    // per-slab tile counter
	interiorScan  []denseScan      // dense edge-slab scans per tile dep
	dimNests      []*loopgen.Nest  // per-dimension tile bounds (integer keys)
}

// tName and iName build the internal tile/local index names. The "$"
// avoids collisions: it cannot appear in user identifiers.
func tName(v string) string { return "t$" + v }
func iName(v string) string { return "i$" + v }

// New analyzes the spec and builds the full tiling. The spec must
// validate and its iteration space must be bounded in every variable
// given the parameters.
func New(sp *spec.Spec) (*Tiling, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	d := len(sp.Vars)
	tl := &Tiling{Spec: sp, Widths: sp.Widths()}
	// Ghost shells are sized from the dependence footprint hull over
	// the declared parameter bounds: for range templates the footprint
	// extends to LenMax-1 steps along the direction vector.
	lmax, err := tl.depLenMaxima()
	if err != nil {
		return nil, err
	}
	tl.LenMax = lmax
	hull, err := sp.TemplateHull(lmax)
	if err != nil {
		return nil, err
	}
	tl.GhostLo, tl.GhostHi = hull.Lo, hull.Hi

	// Loop order as variable indexes.
	order := sp.Order()
	tl.orderIdx = make([]int, d)
	for i, v := range order {
		tl.orderIdx[i] = sp.VarIndex(v)
	}

	// Memory layout: the innermost loop variable gets stride 1.
	tl.Alloc = make([]int64, d)
	for k := 0; k < d; k++ {
		tl.Alloc[k] = tl.GhostLo[k] + tl.Widths[k] + tl.GhostHi[k]
	}
	tl.Strides = make([]int64, d)
	stride := int64(1)
	for i := d - 1; i >= 0; i-- {
		k := tl.orderIdx[i]
		tl.Strides[k] = stride
		stride = ints.MulChecked(stride, tl.Alloc[k])
	}
	tl.AllocLen = stride
	for k := 0; k < d; k++ {
		tl.BaseOff += tl.GhostLo[k] * tl.Strides[k]
	}
	tl.DepLocOff = make([]int64, len(sp.Deps))
	for j, dep := range sp.Deps {
		var off int64
		for k, r := range dep.Vec {
			off += r * tl.Strides[k]
		}
		tl.DepLocOff[j] = off
	}

	// Execution direction: positive template reach means dependencies sit
	// at larger coordinates, so cells iterate downward in that dimension.
	tl.ExecDirs = make([]int, d)
	for k := 0; k < d; k++ {
		if tl.GhostHi[k] > 0 {
			tl.ExecDirs[k] = -1
		} else {
			tl.ExecDirs[k] = 1
		}
	}

	if err := tl.buildSpaces(); err != nil {
		return nil, err
	}
	if err := tl.buildValidity(); err != nil {
		return nil, err
	}
	tl.buildDepGeometry()
	if err := tl.buildTileDeps(hull); err != nil {
		return nil, err
	}
	if err := tl.buildFastPath(); err != nil {
		return nil, err
	}
	// The boundary band nests for initial tile generation (Section IV-K)
	// are part of the generation-time analysis; building them here keeps
	// the runtime's serial startup to the scan itself. A failure is not
	// fatal — InitialTilesFast reports it and callers fall back to the
	// exhaustive scan.
	_ = tl.buildBandNests()
	return tl, nil
}

// extended constructs the extended system over (params | x, t, i) with
// x_k substituted by i_k + w_k*t_k and the local ranges 0 <= i_k < w_k
// added (Section IV-E). All x coefficients are zero in the result.
func (tl *Tiling) extended() (*lin.System, error) {
	sp := tl.Spec
	d := len(sp.Vars)
	tNames := make([]string, d)
	iNames := make([]string, d)
	for k, v := range sp.Vars {
		tNames[k], iNames[k] = tName(v), iName(v)
	}
	extSpace, err := lin.NewSpace(sp.Params,
		append(append(append([]string{}, sp.Vars...), tNames...), iNames...))
	if err != nil {
		return nil, err
	}
	ext := sp.System().Lift(extSpace)
	for k, v := range sp.Vars {
		// x_k := i_k + w_k * t_k
		rep := lin.Var(extSpace, iNames[k]).Add(lin.Term(extSpace, tl.Widths[k], tNames[k]))
		ext = ext.Subst(v, rep)
		// 0 <= i_k <= w_k - 1
		ext.AddGE(lin.Var(extSpace, iNames[k]), lin.Zero(extSpace))
		ext.AddLE(lin.Var(extSpace, iNames[k]), lin.Const(extSpace, tl.Widths[k]-1))
	}
	return ext, nil
}

// buildSpaces derives the tile space and the local iteration space from
// the extended system.
func (tl *Tiling) buildSpaces() error {
	sp := tl.Spec
	d := len(sp.Vars)
	tNames := make([]string, d)
	iNames := make([]string, d)
	for k, v := range sp.Vars {
		tNames[k], iNames[k] = tName(v), iName(v)
	}
	ext, err := tl.extended()
	if err != nil {
		return err
	}

	// Tile space: eliminate local indices, project onto (params | t).
	elim, err := fm.EliminateAll(ext, iNames, fm.Options{})
	if err != nil {
		return fmt.Errorf("tiling: tile space: %w", err)
	}
	tl.tileSpace, err = lin.NewSpace(sp.Params, tNames)
	if err != nil {
		return err
	}
	tl.TileSys, err = elim.Project(tl.tileSpace)
	if err != nil {
		return fmt.Errorf("tiling: tile space projection: %w", err)
	}
	tOrder := make([]string, d)
	for i, k := range tl.orderIdx {
		tOrder[i] = tNames[k]
	}
	tl.TileNest, err = loopgen.Build(tl.TileSys, tOrder, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return fmt.Errorf("tiling: tile nest: %w", err)
	}

	// Local iteration space: params and tile indices become parameters.
	tl.localSpace, err = lin.NewSpace(append(append([]string{}, sp.Params...), tNames...), iNames)
	if err != nil {
		return err
	}
	local, err := ext.Project(tl.localSpace)
	if err != nil {
		return fmt.Errorf("tiling: local projection: %w", err)
	}
	iOrder := make([]string, d)
	for i, k := range tl.orderIdx {
		iOrder[i] = iNames[k]
	}
	tl.LocalNest, err = loopgen.Build(local, iOrder, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return fmt.Errorf("tiling: local nest: %w", err)
	}
	return nil
}

// buildValidity creates the template-recurrence validity checks
// (Section IV-G): for each point dependence r and each original
// constraint a.x + b.p + c >= 0 whose shift a.r can be negative,
// accessing x + r can violate the constraint, so the shifted inequality
// a.x + b.p + c + a.r >= 0 must be checked at runtime. With
// variable-distance offsets the shift is a parameter-affine expression;
// the constraint is included whenever the shift can be negative over
// the declared parameter bounds. Range templates use RangeChecks (see
// extended.go) instead.
func (tl *Tiling) buildValidity() error {
	sp := tl.Spec
	tl.Validity = make([][]lin.Ineq, len(sp.Deps))
	for j := range sp.Deps {
		if sp.Deps[j].IsRange() {
			continue
		}
		for _, q := range sp.Constraints {
			shift := lin.Zero(sp.Space())
			for k, v := range sp.Vars {
				if a := q.Coeff(v); a != 0 {
					shift = shift.Add(sp.BaseExpr(j, k).Scale(a))
				}
			}
			include := false
			if shift.IsConst() {
				include = shift.K < 0
			} else {
				lo, _, err := sp.ExprHull(shift)
				if err != nil {
					return fmt.Errorf("tiling: dependence %q validity: %w", sp.Deps[j].Name, err)
				}
				include = lo < 0
			}
			if include {
				tl.Validity[j] = append(tl.Validity[j], lin.Ineq{Expr: q.Expr.Add(shift)})
			}
		}
	}
	return nil
}

// buildTileDeps enumerates the distinct tile-offset vectors induced by
// the template dependencies (Section IV-F) and builds each edge's
// pack/unpack scan nest (Section IV-I). A footprint whose reach exceeds
// the tile width crosses more than one tile boundary, so the
// per-dimension crossing magnitudes range up to ceil(reach/width)
// rather than one.
func (tl *Tiling) buildTileDeps(hull *spec.Hull) error {
	sp := tl.Spec
	d := len(sp.Vars)
	seen := map[string]bool{}
	var offsets [][]int64
	for j := range sp.Deps {
		// Per-dimension candidate crossings from the footprint hull.
		choice := tl.depChoices(hull, j)
		cur := make([]int64, d)
		var rec func(int)
		rec = func(k int) {
			if k == d {
				zero := true
				for _, c := range cur {
					if c != 0 {
						zero = false
						break
					}
				}
				if zero {
					return
				}
				key := fmt.Sprint(cur)
				if !seen[key] {
					seen[key] = true
					offsets = append(offsets, append([]int64(nil), cur...))
				}
				return
			}
			for _, c := range choice[k] {
				cur[k] = c
				rec(k + 1)
			}
			cur[k] = 0
		}
		rec(0)
	}

	if len(offsets) > maxTileDeps {
		return fmt.Errorf("tiling: %d tile-to-tile crossings exceed the limit of %d; increase the tile widths relative to the template reach",
			len(offsets), maxTileDeps)
	}

	// Deterministic order: lexicographic.
	sortOffsets(offsets)

	for _, off := range offsets {
		nest, err := tl.buildPackNest(off)
		if err != nil {
			return err
		}
		tl.TileDeps = append(tl.TileDeps, TileDep{Offset: off, PackNest: nest})
	}
	return nil
}

// buildPackNest constructs the scan nest over the producer-local slab of
// the edge with the given offset: for crossing dimensions the slab is the
// ghost-reach band at the producer's low side (offset +1) or high side
// (offset -1); non-crossing dimensions span the whole tile. The nest's
// system is the producer's local space intersected with the slab, so
// partial boundary tiles pack exactly their valid band.
func (tl *Tiling) buildPackNest(off []int64) (*loopgen.Nest, error) {
	sp := tl.Spec
	local, err := tl.localSystem()
	if err != nil {
		return nil, err
	}
	for k, o := range off {
		in := iName(sp.Vars[k])
		switch {
		case o >= 1:
			// Consumer o tiles below the producer: it reads the
			// producer's low band i_k in [0, w_k-1+GhostHi_k-o*w_k]
			// (for o == 1 and reach within the width, [0, GhostHi_k-1]).
			local.AddLE(lin.Var(tl.localSpace, in),
				lin.Const(tl.localSpace, tl.Widths[k]-1+tl.GhostHi[k]-o*tl.Widths[k]))
		case o <= -1:
			// Consumer above the producer: it reads the high band
			// i_k in [-o*w_k - GhostLo_k, w_k - 1].
			local.AddGE(lin.Var(tl.localSpace, in),
				lin.Const(tl.localSpace, -o*tl.Widths[k]-tl.GhostLo[k]))
		}
	}
	d := len(sp.Vars)
	iOrder := make([]string, d)
	for i, k := range tl.orderIdx {
		iOrder[i] = iName(sp.Vars[k])
	}
	nest, err := loopgen.Build(local, iOrder, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return nil, fmt.Errorf("tiling: pack nest for offset %v: %w", off, err)
	}
	return nest, nil
}

// localSystem rebuilds the local iteration system (over localSpace);
// used as the base for pack nests.
func (tl *Tiling) localSystem() (*lin.System, error) {
	ext, err := tl.extended()
	if err != nil {
		return nil, err
	}
	return ext.Project(tl.localSpace)
}

func sortOffsets(offs [][]int64) {
	less := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	// Insertion sort: offset lists are tiny.
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && less(offs[j], offs[j-1]); j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
}
