package tiling

import (
	"fmt"

	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

// This file is the interior-tile fast path of the analysis: a
// Fourier–Motzkin-style shrink of the tile space by the template reach
// classifies tiles whose entire dependence shell lies inside the
// iteration space. For such tiles every cell of the full w_1 x ... x w_d
// rectangle is in the space and every template dependence is valid at
// every cell, so the runtime (and the generated programs) can skip the
// per-cell validity checks and the bound-evaluating enumerator and run a
// precompiled dense loop nest instead; edge packing likewise collapses
// to strided copies of constant-size slabs.

// DenseLevel is one loop of the precompiled interior-tile nest, in loop
// order (outermost first).
type DenseLevel struct {
	Var    int   // variable index (Spec.Vars order)
	Width  int64 // trip count: the full tile width w_k
	Stride int64 // buffer stride of the variable
	Dir    int   // iteration direction (ExecDirs[Var])
}

// scanLevel is one outer loop of a dense edge-slab scan: count trips,
// each advancing the buffer location by step.
type scanLevel struct {
	count int64
	step  int64
}

// denseScan precompiles the producer-local scan of one tile dependence's
// edge slab for interior producers: the slab is a full rectangular box,
// so the scan is an odometer over the outer levels with a contiguous
// innermost run (the innermost loop variable has stride 1).
type denseScan struct {
	size  int64       // total slab cells (== InteriorEdgeSize entry)
	start int64       // buffer index of the first slab cell
	shift int64       // producer loc -> consumer unpack loc offset
	run   int64       // innermost contiguous run length
	outer []scanLevel // outer levels, outermost first
}

// buildFastPath constructs the interior classification, the dense cell
// nest, the dense edge scans and the per-dimension tile bounds. Called
// from New after the tile deps exist.
func (tl *Tiling) buildFastPath() error {
	tl.buildInteriorSys()
	tl.buildDense()
	tl.buildInteriorScans()
	return tl.buildDimNests()
}

// buildInteriorSys shrinks the tile space by the dependence shell: tile
// t is interior iff every iteration-space constraint a.x + b.p + c >= 0
// holds over the whole shell box
//
//	x_k in [w_k t_k - GhostLo_k,  w_k t_k + w_k - 1 + GhostHi_k].
//
// The minimum of the affine form over that box is itself affine in t
// (substitute x_k = w_k t_k and subtract the worst-case per-dimension
// excursion), giving one tile-space inequality per constraint.
func (tl *Tiling) buildInteriorSys() {
	sp := tl.Spec
	sys := lin.NewSystem(tl.tileSpace)
	for _, q := range sp.System().Ineqs {
		e := lin.Const(tl.tileSpace, q.K)
		for _, pn := range sp.Params {
			if c := q.Coeff(pn); c != 0 {
				e = e.Add(lin.Term(tl.tileSpace, c, pn))
			}
		}
		for k, vn := range sp.Vars {
			a := q.Coeff(vn)
			if a == 0 {
				continue
			}
			e = e.Add(lin.Term(tl.tileSpace, ints.MulChecked(a, tl.Widths[k]), tName(vn)))
			if a > 0 {
				// Minimum at the low end of the shell.
				e = e.AddConst(ints.MulChecked(-a, tl.GhostLo[k]))
			} else {
				// Minimum at the high end of the shell.
				e = e.AddConst(ints.MulChecked(a, tl.Widths[k]-1+tl.GhostHi[k]))
			}
		}
		sys.Add(lin.Ineq{Expr: e})
	}
	tl.InteriorSys = sys
}

// buildDense records the precompiled interior cell nest: full tile
// widths with the memory strides and execution directions, in loop
// order.
func (tl *Tiling) buildDense() {
	tl.Dense = make([]DenseLevel, len(tl.orderIdx))
	for lvl, k := range tl.orderIdx {
		tl.Dense[lvl] = DenseLevel{Var: k, Width: tl.Widths[k], Stride: tl.Strides[k], Dir: tl.ExecDirs[k]}
	}
}

// buildInteriorScans precompiles each tile dependence's full-slab scan
// and records the slab sizes. The slab ranges mirror buildPackNest:
// offset +1 takes the producer's low band [0, GhostHi_k-1], offset -1
// the high band [w_k-GhostLo_k, w_k-1], offset 0 the whole width — and
// the scan order (loop order, ascending) matches PackNest.Enumerate
// exactly, so dense and nest-packed edges are interchangeable whenever
// the cell sets coincide.
func (tl *Tiling) buildInteriorScans() {
	d := len(tl.Spec.Vars)
	tl.InteriorEdgeSize = make([]int64, len(tl.TileDeps))
	tl.interiorScan = make([]denseScan, len(tl.TileDeps))
	for j, dep := range tl.TileDeps {
		sc := denseScan{start: tl.BaseOff, size: 1}
		lo := make([]int64, d)
		cnt := make([]int64, d)
		for k := 0; k < d; k++ {
			switch o := dep.Offset[k]; {
			case o >= 1:
				lo[k] = 0
				cnt[k] = ints.Min(tl.Widths[k], tl.Widths[k]+tl.GhostHi[k]-o*tl.Widths[k])
			case o <= -1:
				lo[k] = ints.Max(0, -o*tl.Widths[k]-tl.GhostLo[k])
				cnt[k] = tl.Widths[k] - lo[k]
			default:
				lo[k], cnt[k] = 0, tl.Widths[k]
			}
			sc.start += lo[k] * tl.Strides[k]
			sc.shift += dep.Offset[k] * tl.Widths[k] * tl.Strides[k]
			sc.size = ints.MulChecked(sc.size, cnt[k])
		}
		for _, k := range tl.orderIdx[:d-1] {
			if cnt[k] != 1 {
				sc.outer = append(sc.outer, scanLevel{count: cnt[k], step: tl.Strides[k]})
			}
		}
		sc.run = cnt[tl.orderIdx[d-1]]
		tl.interiorScan[j] = sc
		tl.InteriorEdgeSize[j] = sc.size
	}
}

// buildDimNests builds, per dimension, a one-variable nest over
// (params | t_k) by eliminating every other tile index — the bounding
// box of the tile space, used for collision-free integer tile keys.
func (tl *Tiling) buildDimNests() error {
	sp := tl.Spec
	d := len(sp.Vars)
	tl.dimNests = make([]*loopgen.Nest, d)
	for k := 0; k < d; k++ {
		var others []string
		for i, v := range sp.Vars {
			if i != k {
				others = append(others, tName(v))
			}
		}
		elim, err := fm.EliminateAll(tl.TileSys, others, fm.Options{})
		if err != nil {
			return fmt.Errorf("tiling: tile bounds for %s: %w", sp.Vars[k], err)
		}
		space1, err := lin.NewSpace(sp.Params, []string{tName(sp.Vars[k])})
		if err != nil {
			return err
		}
		sys1, err := elim.Project(space1)
		if err != nil {
			return fmt.Errorf("tiling: tile bounds projection for %s: %w", sp.Vars[k], err)
		}
		nest, err := loopgen.Build(sys1, []string{tName(sp.Vars[k])}, fm.Options{Prune: fm.PruneSimplex})
		if err != nil {
			return fmt.Errorf("tiling: tile bounds nest for %s: %w", sp.Vars[k], err)
		}
		tl.dimNests[k] = nest
	}
	return nil
}

// TileBounds returns the per-dimension bounding box [lo_k, hi_k] of the
// tile space for the given parameters (lo_k > hi_k when the space is
// empty in that dimension).
func (tl *Tiling) TileBounds(params []int64) (lo, hi []int64) {
	d := len(tl.Spec.Vars)
	lo, hi = make([]int64, d), make([]int64, d)
	vals := make([]int64, len(params)+1)
	copy(vals, params)
	for k := 0; k < d; k++ {
		lo[k], hi[k] = tl.dimNests[k].Bounds(0, vals)
	}
	return lo, hi
}

// PackInterior copies an interior producer's slab cells for tile
// dependence dep from the tile buffer into out (length
// InteriorEdgeSize[dep]), in the shared pack/unpack order.
func (tl *Tiling) PackInterior(dep int, buf, out []float64) {
	sc := &tl.interiorScan[dep]
	packRuns(sc.outer, sc.run, sc.start, buf, out, 0)
}

// UnpackInterior writes a full-slab edge into the consumer's ghost
// shell. It is valid for any edge whose cell count equals
// InteriorEdgeSize[dep]: a slab with the full count is necessarily the
// full rectangular box, and both pack orders (dense and PackNest) scan
// it identically.
func (tl *Tiling) UnpackInterior(dep int, buf, data []float64) {
	sc := &tl.interiorScan[dep]
	unpackRuns(sc.outer, sc.run, sc.start+sc.shift, buf, data, 0)
}

func packRuns(outer []scanLevel, run, loc int64, buf, out []float64, idx int64) int64 {
	if len(outer) == 0 {
		copy(out[idx:idx+run], buf[loc:loc+run])
		return idx + run
	}
	l := outer[0]
	for c := int64(0); c < l.count; c++ {
		idx = packRuns(outer[1:], run, loc, buf, out, idx)
		loc += l.step
	}
	return idx
}

func unpackRuns(outer []scanLevel, run, loc int64, buf, data []float64, idx int64) int64 {
	if len(outer) == 0 {
		copy(buf[loc:loc+run], data[idx:idx+run])
		return idx + run
	}
	l := outer[0]
	for c := int64(0); c < l.count; c++ {
		idx = unpackRuns(outer[1:], run, loc, buf, data, idx)
		loc += l.step
	}
	return idx
}

// TileProbe is reusable allocation-free scratch for the per-tile
// polytope queries of the runtime hot path (membership, dependence
// count, interior classification). A probe is bound to one parameter
// vector and must not be shared between goroutines.
type TileProbe struct {
	tl    *Tiling
	vals  []int64 // (params | t) scratch, params prefilled
	nb    []int64 // neighbour-tile scratch
	np    int
	ndeps int
}

// NewProbe creates a probe for the given parameters.
func (tl *Tiling) NewProbe(params []int64) *TileProbe {
	pr := &TileProbe{
		tl:    tl,
		vals:  make([]int64, tl.tileSpace.N()),
		nb:    make([]int64, len(tl.Spec.Vars)),
		np:    len(params),
		ndeps: len(tl.TileDeps),
	}
	copy(pr.vals, params)
	return pr
}

// InSpace reports whether tile t exists, without allocating.
func (pr *TileProbe) InSpace(t []int64) bool {
	copy(pr.vals[pr.np:], t)
	return pr.tl.TileSys.Contains(pr.vals)
}

// Interior reports whether tile t's full dependence shell lies inside
// the iteration space.
func (pr *TileProbe) Interior(t []int64) bool {
	copy(pr.vals[pr.np:], t)
	return pr.tl.InteriorSys.Contains(pr.vals)
}

// DepCount counts the tile dependencies of t that exist in the tile
// space, without allocating.
func (pr *TileProbe) DepCount(t []int64) int {
	n := 0
	for j := 0; j < pr.ndeps; j++ {
		off := pr.tl.TileDeps[j].Offset
		for k := range t {
			pr.nb[k] = t[k] + off[k]
		}
		copy(pr.vals[pr.np:], pr.nb)
		if pr.tl.TileSys.Contains(pr.vals) {
			n++
		}
	}
	return n
}
