package tiling

import (
	"fmt"
	"testing"

	"dpgen/internal/spec"
)

// fastpathSpecs is the cross-section of geometries the fast path must
// classify correctly: the 4-D simplex, a square with a diagonal
// template, a negative-component template, and a non-unit-reach spec.
func fastpathSpecs(t *testing.T) map[string]*spec.Spec {
	return map[string]*spec.Spec{
		"bandit2": bandit2(t, 4),
		"diag2":   diag2(t, 5),
		"negdep":  negdep(t),
	}
}

// TestInteriorClassification: a tile is interior exactly when every
// cell of its full rectangle is in the space AND every template
// dependence is valid at every cell — checked by brute force.
func TestInteriorClassification(t *testing.T) {
	for name, sp := range fastpathSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The bandit simplex needs a larger N before any tile's whole
		// shell fits inside it.
		params := []int64{11}
		if name == "bandit2" {
			params = []int64{24}
		}
		pr := tl.NewProbe(params)
		d := len(sp.Vars)
		full := int64(1)
		for k := 0; k < d; k++ {
			full *= tl.Widths[k]
		}
		interiorSeen, boundarySeen := 0, 0
		specVals := make([]int64, tl.Spec.Space().N())
		copy(specVals, params)
		np := len(params)
		tl.ForEachTile(params, func(tile []int64) bool {
			// Brute-force ground truth over the full rectangle.
			want := tl.CellCount(params, tile) == full
			if want {
				tl.ForEachCell(params, tile, func(i []int64) bool {
					for k := 0; k < d; k++ {
						specVals[np+k] = i[k] + tl.Widths[k]*tile[k]
					}
					for j := range tl.Spec.Deps {
						if !tl.DepValid(j, specVals) {
							want = false
							return false
						}
					}
					return true
				})
			}
			got := pr.Interior(tile)
			if got != want {
				t.Errorf("%s: tile %v: Interior=%v, brute force says %v", name, tile, got, want)
			}
			if got {
				interiorSeen++
			} else {
				boundarySeen++
			}
			return true
		})
		if interiorSeen == 0 {
			t.Errorf("%s: no interior tiles at this size — test is vacuous", name)
		}
		if boundarySeen == 0 {
			t.Errorf("%s: no boundary tiles — test is vacuous", name)
		}
	}
}

// TestInteriorEdgeScans: for interior producers the dense pack must
// produce exactly the PackNest sequence, and InteriorEdgeSize must be
// the PackNest count (and an upper bound for every producer).
func TestInteriorEdgeScans(t *testing.T) {
	for name, sp := range fastpathSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		params := []int64{11}
		pr := tl.NewProbe(params)
		buf := make([]float64, tl.AllocLen)
		for i := range buf {
			buf[i] = float64(i) // distinct value per buffer slot
		}
		tl.ForEachTile(params, func(tile []int64) bool {
			for j := range tl.TileDeps {
				nestN := tl.EdgeSize(params, tile, j)
				if nestN > tl.InteriorEdgeSize[j] {
					t.Fatalf("%s: tile %v dep %d: nest edge %d exceeds dense bound %d",
						name, tile, j, nestN, tl.InteriorEdgeSize[j])
				}
				if !pr.Interior(tile) {
					continue
				}
				if nestN != tl.InteriorEdgeSize[j] {
					t.Fatalf("%s: interior tile %v dep %d: nest edge %d != dense %d",
						name, tile, j, nestN, tl.InteriorEdgeSize[j])
				}
				var nest []float64
				tl.ForEachEdgeCell(params, tile, j, func(i []int64) bool {
					nest = append(nest, buf[tl.Loc(i)])
					return true
				})
				dense := make([]float64, tl.InteriorEdgeSize[j])
				tl.PackInterior(j, buf, dense)
				for x := range nest {
					if nest[x] != dense[x] {
						t.Fatalf("%s: interior tile %v dep %d: pack order diverges at %d", name, tile, j, x)
					}
				}
				// Unpack must land each value at UnpackLoc of its cell.
				shell := make([]float64, tl.AllocLen)
				tl.UnpackInterior(j, shell, dense)
				x := 0
				tl.ForEachEdgeCell(params, tile, j, func(i []int64) bool {
					if got := shell[tl.UnpackLoc(j, i)]; got != dense[x] {
						t.Fatalf("%s: tile %v dep %d: unpack cell %d landed wrong (%v != %v)",
							name, tile, j, x, got, dense[x])
					}
					x++
					return true
				})
			}
			return true
		})
	}
}

// TestTileBoundsBox: TileBounds must cover every enumerated tile, and
// the probe queries must agree with their allocating counterparts.
func TestTileBoundsBox(t *testing.T) {
	for name, sp := range fastpathSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		params := []int64{13}
		lo, hi := tl.TileBounds(params)
		pr := tl.NewProbe(params)
		seen := int64(0)
		tl.ForEachTile(params, func(tile []int64) bool {
			seen++
			for k := range tile {
				if tile[k] < lo[k] || tile[k] > hi[k] {
					t.Fatalf("%s: tile %v outside TileBounds [%v, %v]", name, tile, lo, hi)
				}
			}
			if !pr.InSpace(tile) {
				t.Fatalf("%s: probe rejects enumerated tile %v", name, tile)
			}
			if got, want := pr.DepCount(tile), tl.DepCount(params, tile); got != want {
				t.Fatalf("%s: tile %v: probe DepCount %d != %d", name, tile, got, want)
			}
			return true
		})
		if seen == 0 {
			t.Fatalf("%s: no tiles", name)
		}
		// The box must be reasonably tight: each bound is attained.
		for k := range lo {
			attainedLo, attainedHi := false, false
			tl.ForEachTile(params, func(tile []int64) bool {
				if tile[k] == lo[k] {
					attainedLo = true
				}
				if tile[k] == hi[k] {
					attainedHi = true
				}
				return !(attainedLo && attainedHi)
			})
			if !attainedLo || !attainedHi {
				t.Errorf("%s: dim %d bound [%d,%d] not attained", name, k, lo[k], hi[k])
			}
		}
	}
}

func ExampleTiling_TileBounds() {
	sp := spec.MustNew("grid", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("right", 1, 0)
	sp.AddDep("down", 0, 1)
	sp.TileWidths = []int64{4, 4}
	tl, err := New(sp)
	if err != nil {
		panic(err)
	}
	lo, hi := tl.TileBounds([]int64{10})
	fmt.Println(lo, hi)
	// Output: [0 0] [2 2]
}
