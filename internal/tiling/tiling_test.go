package tiling

import (
	"fmt"
	"testing"

	"dpgen/internal/spec"
)

// bandit2 builds the paper's Section II spec with tile width w.
func bandit2(t testing.TB, w int64) *spec.Spec {
	t.Helper()
	sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{w, w, w, w}
	return sp
}

// diag2 is a 2-D problem with a diagonal template (LCS-like): deps
// <1,0>, <0,1>, <1,1> on the square [0,N]^2.
func diag2(t testing.TB, w int64) *spec.Spec {
	t.Helper()
	sp := spec.MustNew("diag2", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("right", 1, 0)
	sp.AddDep("down", 0, 1)
	sp.AddDep("diag", 1, 1)
	sp.TileWidths = []int64{w, w}
	return sp
}

// negdep has a negative template component: f(x,y) depends on f(x-2, y+1).
func negdep(t testing.TB) *spec.Spec {
	t.Helper()
	sp := spec.MustNew("negdep", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("a", -2, 1)
	sp.AddDep("b", 0, 1)
	sp.TileWidths = []int64{4, 4}
	return sp
}

func TestGeometryBandit(t *testing.T) {
	tl, err := New(bandit2(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Reach is 1 on the high side in every dim, 0 low.
	for k := 0; k < 4; k++ {
		if tl.GhostHi[k] != 1 || tl.GhostLo[k] != 0 {
			t.Errorf("ghost[%d] = lo %d hi %d", k, tl.GhostLo[k], tl.GhostHi[k])
		}
		if tl.Alloc[k] != 7 {
			t.Errorf("alloc[%d] = %d, want 7", k, tl.Alloc[k])
		}
	}
	if tl.AllocLen != 7*7*7*7 {
		t.Errorf("AllocLen = %d", tl.AllocLen)
	}
	// Innermost loop var f2 has stride 1 (Fig 3 memory layout).
	if tl.Strides[3] != 1 || tl.Strides[2] != 7 || tl.Strides[1] != 49 || tl.Strides[0] != 343 {
		t.Errorf("Strides = %v", tl.Strides)
	}
	// Mapping functions: constant offsets per dependence.
	for j := 0; j < 4; j++ {
		if tl.DepLocOff[j] != tl.Strides[j] {
			t.Errorf("DepLocOff[%d] = %d, want %d", j, tl.DepLocOff[j], tl.Strides[j])
		}
	}
}

func TestTilePartition(t *testing.T) {
	// The tiles partition the iteration space exactly: every point appears
	// in exactly one tile's cell scan.
	for _, tc := range []struct {
		sp *spec.Spec
		N  int64
	}{
		{bandit2(t, 3), 7},
		{diag2(t, 4), 9},
		{negdep(t), 6},
	} {
		tl, err := New(tc.sp)
		if err != nil {
			t.Fatalf("%s: %v", tc.sp.Name, err)
		}
		params := []int64{tc.N}
		seen := map[string]int{}
		tl.ForEachTile(params, func(tile []int64) bool {
			tcopy := append([]int64(nil), tile...)
			tl.ForEachCell(params, tcopy, func(i []int64) bool {
				x := tl.GlobalOf(tcopy, i)
				seen[fmt.Sprint(x)]++
				// Cell must map back to this tile.
				bt, bl := tl.TileOf(x)
				for k := range bt {
					if bt[k] != tcopy[k] || bl[k] != i[k] {
						t.Fatalf("%s: TileOf(%v) = %v/%v, want %v/%v", tc.sp.Name, x, bt, bl, tcopy, i)
					}
				}
				return true
			})
			return true
		})
		// Compare against direct enumeration of the spec system.
		sys := tc.sp.System()
		var want int
		enumerateBox(len(tc.sp.Vars), tc.N, func(x []int64) {
			vals := append([]int64{tc.N}, x...)
			if sys.Contains(vals) {
				want++
				if seen[fmt.Sprint(x)] != 1 {
					t.Fatalf("%s: point %v covered %d times", tc.sp.Name, x, seen[fmt.Sprint(x)])
				}
			}
		})
		if len(seen) != want {
			t.Errorf("%s: covered %d points, want %d", tc.sp.Name, len(seen), want)
		}
	}
}

func enumerateBox(d int, N int64, visit func(x []int64)) {
	x := make([]int64, d)
	var rec func(int)
	rec = func(k int) {
		if k == d {
			visit(x)
			return
		}
		for v := int64(0); v <= N; v++ {
			x[k] = v
			rec(k + 1)
		}
	}
	rec(0)
}

func TestTileDepsBandit(t *testing.T) {
	tl, err := New(bandit2(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Four axis-aligned unit templates produce exactly 4 tile deps.
	if len(tl.TileDeps) != 4 {
		t.Fatalf("TileDeps = %d, want 4", len(tl.TileDeps))
	}
	for _, td := range tl.TileDeps {
		nz := 0
		for _, o := range td.Offset {
			if o != 0 {
				nz++
			}
		}
		if nz != 1 {
			t.Errorf("unexpected offset %v", td.Offset)
		}
	}
}

func TestTileDepsDiagonal(t *testing.T) {
	tl, err := New(diag2(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Section IV-F: template <1,1> triggers deps <1,0>, <0,1>, <1,1>.
	want := map[string]bool{"[1 0]": true, "[0 1]": true, "[1 1]": true}
	if len(tl.TileDeps) != 3 {
		t.Fatalf("TileDeps = %d, want 3: %+v", len(tl.TileDeps), tl.TileDeps)
	}
	for _, td := range tl.TileDeps {
		if !want[fmt.Sprint(td.Offset)] {
			t.Errorf("unexpected offset %v", td.Offset)
		}
	}
}

func TestTileDepsNegative(t *testing.T) {
	tl, err := New(negdep(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"[-1 0]": true, "[0 1]": true, "[-1 1]": true}
	for _, td := range tl.TileDeps {
		if !want[fmt.Sprint(td.Offset)] {
			t.Errorf("unexpected offset %v", td.Offset)
		}
	}
	if len(tl.TileDeps) != 3 {
		t.Errorf("TileDeps = %d, want 3", len(tl.TileDeps))
	}
}

// TestEdgeCoverage is the critical runtime invariant: every cross-tile
// template access lands in a producer cell that the producer's pack nest
// enumerates, and UnpackLoc writes it where the consumer's mapping
// function (loc + DepLocOff) reads it.
func TestEdgeCoverage(t *testing.T) {
	for _, tc := range []struct {
		sp *spec.Spec
		N  int64
	}{
		{bandit2(t, 3), 7},
		{diag2(t, 4), 9},
		{negdep(t), 6},
	} {
		tl, err := New(tc.sp)
		if err != nil {
			t.Fatalf("%s: %v", tc.sp.Name, err)
		}
		params := []int64{tc.N}
		sys := tc.sp.System()
		d := len(tc.sp.Vars)

		// Precompute each tile's packed edges: dep -> producer tile ->
		// map from consumer buffer index (via UnpackLoc) to producer global point.
		type edgeKey struct {
			tile string
			dep  int
		}
		packed := map[edgeKey]map[int64]string{}
		tl.ForEachTile(params, func(tile []int64) bool {
			tcopy := append([]int64(nil), tile...)
			for j := range tl.TileDeps {
				m := map[int64]string{}
				tl.ForEachEdgeCell(params, tcopy, j, func(i []int64) bool {
					m[tl.UnpackLoc(j, i)] = fmt.Sprint(tl.GlobalOf(tcopy, i))
					return true
				})
				packed[edgeKey{fmt.Sprint(tcopy), j}] = m
			}
			return true
		})

		specVals := make([]int64, tc.sp.Space().N())
		specVals[0] = tc.N
		tl.ForEachTile(params, func(tile []int64) bool {
			tcopy := append([]int64(nil), tile...)
			tl.ForEachCell(params, tcopy, func(i []int64) bool {
				x := tl.GlobalOf(tcopy, i)
				copy(specVals[1:], x)
				for j, dep := range tc.sp.Deps {
					// Validity must agree with direct membership of x + r.
					xr := make([]int64, d)
					for k := range xr {
						xr[k] = x[k] + dep.Vec[k]
					}
					direct := sys.Contains(append([]int64{tc.N}, xr...))
					if got := tl.DepValid(j, specVals); got != direct {
						t.Fatalf("%s: DepValid(%s at %v) = %v, direct = %v", tc.sp.Name, dep.Name, x, got, direct)
					}
					if !direct {
						continue
					}
					// Where does x + r live?
					rt, rl := tl.TileOf(xr)
					same := true
					off := make([]int64, d)
					for k := range rt {
						off[k] = rt[k] - tcopy[k]
						if off[k] != 0 {
							same = false
						}
					}
					readLoc := tl.Loc(i) + tl.DepLocOff[j]
					if same {
						if readLoc != tl.Loc(rl) {
							t.Fatalf("%s: in-tile mapping wrong at %v dep %s", tc.sp.Name, x, dep.Name)
						}
						continue
					}
					// Cross-tile: find the tile dep with this offset.
					dj := -1
					for jj, td := range tl.TileDeps {
						match := true
						for k := range off {
							if td.Offset[k] != off[k] {
								match = false
								break
							}
						}
						if match {
							dj = jj
							break
						}
					}
					if dj < 0 {
						t.Fatalf("%s: access %v -> %v crosses offset %v with no tile dep", tc.sp.Name, x, xr, off)
					}
					m := packed[edgeKey{fmt.Sprint(rt), dj}]
					got, ok := m[readLoc]
					if !ok {
						t.Fatalf("%s: consumer read loc %d (x=%v dep=%s) not packed by producer %v dep %v",
							tc.sp.Name, readLoc, x, dep.Name, rt, tl.TileDeps[dj].Offset)
					}
					if got != fmt.Sprint(xr) {
						t.Fatalf("%s: unpack mismatch: loc %d holds %v, want %v", tc.sp.Name, readLoc, got, xr)
					}
				}
				return true
			})
			return true
		})
	}
}

func TestConsumersMatchDepCount(t *testing.T) {
	tl, err := New(bandit2(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{7}
	var sumDeps, sumCons int
	tl.ForEachTile(params, func(tile []int64) bool {
		sumDeps += tl.DepCount(params, tile)
		tiles, deps := tl.Consumers(params, tile)
		if len(tiles) != len(deps) {
			t.Fatal("Consumers arity mismatch")
		}
		sumCons += len(tiles)
		return true
	})
	if sumDeps != sumCons {
		t.Errorf("dep edges %d != consumer edges %d", sumDeps, sumCons)
	}
	if sumDeps == 0 {
		t.Error("no edges at all")
	}
}

func TestInitialTiles(t *testing.T) {
	tl, err := New(bandit2(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{7}
	initial, total := tl.InitialTiles(params)
	if total != tl.TileCount(params) {
		t.Errorf("total = %d, TileCount = %d", total, tl.TileCount(params))
	}
	if len(initial) == 0 {
		t.Fatal("no initial tiles")
	}
	for _, tile := range initial {
		if tl.DepCount(params, tile) != 0 {
			t.Errorf("initial tile %v has deps", tile)
		}
	}
	// Initial tiles must be a strict minority for a real problem.
	if int64(len(initial)) >= total {
		t.Errorf("all %d tiles initial", total)
	}
}

func TestGoalTile(t *testing.T) {
	tl, err := New(bandit2(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	gt, gl := tl.GoalTile()
	for k := range gt {
		if gt[k] != 0 || gl[k] != 0 {
			t.Errorf("goal tile/local = %v/%v", gt, gl)
		}
	}
}

func TestCellCountsSumToSpaceSize(t *testing.T) {
	tl, err := New(bandit2(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	N := int64(9)
	params := []int64{N}
	var total int64
	tl.ForEachTile(params, func(tile []int64) bool {
		total += tl.CellCount(params, tile)
		return true
	})
	want := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	if total != want {
		t.Errorf("cells = %d, want %d", total, want)
	}
}

func TestEdgeSizeBanditScaling(t *testing.T) {
	// Section IV-I: a full interior edge of the 2-arm bandit is w^3 cells
	// while the tile is w^4.
	w := int64(4)
	tl, err := New(bandit2(t, w))
	if err != nil {
		t.Fatal(err)
	}
	N := int64(31)
	params := []int64{N}
	// Find a full interior tile: all cells present.
	var interior []int64
	tl.ForEachTile(params, func(tile []int64) bool {
		if tl.CellCount(params, tile) == w*w*w*w {
			interior = append([]int64(nil), tile...)
			return false
		}
		return true
	})
	if interior == nil {
		t.Fatal("no interior tile found")
	}
	for j := range tl.TileDeps {
		if got := tl.EdgeSize(params, interior, j); got != w*w*w {
			t.Errorf("edge %v size = %d, want %d", tl.TileDeps[j].Offset, got, w*w*w)
		}
	}
}

func TestTileOfNegativeCoords(t *testing.T) {
	tl, err := New(diag2(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	tile, local := tl.TileOf([]int64{-1, 5})
	if tile[0] != -1 || local[0] != 3 || tile[1] != 1 || local[1] != 1 {
		t.Errorf("TileOf(-1,5) = %v/%v", tile, local)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	sp := spec.MustNew("bad", []string{"N"}, []string{"x"})
	sp.MustConstrain("x >= 0") // unbounded above
	sp.AddDep("r1", 1)
	if _, err := New(sp); err == nil {
		t.Error("unbounded space should fail")
	}
}

// TestCellOrderRespectsDeps: within a tile, every valid in-tile template
// access must target a cell enumerated earlier by ForEachCell.
func TestCellOrderRespectsDeps(t *testing.T) {
	for _, tc := range []struct {
		sp *spec.Spec
		N  int64
	}{
		{bandit2(t, 3), 7},
		{diag2(t, 4), 9},
		{negdep(t), 6},
	} {
		tl, err := New(tc.sp)
		if err != nil {
			t.Fatalf("%s: %v", tc.sp.Name, err)
		}
		params := []int64{tc.N}
		d := len(tc.sp.Vars)
		tl.ForEachTile(params, func(tile []int64) bool {
			tcopy := append([]int64(nil), tile...)
			seen := map[string]bool{}
			tl.ForEachCell(params, tcopy, func(i []int64) bool {
				for _, dep := range tc.sp.Deps {
					tgt := make([]int64, d)
					inTile := true
					for k := range tgt {
						tgt[k] = i[k] + dep.Vec[k]
						if tgt[k] < 0 || tgt[k] >= tl.Widths[k] {
							inTile = false
						}
					}
					if !inTile {
						continue
					}
					// Only care if the target is a real cell of this tile.
					x := tl.GlobalOf(tcopy, tgt)
					vals := append([]int64{tc.N}, x...)
					if !tc.sp.System().Contains(vals) {
						continue
					}
					if !seen[fmt.Sprint(tgt)] {
						t.Fatalf("%s tile %v: cell %v computed before its dep %v (+%v)",
							tc.sp.Name, tcopy, i, tgt, dep.Vec)
					}
				}
				seen[fmt.Sprint(i)] = true
				return true
			})
			return true
		})
	}
}

// TestInitialTilesFastMatchesScan: the Section IV-K band scan must find
// exactly the same initial tiles as the exhaustive scan.
func TestInitialTilesFastMatchesScan(t *testing.T) {
	for _, tc := range []struct {
		sp *spec.Spec
		N  int64
	}{
		{bandit2(t, 3), 11},
		{bandit2(t, 5), 23},
		{diag2(t, 4), 13},
		{negdep(t), 9},
	} {
		tl, err := New(tc.sp)
		if err != nil {
			t.Fatalf("%s: %v", tc.sp.Name, err)
		}
		params := []int64{tc.N}
		slow, total := tl.InitialTiles(params)
		fast, ftotal, err := tl.InitialTilesFast(params)
		if err != nil {
			t.Fatalf("%s: %v", tc.sp.Name, err)
		}
		if ftotal != total {
			t.Errorf("%s: totals %d vs %d", tc.sp.Name, ftotal, total)
		}
		want := map[string]bool{}
		for _, x := range slow {
			want[fmt.Sprint(x)] = true
		}
		got := map[string]bool{}
		for _, x := range fast {
			got[fmt.Sprint(x)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: fast found %d initial tiles, scan found %d", tc.sp.Name, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: fast missed initial tile %s", tc.sp.Name, k)
			}
		}
	}
}

// TestInitialTilesFastVisitsFewerTiles: the band scan must examine a
// strict subset of the tile space at realistic sizes.
func TestInitialTilesFastVisitsFewerTiles(t *testing.T) {
	tl, err := New(bandit2(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{40}
	if err := tl.buildBandNests(); err != nil {
		t.Fatal(err)
	}
	var visited int64
	for _, nest := range tl.bandNests {
		visited += nest.Count(params)
	}
	total := tl.TileNest.Count(params)
	if visited >= total {
		t.Errorf("band scan visits %d of %d tiles — no saving", visited, total)
	}
}

// TestLBSpacesDirect exercises the load-balancing projections directly:
// slab works and slab tile counts must partition the totals.
func TestLBSpacesDirect(t *testing.T) {
	sp := bandit2(t, 4)
	sp.LBDims = []string{"s1", "f1"}
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.LBIndices(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LBIndices = %v", got)
	}
	params := []int64{14}
	nest, err := tl.LBNest()
	if err != nil {
		t.Fatal(err)
	}
	var cells, works, tiles int64
	nest.Enumerate(params, func(vals []int64) bool {
		lb := []int64{vals[1], vals[2]}
		cells++
		w, err := tl.SlabWork(params, lb)
		if err != nil {
			t.Fatal(err)
		}
		works += w
		nt, err := tl.SlabTiles(params, lb)
		if err != nil {
			t.Fatal(err)
		}
		tiles += nt
		return true
	})
	if cells == 0 {
		t.Fatal("no lb cells")
	}
	wantWork := (params[0] + 1) * (params[0] + 2) * (params[0] + 3) * (params[0] + 4) / 24
	if works != wantWork {
		t.Errorf("slab works sum to %d, want %d", works, wantWork)
	}
	if want := tl.TileCount(params); tiles != want {
		t.Errorf("slab tiles sum to %d, want %d", tiles, want)
	}
	// Memoization must not change values.
	w2, _ := tl.SlabWork(params, []int64{0, 0})
	w3, _ := tl.SlabWork(params, []int64{0, 0})
	if w2 != w3 {
		t.Error("memoized slab work differs")
	}
	// LBCoords extraction.
	lb := tl.LBCoords([]int64{3, 1, 2, 0}, nil)
	if lb[0] != 3 || lb[1] != 1 {
		t.Errorf("LBCoords = %v", lb)
	}
	dst := make([]int64, 2)
	if got := tl.LBCoords([]int64{5, 4, 0, 0}, dst); &got[0] != &dst[0] || got[0] != 5 {
		t.Error("LBCoords dst reuse broken")
	}
}

// TestAllDimsLoadBalanced: LB over every dimension leaves an empty rest
// nest; slab tiles must be 0/1 per cell.
func TestAllDimsLoadBalanced(t *testing.T) {
	sp := diag2(t, 4)
	sp.LBDims = []string{"x", "y"}
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	params := []int64{9}
	var tiles int64
	nest, err := tl.LBNest()
	if err != nil {
		t.Fatal(err)
	}
	nest.Enumerate(params, func(vals []int64) bool {
		nt, err := tl.SlabTiles(params, []int64{vals[1], vals[2]})
		if err != nil {
			t.Fatal(err)
		}
		if nt != 0 && nt != 1 {
			t.Fatalf("slab tiles = %d with all dims balanced", nt)
		}
		tiles += nt
		return true
	})
	if want := tl.TileCount(params); tiles != want {
		t.Errorf("tiles %d, want %d", tiles, want)
	}
}
