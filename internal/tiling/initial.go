package tiling

import (
	"fmt"

	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

// InitialTilesFast finds the tiles with no satisfiable dependencies by
// scanning only the boundary bands of the tile space, the way Section
// IV-K scans faces/edges/corners instead of the whole space.
//
// The observation: pick any tile dependence offset o*. A tile t with no
// dependencies in particular has t+o* outside the tile space, so some
// tile-space inequality c (with c(t+o*) = c(t) + shift < 0 <= c(t)) is
// within a band 0 <= c(t) < -shift of being tight at t. Scanning those
// bands — one derived system per (o*, violable constraint) pair — visits
// a boundary-sized O(n^{d-1}) subset instead of the Θ(n^d/Πw) tile
// space; each candidate is then checked with DepCount.
//
// The total tile count, which the runtime needs for termination, is
// obtained from TileNest.Count (closed-form innermost level) rather than
// a full enumeration.
func (tl *Tiling) InitialTilesFast(params []int64) (initial [][]int64, total int64, err error) {
	if len(tl.TileDeps) == 0 {
		return nil, 0, fmt.Errorf("tiling: no tile dependencies")
	}
	if err := tl.buildBandNests(); err != nil {
		return nil, 0, err
	}
	total = tl.TileNest.Count(params)
	seen := map[string]bool{}
	d := len(tl.Spec.Vars)
	t := make([]int64, d)
	for _, nest := range tl.bandNests {
		np := len(params)
		nest.Enumerate(params, func(vals []int64) bool {
			copy(t, vals[np:])
			k := fmt.Sprint(t)
			if seen[k] {
				return true
			}
			seen[k] = true
			if tl.DepCount(params, t) == 0 {
				initial = append(initial, append([]int64(nil), t...))
			}
			return true
		})
	}
	return initial, total, nil
}

// buildBandNests constructs the boundary band scan nests for the first
// tile dependence offset (any single offset suffices for completeness;
// see InitialTilesFast).
func (tl *Tiling) buildBandNests() error {
	if tl.bandNests != nil {
		return nil
	}
	o := tl.TileDeps[0].Offset
	d := len(tl.Spec.Vars)
	tOrder := make([]string, d)
	for i, k := range tl.orderIdx {
		tOrder[i] = tName(tl.Spec.Vars[k])
	}
	var nests []*loopgen.Nest
	for _, q := range tl.TileSys.Ineqs {
		// shift = sum over dims of coeff(t_k) * o_k.
		var shift int64
		for k, v := range tl.Spec.Vars {
			shift += q.Coeff(tName(v)) * o[k]
		}
		if shift >= 0 {
			continue // this constraint can never be violated by o
		}
		// Band: 0 <= q(t) <= -shift - 1 within the tile space.
		sys := tl.TileSys.Clone()
		sys.Add(lin.Ineq{Expr: q.Expr.Neg().AddConst(ints.NegChecked(shift) - 1)})
		nest, err := loopgen.Build(sys, tOrder, fm.Options{Prune: fm.PruneSimplex})
		if err != nil {
			if err == fm.ErrInfeasible {
				continue // empty band
			}
			return fmt.Errorf("tiling: band nest: %w", err)
		}
		nests = append(nests, nest)
	}
	if len(nests) == 0 {
		return fmt.Errorf("tiling: no boundary bands for offset %v — dependence cycle?", o)
	}
	tl.bandNests = nests
	return nil
}
