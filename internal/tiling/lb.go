package tiling

import (
	"fmt"

	"dpgen/internal/fm"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

// LBIndices returns the variable indexes of the load-balancing dimensions
// in priority order (lb1 first).
func (tl *Tiling) LBIndices() []int {
	lb := tl.Spec.Balance()
	out := make([]int, len(lb))
	for i, v := range lb {
		out[i] = tl.Spec.VarIndex(v)
	}
	return out
}

// LBNest returns a nest scanning the load-balancing iteration space
// (Section IV-J): the tile space with all non-load-balanced tile indices
// eliminated by Fourier–Motzkin, ordered by balance priority. Safe for
// concurrent use, as are the other lazily built scans, so one analysis
// can back several engine runs at once (e.g. in-process multi-rank
// tests).
func (tl *Tiling) LBNest() (*loopgen.Nest, error) {
	tl.lazyMu.Lock()
	defer tl.lazyMu.Unlock()
	if tl.lbNest != nil {
		return tl.lbNest, nil
	}
	lb := tl.Spec.Balance()
	isLB := map[string]bool{}
	lbT := make([]string, len(lb))
	for i, v := range lb {
		lbT[i] = tName(v)
		isLB[tName(v)] = true
	}
	var drop []string
	for _, v := range tl.Spec.Vars {
		if !isLB[tName(v)] {
			drop = append(drop, tName(v))
		}
	}
	sys, err := fm.EliminateAll(tl.TileSys, drop, fm.Options{})
	if err != nil {
		return nil, fmt.Errorf("tiling: lb space: %w", err)
	}
	lbSpace, err := lin.NewSpace(tl.Spec.Params, lbT)
	if err != nil {
		return nil, err
	}
	proj, err := sys.Project(lbSpace)
	if err != nil {
		return nil, fmt.Errorf("tiling: lb projection: %w", err)
	}
	tl.lbNest, err = loopgen.Build(proj, lbT, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return nil, fmt.Errorf("tiling: lb nest: %w", err)
	}
	return tl.lbNest, nil
}

// SlabWork counts the iteration-space cells of all tiles whose
// load-balancing tile indices equal lb (in balance priority order) — the
// quantity the paper evaluates with its second Ehrhart polynomial.
// Results are memoized (the balancer asks for the same slabs on every
// Build for a given instance).
func (tl *Tiling) SlabWork(params, lb []int64) (int64, error) {
	tl.lazyMu.Lock()
	if tl.slabNest == nil {
		if err := tl.buildSlabNest(); err != nil {
			tl.lazyMu.Unlock()
			return 0, err
		}
	}
	slabNest := tl.slabNest
	tl.lazyMu.Unlock()
	p := make([]int64, 0, len(params)+len(lb))
	p = append(p, params...)
	p = append(p, lb...)
	key := fmt.Sprint(p)
	tl.slabMu.Lock()
	if v, ok := tl.slabMemo[key]; ok {
		tl.slabMu.Unlock()
		return v, nil
	}
	tl.slabMu.Unlock()
	v := slabNest.Count(p)
	tl.slabMu.Lock()
	if tl.slabMemo == nil {
		tl.slabMemo = map[string]int64{}
	}
	tl.slabMemo[key] = v
	tl.slabMu.Unlock()
	return v, nil
}

// buildSlabNest builds a nest whose parameters are (params, t_lb...) and
// whose loop variables are the remaining tile indices followed by the
// local indices, so Count gives the slab's cell total.
func (tl *Tiling) buildSlabNest() error {
	sp := tl.Spec
	lb := sp.Balance()
	isLB := map[string]bool{}
	lbT := make([]string, len(lb))
	for i, v := range lb {
		lbT[i] = tName(v)
		isLB[tName(v)] = true
	}
	var restT []string
	for _, k := range tl.orderIdx {
		v := sp.Vars[k]
		if !isLB[tName(v)] {
			restT = append(restT, tName(v))
		}
	}
	var iOrder []string
	for _, k := range tl.orderIdx {
		iOrder = append(iOrder, iName(sp.Vars[k]))
	}
	space, err := lin.NewSpace(append(append([]string{}, sp.Params...), lbT...), append(append([]string{}, restT...), iOrder...))
	if err != nil {
		return err
	}
	ext, err := tl.extended()
	if err != nil {
		return err
	}
	sys, err := ext.Project(space)
	if err != nil {
		return fmt.Errorf("tiling: slab projection: %w", err)
	}
	nest, err := loopgen.Build(sys, append(append([]string{}, restT...), iOrder...), fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return fmt.Errorf("tiling: slab nest: %w", err)
	}
	tl.slabNest = nest
	return nil
}

// SlabTiles counts the tiles whose load-balancing indices equal lb —
// the per-slab denominator the runtime needs for per-node owned-tile
// totals without a full tile-space scan. Memoized like SlabWork.
func (tl *Tiling) SlabTiles(params, lb []int64) (int64, error) {
	tl.lazyMu.Lock()
	if tl.slabTilesNest == nil {
		if err := tl.buildSlabTilesNest(); err != nil {
			tl.lazyMu.Unlock()
			return 0, err
		}
	}
	slabTilesNest := tl.slabTilesNest
	tl.lazyMu.Unlock()
	p := make([]int64, 0, len(params)+len(lb))
	p = append(p, params...)
	p = append(p, lb...)
	key := "t" + fmt.Sprint(p)
	tl.slabMu.Lock()
	if v, ok := tl.slabMemo[key]; ok {
		tl.slabMu.Unlock()
		return v, nil
	}
	tl.slabMu.Unlock()
	v := slabTilesNest.Count(p)
	tl.slabMu.Lock()
	if tl.slabMemo == nil {
		tl.slabMemo = map[string]int64{}
	}
	tl.slabMemo[key] = v
	tl.slabMu.Unlock()
	return v, nil
}

// buildSlabTilesNest builds a nest over the non-load-balanced tile
// indices with (params, t_lb) as parameters.
func (tl *Tiling) buildSlabTilesNest() error {
	sp := tl.Spec
	lb := sp.Balance()
	isLB := map[string]bool{}
	lbT := make([]string, len(lb))
	for i, v := range lb {
		lbT[i] = tName(v)
		isLB[tName(v)] = true
	}
	var restT []string
	for _, k := range tl.orderIdx {
		v := sp.Vars[k]
		if !isLB[tName(v)] {
			restT = append(restT, tName(v))
		}
	}
	space, err := lin.NewSpace(append(append([]string{}, sp.Params...), lbT...), restT)
	if err != nil {
		return err
	}
	// Same names as the tile space, different parameter split.
	sys, err := tl.TileSys.Project(space)
	if err != nil {
		return fmt.Errorf("tiling: slab-tiles projection: %w", err)
	}
	nest, err := loopgen.Build(sys, restT, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		return fmt.Errorf("tiling: slab-tiles nest: %w", err)
	}
	tl.slabTilesNest = nest
	return nil
}

// LBCoords extracts the load-balancing coordinates (priority order) from
// a tile index vector (Vars order).
func (tl *Tiling) LBCoords(t []int64, dst []int64) []int64 {
	idx := tl.LBIndices()
	if dst == nil {
		dst = make([]int64, len(idx))
	}
	for i, k := range idx {
		dst[i] = t[k]
	}
	return dst
}
