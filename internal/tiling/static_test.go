package tiling

import (
	"testing"

	"dpgen/internal/spec"
)

// staticSpecs returns the fixture specs whose tile graphs exercise the
// wavefront-level machinery: all-positive templates (bandit2),
// diagonal reach (diag2), and a mixed-sign template (negdep, one
// dimension executing downward).
func staticSpecs(t *testing.T) map[string]*spec.Spec {
	return map[string]*spec.Spec{
		"bandit2": bandit2(t, 3),
		"diag2":   diag2(t, 2),
		"negdep":  negdep(t),
	}
}

// TestTileLevelTopologicalOrder: the defining property of the
// wavefront level — every in-space producer of a tile has a strictly
// smaller level than the tile itself, so releasing levels in ascending
// order is a valid schedule.
func TestTileLevelTopologicalOrder(t *testing.T) {
	for name, sp := range staticSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		params := []int64{9}
		probe := tl.NewProbe(params)
		d := len(sp.Vars)
		prod := make([]int64, d)
		checked := 0
		tl.ForEachTile(params, func(tile []int64) bool {
			lvl := tl.TileLevel(tile)
			for _, dep := range tl.TileDeps {
				for k := 0; k < d; k++ {
					prod[k] = tile[k] + dep.Offset[k]
				}
				if !probe.InSpace(prod) {
					continue
				}
				if pl := tl.TileLevel(prod); pl >= lvl {
					t.Fatalf("%s: producer %v level %d >= consumer %v level %d",
						name, prod, pl, tile, lvl)
				}
				checked++
			}
			return true
		})
		if checked == 0 {
			t.Errorf("%s: no tile dependences checked", name)
		}
	}
}

// TestTileLevelBoundsContainment: every actual tile level falls inside
// the interval-arithmetic sizing bound.
func TestTileLevelBoundsContainment(t *testing.T) {
	for name, sp := range staticSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		params := []int64{8}
		lo, hi := tl.TileLevelBounds(params)
		if hi < lo {
			t.Fatalf("%s: empty bound [%d, %d]", name, lo, hi)
		}
		tl.ForEachTile(params, func(tile []int64) bool {
			if l := tl.TileLevel(tile); l < lo || l > hi {
				t.Fatalf("%s: tile %v level %d outside bounds [%d, %d]",
					name, tile, l, lo, hi)
			}
			return true
		})
	}
}

// TestForEachTileLevelMatchesForEachTile: the combined scan visits the
// same tiles in the same order as ForEachTile, with levels and
// interior flags matching the individual queries.
func TestForEachTileLevelMatchesForEachTile(t *testing.T) {
	for name, sp := range staticSpecs(t) {
		tl, err := New(sp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		params := []int64{13}
		var ref [][]int64
		tl.ForEachTile(params, func(tile []int64) bool {
			ref = append(ref, append([]int64(nil), tile...))
			return true
		})
		probe := tl.NewProbe(params)
		i := 0
		interiorSeen := false
		tl.ForEachTileLevel(params, func(tile []int64, level int64, interior bool) bool {
			if i >= len(ref) {
				t.Fatalf("%s: scan visited more than %d tiles", name, len(ref))
			}
			for k := range tile {
				if tile[k] != ref[i][k] {
					t.Fatalf("%s: tile %d is %v, ForEachTile saw %v", name, i, tile, ref[i])
				}
			}
			if want := tl.TileLevel(tile); level != want {
				t.Fatalf("%s: tile %v reported level %d, TileLevel says %d", name, tile, level, want)
			}
			if want := probe.Interior(tile); interior != want {
				t.Fatalf("%s: tile %v reported interior=%v, probe says %v", name, tile, interior, want)
			}
			interiorSeen = interiorSeen || interior
			i++
			return true
		})
		if i != len(ref) {
			t.Fatalf("%s: scan visited %d tiles, ForEachTile %d", name, i, len(ref))
		}
		if name == "bandit2" && !interiorSeen {
			t.Errorf("%s: no interior tile at N=13 — fixture too small to exercise the flag", name)
		}
	}
}

// TestForEachTileLevelEarlyStop: returning false stops the scan.
func TestForEachTileLevelEarlyStop(t *testing.T) {
	tl, err := New(bandit2(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tl.ForEachTileLevel([]int64{9}, func([]int64, int64, bool) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d tiles after early stop, want 3", n)
	}
}
