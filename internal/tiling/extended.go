package tiling

import (
	"fmt"

	"dpgen/internal/fm"
	"dpgen/internal/ints"
	"dpgen/internal/lin"
	"dpgen/internal/spec"
)

// This file holds the analyses for the extended dependence templates:
// variable-distance offsets (parameter-affine components with declared
// parameter bounds) and range templates (a cell depends on an interval
// of predecessors, the nonserial polyadic DP case). The geometry —
// ghost shells, tile-to-tile crossings, pack slabs — is sized from the
// footprint hull over all admissible parameter values, while the
// per-run memory offsets and per-cell range lengths are evaluated from
// the expressions built here.

// RangeCheck is one iteration-space constraint restricted to a range
// template's footprint ray: at footprint step t the constraint's value
// is Base + t*Step (Step is parameter-only, so it is constant within a
// run). The usable range length is the longest prefix of steps with
// nonnegative value, exactly matching a serial reference loop that
// walks the interval and stops at the first cell outside the space.
type RangeCheck struct {
	Base lin.Ineq
	Step lin.Expr
}

const lenVarName = "z$len"

// maxTileDeps caps the tile-to-tile crossing enumeration; beyond this
// the spec's reach/width ratio is unreasonable and the cross product
// explodes.
const maxTileDeps = 512

// depLenMaxima bounds each range dependence's length form from above
// over the iteration space and the declared parameter bounds, by
// Fourier–Motzkin maximization. Point dependences get 1.
func (tl *Tiling) depLenMaxima() ([]int64, error) {
	sp := tl.Spec
	out := make([]int64, len(sp.Deps))
	for j := range sp.Deps {
		if !sp.Deps[j].IsRange() {
			out[j] = 1
			continue
		}
		le := sp.LenExpr(j)
		if le.IsConst() {
			out[j] = ints.Max(0, le.K)
			continue
		}
		m, err := tl.maxOverSpace(le)
		if err != nil {
			return nil, fmt.Errorf("tiling: dependence %q count: %w", sp.Deps[j].Name, err)
		}
		out[j] = m
	}
	return out, nil
}

// maxOverSpace returns max(0, maximum of e) over the iteration space
// intersected with the parameter bounds, treating parameters as
// variables. It errors when the maximum is unbounded — the user must
// declare tighter parameter bounds.
func (tl *Tiling) maxOverSpace(e lin.Expr) (int64, error) {
	sp := tl.Spec
	names := append(append([]string{}, sp.Params...), sp.Vars...)
	space, err := lin.NewSpace(nil, append(append([]string{}, names...), lenVarName))
	if err != nil {
		return 0, err
	}
	sys := lin.NewSystem(space)
	for _, q := range sp.Constraints {
		sys.Add(lin.Ineq{Expr: q.Expr.Lift(space)})
	}
	for _, b := range sp.ParamBounds {
		sys.AddGE(lin.Var(space, b.Name), lin.Const(space, b.Lo))
		sys.AddLE(lin.Var(space, b.Name), lin.Const(space, b.Hi))
	}
	sys.AddEq(lin.Var(space, lenVarName), e.Lift(space))
	elim, err := fm.EliminateAll(sys, names, fm.Options{Prune: fm.PruneSimplex})
	if err != nil {
		if err == fm.ErrInfeasible {
			return 0, nil
		}
		return 0, err
	}
	if elim.Dedup() {
		return 0, nil // empty space: the length is never realized
	}
	bounded := false
	var ub int64
	for _, q := range elim.Ineqs {
		c := q.Coeff(lenVarName)
		if c >= 0 {
			continue
		}
		b := ints.FloorDiv(q.K, -c)
		if !bounded || b < ub {
			bounded, ub = true, b
		}
	}
	if !bounded {
		return 0, fmt.Errorf("maximum length is unbounded over the parameter bounds; declare bounds for the parameters involved")
	}
	return ints.Max(0, ub), nil
}

// buildDepGeometry constructs, per dependence, the base memory offset
// and range-step memory offset as parameter-only expressions, plus the
// range length expressions and per-constraint range checks.
func (tl *Tiling) buildDepGeometry() {
	sp := tl.Spec
	n := len(sp.Deps)
	tl.DepLocExpr = make([]lin.Expr, n)
	tl.DepStrideExpr = make([]lin.Expr, n)
	tl.LenExprs = make([]lin.Expr, n)
	tl.RangeChecks = make([][]RangeCheck, n)
	for j := range sp.Deps {
		locE := lin.Zero(sp.Space())
		strideE := lin.Zero(sp.Space())
		for k := range sp.Vars {
			locE = locE.Add(sp.BaseExpr(j, k).Scale(tl.Strides[k]))
			if sp.Deps[j].IsRange() {
				strideE = strideE.Add(sp.DirExpr(j, k).Scale(tl.Strides[k]))
			}
		}
		tl.DepLocExpr[j] = locE
		tl.DepStrideExpr[j] = strideE
		tl.LenExprs[j] = sp.LenExpr(j)
		if !sp.Deps[j].IsRange() {
			continue
		}
		for _, q := range sp.Constraints {
			base := q.Expr
			step := lin.Zero(sp.Space())
			for k, v := range sp.Vars {
				a := q.Coeff(v)
				if a == 0 {
					continue
				}
				base = base.Add(sp.BaseExpr(j, k).Scale(a))
				step = step.Add(sp.DirExpr(j, k).Scale(a))
			}
			tl.RangeChecks[j] = append(tl.RangeChecks[j], RangeCheck{Base: lin.Ineq{Expr: base}, Step: step})
		}
	}
}

// DepLocOffAt evaluates the per-dependence base memory offsets for one
// parameter vector. For specs without variable-distance offsets this
// equals DepLocOff.
func (tl *Tiling) DepLocOffAt(params []int64) []int64 {
	return tl.evalDepExprs(tl.DepLocExpr, params)
}

// DepStrideAt evaluates the per-dependence range-step memory offsets
// for one parameter vector (zero for point dependences).
func (tl *Tiling) DepStrideAt(params []int64) []int64 {
	return tl.evalDepExprs(tl.DepStrideExpr, params)
}

func (tl *Tiling) evalDepExprs(exprs []lin.Expr, params []int64) []int64 {
	vals := make([]int64, tl.Spec.Space().N())
	copy(vals, params)
	out := make([]int64, len(exprs))
	for j, e := range exprs {
		out[j] = e.Eval(vals)
	}
	return out
}

// DepLenAt returns the usable footprint length of dependence j at the
// cell encoded by specVals (a (params | x) vector in the spec's space):
// the declared length clamped to the longest prefix of footprint cells
// inside the iteration space, never negative. Point dependences return
// 1 when valid and 0 otherwise.
func (tl *Tiling) DepLenAt(j int, specVals []int64) int64 {
	if !tl.Spec.Deps[j].IsRange() {
		if tl.DepValid(j, specVals) {
			return 1
		}
		return 0
	}
	n := tl.LenExprs[j].Eval(specVals)
	if n <= 0 {
		return 0
	}
	for _, rc := range tl.RangeChecks[j] {
		v0 := rc.Base.Eval(specVals)
		if v0 < 0 {
			return 0
		}
		if sv := rc.Step.Eval(specVals); sv < 0 {
			if m := v0/(-sv) + 1; m < n {
				n = m
			}
		}
	}
	return n
}

// depChoices returns the per-dimension tile-crossing magnitudes for
// dependence j, from its footprint hull: a footprint reaching R cells
// in a dimension of width w can cross up to ceil(R/w) tile boundaries.
func (tl *Tiling) depChoices(h *spec.Hull, j int) [][]int64 {
	d := len(tl.Spec.Vars)
	choice := make([][]int64, d)
	for k := 0; k < d; k++ {
		switch {
		case h.DepHi[j][k] > 0:
			m := ints.CeilDiv(h.DepHi[j][k], tl.Widths[k])
			for c := int64(0); c <= m; c++ {
				choice[k] = append(choice[k], c)
			}
		case h.DepLo[j][k] < 0:
			m := ints.CeilDiv(-h.DepLo[j][k], tl.Widths[k])
			for c := int64(0); c >= -m; c-- {
				choice[k] = append(choice[k], c)
			}
		default:
			choice[k] = []int64{0}
		}
	}
	return choice
}
