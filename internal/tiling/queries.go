package tiling

import (
	"dpgen/internal/ints"
)

// Loc returns the buffer index of the local cell i (in Vars order,
// components in [-GhostLo_k, Widths_k+GhostHi_k-1]).
func (tl *Tiling) Loc(i []int64) int64 {
	off := tl.BaseOff
	for k, v := range i {
		off += v * tl.Strides[k]
	}
	return off
}

// TileOf returns the tile index containing the global point x, and the
// local coordinates within that tile.
func (tl *Tiling) TileOf(x []int64) (t, local []int64) {
	t = make([]int64, len(x))
	local = make([]int64, len(x))
	for k, v := range x {
		t[k] = ints.FloorDiv(v, tl.Widths[k])
		local[k] = v - t[k]*tl.Widths[k]
	}
	return t, local
}

// GlobalOf returns the global coordinates of local cell i in tile t.
func (tl *Tiling) GlobalOf(t, i []int64) []int64 {
	x := make([]int64, len(t))
	for k := range t {
		x[k] = i[k] + tl.Widths[k]*t[k]
	}
	return x
}

// tileVals assembles a (params | t) value vector for the tile space.
func (tl *Tiling) tileVals(params, t []int64) []int64 {
	vals := make([]int64, tl.tileSpace.N())
	copy(vals, params)
	copy(vals[len(params):], t)
	return vals
}

// localParams assembles the parameter vector (params, t) of the local
// nest's space.
func (tl *Tiling) localParams(params, t []int64) []int64 {
	vals := make([]int64, len(params)+len(t))
	copy(vals, params)
	copy(vals[len(params):], t)
	return vals
}

// InTileSpace reports whether tile t exists for the given parameters.
func (tl *Tiling) InTileSpace(params, t []int64) bool {
	return tl.TileSys.Contains(tl.tileVals(params, t))
}

// DepCount returns the number of tile dependencies of t that exist in
// the tile space — the count that must reach zero before t can execute.
func (tl *Tiling) DepCount(params, t []int64) int {
	n := 0
	probe := make([]int64, len(t))
	for _, dep := range tl.TileDeps {
		for k := range t {
			probe[k] = t[k] + dep.Offset[k]
		}
		if tl.InTileSpace(params, probe) {
			n++
		}
	}
	return n
}

// Consumers appends to dst the tiles that consume edges produced by t:
// for each tile dependence offset o, the tile t - o when it exists.
// The returned slices are freshly allocated.
func (tl *Tiling) Consumers(params, t []int64) (tiles [][]int64, deps []int) {
	probe := make([]int64, len(t))
	for j, dep := range tl.TileDeps {
		for k := range t {
			probe[k] = t[k] - dep.Offset[k]
		}
		if tl.InTileSpace(params, probe) {
			tiles = append(tiles, append([]int64(nil), probe...))
			deps = append(deps, j)
		}
	}
	return tiles, deps
}

// TileCount returns the number of tiles for the given parameters.
func (tl *Tiling) TileCount(params []int64) int64 { return tl.TileNest.Count(params) }

// CellCount returns the number of iteration-space cells in tile t.
func (tl *Tiling) CellCount(params, t []int64) int64 {
	return tl.LocalNest.Count(tl.localParams(params, t))
}

// EdgeSize returns the number of cells in the edge slab that tile t packs
// for tile dependence dep (consumer side: the producer is t).
func (tl *Tiling) EdgeSize(params, t []int64, dep int) int64 {
	return tl.TileDeps[dep].PackNest.Count(tl.localParams(params, t))
}

// ForEachTile enumerates every tile index in loop order. The visited
// slice is in Vars order and must not be retained.
func (tl *Tiling) ForEachTile(params []int64, visit func(t []int64) bool) {
	d := len(tl.Spec.Vars)
	t := make([]int64, d)
	tl.TileNest.Enumerate(params, func(vals []int64) bool {
		copy(t, vals[len(params):])
		return visit(t)
	})
}

// InitialTiles scans the tile space for tiles with no satisfiable
// dependencies (Section IV-K). This runs serially at startup, as in the
// paper; the scan also yields the total tile count, which the runtime
// uses for termination.
func (tl *Tiling) InitialTiles(params []int64) (initial [][]int64, total int64) {
	tl.ForEachTile(params, func(t []int64) bool {
		total++
		if tl.DepCount(params, t) == 0 {
			initial = append(initial, append([]int64(nil), t...))
		}
		return true
	})
	return initial, total
}

// DepValid reports whether template dependence j may be used at global
// point x: every constraint it can violate must hold after shifting
// (Section IV-G). specVals is a scratch (params | x) vector in the spec's
// space, already filled by the caller.
func (tl *Tiling) DepValid(j int, specVals []int64) bool {
	for _, q := range tl.Validity[j] {
		if !q.Holds(specVals) {
			return false
		}
	}
	return true
}

// GoalTile returns the tile containing the spec's goal point and the
// goal's local coordinates.
func (tl *Tiling) GoalTile() (t, local []int64) {
	return tl.TileOf(tl.Spec.GoalPoint())
}

// ForEachCell enumerates the cells of tile t in dependence-respecting
// execution order (loop order with per-dimension ExecDirs directions,
// Fig 3), passing the local coordinate vector (Vars order). Every cell's
// template dependencies are enumerated before the cell itself. The slice
// must not be retained.
func (tl *Tiling) ForEachCell(params, t []int64, visit func(i []int64) bool) {
	d := len(tl.Spec.Vars)
	lp := tl.localParams(params, t)
	i := make([]int64, d)
	dirs := make([]int, d)
	for lvl, k := range tl.orderIdx {
		dirs[lvl] = tl.ExecDirs[k]
	}
	tl.LocalNest.EnumerateDir(lp, dirs, func(vals []int64) bool {
		copy(i, vals[len(lp):])
		return visit(i)
	})
}

// ForEachEdgeCell enumerates the producer-local slab cells of tile
// dependence dep for producer tile t, in the shared pack/unpack order.
func (tl *Tiling) ForEachEdgeCell(params, t []int64, dep int, visit func(i []int64) bool) {
	d := len(tl.Spec.Vars)
	lp := tl.localParams(params, t)
	i := make([]int64, d)
	tl.TileDeps[dep].PackNest.Enumerate(lp, func(vals []int64) bool {
		copy(i, vals[len(lp):])
		return visit(i)
	})
}

// UnpackLoc maps a producer-local slab cell to the consumer's buffer
// index for tile dependence dep: crossing dimensions land in the
// consumer's ghost shell.
func (tl *Tiling) UnpackLoc(dep int, i []int64) int64 {
	off := tl.BaseOff
	o := tl.TileDeps[dep].Offset
	for k, v := range i {
		off += (v + o[k]*tl.Widths[k]) * tl.Strides[k]
	}
	return off
}
