package tiling

// Static wavefront classification for the hybrid scheduler. A tile's
// wavefront level orders tiles so that every tile-to-tile dependence
// points from a strictly smaller level to a larger one: level offsets
// follow the execution direction per dimension, so a producer tile
// (which sits one step against the execution direction in at least one
// dimension) always has a smaller level than its consumer. Runtimes can
// therefore release whole level "diagonals" at once — a single counter
// per level replaces per-tile dependence bookkeeping for tiles whose
// inputs are all locally produced.

// TileLevel returns the wavefront level of tile t (Spec.Vars order):
// the sum of the tile indices, each negated in dimensions that execute
// downward. For every tile dependence the producer's level is strictly
// smaller than the consumer's, so levels are a valid topological order
// of the tile dependence DAG.
func (tl *Tiling) TileLevel(t []int64) int64 {
	var l int64
	for k, d := range tl.ExecDirs {
		if d >= 0 {
			l += t[k]
		} else {
			l -= t[k]
		}
	}
	return l
}

// TileLevelBounds returns the inclusive range [lo, hi] that TileLevel
// can take over the tile space at the given parameter values, by
// interval arithmetic over the per-dimension tile bounds. The range may
// overestimate at the ends for non-rectangular spaces; it is only a
// sizing bound, every actual tile level falls inside it.
func (tl *Tiling) TileLevelBounds(params []int64) (lo, hi int64) {
	blo, bhi := tl.TileBounds(params)
	for k, d := range tl.ExecDirs {
		if d >= 0 {
			lo += blo[k]
			hi += bhi[k]
		} else {
			lo -= bhi[k]
			hi -= blo[k]
		}
	}
	return lo, hi
}

// ForEachTileLevel scans the tile space in loop order like ForEachTile,
// additionally reporting each tile's wavefront level and whether the
// tile is interior (its whole rectangle lies inside the iteration space
// with every template dependence valid — the same classification the
// dense fast path uses). The scan stops early when visit returns false.
// The slice passed to visit is reused between calls.
func (tl *Tiling) ForEachTileLevel(params []int64, visit func(t []int64, level int64, interior bool) bool) {
	probe := tl.NewProbe(params)
	tl.ForEachTile(params, func(t []int64) bool {
		return visit(t, tl.TileLevel(t), probe.Interior(t))
	})
}
