package ints

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddChecked(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {1, 2, 3}, {-5, 3, -2}, {math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MinInt64 + 1, -1, math.MinInt64},
	}
	for _, c := range cases {
		if got := AddChecked(c.a, c.b); got != c.want {
			t.Errorf("AddChecked(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddCheckedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	AddChecked(math.MaxInt64, 1)
}

func TestSubCheckedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	SubChecked(math.MinInt64, 1)
}

func TestMulChecked(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {5, 0, 0}, {3, 7, 21}, {-3, 7, -21}, {-3, -7, 21},
		{1 << 31, 1 << 31, 1 << 62},
	}
	for _, c := range cases {
		if got := MulChecked(c.a, c.b); got != c.want {
			t.Errorf("MulChecked(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCheckedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	MulChecked(math.MaxInt64, 2)
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6},
		{12, -18, 6}, {-12, -18, 6}, {7, 13, 1}, {100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {5, 0, 0}, {4, 6, 12}, {-4, 6, 12}, {7, 13, 91}, {6, 6, 6},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FloorDiv(1, 0) },
		func() { CeilDiv(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on division by zero")
				}
			}()
			f()
		}()
	}
}

// Property: FloorDiv and CeilDiv agree with the mathematical definitions
// q = floor(a/b): b*q <= a < b*(q+1) for b>0, and symmetric for b<0.
func TestFloorDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		A, B := int64(a), int64(b)
		q := FloorDiv(A, B)
		r := A - q*B
		// Remainder of floored division has the sign of the divisor.
		return r >= 0 && r < Abs(B) || (B < 0 && r <= 0 && r > B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilFloorDuality(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		A, B := int64(a), int64(b)
		// ceil(a/b) == -floor(-a/b)
		return CeilDiv(A, B) == -FloorDiv(-A, B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDProperty(t *testing.T) {
	f := func(a, b int32) bool {
		A, B := int64(a), int64(b)
		g := GCD(A, B)
		if A == 0 && B == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return A%g == 0 && B%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Min/Max wrong")
	}
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
}
