// Package ints provides overflow-checked int64 arithmetic and small
// number-theoretic helpers used throughout the polyhedral machinery.
//
// The Fourier–Motzkin eliminator and the loop-bound generator keep all
// inequality coefficients as int64. Coefficients stay small for the
// problem sizes this generator targets, but pairwise FM combination can
// multiply coefficients, so every arithmetic step is overflow-checked and
// panics with a descriptive message rather than silently wrapping.
package ints

import "fmt"

// AddChecked returns a+b, panicking on int64 overflow.
func AddChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("ints: overflow in %d + %d", a, b))
	}
	return s
}

// SubChecked returns a-b, panicking on int64 overflow.
func SubChecked(a, b int64) int64 {
	d := a - b
	if (b < 0 && a > 0 && d < 0) || (b > 0 && a < 0 && d >= 0) {
		panic(fmt.Sprintf("ints: overflow in %d - %d", a, b))
	}
	return d
}

// MulChecked returns a*b, panicking on int64 overflow.
func MulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(fmt.Sprintf("ints: overflow in %d * %d", a, b))
	}
	return p
}

// NegChecked returns -a, panicking on overflow (math.MinInt64).
func NegChecked(a int64) int64 {
	if a == -a && a != 0 {
		panic("ints: overflow negating MinInt64")
	}
	return -a
}

// Abs returns |a|, panicking on overflow (math.MinInt64).
func Abs(a int64) int64 {
	if a < 0 {
		return NegChecked(a)
	}
	return a
}

// GCD returns the greatest common divisor of |a| and |b|.
// GCD(0, 0) = 0 by convention.
func GCD(a, b int64) int64 {
	a, b = Abs(a), Abs(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of |a| and |b|, with LCM(0, x) = 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return MulChecked(Abs(a)/g, Abs(b))
}

// FloorDiv returns floor(a/b) for b != 0.
func FloorDiv(a, b int64) int64 {
	if b == 0 {
		panic("ints: FloorDiv by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ceil(a/b) for b != 0.
func CeilDiv(a, b int64) int64 {
	if b == 0 {
		panic("ints: CeilDiv by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
