package tcp

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPickClockOffset(t *testing.T) {
	if _, _, ok := pickClockOffset(nil); ok {
		t.Error("empty sample set reported ok")
	}
	off, rtt, ok := pickClockOffset([]clockSample{
		{rtt: 5000, offset: 900},
		{rtt: 1200, offset: 40}, // min RTT: tightest error bound wins
		{rtt: 3000, offset: -500},
	})
	if !ok || off != 40 || rtt != 1200 {
		t.Errorf("picked offset %d rtt %d ok %v, want the min-RTT sample (40, 1200)", off, rtt, ok)
	}
}

// TestClockSyncSameHost checks the handshake-time estimate on a real
// loopback mesh: both endpoints share one physical clock, so the
// estimate IS the error, and the theory bounds it by half the probe's
// round trip.
func TestClockSyncSameHost(t *testing.T) {
	t0, t1 := dialPair(t, Options{})
	<-t1.clockDone
	if off, rtt := t0.ClockOffset(); off != 0 || rtt != 0 {
		t.Errorf("rank 0 offset = (%d, %d), want zero: rank 0 defines the timeline", off, rtt)
	}
	off, rtt := t1.ClockOffset()
	if rtt <= 0 {
		t.Fatalf("rank 1 min probe rtt = %d, want > 0", rtt)
	}
	// Scheduling slack: the bound is |off| <= rtt/2 on an ideal host;
	// allow a little preemption between the clock reads.
	slack := int64(200 * time.Microsecond)
	if off < -rtt/2-slack || off > rtt/2+slack {
		t.Errorf("offset estimate %dns outside the ±rtt/2 bound (rtt %dns)", off, rtt)
	}
}

// TestClockSyncAsymmetricDelay injects a one-way delay into half of the
// clock responses (the worst case for a midpoint estimator: fully
// asymmetric path delay). The min-RTT selector must pick an undelayed
// round, keeping the estimate bounded by that round's ±rtt/2 instead of
// absorbing the injected delay.
func TestClockSyncAsymmetricDelay(t *testing.T) {
	const inject = 3 * time.Millisecond
	var calls atomic.Int64
	opts := Options{
		clockRespDelay: func() time.Duration {
			if calls.Add(1)%2 == 1 {
				return inject // delay every other response
			}
			return 0
		},
	}
	_, t1 := dialPair(t, opts)
	<-t1.clockDone
	off, rtt := t1.ClockOffset()
	if rtt <= 0 {
		t.Fatalf("min probe rtt = %d, want > 0", rtt)
	}
	if rtt >= int64(inject) {
		t.Errorf("min rtt %dns did not reject the %v injected rounds", rtt, inject)
	}
	slack := int64(200 * time.Microsecond)
	if off < -rtt/2-slack || off > rtt/2+slack {
		t.Errorf("offset estimate %dns outside ±rtt/2 (rtt %dns) despite min-RTT selection", off, rtt)
	}
	if off >= int64(inject)/2 {
		t.Errorf("offset estimate %dns absorbed the injected asymmetric delay (%v/2)", off, inject)
	}
}

// TestClockSyncAllDelayed is the degraded case: when every response is
// delayed, the estimate inevitably absorbs the asymmetry, but the error
// stays within the advertised ±rtt/2 envelope of the kept sample.
func TestClockSyncAllDelayed(t *testing.T) {
	const inject = 2 * time.Millisecond
	opts := Options{
		clockRespDelay: func() time.Duration { return inject },
	}
	_, t1 := dialPair(t, opts)
	<-t1.clockDone
	off, rtt := t1.ClockOffset()
	if rtt < int64(inject) {
		t.Fatalf("min rtt %dns below the injected floor %v", rtt, inject)
	}
	slack := int64(500 * time.Microsecond)
	if off < -rtt/2-slack || off > rtt/2+slack {
		t.Errorf("offset estimate %dns outside ±rtt/2 (rtt %dns)", off, rtt)
	}
}

func TestClockSyncDisabled(t *testing.T) {
	_, t1 := dialPair(t, Options{DisableClockSync: true})
	<-t1.clockDone
	if off, rtt := t1.ClockOffset(); off != 0 || rtt != 0 {
		t.Errorf("DisableClockSync left offset = (%d, %d), want zero", off, rtt)
	}
}

// TestNetStats exercises the wire-level snapshot: per-peer frame and
// byte counters on both directions, the edge-latency histogram fed by
// received DATA frames, and the Prometheus rendering.
func TestNetStats(t *testing.T) {
	t0, t1 := dialPair(t, Options{})
	t0.Send(1, 7, []float64{1, 2, 3}, []int64{9})
	m, ok := t1.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if m.SendAtUnixNanos == 0 {
		t.Error("received message lacks the sender's aligned send timestamp")
	}
	if m.Seq == 0 {
		t.Error("received message lacks a wire sequence number")
	}
	m.Release()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := t1.NetStats(); s.EdgeLatency.Count >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge latency histogram never observed the received frame")
		}
		time.Sleep(time.Millisecond)
	}

	s0, s1 := t0.NetStats(), t1.NetStats()
	if s0.Rank != 0 || s0.Size != 2 || s1.Rank != 1 {
		t.Fatalf("identity: %+v / %+v", s0, s1)
	}
	if len(s0.Peers) != 1 || s0.Peers[0].Peer != 1 {
		t.Fatalf("rank 0 peers = %+v, want exactly peer 1", s0.Peers)
	}
	if s0.Peers[0].FramesSent == 0 || s0.Peers[0].BytesSent == 0 {
		t.Errorf("rank 0 sent counters empty: %+v", s0.Peers[0])
	}
	if s1.Peers[0].FramesRecv == 0 || s1.Peers[0].BytesRecv == 0 {
		t.Errorf("rank 1 recv counters empty: %+v", s1.Peers[0])
	}
	if s0.Messages != 1 || s0.Elems != 3 {
		t.Errorf("rank 0 message counters = %d msgs / %d elems, want 1 / 3", s0.Messages, s0.Elems)
	}

	var sb strings.Builder
	if err := s1.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dp_net_bytes_recv_total{rank="1"}`,
		`dp_net_peer_frames_recv_total{rank="1",peer="0"}`,
		`dp_net_peer_bytes_sent_total{rank="1",peer="0"}`,
		`dp_clock_offset_ns{rank="1"}`,
		`dp_edge_latency_seconds_bucket{rank="1",le="+Inf"} 1`,
		`dp_edge_latency_seconds_count{rank="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition lacks %q:\n%s", want, out)
		}
	}
}
