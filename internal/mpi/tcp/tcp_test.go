package tcp

import (
	"net"
	"sync"
	"testing"
	"time"
)

// dialPair brings up a two-rank mesh on loopback with pre-bound
// listeners (no port races) and registers cleanup.
func dialPair(t *testing.T, opts Options) (*Transport, *Transport) {
	t.Helper()
	lns := make([]net.Listener, 2)
	peers := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	var ts [2]*Transport
	var errs [2]error
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opts
			o.Listener = lns[r]
			ts[r], errs[r] = Dial(r, peers, o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		var cwg sync.WaitGroup
		for _, tr := range ts {
			cwg.Add(1)
			go func(tr *Transport) { defer cwg.Done(); tr.Close() }(tr)
		}
		cwg.Wait()
	})
	return ts[0], ts[1]
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(0, nil, Options{}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := Dial(2, []string{"a", "b"}, Options{}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestSingleRankMesh(t *testing.T) {
	tr, err := Dial(0, []string{"unused"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 5, []float64{1, 2}, []int64{3})
	m, ok := tr.Recv()
	if !ok || m.Src != 0 || m.Tag != 5 || m.Data[1] != 2 || m.Meta[0] != 3 {
		t.Fatalf("self message wrong: %+v ok=%v", m, ok)
	}
	m.Release()
	if err := tr.Barrier(); err != nil {
		t.Errorf("single-rank barrier: %v", err)
	}
	if v, err := tr.AllReduce(7, func(a, b float64) float64 { return a + b }); err != nil || v != 7 {
		t.Errorf("single-rank allreduce = %v, %v", v, err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestDialRetry: rank 1 dials rank 0 before rank 0 is listening; the
// exponential-backoff retry must ride out the gap.
func TestDialRetry(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr0 := ln0.Addr().String()
	ln0.Close() // nobody listening yet: rank 1's first dials must fail
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{addr0, ln1.Addr().String()}

	var retries int
	opts := Options{
		DialTimeout: 10 * time.Second,
		RetryBase:   5 * time.Millisecond,
		Logf:        func(string, ...any) { retries++ },
	}
	t1Done := make(chan error, 1)
	var t1 *Transport
	go func() {
		var err error
		o := opts
		o.Listener = ln1
		t1, err = Dial(1, peers, o)
		t1Done <- err
	}()

	time.Sleep(100 * time.Millisecond) // let rank 1 accumulate retries
	lnRe, err := net.Listen("tcp", addr0)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr0, err)
	}
	o := opts
	o.Listener = lnRe
	t0, err := Dial(0, peers, o)
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	if err := <-t1Done; err != nil {
		t.Fatalf("rank 1: %v", err)
	}
	if retries == 0 {
		t.Error("no dial retries recorded despite a late listener")
	}

	t1.Send(0, 1, []float64{42}, nil)
	m, ok := t0.Recv()
	if !ok || m.Data[0] != 42 {
		t.Fatalf("post-retry message wrong: %+v ok=%v", m, ok)
	}
	m.Release()
	var wg sync.WaitGroup
	for _, tr := range []*Transport{t0, t1} {
		wg.Add(1)
		go func(tr *Transport) { defer wg.Done(); tr.Close() }(tr)
	}
	wg.Wait()
}

// TestBadHello: a stranger speaking garbage on the mesh port must fail
// the accept side rather than joining the mesh.
func TestBadHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln.Addr().String(), "127.0.0.1:1"} // rank 1 never dials properly
	dialDone := make(chan error, 1)
	go func() {
		_, err := Dial(0, peers, Options{DialTimeout: 5 * time.Second, Listener: ln})
		dialDone <- err
	}()
	c, err := net.Dial("tcp", peers[0])
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	c.Close()
	if err := <-dialDone; err == nil {
		t.Error("mesh accepted a malformed hello")
	}
}

func TestBytesOnWire(t *testing.T) {
	t0, t1 := dialPair(t, Options{})
	t0.Send(1, 1, []float64{1, 2, 3}, []int64{4})
	m, ok := t1.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	m.Release()
	// DATA frame: 4 len + 1 kind + 36 header + 8 meta + 24 data = 73.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sent, _ := t0.Bytes(); sent >= 73 {
			break
		}
		if time.Now().After(deadline) {
			sent, _ := t0.Bytes()
			t.Fatalf("rank 0 sent %d bytes, want >= 73", sent)
		}
		time.Sleep(time.Millisecond)
	}
	// Rank 1 read the DATA frame and wrote an ACK (4+1 bytes).
	for {
		_, recvd := t1.Bytes()
		sent, _ := t1.Bytes()
		if recvd >= 73 && sent >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 1 bytes sent=%d recvd=%d, want >=5/>=73", sent, recvd)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSelfSendUsesSlots: self-delivery must respect the send-buffer
// budget like any other destination.
func TestSelfSendUsesSlots(t *testing.T) {
	t0, _ := dialPair(t, Options{SendBufs: 1})
	t0.Send(0, 1, []float64{1}, nil)
	sent2 := make(chan struct{})
	go func() {
		t0.Send(0, 2, []float64{2}, nil)
		close(sent2)
	}()
	select {
	case <-sent2:
		t.Fatal("second self-send did not block with 1 send buffer")
	case <-time.After(30 * time.Millisecond):
	}
	m, ok := t0.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	m.Release()
	select {
	case <-sent2:
	case <-time.After(5 * time.Second):
		t.Fatal("second self-send still blocked after release")
	}
	m2, _ := t0.Recv()
	m2.Release()
}
