// Clock-offset estimation and the wire-level observability surface of
// the transport: per-peer frame/byte counters, the cross-rank edge
// latency histogram, and NTP-style ping-pong clock sync against rank 0.
//
// The sync runs right after mesh establishment (and again after a
// REJOIN): the rank sends CLOCKREQ carrying its local send time t0;
// rank 0 echoes it in CLOCKRESP together with its own aligned wall
// clock ts. On receipt at local time t1, rtt = t1 - t0 and the
// midpoint estimate is offset = ts - (t0 + rtt/2). The estimate from
// the minimum-RTT round is kept: its error is bounded by the
// asymmetry of the two path delays, which is at most rtt/2 — so the
// tightest round gives the tightest bound. Every rank then stamps
// outgoing DATA frames and trace metadata with local time + offset,
// placing the whole run on rank 0's timeline.

package tcp

import (
	"fmt"
	"io"
	"time"

	"dpgen/internal/obs"
)

// clockResp is one decoded CLOCKRESP frame plus its local receive time.
type clockResp struct {
	echo   int64 // the t0 we sent, echoed back
	server int64 // responder's aligned unix nanos
	at     int64 // local unix nanos at receipt
}

// clockSample is one completed ping-pong round.
type clockSample struct {
	rtt    int64 // round-trip nanoseconds
	offset int64 // midpoint offset estimate: responder clock - local clock
}

// pickClockOffset selects the estimate of the minimum-RTT sample —
// the round with the tightest rtt/2 error bound. ok is false for an
// empty sample set.
func pickClockOffset(samples []clockSample) (offset, rtt int64, ok bool) {
	for i, s := range samples {
		if i == 0 || s.rtt < rtt {
			offset, rtt, ok = s.offset, s.rtt, true
		}
	}
	return offset, rtt, ok
}

// syncClock runs Options.ClockProbes ping-pong rounds against rank 0
// and stores the min-RTT offset estimate. Best effort: on a stopped
// transport or all probes timing out it leaves the offset at zero and
// logs, rather than failing the run over degraded trace alignment.
//
// Both Dial and DialRejoin run it on a goroutine. It cannot be
// synchronous: peers whose Dial already returned send DATA (or, after
// a rejoin, replay retained history) immediately, and once that
// traffic exceeds the inbox capacity this endpoint's reader parks on
// delivery until the engine starts draining — which it won't, while
// Dial is still blocked in here. The parked reader would starve the
// clock responses queued behind the backlog and, under Recovery, the
// silence would trip the local heartbeat monitor into tearing the
// connection down. Until the sync completes, stampData marks outgoing
// frames unaligned (sendAt 0); clockDone closes when it has.
func (t *Transport) syncClock() {
	defer func() {
		t.clockReady.Store(true)
		close(t.clockDone)
	}()
	if t.rank == 0 || t.size == 1 || t.opts.DisableClockSync {
		return
	}
	pc := t.conn(0)
	if pc == nil {
		return
	}
	var samples []clockSample
	timeout := time.NewTimer(0)
	if !timeout.Stop() {
		<-timeout.C
	}
	defer timeout.Stop()
	for i := 0; i < t.opts.ClockProbes; i++ {
		t0 := time.Now().UnixNano()
		if _, err := pc.sendFrame(t, nil, kClockReq, func(b []byte) []byte {
			return appendU64(b, uint64(t0))
		}); err != nil {
			t.opts.logf("tcp: rank %d: clock probe %d write failed: %v", t.rank, i, err)
			break
		}
		timeout.Reset(time.Second)
	wait:
		for {
			select {
			case r := <-t.clockCh:
				if r.echo != t0 {
					continue // response to an earlier, timed-out probe
				}
				rtt := r.at - t0
				if rtt < 0 {
					break wait // non-monotonic wall clock step; discard
				}
				samples = append(samples, clockSample{
					rtt:    rtt,
					offset: r.server - (t0 + rtt/2),
				})
				break wait
			case <-timeout.C:
				break wait
			case <-t.stop:
				if !timeout.Stop() {
					<-timeout.C
				}
				return
			}
		}
		if !timeout.Stop() {
			select {
			case <-timeout.C:
			default:
			}
		}
	}
	off, rtt, ok := pickClockOffset(samples)
	if !ok {
		t.opts.logf("tcp: rank %d: clock sync got no responses from rank 0; traces stay unaligned", t.rank)
		return
	}
	t.clockOff.Store(off)
	t.clockRTT.Store(rtt)
	t.opts.logf("tcp: rank %d: clock offset to rank 0: %s (min rtt %s over %d/%d probes)",
		t.rank, time.Duration(off), time.Duration(rtt), len(samples), t.opts.ClockProbes)
}

// alignedNow returns the local wall clock shifted onto rank 0's
// timeline by the estimated offset.
func (t *Transport) alignedNow() int64 {
	return time.Now().UnixNano() + t.clockOff.Load()
}

// ClockOffset returns the estimated offset of rank 0's clock relative
// to the local clock (rank0 = local + offset) and the RTT of the probe
// the estimate came from. Both are zero on rank 0, on single-rank
// meshes, with Options.DisableClockSync, and when the sync failed.
func (t *Transport) ClockOffset() (offsetNs, rttNs int64) {
	return t.clockOff.Load(), t.clockRTT.Load()
}

// EdgeLatency returns the histogram of clock-aligned send-to-receive
// latencies of the DATA frames this endpoint has received — the live
// dp_edge_latency_seconds series.
func (t *Transport) EdgeLatency() obs.HistogramSnapshot {
	return t.latHist.Snapshot()
}

// PeerNet is one peer's wire counters within NetStats.
type PeerNet struct {
	// Peer is the peer rank.
	Peer int `json:"peer"`
	// FramesSent/FramesRecv count whole frames of any kind (DATA,
	// ACK, heartbeat, collectives); BytesSent/BytesRecv the raw bytes
	// including length prefixes.
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
}

// NetStats is the endpoint-wide wire-level statistics snapshot: totals,
// clock-sync state and per-peer counters. Safe to call while the run is
// in flight (all sources are atomics) — it is what the live /metrics
// endpoint serves.
type NetStats struct {
	// Rank and Size identify the endpoint.
	Rank int `json:"rank"`
	Size int `json:"size"`
	// BytesSent/BytesRecv are raw wire totals (Transport.Bytes).
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	// Messages and Elems are the DATA messages and float64 elements
	// sent (Transport.Stats).
	Messages int64 `json:"messages"`
	Elems    int64 `json:"elems"`
	// ClockOffsetNs/ClockRTTNs are the clock-sync estimate
	// (Transport.ClockOffset).
	ClockOffsetNs int64 `json:"clock_offset_ns"`
	ClockRTTNs    int64 `json:"clock_rtt_ns"`
	// HeartbeatMisses/PeerRestarts are the recovery counters.
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	PeerRestarts    int64 `json:"peer_restarts"`
	// Peers holds the per-peer frame/byte counters, excluding the self
	// index.
	Peers []PeerNet `json:"peers"`
	// EdgeLatency is the live latency histogram of received edges.
	EdgeLatency obs.HistogramSnapshot `json:"edge_latency"`
}

// NetStats snapshots the endpoint's wire-level counters.
func (t *Transport) NetStats() NetStats {
	s := NetStats{
		Rank:            t.rank,
		Size:            t.size,
		BytesSent:       t.bytesOut.Load(),
		BytesRecv:       t.bytesIn.Load(),
		Messages:        t.msgs.Load(),
		Elems:           t.elems.Load(),
		ClockOffsetNs:   t.clockOff.Load(),
		ClockRTTNs:      t.clockRTT.Load(),
		HeartbeatMisses: t.hbMisses.Load(),
		PeerRestarts:    t.peerRestarts.Load(),
		EdgeLatency:     t.latHist.Snapshot(),
	}
	for p := 0; p < t.size; p++ {
		if p == t.rank {
			continue
		}
		s.Peers = append(s.Peers, PeerNet{
			Peer:       p,
			FramesSent: t.framesTo[p].Load(),
			FramesRecv: t.framesFrom[p].Load(),
			BytesSent:  t.bytesTo[p].Load(),
			BytesRecv:  t.bytesFrom[p].Load(),
		})
	}
	return s
}

// WritePrometheus writes the snapshot in the Prometheus text format
// with a rank label on every sample — the body of a rank's live
// /metrics endpoint. The supervisor's aggregation relies on every rank
// self-labelling here.
func (s NetStats) WritePrometheus(w io.Writer) error {
	rank := fmt.Sprintf("rank=%q", fmt.Sprint(s.Rank))
	type fam struct {
		name, typ, help string
		v               int64
	}
	fams := []fam{
		{"dp_net_bytes_sent_total", "counter", "Raw bytes written to the wire, frame headers included.", s.BytesSent},
		{"dp_net_bytes_recv_total", "counter", "Raw bytes read from the wire, frame headers included.", s.BytesRecv},
		{"dp_net_messages_sent_total", "counter", "DATA messages sent.", s.Messages},
		{"dp_net_elems_sent_total", "counter", "Float64 elements sent in DATA messages.", s.Elems},
		{"dp_clock_offset_ns", "gauge", "Estimated clock offset to rank 0 in nanoseconds.", s.ClockOffsetNs},
		{"dp_clock_rtt_ns", "gauge", "RTT of the min-RTT clock probe in nanoseconds.", s.ClockRTTNs},
		{"dp_heartbeat_misses_total", "counter", "Heartbeat intervals a peer went silent past the miss threshold.", s.HeartbeatMisses},
		{"dp_peer_restarts_total", "counter", "Peers that died and successfully rejoined.", s.PeerRestarts},
	}
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s{%s} %d\n",
			f.name, f.help, f.name, f.typ, f.name, rank, f.v); err != nil {
			return err
		}
	}
	type peerFam struct {
		name, help string
		v          func(PeerNet) int64
	}
	peerFams := []peerFam{
		{"dp_net_peer_frames_sent_total", "Frames sent to each peer.", func(p PeerNet) int64 { return p.FramesSent }},
		{"dp_net_peer_frames_recv_total", "Frames received from each peer.", func(p PeerNet) int64 { return p.FramesRecv }},
		{"dp_net_peer_bytes_sent_total", "Bytes sent to each peer.", func(p PeerNet) int64 { return p.BytesSent }},
		{"dp_net_peer_bytes_recv_total", "Bytes received from each peer.", func(p PeerNet) int64 { return p.BytesRecv }},
	}
	for _, f := range peerFams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name); err != nil {
			return err
		}
		for _, p := range s.Peers {
			if _, err := fmt.Fprintf(w, "%s{%s,peer=\"%d\"} %d\n", f.name, rank, p.Peer, f.v(p)); err != nil {
				return err
			}
		}
	}
	return s.EdgeLatency.WritePrometheus(w,
		"dp_edge_latency_seconds", "Clock-aligned send-to-receive latency of received edges.", rank)
}
