// Fault-tolerance tests for the Recovery protocol: send retention and
// parking, rejoin replay, peer-down detection, and context
// cancellation. The engine-level bit-identity test over a crashed and
// recovered rank lives in the repository root (recovery_test.go).
package tcp_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpgen/internal/mpi"
	"dpgen/internal/mpi/tcp"
)

// recoveryPair builds a two-rank Recovery mesh over loopback and
// returns the transports plus the peer address list (for DialRejoin).
func recoveryPair(t *testing.T, tune func(o *tcp.Options)) (t0, t1 *tcp.Transport, peers []string) {
	t.Helper()
	lns := make([]net.Listener, 2)
	peers = make([]string, 2)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]*tcp.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := tcp.Options{
				Recovery:    true,
				SendBufs:    16,
				RecvBufs:    16,
				DialTimeout: 10 * time.Second,
				Listener:    lns[r],
			}
			if tune != nil {
				tune(&o)
			}
			ts[r], errs[r] = tcp.Dial(r, peers, o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	return ts[0], ts[1], peers
}

// TestRejoinRedelivery: rank 0 sends half its traffic before rank 1
// dies and half while it is down (parked, not blocking). The restarted
// rank 1 must receive every message at least once through the retained
// history replay, and rank 0 must count one peer restart.
func TestRejoinRedelivery(t *testing.T) {
	t0, t1, peers := recoveryPair(t, nil)

	const total = 10
	for tag := 0; tag < 5; tag++ {
		t0.Send(1, tag, []float64{float64(tag)}, nil)
	}
	for i := 0; i < 3; i++ {
		m, ok := t1.Recv()
		if !ok {
			t.Fatal("healthy recv failed")
		}
		m.Release()
	}
	t1.Kill()
	time.Sleep(20 * time.Millisecond) // let rank 0's reader observe the death

	// Sends to a down peer park: they must return without blocking even
	// though nothing is draining ACKs.
	parkDone := make(chan struct{})
	go func() {
		defer close(parkDone)
		for tag := 5; tag < total; tag++ {
			t0.Send(1, tag, []float64{float64(tag)}, nil)
		}
	}()
	select {
	case <-parkDone:
	case <-time.After(10 * time.Second):
		t.Fatal("sends to a down peer blocked")
	}

	t1b, err := tcp.DialRejoin(1, peers, tcp.Options{SendBufs: 16, RecvBufs: 16, DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	seen := make(map[int]bool)
	for len(seen) < total {
		m, ok := t1b.Recv()
		if !ok {
			t.Fatalf("recv after rejoin failed with %d/%d tags seen", len(seen), total)
		}
		if m.Data[0] != float64(m.Tag) {
			t.Fatalf("corrupted replayed message: %+v", m)
		}
		seen[m.Tag] = true
		m.Release()
	}
	if _, restarts := t0.RecoveryStats(); restarts != 1 {
		t.Errorf("rank 0 peer restarts = %d, want 1", restarts)
	}

	var wg sync.WaitGroup
	for _, tr := range []*tcp.Transport{t0, t1b} {
		wg.Add(1)
		go func(tr *tcp.Transport) { defer wg.Done(); tr.Close() }(tr)
	}
	wg.Wait()
}

// TestPeerDownTimeout: a dead peer that never rejoins must fail the
// transport with a typed *mpi.PeerDownError carrying the dead rank,
// unblocking Recv, rather than waiting forever.
func TestPeerDownTimeout(t *testing.T) {
	t0, t1, _ := recoveryPair(t, func(o *tcp.Options) {
		o.HeartbeatEvery = 10 * time.Millisecond
		o.HeartbeatMisses = 3
		o.PeerDownTimeout = 150 * time.Millisecond
	})
	defer t0.Close()

	recvOK := make(chan bool, 1)
	go func() {
		_, ok := t0.Recv()
		recvOK <- ok
	}()
	t1.Kill()

	select {
	case ok := <-recvOK:
		if ok {
			t.Error("Recv returned ok after unrecovered peer death")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv hung past the peer-down timeout")
	}
	var pde *mpi.PeerDownError
	if err := t0.Err(); !errors.As(err, &pde) {
		t.Fatalf("Err = %v, want *mpi.PeerDownError", err)
	} else if pde.Rank != 1 {
		t.Errorf("PeerDownError.Rank = %d, want 1", pde.Rank)
	}
}

// TestContextCancelUnblocks: cancelling the endpoint's context must
// promptly unblock Recv and Barrier, and Close must reap every
// goroutine the mesh started.
func TestContextCancelUnblocks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t0, t1, _ := recoveryPair(t, func(o *tcp.Options) { o.Context = ctx })

	recvOK := make(chan bool, 1)
	barrierErr := make(chan error, 1)
	go func() {
		_, ok := t0.Recv()
		recvOK <- ok
	}()
	go func() {
		barrierErr <- t1.Barrier() // rank 0 never arrives
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case ok := <-recvOK:
		if ok {
			t.Error("Recv returned ok after context cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung after context cancellation")
	}
	select {
	case err := <-barrierErr:
		if err == nil {
			t.Error("Barrier returned nil error after context cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Barrier hung after context cancellation")
	}
	t0.Close()
	t1.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
