// Package tcp is the multi-process implementation of the mpi.Transport
// contract: every rank is a separate OS process, and tile edges travel
// between them over length-prefixed frames on a full mesh of TCP
// connections. It is the piece that turns the in-process reproduction
// into a genuinely distributed system — cmd/dprun wires it up behind
// the -distributed flag.
//
// The wire format, buffer-ownership rules and failure semantics are
// specified in docs/TRANSPORT.md. In short:
//
//   - Mesh establishment: rank r listens on peers[r], dials every rank
//     s < r (with exponential-backoff retry until Options.DialTimeout,
//     so processes may start in any order) and accepts a connection
//     from every rank s > r; a HELLO frame identifies the dialer.
//   - Data: a DATA frame carries (src, tag, meta, data). The receiver
//     enqueues it into a bounded inbox (Options.RecvBufs); releasing
//     the message sends an ACK frame back, which frees one of the
//     sender's Options.SendBufs send-buffer slots. This reproduces the
//     in-process transport's two backpressure mechanisms over the wire.
//   - Collectives: Barrier and AllReduce are coordinated by rank 0
//     with ARRIVE/RELEASE and VALUE/RESULT frames.
//   - Shutdown: Close drains outstanding ACKs, exchanges BYE frames,
//     and only then tears the sockets down, bounded by
//     Options.DrainTimeout.
//   - Failure: a connection that dies before BYE marks the transport
//     failed — Recv returns ok=false, Err reports the cause (a typed
//     *mpi.PeerDownError for peer death), and blocked collectives
//     return errors instead of hanging.
//   - Recovery (Options.Recovery): peer death no longer fails the
//     transport. The dead peer is marked down, DATA sends to it are
//     parked, and every DATA send is retained so that when the peer's
//     restarted process reconnects (DialRejoin + REJOIN frame) the
//     full send history is replayed — the receiver's engine
//     deduplicates. Heartbeat frames bound detection latency; a peer
//     that stays down past Options.PeerDownTimeout fails the transport
//     with *mpi.PeerDownError. See docs/FAULT_TOLERANCE.md.
package tcp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpgen/internal/mpi"
	"dpgen/internal/obs"
)

// Frame kinds (the byte after the length prefix; docs/TRANSPORT.md).
const (
	kHello      = byte(1)  // u32 dialer rank
	kData       = byte(2)  // u32 src | i64 tag | i64 sendAt | u64 seq | u32 nmeta | u32 ndata | meta | data
	kAck        = byte(3)  // empty: one send-buffer slot released
	kBarrier    = byte(4)  // u32 seq: barrier arrival, sent to rank 0
	kBarrierRel = byte(5)  // u32 seq: barrier release, sent by rank 0
	kARVal      = byte(6)  // u32 seq | u32 src | f64: all-reduce contribution
	kARRes      = byte(7)  // u32 seq | f64: all-reduce result
	kBye        = byte(8)  // empty: graceful end-of-stream
	kHeartbeat  = byte(9)  // empty: liveness probe (Options.Recovery)
	kRejoin     = byte(10) // u32 rank: restarted rank reconnecting
	kClockReq   = byte(11) // i64 t0: clock-sync probe, echoed by the responder
	kClockResp  = byte(12) // i64 t0 echo | i64 responder aligned unix nanos

	// Elastic membership control frames (docs/ELASTICITY.md). The wire
	// kind is kElasticBase plus the mpi.Elastic* message kind; the body
	// is an opaque payload owned by the engine's membership coordinator.
	kElasticBase = byte(12)                                  // + mpi.ElasticJoin..mpi.ElasticFin = 13..18
	kJoin        = kElasticBase + byte(mpi.ElasticJoin)      // 13
	kLeave       = kElasticBase + byte(mpi.ElasticLeave)     // 14
	kEpochPrep   = kElasticBase + byte(mpi.ElasticEpochPrep) // 15
	kEpochAck    = kElasticBase + byte(mpi.ElasticEpochAck)  // 16
	kEpoch       = kElasticBase + byte(mpi.ElasticEpoch)     // 17
	kFin         = kElasticBase + byte(mpi.ElasticFin)       // 18
)

// dataHdrLen is the fixed DATA body header size: src, tag, send
// timestamp, sequence number, meta and data lengths, and the sender's
// membership epoch (zero on meshes that never change membership).
const dataHdrLen = 40

// maxFrame bounds a frame's body length; larger lengths indicate a
// corrupt stream and fail the transport.
const maxFrame = 1 << 28

// writeChunk is the per-attempt write deadline used by SendPolling so a
// blocked send can interleave inbox polls with partial writes.
const writeChunk = 50 * time.Millisecond

// Options configures a TCP transport endpoint. Zero values select the
// defaults noted on each field.
type Options struct {
	// SendBufs is the number of in-flight unacknowledged sends allowed
	// before Send blocks (default 4) — the MPI send-buffer analog.
	SendBufs int
	// RecvBufs is the inbox capacity in messages (default 16); when it
	// is full, backpressure propagates to senders through TCP.
	RecvBufs int
	// DialTimeout bounds mesh establishment (default 20s). Peers may
	// start in any order inside this window.
	DialTimeout time.Duration
	// RetryBase is the first dial-retry backoff (default 25ms); it
	// doubles per attempt up to RetryMax (default 1s).
	RetryBase time.Duration
	// RetryMax caps the dial-retry backoff (default 1s).
	RetryMax time.Duration
	// SendTimeout is the per-message write deadline (default 30s); a
	// send that cannot complete within it fails the transport.
	SendTimeout time.Duration
	// DrainTimeout bounds the graceful Close drain: waiting for
	// outstanding ACKs and the peers' BYE frames (default 10s).
	DrainTimeout time.Duration
	// Listener, if non-nil, is a pre-bound listener for this rank's
	// address, overriding peers[rank]; tests use it to avoid port
	// races. The transport takes ownership and closes it.
	Listener net.Listener
	// Logf, if non-nil, receives debug log lines (dial retries, drain
	// progress).
	Logf func(format string, args ...any)
	// ChaosDelay, if non-nil, is a fault-injection hook for tests: each
	// received data message is held for the returned duration before it
	// is enqueued to the inbox, so deliveries — including deliveries
	// from the same peer — can arrive out of order. Delayed messages
	// bypass the inbox's TCP backpressure while they are held, so keep
	// delays short. A zero return delivers immediately. Control frames
	// (ACK, barrier, all-reduce, BYE) are never delayed.
	ChaosDelay func(src, tag int) time.Duration
	// Recovery enables the fault-tolerance protocol: peer death marks
	// the peer down instead of failing the transport, DATA sends are
	// retained for replay, the listener keeps accepting REJOIN
	// connections from restarted peers, and heartbeats bound failure
	// detection. All ranks of a job must agree on this setting. See
	// docs/FAULT_TOLERANCE.md.
	Recovery bool
	// HeartbeatEvery is the heartbeat send interval under Recovery
	// (default 250ms).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many HeartbeatEvery intervals may pass
	// without any frame from a peer before it is declared down
	// (default 8). TCP read errors usually detect process death much
	// sooner; heartbeats catch wedged-but-connected peers.
	HeartbeatMisses int
	// PeerDownTimeout bounds how long a down peer may stay down before
	// the transport gives up and fails with *mpi.PeerDownError
	// (default 2m). The dprun supervisor's restart budget should fit
	// inside this window.
	PeerDownTimeout time.Duration
	// Context, if non-nil, cancels the endpoint: dial retries stop, and
	// blocked sends, Recv, Barrier and AllReduce return promptly with
	// the context's error once it is done. Ctrl-C handling in cmd/dprun
	// wires os.Interrupt here.
	Context context.Context
	// DisableClockSync skips the clock-offset ping-pong against rank 0
	// after mesh establishment. ClockOffset then reports zero and DATA
	// frames carry raw local send timestamps; merged traces lose their
	// alignment guarantee. The overhead benchmarks use it to isolate
	// the cost of the handshake.
	DisableClockSync bool
	// ClockProbes is the number of ping-pong rounds of the clock-offset
	// estimation (default 8). The estimate keeps the minimum-RTT round,
	// so more probes tighten the rtt/2 error bound on a jittery link.
	ClockProbes int
	// Observer, if non-nil, receives recovery-protocol transitions
	// (ObsPeerDown, ObsPark, ObsRejoin, ObsReplay) as they happen. It
	// is called from transport goroutines — reader, heartbeat and send
	// paths — and must be safe for concurrent use and non-blocking;
	// cmd/dprun bridges it onto a mutex-guarded trace lane.
	Observer func(event string, peer int, val int64)
	// clockRespDelay is a test-only hook delaying kClockReq responses,
	// injecting asymmetric path delay into the offset estimation.
	clockRespDelay func() time.Duration
}

// Observer event names (Options.Observer).
const (
	// ObsPeerDown fires when a peer is declared down; val is the
	// number of in-flight sends whose slots were reclaimed.
	ObsPeerDown = "peer_down"
	// ObsPark fires when a send to a down peer is parked for replay;
	// val is the cumulative parked count for that peer.
	ObsPark = "park"
	// ObsRejoin fires when a restarted peer reconnects; val is the
	// number of retained frames about to be replayed.
	ObsRejoin = "rejoin"
	// ObsReplay fires when retained-frame replay to a rejoined peer
	// completes; val is the number of frames replayed.
	ObsReplay = "replay"
)

func (o Options) withDefaults() Options {
	if o.SendBufs == 0 {
		o.SendBufs = 4
	}
	if o.RecvBufs == 0 {
		o.RecvBufs = 16
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 20 * time.Second
	}
	if o.RetryBase == 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax == 0 {
		o.RetryMax = time.Second
	}
	if o.SendTimeout == 0 {
		o.SendTimeout = 30 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	if o.HeartbeatMisses == 0 {
		o.HeartbeatMisses = 8
	}
	if o.PeerDownTimeout == 0 {
		o.PeerDownTimeout = 2 * time.Minute
	}
	if o.ClockProbes == 0 {
		o.ClockProbes = 8
	}
	return o
}

// observe forwards a recovery transition to Options.Observer, if set.
func (o Options) observe(event string, peer int, val int64) {
	if o.Observer != nil {
		o.Observer(event, peer, val)
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ctrl is one decoded control frame routed to a collective waiter.
type ctrl struct {
	kind byte
	seq  uint32
	src  int
	val  float64
}

// peerConn is one connection of the mesh, with a serialized writer.
type peerConn struct {
	peer int
	c    net.Conn
	r    *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte
}

func newPeerConn(peer int, c net.Conn) *peerConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &peerConn{peer: peer, c: c, r: bufio.NewReaderSize(c, 1<<16)}
}

// peerState is the per-peer bookkeeping the Recovery protocol needs:
// liveness tracking for heartbeat failure detection, the retained
// DATA-frame history replayed when the peer rejoins, and the count of
// unacknowledged sends on the current connection (whose send-buffer
// slots must be returned when the peer dies, because their ACKs will
// never arrive).
type peerState struct {
	lastHeard atomic.Int64 // unix nanos of the last frame from this peer

	mu        sync.Mutex
	down      bool
	downSince time.Time
	inflight  int      // unacked DATA sends on the current connection
	retained  [][]byte // encoded DATA frames, replayed on rejoin
}

// conn returns the current connection to peer (nil at the self index,
// or for a peer whose connection has not been established).
func (t *Transport) conn(peer int) *peerConn {
	t.connMu.RLock()
	defer t.connMu.RUnlock()
	return t.conns[peer]
}

// setConn installs a connection during mesh establishment.
func (t *Transport) setConn(peer int, pc *peerConn) {
	t.connMu.Lock()
	t.conns[peer] = pc
	t.connMu.Unlock()
}

// snapshotConns returns a copy of the connection table, so callers can
// iterate it without holding connMu across network writes.
func (t *Transport) snapshotConns() []*peerConn {
	t.connMu.RLock()
	defer t.connMu.RUnlock()
	out := make([]*peerConn, len(t.conns))
	copy(out, t.conns)
	return out
}

// closeAllConns closes every current connection socket (used by Close,
// Kill and context cancellation to unblock readers and writers).
func (t *Transport) closeAllConns() {
	for _, pc := range t.snapshotConns() {
		if pc != nil {
			pc.c.Close()
		}
	}
}

// Transport is one rank's endpoint of a TCP mesh; it implements
// mpi.Transport. Create one with Dial; it is live for exactly one run.
type Transport struct {
	rank int
	size int
	opts Options

	ln     net.Listener
	connMu sync.RWMutex
	conns  []*peerConn  // indexed by peer rank; nil at the self index
	pstate []*peerState // per-peer recovery bookkeeping (always allocated)

	inbox chan *mpi.Message
	slots chan struct{}

	msgs     atomic.Int64
	elems    atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64

	// Per-peer wire counters (indexed by peer rank; the self index
	// stays zero) and the per-destination DATA sequence counters.
	framesTo   []atomic.Int64
	framesFrom []atomic.Int64
	bytesTo    []atomic.Int64
	bytesFrom  []atomic.Int64
	dataSeq    []atomic.Uint64

	// Clock sync state: the estimated offset of rank 0's clock relative
	// to the local clock, the RTT of the probe it came from, the
	// channel the reader routes CLOCKRESP frames to, and whether the
	// sync attempt has finished (DATA frames sent before that are
	// stamped unaligned). clockDone closes when the attempt completes.
	clockOff   atomic.Int64
	clockRTT   atomic.Int64
	clockCh    chan clockResp
	clockReady atomic.Bool
	clockDone  chan struct{}

	// latHist observes one aligned send-to-receive latency per received
	// DATA frame (the dp_edge_latency_seconds histogram).
	latHist *obs.Histogram

	stop     chan struct{}
	stopOnce sync.Once
	chaosWG  sync.WaitGroup // in-flight ChaosDelay deliveries
	errMu    sync.Mutex
	err      error
	closing  atomic.Bool

	readers sync.WaitGroup
	bg      sync.WaitGroup // heartbeat, rejoin-accept and context-watcher goroutines

	hbMisses     atomic.Int64
	peerRestarts atomic.Int64

	seqMu sync.Mutex
	seq   uint32

	// epoch is the current membership epoch stamped into outgoing DATA
	// frames; elasticCh carries decoded membership control frames to the
	// engine's coordinator (see SendElastic / ElasticCh).
	epoch     atomic.Uint32
	elasticCh chan mpi.ElasticMsg

	coordCh chan ctrl // rank 0: barrier arrivals / all-reduce values
	relCh   chan ctrl // non-zero ranks: releases / results

	byeMu   sync.Mutex
	byes    int
	allByes chan struct{}

	closeOnce sync.Once
}

var _ mpi.Transport = (*Transport)(nil)

// Dial establishes this rank's endpoint of a full TCP mesh over the
// given peer addresses (peers[r] is rank r's listen address; rank is
// this process's index into it). It blocks until every connection is
// up or Options.DialTimeout expires; peers may start in any order
// inside that window — dials retry with exponential backoff.
func Dial(rank int, peers []string, opts Options) (*Transport, error) {
	size := len(peers)
	if size < 1 {
		return nil, errors.New("tcp: no peers")
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcp: rank %d out of range [0,%d)", rank, size)
	}
	o := opts.withDefaults()
	t := newTransport(rank, size, o)
	if size == 1 {
		return t, nil
	}

	ln := o.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: rank %d listen %s: %w", rank, peers[rank], err)
		}
	}
	t.ln = ln
	deadline := time.Now().Add(o.DialTimeout)

	// Cancel mesh establishment promptly when the caller's context is
	// done: fail the transport (dialPeer's backoff sleeps watch t.stop)
	// and close the listener to unblock the accept side.
	dialDone := make(chan struct{})
	defer close(dialDone)
	if ctx := o.Context; ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.fail(fmt.Errorf("tcp: rank %d: %w", rank, ctx.Err()))
				ln.Close()
			case <-dialDone:
			case <-t.stop:
			}
		}()
	}

	// Higher ranks dial us; we dial lower ranks. One result per side.
	nres := rank
	naccept := size - 1 - rank
	if naccept > 0 {
		nres++
	}
	errs := make(chan error, nres)
	var pending sync.WaitGroup
	if naccept > 0 {
		pending.Add(1)
		go func() {
			defer pending.Done()
			errs <- t.acceptPeers(naccept, deadline)
		}()
	}
	for s := 0; s < rank; s++ {
		pending.Add(1)
		go func(s int) {
			defer pending.Done()
			errs <- t.dialPeer(s, peers[s], deadline)
		}(s)
	}

	var firstErr error
	timeout := time.NewTimer(time.Until(deadline) + 2*time.Second)
	defer timeout.Stop()
	stopCh := t.stop
	for got := 0; got < nres; {
		select {
		case err := <-errs:
			got++
			if err != nil && firstErr == nil {
				firstErr = err
				ln.Close() // unblock the accept loop
			}
		case <-timeout.C:
			if firstErr == nil {
				firstErr = fmt.Errorf("tcp: rank %d: mesh not established within %s", rank, o.DialTimeout)
			}
			ln.Close()
		case <-stopCh:
			// Context cancellation (or Kill) during mesh establishment.
			if firstErr == nil {
				firstErr = t.errOr()
			}
			ln.Close()
			stopCh = nil // collect the remaining results without respinning
		}
	}
	pending.Wait()
	if firstErr != nil {
		t.closeAllConns()
		ln.Close()
		return nil, firstErr
	}
	for _, pc := range t.snapshotConns() {
		if pc != nil {
			t.readers.Add(1)
			go t.reader(pc)
		}
	}
	t.startBackground()
	// Asynchronous on purpose: peers whose Dial already returned start
	// sending DATA immediately, and with a small inbox this endpoint's
	// reader parks on delivery until the engine drains — a synchronous
	// sync here would starve its own responses behind that backlog and,
	// under Recovery, trip the heartbeat monitor (see syncClock).
	go t.syncClock()
	return t, nil
}

// newTransport builds the endpoint skeleton shared by Dial and
// DialRejoin.
func newTransport(rank, size int, o Options) *Transport {
	t := &Transport{
		rank:       rank,
		size:       size,
		opts:       o,
		conns:      make([]*peerConn, size),
		pstate:     make([]*peerState, size),
		inbox:      make(chan *mpi.Message, o.RecvBufs),
		slots:      make(chan struct{}, o.SendBufs),
		stop:       make(chan struct{}),
		coordCh:    make(chan ctrl, 4*size),
		relCh:      make(chan ctrl, 4),
		elasticCh:  make(chan mpi.ElasticMsg, 8*size),
		allByes:    make(chan struct{}),
		framesTo:   make([]atomic.Int64, size),
		framesFrom: make([]atomic.Int64, size),
		bytesTo:    make([]atomic.Int64, size),
		bytesFrom:  make([]atomic.Int64, size),
		dataSeq:    make([]atomic.Uint64, size),
		clockCh:    make(chan clockResp, 4),
		clockDone:  make(chan struct{}),
		latHist:    obs.NewHistogram(),
	}
	for i := range t.pstate {
		t.pstate[i] = &peerState{}
	}
	if rank == 0 || size == 1 || o.DisableClockSync {
		// Nothing to estimate: rank 0 defines the timeline, and a
		// disabled sync stamps raw local clocks. Marking readiness here
		// keeps the endpoint's very first sends aligned-stamped.
		t.clockReady.Store(true)
	}
	return t
}

// startBackground launches the post-mesh service goroutines: the
// context watcher, and — under Recovery — the heartbeat prober and the
// rejoin accept loop.
func (t *Transport) startBackground() {
	now := time.Now().UnixNano()
	for i, ps := range t.pstate {
		if i != t.rank {
			ps.lastHeard.Store(now)
		}
	}
	if ctx := t.opts.Context; ctx != nil {
		t.bg.Add(1)
		go func() {
			defer t.bg.Done()
			select {
			case <-ctx.Done():
				t.fail(fmt.Errorf("tcp: rank %d: %w", t.rank, ctx.Err()))
				// Unblock readers (stuck in ReadFull) and writers.
				if t.ln != nil {
					t.ln.Close()
				}
				t.closeAllConns()
			case <-t.stop:
			}
		}()
	}
	if t.opts.Recovery {
		t.bg.Add(2)
		go t.heartbeatLoop()
		go t.acceptLoop()
	}
}

// acceptPeers accepts and handshakes the connections from all higher
// ranks.
func (t *Transport) acceptPeers(n int, deadline time.Time) error {
	for i := 0; i < n; i++ {
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: rank %d accept: %w", t.rank, err)
		}
		c.SetReadDeadline(deadline)
		kind, peer, err := readIdent(c)
		if err != nil || kind != kHello {
			c.Close()
			return fmt.Errorf("tcp: rank %d handshake: %v", t.rank, err)
		}
		if peer <= t.rank || peer >= t.size || t.conn(peer) != nil {
			c.Close()
			return fmt.Errorf("tcp: rank %d: unexpected hello from rank %d", t.rank, peer)
		}
		c.SetReadDeadline(time.Time{})
		t.setConn(peer, newPeerConn(peer, c))
	}
	return nil
}

// dialPeer connects to a lower rank during mesh establishment.
func (t *Transport) dialPeer(s int, addr string, deadline time.Time) error {
	return t.dialPeerIdent(s, addr, deadline, kHello)
}

// dialPeerIdent connects to rank s, retrying with exponential backoff
// until the deadline, and opens the stream with the given identity
// frame (HELLO during mesh establishment, REJOIN when a restarted rank
// reconnects). A transport stop (context cancellation, Kill) aborts the
// backoff wait promptly.
func (t *Transport) dialPeerIdent(s int, addr string, deadline time.Time, kind byte) error {
	backoff := t.opts.RetryBase
	for attempt := 0; ; attempt++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			if werr := writeIdent(c, kind, t.rank); werr == nil {
				t.setConn(s, newPeerConn(s, c))
				return nil
			} else {
				err = werr
				c.Close()
			}
		}
		if t.stopped() {
			return fmt.Errorf("tcp: rank %d dial rank %d (%s): %w", t.rank, s, addr, t.errOr())
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("tcp: rank %d dial rank %d (%s) after %d attempts: %w",
				t.rank, s, addr, attempt+1, err)
		}
		t.opts.logf("tcp: rank %d dial rank %d (%s) attempt %d: %v; retrying in %s",
			t.rank, s, addr, attempt+1, err, backoff)
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-t.stop:
			timer.Stop()
			return fmt.Errorf("tcp: rank %d dial rank %d (%s): %w", t.rank, s, addr, t.errOr())
		}
		backoff *= 2
		if backoff > t.opts.RetryMax {
			backoff = t.opts.RetryMax
		}
	}
}

// ID returns this endpoint's rank.
func (t *Transport) ID() int { return t.rank }

// Size returns the number of ranks in the mesh.
func (t *Transport) Size() int { return t.size }

// Stats returns the messages and float64 elements sent by this
// endpoint.
func (t *Transport) Stats() (messages, elems int64) {
	return t.msgs.Load(), t.elems.Load()
}

// Bytes returns the raw bytes this endpoint has written to and read
// from the wire, frame headers included — the bytes-on-wire quantity
// behind the dp_edge_bytes_sent_total estimate in internal/obs.
func (t *Transport) Bytes() (sent, recvd int64) {
	return t.bytesOut.Load(), t.bytesIn.Load()
}

// Err returns the first fatal transport error observed, or nil.
func (t *Transport) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// fail records the first fatal error and stops the transport.
func (t *Transport) fail(err error) {
	t.errMu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.errMu.Unlock()
	t.stopOnce.Do(func() { close(t.stop) })
}

func (t *Transport) stopped() bool {
	select {
	case <-t.stop:
		return true
	default:
		return false
	}
}

// errOr returns the recorded error, or a generic one if the transport
// stopped without recording a cause.
func (t *Transport) errOr() error {
	if err := t.Err(); err != nil {
		return err
	}
	return errors.New("tcp: transport closed")
}

// Send delivers a tagged message to dst, blocking while all
// Options.SendBufs send-buffer slots are in flight. The returned stall
// is the time spent blocked on a slot or on a congested socket (zero on
// the uncontended fast path). On a failed transport Send drops the
// message and returns immediately; the failure surfaces through Err,
// Recv and the collectives.
func (t *Transport) Send(dst, tag int, data []float64, meta []int64) time.Duration {
	return t.send(dst, tag, data, meta, nil)
}

// SendPolling delivers like Send but invokes poll() whenever it would
// block — waiting for a send-buffer slot or for socket buffer space —
// so a single-threaded rank can keep draining its own inbox mid-send.
func (t *Transport) SendPolling(dst, tag int, data []float64, meta []int64, poll func()) time.Duration {
	if poll == nil {
		poll = func() {}
	}
	return t.send(dst, tag, data, meta, poll)
}

func (t *Transport) send(dst, tag int, data []float64, meta []int64, poll func()) (stall time.Duration) {
	// Acquire a send-buffer slot (freed by the receiver's ACK).
	select {
	case t.slots <- struct{}{}:
	default:
		t0 := time.Now()
		if poll == nil {
			select {
			case t.slots <- struct{}{}:
			case <-t.stop:
				return time.Since(t0)
			}
		} else {
			for {
				select {
				case t.slots <- struct{}{}:
				case <-t.stop:
					return time.Since(t0)
				default:
					poll()
					continue
				}
				break
			}
		}
		stall = time.Since(t0)
	}
	t.msgs.Add(1)
	t.elems.Add(int64(len(data)))
	if dst == t.rank {
		// Self-delivery short-circuits the wire; the slot frees when
		// the local receiver releases the message.
		m := mpi.NewMessage(t.rank, tag, data, meta, func() {
			select {
			case <-t.slots:
			default:
			}
		})
		m.Epoch = t.epoch.Load()
		select {
		case t.inbox <- m:
		case <-t.stop:
		}
		return stall
	}
	if dst < 0 || dst >= t.size {
		panic(fmt.Sprintf("tcp: send to rank %d out of range [0,%d)", dst, t.size))
	}
	if t.opts.Recovery {
		return stall + t.sendRecovery(dst, tag, data, meta, poll)
	}
	pc := t.conn(dst)
	sendAt, seq := t.stampData(dst)
	epoch := t.epoch.Load()
	wstall, err := pc.sendFrame(t, poll, kData, func(b []byte) []byte {
		return appendDataBody(b, t.rank, tag, sendAt, seq, epoch, data, meta)
	})
	stall += wstall
	if err != nil {
		t.fail(fmt.Errorf("tcp: rank %d send to rank %d: %w", t.rank, dst, err))
		// No ACK will come for this message; return the slot so Close's
		// drain does not wait on it.
		select {
		case <-t.slots:
		default:
		}
	}
	return stall
}

// sendRecovery is the Recovery-mode remote DATA send: the fully
// encoded frame is retained for rejoin replay before the write, sends
// to a down peer are parked (the frame stays retained, the send-buffer
// slot is returned immediately), and a write failure marks the peer
// down instead of failing the transport. A send-buffer slot has
// already been acquired by the caller.
func (t *Transport) sendRecovery(dst, tag int, data []float64, meta []int64, poll func()) (stall time.Duration) {
	sendAt, seq := t.stampData(dst)
	frame := make([]byte, 0, 4+1+dataHdrLen+8*len(meta)+8*len(data))
	frame = append(frame, 0, 0, 0, 0, kData)
	frame = appendDataBody(frame, t.rank, tag, sendAt, seq, t.epoch.Load(), data, meta)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	ps := t.pstate[dst]
	ps.mu.Lock()
	ps.retained = append(ps.retained, frame)
	retained := len(ps.retained)
	down := ps.down
	ps.mu.Unlock()
	if down {
		// Parked: no ACK will come until the peer rejoins and the frame
		// is replayed; give the slot back so live traffic keeps flowing.
		t.opts.observe(ObsPark, dst, int64(retained))
		select {
		case <-t.slots:
		default:
		}
		return 0
	}
	pc := t.conn(dst)
	if pc == nil {
		select {
		case <-t.slots:
		default:
		}
		return 0
	}
	stall, err := pc.writeFrame(t, poll, frame)
	if err != nil {
		t.markPeerDown(dst, pc, fmt.Errorf("send: %w", err))
		select {
		case <-t.slots:
		default:
		}
		return stall
	}
	ps.mu.Lock()
	ps.inflight++
	ps.mu.Unlock()
	return stall
}

// stampData produces the wire stamp of one outgoing DATA frame: the
// clock-aligned send time (local wall clock plus the estimated offset
// to rank 0, so the receiver computes latency without knowing the
// sender's offset) and the next per-destination sequence number. Until
// the clock sync has completed (it runs on a goroutine after a
// rejoin), sendAt is zero: receivers skip the latency observation
// rather than absorb an unaligned stamp.
func (t *Transport) stampData(dst int) (sendAt int64, seq uint64) {
	seq = t.dataSeq[dst].Add(1)
	if !t.clockReady.Load() {
		return 0, seq
	}
	return t.alignedNow(), seq
}

// appendDataBody encodes a DATA frame body (src, tag, send stamp,
// sequence, meta/data lengths, membership epoch, meta, data) after the
// length prefix and kind byte.
func appendDataBody(b []byte, src, tag int, sendAt int64, seq uint64, epoch uint32, data []float64, meta []int64) []byte {
	b = appendU32(b, uint32(src))
	b = appendU64(b, uint64(tag))
	b = appendU64(b, uint64(sendAt))
	b = appendU64(b, seq)
	b = appendU32(b, uint32(len(meta)))
	b = appendU32(b, uint32(len(data)))
	b = appendU32(b, epoch)
	for _, v := range meta {
		b = appendU64(b, uint64(v))
	}
	for _, v := range data {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

// sendFrame encodes one frame under the connection's write lock and
// writes it with per-message deadlines; see writeLocked for the stall
// accounting.
func (pc *peerConn) sendFrame(t *Transport, poll func(), kind byte, body func([]byte) []byte) (time.Duration, error) {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	b := append(pc.wbuf[:0], 0, 0, 0, 0, kind)
	if body != nil {
		b = body(b)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	pc.wbuf = b
	return pc.writeLocked(t, b, poll)
}

// writeFrame writes an already-encoded frame under the connection's
// write lock — the Recovery send and rejoin-replay path, where frames
// are retained and must not share the connection's scratch buffer.
func (pc *peerConn) writeFrame(t *Transport, poll func(), b []byte) (time.Duration, error) {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	return pc.writeLocked(t, b, poll)
}

// writeLocked writes b fully, honouring the per-message SendTimeout.
// With a poll callback, writes proceed in short deadline chunks and
// poll() runs between them, so a rank blocked on a congested socket
// keeps draining its own inbox; the time from the first blocked chunk
// to completion is reported as stall.
func (pc *peerConn) writeLocked(t *Transport, b []byte, poll func()) (stall time.Duration, err error) {
	total := time.Now().Add(t.opts.SendTimeout)
	var stallStart time.Time
	wrote := 0
	for wrote < len(b) {
		if t.stopped() {
			return stall, errors.New("transport stopped")
		}
		dl := total
		if poll != nil {
			if chunk := time.Now().Add(writeChunk); chunk.Before(dl) {
				dl = chunk
			}
		}
		pc.c.SetWriteDeadline(dl)
		n, werr := pc.c.Write(b[wrote:])
		wrote += n
		if werr == nil {
			continue
		}
		var ne net.Error
		if errors.As(werr, &ne) && ne.Timeout() && time.Now().Before(total) {
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			if poll != nil {
				poll()
			}
			continue
		}
		return stall, werr
	}
	if !stallStart.IsZero() {
		stall = time.Since(stallStart)
	}
	t.bytesOut.Add(int64(len(b)))
	if pc.peer >= 0 && pc.peer < len(t.bytesTo) {
		t.bytesTo[pc.peer].Add(int64(len(b)))
		t.framesTo[pc.peer].Add(1)
	}
	return stall, nil
}

// ack sends the slot-release acknowledgement for a message received
// from peer pc.
func (t *Transport) ack(pc *peerConn) {
	if _, err := pc.sendFrame(t, nil, kAck, nil); err != nil && !t.closing.Load() {
		if t.opts.Recovery {
			// The sender is gone; its restarted incarnation starts with
			// fresh slots, so a lost ACK is harmless.
			t.markPeerDown(pc.peer, pc, fmt.Errorf("ack: %w", err))
			return
		}
		t.fail(fmt.Errorf("tcp: rank %d ack to rank %d: %w", t.rank, pc.peer, err))
	}
}

// reader is the per-connection receive loop: it decodes frames,
// enqueues DATA into the inbox, applies ACKs to the slot semaphore and
// routes collective frames to their waiters. It exits on BYE, on
// transport stop, or on a connection error (which fails the transport
// unless a Close is in progress).
func (t *Transport) reader(pc *peerConn) {
	defer t.readers.Done()
	var hdr [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(pc.r, hdr[:]); err != nil {
			t.readerExit(pc, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n < 1 || n > maxFrame {
			t.fail(fmt.Errorf("tcp: rank %d: bad frame length %d from rank %d", t.rank, n, pc.peer))
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(pc.r, body); err != nil {
			t.readerExit(pc, err)
			return
		}
		t.bytesIn.Add(int64(4 + n))
		if pc.peer >= 0 && pc.peer < len(t.bytesFrom) {
			t.bytesFrom[pc.peer].Add(int64(4 + n))
			t.framesFrom[pc.peer].Add(1)
		}
		if t.opts.Recovery {
			t.pstate[pc.peer].lastHeard.Store(time.Now().UnixNano())
		}
		kind, p := body[0], body[1:]
		switch kind {
		case kData:
			m, err := t.decodeData(pc, p)
			if err != nil {
				t.fail(fmt.Errorf("tcp: rank %d: corrupt data frame from rank %d: %v", t.rank, pc.peer, err))
				return
			}
			if f := t.opts.ChaosDelay; f != nil {
				if d := f(m.Src, m.Tag); d > 0 {
					t.chaosWG.Add(1)
					go t.deliverLate(m, d)
					continue
				}
			}
			select {
			case t.inbox <- m:
			case <-t.stop:
				return
			}
		case kAck:
			select {
			case <-t.slots:
			default: // spurious ACK (e.g. for a replayed frame); harmless
			}
			if t.opts.Recovery {
				ps := t.pstate[pc.peer]
				ps.mu.Lock()
				if ps.inflight > 0 {
					ps.inflight--
				}
				ps.mu.Unlock()
			}
		case kHeartbeat:
			// Liveness only; lastHeard was updated above.
		case kClockReq:
			if len(p) != 8 {
				t.fail(fmt.Errorf("tcp: rank %d: corrupt clock request from rank %d", t.rank, pc.peer))
				return
			}
			echo := binary.LittleEndian.Uint64(p)
			if d := t.opts.clockRespDelay; d != nil {
				if dd := d(); dd > 0 {
					time.Sleep(dd)
				}
			}
			// Respond with our aligned clock so offsets compose: probing
			// any already-synced rank yields rank 0's timeline.
			if _, err := pc.sendFrame(t, nil, kClockResp, func(b []byte) []byte {
				b = appendU64(b, echo)
				return appendU64(b, uint64(t.alignedNow()))
			}); err != nil && !t.closing.Load() {
				if t.opts.Recovery {
					t.markPeerDown(pc.peer, pc, fmt.Errorf("clock response: %w", err))
					return
				}
				t.fail(fmt.Errorf("tcp: rank %d clock response to rank %d: %w", t.rank, pc.peer, err))
				return
			}
		case kClockResp:
			if len(p) != 16 {
				t.fail(fmt.Errorf("tcp: rank %d: corrupt clock response from rank %d", t.rank, pc.peer))
				return
			}
			r := clockResp{
				echo:   int64(binary.LittleEndian.Uint64(p[0:8])),
				server: int64(binary.LittleEndian.Uint64(p[8:16])),
				at:     time.Now().UnixNano(),
			}
			select {
			case t.clockCh <- r:
			default: // probe already timed out; drop the stale response
			}
		case kBarrier, kARVal:
			c, err := decodeCtrl(kind, p)
			if err != nil {
				t.fail(fmt.Errorf("tcp: rank %d: corrupt control frame from rank %d: %v", t.rank, pc.peer, err))
				return
			}
			select {
			case t.coordCh <- c:
			case <-t.stop:
				return
			}
		case kBarrierRel, kARRes:
			c, err := decodeCtrl(kind, p)
			if err != nil {
				t.fail(fmt.Errorf("tcp: rank %d: corrupt control frame from rank %d: %v", t.rank, pc.peer, err))
				return
			}
			select {
			case t.relCh <- c:
			case <-t.stop:
				return
			}
		case kBye:
			t.noteBye()
			return
		case kJoin, kLeave, kEpochPrep, kEpochAck, kEpoch, kFin:
			// The frame body buffer is reused by the next read, so the
			// payload handed to the coordinator must be a copy.
			var payload []byte
			if len(p) > 0 {
				payload = make([]byte, len(p))
				copy(payload, p)
			}
			select {
			case t.elasticCh <- mpi.ElasticMsg{Kind: kind - kElasticBase, Src: pc.peer, Payload: payload}:
			case <-t.stop:
				return
			}
		default:
			t.fail(fmt.Errorf("tcp: rank %d: unknown frame kind %d from rank %d", t.rank, kind, pc.peer))
			return
		}
	}
}

// deliverLate enqueues a ChaosDelay-held message after its delay. A
// transport stop cuts the hold short; a message that can no longer be
// delivered after stop is dropped (the run is already over or failed).
func (t *Transport) deliverLate(m *mpi.Message, d time.Duration) {
	defer t.chaosWG.Done()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-t.stop:
	}
	select {
	case t.inbox <- m:
	default:
		select {
		case t.inbox <- m:
		case <-t.stop:
		}
	}
}

// readerExit handles a connection read error: silent during an
// intentional shutdown, a peer-down transition under Recovery, and a
// fatal typed *mpi.PeerDownError otherwise.
func (t *Transport) readerExit(pc *peerConn, err error) {
	if t.closing.Load() || t.stopped() {
		return
	}
	if t.opts.Recovery {
		t.markPeerDown(pc.peer, pc, fmt.Errorf("connection died before BYE: %w", err))
		return
	}
	t.fail(fmt.Errorf("tcp: rank %d: %w", t.rank,
		&mpi.PeerDownError{Rank: pc.peer, Cause: fmt.Errorf("connection died before BYE: %w", err)}))
}

// decodeData builds a Message from a DATA frame body, drawing payload
// buffers from the shared mpi pools; releasing the message ACKs the
// sender.
func (t *Transport) decodeData(pc *peerConn, p []byte) (*mpi.Message, error) {
	if len(p) < dataHdrLen {
		return nil, fmt.Errorf("short body (%d bytes)", len(p))
	}
	src := int(binary.LittleEndian.Uint32(p[0:4]))
	tag := int(int64(binary.LittleEndian.Uint64(p[4:12])))
	sendAt := int64(binary.LittleEndian.Uint64(p[12:20]))
	seq := binary.LittleEndian.Uint64(p[20:28])
	nmeta := int(binary.LittleEndian.Uint32(p[28:32]))
	ndata := int(binary.LittleEndian.Uint32(p[32:36]))
	epoch := binary.LittleEndian.Uint32(p[36:40])
	if want := dataHdrLen + 8*nmeta + 8*ndata; want != len(p) {
		return nil, fmt.Errorf("length mismatch: %d cells declared, %d bytes", want, len(p))
	}
	p = p[dataHdrLen:]
	meta := mpi.GetMeta(nmeta)
	for i := range meta {
		meta[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	p = p[8*nmeta:]
	data := mpi.GetData(ndata)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	if sendAt > 0 {
		// Both stamps are on rank 0's clock, so the difference is the
		// edge latency to within the clock-sync error bound.
		t.latHist.ObserveNs(t.alignedNow() - sendAt)
	}
	m := mpi.NewMessage(src, tag, data, meta, func() { t.ack(pc) })
	m.SendAtUnixNanos = sendAt
	m.Seq = seq
	m.Epoch = epoch
	return m, nil
}

func decodeCtrl(kind byte, p []byte) (ctrl, error) {
	c := ctrl{kind: kind}
	switch kind {
	case kBarrier, kBarrierRel:
		if len(p) != 4 {
			return c, fmt.Errorf("barrier frame body %d bytes", len(p))
		}
		c.seq = binary.LittleEndian.Uint32(p)
	case kARVal:
		if len(p) != 16 {
			return c, fmt.Errorf("allreduce value frame body %d bytes", len(p))
		}
		c.seq = binary.LittleEndian.Uint32(p[0:4])
		c.src = int(binary.LittleEndian.Uint32(p[4:8]))
		c.val = math.Float64frombits(binary.LittleEndian.Uint64(p[8:16]))
	case kARRes:
		if len(p) != 12 {
			return c, fmt.Errorf("allreduce result frame body %d bytes", len(p))
		}
		c.seq = binary.LittleEndian.Uint32(p[0:4])
		c.val = math.Float64frombits(binary.LittleEndian.Uint64(p[4:12]))
	}
	return c, nil
}

// noteBye records one peer's graceful end-of-stream.
func (t *Transport) noteBye() {
	t.byeMu.Lock()
	t.byes++
	done := t.byes == t.size-1
	t.byeMu.Unlock()
	if done {
		close(t.allByes)
	}
}

// Recv blocks for the next message. ok is false once the transport has
// been closed — or has failed (see Err) — and the inbox is drained.
func (t *Transport) Recv() (*mpi.Message, bool) {
	select {
	case m, ok := <-t.inbox:
		return m, ok
	case <-t.stop:
		// Prefer draining what already arrived.
		select {
		case m, ok := <-t.inbox:
			return m, ok
		default:
			return nil, false
		}
	}
}

// Iprobe returns a pending message without blocking, or ok=false when
// none is queued.
func (t *Transport) Iprobe() (*mpi.Message, bool) {
	select {
	case m, ok := <-t.inbox:
		return m, ok
	default:
		return nil, false
	}
}

func (t *Transport) nextSeq() uint32 {
	t.seqMu.Lock()
	defer t.seqMu.Unlock()
	t.seq++
	return t.seq
}

// Barrier blocks until every rank has entered it, coordinated by
// rank 0 (ARRIVE frames in, RELEASE frames out). It returns an error
// instead of hanging when the transport has failed.
func (t *Transport) Barrier() error {
	if t.size == 1 {
		return t.Err()
	}
	seq := t.nextSeq()
	if t.rank == 0 {
		for got := 0; got < t.size-1; got++ {
			select {
			case c := <-t.coordCh:
				if c.kind != kBarrier || c.seq != seq {
					err := fmt.Errorf("tcp: rank 0: barrier %d: unexpected control frame (kind %d seq %d)", seq, c.kind, c.seq)
					t.fail(err)
					return err
				}
			case <-t.stop:
				return t.errOr()
			}
		}
		for _, pc := range t.snapshotConns() {
			if pc == nil {
				continue
			}
			if _, err := pc.sendFrame(t, nil, kBarrierRel, func(b []byte) []byte {
				return appendU32(b, seq)
			}); err != nil {
				t.fail(fmt.Errorf("tcp: rank 0: barrier release to rank %d: %w", pc.peer, err))
				return t.errOr()
			}
		}
		return nil
	}
	if _, err := t.conn(0).sendFrame(t, nil, kBarrier, func(b []byte) []byte {
		return appendU32(b, seq)
	}); err != nil {
		t.fail(fmt.Errorf("tcp: rank %d: barrier arrive: %w", t.rank, err))
		return t.errOr()
	}
	select {
	case c := <-t.relCh:
		if c.kind != kBarrierRel || c.seq != seq {
			err := fmt.Errorf("tcp: rank %d: barrier %d: unexpected release (kind %d seq %d)", t.rank, seq, c.kind, c.seq)
			t.fail(err)
			return err
		}
		return nil
	case <-t.stop:
		return t.errOr()
	}
}

// AllReduce combines one float64 per rank with f, applied in rank
// order by the rank-0 coordinator, and returns the result on every
// rank. All ranks must call it collectively with the same f; it errors
// instead of hanging on a failed transport.
func (t *Transport) AllReduce(v float64, f func(a, b float64) float64) (float64, error) {
	if t.size == 1 {
		return v, t.Err()
	}
	seq := t.nextSeq()
	if t.rank == 0 {
		vals := make([]float64, t.size)
		vals[0] = v
		for got := 1; got < t.size; got++ {
			select {
			case c := <-t.coordCh:
				if c.kind != kARVal || c.seq != seq || c.src <= 0 || c.src >= t.size {
					err := fmt.Errorf("tcp: rank 0: allreduce %d: unexpected control frame (kind %d seq %d src %d)", seq, c.kind, c.seq, c.src)
					t.fail(err)
					return 0, err
				}
				vals[c.src] = c.val
			case <-t.stop:
				return 0, t.errOr()
			}
		}
		acc := vals[0]
		for i := 1; i < t.size; i++ {
			acc = f(acc, vals[i])
		}
		for _, pc := range t.snapshotConns() {
			if pc == nil {
				continue
			}
			if _, err := pc.sendFrame(t, nil, kARRes, func(b []byte) []byte {
				b = appendU32(b, seq)
				return appendU64(b, math.Float64bits(acc))
			}); err != nil {
				t.fail(fmt.Errorf("tcp: rank 0: allreduce result to rank %d: %w", pc.peer, err))
				return 0, t.errOr()
			}
		}
		return acc, nil
	}
	if _, err := t.conn(0).sendFrame(t, nil, kARVal, func(b []byte) []byte {
		b = appendU32(b, seq)
		b = appendU32(b, uint32(t.rank))
		return appendU64(b, math.Float64bits(v))
	}); err != nil {
		t.fail(fmt.Errorf("tcp: rank %d: allreduce value: %w", t.rank, err))
		return 0, t.errOr()
	}
	select {
	case c := <-t.relCh:
		if c.kind != kARRes || c.seq != seq {
			err := fmt.Errorf("tcp: rank %d: allreduce %d: unexpected result (kind %d seq %d)", t.rank, seq, c.kind, c.seq)
			t.fail(err)
			return 0, err
		}
		return c.val, nil
	case <-t.stop:
		return 0, t.errOr()
	}
}

// Close shuts the endpoint down gracefully: it waits (bounded by
// Options.DrainTimeout) for outstanding sends to be acknowledged,
// exchanges BYE frames with every peer, then tears down the sockets
// and closes the inbox so Recv returns ok=false. Close after a
// transport failure skips the drain. It returns Err().
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		if t.size > 1 && t.Err() == nil {
			deadline := time.Now().Add(t.opts.DrainTimeout)
			for len(t.slots) > 0 && time.Now().Before(deadline) && !t.stopped() {
				time.Sleep(time.Millisecond)
			}
			if n := len(t.slots); n > 0 {
				t.opts.logf("tcp: rank %d: close with %d unacknowledged sends after %s drain", t.rank, n, t.opts.DrainTimeout)
			}
			for _, pc := range t.snapshotConns() {
				if pc != nil {
					pc.sendFrame(t, nil, kBye, nil) // best effort
				}
			}
			select {
			case <-t.allByes:
			case <-time.After(time.Until(deadline)):
				t.opts.logf("tcp: rank %d: close without all BYEs after %s drain", t.rank, t.opts.DrainTimeout)
			case <-t.stop:
			}
		}
		t.stopOnce.Do(func() { close(t.stop) })
		if t.ln != nil {
			t.ln.Close()
		}
		t.closeAllConns()
		t.bg.Wait()
		t.readers.Wait()
		t.chaosWG.Wait()
		close(t.inbox)
	})
	return t.Err()
}

// Kill abruptly severs every connection without the BYE handshake,
// simulating process death — the fault-injection hook used by the
// transport conformance tests. The surviving peers observe a
// connection error: their Recv returns ok=false, Err reports the
// death, and blocked collectives return errors.
func (t *Transport) Kill() {
	t.fail(fmt.Errorf("tcp: rank %d killed", t.rank))
	if t.ln != nil {
		t.ln.Close()
	}
	t.closeAllConns()
}

// ---- recovery protocol ----

// markPeerDown transitions a peer to the down state under Recovery:
// the failed connection is closed, the slots of its unacknowledged
// sends are returned (their ACKs will never arrive; the retained
// frames are replayed on rejoin), and subsequent sends to the peer are
// parked. Without Recovery it fails the whole transport with a typed
// *mpi.PeerDownError. A stale call — the observed connection has
// already been replaced by a rejoin — is ignored.
func (t *Transport) markPeerDown(peer int, pc *peerConn, cause error) {
	if t.closing.Load() || t.stopped() {
		return
	}
	if !t.opts.Recovery {
		t.fail(fmt.Errorf("tcp: rank %d: %w", t.rank, &mpi.PeerDownError{Rank: peer, Cause: cause}))
		return
	}
	t.connMu.RLock()
	stale := pc != nil && t.conns[peer] != pc
	t.connMu.RUnlock()
	if stale {
		return
	}
	ps := t.pstate[peer]
	ps.mu.Lock()
	if ps.down {
		ps.mu.Unlock()
		return
	}
	ps.down = true
	ps.downSince = time.Now()
	lost := ps.inflight
	ps.inflight = 0
	ps.mu.Unlock()
	if pc != nil {
		pc.c.Close()
	}
	for i := 0; i < lost; i++ {
		select {
		case <-t.slots:
		default:
		}
	}
	t.opts.observe(ObsPeerDown, peer, int64(lost))
	t.opts.logf("tcp: rank %d: peer %d down (%v); %d unacked sends returned, awaiting rejoin",
		t.rank, peer, cause, lost)
}

// heartbeatLoop probes every live peer each Options.HeartbeatEvery: it
// sends a HEARTBEAT frame, counts a miss for every peer not heard from
// within 1.5 intervals, declares a peer down after
// Options.HeartbeatMisses intervals of silence, and fails the
// transport with a typed *mpi.PeerDownError once a down peer has
// stayed down past Options.PeerDownTimeout without rejoining.
func (t *Transport) heartbeatLoop() {
	defer t.bg.Done()
	tick := time.NewTicker(t.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		for peer, ps := range t.pstate {
			if peer == t.rank {
				continue
			}
			ps.mu.Lock()
			down, since := ps.down, ps.downSince
			ps.mu.Unlock()
			if down {
				if now.Sub(since) > t.opts.PeerDownTimeout {
					t.fail(fmt.Errorf("tcp: rank %d: %w", t.rank, &mpi.PeerDownError{
						Rank:  peer,
						Cause: fmt.Errorf("no rejoin within %s", t.opts.PeerDownTimeout),
					}))
					return
				}
				continue
			}
			pc := t.conn(peer)
			if pc == nil {
				continue
			}
			if _, err := pc.sendFrame(t, nil, kHeartbeat, nil); err != nil {
				t.markPeerDown(peer, pc, fmt.Errorf("heartbeat write: %w", err))
				continue
			}
			silent := now.Sub(time.Unix(0, ps.lastHeard.Load()))
			if silent > t.opts.HeartbeatEvery+t.opts.HeartbeatEvery/2 {
				t.hbMisses.Add(1)
				if silent > time.Duration(t.opts.HeartbeatMisses)*t.opts.HeartbeatEvery {
					t.markPeerDown(peer, pc, fmt.Errorf("no frames for %s (%d heartbeat intervals)",
						silent.Round(time.Millisecond), t.opts.HeartbeatMisses))
				}
			}
		}
	}
}

// acceptLoop keeps the listener alive after mesh establishment under
// Recovery, accepting REJOIN connections from restarted peers. It
// exits when Close (or a context cancellation) closes the listener.
func (t *Transport) acceptLoop() {
	defer t.bg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.bg.Add(1)
		go t.handleRejoin(c)
	}
}

// handleRejoin validates a REJOIN handshake, swaps the peer's entry in
// the connection table to the new socket, restarts its reader, and
// replays the full retained DATA history — the receiving engine
// deduplicates edges it has already applied (docs/FAULT_TOLERANCE.md).
func (t *Transport) handleRejoin(c net.Conn) {
	defer t.bg.Done()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind, peer, err := readIdent(c)
	if err != nil || kind != kRejoin || peer < 0 || peer >= t.size || peer == t.rank {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	pc := newPeerConn(peer, c)
	t.connMu.Lock()
	if t.stopped() {
		t.connMu.Unlock()
		c.Close()
		return
	}
	old := t.conns[peer]
	t.conns[peer] = pc
	t.connMu.Unlock()
	if old != nil {
		old.c.Close() // the stale reader exits; its markPeerDown is a no-op
	}
	ps := t.pstate[peer]
	ps.lastHeard.Store(time.Now().UnixNano())
	ps.mu.Lock()
	wasDown := ps.down
	ps.down = false
	ps.downSince = time.Time{}
	ps.inflight = 0
	replay := make([][]byte, len(ps.retained))
	copy(replay, ps.retained)
	ps.mu.Unlock()
	if wasDown {
		t.peerRestarts.Add(1)
	}
	t.opts.observe(ObsRejoin, peer, int64(len(replay)))
	t.readers.Add(1)
	go t.reader(pc)
	for i, frame := range replay {
		if _, err := pc.writeFrame(t, nil, frame); err != nil {
			t.opts.logf("tcp: rank %d: rejoin replay to peer %d failed at frame %d/%d: %v",
				t.rank, peer, i, len(replay), err)
			t.markPeerDown(peer, pc, fmt.Errorf("rejoin replay: %w", err))
			return
		}
	}
	t.opts.observe(ObsReplay, peer, int64(len(replay)))
	t.opts.logf("tcp: rank %d: peer %d rejoined; replayed %d data frames", t.rank, peer, len(replay))
}

// DialRejoin reconnects a restarted rank into an existing Recovery
// mesh: it listens on peers[rank] again (or Options.Listener), dials
// every other rank and identifies itself with a REJOIN frame, which
// makes each live peer swap in the new connection and replay its
// retained send history. The caller then resumes the engine from the
// rank's checkpoint (engine.Config.Checkpoint.Resume). Recovery is
// implied: opts.Recovery is forced on.
func DialRejoin(rank int, peers []string, opts Options) (*Transport, error) {
	opts.Recovery = true
	size := len(peers)
	if size < 2 {
		return nil, errors.New("tcp: rejoin needs at least two ranks")
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("tcp: rank %d out of range [0,%d)", rank, size)
	}
	o := opts.withDefaults()
	t := newTransport(rank, size, o)
	ln := o.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: rank %d relisten %s: %w", rank, peers[rank], err)
		}
	}
	t.ln = ln
	deadline := time.Now().Add(o.DialTimeout)
	dialDone := make(chan struct{})
	defer close(dialDone)
	if ctx := o.Context; ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.fail(fmt.Errorf("tcp: rank %d: %w", rank, ctx.Err()))
				ln.Close()
			case <-dialDone:
			case <-t.stop:
			}
		}()
	}
	errs := make(chan error, size-1)
	for s := 0; s < size; s++ {
		if s == rank {
			continue
		}
		go func(s int) { errs <- t.dialPeerIdent(s, peers[s], deadline, kRejoin) }(s)
	}
	var firstErr error
	for i := 0; i < size-1; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		ln.Close()
		t.closeAllConns()
		return nil, firstErr
	}
	for _, pc := range t.snapshotConns() {
		if pc != nil {
			t.readers.Add(1)
			go t.reader(pc)
		}
	}
	t.startBackground()
	// Asynchronous on purpose: survivors replay retained DATA the
	// moment the rejoin connections are up, and a replay larger than
	// the inbox parks this endpoint's readers until the engine starts
	// draining — a synchronous sync here would starve its own
	// responses and trip the heartbeat monitor (see syncClock).
	go t.syncClock()
	return t, nil
}

// RecoveryStats reports the cumulative heartbeat misses and peer
// restarts (successful rejoins of a previously-down peer) this
// endpoint has observed — the sources of the dp_heartbeat_misses_total
// and dp_peer_restarts_total metrics.
func (t *Transport) RecoveryStats() (heartbeatMisses, peerRestarts int64) {
	return t.hbMisses.Load(), t.peerRestarts.Load()
}

// PendingSends reports the number of in-flight sends that have not yet
// been acknowledged. The engine's checkpointer waits for zero before
// serializing, which guarantees every tile recorded as executed has
// had its outgoing edges *received* (not merely written to a socket
// buffer that process death could discard).
func (t *Transport) PendingSends() int { return len(t.slots) }

// ---- elastic membership ----

// SetEpoch installs the membership epoch stamped into every subsequent
// outgoing DATA frame. The engine's membership coordinator calls it
// when a new view is applied; receivers use the stamp to detect edges
// sent under a previous ownership map (docs/ELASTICITY.md).
func (t *Transport) SetEpoch(e uint32) { t.epoch.Store(e) }

// Epoch returns the currently installed membership epoch.
func (t *Transport) Epoch() uint32 { return t.epoch.Load() }

// ElasticCh returns the channel on which membership control messages
// (JOIN/LEAVE/EPOCH_PREP/EPOCH_ACK/EPOCH/FIN frames, plus self-sends)
// are delivered. Only the engine's membership coordinator should
// consume it.
func (t *Transport) ElasticCh() <-chan mpi.ElasticMsg { return t.elasticCh }

// SendElastic delivers a membership control message to dst. Unlike
// DATA sends it consumes no send-buffer slot — the elastic protocol
// must make progress while workers are paused and DATA slots drained.
// A send to self is delivered directly into this endpoint's own
// elastic channel, so the rank-0 coordinator handles its own messages
// through the same path as everyone else's.
func (t *Transport) SendElastic(dst int, kind byte, payload []byte) error {
	if kind < mpi.ElasticJoin || kind > mpi.ElasticFin {
		return fmt.Errorf("tcp: bad elastic kind %d", kind)
	}
	if dst == t.rank {
		var p []byte
		if len(payload) > 0 {
			p = make([]byte, len(payload))
			copy(p, payload)
		}
		select {
		case t.elasticCh <- mpi.ElasticMsg{Kind: kind, Src: t.rank, Payload: p}:
			return nil
		case <-t.stop:
			return t.errOr()
		}
	}
	if dst < 0 || dst >= t.size {
		return fmt.Errorf("tcp: elastic send to rank %d out of range [0,%d)", dst, t.size)
	}
	pc := t.conn(dst)
	if pc == nil {
		return fmt.Errorf("tcp: elastic send to rank %d: no connection", dst)
	}
	if _, err := pc.sendFrame(t, nil, kElasticBase+kind, func(b []byte) []byte {
		return append(b, payload...)
	}); err != nil {
		err = fmt.Errorf("tcp: rank %d elastic send to rank %d: %w", t.rank, dst, err)
		t.fail(err)
		return err
	}
	return nil
}

// ---- framing helpers ----

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// writeIdent sends the dialer's identity (a HELLO or REJOIN frame) as
// the first frame of a connection.
func writeIdent(c net.Conn, kind byte, rank int) error {
	b := appendU32([]byte{5, 0, 0, 0, kind}, uint32(rank))
	_, err := c.Write(b)
	return err
}

// readIdent reads and validates the identity frame (HELLO or REJOIN)
// that opens a dialed connection, returning its kind and the dialer's
// rank.
func readIdent(c net.Conn) (byte, int, error) {
	var b [9]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	if binary.LittleEndian.Uint32(b[0:4]) != 5 || (b[4] != kHello && b[4] != kRejoin) {
		return 0, 0, errors.New("malformed identity frame")
	}
	return b[4], int(binary.LittleEndian.Uint32(b[5:9])), nil
}
