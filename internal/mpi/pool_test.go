package mpi

import (
	"testing"
)

// TestDataPoolRoundTrip: a recycled buffer comes back with its capacity
// and the requested length, and undersized pooled buffers are not
// returned for larger requests.
func TestDataPoolRoundTrip(t *testing.T) {
	s := GetData(64)
	if len(s) != 64 {
		t.Fatalf("GetData(64) length %d", len(s))
	}
	PutData(s)
	// Drain with a larger request: pooled 64-cap must not satisfy it.
	big := GetData(128)
	if len(big) != 128 {
		t.Fatalf("GetData(128) length %d", len(big))
	}
	for i := range big {
		big[i] = float64(i)
	}
	PutData(big)
	PutData(nil) // zero-cap is a no-op

	m := GetMeta(8)
	if len(m) != 8 {
		t.Fatalf("GetMeta(8) length %d", len(m))
	}
	PutMeta(m)
	PutMeta(nil)
}

// TestReleaseRecyclesPayload: Release nils out Data/Meta (the
// recycling contract: callers must not retain them) and stays
// idempotent for both the slot and the pools.
func TestReleaseRecyclesPayload(t *testing.T) {
	c, err := NewComm(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := GetData(3)
	data[0], data[1], data[2] = 1, 2, 3
	meta := GetMeta(2)
	meta[0], meta[1] = 7, 8
	c.Rank(0).Send(1, 0, data, meta)
	m, ok := c.Rank(1).Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if m.Data[2] != 3 || m.Meta[1] != 8 {
		t.Fatalf("payload corrupted before release: %+v", m)
	}
	m.Release()
	if m.Data != nil || m.Meta != nil {
		t.Errorf("Release must drop the payload references, got %+v", m)
	}
	m.Release() // idempotent: must not double-pool
	// The sender's slot must be free again: a second send cannot block.
	done := make(chan struct{})
	go func() {
		c.Rank(0).Send(1, 1, GetData(1), nil)
		close(done)
	}()
	m2, ok := c.Rank(1).Recv()
	if !ok {
		t.Fatal("second recv failed")
	}
	<-done
	m2.Release()
}

// TestReleaseSlotKeepsPayload: ReleaseSlot frees the sender without
// touching the payload, so a receiver may unpack after releasing.
func TestReleaseSlotKeepsPayload(t *testing.T) {
	c, err := NewComm(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Rank(0).Send(1, 0, []float64{4, 5}, []int64{9})
	m, ok := c.Rank(1).Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	m.ReleaseSlot()
	if m.Data[1] != 5 || m.Meta[0] != 9 {
		t.Errorf("payload must survive ReleaseSlot: %+v", m)
	}
	m.ReleaseSlot() // idempotent
	PutData(m.Data)
	PutMeta(m.Meta)
}

func BenchmarkDataPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := GetData(256)
		PutData(s)
	}
}
