// Transport conformance suite: one table of scenarios exercised
// against every Transport implementation — the in-process channel
// transport (*mpi.Rank) and the multi-process TCP transport
// (tcp.Transport, here with each rank as a goroutine over real
// localhost sockets). A new transport passes by adding a mesh
// constructor to transportImpls.
package mpi_test

import (
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

// mesh builds one fully connected set of transports; the cleanup of
// each endpoint is registered with t.
type meshFunc func(t *testing.T, size, sendBufs, recvBufs int) []mpi.Transport

func inmemMesh(t *testing.T, size, sendBufs, recvBufs int) []mpi.Transport {
	t.Helper()
	c, err := mpi.NewComm(size, sendBufs, recvBufs)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]mpi.Transport, size)
	for r := 0; r < size; r++ {
		ts[r] = c.Rank(r)
	}
	return ts
}

func tcpMesh(t *testing.T, size, sendBufs, recvBufs int) []mpi.Transport {
	return tcpMeshChaos(t, size, sendBufs, recvBufs, nil)
}

// chaosDelayFn builds a seeded random per-message delivery delay for
// one rank: roughly a third of messages are delivered immediately, the
// rest held up to 2ms, enough to reorder deliveries (including from a
// single peer) on loopback.
func chaosDelayFn(seed int64) func(src, tag int) time.Duration {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(src, tag int) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(3) == 0 {
			return 0
		}
		return time.Duration(rng.Intn(2000)) * time.Microsecond
	}
}

// tcpMeshChaos is tcpMesh with an optional per-rank ChaosDelay
// constructor (nil for a quiet mesh).
func tcpMeshChaos(t *testing.T, size, sendBufs, recvBufs int, chaos func(rank int) func(src, tag int) time.Duration) []mpi.Transport {
	t.Helper()
	lns := make([]net.Listener, size)
	peers := make([]string, size)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]mpi.Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := tcp.Options{
				SendBufs:    sendBufs,
				RecvBufs:    recvBufs,
				DialTimeout: 10 * time.Second,
				Listener:    lns[r],
			}
			if chaos != nil {
				o.ChaosDelay = chaos(r)
			}
			ts[r], errs[r] = tcp.Dial(r, peers, o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		var cwg sync.WaitGroup
		for _, tr := range ts {
			if tr == nil {
				continue
			}
			cwg.Add(1)
			go func(tr mpi.Transport) { defer cwg.Done(); tr.Close() }(tr)
		}
		cwg.Wait()
	})
	return ts
}

var transportImpls = []struct {
	name string
	mesh meshFunc
}{
	{"inmem", inmemMesh},
	{"tcp", tcpMesh},
	// The TCP mesh again, under seeded random delivery delays: every
	// scenario must also hold when data messages arrive out of order.
	{"tcp-chaos", func(t *testing.T, size, sendBufs, recvBufs int) []mpi.Transport {
		return tcpMeshChaos(t, size, sendBufs, recvBufs, func(rank int) func(src, tag int) time.Duration {
			return chaosDelayFn(int64(rank + 1))
		})
	}},
}

func forEachTransport(t *testing.T, f func(t *testing.T, mesh meshFunc)) {
	for _, impl := range transportImpls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			t.Parallel()
			f(t, impl.mesh)
		})
	}
}

func TestConformancePingPong(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 2, 2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			m, ok := ts[1].Recv()
			if !ok {
				t.Error("recv failed")
				return
			}
			if m.Src != 0 || m.Tag != 7 || len(m.Data) != 3 || m.Data[1] != 2.5 ||
				len(m.Meta) != 2 || m.Meta[0] != 42 || m.Meta[1] != -9 {
				t.Errorf("message corrupted: %+v", m)
			}
			m.Release()
			ts[1].Send(0, 8, []float64{9}, nil)
		}()
		ts[0].Send(1, 7, []float64{1, 2.5, 3}, []int64{42, -9})
		m, ok := ts[0].Recv()
		if !ok || m.Src != 1 || m.Tag != 8 || m.Data[0] != 9 {
			t.Errorf("reply wrong: %+v ok=%v", m, ok)
		}
		m.Release()
		<-done
	})
}

func TestConformanceAccessors(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 3, 1, 1)
		for r, tr := range ts {
			if tr.ID() != r || tr.Size() != 3 {
				t.Errorf("rank %d: ID=%d Size=%d", r, tr.ID(), tr.Size())
			}
			if err := tr.Err(); err != nil {
				t.Errorf("rank %d: fresh transport Err = %v", r, err)
			}
		}
	})
}

func TestConformanceIprobe(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 1, 4)
		if _, ok := ts[1].Iprobe(); ok {
			t.Error("Iprobe on empty inbox returned a message")
		}
		ts[0].Send(1, 1, []float64{1}, nil)
		deadline := time.Now().Add(5 * time.Second)
		for {
			m, ok := ts[1].Iprobe()
			if ok {
				if m.Data[0] != 1 {
					t.Errorf("Iprobe message wrong: %+v", m)
				}
				m.Release()
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("Iprobe never saw the message")
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// TestConformanceSendBufferBackpressure: with one send-buffer slot, a
// second send must block until the receiver releases the first
// message, and the stall must be reported.
func TestConformanceSendBufferBackpressure(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 1, 8)
		if stall := ts[0].Send(1, 1, []float64{1}, nil); stall != 0 {
			t.Errorf("uncontended send stalled %v", stall)
		}
		sent2 := make(chan time.Duration, 1)
		go func() {
			sent2 <- ts[0].Send(1, 2, []float64{2}, nil)
		}()
		select {
		case <-sent2:
			t.Fatal("second send did not block with 1 send buffer")
		case <-time.After(50 * time.Millisecond):
		}
		m, ok := ts[1].Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		m.Release()
		select {
		case stall := <-sent2:
			if stall < 25*time.Millisecond {
				t.Errorf("blocked send reported stall %v", stall)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("second send still blocked after release")
		}
		m2, _ := ts[1].Recv()
		m2.Release()
	})
}

// TestConformanceSendPolling: the polling variant must invoke poll()
// while blocked instead of deadlocking.
func TestConformanceSendPolling(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 1, 8)
		ts[0].Send(1, 1, []float64{1}, nil)
		var polls sync.WaitGroup
		polls.Add(1)
		polled := false
		done := make(chan time.Duration, 1)
		go func() {
			done <- ts[0].SendPolling(1, 2, []float64{2}, nil, func() {
				if !polled {
					polled = true
					polls.Done()
				}
				time.Sleep(time.Millisecond)
			})
		}()
		polls.Wait() // the blocked send is polling
		m, _ := ts[1].Recv()
		m.Release()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("polling send never completed")
		}
		m2, _ := ts[1].Recv()
		m2.Release()
	})
}

// TestConformanceReleaseIdempotent: double Release must free the
// send-buffer slot exactly once.
func TestConformanceReleaseIdempotent(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 1, 2)
		for round := 0; round < 3; round++ {
			ts[0].Send(1, round, []float64{1}, nil)
			m, ok := ts[1].Recv()
			if !ok {
				t.Fatal("recv failed")
			}
			m.Release()
			m.Release()
			m.ReleaseSlot()
		}
	})
}

// TestConformanceBufferRecycling: a receiver that keeps the payload
// alive uses ReleaseSlot and recycles via the pools itself — the
// engine's receive path.
func TestConformanceBufferRecycling(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 2, 2)
		data := mpi.GetData(4)
		meta := mpi.GetMeta(2)
		for i := range data {
			data[i] = float64(i)
		}
		meta[0], meta[1] = 3, 4
		ts[0].Send(1, 1, data, meta)
		m, ok := ts[1].Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		if len(m.Data) != 4 || m.Data[3] != 3 || len(m.Meta) != 2 || m.Meta[1] != 4 {
			t.Errorf("payload corrupted: %+v", m)
		}
		d := m.Data
		m.ReleaseSlot() // keep payload alive past the slot release
		if d[3] != 3 {
			t.Error("payload mutated by ReleaseSlot")
		}
		mpi.PutData(d)
		mpi.PutMeta(m.Meta)
	})
}

func TestConformanceBarrier(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		const n = 4
		ts := mesh(t, n, 1, 1)
		var phase [n]int
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for p := 0; p < 3; p++ {
					phase[r] = p
					if err := ts[r].Barrier(); err != nil {
						t.Errorf("rank %d barrier: %v", r, err)
						return
					}
					for o := 0; o < n; o++ {
						if phase[o] < p {
							t.Errorf("rank %d at phase %d saw rank %d at %d", r, p, o, phase[o])
						}
					}
					if err := ts[r].Barrier(); err != nil {
						t.Errorf("rank %d barrier: %v", r, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	})
}

func TestConformanceAllReduce(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		const n = 5
		ts := mesh(t, n, 1, 1)
		sum := func(a, b float64) float64 { return a + b }
		max := func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}
		var wg sync.WaitGroup
		sums := make([]float64, n)
		maxes := make([]float64, n)
		vals := []float64{2, 9, 4, -1, 7}
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var err error
				if sums[r], err = ts[r].AllReduce(float64(r+1), sum); err != nil {
					t.Errorf("rank %d allreduce sum: %v", r, err)
				}
				if maxes[r], err = ts[r].AllReduce(vals[r], max); err != nil {
					t.Errorf("rank %d allreduce max: %v", r, err)
				}
			}(r)
		}
		wg.Wait()
		for r := 0; r < n; r++ {
			if sums[r] != 15 {
				t.Errorf("rank %d sum = %v, want 15", r, sums[r])
			}
			if maxes[r] != 9 {
				t.Errorf("rank %d max = %v, want 9", r, maxes[r])
			}
		}
	})
}

// TestConformanceStats: Stats counts what this endpoint sent, so the
// mesh-wide sum matches the total traffic on both transports.
func TestConformanceStats(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 3, 2, 4)
		ts[0].Send(1, 1, []float64{1, 2}, nil)
		ts[0].Send(2, 2, []float64{3}, nil)
		ts[1].Send(2, 3, []float64{4, 5, 6}, nil)
		for _, rcv := range []struct{ rank, n int }{{1, 1}, {2, 2}} {
			for i := 0; i < rcv.n; i++ {
				m, ok := ts[rcv.rank].Recv()
				if !ok {
					t.Fatal("recv failed")
				}
				m.Release()
			}
		}
		var msgs, elems int64
		for _, tr := range ts {
			m, e := tr.Stats()
			msgs += m
			elems += e
		}
		if msgs != 3 || elems != 6 {
			t.Errorf("mesh stats = %d msgs %d elems, want 3/6", msgs, elems)
		}
		m0, e0 := ts[0].Stats()
		if m0 != 2 || e0 != 3 {
			t.Errorf("rank 0 stats = %d msgs %d elems, want 2/3", m0, e0)
		}
	})
}

// TestConformanceManyToOneStress floods one receiver from several
// senders through tight buffer limits.
func TestConformanceManyToOneStress(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		const senders = 4
		const msgs = 100
		ts := mesh(t, senders+1, 2, 4)
		var wg sync.WaitGroup
		for r := 1; r <= senders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					ts[r].Send(0, i, []float64{float64(r)}, []int64{int64(i)})
				}
			}(r)
		}
		seen := make(map[int]int)
		for got := 0; got < senders*msgs; got++ {
			m, ok := ts[0].Recv()
			if !ok {
				t.Fatal("transport closed early")
			}
			if int(m.Data[0]) != m.Src || int(m.Meta[0]) != m.Tag {
				t.Fatalf("corrupted message: %+v", m)
			}
			seen[m.Src]++
			m.Release()
		}
		wg.Wait()
		for r := 1; r <= senders; r++ {
			if seen[r] != msgs {
				t.Errorf("rank %d delivered %d msgs, want %d", r, seen[r], msgs)
			}
		}
	})
}

// TestConformanceCloseEndsRecv: after a collective shutdown, a blocked
// Recv must return ok=false instead of hanging.
func TestConformanceCloseEndsRecv(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mesh meshFunc) {
		ts := mesh(t, 2, 1, 2)
		done := make(chan bool, 1)
		go func() {
			_, ok := ts[1].Recv()
			done <- ok
		}()
		time.Sleep(10 * time.Millisecond)
		var wg sync.WaitGroup
		for _, tr := range ts {
			wg.Add(1)
			go func(tr mpi.Transport) {
				defer wg.Done()
				if err := tr.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}(tr)
		}
		select {
		case ok := <-done:
			if ok {
				t.Error("Recv on closed transport returned ok")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Recv did not return after Close")
		}
		wg.Wait()
	})
}

// TestTCPPeerDeath is the fault-injection test: rank 1 dies abruptly
// (no BYE) mid-run. Rank 0 must observe a clean failure — Recv
// returns ok=false, Err reports the death, and a blocked Barrier
// returns an error — rather than hanging.
func TestTCPPeerDeath(t *testing.T) {
	ts := tcpMesh(t, 2, 2, 2)
	t0 := ts[0].(*tcp.Transport)
	t1 := ts[1].(*tcp.Transport)

	// Healthy traffic first, so the mesh is known-good.
	t1.Send(0, 1, []float64{1}, nil)
	m, ok := t0.Recv()
	if !ok {
		t.Fatal("healthy recv failed")
	}
	m.Release()

	barrierErr := make(chan error, 1)
	go func() {
		barrierErr <- t0.Barrier() // blocks: rank 1 will never arrive
	}()

	time.Sleep(20 * time.Millisecond)
	t1.Kill()

	select {
	case err := <-barrierErr:
		if err == nil {
			t.Error("Barrier after peer death returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier hung after peer death")
	}
	if err := t0.Err(); err == nil {
		t.Error("Err after peer death is nil")
	}
	recvDone := make(chan bool, 1)
	go func() {
		_, ok := t0.Recv()
		recvDone <- ok
	}()
	select {
	case ok := <-recvDone:
		if ok {
			t.Error("Recv after peer death returned ok")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv hung after peer death")
	}
	if _, err := t0.AllReduce(1, func(a, b float64) float64 { return a + b }); err == nil {
		t.Error("AllReduce after peer death returned nil error")
	}
}

// TestTCPKillRecover is the Recovery-mode counterpart of
// TestTCPPeerDeath: rank 2 of a three-rank mesh dies abruptly mid-run,
// the survivors keep sending (parked, never blocking), and a restarted
// rank 2 rejoins the mesh. Every message — sent before or during the
// outage — must arrive at least once through the retained-history
// replay, and the collectives must work across the recovered mesh.
func TestTCPKillRecover(t *testing.T) {
	const size = 3
	lns := make([]net.Listener, size)
	peers := make([]string, size)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	ts := make([]*tcp.Transport, size)
	errs := make([]error, size)
	var dwg sync.WaitGroup
	for r := 0; r < size; r++ {
		dwg.Add(1)
		go func(r int) {
			defer dwg.Done()
			ts[r], errs[r] = tcp.Dial(r, peers, tcp.Options{
				Recovery:    true,
				SendBufs:    16,
				RecvBufs:    32,
				DialTimeout: 10 * time.Second,
				Listener:    lns[r],
			})
		}(r)
	}
	dwg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}

	// Healthy traffic from both survivors into rank 2.
	for tag := 0; tag < 4; tag++ {
		ts[0].Send(2, tag, []float64{float64(tag)}, nil)
		ts[1].Send(2, 10+tag, []float64{float64(10 + tag)}, nil)
	}
	for i := 0; i < 4; i++ {
		m, ok := ts[2].Recv()
		if !ok {
			t.Fatal("healthy recv failed")
		}
		m.Release()
	}

	ts[2].Kill()
	time.Sleep(20 * time.Millisecond) // let the survivors' readers observe the death

	// Sends to the dead rank park instead of blocking.
	parkDone := make(chan struct{})
	go func() {
		defer close(parkDone)
		for tag := 4; tag < 8; tag++ {
			ts[0].Send(2, tag, []float64{float64(tag)}, nil)
			ts[1].Send(2, 10+tag, []float64{float64(10 + tag)}, nil)
		}
	}()
	select {
	case <-parkDone:
	case <-time.After(10 * time.Second):
		t.Fatal("sends to a dead peer blocked")
	}

	t2b, err := tcp.DialRejoin(2, peers, tcp.Options{SendBufs: 16, RecvBufs: 32, DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// Replay is at-least-once: pre-death messages come again. Count
	// distinct (src, tag) pairs until all 16 have been seen.
	type key struct{ src, tag int }
	seen := make(map[key]bool)
	for len(seen) < 16 {
		m, ok := t2b.Recv()
		if !ok {
			t.Fatalf("recv after rejoin failed with %d/16 pairs seen", len(seen))
		}
		if m.Data[0] != float64(m.Tag) {
			t.Fatalf("corrupted replayed message: %+v", m)
		}
		seen[key{m.Src, m.Tag}] = true
		m.Release()
	}
	for r := 0; r < 2; r++ {
		if _, restarts := ts[r].RecoveryStats(); restarts != 1 {
			t.Errorf("rank %d peer restarts = %d, want 1", r, restarts)
		}
	}

	// The recovered mesh must still agree on collectives.
	alive := []*tcp.Transport{ts[0], ts[1], t2b}
	sums := make([]float64, size)
	var cwg sync.WaitGroup
	for r, tr := range alive {
		cwg.Add(1)
		go func(r int, tr *tcp.Transport) {
			defer cwg.Done()
			if err := tr.Barrier(); err != nil {
				t.Errorf("rank %d barrier after recovery: %v", r, err)
				return
			}
			var err error
			if sums[r], err = tr.AllReduce(float64(r+1), func(a, b float64) float64 { return a + b }); err != nil {
				t.Errorf("rank %d allreduce after recovery: %v", r, err)
			}
		}(r, tr)
	}
	cwg.Wait()
	for r, s := range sums {
		if s != 6 {
			t.Errorf("rank %d post-recovery allreduce = %v, want 6", r, s)
		}
	}

	var wg sync.WaitGroup
	for _, tr := range alive {
		wg.Add(1)
		go func(tr *tcp.Transport) { defer wg.Done(); tr.Close() }(tr)
	}
	wg.Wait()
}

// TestTCPChaosKillRecover drives the full engine through the worst
// transport weather the suite can brew: a three-rank recovery mesh
// whose every delivery is randomly delayed (reordered) by ChaosDelay,
// in which rank 2 crashes mid-run and a restarted incarnation rejoins
// and resumes from its checkpoint. The finished job must still be
// bit-identical to the serial reference on every rank, and no
// goroutine — crashed incarnation included — may outlive the run.
func TestTCPChaosKillRecover(t *testing.T) {
	before := runtime.NumGoroutine()
	p, err := problems.Get("lcs2")
	if err != nil {
		t.Fatal(err)
	}
	params := p.DefaultParams
	serial := p.Serial(params)

	const size, threads = 3, 2
	ckdir := t.TempDir()
	lns := make([]net.Listener, size)
	peers := make([]string, size)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	opts := func(r int) tcp.Options {
		return tcp.Options{
			Recovery:    true,
			DialTimeout: 15 * time.Second,
			Listener:    lns[r],
			ChaosDelay:  chaosDelayFn(int64(r + 1)),
		}
	}

	type outcome struct {
		res *engine.Result
		err error
	}
	run := func(r int, tr mpi.Transport, crash func(), crashAfter int64, resume bool) outcome {
		tl, err := tiling.New(p.Spec)
		if err != nil {
			return outcome{nil, err}
		}
		res, err := engine.Run(tl, p.Kernel, params, engine.Config{
			Transport:       tr,
			Threads:         threads,
			Checkpoint:      engine.CheckpointConfig{Dir: ckdir, EveryTiles: 4, Resume: resume},
			CrashAfterTiles: crashAfter,
			CrashFn:         crash,
		})
		return outcome{res, err}
	}

	survivors := make([]chan outcome, 2)
	for r := 0; r < 2; r++ {
		r := r
		survivors[r] = make(chan outcome, 1)
		go func() {
			tr, err := tcp.Dial(r, peers, opts(r))
			if err != nil {
				survivors[r] <- outcome{nil, err}
				return
			}
			survivors[r] <- run(r, tr, nil, 0, false)
		}()
	}

	// Rank 2, first incarnation: its transport dies after 6 tiles.
	crashed := make(chan outcome, 1)
	go func() {
		tr, err := tcp.Dial(2, peers, opts(2))
		if err != nil {
			crashed <- outcome{nil, err}
			return
		}
		crashed <- run(2, tr, tr.Kill, 6, false)
	}()
	select {
	case oc := <-crashed:
		if oc.err == nil {
			t.Fatalf("crashed incarnation returned nil error (result %+v)", oc.res)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("crashed incarnation never returned")
	}

	// Second incarnation: rejoin through the same chaos and resume.
	tr2b, err := tcp.DialRejoin(2, peers, tcp.Options{
		DialTimeout: 15 * time.Second,
		ChaosDelay:  chaosDelayFn(99),
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	oc2 := run(2, tr2b, nil, 0, true)
	if oc2.err != nil {
		t.Fatalf("resumed incarnation: %v", oc2.err)
	}

	results := map[int]*engine.Result{2: oc2.res}
	for r := 0; r < 2; r++ {
		select {
		case oc := <-survivors[r]:
			if oc.err != nil {
				t.Fatalf("rank %d: %v", r, oc.err)
			}
			results[r] = oc.res
		case <-time.After(60 * time.Second):
			t.Fatalf("rank %d never finished", r)
		}
	}
	for r := 0; r < size; r++ {
		got := results[r].Value
		if p.UseMax {
			got = results[r].Max
		}
		if got != serial {
			t.Errorf("rank %d: chaotic recovered run %.17g != serial reference %.17g", r, got, serial)
		}
	}

	// Transports are closed by engine.Run; the process must return to
	// its pre-test goroutine count (give the runtime time to reap).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
