package mpi

import "fmt"

// PeerDownError is the typed failure a transport reports when a
// specific peer rank is dead or unreachable: the connection died before
// a graceful BYE, or the peer missed enough heartbeats to be declared
// gone. Callers that supervise recovery (cmd/dprun's -launch
// supervisor, the fault-tolerance tests) unwrap it with errors.As to
// learn which rank to restart.
type PeerDownError struct {
	// Rank is the peer declared dead.
	Rank int
	// Cause is the underlying error: the read/write failure or a
	// heartbeat-timeout description.
	Cause error
}

// Error formats the rank and cause.
func (e *PeerDownError) Error() string {
	return fmt.Sprintf("peer rank %d down: %v", e.Rank, e.Cause)
}

// Unwrap returns the underlying cause.
func (e *PeerDownError) Unwrap() error { return e.Cause }
