package mpi

import "time"

// Transport is one rank's endpoint view of the inter-node message
// layer: tagged point-to-point sends with bounded-buffer backpressure,
// blocking and non-blocking receive, and the two collectives the engine
// needs (barrier, all-reduce). It is the seam between the hybrid
// runtime and the network: the in-process channel implementation
// (*Rank, this package) runs every rank as goroutines in one address
// space, and dpgen/internal/mpi/tcp runs each rank as a separate OS
// process connected over framed TCP. docs/TRANSPORT.md specifies the
// contract in full, including the buffer-ownership rules shared with
// the Message pools of this package.
//
// Implementations must honour the pooled-buffer contract: payload
// slices passed to Send/SendPolling are handed off (drawn from
// GetData/GetMeta by well-behaved callers), delivered Messages recycle
// through Message.Release/ReleaseSlot, and a released send-buffer slot
// must eventually unblock a sender waiting in Send.
type Transport interface {
	// ID returns this endpoint's rank in [0, Size()).
	ID() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Send delivers a tagged message to dst, blocking while all send
	// buffers are in flight (and, transport permitting, while the
	// destination cannot accept more). It returns the time spent
	// blocked — zero on the uncontended fast path. data and meta are
	// handed off and must not be touched by the caller afterwards.
	Send(dst, tag int, data []float64, meta []int64) time.Duration
	// SendPolling delivers like Send but invokes poll() instead of
	// blocking while buffers are exhausted, so a single-threaded rank
	// can drain its own inbox mid-send and avoid deadlock.
	SendPolling(dst, tag int, data []float64, meta []int64, poll func()) time.Duration
	// Recv blocks for the next message; ok is false once the transport
	// has been closed (or has failed) and the inbox is drained.
	Recv() (m *Message, ok bool)
	// Iprobe returns a pending message without blocking, or ok=false
	// when none is queued.
	Iprobe() (m *Message, ok bool)
	// Barrier blocks until every rank has entered it. It returns a
	// non-nil error (instead of hanging) when the transport has failed,
	// e.g. on peer death.
	Barrier() error
	// AllReduce combines one float64 per rank with f, applied in rank
	// order, and returns the result on every rank. All ranks must call
	// it collectively; like Barrier it errors instead of hanging on a
	// failed transport.
	AllReduce(v float64, f func(a, b float64) float64) (float64, error)
	// Stats returns the messages and float64 elements sent by this
	// endpoint.
	Stats() (messages, elems int64)
	// Err returns the first fatal transport error observed (peer death,
	// wire corruption), or nil. A non-nil Err means no further messages
	// will arrive.
	Err() error
	// Close shuts the endpoint down, draining in-flight traffic where
	// the transport supports it. After Close, Recv returns ok=false.
	Close() error
}
