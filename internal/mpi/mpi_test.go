package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(0, 1, 1); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := NewComm(2, 0, 1); err == nil {
		t.Error("0 send bufs should fail")
	}
	if _, err := NewComm(2, 1, 0); err == nil {
		t.Error("0 recv bufs should fail")
	}
}

func TestPingPong(t *testing.T) {
	c, err := NewComm(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r1 := c.Rank(1)
		m, ok := r1.Recv()
		if !ok {
			t.Error("recv failed")
			return
		}
		if m.Src != 0 || m.Tag != 7 || len(m.Data) != 3 || m.Data[1] != 2.5 || m.Meta[0] != 42 {
			t.Errorf("message corrupted: %+v", m)
		}
		m.Release()
		r1.Send(0, 8, []float64{9}, nil)
	}()
	r0 := c.Rank(0)
	r0.Send(1, 7, []float64{1, 2.5, 3}, []int64{42})
	m, ok := r0.Recv()
	if !ok || m.Tag != 8 || m.Data[0] != 9 {
		t.Errorf("reply wrong: %+v ok=%v", m, ok)
	}
	m.Release()
	<-done
	msgs, elems := c.Stats()
	if msgs != 2 || elems != 4 {
		t.Errorf("stats = %d msgs %d elems", msgs, elems)
	}
}

func TestIprobe(t *testing.T) {
	c, _ := NewComm(2, 1, 4)
	r1 := c.Rank(1)
	if _, ok := r1.Iprobe(); ok {
		t.Error("Iprobe on empty inbox returned a message")
	}
	c.Rank(0).Send(1, 1, []float64{1}, nil)
	m, ok := r1.Iprobe()
	if !ok || m.Data[0] != 1 {
		t.Errorf("Iprobe missed message: %+v ok=%v", m, ok)
	}
	m.Release()
}

func TestSendBufferBackpressure(t *testing.T) {
	// With 1 send buffer, a second send blocks until the receiver
	// releases the first message.
	c, _ := NewComm(2, 1, 8)
	r0 := c.Rank(0)
	r0.Send(1, 1, []float64{1}, nil)

	sent2 := make(chan struct{})
	go func() {
		r0.Send(1, 2, []float64{2}, nil)
		close(sent2)
	}()
	select {
	case <-sent2:
		t.Fatal("second send did not block with 1 send buffer")
	case <-time.After(30 * time.Millisecond):
	}
	m, ok := c.Rank(1).Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	m.Release()
	select {
	case <-sent2:
	case <-time.After(2 * time.Second):
		t.Fatal("second send still blocked after release")
	}
	m2, _ := c.Rank(1).Recv()
	m2.Release()
}

func TestRecvBufferBackpressure(t *testing.T) {
	// With 1 recv buffer and ample send buffers, the second send blocks
	// on the full inbox even though messages are never released.
	c, _ := NewComm(2, 8, 1)
	r0 := c.Rank(0)
	r0.Send(1, 1, []float64{1}, nil)
	sent2 := make(chan struct{})
	go func() {
		r0.Send(1, 2, []float64{2}, nil)
		close(sent2)
	}()
	select {
	case <-sent2:
		t.Fatal("second send did not block with full inbox")
	case <-time.After(30 * time.Millisecond):
	}
	m, _ := c.Rank(1).Recv() // drains one slot
	select {
	case <-sent2:
	case <-time.After(2 * time.Second):
		t.Fatal("second send still blocked after inbox drain")
	}
	m.Release()
	m2, _ := c.Rank(1).Recv()
	m2.Release()
}

func TestReleaseIdempotent(t *testing.T) {
	c, _ := NewComm(2, 1, 2)
	c.Rank(0).Send(1, 1, nil, nil)
	m, _ := c.Rank(1).Recv()
	m.Release()
	m.Release() // must not double-release the slot
	// The slot must be free for exactly one more send.
	c.Rank(0).Send(1, 2, nil, nil)
	m2, _ := c.Rank(1).Recv()
	m2.Release()
}

func TestCloseEndsRecv(t *testing.T) {
	c, _ := NewComm(2, 1, 2)
	done := make(chan bool)
	go func() {
		_, ok := c.Rank(1).Recv()
		done <- ok
	}()
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv on closed comm returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
	c.Close() // idempotent
}

func TestBarrier(t *testing.T) {
	const n = 4
	c, _ := NewComm(n, 1, 1)
	var phase [n]int
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rank := c.Rank(r)
			for p := 0; p < 3; p++ {
				phase[r] = p
				rank.Barrier()
				// After the barrier, every rank must have reached phase p.
				for o := 0; o < n; o++ {
					if phase[o] < p {
						t.Errorf("rank %d at phase %d saw rank %d at %d", r, p, o, phase[o])
					}
				}
				rank.Barrier()
			}
		}(r)
	}
	wg.Wait()
}

func TestAllReduce(t *testing.T) {
	const n = 5
	c, _ := NewComm(n, 1, 1)
	var wg sync.WaitGroup
	results := make([]float64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], _ = c.Rank(r).AllReduce(float64(r+1), func(a, b float64) float64 { return a + b })
		}(r)
	}
	wg.Wait()
	for r, v := range results {
		if v != 15 {
			t.Errorf("rank %d AllReduce = %v, want 15", r, v)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const n = 3
	c, _ := NewComm(n, 1, 1)
	var wg sync.WaitGroup
	results := make([]float64, n)
	vals := []float64{2, 9, 4}
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], _ = c.Rank(r).AllReduce(vals[r], func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			})
		}(r)
	}
	wg.Wait()
	for r, v := range results {
		if v != 9 {
			t.Errorf("rank %d = %v, want 9", r, v)
		}
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	c, _ := NewComm(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Rank(2)
}

func TestManyToOneStress(t *testing.T) {
	const senders = 8
	const msgs = 200
	c, _ := NewComm(senders+1, 2, 4)
	var wg sync.WaitGroup
	for r := 0; r < senders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rank := c.Rank(r + 1)
			for i := 0; i < msgs; i++ {
				rank.Send(0, i, []float64{float64(r)}, nil)
			}
		}(r)
	}
	got := 0
	r0 := c.Rank(0)
	for got < senders*msgs {
		m, ok := r0.Recv()
		if !ok {
			t.Fatal("comm closed early")
		}
		m.Release()
		got++
	}
	wg.Wait()
	msgsN, _ := c.Stats()
	if msgsN != senders*msgs {
		t.Errorf("stats msgs = %d, want %d", msgsN, senders*msgs)
	}
}

func TestRankAccessors(t *testing.T) {
	c, _ := NewComm(3, 1, 1)
	if c.Size() != 3 {
		t.Error("Comm.Size wrong")
	}
	r := c.Rank(2)
	if r.ID() != 2 || r.Size() != 3 {
		t.Error("Rank accessors wrong")
	}
}

// TestSendStallMeasured: with one send buffer held in flight, a second
// send must block until the receiver releases, and report that block as
// stall time; an uncontended send reports zero.
func TestSendStallMeasured(t *testing.T) {
	c, _ := NewComm(2, 1, 8)
	s := c.Rank(0)
	r := c.Rank(1)
	if stall := s.Send(1, 0, []float64{1}, nil); stall != 0 {
		t.Errorf("uncontended send stalled %v", stall)
	}
	const hold = 20 * time.Millisecond
	done := make(chan time.Duration)
	go func() {
		// The only send-buffer slot is in flight until the first
		// message is released, so this send stalls.
		done <- s.Send(1, 1, []float64{2}, nil)
	}()
	time.Sleep(hold)
	m, _ := r.Recv()
	m.Release()
	if stall := <-done; stall < hold/2 {
		t.Errorf("blocked send reported stall %v, want >= %v", stall, hold/2)
	}
	m, _ = r.Recv()
	m.Release()
}

// TestSendPollingStallMeasured mirrors the above for the polling path.
func TestSendPollingStallMeasured(t *testing.T) {
	c, _ := NewComm(2, 1, 8)
	s := c.Rank(0)
	r := c.Rank(1)
	if stall := s.SendPolling(1, 0, []float64{1}, nil, func() {}); stall != 0 {
		t.Errorf("uncontended polling send stalled %v", stall)
	}
	const hold = 20 * time.Millisecond
	done := make(chan time.Duration)
	go func() {
		done <- s.SendPolling(1, 1, []float64{2}, nil, func() { time.Sleep(time.Millisecond) })
	}()
	time.Sleep(hold)
	m, _ := r.Recv()
	m.Release()
	if stall := <-done; stall < hold/2 {
		t.Errorf("blocked polling send reported stall %v, want >= %v", stall, hold/2)
	}
	m, _ = r.Recv()
	m.Release()
}
