package mpi

// Elastic membership control messages. A transport that supports
// membership changes mid-run (ranks joining or leaving while tiles
// are executing) carries these out-of-band from DATA traffic and
// exposes them through an ElasticCh channel; the engine's membership
// coordinator consumes them. The message kinds mirror the view-change
// protocol documented in docs/ELASTICITY.md:
//
//	Join       a standby rank announces it wants tile ownership
//	Leave      a member rank requests a graceful departure
//	EpochPrep  rank 0 asks every rank to pause and drain to quiescence
//	EpochAck   a rank reports quiescence + its per-slab executed census
//	Epoch      rank 0 installs the new view (members + global census)
//	Fin        rank 0 signals that no further view changes will occur
//
// The payload encoding is owned by the engine (internal/engine); the
// transport treats it as opaque bytes.
const (
	ElasticJoin      = 1
	ElasticLeave     = 2
	ElasticEpochPrep = 3
	ElasticEpochAck  = 4
	ElasticEpoch     = 5
	ElasticFin       = 6
)

// ElasticMsg is one membership control message as delivered by a
// transport's ElasticCh. Payload is owned by the receiver.
type ElasticMsg struct {
	Kind    byte
	Src     int
	Payload []byte
}
