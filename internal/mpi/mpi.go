// Package mpi is an in-process message-passing substrate with the shape
// of the MPI subset the generated programs use: ranks, tagged
// point-to-point sends, blocking receive, non-blocking probe (the
// engine's "poll for incoming edges" step), barrier and all-reduce.
//
// It exists because this reproduction has no MPI ecosystem to link
// against: every "node" of the hybrid program is a set of goroutines
// sharing one address space, and the network is a set of bounded
// channels. The bounded send-buffer and receive-buffer pools reproduce
// the backpressure semantics that make the paper's buffer-count
// configuration option (Section VI-C) observable: a sender with all send
// buffers in flight stalls until a receiver drains one.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Message is a tagged payload between ranks. After processing, the
// receiver must call Release to return the sender's send-buffer slot
// and recycle the payload buffers — or ReleaseSlot if it needs to keep
// the payload.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the caller-chosen message tag (the engine uses the tile
	// dependence index).
	Tag int
	// Data is the payload; ownership follows the pool contract of
	// GetData/PutData.
	Data []float64
	// Meta is the integer metadata (the engine packs the consumer tile
	// coordinates here); ownership follows GetMeta/PutMeta.
	Meta []int64
	// SendAtUnixNanos is the sender's clock-aligned wall time when the
	// message hit the wire (rank-0 clock; see the TCP transport's clock
	// sync). Zero for in-process transports, which skip the stamp to
	// keep the fast path free of time syscalls.
	SendAtUnixNanos int64
	// Seq is the per-(sender, destination) wire sequence number of the
	// carrying DATA frame; zero for in-process transports.
	Seq uint64
	// Epoch is the sender's membership epoch when the message was sent
	// (see the elastic membership protocol). Zero for in-process
	// transports and for transports that never change membership.
	Epoch uint32

	slot     chan struct{}
	release  func()
	once     sync.Once
	recycled atomic.Bool
}

// NewMessage builds a delivered message whose send-buffer slot is
// freed by calling release (once, on the first Release/ReleaseSlot).
// It is the constructor used by out-of-process transports such as
// dpgen/internal/mpi/tcp, whose slot release is a wire-level
// acknowledgement rather than a channel operation.
func NewMessage(src, tag int, data []float64, meta []int64, release func()) *Message {
	return &Message{Src: src, Tag: tag, Data: data, Meta: meta, release: release}
}

// Release returns the send-buffer slot to the sender and recycles
// m.Data and m.Meta into the shared buffer pools: the caller must not
// retain either slice past this call. Safe to call multiple times; only
// the first has effect.
func (m *Message) Release() {
	m.ReleaseSlot()
	if m.recycled.CompareAndSwap(false, true) {
		PutData(m.Data)
		PutMeta(m.Meta)
		m.Data, m.Meta = nil, nil
	}
}

// ReleaseSlot returns the send-buffer slot without recycling the
// payload, for receivers that keep m.Data or m.Meta alive past the
// release point (they then recycle via PutData/PutMeta themselves, or
// let the GC have the slices). Safe to call multiple times.
func (m *Message) ReleaseSlot() {
	m.once.Do(func() {
		if m.slot != nil {
			<-m.slot
		}
		if m.release != nil {
			m.release()
		}
	})
}

// Edge-buffer pools. Packed tile edges dominate allocation in the
// runtime's hot path, so payload slices cycle through sync.Pools: the
// engine (and Message.Release) return them with PutData/PutMeta and
// producers draw them with GetData/GetMeta. The second pool of each
// pair recycles the pointer-sized headers so the steady state allocates
// nothing at all.
var (
	dataPool, dataHdrs sync.Pool // *[]float64: full buffers / spare headers
	metaPool, metaHdrs sync.Pool // *[]int64
)

// GetData returns a []float64 of length n, reusing pooled capacity when
// possible. The contents are unspecified.
func GetData(n int) []float64 {
	if p, _ := dataPool.Get().(*[]float64); p != nil {
		s := *p
		*p = nil
		dataHdrs.Put(p)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// PutData recycles a buffer obtained from GetData (or received in a
// Message). The caller must not use s afterwards.
func PutData(s []float64) {
	if cap(s) == 0 {
		return
	}
	p, _ := dataHdrs.Get().(*[]float64)
	if p == nil {
		p = new([]float64)
	}
	*p = s[:0]
	dataPool.Put(p)
}

// GetMeta returns an []int64 of length n from the metadata pool.
func GetMeta(n int) []int64 {
	if p, _ := metaPool.Get().(*[]int64); p != nil {
		s := *p
		*p = nil
		metaHdrs.Put(p)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int64, n)
}

// PutMeta recycles a metadata slice. The caller must not use s afterwards.
func PutMeta(s []int64) {
	if cap(s) == 0 {
		return
	}
	p, _ := metaHdrs.Get().(*[]int64)
	if p == nil {
		p = new([]int64)
	}
	*p = s[:0]
	metaPool.Put(p)
}

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	size      int
	inbox     []chan *Message
	sendSlots []chan struct{}

	// Barrier state.
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	gen   int

	// Per-sending-rank statistics (atomic).
	messages []atomic.Int64
	elems    []atomic.Int64

	closed atomic.Bool
}

// NewComm creates a communicator with the given number of ranks. Each
// rank has sendBufs send-buffer slots (its sends beyond that block until
// a receiver releases one) and recvBufs receive-buffer slots (senders to
// a full inbox block until the receiver dequeues). Both must be >= 1.
func NewComm(size, sendBufs, recvBufs int) (*Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: size %d", size)
	}
	if sendBufs < 1 || recvBufs < 1 {
		return nil, fmt.Errorf("mpi: need at least 1 send and recv buffer, got %d/%d", sendBufs, recvBufs)
	}
	c := &Comm{size: size}
	c.cond = sync.NewCond(&c.mu)
	c.inbox = make([]chan *Message, size)
	c.sendSlots = make([]chan struct{}, size)
	c.messages = make([]atomic.Int64, size)
	c.elems = make([]atomic.Int64, size)
	for i := range c.inbox {
		c.inbox[i] = make(chan *Message, recvBufs)
		c.sendSlots[i] = make(chan struct{}, sendBufs)
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank returns the handle for rank r.
func (c *Comm) Rank(r int) *Rank {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, c.size))
	}
	return &Rank{c: c, id: r}
}

// Close shuts down all inboxes. It must only be called after global
// quiescence (no sends in flight or forthcoming); receivers then observe
// end-of-stream.
func (c *Comm) Close() {
	if c.closed.CompareAndSwap(false, true) {
		for _, ch := range c.inbox {
			close(ch)
		}
	}
}

// Stats returns the total messages and float64 elements transferred
// across all ranks.
func (c *Comm) Stats() (messages, elems int64) {
	for i := range c.messages {
		messages += c.messages[i].Load()
		elems += c.elems[i].Load()
	}
	return messages, elems
}

// Rank is one endpoint of a communicator; it implements Transport.
type Rank struct {
	c  *Comm
	id int
}

var _ Transport = (*Rank)(nil)

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.c.size }

// Stats returns the messages and elements sent by this rank.
func (r *Rank) Stats() (messages, elems int64) {
	return r.c.messages[r.id].Load(), r.c.elems[r.id].Load()
}

// Err always returns nil: the in-process transport cannot lose a peer.
func (r *Rank) Err() error { return nil }

// Close shuts down the whole communicator (see Comm.Close); it is
// idempotent, so every rank of a collective run may call it.
func (r *Rank) Close() error {
	r.c.Close()
	return nil
}

// Send delivers a tagged message to dst. It blocks while all of this
// rank's send buffers are in flight, and while dst's receive buffers are
// full — the two backpressure mechanisms of the generated programs.
// data and meta are handed off and must not be modified by the caller
// afterwards.
//
// The returned stall is the time the caller spent blocked on either
// mechanism (zero on the uncontended fast path, which takes no clock
// reading) — the per-send quantity behind NodeStats.SendStallTime and
// the Section VI-C buffer-count sweep.
func (r *Rank) Send(dst, tag int, data []float64, meta []int64) (stall time.Duration) {
	slot := r.c.sendSlots[r.id]
	select {
	case slot <- struct{}{}: // acquire a send buffer, uncontended
	default:
		t0 := time.Now()
		slot <- struct{}{}
		stall = time.Since(t0)
	}
	m := &Message{Src: r.id, Tag: tag, Data: data, Meta: meta, slot: slot}
	r.c.messages[r.id].Add(1)
	r.c.elems[r.id].Add(int64(len(data)))
	select {
	case r.c.inbox[dst] <- m:
	default:
		t0 := time.Now()
		r.c.inbox[dst] <- m
		stall += time.Since(t0)
	}
	return stall
}

// SendPolling delivers like Send, but instead of blocking while send
// buffers or the destination's receive buffers are exhausted, it invokes
// poll() between attempts. This is how a single-threaded rank avoids
// deadlock when every peer is simultaneously trying to send: the poll
// callback drains the caller's own inbox (the generated programs'
// "poll for incoming edges" step).
//
// The returned stall is the time spent retrying (including the poll
// work, since the worker cannot make tile progress until the send
// completes); zero on the uncontended fast path.
func (r *Rank) SendPolling(dst, tag int, data []float64, meta []int64, poll func()) (stall time.Duration) {
	slot := r.c.sendSlots[r.id]
	select {
	case slot <- struct{}{}:
	default:
		t0 := time.Now()
		for {
			poll()
			select {
			case slot <- struct{}{}:
			default:
				continue
			}
			break
		}
		stall = time.Since(t0)
	}
	m := &Message{Src: r.id, Tag: tag, Data: data, Meta: meta, slot: slot}
	for {
		select {
		case r.c.inbox[dst] <- m:
			r.c.messages[r.id].Add(1)
			r.c.elems[r.id].Add(int64(len(data)))
			return stall
		default:
		}
		t0 := time.Now()
		poll()
		stall += time.Since(t0)
	}
}

// Recv blocks for the next message. ok is false when the communicator
// has been closed and the inbox drained.
func (r *Rank) Recv() (m *Message, ok bool) {
	m, ok = <-r.c.inbox[r.id]
	return m, ok
}

// Iprobe returns a pending message without blocking, or ok=false if none
// is queued (or the communicator is closed and drained).
func (r *Rank) Iprobe() (m *Message, ok bool) {
	select {
	case m, ok = <-r.c.inbox[r.id]:
		return m, ok
	default:
		return nil, false
	}
}

// Barrier blocks until every rank has entered it. The in-process
// implementation cannot fail; the error return exists for the
// Transport contract.
func (r *Rank) Barrier() error {
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	c.count++
	if c.count == c.size {
		c.count = 0
		c.gen++
		c.cond.Broadcast()
		return nil
	}
	for gen == c.gen {
		c.cond.Wait()
	}
	return nil
}

// allreduceState carries one in-progress reduction; Comm serializes
// reductions through the barrier generation, so one slot suffices.
var allreduceMu sync.Mutex
var allreduceVals = map[*Comm][]float64{}

// AllReduce combines one float64 per rank with f (applied in rank order)
// and returns the result on every rank. All ranks must call it
// collectively, and reductions must not overlap with other reductions on
// the same communicator. The in-process implementation never returns a
// non-nil error.
func (r *Rank) AllReduce(v float64, f func(a, b float64) float64) (float64, error) {
	c := r.c
	allreduceMu.Lock()
	vals := allreduceVals[c]
	if vals == nil {
		vals = make([]float64, c.size)
		allreduceVals[c] = vals
	}
	vals[r.id] = v
	allreduceMu.Unlock()

	r.Barrier()

	allreduceMu.Lock()
	acc := vals[0]
	for i := 1; i < c.size; i++ {
		acc = f(acc, vals[i])
	}
	allreduceMu.Unlock()

	r.Barrier() // keep vals stable until everyone has read
	return acc, nil
}
