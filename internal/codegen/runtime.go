package codegen

// runtimeSrc is the problem-independent half of every generated program:
// the hybrid scheduler of Section V, monomorphized against the generated
// dp* symbols. It deliberately avoids backquoted strings so it can live
// in this raw literal.
const runtimeSrc = `// ---- hybrid runtime (generated, problem independent) ----
//
// Inter-node edges travel over bounded channels with send-buffer
// slots, the in-memory form of the transport contract specified in
// docs/TRANSPORT.md of the generator repository; the same backpressure
// semantics apply to its framed-TCP implementation.

var (
	flagNodes    = flag.Int("nodes", 1, "simulated MPI ranks")
	flagThreads  = flag.Int("threads", runtime.NumCPU(), "worker threads per node (OpenMP analog)")
	flagSendBufs = flag.Int("sendbufs", 4, "send buffers per node")
	flagRecvBufs = flag.Int("recvbufs", 16, "receive buffers per node")
	flagStats    = flag.Bool("stats", false, "print per-node statistics")
)

func dpCeilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

func dpFloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func dpMax(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func dpMin(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// dpDepCount counts the tile dependencies of t that exist in the tile
// space; a tile becomes ready when that many edges have arrived.
func dpDepCount(t *[dpDims]int64) int {
	n := 0
	for j := 0; j < dpNumTileDeps; j++ {
		var p [dpDims]int64
		for k := 0; k < dpDims; k++ {
			p[k] = t[k] + dpTileDepOffsets[j][k]
		}
		if dpTileInSpace(&p) {
			n++
		}
	}
	return n
}

// dpLBKeyOf extracts the load-balancing coordinates of a tile.
func dpLBKeyOf(t *[dpDims]int64) [dpDims]int64 {
	var k [dpDims]int64
	for i := 0; i < dpNumLB; i++ {
		k[i] = t[dpLBIdx[i]]
	}
	return k
}

// dpKeyOf builds the column-major priority key of Figure 5:
// load-balancing dimensions first, each oriented so that smaller keys
// execute earlier.
func dpKeyOf(t *[dpDims]int64) [dpDims]int64 {
	var k [dpDims]int64
	for i := 0; i < dpDims; i++ {
		k[i] = dpKeyDirs[i] * t[dpKeyDims[i]]
	}
	return k
}

// dpBuildOwnership statically assigns tiles to nodes: slab work along
// the load-balancing dimensions is accumulated in priority-lexicographic
// order and cut into equal-work contiguous ranges (Section IV-J).
func dpBuildOwnership(nodes int) (owner map[[dpDims]int64]int, ownedTotal []int64, initial [][dpDims]int64, totalWork int64) {
	work := map[[dpDims]int64]int64{}
	var keys [][dpDims]int64
	dpForEachTile(func(t [dpDims]int64) bool {
		k := dpLBKeyOf(&t)
		if _, ok := work[k]; !ok {
			keys = append(keys, k)
		}
		work[k] += dpTileCellCount(&t)
		return true
	})
	sort.Slice(keys, func(a, b int) bool {
		for i := 0; i < dpNumLB; i++ {
			if keys[a][i] != keys[b][i] {
				return keys[a][i] < keys[b][i]
			}
		}
		return false
	})
	for _, k := range keys {
		totalWork += work[k]
	}
	owner = make(map[[dpDims]int64]int, len(keys))
	var cum int64
	for _, k := range keys {
		mid := cum + work[k]/2
		n := int(mid * int64(nodes) / totalWork)
		if n >= nodes {
			n = nodes - 1
		}
		owner[k] = n
		cum += work[k]
	}
	ownedTotal = make([]int64, nodes)
	dpForEachTile(func(t [dpDims]int64) bool {
		ownedTotal[owner[dpLBKeyOf(&t)]]++
		if dpDepCount(&t) == 0 {
			initial = append(initial, t)
		}
		return true
	})
	return owner, ownedTotal, initial, totalWork
}

// ---- scheduler data structures (Section V-B) ----

type dpEdgeMsg struct {
	dep  int
	data []dpElem
}

type dpMsg struct {
	dep      int
	consumer [dpDims]int64
	data     []dpElem
	slot     chan struct{}
}

type dpPend struct {
	tile      [dpDims]int64
	remaining int
	edges     []dpEdgeMsg
	key       [dpDims]int64
	seq       int64
	index     int
}

type dpHeap []*dpPend

func (h dpHeap) Len() int { return len(h) }
func (h dpHeap) Less(a, b int) bool {
	x, y := h[a], h[b]
	for k := 0; k < dpDims; k++ {
		if x.key[k] != y.key[k] {
			return x.key[k] < y.key[k]
		}
	}
	return x.seq < y.seq
}
func (h dpHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *dpHeap) Push(v interface{}) {
	p := v.(*dpPend)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *dpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

type dpNode struct {
	id      int
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[[dpDims]int64]*dpPend
	ready   dpHeap
	done    bool
	seq     int64

	owned    int64
	executed int64

	inbox chan dpMsg
	slots chan struct{}

	tiles, cells, sentRemote, recvRemote, localEdges int64
	sentElems, peakEdges, liveEdges                  int64
}

type dpGlobal struct {
	owner map[[dpDims]int64]int
	nodes []*dpNode
	wg    sync.WaitGroup

	goalMu  sync.Mutex
	goalVal dpElem
	goalSet bool
	maxVal  dpElem
	maxSet  bool
}

func (n *dpNode) worker(g *dpGlobal) {
	V := make([]dpElem, dpAllocLen)
	for {
		n.mu.Lock()
		for n.ready.Len() == 0 && !n.done {
			n.cond.Wait()
		}
		if n.ready.Len() == 0 {
			n.mu.Unlock()
			return
		}
		p := heap.Pop(&n.ready).(*dpPend)
		n.mu.Unlock()
		n.exec(g, p, V)
	}
}

func (n *dpNode) receiver(g *dpGlobal) {
	for m := range n.inbox {
		n.mu.Lock()
		n.recvRemote++
		n.mu.Unlock()
		n.deliver(m.dep, m.consumer, m.data)
		<-m.slot // release the sender's send buffer
	}
}

func (n *dpNode) deliver(dep int, consumer [dpDims]int64, data []dpElem) {
	n.mu.Lock()
	p := n.pending[consumer]
	if p == nil {
		p = &dpPend{tile: consumer, remaining: dpDepCount(&consumer)}
		n.pending[consumer] = p
	}
	p.edges = append(p.edges, dpEdgeMsg{dep: dep, data: data})
	p.remaining--
	n.liveEdges++
	if n.liveEdges > n.peakEdges {
		n.peakEdges = n.liveEdges
	}
	if p.remaining == 0 {
		delete(n.pending, consumer)
		p.seq = n.seq
		n.seq++
		p.key = dpKeyOf(&p.tile)
		heap.Push(&n.ready, p)
		n.cond.Signal()
	}
	n.mu.Unlock()
}

func (n *dpNode) exec(g *dpGlobal, p *dpPend, V []dpElem) {
	// Unpack received edges into the ghost shell.
	for _, ed := range p.edges {
		var prod [dpDims]int64
		for k := 0; k < dpDims; k++ {
			prod[k] = p.tile[k] + dpTileDepOffsets[ed.dep][k]
		}
		dpUnpackEdge(ed.dep, &prod, V, ed.data)
	}
	nEdges := int64(len(p.edges))
	p.edges = nil

	cells, tmax := dpExecTile(&p.tile, V)

	g.goalMu.Lock()
	if p.tile == dpGoalTile {
		g.goalVal = V[dpGoalLocIndex]
		g.goalSet = true
	}
	if cells > 0 && (!g.maxSet || tmax > g.maxVal) {
		g.maxVal = tmax
		g.maxSet = true
	}
	g.goalMu.Unlock()

	// Pack and ship the outgoing edges.
	var localDelivered, sent, sentElems int64
	for j := 0; j < dpNumTileDeps; j++ {
		var consumer [dpDims]int64
		for k := 0; k < dpDims; k++ {
			consumer[k] = p.tile[k] - dpTileDepOffsets[j][k]
		}
		if !dpTileInSpace(&consumer) {
			continue
		}
		data := dpPackEdge(j, &p.tile, V, make([]dpElem, 0, dpEdgeCap[j]))
		dst := g.owner[dpLBKeyOf(&consumer)]
		if dst == n.id {
			n.deliver(j, consumer, data)
			localDelivered++
		} else {
			n.slots <- struct{}{}
			g.nodes[dst].inbox <- dpMsg{dep: j, consumer: consumer, data: data, slot: n.slots}
			sent++
			sentElems += int64(len(data))
		}
	}

	n.mu.Lock()
	n.liveEdges -= nEdges
	n.tiles++
	n.cells += cells
	n.localEdges += localDelivered
	n.sentRemote += sent
	n.sentElems += sentElems
	n.executed++
	finished := n.executed == n.owned
	n.mu.Unlock()
	if finished {
		g.wg.Done()
	}
}

func main() {
	dpRegisterFlags()
	flag.Parse()
	dpUserInit()
	nodes, threads := *flagNodes, *flagThreads
	if nodes < 1 || threads < 1 || *flagSendBufs < 1 || *flagRecvBufs < 1 {
		fmt.Fprintln(os.Stderr, "invalid -nodes/-threads/-sendbufs/-recvbufs")
		os.Exit(2)
	}
	start := time.Now()
	owner, ownedTotal, initial, totalWork := dpBuildOwnership(nodes)
	if len(initial) == 0 {
		fmt.Fprintln(os.Stderr, "no initial tiles: empty space or cyclic dependencies")
		os.Exit(1)
	}
	g := &dpGlobal{owner: owner, nodes: make([]*dpNode, nodes)}
	for i := range g.nodes {
		n := &dpNode{
			id:      i,
			pending: make(map[[dpDims]int64]*dpPend),
			inbox:   make(chan dpMsg, *flagRecvBufs),
			slots:   make(chan struct{}, *flagSendBufs),
			owned:   ownedTotal[i],
		}
		n.cond = sync.NewCond(&n.mu)
		g.nodes[i] = n
	}
	for idx := range initial {
		t := initial[idx]
		n := g.nodes[owner[dpLBKeyOf(&t)]]
		p := &dpPend{tile: t, seq: n.seq, key: dpKeyOf(&t)}
		n.seq++
		heap.Push(&n.ready, p)
	}
	initSecs := time.Since(start).Seconds()

	g.wg.Add(nodes)
	var workers, receivers sync.WaitGroup
	for _, n := range g.nodes {
		if n.owned == 0 {
			g.wg.Done()
		}
		receivers.Add(1)
		go func(n *dpNode) {
			defer receivers.Done()
			n.receiver(g)
		}(n)
		for w := 0; w < threads; w++ {
			workers.Add(1)
			go func(n *dpNode) {
				defer workers.Done()
				n.worker(g)
			}(n)
		}
	}
	g.wg.Wait()
	for _, n := range g.nodes {
		close(n.inbox)
	}
	for _, n := range g.nodes {
		n.mu.Lock()
		n.done = true
		n.cond.Broadcast()
		n.mu.Unlock()
	}
	workers.Wait()
	receivers.Wait()
	elapsed := time.Since(start).Seconds()

	if !g.goalSet {
		fmt.Fprintln(os.Stderr, "goal tile never executed")
		os.Exit(1)
	}
	fmt.Printf("problem %s\n", dpProblemName)
	fmt.Printf("value %.17g\n", float64(g.goalVal))
	fmt.Printf("max %.17g\n", float64(g.maxVal))
	fmt.Printf("locations %d\n", totalWork)
	fmt.Printf("init_seconds %.6f\n", initSecs)
	fmt.Printf("total_seconds %.6f\n", elapsed)
	if *flagStats {
		for _, n := range g.nodes {
			fmt.Printf("node %d tiles %d cells %d sent %d sent_elems %d recv %d local %d peak_edges %d\n",
				n.id, n.tiles, n.cells, n.sentRemote, n.sentElems, n.recvRemote, n.localEdges, n.peakEdges)
		}
	}
}
`
