package codegen

// runtimeSrc is the problem-independent half of every generated program:
// the hybrid scheduler of Section V, monomorphized against the generated
// dp* symbols. It mirrors the library engine's hybrid static/dynamic
// scheduler (internal/engine/sched.go): per-worker ready-queue shards
// with randomized work stealing, and a precomputed wavefront order for
// tiles whose producers are all node-local, gated by one atomic counter
// per level instead of a pending-table entry each. It deliberately
// avoids backquoted strings so it can live in this raw literal.
const runtimeSrc = `// ---- hybrid runtime (generated, problem independent) ----
//
// Inter-node edges travel over bounded channels with send-buffer
// slots, the in-memory form of the transport contract specified in
// docs/TRANSPORT.md of the generator repository; the same backpressure
// semantics apply to its framed-TCP implementation.

var (
	flagNodes    = flag.Int("nodes", 1, "simulated MPI ranks")
	flagThreads  = flag.Int("threads", runtime.NumCPU(), "worker threads per node (OpenMP analog)")
	flagSendBufs = flag.Int("sendbufs", 4, "send buffers per node")
	flagRecvBufs = flag.Int("recvbufs", 16, "receive buffers per node")
	flagSched    = flag.String("sched", "hybrid", "tile scheduler: hybrid (precomputed wavefront for same-owner work) or dynamic (dependence-count everything)")
	flagStats    = flag.Bool("stats", false, "print per-node statistics")
)

func dpCeilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

func dpFloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func dpMax(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func dpMin(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func dpAtomicMax(addr *int64, v int64) {
	for {
		old := atomic.LoadInt64(addr)
		if v <= old || atomic.CompareAndSwapInt64(addr, old, v) {
			return
		}
	}
}

// dpDepCount counts the tile dependencies of t that exist in the tile
// space; a tile becomes ready when that many edges have arrived.
func dpDepCount(t *[dpDims]int64) int {
	n := 0
	for j := 0; j < dpNumTileDeps; j++ {
		var p [dpDims]int64
		for k := 0; k < dpDims; k++ {
			p[k] = t[k] + dpTileDepOffsets[j][k]
		}
		if dpTileInSpace(&p) {
			n++
		}
	}
	return n
}

// dpLBKeyOf extracts the load-balancing coordinates of a tile.
func dpLBKeyOf(t *[dpDims]int64) [dpDims]int64 {
	var k [dpDims]int64
	for i := 0; i < dpNumLB; i++ {
		k[i] = t[dpLBIdx[i]]
	}
	return k
}

// dpKeyOf builds the column-major priority key of Figure 5:
// load-balancing dimensions first, each oriented so that smaller keys
// execute earlier.
func dpKeyOf(t *[dpDims]int64) [dpDims]int64 {
	var k [dpDims]int64
	for i := 0; i < dpDims; i++ {
		k[i] = dpKeyDirs[i] * t[dpKeyDims[i]]
	}
	return k
}

// dpLevelOf is the wavefront level of a tile: the negated sum of its
// oriented priority-key components. Every producer sits at a strictly
// lower level than its consumers, so levels are a topological order of
// the tile DAG.
func dpLevelOf(t *[dpDims]int64) int64 {
	var lv int64
	for i := 0; i < dpDims; i++ {
		lv -= dpKeyDirs[i] * t[dpKeyDims[i]]
	}
	return lv
}

// dpBuildOwnership statically assigns tiles to nodes: slab work along
// the load-balancing dimensions is accumulated in priority-lexicographic
// order and cut into equal-work contiguous ranges (Section IV-J).
func dpBuildOwnership(nodes int) (owner map[[dpDims]int64]int, ownedTotal []int64, initial [][dpDims]int64, totalWork int64) {
	work := map[[dpDims]int64]int64{}
	var keys [][dpDims]int64
	dpForEachTile(func(t [dpDims]int64) bool {
		k := dpLBKeyOf(&t)
		if _, ok := work[k]; !ok {
			keys = append(keys, k)
		}
		work[k] += dpTileCellCount(&t)
		return true
	})
	sort.Slice(keys, func(a, b int) bool {
		for i := 0; i < dpNumLB; i++ {
			if keys[a][i] != keys[b][i] {
				return keys[a][i] < keys[b][i]
			}
		}
		return false
	})
	for _, k := range keys {
		totalWork += work[k]
	}
	owner = make(map[[dpDims]int64]int, len(keys))
	var cum int64
	for _, k := range keys {
		mid := cum + work[k]/2
		n := int(mid * int64(nodes) / totalWork)
		if n >= nodes {
			n = nodes - 1
		}
		owner[k] = n
		cum += work[k]
	}
	ownedTotal = make([]int64, nodes)
	dpForEachTile(func(t [dpDims]int64) bool {
		ownedTotal[owner[dpLBKeyOf(&t)]]++
		if dpDepCount(&t) == 0 {
			initial = append(initial, t)
		}
		return true
	})
	return owner, ownedTotal, initial, totalWork
}

// ---- scheduler data structures (Section V-B) ----

type dpEdgeMsg struct {
	dep  int
	data []dpElem
}

type dpMsg struct {
	dep      int
	consumer [dpDims]int64
	data     []dpElem
	slot     chan struct{}
}

type dpPend struct {
	tile      [dpDims]int64
	remaining int
	edges     []dpEdgeMsg
	key       [dpDims]int64
	level     int64
	seq       int64
	index     int
	group     int
	// static marks a wavefront-scheduled tile: its edges slice has one
	// preallocated slot per tile dependence, written in place by its
	// producers instead of appended under the pending-table lock.
	static bool
}

type dpHeap []*dpPend

func (h dpHeap) Len() int { return len(h) }
func (h dpHeap) Less(a, b int) bool {
	x, y := h[a], h[b]
	for k := 0; k < dpDims; k++ {
		if x.key[k] != y.key[k] {
			return x.key[k] < y.key[k]
		}
	}
	return x.seq < y.seq
}
func (h dpHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *dpHeap) Push(v interface{}) {
	p := v.(*dpPend)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *dpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

// dpShard is one worker's slice of its node's ready queue: a priority
// heap of dynamically released tiles and a deque of statically released
// wavefront tiles. The owner pops the heap first, then the deque's tail
// (LIFO); a thief takes the victim's best heap tile or the deque's head
// (FIFO).
type dpShard struct {
	mu     sync.Mutex
	heap   dpHeap
	dq     []*dpPend
	dqHead int
	rng    uint64
}

func (s *dpShard) popLocal() *dpPend {
	if s.heap.Len() > 0 {
		return heap.Pop(&s.heap).(*dpPend)
	}
	if n := len(s.dq); n > s.dqHead {
		p := s.dq[n-1]
		s.dq[n-1] = nil
		s.dq = s.dq[:n-1]
		if s.dqHead == len(s.dq) {
			s.dq = s.dq[:0]
			s.dqHead = 0
		}
		return p
	}
	return nil
}

func (s *dpShard) stealOne() *dpPend {
	if s.heap.Len() > 0 {
		return heap.Pop(&s.heap).(*dpPend)
	}
	if s.dqHead < len(s.dq) {
		p := s.dq[s.dqHead]
		s.dq[s.dqHead] = nil
		s.dqHead++
		if s.dqHead == len(s.dq) {
			s.dq = s.dq[:0]
			s.dqHead = 0
		}
		return p
	}
	return nil
}

func dpXorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// dpSched is a node's static-phase state: wavefront-ordered same-owner
// tiles and one release counter per level. remain counts every owned
// tile of the level (static or dynamic) because a static tile may
// consume edges from a dynamic tile at any lower level.
type dpSched struct {
	minLevel int64
	remain   []int64
	levels   [][]*dpPend
	idx      map[[dpDims]int64]*dpPend
	total    int64

	fmu      sync.Mutex
	frontier int
	rr       int
}

// dpBuildStatic classifies tiles at partition time: a tile whose
// producers all exist on the owning node becomes a static entry,
// executed in wavefront-level order with no pending-table traffic.
func dpBuildStatic(g *dpGlobal) {
	lo, hi := int64(1)<<62, -(int64(1) << 62)
	dpForEachTile(func(t [dpDims]int64) bool {
		lv := dpLevelOf(&t)
		if lv < lo {
			lo = lv
		}
		if lv > hi {
			hi = lv
		}
		return true
	})
	if hi < lo {
		return
	}
	nlv := int(hi - lo + 1)
	for _, n := range g.nodes {
		n.sd = &dpSched{
			minLevel: lo,
			remain:   make([]int64, nlv),
			levels:   make([][]*dpPend, nlv),
			idx:      map[[dpDims]int64]*dpPend{},
		}
	}
	dpForEachTile(func(t [dpDims]int64) bool {
		own := g.owner[dpLBKeyOf(&t)]
		n := g.nodes[own]
		lv := dpLevelOf(&t)
		li := int(lv - lo)
		n.sd.remain[li]++
		nprod := 0
		static := true
		for j := 0; j < dpNumTileDeps; j++ {
			var pr [dpDims]int64
			for k := 0; k < dpDims; k++ {
				pr[k] = t[k] + dpTileDepOffsets[j][k]
			}
			if !dpTileInSpace(&pr) {
				continue
			}
			nprod++
			if g.owner[dpLBKeyOf(&pr)] != own {
				static = false
				break
			}
		}
		if !static || nprod == 0 {
			return true // initial tiles are seeded, not released
		}
		p := &dpPend{tile: t, key: dpKeyOf(&t), level: lv, static: true,
			edges: make([]dpEdgeMsg, dpNumTileDeps)}
		n.sd.levels[li] = append(n.sd.levels[li], p)
		n.sd.idx[t] = p
		n.sd.total++
		return true
	})
}

// advance releases every fully unblocked level: the frontier level's
// static tiles go round-robin into the worker shards, then the frontier
// moves past each level whose owned-tile counter has drained. A static
// tile's producers all sit at strictly lower levels, so release at
// frontier arrival is safe; released levels are nilled, making
// re-entry idempotent.
func (sd *dpSched) advance(n *dpNode) {
	sd.fmu.Lock()
	for sd.frontier < len(sd.remain) {
		for _, p := range sd.levels[sd.frontier] {
			p.seq = atomic.AddInt64(&n.seqA, 1)
			p.group = sd.rr % len(n.shards)
			sd.rr++
			n.enqueue(p)
		}
		sd.levels[sd.frontier] = nil
		if atomic.LoadInt64(&sd.remain[sd.frontier]) != 0 {
			break
		}
		sd.frontier++
	}
	sd.fmu.Unlock()
}

// tileRetired is the scheduler epilogue of every executed tile: its
// level counter drops, and a drained frontier level releases the next
// wavefront.
func (n *dpNode) tileRetired(p *dpPend) {
	sd := n.sd
	if sd == nil {
		return
	}
	if atomic.AddInt64(&sd.remain[p.level-sd.minLevel], -1) == 0 {
		sd.advance(n)
	}
}

type dpNode struct {
	id   int
	mu   sync.Mutex
	cond *sync.Cond
	done bool

	pendMu  sync.Mutex
	pending map[[dpDims]int64]*dpPend

	shards   []dpShard
	qlen     int64
	epoch    uint64
	sleepers int32
	seqA     int64

	sd *dpSched

	owned    int64
	executed int64

	inbox chan dpMsg
	slots chan struct{}

	steals, localPops, recvRemote, liveEdges, peakEdges int64

	tiles, cells, sentRemote, localEdges, sentElems int64
}

type dpGlobal struct {
	owner map[[dpDims]int64]int
	nodes []*dpNode
	wg    sync.WaitGroup

	goalMu  sync.Mutex
	goalVal dpElem
	goalSet bool
	maxVal  dpElem
	maxSet  bool
}

// dpShardOf hashes a tile to its home shard (FNV-1a), fixing which
// worker's queue a dynamic tile lands in.
func dpShardOf(n *dpNode, t *[dpDims]int64) int {
	if len(n.shards) <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for k := 0; k < dpDims; k++ {
		h ^= uint64(t[k])
		h *= 1099511628211
	}
	return int(h % uint64(len(n.shards)))
}

// popAny claims a tile for worker w: its own shard first, then the
// other shards in a randomized rotation.
func (n *dpNode) popAny(w int) *dpPend {
	s := &n.shards[w]
	s.mu.Lock()
	p := s.popLocal()
	s.mu.Unlock()
	if p != nil {
		atomic.AddInt64(&n.qlen, -1)
		atomic.AddInt64(&n.localPops, 1)
		return p
	}
	ns := len(n.shards)
	if ns == 1 || atomic.LoadInt64(&n.qlen) == 0 {
		return nil
	}
	start := int(dpXorshift(&s.rng) % uint64(ns-1))
	for i := 0; i < ns-1; i++ {
		v := &n.shards[(w+1+(start+i)%(ns-1))%ns]
		v.mu.Lock()
		p = v.stealOne()
		v.mu.Unlock()
		if p != nil {
			atomic.AddInt64(&n.qlen, -1)
			atomic.AddInt64(&n.steals, 1)
			return p
		}
	}
	return nil
}

// enqueue makes a tile runnable. The epoch bump makes the wakeup
// race-free: a worker only commits to sleeping if the epoch it read
// before its empty scan is still current, so either it sees this push
// and rescans, or its sleeper registration is visible here and the
// signal lands.
func (n *dpNode) enqueue(p *dpPend) {
	s := &n.shards[p.group]
	s.mu.Lock()
	if p.static {
		s.dq = append(s.dq, p)
	} else {
		heap.Push(&s.heap, p)
	}
	s.mu.Unlock()
	atomic.AddInt64(&n.qlen, 1)
	atomic.AddUint64(&n.epoch, 1)
	if atomic.LoadInt32(&n.sleepers) > 0 {
		n.mu.Lock()
		n.cond.Signal()
		n.mu.Unlock()
	}
}

func (n *dpNode) worker(g *dpGlobal, w int) {
	V := make([]dpElem, dpAllocLen)
	for {
		e0 := atomic.LoadUint64(&n.epoch)
		if p := n.popAny(w); p != nil {
			n.exec(g, p, V)
			continue
		}
		n.mu.Lock()
		if n.done {
			n.mu.Unlock()
			return
		}
		atomic.AddInt32(&n.sleepers, 1)
		if atomic.LoadUint64(&n.epoch) != e0 {
			atomic.AddInt32(&n.sleepers, -1)
			n.mu.Unlock()
			continue
		}
		n.cond.Wait()
		atomic.AddInt32(&n.sleepers, -1)
		n.mu.Unlock()
	}
}

func (n *dpNode) receiver(g *dpGlobal) {
	for m := range n.inbox {
		atomic.AddInt64(&n.recvRemote, 1)
		n.deliver(m.dep, m.consumer, m.data)
		<-m.slot // release the sender's send buffer
	}
}

func (n *dpNode) deliver(dep int, consumer [dpDims]int64, data []dpElem) {
	if sd := n.sd; sd != nil {
		if p := sd.idx[consumer]; p != nil {
			// Static consumer: each edge slot has exactly one producer,
			// and the frontier releases the tile only after every lower
			// level - the producer included - has retired, so the plain
			// slot write is safe and skips the pending table entirely.
			p.edges[dep] = dpEdgeMsg{dep: dep, data: data}
			return
		}
	}
	n.pendMu.Lock()
	p := n.pending[consumer]
	if p == nil {
		p = &dpPend{tile: consumer, remaining: dpDepCount(&consumer), level: dpLevelOf(&consumer)}
		n.pending[consumer] = p
	}
	p.edges = append(p.edges, dpEdgeMsg{dep: dep, data: data})
	p.remaining--
	ready := p.remaining == 0
	if ready {
		delete(n.pending, consumer)
		p.key = dpKeyOf(&p.tile)
		p.group = dpShardOf(n, &consumer)
		p.seq = atomic.AddInt64(&n.seqA, 1)
	}
	n.pendMu.Unlock()
	live := atomic.AddInt64(&n.liveEdges, 1)
	dpAtomicMax(&n.peakEdges, live)
	if ready {
		n.enqueue(p)
	}
}

func (n *dpNode) exec(g *dpGlobal, p *dpPend, V []dpElem) {
	// Unpack received edges into the ghost shell (static tiles may have
	// empty slots: dependences whose producer is outside the space).
	nEdges := int64(0)
	for _, ed := range p.edges {
		if ed.data == nil {
			continue
		}
		nEdges++
		var prod [dpDims]int64
		for k := 0; k < dpDims; k++ {
			prod[k] = p.tile[k] + dpTileDepOffsets[ed.dep][k]
		}
		dpUnpackEdge(ed.dep, &prod, V, ed.data)
	}
	p.edges = nil
	if !p.static {
		// Static tiles' edges bypass the pending table and are never
		// counted live.
		atomic.AddInt64(&n.liveEdges, -nEdges)
	}

	cells, tmax := dpExecTile(&p.tile, V)

	g.goalMu.Lock()
	if p.tile == dpGoalTile {
		g.goalVal = V[dpGoalLocIndex]
		g.goalSet = true
	}
	if cells > 0 && (!g.maxSet || tmax > g.maxVal) {
		g.maxVal = tmax
		g.maxSet = true
	}
	g.goalMu.Unlock()

	// Pack and ship the outgoing edges.
	var localDelivered, sent, sentElems int64
	for j := 0; j < dpNumTileDeps; j++ {
		var consumer [dpDims]int64
		for k := 0; k < dpDims; k++ {
			consumer[k] = p.tile[k] - dpTileDepOffsets[j][k]
		}
		if !dpTileInSpace(&consumer) {
			continue
		}
		data := dpPackEdge(j, &p.tile, V, make([]dpElem, 0, dpEdgeCap[j]))
		dst := g.owner[dpLBKeyOf(&consumer)]
		if dst == n.id {
			n.deliver(j, consumer, data)
			localDelivered++
		} else {
			n.slots <- struct{}{}
			g.nodes[dst].inbox <- dpMsg{dep: j, consumer: consumer, data: data, slot: n.slots}
			sent++
			sentElems += int64(len(data))
		}
	}

	n.mu.Lock()
	n.tiles++
	n.cells += cells
	n.localEdges += localDelivered
	n.sentRemote += sent
	n.sentElems += sentElems
	n.executed++
	finished := n.executed == n.owned
	n.mu.Unlock()
	n.tileRetired(p)
	if finished {
		g.wg.Done()
	}
}

func main() {
	dpRegisterFlags()
	flag.Parse()
	dpUserInit()
	nodes, threads := *flagNodes, *flagThreads
	if nodes < 1 || threads < 1 || *flagSendBufs < 1 || *flagRecvBufs < 1 {
		fmt.Fprintln(os.Stderr, "invalid -nodes/-threads/-sendbufs/-recvbufs")
		os.Exit(2)
	}
	staticOn := false
	switch *flagSched {
	case "hybrid":
		// A single worker per node has no scheduler synchronization for
		// the static phase to remove; skip the classification scan.
		staticOn = threads > 1
	case "dynamic":
	default:
		fmt.Fprintln(os.Stderr, "invalid -sched (want hybrid or dynamic)")
		os.Exit(2)
	}
	start := time.Now()
	owner, ownedTotal, initial, totalWork := dpBuildOwnership(nodes)
	if len(initial) == 0 {
		fmt.Fprintln(os.Stderr, "no initial tiles: empty space or cyclic dependencies")
		os.Exit(1)
	}
	g := &dpGlobal{owner: owner, nodes: make([]*dpNode, nodes)}
	for i := range g.nodes {
		n := &dpNode{
			id:      i,
			pending: make(map[[dpDims]int64]*dpPend),
			shards:  make([]dpShard, threads),
			inbox:   make(chan dpMsg, *flagRecvBufs),
			slots:   make(chan struct{}, *flagSendBufs),
			owned:   ownedTotal[i],
		}
		for w := range n.shards {
			n.shards[w].rng = uint64(w+1) * 0x9E3779B97F4A7C15
		}
		n.cond = sync.NewCond(&n.mu)
		g.nodes[i] = n
	}
	if staticOn {
		dpBuildStatic(g)
	}
	for idx := range initial {
		t := initial[idx]
		n := g.nodes[owner[dpLBKeyOf(&t)]]
		p := &dpPend{tile: t, key: dpKeyOf(&t), level: dpLevelOf(&t)}
		p.seq = atomic.AddInt64(&n.seqA, 1)
		p.group = dpShardOf(n, &t)
		n.enqueue(p)
	}
	if staticOn {
		for _, n := range g.nodes {
			n.sd.advance(n)
		}
	}
	initSecs := time.Since(start).Seconds()

	g.wg.Add(nodes)
	var workers, receivers sync.WaitGroup
	for _, n := range g.nodes {
		if n.owned == 0 {
			g.wg.Done()
		}
		receivers.Add(1)
		go func(n *dpNode) {
			defer receivers.Done()
			n.receiver(g)
		}(n)
		for w := 0; w < threads; w++ {
			workers.Add(1)
			go func(n *dpNode, w int) {
				defer workers.Done()
				n.worker(g, w)
			}(n, w)
		}
	}
	g.wg.Wait()
	for _, n := range g.nodes {
		close(n.inbox)
	}
	for _, n := range g.nodes {
		n.mu.Lock()
		n.done = true
		n.cond.Broadcast()
		n.mu.Unlock()
	}
	workers.Wait()
	receivers.Wait()
	elapsed := time.Since(start).Seconds()

	if !g.goalSet {
		fmt.Fprintln(os.Stderr, "goal tile never executed")
		os.Exit(1)
	}
	fmt.Printf("problem %s\n", dpProblemName)
	fmt.Printf("value %.17g\n", float64(g.goalVal))
	fmt.Printf("max %.17g\n", float64(g.maxVal))
	fmt.Printf("locations %d\n", totalWork)
	fmt.Printf("init_seconds %.6f\n", initSecs)
	fmt.Printf("total_seconds %.6f\n", elapsed)
	if *flagStats {
		for _, n := range g.nodes {
			static := int64(0)
			if n.sd != nil {
				static = n.sd.total
			}
			fmt.Printf("node %d tiles %d cells %d sent %d sent_elems %d recv %d local %d peak_edges %d static %d steals %d local_pops %d\n",
				n.id, n.tiles, n.cells, n.sentRemote, n.sentElems, n.recvRemote, n.localEdges, n.peakEdges, static, n.steals, n.localPops)
		}
	}
}
`
