package codegen

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dpgen/internal/dpfuzz"
	"dpgen/internal/engine"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeed selects the fuzz-generated spec the golden test pins:
// seed 2 draws a 3-D space with two binding diagonal constraints,
// three mixed-sign magnitude-2 templates (r1..r3), and a shuffled
// loop order — a far more irregular shape than the hand-written
// problem library covers. (The seed moved from 20 when the generator
// grew template classes; seed 20 now draws a single-dependence spec.)
const goldenSeed = 2

// TestGoldenFuzzSpec generates the complete program for a
// dpfuzz-generated spec and compares it byte-for-byte against the
// committed golden file, so any unintended change to emitted loop
// bounds, mapping functions, pack/unpack scans or the runtime skeleton
// shows up as a readable diff. Regenerate intentionally with
//
//	go test ./internal/codegen -run TestGoldenFuzzSpec -update
func TestGoldenFuzzSpec(t *testing.T) {
	in := dpfuzz.Generate(goldenSeed)
	sp := in.Spec
	if d := len(sp.Vars); d != 3 {
		t.Fatalf("seed %d no longer draws a 3-D spec (got %d-D); pick a new goldenSeed", goldenSeed, d)
	}
	sp.KernelCode = `v := 1.0 + 0.0625*float64((v0*17+v1*3+v2*7)%23)
if is_valid_r1 {
	v += 0.5 * V[loc_r1]
}
if is_valid_r2 {
	v += 0.25 * V[loc_r2]
}
if is_valid_r3 {
	v += 0.125 * V[loc_r3]
}
V[loc] = v`

	src, err := Generate(sp, Options{ParamDefaults: []int64{9}})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", fmt.Sprintf("fuzz_seed%d.go.golden", goldenSeed))
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(src, want) {
		t.Errorf("generated source differs from %s (run with -update if the change is intended)\ngot %d bytes, want %d", golden, len(src), len(want))
		for i := 0; i < len(src) && i < len(want); i++ {
			if src[i] != want[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				hi := i + 80
				if hi > len(src) {
					hi = len(src)
				}
				t.Errorf("first difference at byte %d:\n...%s...", i, src[lo:hi])
				break
			}
		}
	}
}

// TestGoldenFuzzSpecRuns compiles the golden spec's program and checks
// it against an in-process engine run with the equivalent kernel —
// bit-identical, like every other differential in the fuzz harness.
func TestGoldenFuzzSpecRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program")
	}
	in := dpfuzz.Generate(goldenSeed)
	sp := in.Spec
	sp.KernelCode = `v := 1.0 + 0.0625*float64((v0*17+v1*3+v2*7)%23)
if is_valid_r1 {
	v += 0.5 * V[loc_r1]
}
if is_valid_r2 {
	v += 0.25 * V[loc_r2]
}
if is_valid_r3 {
	v += 0.125 * V[loc_r3]
}
V[loc] = v`
	N := int64(9)
	got := buildAndRun(t, sp, "-N", fmt.Sprint(N), "-nodes", "2", "-threads", "2")

	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	kernel := func(c *engine.Ctx) {
		v := 1.0 + 0.0625*float64((c.X[0]*17+c.X[1]*3+c.X[2]*7)%23)
		if c.DepValid[0] {
			v += 0.5 * c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += 0.25 * c.V[c.DepLoc[1]]
		}
		if c.DepValid[2] {
			v += 0.125 * c.V[c.DepLoc[2]]
		}
		c.V[c.Loc] = v
	}
	res, err := engine.Run(tl, kernel, []int64{N}, engine.Config{Nodes: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Value {
		t.Fatalf("generated program value %v, engine reference %v (want bit-exact)", got, res.Value)
	}
}

// TestGoldenMCM pins the emitted program for the matrix-chain builtin —
// the nonserial (range-template) case: the golden file locks down the
// len_/stride_ symbol emission, the prefix-clamp straight-line code in
// the boundary nest, and the multi-tile crossing tables that a
// reach-23 template over width-8 tiles produces.
func TestGoldenMCM(t *testing.T) {
	p := problems.MCM()
	src, err := Generate(p.Spec, Options{ParamDefaults: p.DefaultParams})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "mcm.go.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(src, want) {
		t.Errorf("generated source differs from %s (run with -update if the change is intended)\ngot %d bytes, want %d", golden, len(src), len(want))
		for i := 0; i < len(src) && i < len(want); i++ {
			if src[i] != want[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				hi := i + 80
				if hi > len(src) {
					hi = len(src)
				}
				t.Errorf("first difference at byte %d:\n...%s...", i, src[lo:hi])
				break
			}
		}
	}
}

// TestGoldenMCMRuns compiles the matrix-chain program and requires the
// result to match both the in-process engine and the serial reference
// bit-for-bit, across a parameter value on each side of the tile width.
func TestGoldenMCMRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a program")
	}
	p := problems.MCM()
	for _, N := range []int64{7, 20} {
		got := buildAndRun(t, p.Spec, "-N", fmt.Sprint(N), "-nodes", "2", "-threads", "2")
		tl, err := tiling.New(p.Spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(tl, p.Kernel, []int64{N}, engine.Config{Nodes: 2, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Value {
			t.Fatalf("N=%d: generated program value %v, engine %v (want bit-exact)", N, got, res.Value)
		}
		if want := p.Serial([]int64{N}); got != want {
			t.Fatalf("N=%d: generated program value %v, serial %v (want bit-exact)", N, got, want)
		}
	}
}
