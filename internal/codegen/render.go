package codegen

import (
	"fmt"
	"strings"

	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

// renamer maps space names to Go identifiers in the generated program.
type renamer func(name string) string

// renderExpr renders an affine expression as a Go int64 expression.
func renderExpr(e lin.Expr, rn renamer) string {
	var b strings.Builder
	first := true
	sp := e.Space()
	for i := 0; i < sp.N(); i++ {
		c := e.CoeffAt(i)
		if c == 0 {
			continue
		}
		id := rn(sp.Name(i))
		switch {
		case first && c == 1:
			b.WriteString(id)
		case first && c == -1:
			b.WriteString("-" + id)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, id)
		case c == 1:
			b.WriteString(" + " + id)
		case c == -1:
			b.WriteString(" - " + id)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, id)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, id)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", e.K)
	case e.K > 0:
		fmt.Fprintf(&b, " + %d", e.K)
	case e.K < 0:
		fmt.Fprintf(&b, " - %d", -e.K)
	}
	return b.String()
}

// renderExprInt64 renders an affine expression so the result is typed
// int64 even when it degenerates to a literal constant.
func renderExprInt64(e lin.Expr, rn renamer) string {
	if e.IsConst() {
		return fmt.Sprintf("int64(%d)", e.K)
	}
	return renderExpr(e, rn)
}

// renderLower renders the max of a level's lower bounds.
func renderLower(bounds []loopgen.Bound, rn renamer) string {
	return renderBounds(bounds, rn, "dpCeilDiv", "dpMax")
}

// renderUpper renders the min of a level's upper bounds.
func renderUpper(bounds []loopgen.Bound, rn renamer) string {
	return renderBounds(bounds, rn, "dpFloorDiv", "dpMin")
}

func renderBounds(bounds []loopgen.Bound, rn renamer, div, comb string) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		if b.Div == 1 {
			parts[i] = "(" + renderExpr(b.Num, rn) + ")"
		} else {
			parts[i] = fmt.Sprintf("%s(%s, %d)", div, renderExpr(b.Num, rn), b.Div)
		}
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = fmt.Sprintf("%s(%s, %s)", comb, out, p)
	}
	return out
}

// renderIneqs renders a conjunction of inequalities (expr >= 0), or
// "true" when empty.
func renderIneqs(qs []lin.Ineq, rn renamer) string {
	if len(qs) == 0 {
		return "true"
	}
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = "(" + renderExpr(q.Expr, rn) + ") >= 0"
	}
	return strings.Join(parts, " && ")
}

// renderInt64Array renders a fixed-size int64 array literal.
func renderInt64Array(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// renderIntArray renders a fixed-size int array literal.
func renderIntArray(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
