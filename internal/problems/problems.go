// Package problems contains the built-in dynamic programming problems
// used throughout the paper: the 2- and 3-arm Bernoulli bandits, the
// 2-arm bandit with delayed observations (Section VI), and the sequence
// problems its introduction motivates — pairwise edit distance, multiple
// sequence alignment of three sequences, and the longest common
// subsequence of three strings — plus the nonserial/variable-distance
// template exercisers: matrix-chain multiplication, optimal binary
// search trees, and the bounded knapsack with parametric weights.
//
// Each problem bundles the generator spec, the runtime kernel, and an
// independent straightforward serial solver used as the correctness
// reference by the tests and benchmarks.
package problems

import (
	"fmt"

	"dpgen/internal/engine"
	"dpgen/internal/spec"
)

// Problem is a ready-to-run dynamic programming problem.
type Problem struct {
	// Spec is the generator input description.
	Spec *spec.Spec
	// Kernel is the center-loop body for the in-process runtime.
	Kernel engine.Kernel
	// Serial computes the goal value with an independent nested-loop
	// solver; the reference for correctness checks.
	Serial func(params []int64) float64
	// DefaultParams are sensible parameter values for examples and
	// benches.
	DefaultParams []int64
	// UseMax marks problems whose answer is the maximum over the whole
	// space (engine Result.Max) rather than the goal-location value —
	// e.g. local sequence alignment.
	UseMax bool
	// FixedParams marks problems whose kernel closes over concrete
	// inputs sized by DefaultParams (the sequence problems bake their
	// strings into the closure), so the parameters are not free: running
	// with other values reads out of the baked-in inputs' bounds.
	// Callers accepting untrusted parameter values (dpserve) must reject
	// anything but DefaultParams for these.
	FixedParams bool
}

// Registry returns the built-in problems at small default sizes, keyed
// by name. Sequence problems use deterministic seeded inputs.
func Registry() map[string]*Problem {
	return map[string]*Problem{
		"bandit2":      Bandit2(),
		"bandit3":      Bandit3(),
		"bandit2delay": Bandit2Delay(),
		"editdist":     EditDistanceSeeded(1, 2),
		"lcs2":         LCS2Seeded(5),
		"lcs3":         LCS3Seeded(2),
		"msa3":         MSA3Seeded(3),
		"msa4":         MSA4Seeded(4),
		"localalign":   SmithWatermanSeeded(6),
		"mcm":          MCM(),
		"obst":         OBST(),
		"knap":         Knapsack(),
	}
}

// Names lists the registry keys in a stable order.
func Names() []string {
	return []string{"bandit2", "bandit3", "bandit2delay", "editdist", "lcs2", "lcs3", "msa3", "msa4", "localalign",
		"mcm", "obst", "knap"}
}

// Get returns a registry problem or an error.
func Get(name string) (*Problem, error) {
	p, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("problems: unknown problem %q (have %v)", name, Names())
	}
	return p, nil
}
