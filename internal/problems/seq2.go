package problems

import (
	"fmt"
	"math"

	"dpgen/internal/engine"
	"dpgen/internal/spec"
	"dpgen/internal/workload"
)

// SmithWaterman is local pairwise alignment in suffix form: H(i,j) is
// the best score of a local alignment *starting* at (i,j), clamped at
// zero; the problem's answer is the maximum over all locations (the
// engine reports it in Result.Max). score gives the (positive-for-match)
// substitution score and gap the (positive) gap penalty.
func SmithWaterman(a, b string, score func(x, y byte) float64, gap float64) *Problem {
	sp := spec.MustNew("smithwaterman", []string{"L1", "L2"}, []string{"i", "j"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.AddDep("sub", 1, 1)
	sp.AddDep("del", 1, 0)
	sp.AddDep("ins", 0, 1)
	sp.TileWidths = []int64{32, 32}
	sp.LBDims = []string{"i"}

	kernel := func(c *engine.Ctx) {
		i, j := c.X[0], c.X[1]
		best := 0.0 // a local alignment may start (end) anywhere
		if c.DepValid[0] {
			if v := c.V[c.DepLoc[0]] + score(a[i], b[j]); v > best {
				best = v
			}
		}
		if c.DepValid[1] {
			if v := c.V[c.DepLoc[1]] - gap; v > best {
				best = v
			}
		}
		if c.DepValid[2] {
			if v := c.V[c.DepLoc[2]] - gap; v > best {
				best = v
			}
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		L1, L2 := params[0], params[1]
		tab := make([][]float64, L1+1)
		for i := range tab {
			tab[i] = make([]float64, L2+1)
		}
		max := math.Inf(-1)
		for i := L1; i >= 0; i-- {
			for j := L2; j >= 0; j-- {
				best := 0.0
				if i < L1 && j < L2 {
					if v := tab[i+1][j+1] + score(a[i], b[j]); v > best {
						best = v
					}
				}
				if i < L1 {
					if v := tab[i+1][j] - gap; v > best {
						best = v
					}
				}
				if j < L2 {
					if v := tab[i][j+1] - gap; v > best {
						best = v
					}
				}
				tab[i][j] = best
				if best > max {
					max = best
				}
			}
		}
		return max
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, UseMax: true, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b))},
	}
}

// ScoreMatch21 is the classic +2 match / -1 mismatch local alignment
// scoring.
func ScoreMatch21(x, y byte) float64 {
	if x == y {
		return 2
	}
	return -1
}

// SmithWatermanSeeded builds SmithWaterman on deterministic DNA with a
// shared planted motif so the local alignment has something to find;
// generator source is attached (the generated program's answer is its
// printed "max").
func SmithWatermanSeeded(seed uint64) *Problem {
	motif := workload.DNA(25, seed+100)
	a := workload.DNA(80, seed) + motif + workload.DNA(75, seed+1)
	b := workload.DNA(50, seed+2) + motif + workload.DNA(90, seed+3)
	p := SmithWaterman(a, b, ScoreMatch21, 2)
	p.Spec.GlobalCode = dnaGlobals(
		fmt.Sprintf("var dpMotif = dpDNA(25, %d)", seed+100),
		fmt.Sprintf("var seqA = dpDNA(80, %d) + dpMotif + dpDNA(75, %d)", seed, seed+1),
		fmt.Sprintf("var seqB = dpDNA(50, %d) + dpMotif + dpDNA(90, %d)", seed+2, seed+3))
	p.Spec.KernelCode = swKernelText
	return p
}

// LCS2 is the longest common subsequence of two strings — the pairwise
// DNA matching problem of the paper's introduction.
func LCS2(a, b string) *Problem {
	sp := spec.MustNew("lcs2", []string{"L1", "L2"}, []string{"i", "j"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.AddDep("di", 1, 0)
	sp.AddDep("dj", 0, 1)
	sp.AddDep("diag", 1, 1)
	sp.TileWidths = []int64{32, 32}
	sp.LBDims = []string{"i"}

	kernel := func(c *engine.Ctx) {
		i, j := c.X[0], c.X[1]
		if c.DepValid[2] && a[i] == b[j] {
			c.V[c.Loc] = 1 + c.V[c.DepLoc[2]]
			return
		}
		var best float64
		if c.DepValid[0] && c.V[c.DepLoc[0]] > best {
			best = c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] && c.V[c.DepLoc[1]] > best {
			best = c.V[c.DepLoc[1]]
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		L1, L2 := params[0], params[1]
		tab := make([][]float64, L1+1)
		for i := range tab {
			tab[i] = make([]float64, L2+1)
		}
		for i := L1 - 1; i >= 0; i-- {
			for j := L2 - 1; j >= 0; j-- {
				if a[i] == b[j] {
					tab[i][j] = 1 + tab[i+1][j+1]
					continue
				}
				tab[i][j] = tab[i+1][j]
				if tab[i][j+1] > tab[i][j] {
					tab[i][j] = tab[i][j+1]
				}
			}
		}
		return tab[0][0]
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b))},
	}
}

// LCS2Seeded builds LCS2 on deterministic DNA inputs, with generator
// source attached.
func LCS2Seeded(seed uint64) *Problem {
	p := LCS2(workload.DNA(300, seed), workload.DNA(280, seed+1))
	p.Spec.GlobalCode = dnaGlobals(
		fmt.Sprintf("var seqA = dpDNA(300, %d)", seed),
		fmt.Sprintf("var seqB = dpDNA(280, %d)", seed+1))
	p.Spec.KernelCode = lcs2KernelText
	return p
}

// msa4Moves are the fifteen alignment moves of 4-sequence MSA.
var msa4Moves = func() [][4]int64 {
	var out [][4]int64
	for m := 1; m < 16; m++ {
		out = append(out, [4]int64{int64(m >> 3 & 1), int64(m >> 2 & 1), int64(m >> 1 & 1), int64(m & 1)})
	}
	return out
}()

// MSA4 is exact 4-sequence multiple alignment with sum-of-pairs scoring
// — the 4-sequence problem the paper cites FPGA work for (reference
// [5]); here it is an ordinary 4-dimensional spec.
func MSA4(a, b, c, d string, sub func(x, y byte) float64, gap float64) *Problem {
	sp := spec.MustNew("msa4", []string{"L1", "L2", "L3", "L4"}, []string{"i", "j", "k", "l"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.MustConstrain("0 <= k <= L3")
	sp.MustConstrain("0 <= l <= L4")
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "m", "n", "o", "p", "q", "r", "s"}
	for m, mv := range msa4Moves {
		sp.AddDep("mv"+names[m], mv[0], mv[1], mv[2], mv[3])
	}
	sp.TileWidths = []int64{6, 6, 6, 6}
	sp.LBDims = []string{"i", "j"}

	seqs := [4]string{a, b, c, d}
	colCost := func(x [4]int64, mv [4]int64) float64 {
		var cost float64
		for p := 0; p < 4; p++ {
			for q := p + 1; q < 4; q++ {
				switch {
				case mv[p] == 1 && mv[q] == 1:
					cost += sub(seqs[p][x[p]], seqs[q][x[q]])
				case mv[p]+mv[q] == 1:
					cost += gap
				}
			}
		}
		return cost
	}

	kernel := func(cx *engine.Ctx) {
		x := [4]int64{cx.X[0], cx.X[1], cx.X[2], cx.X[3]}
		best := math.Inf(1)
		for m := range msa4Moves {
			if !cx.DepValid[m] {
				continue
			}
			if v := cx.V[cx.DepLoc[m]] + colCost(x, msa4Moves[m]); v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		cx.V[cx.Loc] = best
	}

	serial := func(params []int64) float64 {
		L := [4]int64{params[0], params[1], params[2], params[3]}
		stride := [4]int64{}
		size := int64(1)
		for p := 3; p >= 0; p-- {
			stride[p] = size
			size *= L[p] + 1
		}
		tab := make([]float64, size)
		idx := func(x [4]int64) int64 {
			return x[0]*stride[0] + x[1]*stride[1] + x[2]*stride[2] + x[3]*stride[3]
		}
		var x [4]int64
		for x[0] = L[0]; x[0] >= 0; x[0]-- {
			for x[1] = L[1]; x[1] >= 0; x[1]-- {
				for x[2] = L[2]; x[2] >= 0; x[2]-- {
					for x[3] = L[3]; x[3] >= 0; x[3]-- {
						best := math.Inf(1)
						for m := range msa4Moves {
							mv := msa4Moves[m]
							nx := [4]int64{x[0] + mv[0], x[1] + mv[1], x[2] + mv[2], x[3] + mv[3]}
							if nx[0] > L[0] || nx[1] > L[1] || nx[2] > L[2] || nx[3] > L[3] {
								continue
							}
							if v := tab[idx(nx)] + colCost(x, mv); v < best {
								best = v
							}
						}
						if math.IsInf(best, 1) {
							best = 0
						}
						tab[idx(x)] = best
					}
				}
			}
		}
		return tab[0]
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b)), int64(len(c)), int64(len(d))},
	}
}

// MSA4Seeded builds MSA4 on deterministic DNA inputs, with generator
// source attached.
func MSA4Seeded(seed uint64) *Problem {
	p := MSA4(workload.DNA(14, seed), workload.DNA(13, seed+1),
		workload.DNA(12, seed+2), workload.DNA(11, seed+3),
		workload.SubUnit, 1)
	p.Spec.GlobalCode = dnaGlobals(
		fmt.Sprintf("var seqA = dpDNA(14, %d)", seed),
		fmt.Sprintf("var seqB = dpDNA(13, %d)", seed+1),
		fmt.Sprintf("var seqC = dpDNA(12, %d)", seed+2),
		fmt.Sprintf("var seqD = dpDNA(11, %d)", seed+3))
	names4 := []string{"a", "b", "c", "d", "e", "f", "g", "h", "m", "n", "o", "p", "q", "r", "s"}
	moves := make([][]int64, len(msa4Moves))
	depNames := make([]string, len(msa4Moves))
	for m := range msa4Moves {
		moves[m] = []int64{msa4Moves[m][0], msa4Moves[m][1], msa4Moves[m][2], msa4Moves[m][3]}
		depNames[m] = "mv" + names4[m]
	}
	p.Spec.KernelCode = msaKernelText(moves, depNames,
		[]string{"seqA", "seqB", "seqC", "seqD"}, []string{"i", "j", "k", "l"})
	return p
}
