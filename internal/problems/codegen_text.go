package problems

import (
	"fmt"
	"strings"
)

// This file attaches generator-input source (global declarations and
// center-loop code) to the seeded problem constructors, so every
// built-in can be fed to cmd/dpgen and emitted as a standalone program.
// The embedded LCG reproduces workload.DNA byte-for-byte, keeping
// generated programs on identical inputs to the library problems.

// dnaGlobals emits the deterministic sequence generator plus the given
// sequence variable declarations and the unit substitution function.
func dnaGlobals(decls ...string) string {
	var b strings.Builder
	b.WriteString(`// Deterministic inputs: the same LCG as dpgen's workload package.
func dpDNA(n int, seed uint64) string {
	s := seed
	b := make([]byte, n)
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = "ACGT"[(s>>33)%4]
	}
	return string(b)
}

// dpSub is the unit-cost substitution function (0 match, 1 mismatch).
func dpSub(a, b byte) float64 {
	if a == b {
		return 0
	}
	return 1
}

var _ = dpSub // not every kernel scores substitutions
`)
	for _, d := range decls {
		b.WriteString("\n" + d)
	}
	return b.String()
}

// lcs3KernelText is the center-loop code of the 3-string LCS.
const lcs3KernelText = `if is_valid_diag && seqA[i] == seqB[j] && seqA[i] == seqC[k] {
	V[loc] = 1 + V[loc_diag]
} else {
	best := 0.0
	if is_valid_di && V[loc_di] > best {
		best = V[loc_di]
	}
	if is_valid_dj && V[loc_dj] > best {
		best = V[loc_dj]
	}
	if is_valid_dk && V[loc_dk] > best {
		best = V[loc_dk]
	}
	V[loc] = best
}`

// lcs2KernelText is the pairwise LCS center loop.
const lcs2KernelText = `if is_valid_diag && seqA[i] == seqB[j] {
	V[loc] = 1 + V[loc_diag]
} else {
	best := 0.0
	if is_valid_di && V[loc_di] > best {
		best = V[loc_di]
	}
	if is_valid_dj && V[loc_dj] > best {
		best = V[loc_dj]
	}
	V[loc] = best
}`

// swKernelText is Smith-Waterman with +2/-1 scoring and gap penalty 2;
// the program's answer is its printed "max", not the goal value.
const swKernelText = `best := 0.0
if is_valid_sub {
	s := -1.0
	if seqA[i] == seqB[j] {
		s = 2
	}
	if v := V[loc_sub] + s; v > best {
		best = v
	}
}
if is_valid_del {
	if v := V[loc_del] - 2; v > best {
		best = v
	}
}
if is_valid_ins {
	if v := V[loc_ins] - 2; v > best {
		best = v
	}
}
V[loc] = best`

// bandit2DelayKernelText resolves pending observations in arm order
// before choosing the next pull (see Bandit2Delay).
const bandit2DelayKernelText = `switch {
case is_valid_succ1:
	p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
	V[loc] = p1*(1+V[loc_succ1]) + (1-p1)*V[loc_fail1]
case is_valid_succ2:
	p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
	V[loc] = p2*(1+V[loc_succ2]) + (1-p2)*V[loc_fail2]
case is_valid_pull1:
	v := V[loc_pull1]
	if V[loc_pull2] > v {
		v = V[loc_pull2]
	}
	V[loc] = v
default:
	V[loc] = 0
}`

// msaKernelText builds the sum-of-pairs MSA center loop for the given
// move set (unit substitution, gap 1). seqNames and idxNames are the
// per-dimension sequence variables and loop variables; depNames the
// dependence names, aligned with moves.
func msaKernelText(moves [][]int64, depNames, seqNames, idxNames []string) string {
	var b strings.Builder
	b.WriteString("best := math.Inf(1)\n")
	for m, mv := range moves {
		var gapConst int
		var subs []string
		for p := 0; p < len(mv); p++ {
			for q := p + 1; q < len(mv); q++ {
				switch {
				case mv[p] == 1 && mv[q] == 1:
					subs = append(subs, fmt.Sprintf("dpSub(%s[%s], %s[%s])",
						seqNames[p], idxNames[p], seqNames[q], idxNames[q]))
				case mv[p]+mv[q] == 1:
					gapConst++
				}
			}
		}
		expr := fmt.Sprintf("V[loc_%s]", depNames[m])
		if gapConst > 0 {
			expr += fmt.Sprintf(" + %d", gapConst)
		}
		for _, s := range subs {
			expr += " + " + s
		}
		fmt.Fprintf(&b, `if is_valid_%s {
	if v := %s; v < best {
		best = v
	}
}
`, depNames[m], expr)
	}
	b.WriteString(`if math.IsInf(best, 1) {
	best = 0
}
V[loc] = best`)
	return b.String()
}
