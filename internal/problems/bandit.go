package problems

import (
	"dpgen/internal/engine"
	"dpgen/internal/spec"
)

// Bandit2 is the paper's running example (Section II, Figure 1): the
// 2-arm Bernoulli bandit with uniform priors. V(s1,f1,s2,f2) is the
// expected number of future successes over the remaining
// N - s1 - f1 - s2 - f2 trials under optimal play; the program reports
// V(0), the value of the whole N-trial experiment.
func Bandit2() *Problem {
	sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{6, 6, 6, 6}
	sp.LBDims = []string{"s1", "f1"}
	sp.KernelCode = `p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
v1 := 0.0
v2 := 0.0
if is_valid_r1 {
	v1 = p1*(1+V[loc_r1]) + (1-p1)*V[loc_r2]
	v2 = p2*(1+V[loc_r3]) + (1-p2)*V[loc_r4]
}
if v1 > v2 {
	V[loc] = v1
} else {
	V[loc] = v2
}`

	kernel := func(c *engine.Ctx) {
		if !c.DepValid[0] { // the four deps share the single sum constraint
			c.V[c.Loc] = 0
			return
		}
		s1, f1 := float64(c.X[0]), float64(c.X[1])
		s2, f2 := float64(c.X[2]), float64(c.X[3])
		p1 := (s1 + 1) / (s1 + f1 + 2)
		p2 := (s2 + 1) / (s2 + f2 + 2)
		v1 := p1*(1+c.V[c.DepLoc[0]]) + (1-p1)*c.V[c.DepLoc[1]]
		v2 := p2*(1+c.V[c.DepLoc[2]]) + (1-p2)*c.V[c.DepLoc[3]]
		if v1 > v2 {
			c.V[c.Loc] = v1
		} else {
			c.V[c.Loc] = v2
		}
	}

	serial := func(params []int64) float64 {
		N := params[0]
		size := N + 2
		idx := func(s1, f1, s2, f2 int64) int64 {
			return ((s1*size+f1)*size+s2)*size + f2
		}
		tab := make([]float64, size*size*size*size)
		for s1 := N; s1 >= 0; s1-- {
			for f1 := N - s1; f1 >= 0; f1-- {
				for s2 := N - s1 - f1; s2 >= 0; s2-- {
					for f2 := N - s1 - f1 - s2; f2 >= 0; f2-- {
						if s1+f1+s2+f2 == N {
							continue // zero base case
						}
						p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
						p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
						v1 := p1*(1+tab[idx(s1+1, f1, s2, f2)]) + (1-p1)*tab[idx(s1, f1+1, s2, f2)]
						v2 := p2*(1+tab[idx(s1, f1, s2+1, f2)]) + (1-p2)*tab[idx(s1, f1, s2, f2+1)]
						if v1 > v2 {
							tab[idx(s1, f1, s2, f2)] = v1
						} else {
							tab[idx(s1, f1, s2, f2)] = v2
						}
					}
				}
			}
		}
		return tab[0]
	}

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{40}}
}

// Bandit3 is the 3-arm Bernoulli bandit (the problem hand-parallelized
// in the paper's reference [3]): a 6-dimensional space over
// (s1,f1,s2,f2,s3,f3) with sum at most N.
func Bandit3() *Problem {
	vars := []string{"s1", "f1", "s2", "f2", "s3", "f3"}
	sp := spec.MustNew("bandit3", []string{"N"}, vars)
	sp.MustConstrain("s1 + f1 + s2 + f2 + s3 + f3 <= N")
	for _, v := range vars {
		sp.MustConstrain(v + " >= 0")
	}
	for j := range vars {
		vec := make([]int64, 6)
		vec[j] = 1
		sp.AddDep("r"+vars[j], vec...)
	}
	sp.TileWidths = []int64{4, 4, 4, 4, 4, 4}
	sp.LBDims = []string{"s1", "f1"}
	sp.KernelCode = `best := 0.0
if is_valid_rs1 {
	p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
	p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
	p3 := (float64(s3) + 1) / (float64(s3) + float64(f3) + 2)
	v1 := p1*(1+V[loc_rs1]) + (1-p1)*V[loc_rf1]
	v2 := p2*(1+V[loc_rs2]) + (1-p2)*V[loc_rf2]
	v3 := p3*(1+V[loc_rs3]) + (1-p3)*V[loc_rf3]
	best = v1
	if v2 > best {
		best = v2
	}
	if v3 > best {
		best = v3
	}
}
V[loc] = best`

	kernel := func(c *engine.Ctx) {
		if !c.DepValid[0] {
			c.V[c.Loc] = 0
			return
		}
		var best float64
		for arm := 0; arm < 3; arm++ {
			s := float64(c.X[2*arm])
			f := float64(c.X[2*arm+1])
			p := (s + 1) / (s + f + 2)
			v := p*(1+c.V[c.DepLoc[2*arm]]) + (1-p)*c.V[c.DepLoc[2*arm+1]]
			if v > best {
				best = v
			}
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		N := params[0]
		type key [6]int64
		tab := map[key]float64{}
		// Iterate by decreasing remaining budget so dependencies exist.
		var rec func(k key) float64
		rec = func(k key) float64 {
			if v, ok := tab[k]; ok {
				return v
			}
			var sum int64
			for _, v := range k {
				sum += v
			}
			if sum >= N {
				tab[k] = 0
				return 0
			}
			var best float64
			for arm := 0; arm < 3; arm++ {
				s, f := float64(k[2*arm]), float64(k[2*arm+1])
				p := (s + 1) / (s + f + 2)
				ks := k
				ks[2*arm]++
				kf := k
				kf[2*arm+1]++
				v := p*(1+rec(ks)) + (1-p)*rec(kf)
				if v > best {
					best = v
				}
			}
			tab[k] = best
			return best
		}
		return rec(key{})
	}

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{20}}
}

// Bandit2Delay is the 2-arm bandit with delayed observations from the
// paper's evaluation (Section VI): a 6-dimensional problem over
// (u1,s1,f1,u2,s2,f2) where u_i counts pulls of arm i and s_i/f_i the
// observed outcomes, with s_i + f_i <= u_i — incrementing a result
// dimension requires the arm-pulled dimension to have been incremented
// first. The paper does not print the full recurrence; the model used
// here resolves pending observations in arm order before the next pull
// is chosen, which preserves the iteration space and the six-template
// dependence structure that drive performance.
func Bandit2Delay() *Problem {
	vars := []string{"u1", "s1", "f1", "u2", "s2", "f2"}
	sp := spec.MustNew("bandit2delay", []string{"N"}, vars)
	sp.MustConstrain("u1 + u2 <= N")
	sp.MustConstrain("s1 + f1 <= u1")
	sp.MustConstrain("s2 + f2 <= u2")
	for _, v := range vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("pull1", 1, 0, 0, 0, 0, 0)
	sp.AddDep("succ1", 0, 1, 0, 0, 0, 0)
	sp.AddDep("fail1", 0, 0, 1, 0, 0, 0)
	sp.AddDep("pull2", 0, 0, 0, 1, 0, 0)
	sp.AddDep("succ2", 0, 0, 0, 0, 1, 0)
	sp.AddDep("fail2", 0, 0, 0, 0, 0, 1)
	sp.TileWidths = []int64{4, 4, 4, 4, 4, 4}
	sp.LBDims = []string{"u1", "u2"}
	sp.KernelCode = bandit2DelayKernelText

	kernel := func(c *engine.Ctx) {
		// Pending observations resolve first, arm 1 before arm 2.
		if c.DepValid[1] { // s1+1 valid <=> s1+f1 < u1
			s1, f1 := float64(c.X[1]), float64(c.X[2])
			p1 := (s1 + 1) / (s1 + f1 + 2)
			c.V[c.Loc] = p1*(1+c.V[c.DepLoc[1]]) + (1-p1)*c.V[c.DepLoc[2]]
			return
		}
		if c.DepValid[4] {
			s2, f2 := float64(c.X[4]), float64(c.X[5])
			p2 := (s2 + 1) / (s2 + f2 + 2)
			c.V[c.Loc] = p2*(1+c.V[c.DepLoc[4]]) + (1-p2)*c.V[c.DepLoc[5]]
			return
		}
		if c.DepValid[0] && c.DepValid[3] { // u1+u2 < N
			v1 := c.V[c.DepLoc[0]]
			v2 := c.V[c.DepLoc[3]]
			if v1 > v2 {
				c.V[c.Loc] = v1
			} else {
				c.V[c.Loc] = v2
			}
			return
		}
		c.V[c.Loc] = 0
	}

	serial := func(params []int64) float64 {
		N := params[0]
		type key [6]int64
		tab := map[key]float64{}
		var rec func(k key) float64
		rec = func(k key) float64 {
			if v, ok := tab[k]; ok {
				return v
			}
			u1, s1, f1, u2, s2, f2 := k[0], k[1], k[2], k[3], k[4], k[5]
			var v float64
			switch {
			case s1+f1 < u1:
				p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
				ks, kf := k, k
				ks[1]++
				kf[2]++
				v = p1*(1+rec(ks)) + (1-p1)*rec(kf)
			case s2+f2 < u2:
				p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
				ks, kf := k, k
				ks[4]++
				kf[5]++
				v = p2*(1+rec(ks)) + (1-p2)*rec(kf)
			case u1+u2 < N:
				k1, k2 := k, k
				k1[0]++
				k2[3]++
				v1, v2 := rec(k1), rec(k2)
				v = v1
				if v2 > v1 {
					v = v2
				}
			}
			tab[k] = v
			return v
		}
		return rec(key{})
	}

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{16}}
}
