package problems

import (
	"math"

	"dpgen/internal/engine"
	"dpgen/internal/spec"
)

// This file holds the built-in problems exercising the extended
// dependence templates: matrix-chain multiplication and optimal binary
// search trees (range templates — the classic nonserial polyadic DPs,
// where a cell depends on an interval of predecessors whose length
// varies along the wavefront) and bounded knapsack (a range template
// whose step distance is a run parameter).
//
// Matrix chain and optimal BST share one coordinate system: with
// matrices/keys indexed 0..N-1, the cell (m, i) stands for the interval
// [i, i+l] with l = N-1-m, so the origin (0, 0) is the full problem and
// the diagonal m = N-1 holds the length-zero base cases. Both
// subinterval families become two range templates:
//
//	left : base (1, 0), step (1, 0), count N-m-1
//	       footprint t covers the prefix interval [i, i+l-1-t]
//	right: base (1, 1), step (1, 1), count N-m-1
//	       footprint t covers the suffix interval [i+1+t, i+l]
//
// Every footprint cell stays inside the triangle, so the runtime's
// prefix clamp never fires; the count alone shapes the interval.

// mcmDim is the deterministic matrix-dimension workload: multiplying
// A_a (dim p_a x p_{a+1}) costs p_i*p_{k+1}*p_{j+1} scalar products.
func mcmDim(a int64) float64 { return float64((a*7)%19 + 1) }

// MCM is matrix-chain multiplication: the minimal scalar-multiplication
// count to parenthesize the product A_0 * ... * A_{N-1}. V(m, i) is the
// optimal cost of the chain A_i..A_{i+l}, l = N-1-m; the goal (0, 0)
// holds the full chain's cost.
func MCM() *Problem {
	sp := spec.MustNew("mcm", []string{"N"}, []string{"m", "i"})
	sp.MustConstrain("0 <= i")
	sp.MustConstrain("i <= m")
	sp.MustConstrain("m <= N - 1")
	sp.Bound("N", 1, 24)
	sp.MustAddDepSpec("left", "1, 0", "1, 0", "N - m - 1")
	sp.MustAddDepSpec("right", "1, 1", "1, 1", "N - m - 1")
	sp.TileWidths = []int64{8, 8}
	sp.LBDims = []string{"m"}

	kernel := func(c *engine.Ctx) {
		l := c.DepLen[0]
		if l == 0 {
			c.V[c.Loc] = 0 // single matrix
			return
		}
		i := c.X[1]
		s1, s2 := c.DepStride[0], c.DepStride[1]
		best := math.Inf(1)
		for k := int64(0); k < l; k++ {
			// Split after A_{i+k}: left interval has length k (footprint
			// step l-1-k), right starts at i+k+1 (footprint step k).
			v := c.V[c.DepLoc[0]+(l-1-k)*s1] + c.V[c.DepLoc[1]+k*s2] +
				mcmDim(i)*mcmDim(i+k+1)*mcmDim(i+l+1)
			if v < best {
				best = v
			}
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		N := params[0]
		// cost[i][j]: optimal cost of A_i..A_j.
		cost := make([][]float64, N)
		for i := range cost {
			cost[i] = make([]float64, N)
		}
		for l := int64(1); l < N; l++ {
			for i := int64(0); i+l < N; i++ {
				j := i + l
				best := math.Inf(1)
				for k := i; k < j; k++ {
					v := cost[i][k] + cost[k+1][j] + mcmDim(i)*mcmDim(k+1)*mcmDim(j+1)
					if v < best {
						best = v
					}
				}
				cost[i][j] = best
			}
		}
		return cost[0][N-1]
	}

	sp.GlobalCode = `// Deterministic matrix dimensions, matching dpgen's built-in workload.
func dpDim(a int64) float64 { return float64((a*7)%19 + 1) }`
	sp.KernelCode = `l := len_left
if l == 0 {
	V[loc] = 0
} else {
	best := math.Inf(1)
	for k := int64(0); k < l; k++ {
		v := V[loc_left+(l-1-k)*stride_left] + V[loc_right+k*stride_right] +
			dpDim(i)*dpDim(i+k+1)*dpDim(i+l+1)
		if v < best {
			best = v
		}
	}
	V[loc] = best
}
_ = is_valid_left
_ = is_valid_right`

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{20}}
}

// obstFreq is the deterministic key access-frequency workload.
func obstFreq(a int64) float64 { return float64((a*13)%7 + 1) }

// OBST is the optimal binary search tree: keys 0..N-1 with access
// weights obstFreq, minimizing the weighted path length
// sum_a freq(a) * depth(a) (root depth 1). V(m, i) is the optimal cost
// of the key interval [i, i+l], l = N-1-m; the goal (0, 0) holds the
// full tree's cost.
func OBST() *Problem {
	sp := spec.MustNew("obst", []string{"N"}, []string{"m", "i"})
	sp.MustConstrain("0 <= i")
	sp.MustConstrain("i <= m")
	sp.MustConstrain("m <= N - 1")
	sp.Bound("N", 1, 24)
	sp.MustAddDepSpec("left", "1, 0", "1, 0", "N - m - 1")
	sp.MustAddDepSpec("right", "1, 1", "1, 1", "N - m - 1")
	sp.TileWidths = []int64{8, 8}
	sp.LBDims = []string{"m"}

	kernel := func(c *engine.Ctx) {
		l := c.DepLen[0]
		i := c.X[1]
		if l == 0 {
			c.V[c.Loc] = obstFreq(i) // single key as root
			return
		}
		var w float64
		for a := i; a <= i+l; a++ {
			w += obstFreq(a)
		}
		s1, s2 := c.DepStride[0], c.DepStride[1]
		best := math.Inf(1)
		for k := int64(0); k <= l; k++ {
			// Root at key i+k: left subtree [i, i+k-1] (footprint step
			// l-k of "left"), right subtree [i+k+1, i+l] (footprint step
			// k of "right"); empty subtrees cost 0.
			var v float64
			if k > 0 {
				v += c.V[c.DepLoc[0]+(l-k)*s1]
			}
			if k < l {
				v += c.V[c.DepLoc[1]+k*s2]
			}
			if v < best {
				best = v
			}
		}
		c.V[c.Loc] = best + w
	}

	serial := func(params []int64) float64 {
		N := params[0]
		cost := make([][]float64, N)
		for i := range cost {
			cost[i] = make([]float64, N)
			cost[i][i] = obstFreq(int64(i))
		}
		for l := int64(1); l < N; l++ {
			for i := int64(0); i+l < N; i++ {
				j := i + l
				var w float64
				for a := i; a <= j; a++ {
					w += obstFreq(a)
				}
				best := math.Inf(1)
				for k := i; k <= j; k++ {
					var v float64
					if k > i {
						v += cost[i][k-1]
					}
					if k < j {
						v += cost[k+1][j]
					}
					if v < best {
						best = v
					}
				}
				cost[i][j] = best + w
			}
		}
		return cost[0][N-1]
	}

	sp.GlobalCode = `// Deterministic key access frequencies, matching dpgen's built-in workload.
func dpFreq(a int64) float64 { return float64((a*13)%7 + 1) }`
	sp.KernelCode = `l := len_left
if l == 0 {
	V[loc] = dpFreq(i)
} else {
	w := 0.0
	for a := i; a <= i+l; a++ {
		w += dpFreq(a)
	}
	best := math.Inf(1)
	for k := int64(0); k <= l; k++ {
		v := 0.0
		if k > 0 {
			v += V[loc_left+(l-k)*stride_left]
		}
		if k < l {
			v += V[loc_right+k*stride_right]
		}
		if v < best {
			best = v
		}
	}
	V[loc] = best + w
}
_ = is_valid_left
_ = is_valid_right`

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{18}}
}

// knapMaxCopies is the per-item copy bound of the bounded knapsack
// builtin (the range template's count is knapMaxCopies+1 choices).
const knapMaxCopies = 3

// knapVal is the deterministic per-item value workload; every copy of
// item a weighs W (a run parameter) and is worth knapVal(a).
func knapVal(a int64) float64 { return float64((a*5)%11 + 1) }

// Knapsack is the bounded knapsack with uniform parametric weights:
// N item kinds, at most knapMaxCopies copies each, every copy weighing
// W, capacity C. V(a, u) is the best value attainable from item kinds
// a.. with u units of capacity already spent; the goal (0, 0) holds the
// full problem's optimum. The single dependence is a range template
// whose step distance in the capacity dimension is the parameter W —
// the variable-distance case — and whose usable length at (a, u) is cut
// down by the capacity constraint's prefix clamp to exactly the
// feasible copy counts.
func Knapsack() *Problem {
	sp := spec.MustNew("knap", []string{"N", "C", "W"}, []string{"a", "u"})
	sp.MustConstrain("0 <= a <= N - 1")
	sp.MustConstrain("0 <= u <= C")
	sp.Bound("W", 1, 4)
	sp.MustAddDepSpec("take", "1, 0", "0, W", "4")
	sp.TileWidths = []int64{8, 8}
	sp.LBDims = []string{"a"}

	kernel := func(c *engine.Ctx) {
		a, u := c.X[0], c.X[1]
		n := c.DepLen[0]
		if n == 0 {
			// Last item kind (the footprint row a+1 is out of space):
			// greedily count the feasible copies of item a.
			best := 0.0
			C, W := c.P[1], c.P[2]
			for k := int64(1); k <= knapMaxCopies && u+k*W <= C; k++ {
				if v := float64(k) * knapVal(a); v > best {
					best = v
				}
			}
			c.V[c.Loc] = best
			return
		}
		s := c.DepStride[0]
		var best float64
		for k := int64(0); k < n; k++ {
			if v := float64(k)*knapVal(a) + c.V[c.DepLoc[0]+k*s]; v > best {
				best = v
			}
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		N, C, W := params[0], params[1], params[2]
		cur := make([]float64, C+1)
		next := make([]float64, C+1)
		for a := N - 1; a >= 0; a-- {
			for u := int64(0); u <= C; u++ {
				var best float64
				for k := int64(0); k <= knapMaxCopies && u+k*W <= C; k++ {
					v := float64(k) * knapVal(a)
					if a < N-1 {
						v += next[u+k*W]
					}
					if v > best {
						best = v
					}
				}
				cur[u] = best
			}
			cur, next = next, cur
		}
		return next[0]
	}

	sp.GlobalCode = `// Deterministic item values, matching dpgen's built-in workload.
func dpVal(a int64) float64 { return float64((a*5)%11 + 1) }`
	sp.KernelCode = `n := len_take
if n == 0 {
	best := 0.0
	for k := int64(1); k <= 3 && u+k*W <= C; k++ {
		if v := float64(k) * dpVal(a); v > best {
			best = v
		}
	}
	V[loc] = best
} else {
	best := 0.0
	for k := int64(0); k < n; k++ {
		if v := float64(k)*dpVal(a) + V[loc_take+k*stride_take]; v > best {
			best = v
		}
	}
	V[loc] = best
}
_ = is_valid_take`

	return &Problem{Spec: sp, Kernel: kernel, Serial: serial, DefaultParams: []int64{10, 30, 3}}
}
