package problems

import (
	"testing"

	"dpgen/internal/engine"
	"dpgen/internal/tiling"
	"dpgen/internal/workload"
)

// runBoth executes a problem on the hybrid runtime and serially, and
// requires bit-identical results.
func runBoth(t *testing.T, p *Problem, params []int64, cfg engine.Config) {
	t.Helper()
	tl, err := tiling.New(p.Spec)
	if err != nil {
		t.Fatalf("%s: tiling: %v", p.Spec.Name, err)
	}
	res, err := engine.Run(tl, p.Kernel, params, cfg)
	if err != nil {
		t.Fatalf("%s: run: %v", p.Spec.Name, err)
	}
	got := res.Value
	if p.UseMax {
		got = res.Max
	}
	want := p.Serial(params)
	if got != want {
		t.Fatalf("%s params %v: engine %v != serial %v", p.Spec.Name, params, got, want)
	}
}

func TestBandit2MatchesSerial(t *testing.T) {
	p := Bandit2()
	for _, N := range []int64{0, 1, 5, 21} {
		runBoth(t, p, []int64{N}, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestBandit2KnownValues(t *testing.T) {
	// Hand-checkable: N=1 with uniform priors gives expected success
	// probability 1/2 on the first pull.
	p := Bandit2()
	if got := p.Serial([]int64{1}); got != 0.5 {
		t.Errorf("V(0) at N=1 = %v, want 0.5", got)
	}
	// The value is monotone in N and below N.
	prev := 0.0
	for N := int64(1); N <= 8; N++ {
		v := p.Serial([]int64{N})
		if v <= prev || v >= float64(N) {
			t.Errorf("N=%d: value %v not in (%v, %d)", N, v, prev, N)
		}
		prev = v
	}
}

func TestBandit3MatchesSerial(t *testing.T) {
	p := Bandit3()
	for _, N := range []int64{0, 2, 9} {
		runBoth(t, p, []int64{N}, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestBandit3BeatsBandit2(t *testing.T) {
	// Three arms cannot be worse than two (more options).
	N := []int64{10}
	if b3, b2 := Bandit3().Serial(N), Bandit2().Serial(N); b3 < b2 {
		t.Errorf("bandit3 value %v below bandit2 %v", b3, b2)
	}
}

func TestBandit2DelayMatchesSerial(t *testing.T) {
	p := Bandit2Delay()
	for _, N := range []int64{0, 2, 7} {
		runBoth(t, p, []int64{N}, engine.Config{Nodes: 3, Threads: 2})
	}
}

func TestBandit2DelayBelowUndelayed(t *testing.T) {
	// Delayed observations can only lose value relative to the immediate-
	// feedback bandit at the same horizon.
	N := []int64{8}
	if d, u := Bandit2Delay().Serial(N), Bandit2().Serial(N); d > u+1e-12 {
		t.Errorf("delayed value %v exceeds undelayed %v", d, u)
	}
}

func TestEditDistanceMatchesSerial(t *testing.T) {
	p := EditDistance("ACGTACGT", "AGTTCGT", workload.SubUnit, 1)
	runBoth(t, p, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
}

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACG", 3},
		{"ACGT", "ACGT", 0},
		{"KITTEN", "SITTING", 3},
		{"AC", "CA", 2}, // unit-cost substitution, no transposition
	}
	for _, c := range cases {
		p := EditDistance(c.a, c.b, workload.SubUnit, 1)
		if got := p.Serial(p.DefaultParams); got != c.want {
			t.Errorf("edit(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLCS3MatchesSerial(t *testing.T) {
	p := LCS3("ACGTGCA", "AGGTCA", "ACTTCA")
	runBoth(t, p, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
}

func TestLCS3KnownValues(t *testing.T) {
	cases := []struct {
		a, b, c string
		want    float64
	}{
		{"", "", "", 0},
		{"A", "A", "A", 1},
		{"ABC", "ABC", "ABC", 3},
		{"ABC", "BCA", "CAB", 1},
		{"ACGT", "TGCA", "GGCC", 1},
	}
	for _, c := range cases {
		p := LCS3(c.a, c.b, c.c)
		if got := p.Serial(p.DefaultParams); got != c.want {
			t.Errorf("lcs3(%q,%q,%q) = %v, want %v", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestMSA3MatchesSerial(t *testing.T) {
	p := MSA3("ACGTGC", "AGGTC", "ACTTC", workload.SubUnit, 1)
	runBoth(t, p, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
}

func TestMSA3KnownValues(t *testing.T) {
	// Identical sequences align at zero cost.
	p := MSA3("ACGT", "ACGT", "ACGT", workload.SubUnit, 1)
	if got := p.Serial(p.DefaultParams); got != 0 {
		t.Errorf("identical MSA cost = %v, want 0", got)
	}
	// One empty sequence: each of the other characters pays one gap to
	// the empty sequence... both pairs with the empty sequence pay.
	p = MSA3("AC", "AC", "", workload.SubUnit, 1)
	if got := p.Serial(p.DefaultParams); got != 4 {
		t.Errorf("MSA with empty seq = %v, want 4", got)
	}
}

func TestMSA3ConsistentWithPairwise(t *testing.T) {
	// Sum-of-pairs MSA cost is at least the sum of optimal pairwise
	// distances (classical lower bound).
	a, b, c := workload.DNA(12, 1), workload.DNA(11, 2), workload.DNA(10, 3)
	msa := MSA3(a, b, c, workload.SubUnit, 1)
	got := msa.Serial(msa.DefaultParams)
	pair := func(x, y string) float64 {
		p := EditDistance(x, y, workload.SubUnit, 1)
		return p.Serial(p.DefaultParams)
	}
	lower := pair(a, b) + pair(a, c) + pair(b, c)
	if got < lower-1e-9 {
		t.Errorf("MSA cost %v below pairwise lower bound %v", got, lower)
	}
}

func TestRegistryAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("registry problems at default sizes are not short")
	}
	for _, name := range Names() {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		params := p.DefaultParams
		// Shrink the heavy bandits for test time.
		if name == "bandit2" {
			params = []int64{18}
		}
		if name == "bandit3" || name == "bandit2delay" {
			params = []int64{8}
		}
		runBoth(t, p, params, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown problem should error")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	if workload.DNA(50, 7) != workload.DNA(50, 7) {
		t.Error("DNA not deterministic")
	}
	if workload.DNA(50, 7) == workload.DNA(50, 8) {
		t.Error("different seeds gave equal sequences")
	}
	for _, ch := range workload.DNA(200, 3) {
		switch ch {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("bad nucleotide %q", ch)
		}
	}
}

func TestSubMatrices(t *testing.T) {
	if workload.SubUnit('A', 'A') != 0 || workload.SubUnit('A', 'C') != 1 {
		t.Error("SubUnit wrong")
	}
	if workload.SubTransition('A', 'G') != 0.5 || workload.SubTransition('A', 'T') != 1 ||
		workload.SubTransition('C', 'C') != 0 {
		t.Error("SubTransition wrong")
	}
}

func TestSmithWatermanMatchesSerial(t *testing.T) {
	p := SmithWaterman("ACGTACGGTA", "GGTACGATT", ScoreMatch21, 2)
	tl, err := tiling.New(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(tl, p.Kernel, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Serial(p.DefaultParams); res.Max != want {
		t.Fatalf("engine max %v != serial %v", res.Max, want)
	}
}

func TestSmithWatermanFindsPlantedMotif(t *testing.T) {
	p := SmithWatermanSeeded(6)
	got := p.Serial(p.DefaultParams)
	// A planted 25-nt identical motif scores at least 2*25 minus noise
	// effects; anything big confirms local alignment found it.
	if got < 40 {
		t.Errorf("local alignment score %v; planted motif should score >= 40", got)
	}
}

func TestSmithWatermanKnown(t *testing.T) {
	// Identical strings: score = 2*len.
	p := SmithWaterman("ACGT", "ACGT", ScoreMatch21, 2)
	if got := p.Serial(p.DefaultParams); got != 8 {
		t.Errorf("identical local score %v, want 8", got)
	}
	// Disjoint alphabets: nothing aligns, score 0.
	p = SmithWaterman("AAAA", "TTTT", ScoreMatch21, 2)
	if got := p.Serial(p.DefaultParams); got != 0 {
		t.Errorf("disjoint local score %v, want 0", got)
	}
}

func TestLCS2MatchesSerial(t *testing.T) {
	p := LCS2("ACGTACGTGG", "CGTTACGG")
	runBoth(t, p, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
}

func TestLCS2Known(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0}, {"A", "A", 1}, {"ABCBDAB", "BDCABA", 4}, {"AGGTAB", "GXTXAYB", 4},
	}
	for _, c := range cases {
		p := LCS2(c.a, c.b)
		if got := p.Serial(p.DefaultParams); got != c.want {
			t.Errorf("lcs2(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLCS2ConsistentWithLCS3(t *testing.T) {
	// LCS of three strings is at most the LCS of any two.
	a, b, c := workload.DNA(20, 1), workload.DNA(18, 2), workload.DNA(16, 3)
	l3 := LCS3(a, b, c)
	l2 := LCS2(a, b)
	if l3.Serial(l3.DefaultParams) > l2.Serial(l2.DefaultParams) {
		t.Error("LCS3 exceeds LCS2 upper bound")
	}
}

func TestMSA4MatchesSerial(t *testing.T) {
	p := MSA4("ACGTG", "AGGT", "ACTT", "CGT", workload.SubUnit, 1)
	runBoth(t, p, p.DefaultParams, engine.Config{Nodes: 2, Threads: 2})
}

func TestMSA4Known(t *testing.T) {
	// Identical sequences align free.
	p := MSA4("ACG", "ACG", "ACG", "ACG", workload.SubUnit, 1)
	if got := p.Serial(p.DefaultParams); got != 0 {
		t.Errorf("identical MSA4 cost %v, want 0", got)
	}
}

func TestMSA4AtLeastMSA3(t *testing.T) {
	// Adding a fourth sequence cannot reduce the total sum-of-pairs cost
	// below the 3-sequence optimum over the shared pairs... a weaker but
	// always-true check: cost is at least the pairwise lower bound.
	a, b, c, d := workload.DNA(8, 1), workload.DNA(8, 2), workload.DNA(7, 3), workload.DNA(7, 4)
	m := MSA4(a, b, c, d, workload.SubUnit, 1)
	got := m.Serial(m.DefaultParams)
	var lower float64
	pairs := [][2]string{{a, b}, {a, c}, {a, d}, {b, c}, {b, d}, {c, d}}
	for _, pr := range pairs {
		e := EditDistance(pr[0], pr[1], workload.SubUnit, 1)
		lower += e.Serial(e.DefaultParams)
	}
	if got < lower-1e-9 {
		t.Errorf("MSA4 cost %v below pairwise bound %v", got, lower)
	}
}

func TestMCMMatchesSerial(t *testing.T) {
	p := MCM()
	for _, N := range []int64{1, 2, 3, 9, 20, 24} {
		runBoth(t, p, []int64{N}, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestMCMKnown(t *testing.T) {
	// Two matrices: one multiplication, p0*p1*p2 scalar products.
	p := MCM()
	want := mcmDim(0) * mcmDim(1) * mcmDim(2)
	if got := p.Serial([]int64{2}); got != want {
		t.Errorf("mcm N=2 = %v, want %v", got, want)
	}
	// One matrix: no multiplication.
	if got := p.Serial([]int64{1}); got != 0 {
		t.Errorf("mcm N=1 = %v, want 0", got)
	}
}

func TestOBSTMatchesSerial(t *testing.T) {
	p := OBST()
	for _, N := range []int64{1, 2, 5, 13, 18, 24} {
		runBoth(t, p, []int64{N}, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestOBSTKnown(t *testing.T) {
	p := OBST()
	// Single key: its own frequency at depth 1.
	if got, want := p.Serial([]int64{1}), obstFreq(0); got != want {
		t.Errorf("obst N=1 = %v, want %v", got, want)
	}
	// Two keys: the heavier key is the root.
	f0, f1 := obstFreq(0), obstFreq(1)
	want := f0 + f1 + f0 // root = key 1 (f1 > f0 for this workload)
	if f0 > f1 {
		want = f0 + f1 + f1
	}
	if got := p.Serial([]int64{2}); got != want {
		t.Errorf("obst N=2 = %v, want %v", got, want)
	}
}

func TestKnapsackMatchesSerial(t *testing.T) {
	p := Knapsack()
	for _, ps := range [][]int64{
		{10, 30, 3}, {10, 30, 1}, {5, 12, 4}, {1, 0, 2}, {7, 29, 2}, {12, 50, 4},
	} {
		runBoth(t, p, ps, engine.Config{Nodes: 2, Threads: 2})
	}
}

func TestKnapsackRejectsOutOfBoundParams(t *testing.T) {
	// The step distance W carries a declared bound; the runtime's ghost
	// shells only cover the declared hull, so W=5 must be rejected.
	p := Knapsack()
	tl, err := tiling.New(p.Spec)
	if err != nil {
		t.Fatalf("tiling: %v", err)
	}
	if _, err := engine.Run(tl, p.Kernel, []int64{10, 30, 5}, engine.Config{Nodes: 1, Threads: 1}); err == nil {
		t.Fatal("engine accepted W=5 outside the declared bound [1, 4]")
	}
}
