package problems

import (
	"fmt"
	"math"

	"dpgen/internal/engine"
	"dpgen/internal/spec"
	"dpgen/internal/workload"
)

// EditDistance is pairwise sequence alignment in suffix form:
// D(i,j) is the minimal cost of aligning a[i:] with b[j:], with
// D(len(a), len(b)) = 0 and the usual delete/insert/substitute moves.
// The goal location (0,0) holds the full edit distance.
func EditDistance(a, b string, sub func(x, y byte) float64, gap float64) *Problem {
	sp := spec.MustNew("editdist", []string{"L1", "L2"}, []string{"i", "j"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.AddDep("del", 1, 0)
	sp.AddDep("ins", 0, 1)
	sp.AddDep("sub", 1, 1)
	sp.TileWidths = []int64{32, 32}
	sp.LBDims = []string{"i"}

	kernel := func(c *engine.Ctx) {
		i, j := c.X[0], c.X[1]
		best := math.Inf(1)
		if c.DepValid[0] {
			if v := c.V[c.DepLoc[0]] + gap; v < best {
				best = v
			}
		}
		if c.DepValid[1] {
			if v := c.V[c.DepLoc[1]] + gap; v < best {
				best = v
			}
		}
		if c.DepValid[2] {
			if v := c.V[c.DepLoc[2]] + sub(a[i], b[j]); v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			best = 0 // terminal corner (L1, L2)
		}
		c.V[c.Loc] = best
	}

	serial := func(params []int64) float64 {
		L1, L2 := params[0], params[1]
		tab := make([][]float64, L1+1)
		for i := range tab {
			tab[i] = make([]float64, L2+1)
		}
		for i := L1; i >= 0; i-- {
			for j := L2; j >= 0; j-- {
				best := math.Inf(1)
				if i < L1 {
					if v := tab[i+1][j] + gap; v < best {
						best = v
					}
				}
				if j < L2 {
					if v := tab[i][j+1] + gap; v < best {
						best = v
					}
				}
				if i < L1 && j < L2 {
					if v := tab[i+1][j+1] + sub(a[i], b[j]); v < best {
						best = v
					}
				}
				if math.IsInf(best, 1) {
					best = 0
				}
				tab[i][j] = best
			}
		}
		return tab[0][0]
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b))},
	}
}

// EditDistanceSeeded builds EditDistance on deterministic DNA inputs.
// The spec carries global and kernel code so the problem can also be fed
// to the code generator; the embedded LCG reproduces workload.DNA
// byte-for-byte, so generated programs compute on identical inputs.
func EditDistanceSeeded(seedA, seedB uint64) *Problem {
	a := workload.DNA(200, seedA)
	b := workload.DNA(180, seedB)
	p := EditDistance(a, b, workload.SubUnit, 1)
	p.Spec.GlobalCode = fmt.Sprintf(`// Deterministic inputs: the same LCG as dpgen's workload package.
func dpDNA(n int, seed uint64) string {
	s := seed
	b := make([]byte, n)
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = "ACGT"[(s>>33)%%4]
	}
	return string(b)
}

var seqA = dpDNA(200, %d)
var seqB = dpDNA(180, %d)`, seedA, seedB)
	p.Spec.KernelCode = `best := math.Inf(1)
if is_valid_del {
	if v := V[loc_del] + 1; v < best {
		best = v
	}
}
if is_valid_ins {
	if v := V[loc_ins] + 1; v < best {
		best = v
	}
}
if is_valid_sub {
	c := 1.0
	if seqA[i] == seqB[j] {
		c = 0
	}
	if v := V[loc_sub] + c; v < best {
		best = v
	}
}
if math.IsInf(best, 1) {
	best = 0
}
V[loc] = best`
	return p
}

// LCS3 is the longest common subsequence of three strings in suffix
// form: L(i,j,k) is the LCS length of a[i:], b[j:], c[k:]; the goal
// (0,0,0) holds the full LCS length.
func LCS3(a, b, c string) *Problem {
	sp := spec.MustNew("lcs3", []string{"L1", "L2", "L3"}, []string{"i", "j", "k"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.MustConstrain("0 <= k <= L3")
	sp.AddDep("di", 1, 0, 0)
	sp.AddDep("dj", 0, 1, 0)
	sp.AddDep("dk", 0, 0, 1)
	sp.AddDep("diag", 1, 1, 1)
	sp.TileWidths = []int64{8, 8, 8}
	sp.LBDims = []string{"i", "j"}

	kernel := func(cx *engine.Ctx) {
		i, j, k := cx.X[0], cx.X[1], cx.X[2]
		if cx.DepValid[3] && a[i] == b[j] && a[i] == c[k] {
			cx.V[cx.Loc] = 1 + cx.V[cx.DepLoc[3]]
			return
		}
		var best float64
		if cx.DepValid[0] && cx.V[cx.DepLoc[0]] > best {
			best = cx.V[cx.DepLoc[0]]
		}
		if cx.DepValid[1] && cx.V[cx.DepLoc[1]] > best {
			best = cx.V[cx.DepLoc[1]]
		}
		if cx.DepValid[2] && cx.V[cx.DepLoc[2]] > best {
			best = cx.V[cx.DepLoc[2]]
		}
		cx.V[cx.Loc] = best
	}

	serial := func(params []int64) float64 {
		L1, L2, L3 := params[0], params[1], params[2]
		tab := make([]float64, (L1+1)*(L2+1)*(L3+1))
		idx := func(i, j, k int64) int64 { return (i*(L2+1)+j)*(L3+1) + k }
		for i := L1; i >= 0; i-- {
			for j := L2; j >= 0; j-- {
				for k := L3; k >= 0; k-- {
					if i < L1 && j < L2 && k < L3 && a[i] == b[j] && a[i] == c[k] {
						tab[idx(i, j, k)] = 1 + tab[idx(i+1, j+1, k+1)]
						continue
					}
					var best float64
					if i < L1 && tab[idx(i+1, j, k)] > best {
						best = tab[idx(i+1, j, k)]
					}
					if j < L2 && tab[idx(i, j+1, k)] > best {
						best = tab[idx(i, j+1, k)]
					}
					if k < L3 && tab[idx(i, j, k+1)] > best {
						best = tab[idx(i, j, k+1)]
					}
					tab[idx(i, j, k)] = best
				}
			}
		}
		return tab[0]
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b)), int64(len(c))},
	}
}

// LCS3Seeded builds LCS3 on deterministic DNA inputs, with generator
// source attached so the problem can be emitted as a standalone program.
func LCS3Seeded(seed uint64) *Problem {
	p := LCS3(workload.DNA(40, seed), workload.DNA(36, seed+1), workload.DNA(32, seed+2))
	p.Spec.GlobalCode = dnaGlobals(
		fmt.Sprintf("var seqA = dpDNA(40, %d)", seed),
		fmt.Sprintf("var seqB = dpDNA(36, %d)", seed+1),
		fmt.Sprintf("var seqC = dpDNA(32, %d)", seed+2))
	p.Spec.KernelCode = lcs3KernelText
	return p
}

// msaMoves are the seven alignment moves of 3-sequence MSA, in the
// dependence order used by the spec.
var msaMoves = [7][3]int64{
	{0, 0, 1}, {0, 1, 0}, {0, 1, 1}, {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
}

// MSA3 is exact 3-sequence multiple alignment with sum-of-pairs scoring
// in suffix form: D(i,j,k) is the minimal cost of aligning the suffixes,
// built from seven column moves; a column pays sub(x,y) for each pair of
// consumed characters and gap for each consumed/gap pair.
func MSA3(a, b, c string, sub func(x, y byte) float64, gap float64) *Problem {
	sp := spec.MustNew("msa3", []string{"L1", "L2", "L3"}, []string{"i", "j", "k"})
	sp.MustConstrain("0 <= i <= L1")
	sp.MustConstrain("0 <= j <= L2")
	sp.MustConstrain("0 <= k <= L3")
	for m, mv := range msaMoves {
		sp.AddDep(depName(m), mv[0], mv[1], mv[2])
	}
	sp.TileWidths = []int64{8, 8, 8}
	sp.LBDims = []string{"i", "j"}

	colCost := func(i, j, k int64, mv [3]int64) float64 {
		var cost float64
		// Pair (a, b)
		switch {
		case mv[0] == 1 && mv[1] == 1:
			cost += sub(a[i], b[j])
		case mv[0]+mv[1] == 1:
			cost += gap
		}
		// Pair (a, c)
		switch {
		case mv[0] == 1 && mv[2] == 1:
			cost += sub(a[i], c[k])
		case mv[0]+mv[2] == 1:
			cost += gap
		}
		// Pair (b, c)
		switch {
		case mv[1] == 1 && mv[2] == 1:
			cost += sub(b[j], c[k])
		case mv[1]+mv[2] == 1:
			cost += gap
		}
		return cost
	}

	kernel := func(cx *engine.Ctx) {
		i, j, k := cx.X[0], cx.X[1], cx.X[2]
		best := math.Inf(1)
		for m := range msaMoves {
			if !cx.DepValid[m] {
				continue
			}
			if v := cx.V[cx.DepLoc[m]] + colCost(i, j, k, msaMoves[m]); v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			best = 0 // terminal corner
		}
		cx.V[cx.Loc] = best
	}

	serial := func(params []int64) float64 {
		L1, L2, L3 := params[0], params[1], params[2]
		tab := make([]float64, (L1+1)*(L2+1)*(L3+1))
		idx := func(i, j, k int64) int64 { return (i*(L2+1)+j)*(L3+1) + k }
		for i := L1; i >= 0; i-- {
			for j := L2; j >= 0; j-- {
				for k := L3; k >= 0; k-- {
					best := math.Inf(1)
					for m := range msaMoves {
						mv := msaMoves[m]
						ni, nj, nk := i+mv[0], j+mv[1], k+mv[2]
						if ni > L1 || nj > L2 || nk > L3 {
							continue
						}
						if v := tab[idx(ni, nj, nk)] + colCost(i, j, k, mv); v < best {
							best = v
						}
					}
					if math.IsInf(best, 1) {
						best = 0
					}
					tab[idx(i, j, k)] = best
				}
			}
		}
		return tab[0]
	}

	return &Problem{
		Spec: sp, Kernel: kernel, Serial: serial, FixedParams: true,
		DefaultParams: []int64{int64(len(a)), int64(len(b)), int64(len(c))},
	}
}

// MSA3Seeded builds MSA3 on deterministic DNA inputs with unit
// substitution costs and gap penalty 1, with generator source attached.
func MSA3Seeded(seed uint64) *Problem {
	p := MSA3(workload.DNA(24, seed), workload.DNA(22, seed+1), workload.DNA(20, seed+2),
		workload.SubUnit, 1)
	p.Spec.GlobalCode = dnaGlobals(
		fmt.Sprintf("var seqA = dpDNA(24, %d)", seed),
		fmt.Sprintf("var seqB = dpDNA(22, %d)", seed+1),
		fmt.Sprintf("var seqC = dpDNA(20, %d)", seed+2))
	moves := make([][]int64, len(msaMoves))
	names := make([]string, len(msaMoves))
	for m := range msaMoves {
		moves[m] = []int64{msaMoves[m][0], msaMoves[m][1], msaMoves[m][2]}
		names[m] = depName(m)
	}
	p.Spec.KernelCode = msaKernelText(moves, names,
		[]string{"seqA", "seqB", "seqC"}, []string{"i", "j", "k"})
	return p
}

func depName(m int) string {
	names := [7]string{"d001", "d010", "d011", "d100", "d101", "d110", "d111"}
	return names[m]
}
