// Package workload provides deterministic, seeded input generators for
// the benchmark problems: random DNA/protein sequences and scoring
// matrices. The generator is a fixed 64-bit LCG (not math/rand) so that
// generated standalone programs can embed the identical ten-line
// generator and operate on byte-identical inputs.
package workload

// LCG is the shared linear congruential generator (Knuth MMIX constants).
type LCG struct {
	state uint64
}

// NewLCG seeds a generator.
func NewLCG(seed uint64) *LCG { return &LCG{state: seed} }

// Next advances and returns the raw 64-bit state.
func (g *LCG) Next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Intn returns a value in [0, n) using the high bits.
func (g *LCG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int((g.Next() >> 33) % uint64(n))
}

// DNAAlphabet is the nucleotide alphabet used by the sequence problems.
const DNAAlphabet = "ACGT"

// DNA returns a deterministic random DNA sequence of length n.
func DNA(n int, seed uint64) string {
	g := NewLCG(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = DNAAlphabet[g.Intn(4)]
	}
	return string(b)
}

// SubUnit is the unit-cost substitution function: 0 for a match, 1 for a
// mismatch (edit distance scoring).
func SubUnit(a, b byte) float64 {
	if a == b {
		return 0
	}
	return 1
}

// SubTransition scores DNA with transition/transversion awareness:
// match 0, transition (A<->G, C<->T) 0.5, transversion 1.
func SubTransition(a, b byte) float64 {
	if a == b {
		return 0
	}
	if isPurine(a) == isPurine(b) {
		return 0.5
	}
	return 1
}

func isPurine(c byte) bool { return c == 'A' || c == 'G' }
