package workload

import "testing"

func TestLCGDeterministic(t *testing.T) {
	a, b := NewLCG(7), NewLCG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("LCG not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	g := NewLCG(3)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		v := g.Intn(4)
		if v < 0 || v >= 4 {
			t.Fatalf("Intn(4) = %d", v)
		}
		counts[v]++
	}
	for c, n := range counts {
		if n < 500 {
			t.Errorf("value %d appeared only %d/4000 times", c, n)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLCG(1).Intn(0)
}

func TestDNA(t *testing.T) {
	s := DNA(100, 5)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	if s != DNA(100, 5) {
		t.Error("not deterministic")
	}
	if s == DNA(100, 6) {
		t.Error("seed has no effect")
	}
	for _, ch := range s {
		switch ch {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("bad nucleotide %q", ch)
		}
	}
}

func TestSubUnit(t *testing.T) {
	if SubUnit('A', 'A') != 0 || SubUnit('A', 'G') != 1 {
		t.Error("SubUnit wrong")
	}
}

func TestSubTransition(t *testing.T) {
	cases := []struct {
		a, b byte
		want float64
	}{
		{'A', 'A', 0}, {'A', 'G', 0.5}, {'G', 'A', 0.5},
		{'C', 'T', 0.5}, {'A', 'C', 1}, {'G', 'T', 1},
	}
	for _, c := range cases {
		if got := SubTransition(c.a, c.b); got != c.want {
			t.Errorf("SubTransition(%c,%c) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
