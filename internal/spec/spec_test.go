package spec

import (
	"math/rand"
	"strings"
	"testing"

	"dpgen/internal/lin"
)

func bandit2Spec(t testing.TB) *Spec {
	t.Helper()
	sp := MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{6, 6, 6, 6}
	if err := sp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return sp
}

func TestParseConstraintBasics(t *testing.T) {
	s := lin.MustSpace([]string{"N"}, []string{"x", "y"})
	qs, err := ParseConstraint(s, "x + 2*y <= N")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("got %d ineqs", len(qs))
	}
	q := qs[0]
	// N - x - 2y >= 0
	if q.Coeff("N") != 1 || q.Coeff("x") != -1 || q.Coeff("y") != -2 || q.K != 0 {
		t.Errorf("parsed wrong: %v", q)
	}
}

func TestParseConstraintChain(t *testing.T) {
	s := lin.MustSpace([]string{"N"}, []string{"x"})
	qs, err := ParseConstraint(s, "0 <= x <= N")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("chain produced %d ineqs, want 2", len(qs))
	}
	sys := lin.NewSystem(s)
	sys.Add(qs...)
	if !sys.Contains([]int64{5, 3}) || sys.Contains([]int64{5, 6}) || sys.Contains([]int64{5, -1}) {
		t.Errorf("chain semantics wrong: %v", sys)
	}
}

func TestParseConstraintStrictAndEq(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x", "y"})
	qs, err := ParseConstraint(s, "x < y")
	if err != nil {
		t.Fatal(err)
	}
	// y - 1 - x >= 0
	if qs[0].Coeff("y") != 1 || qs[0].Coeff("x") != -1 || qs[0].K != -1 {
		t.Errorf("strict < wrong: %v", qs[0])
	}
	qs, err = ParseConstraint(s, "x = y")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Errorf("equality should give 2 ineqs, got %d", len(qs))
	}
	qs, err = ParseConstraint(s, "x > y")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Coeff("x") != 1 || qs[0].Coeff("y") != -1 || qs[0].K != -1 {
		t.Errorf("strict > wrong: %v", qs[0])
	}
}

func TestParseConstraintParensAndSigns(t *testing.T) {
	s := lin.MustSpace([]string{"N"}, []string{"x", "y"})
	qs, err := ParseConstraint(s, "-x + 2*(y - 1) >= -N")
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	// -x + 2y - 2 + N >= 0
	if q.Coeff("x") != -1 || q.Coeff("y") != 2 || q.Coeff("N") != 1 || q.K != -2 {
		t.Errorf("parsed wrong: %v", q)
	}
	// Postfix coefficient form "y*3".
	qs, err = ParseConstraint(s, "y*3 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Coeff("y") != 3 { // tightening happens later, in System.Add
		t.Errorf("postfix coef wrong: %v", qs[0])
	}
}

func TestParseConstraintErrors(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	for _, bad := range []string{
		"x + zz >= 0",  // unknown name
		"x >= ",        // missing rhs
		"x",            // no relation
		"x ~ 0",        // bad char
		"x >= 0 extra", // trailing garbage -> "extra" unknown... actually relation chain; unknown name error
		"(x >= 0",      // unbalanced
		"x * y >= 0",   // nonlinear
	} {
		if _, err := ParseConstraint(s, bad); err == nil {
			t.Errorf("ParseConstraint(%q) should fail", bad)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	sp := bandit2Spec(t)
	if got := sp.Order(); len(got) != 4 || got[0] != "s1" {
		t.Errorf("Order = %v", got)
	}
	if got := sp.Balance(); len(got) != 1 || got[0] != "s1" {
		t.Errorf("Balance = %v", got)
	}
	if got := sp.GoalPoint(); len(got) != 4 {
		t.Errorf("GoalPoint = %v", got)
	}
	if sp.ElemType() != "float64" {
		t.Errorf("ElemType = %q", sp.ElemType())
	}
	w := sp.Widths()
	if len(w) != 4 || w[0] != 6 {
		t.Errorf("Widths = %v", w)
	}
}

func TestSpecReach(t *testing.T) {
	sp := MustNew("p", nil, []string{"x", "y"})
	sp.AddDep("a", 2, 0)
	sp.AddDep("b", -1, 3)
	lo, hi := sp.Reach()
	if hi[0] != 2 || hi[1] != 3 || lo[0] != 1 || lo[1] != 0 {
		t.Errorf("Reach: lo=%v hi=%v", lo, hi)
	}
}

func TestValidateCatches(t *testing.T) {
	mk := func(mod func(*Spec)) error {
		sp := MustNew("p", []string{"N"}, []string{"x", "y"})
		sp.MustConstrain("0 <= x <= N")
		sp.MustConstrain("0 <= y <= N")
		sp.AddDep("r1", 1, 0)
		mod(sp)
		return sp.Validate()
	}
	if err := mk(func(sp *Spec) {}); err != nil {
		t.Fatalf("baseline should validate: %v", err)
	}
	cases := map[string]func(*Spec){
		"zero dep":       func(sp *Spec) { sp.AddDep("z", 0, 0) },
		"bad arity dep":  func(sp *Spec) { sp.AddDep("z", 1) },
		"dup dep":        func(sp *Spec) { sp.AddDep("r1", 0, 1) },
		"bad order var":  func(sp *Spec) { sp.LoopOrder = []string{"x", "zz"} },
		"partial order":  func(sp *Spec) { sp.LoopOrder = []string{"x"} },
		"bad balance":    func(sp *Spec) { sp.LBDims = []string{"N"} },
		"range no count": func(sp *Spec) { sp.Deps = append(sp.Deps, Dep{Name: "z", Vec: []int64{1, 0}, Dir: []int64{0, 1}}) },
		"zero step": func(sp *Spec) {
			l := AffConst(2)
			sp.Deps = append(sp.Deps, Dep{Name: "z", Vec: []int64{1, 0}, Dir: []int64{0, 0}, Len: &l})
		},
		"unbounded param": func(sp *Spec) { sp.MustAddDepSpec("z", "N, 0", "", "") },
		"bad bound":       func(sp *Spec) { sp.Bound("N", 5, 1) },
		"bound non-param": func(sp *Spec) { sp.Bound("x", 0, 1) },
		"tile arity":     func(sp *Spec) { sp.TileWidths = []int64{4} },
		"goal arity":     func(sp *Spec) { sp.Goal = []int64{0} },
		"bad elem":       func(sp *Spec) { sp.Elem = "complex128" },
		"no deps":        func(sp *Spec) { sp.Deps = nil },
		"no constraints": func(sp *Spec) { sp.Constraints = nil },
		"unnamed spec":   func(sp *Spec) { sp.Name = "" },
	}
	for name, mod := range cases {
		if err := mk(mod); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

const bandit2File = `
# 2-arm Bernoulli bandit (Section II of the paper)
name bandit2
params N
vars s1 f1 s2 f2

constraint s1 + f1 + s2 + f2 <= N
constraint s1 >= 0
constraint f1 >= 0
constraint s2 >= 0
constraint f2 >= 0

dep r1 <1, 0, 0, 0>
dep r2 <0, 1, 0, 0>
dep r3 <0, 0, 1, 0>
dep r4 <0, 0, 0, 1>

order s1 f1 s2 f2
balance s1 f1
tile 6 6 6 6
goal 0 0 0 0

kernel:
p1 := (float64(s1) + 1) / (float64(s1) + float64(f1) + 2)
p2 := (float64(s2) + 1) / (float64(s2) + float64(f2) + 2)
V1 := 0.0
if is_valid_r1 {
	V1 = p1*(1+V[loc_r1]) + (1-p1)*V[loc_r2]
}
V2 := 0.0
if is_valid_r3 {
	V2 = p2*(1+V[loc_r3]) + (1-p2)*V[loc_r4]
}
V[loc] = max(V1, V2)
end
`

func TestParseFile(t *testing.T) {
	sp, err := Parse(bandit2File)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "bandit2" || len(sp.Vars) != 4 || len(sp.Deps) != 4 {
		t.Fatalf("parsed spec wrong: %+v", sp)
	}
	if len(sp.Constraints) != 5 {
		t.Errorf("constraints = %d, want 5", len(sp.Constraints))
	}
	if sp.Deps[2].Name != "r3" || sp.Deps[2].Vec[2] != 1 {
		t.Errorf("dep r3 wrong: %+v", sp.Deps[2])
	}
	if len(sp.LBDims) != 2 || sp.LBDims[1] != "f1" {
		t.Errorf("balance wrong: %v", sp.LBDims)
	}
	if !strings.Contains(sp.KernelCode, "V[loc] = max(V1, V2)") {
		t.Errorf("kernel code lost:\n%s", sp.KernelCode)
	}
	if sp.Goal == nil || len(sp.Goal) != 4 {
		t.Errorf("goal wrong: %v", sp.Goal)
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no name":         "vars x\nconstraint x >= 0",
		"early cons":      "constraint x >= 0\nname p\nvars x",
		"unknown key":     "name p\nvars x\nfrobnicate 3",
		"unterminated":    "name p\nvars x\nkernel:\ncode",
		"bad dep":         "name p\nvars x\ndep r1 q",
		"bad tile":        "name p\nvars x\ntile zero",
		"bad goal":        "name p\nvars x\ngoal x",
		"validation fail": "name p\nvars x\nconstraint x >= 0", // unbounded, no deps
	}
	for name, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}

func TestParseRoundTripSystem(t *testing.T) {
	sp, err := Parse(bandit2File)
	if err != nil {
		t.Fatal(err)
	}
	sys := sp.System()
	if !sys.Contains([]int64{10, 2, 3, 4, 1}) {
		t.Error("interior point rejected")
	}
	if sys.Contains([]int64{10, 2, 3, 4, 2}) {
		t.Error("exterior point accepted")
	}
}

func TestValidateMixedSignDimension(t *testing.T) {
	sp := MustNew("mixed", []string{"N"}, []string{"x"})
	sp.MustConstrain("0 <= x <= N")
	sp.AddDep("a", 1)
	sp.AddDep("b", -1)
	sp.TileWidths = []int64{4}
	if err := sp.Validate(); err == nil {
		t.Error("mixed-sign dimension should fail validation")
	}
}

// TestParserNeverPanics: the constraint parser and the file parser must
// return errors, not panic, on arbitrary garbage.
func TestParserNeverPanics(t *testing.T) {
	s := lin.MustSpace([]string{"N"}, []string{"x", "y"})
	rng := rand.New(rand.NewSource(1234))
	chars := []byte("xyN019+-*()<=> \tqz_")
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseConstraint(%q) panicked: %v", b, r)
				}
			}()
			_, _ = ParseConstraint(s, string(b))
		}()
	}
	lines := []string{"name p", "params N", "vars x y", "constraint x >= 0",
		"dep r 1 0", "tile 4 4", "kernel:", "end", "balance x", "goal 0 0",
		"order x y", "elem float64", "# c", "", "bogus", "constraint (",
	}
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(12) + 1
		var in []string
		for i := 0; i < k; i++ {
			in = append(in, lines[rng.Intn(len(lines))])
		}
		text := strings.Join(in, "\n")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", text, r)
				}
			}()
			_, _ = Parse(text)
		}()
	}
}

func TestSpecAccessors(t *testing.T) {
	sp := bandit2Spec(t)
	if sp.Space().N() != 5 {
		t.Error("Space wrong")
	}
	if sp.VarIndex("s2") != 2 || sp.VarIndex("zz") != -1 {
		t.Error("VarIndex wrong")
	}
	sp.Goal = []int64{1, 2, 3, 4}
	if got := sp.GoalPoint(); got[3] != 4 {
		t.Errorf("GoalPoint = %v", got)
	}
}

func TestMustConstrainPanics(t *testing.T) {
	sp := MustNew("p", nil, []string{"x"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sp.MustConstrain("x >= zz")
}
