// Package spec defines the problem description a user supplies to the
// program generator (Section IV-A of the paper): loop variables, input
// parameters, the linear inequalities of the iteration space, the
// template dependence vectors, the loop ordering, the load-balancing
// dimensions, per-dimension tile widths, and the user's center-loop /
// initialization / global code fragments.
//
// Specs can be built programmatically or parsed from the generator's
// text input format (see Parse).
package spec

import (
	"fmt"

	"dpgen/internal/ints"
	"dpgen/internal/lin"
)

// Dep is a template dependence. In the basic (paper) form f(x) depends
// on the single cell f(x + Vec). Two extensions widen the workload
// class:
//
//   - Variable-distance offsets: PVec adds a parameter-affine part to
//     each component, so component k of the base offset is
//     Vec[k] + PVec[k](p). Every parameter used must carry a declared
//     bound (Spec.ParamBounds); the generator sizes ghost shells and
//     tile crossings from the resulting hull.
//   - Range templates (nonserial polyadic DP): when Dir/PDir is set,
//     f(x) depends on the interval of cells f(x + base + t*dir) for
//     t = 0, 1, ..., len-1, where dir_k = Dir[k] + PDir[k](p) and len
//     is the Len form over parameters and loop variables. The runtime
//     truncates len to the longest prefix of the footprint that stays
//     inside the iteration space (walking t upward and stopping at the
//     first cell outside, exactly like a serial reference loop would).
type Dep struct {
	Name string
	Vec  []int64 // base offset, indexed like Vars
	// PVec, when non-nil, has one parameter-affine addition per
	// component of Vec.
	PVec []Affine
	// Dir and PDir, when non-nil, make this a range template with step
	// vector Dir[k] + PDir[k](p).
	Dir  []int64
	PDir []Affine
	// Len is the range length form (parameters and loop variables);
	// required exactly when the dependence is a range template.
	Len *Affine
}

// IsRange reports whether the dependence is a range template.
func (d *Dep) IsRange() bool { return d.Dir != nil || d.PDir != nil }

// Extended reports whether the dependence uses any capability beyond a
// constant template vector.
func (d *Dep) Extended() bool {
	if d.IsRange() || d.Len != nil {
		return true
	}
	for _, a := range d.PVec {
		if !a.IsZero() {
			return true
		}
	}
	return false
}

// Spec is a complete problem description.
type Spec struct {
	// Name identifies the problem (used for generated symbols).
	Name string
	// Params are the input parameter names (e.g. N).
	Params []string
	// Vars are the loop variable names, in declaration order.
	Vars []string
	// Constraints are the iteration-space inequalities over Space().
	Constraints []lin.Ineq
	// Deps are the template dependence vectors.
	Deps []Dep
	// LoopOrder is the loop nesting order, outermost first. Empty means Vars.
	LoopOrder []string
	// LBDims are the load-balancing dimensions in priority order
	// (lb1 highest). Empty means the first loop variable.
	LBDims []string
	// TileWidths holds w_k per variable (in Vars order). Zero entries
	// default to 8.
	TileWidths []int64
	// ParamBounds are the declared inclusive ranges of parameters used
	// inside dependence templates (see ParamBound).
	ParamBounds []ParamBound
	// Elem is the state array element type for generated code
	// ("float64" or "float32"); the in-process engine always uses float64.
	Elem string
	// Goal is the location whose value the program reports (the paper's
	// f(0)); nil means the origin.
	Goal []int64
	// GlobalCode, InitCode and KernelCode are Go fragments for the code
	// generator: package-level declarations, initialization statements,
	// and the center-loop body.
	GlobalCode, InitCode, KernelCode string

	space *lin.Space
}

// New creates a spec with the given names and builds its space.
func New(name string, params, vars []string) (*Spec, error) {
	sp := &Spec{Name: name, Params: params, Vars: vars}
	space, err := lin.NewSpace(params, vars)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", name, err)
	}
	sp.space = space
	return sp, nil
}

// MustNew is New that panics on error, for fixed built-in problems.
func MustNew(name string, params, vars []string) *Spec {
	sp, err := New(name, params, vars)
	if err != nil {
		panic(err)
	}
	return sp
}

// Space returns the (params | vars) space of the problem.
func (sp *Spec) Space() *lin.Space { return sp.space }

// System returns the iteration-space inequality system.
func (sp *Spec) System() *lin.System {
	sys := lin.NewSystem(sp.space)
	sys.Add(sp.Constraints...)
	return sys
}

// Constrain parses and appends a constraint written in the input syntax,
// e.g. "s1 + f1 + s2 + f2 <= N".
func (sp *Spec) Constrain(text string) error {
	qs, err := ParseConstraint(sp.space, text)
	if err != nil {
		return err
	}
	sp.Constraints = append(sp.Constraints, qs...)
	return nil
}

// MustConstrain is Constrain that panics on error.
func (sp *Spec) MustConstrain(text string) {
	if err := sp.Constrain(text); err != nil {
		panic(err)
	}
}

// AddDep appends a template dependence vector.
func (sp *Spec) AddDep(name string, vec ...int64) {
	sp.Deps = append(sp.Deps, Dep{Name: name, Vec: vec})
}

// Order returns the effective loop order (LoopOrder or Vars).
func (sp *Spec) Order() []string {
	if len(sp.LoopOrder) > 0 {
		return sp.LoopOrder
	}
	return sp.Vars
}

// Balance returns the effective load-balancing dimensions.
func (sp *Spec) Balance() []string {
	if len(sp.LBDims) > 0 {
		return sp.LBDims
	}
	return sp.Order()[:1]
}

// Widths returns the effective tile widths in Vars order, applying the
// default of 8 and ensuring each is at least the template reach.
func (sp *Spec) Widths() []int64 {
	w := make([]int64, len(sp.Vars))
	for i := range w {
		if i < len(sp.TileWidths) && sp.TileWidths[i] > 0 {
			w[i] = sp.TileWidths[i]
		} else {
			w[i] = 8
		}
	}
	return w
}

// GoalPoint returns the goal location (defaulting to the origin).
func (sp *Spec) GoalPoint() []int64 {
	if sp.Goal != nil {
		return sp.Goal
	}
	return make([]int64, len(sp.Vars))
}

// ElemType returns the state element type for generated code.
func (sp *Spec) ElemType() string {
	if sp.Elem == "" {
		return "float64"
	}
	return sp.Elem
}

// Reach returns, per variable, the maximum positive and negative template
// components: hi[k] = max(0, max_r r_k), lo[k] = max(0, max_r -r_k).
// These set the ghost-cell shell thickness.
func (sp *Spec) Reach() (lo, hi []int64) {
	d := len(sp.Vars)
	lo, hi = make([]int64, d), make([]int64, d)
	for _, dep := range sp.Deps {
		for k, r := range dep.Vec {
			if r > 0 {
				hi[k] = ints.Max(hi[k], r)
			} else if r < 0 {
				lo[k] = ints.Max(lo[k], -r)
			}
		}
	}
	return lo, hi
}

// Validate checks structural consistency: dependence vectors have the
// right arity and are nonzero, names are unique and known, tile widths
// cover the template reach, the goal has the right arity, and the loop
// order and balance dims name real variables.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	if len(sp.Vars) == 0 {
		return fmt.Errorf("spec %q: no loop variables", sp.Name)
	}
	if len(sp.Constraints) == 0 {
		return fmt.Errorf("spec %q: no constraints", sp.Name)
	}
	if len(sp.Deps) == 0 {
		return fmt.Errorf("spec %q: no template dependence vectors", sp.Name)
	}
	depNames := map[string]bool{}
	for _, dep := range sp.Deps {
		if dep.Name == "" {
			return fmt.Errorf("spec %q: unnamed dependence", sp.Name)
		}
		if depNames[dep.Name] {
			return fmt.Errorf("spec %q: duplicate dependence %q", sp.Name, dep.Name)
		}
		depNames[dep.Name] = true
		if len(dep.Vec) != len(sp.Vars) {
			return fmt.Errorf("spec %q: dependence %q has %d components, want %d",
				sp.Name, dep.Name, len(dep.Vec), len(sp.Vars))
		}
		if !dep.Extended() {
			zero := true
			for _, c := range dep.Vec {
				if c != 0 {
					zero = false
				}
			}
			if zero {
				return fmt.Errorf("spec %q: dependence %q is the zero vector", sp.Name, dep.Name)
			}
		}
		if err := sp.validateExtended(&dep); err != nil {
			return err
		}
	}
	if err := sp.validateBounds(); err != nil {
		return err
	}
	if err := sp.checkVarList("order", sp.Order(), true); err != nil {
		return err
	}
	if err := sp.checkVarList("balance", sp.Balance(), false); err != nil {
		return err
	}
	if len(sp.TileWidths) != 0 && len(sp.TileWidths) != len(sp.Vars) {
		return fmt.Errorf("spec %q: %d tile widths for %d variables", sp.Name, len(sp.TileWidths), len(sp.Vars))
	}
	// A tile width below the template reach is allowed: the tiling
	// derives multi-tile crossing offsets from the footprint hull.
	if sp.Goal != nil && len(sp.Goal) != len(sp.Vars) {
		return fmt.Errorf("spec %q: goal has %d components, want %d", sp.Name, len(sp.Goal), len(sp.Vars))
	}
	// Every dimension needs a consistent dependence direction so a single
	// loop direction per dimension (Fig 3) computes dependencies before
	// their uses; mixed signs in one dimension would make the cell order
	// cyclic for this class of generator.
	lo2, hi2 := sp.Reach()
	for k := range sp.Vars {
		if lo2[k] > 0 && hi2[k] > 0 {
			return fmt.Errorf("spec %q: dimension %s has both positive and negative template components",
				sp.Name, sp.Vars[k])
		}
	}
	switch sp.ElemType() {
	case "float64", "float32":
	default:
		return fmt.Errorf("spec %q: unsupported element type %q", sp.Name, sp.Elem)
	}
	return nil
}

func (sp *Spec) checkVarList(what string, names []string, complete bool) error {
	seen := map[string]bool{}
	for _, v := range names {
		i := sp.space.Index(v)
		if i < 0 || sp.space.IsParam(i) {
			return fmt.Errorf("spec %q: %s names unknown variable %q", sp.Name, what, v)
		}
		if seen[v] {
			return fmt.Errorf("spec %q: %s repeats %q", sp.Name, what, v)
		}
		seen[v] = true
	}
	if complete && len(names) != len(sp.Vars) {
		return fmt.Errorf("spec %q: %s must list all %d variables", sp.Name, what, len(sp.Vars))
	}
	return nil
}

// VarIndex returns the position of name within Vars, or -1.
func (sp *Spec) VarIndex(name string) int {
	for i, v := range sp.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// validateExtended checks the structural rules of the extended template
// forms: arities, parameter-only offset/direction forms with declared
// bounds, and a length form present exactly for range templates.
func (sp *Spec) validateExtended(dep *Dep) error {
	d := len(sp.Vars)
	checkAff := func(as []Affine, what string) error {
		if as == nil {
			return nil
		}
		if len(as) != d {
			return fmt.Errorf("spec %q: dependence %q %s has %d components, want %d",
				sp.Name, dep.Name, what, len(as), d)
		}
		for _, a := range as {
			for _, t := range a.Terms {
				i := sp.space.Index(t.Name)
				if i < 0 || !sp.space.IsParam(i) {
					return fmt.Errorf("spec %q: dependence %q %s uses %q, which is not a parameter",
						sp.Name, dep.Name, what, t.Name)
				}
				if _, ok := sp.BoundOf(t.Name); !ok {
					return fmt.Errorf("spec %q: dependence %q uses parameter %q without a declared bound",
						sp.Name, dep.Name, t.Name)
				}
			}
		}
		return nil
	}
	if err := checkAff(dep.PVec, "offset"); err != nil {
		return err
	}
	if err := checkAff(dep.PDir, "direction"); err != nil {
		return err
	}
	if dep.Dir != nil && len(dep.Dir) != d {
		return fmt.Errorf("spec %q: dependence %q direction has %d components, want %d",
			sp.Name, dep.Name, len(dep.Dir), d)
	}
	if dep.IsRange() != (dep.Len != nil) {
		return fmt.Errorf("spec %q: dependence %q must declare a step and a count together",
			sp.Name, dep.Name)
	}
	if dep.IsRange() {
		zero := dep.Dir == nil
		if dep.Dir != nil {
			zero = true
			for _, c := range dep.Dir {
				if c != 0 {
					zero = false
				}
			}
		}
		if zero && dep.PDir != nil {
			for _, a := range dep.PDir {
				if !a.IsZero() {
					zero = false
				}
			}
		}
		if zero {
			return fmt.Errorf("spec %q: range dependence %q has a zero step vector", sp.Name, dep.Name)
		}
		for _, t := range dep.Len.Terms {
			if !sp.space.Has(t.Name) {
				return fmt.Errorf("spec %q: dependence %q count uses unknown name %q",
					sp.Name, dep.Name, t.Name)
			}
			if i := sp.space.Index(t.Name); sp.space.IsParam(i) {
				if _, ok := sp.BoundOf(t.Name); !ok {
					return fmt.Errorf("spec %q: dependence %q count uses parameter %q without a declared bound",
						sp.Name, dep.Name, t.Name)
				}
			}
		}
	}
	return nil
}

// validateBounds checks the declared parameter bounds themselves.
func (sp *Spec) validateBounds() error {
	seen := map[string]bool{}
	for _, b := range sp.ParamBounds {
		i := sp.space.Index(b.Name)
		if i < 0 || !sp.space.IsParam(i) {
			return fmt.Errorf("spec %q: bound declared for %q, which is not a parameter", sp.Name, b.Name)
		}
		if seen[b.Name] {
			return fmt.Errorf("spec %q: duplicate bound for parameter %q", sp.Name, b.Name)
		}
		seen[b.Name] = true
		if b.Lo > b.Hi {
			return fmt.Errorf("spec %q: bound for %q has lo %d > hi %d", sp.Name, b.Name, b.Lo, b.Hi)
		}
	}
	return nil
}

// HasExtendedDeps reports whether any dependence uses variable-distance
// offsets or range templates.
func (sp *Spec) HasExtendedDeps() bool {
	for i := range sp.Deps {
		if sp.Deps[i].Extended() {
			return true
		}
	}
	return false
}

// HasRangeDeps reports whether any dependence is a range template.
func (sp *Spec) HasRangeDeps() bool {
	for i := range sp.Deps {
		if sp.Deps[i].IsRange() {
			return true
		}
	}
	return false
}

// CheckParams verifies that the given parameter values (in Params
// order) respect every declared bound. Runtimes reject out-of-bounds
// values because the precomputed ghost shells and tile crossings only
// cover the declared hull.
func (sp *Spec) CheckParams(params []int64) error {
	for _, b := range sp.ParamBounds {
		for i, pn := range sp.Params {
			if pn != b.Name || i >= len(params) {
				continue
			}
			if params[i] < b.Lo || params[i] > b.Hi {
				return fmt.Errorf("spec %q: parameter %s = %d outside declared bound [%d, %d]",
					sp.Name, pn, params[i], b.Lo, b.Hi)
			}
		}
	}
	return nil
}

// BaseExpr returns component k of dependence j's base offset as an
// expression over the spec space (parameters only).
func (sp *Spec) BaseExpr(j, k int) lin.Expr {
	dep := &sp.Deps[j]
	e := lin.Const(sp.space, dep.Vec[k])
	if dep.PVec != nil {
		pe, err := dep.PVec[k].Expr(sp.space)
		if err != nil {
			panic(err) // Validate guarantees the names exist
		}
		e = e.Add(pe)
	}
	return e
}

// DirExpr returns component k of range dependence j's step vector as an
// expression over the spec space (parameters only); the zero expression
// for point dependences.
func (sp *Spec) DirExpr(j, k int) lin.Expr {
	dep := &sp.Deps[j]
	e := lin.Zero(sp.space)
	if dep.Dir != nil {
		e = e.AddConst(dep.Dir[k])
	}
	if dep.PDir != nil {
		pe, err := dep.PDir[k].Expr(sp.space)
		if err != nil {
			panic(err)
		}
		e = e.Add(pe)
	}
	return e
}

// LenExpr returns range dependence j's length form as an expression
// over the spec space (parameters and loop variables).
func (sp *Spec) LenExpr(j int) lin.Expr {
	dep := &sp.Deps[j]
	if dep.Len == nil {
		return lin.Zero(sp.space)
	}
	e, err := dep.Len.Expr(sp.space)
	if err != nil {
		panic(err)
	}
	return e
}

// BaseAt evaluates dependence j's base offset vector at the given
// parameter values (in Params order).
func (sp *Spec) BaseAt(j int, params []int64) []int64 {
	d := len(sp.Vars)
	vals := make([]int64, sp.space.N())
	copy(vals, params)
	out := make([]int64, d)
	for k := 0; k < d; k++ {
		out[k] = sp.BaseExpr(j, k).Eval(vals)
	}
	return out
}

// DirAt evaluates range dependence j's step vector at the given
// parameter values.
func (sp *Spec) DirAt(j int, params []int64) []int64 {
	d := len(sp.Vars)
	vals := make([]int64, sp.space.N())
	copy(vals, params)
	out := make([]int64, d)
	for k := 0; k < d; k++ {
		out[k] = sp.DirExpr(j, k).Eval(vals)
	}
	return out
}
