// Package spec defines the problem description a user supplies to the
// program generator (Section IV-A of the paper): loop variables, input
// parameters, the linear inequalities of the iteration space, the
// template dependence vectors, the loop ordering, the load-balancing
// dimensions, per-dimension tile widths, and the user's center-loop /
// initialization / global code fragments.
//
// Specs can be built programmatically or parsed from the generator's
// text input format (see Parse).
package spec

import (
	"fmt"

	"dpgen/internal/ints"
	"dpgen/internal/lin"
)

// Dep is a template dependence vector: f(x) depends on f(x + Vec).
type Dep struct {
	Name string
	Vec  []int64 // indexed like Vars
}

// Spec is a complete problem description.
type Spec struct {
	// Name identifies the problem (used for generated symbols).
	Name string
	// Params are the input parameter names (e.g. N).
	Params []string
	// Vars are the loop variable names, in declaration order.
	Vars []string
	// Constraints are the iteration-space inequalities over Space().
	Constraints []lin.Ineq
	// Deps are the template dependence vectors.
	Deps []Dep
	// LoopOrder is the loop nesting order, outermost first. Empty means Vars.
	LoopOrder []string
	// LBDims are the load-balancing dimensions in priority order
	// (lb1 highest). Empty means the first loop variable.
	LBDims []string
	// TileWidths holds w_k per variable (in Vars order). Zero entries
	// default to 8.
	TileWidths []int64
	// Elem is the state array element type for generated code
	// ("float64" or "float32"); the in-process engine always uses float64.
	Elem string
	// Goal is the location whose value the program reports (the paper's
	// f(0)); nil means the origin.
	Goal []int64
	// GlobalCode, InitCode and KernelCode are Go fragments for the code
	// generator: package-level declarations, initialization statements,
	// and the center-loop body.
	GlobalCode, InitCode, KernelCode string

	space *lin.Space
}

// New creates a spec with the given names and builds its space.
func New(name string, params, vars []string) (*Spec, error) {
	sp := &Spec{Name: name, Params: params, Vars: vars}
	space, err := lin.NewSpace(params, vars)
	if err != nil {
		return nil, fmt.Errorf("spec %q: %w", name, err)
	}
	sp.space = space
	return sp, nil
}

// MustNew is New that panics on error, for fixed built-in problems.
func MustNew(name string, params, vars []string) *Spec {
	sp, err := New(name, params, vars)
	if err != nil {
		panic(err)
	}
	return sp
}

// Space returns the (params | vars) space of the problem.
func (sp *Spec) Space() *lin.Space { return sp.space }

// System returns the iteration-space inequality system.
func (sp *Spec) System() *lin.System {
	sys := lin.NewSystem(sp.space)
	sys.Add(sp.Constraints...)
	return sys
}

// Constrain parses and appends a constraint written in the input syntax,
// e.g. "s1 + f1 + s2 + f2 <= N".
func (sp *Spec) Constrain(text string) error {
	qs, err := ParseConstraint(sp.space, text)
	if err != nil {
		return err
	}
	sp.Constraints = append(sp.Constraints, qs...)
	return nil
}

// MustConstrain is Constrain that panics on error.
func (sp *Spec) MustConstrain(text string) {
	if err := sp.Constrain(text); err != nil {
		panic(err)
	}
}

// AddDep appends a template dependence vector.
func (sp *Spec) AddDep(name string, vec ...int64) {
	sp.Deps = append(sp.Deps, Dep{Name: name, Vec: vec})
}

// Order returns the effective loop order (LoopOrder or Vars).
func (sp *Spec) Order() []string {
	if len(sp.LoopOrder) > 0 {
		return sp.LoopOrder
	}
	return sp.Vars
}

// Balance returns the effective load-balancing dimensions.
func (sp *Spec) Balance() []string {
	if len(sp.LBDims) > 0 {
		return sp.LBDims
	}
	return sp.Order()[:1]
}

// Widths returns the effective tile widths in Vars order, applying the
// default of 8 and ensuring each is at least the template reach.
func (sp *Spec) Widths() []int64 {
	w := make([]int64, len(sp.Vars))
	for i := range w {
		if i < len(sp.TileWidths) && sp.TileWidths[i] > 0 {
			w[i] = sp.TileWidths[i]
		} else {
			w[i] = 8
		}
	}
	return w
}

// GoalPoint returns the goal location (defaulting to the origin).
func (sp *Spec) GoalPoint() []int64 {
	if sp.Goal != nil {
		return sp.Goal
	}
	return make([]int64, len(sp.Vars))
}

// ElemType returns the state element type for generated code.
func (sp *Spec) ElemType() string {
	if sp.Elem == "" {
		return "float64"
	}
	return sp.Elem
}

// Reach returns, per variable, the maximum positive and negative template
// components: hi[k] = max(0, max_r r_k), lo[k] = max(0, max_r -r_k).
// These set the ghost-cell shell thickness.
func (sp *Spec) Reach() (lo, hi []int64) {
	d := len(sp.Vars)
	lo, hi = make([]int64, d), make([]int64, d)
	for _, dep := range sp.Deps {
		for k, r := range dep.Vec {
			if r > 0 {
				hi[k] = ints.Max(hi[k], r)
			} else if r < 0 {
				lo[k] = ints.Max(lo[k], -r)
			}
		}
	}
	return lo, hi
}

// Validate checks structural consistency: dependence vectors have the
// right arity and are nonzero, names are unique and known, tile widths
// cover the template reach, the goal has the right arity, and the loop
// order and balance dims name real variables.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	if len(sp.Vars) == 0 {
		return fmt.Errorf("spec %q: no loop variables", sp.Name)
	}
	if len(sp.Constraints) == 0 {
		return fmt.Errorf("spec %q: no constraints", sp.Name)
	}
	if len(sp.Deps) == 0 {
		return fmt.Errorf("spec %q: no template dependence vectors", sp.Name)
	}
	depNames := map[string]bool{}
	for _, dep := range sp.Deps {
		if dep.Name == "" {
			return fmt.Errorf("spec %q: unnamed dependence", sp.Name)
		}
		if depNames[dep.Name] {
			return fmt.Errorf("spec %q: duplicate dependence %q", sp.Name, dep.Name)
		}
		depNames[dep.Name] = true
		if len(dep.Vec) != len(sp.Vars) {
			return fmt.Errorf("spec %q: dependence %q has %d components, want %d",
				sp.Name, dep.Name, len(dep.Vec), len(sp.Vars))
		}
		zero := true
		for _, c := range dep.Vec {
			if c != 0 {
				zero = false
			}
		}
		if zero {
			return fmt.Errorf("spec %q: dependence %q is the zero vector", sp.Name, dep.Name)
		}
	}
	if err := sp.checkVarList("order", sp.Order(), true); err != nil {
		return err
	}
	if err := sp.checkVarList("balance", sp.Balance(), false); err != nil {
		return err
	}
	if len(sp.TileWidths) != 0 && len(sp.TileWidths) != len(sp.Vars) {
		return fmt.Errorf("spec %q: %d tile widths for %d variables", sp.Name, len(sp.TileWidths), len(sp.Vars))
	}
	lo, hi := sp.Reach()
	for k, w := range sp.Widths() {
		if need := ints.Max(lo[k], hi[k]); w < need {
			return fmt.Errorf("spec %q: tile width %d for %s is below the template reach %d",
				sp.Name, w, sp.Vars[k], need)
		}
	}
	if sp.Goal != nil && len(sp.Goal) != len(sp.Vars) {
		return fmt.Errorf("spec %q: goal has %d components, want %d", sp.Name, len(sp.Goal), len(sp.Vars))
	}
	// Every dimension needs a consistent dependence direction so a single
	// loop direction per dimension (Fig 3) computes dependencies before
	// their uses; mixed signs in one dimension would make the cell order
	// cyclic for this class of generator.
	lo2, hi2 := sp.Reach()
	for k := range sp.Vars {
		if lo2[k] > 0 && hi2[k] > 0 {
			return fmt.Errorf("spec %q: dimension %s has both positive and negative template components",
				sp.Name, sp.Vars[k])
		}
	}
	switch sp.ElemType() {
	case "float64", "float32":
	default:
		return fmt.Errorf("spec %q: unsupported element type %q", sp.Name, sp.Elem)
	}
	return nil
}

func (sp *Spec) checkVarList(what string, names []string, complete bool) error {
	seen := map[string]bool{}
	for _, v := range names {
		i := sp.space.Index(v)
		if i < 0 || sp.space.IsParam(i) {
			return fmt.Errorf("spec %q: %s names unknown variable %q", sp.Name, what, v)
		}
		if seen[v] {
			return fmt.Errorf("spec %q: %s repeats %q", sp.Name, what, v)
		}
		seen[v] = true
	}
	if complete && len(names) != len(sp.Vars) {
		return fmt.Errorf("spec %q: %s must list all %d variables", sp.Name, what, len(sp.Vars))
	}
	return nil
}

// VarIndex returns the position of name within Vars, or -1.
func (sp *Spec) VarIndex(name string) int {
	for i, v := range sp.Vars {
		if v == name {
			return i
		}
	}
	return -1
}
