package spec

import (
	"fmt"
	"strconv"
	"strings"

	"dpgen/internal/lin"
)

// ParseConstraint parses a (possibly chained) linear relation such as
//
//	"s1 + f1 + s2 + f2 <= N"
//	"0 <= s1 <= N"
//	"2*d1 = p1 + p2"
//
// into one or more inequalities (expr >= 0) over the given space. Strict
// relations are tightened for integers (a < b becomes a <= b-1).
func ParseConstraint(space *lin.Space, text string) ([]lin.Ineq, error) {
	toks, err := tokenize(text)
	if err != nil {
		return nil, err
	}
	p := &parser{space: space, toks: toks}
	exprs := []lin.Expr{}
	ops := []string{}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	exprs = append(exprs, e)
	for p.peek().kind == tokRel {
		op := p.next().text
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		exprs = append(exprs, e)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("spec: unexpected %q in constraint %q", p.peek().text, text)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("spec: constraint %q has no relation", text)
	}
	var out []lin.Ineq
	for i, op := range ops {
		a, b := exprs[i], exprs[i+1]
		switch op {
		case "<=":
			out = append(out, lin.LE(a, b))
		case ">=":
			out = append(out, lin.GE(a, b))
		case "<":
			out = append(out, lin.LE(a, b.AddConst(-1)))
		case ">":
			out = append(out, lin.GE(a, b.AddConst(1)))
		case "=", "==":
			out = append(out, lin.GE(a, b), lin.LE(a, b))
		default:
			return nil, fmt.Errorf("spec: unknown relation %q", op)
		}
	}
	return out, nil
}

// ParseExpr parses a single affine expression (no relation) over the
// space.
func ParseExpr(space *lin.Space, text string) (lin.Expr, error) {
	toks, err := tokenize(text)
	if err != nil {
		return lin.Expr{}, err
	}
	p := &parser{space: space, toks: toks}
	e, err := p.expr()
	if err != nil {
		return lin.Expr{}, err
	}
	if p.peek().kind != tokEOF {
		return lin.Expr{}, fmt.Errorf("spec: unexpected %q in expression %q", p.peek().text, text)
	}
	return e, nil
}

// parseAffine parses text into a canonical Affine over the spec space.
func (sp *Spec) parseAffine(text string) (Affine, error) {
	e, err := ParseExpr(sp.space, text)
	if err != nil {
		return Affine{}, err
	}
	return affineFromExpr(e), nil
}

// parseComponents parses a vector of affine components: comma-separated
// when a comma is present, whitespace-separated otherwise; angle
// brackets are ignored.
func (sp *Spec) parseComponents(text string) ([]Affine, error) {
	text = strings.NewReplacer("<", "", ">", "").Replace(text)
	var parts []string
	if strings.Contains(text, ",") {
		parts = strings.Split(text, ",")
	} else {
		parts = strings.Fields(text)
	}
	out := make([]Affine, 0, len(parts))
	for _, p := range parts {
		a, err := sp.parseAffine(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// splitAffines separates a component vector into its constant part and,
// when any parameter term is present, the parameter-affine remainder.
func splitAffines(comps []Affine) (vec []int64, pvec []Affine) {
	vec = make([]int64, len(comps))
	any := false
	rest := make([]Affine, len(comps))
	for k, a := range comps {
		vec[k] = a.K
		rest[k] = Affine{Terms: a.Terms}
		if len(a.Terms) > 0 {
			any = true
		}
	}
	if any {
		pvec = rest
	}
	return vec, pvec
}

// AddDepSpec appends a dependence written in the input syntax: base is
// the offset component vector ("1, 0" or "2*N + 1, 0"), and dir/count,
// when non-empty, declare a range template's step vector and length
// form ("N - m - 1"). Components using parameters require declared
// bounds (see Bound).
func (sp *Spec) AddDepSpec(name, base, dir, count string) error {
	comps, err := sp.parseComponents(base)
	if err != nil {
		return fmt.Errorf("spec: dep %q base: %w", name, err)
	}
	dep := Dep{Name: name}
	dep.Vec, dep.PVec = splitAffines(comps)
	if (dir == "") != (count == "") {
		return fmt.Errorf("spec: dep %q must declare step and count together", name)
	}
	if dir != "" {
		dcomps, err := sp.parseComponents(dir)
		if err != nil {
			return fmt.Errorf("spec: dep %q step: %w", name, err)
		}
		dep.Dir, dep.PDir = splitAffines(dcomps)
		l, err := sp.parseAffine(count)
		if err != nil {
			return fmt.Errorf("spec: dep %q count: %w", name, err)
		}
		dep.Len = &l
	}
	// Reject loop variables in offsets and directions early (Validate
	// would also catch this, with a less precise message).
	for _, as := range [][]Affine{dep.PVec, dep.PDir} {
		for _, a := range as {
			for _, t := range a.Terms {
				if i := sp.space.Index(t.Name); i >= 0 && !sp.space.IsParam(i) {
					return fmt.Errorf("spec: dep %q uses loop variable %q in an offset; only the count may use loop variables", name, t.Name)
				}
			}
		}
	}
	sp.Deps = append(sp.Deps, dep)
	return nil
}

// MustAddDepSpec is AddDepSpec that panics on error, for fixed built-in
// problems and generated regression cases.
func (sp *Spec) MustAddDepSpec(name, base, dir, count string) {
	if err := sp.AddDepSpec(name, base, dir, count); err != nil {
		panic(err)
	}
}

// FormatDep renders a dependence in the canonical input syntax accepted
// by Parse and AddDepSpec.
func (sp *Spec) FormatDep(j int) (name, base, dir, count string) {
	dep := &sp.Deps[j]
	comp := func(vec []int64, pvec []Affine, k int) string {
		a := Affine{}
		if vec != nil {
			a.K = vec[k]
		}
		if pvec != nil {
			a.Terms = pvec[k].Terms
		}
		return a.String()
	}
	var bs []string
	for k := range sp.Vars {
		bs = append(bs, comp(dep.Vec, dep.PVec, k))
	}
	base = strings.Join(bs, ", ")
	if dep.IsRange() {
		var ds []string
		for k := range sp.Vars {
			ds = append(ds, comp(dep.Dir, dep.PDir, k))
		}
		dir = strings.Join(ds, ", ")
		count = dep.Len.String()
	}
	return dep.Name, base, dir, count
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokInt
	tokIdent
	tokOp  // + - *
	tokRel // <= >= < > = ==
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	num  int64
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == '+' || c == '-' || c == '*':
			toks = append(toks, token{kind: tokOp, text: string(c)})
			i++
		case c == '<' || c == '>' || c == '=':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, token{kind: tokRel, text: s[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(s[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("spec: bad integer %q: %v", s[i:j], err)
			}
			toks = append(toks, token{kind: tokInt, text: s[i:j], num: n})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("spec: unexpected character %q in %q", c, s)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

type parser struct {
	space *lin.Space
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// expr := ['-'|'+'] term (('+'|'-') term)*
func (p *parser) expr() (lin.Expr, error) {
	acc := lin.Zero(p.space)
	sign := int64(1)
	if t := p.peek(); t.kind == tokOp && (t.text == "-" || t.text == "+") {
		if t.text == "-" {
			sign = -1
		}
		p.next()
	}
	t, err := p.term()
	if err != nil {
		return lin.Expr{}, err
	}
	acc = acc.Add(t.Scale(sign))
	for {
		tk := p.peek()
		if tk.kind != tokOp || tk.text == "*" {
			return acc, nil
		}
		p.next()
		sign = 1
		if tk.text == "-" {
			sign = -1
		}
		t, err := p.term()
		if err != nil {
			return lin.Expr{}, err
		}
		acc = acc.Add(t.Scale(sign))
	}
}

// term := INT ['*' factor] | factor ['*' INT] | '(' expr ')' ['*' INT]
func (p *parser) term() (lin.Expr, error) {
	tk := p.peek()
	switch tk.kind {
	case tokInt:
		p.next()
		coef := tk.num
		if p.peek().kind == tokOp && p.peek().text == "*" {
			p.next()
			f, err := p.factor()
			if err != nil {
				return lin.Expr{}, err
			}
			return f.Scale(coef), nil
		}
		return lin.Const(p.space, coef), nil
	default:
		f, err := p.factor()
		if err != nil {
			return lin.Expr{}, err
		}
		if p.peek().kind == tokOp && p.peek().text == "*" {
			p.next()
			c := p.next()
			if c.kind != tokInt {
				return lin.Expr{}, fmt.Errorf("spec: expected integer after '*', got %q", c.text)
			}
			return f.Scale(c.num), nil
		}
		return f, nil
	}
}

// factor := IDENT | '(' expr ')'
func (p *parser) factor() (lin.Expr, error) {
	tk := p.next()
	switch tk.kind {
	case tokIdent:
		if !p.space.Has(tk.text) {
			return lin.Expr{}, fmt.Errorf("spec: unknown name %q (space %v)", tk.text, p.space)
		}
		return lin.Var(p.space, tk.text), nil
	case tokLParen:
		e, err := p.expr()
		if err != nil {
			return lin.Expr{}, err
		}
		if c := p.next(); c.kind != tokRParen {
			return lin.Expr{}, fmt.Errorf("spec: expected ')', got %q", c.text)
		}
		return e, nil
	default:
		return lin.Expr{}, fmt.Errorf("spec: expected name or '(', got %q", tk.text)
	}
}

// Parse reads the generator's text input format. The format is line
// oriented:
//
//	# comment
//	name bandit2
//	params N
//	vars s1 f1 s2 f2
//	constraint s1 + f1 + s2 + f2 <= N
//	constraint s1 >= 0
//	dep r1 1 0 0 0
//	order s1 f1 s2 f2          (optional; default: vars order)
//	balance s1 f1              (optional; default: first variable)
//	tile 6 6 6 6               (optional; default: 8 per dimension)
//	elem float64               (optional)
//	goal 0 0 0 0               (optional; default: origin)
//	global:                    (optional code sections, ended by "end")
//	  ...Go declarations...
//	end
//	init:
//	  ...Go statements...
//	end
//	kernel:
//	  ...Go statements, the center loop body...
//	end
//
// name, params and vars must appear before any constraint or dep.
func Parse(input string) (*Spec, error) {
	var sp *Spec
	var name string
	var params, vars []string
	lines := strings.Split(input, "\n")

	ensure := func(lineNo int) error {
		if sp != nil {
			return nil
		}
		if name == "" || len(vars) == 0 {
			return fmt.Errorf("spec:%d: name and vars must be declared first", lineNo)
		}
		var err error
		sp, err = New(name, params, vars)
		return err
	}

	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Code sections.
		if sect, ok := strings.CutSuffix(line, ":"); ok && (sect == "global" || sect == "init" || sect == "kernel") {
			var body []string
			j := i + 1
			for ; j < len(lines); j++ {
				if strings.TrimSpace(lines[j]) == "end" {
					break
				}
				body = append(body, lines[j])
			}
			if j == len(lines) {
				return nil, fmt.Errorf("spec:%d: unterminated %s section", lineNo, sect)
			}
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			code := strings.Join(body, "\n")
			switch sect {
			case "global":
				sp.GlobalCode = code
			case "init":
				sp.InitCode = code
			case "kernel":
				sp.KernelCode = code
			}
			i = j
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch key {
		case "name":
			name = rest
		case "params":
			params = strings.Fields(rest)
		case "vars":
			vars = strings.Fields(rest)
		case "constraint":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			if err := sp.Constrain(rest); err != nil {
				return nil, fmt.Errorf("spec:%d: %w", lineNo, err)
			}
		case "dep":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			name, body, _ := strings.Cut(rest, " ")
			if name == "" || strings.TrimSpace(body) == "" {
				return nil, fmt.Errorf("spec:%d: dep needs a name and components", lineNo)
			}
			base, dir, count := strings.TrimSpace(body), "", ""
			if b, r, ok := strings.Cut(base, " step "); ok {
				d, c, ok := strings.Cut(r, " count ")
				if !ok {
					return nil, fmt.Errorf("spec:%d: dep %q has a step but no count", lineNo, name)
				}
				base, dir, count = strings.TrimSpace(b), strings.TrimSpace(d), strings.TrimSpace(c)
			}
			if err := sp.AddDepSpec(name, base, dir, count); err != nil {
				return nil, fmt.Errorf("spec:%d: %w", lineNo, err)
			}
		case "bound":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			fields := strings.Fields(rest)
			if len(fields) != 3 {
				return nil, fmt.Errorf("spec:%d: bound needs a parameter, lo and hi", lineNo)
			}
			lo, err1 := strconv.ParseInt(fields[1], 10, 64)
			hi, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("spec:%d: bad bound range %q %q", lineNo, fields[1], fields[2])
			}
			sp.Bound(fields[0], lo, hi)
		case "order":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			sp.LoopOrder = strings.Fields(rest)
		case "balance":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			sp.LBDims = strings.Fields(rest)
		case "tile":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			for _, f := range strings.Fields(rest) {
				w, err := strconv.ParseInt(f, 10, 64)
				if err != nil || w < 1 {
					return nil, fmt.Errorf("spec:%d: bad tile width %q", lineNo, f)
				}
				sp.TileWidths = append(sp.TileWidths, w)
			}
		case "elem":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			sp.Elem = rest
		case "goal":
			if err := ensure(lineNo); err != nil {
				return nil, err
			}
			for _, f := range strings.Fields(rest) {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("spec:%d: bad goal component %q", lineNo, f)
				}
				sp.Goal = append(sp.Goal, v)
			}
		default:
			return nil, fmt.Errorf("spec:%d: unknown directive %q", lineNo, key)
		}
	}
	if sp == nil {
		return nil, fmt.Errorf("spec: empty input")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}
