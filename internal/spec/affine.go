package spec

import (
	"fmt"
	"sort"
	"strings"

	"dpgen/internal/ints"
	"dpgen/internal/lin"
)

// Affine is a small affine form K + sum Coef*Name. Extended dependence
// templates use it for variable-distance offset components and range
// directions (parameters only, so the memory geometry is fixed once the
// run's parameter values are known) and for range lengths (parameters
// and loop variables, so the interval of predecessors can shrink along
// the wavefront as in matrix-chain ordering).
type Affine struct {
	K     int64
	Terms []AffTerm
}

// AffTerm is one Coef*Name term of an Affine.
type AffTerm struct {
	Coef int64
	Name string
}

// AffConst returns the constant form k.
func AffConst(k int64) Affine { return Affine{K: k} }

// Norm returns the canonical shape of the form: terms sorted by name,
// duplicates merged, zero coefficients dropped.
func (a Affine) Norm() Affine {
	if len(a.Terms) == 0 {
		return a
	}
	merged := map[string]int64{}
	var names []string
	for _, t := range a.Terms {
		if _, ok := merged[t.Name]; !ok {
			names = append(names, t.Name)
		}
		merged[t.Name] = ints.AddChecked(merged[t.Name], t.Coef)
	}
	sort.Strings(names)
	out := Affine{K: a.K}
	for _, n := range names {
		if c := merged[n]; c != 0 {
			out.Terms = append(out.Terms, AffTerm{Coef: c, Name: n})
		}
	}
	return out
}

// IsConst reports whether the form has no named terms.
func (a Affine) IsConst() bool { return len(a.Terms) == 0 }

// IsZero reports whether the form is identically zero.
func (a Affine) IsZero() bool { return a.K == 0 && len(a.Terms) == 0 }

// Expr converts the form to a lin expression over the given space.
func (a Affine) Expr(space *lin.Space) (lin.Expr, error) {
	e := lin.Const(space, a.K)
	for _, t := range a.Terms {
		if !space.Has(t.Name) {
			return lin.Expr{}, fmt.Errorf("spec: affine form uses unknown name %q", t.Name)
		}
		e = e.Add(lin.Term(space, t.Coef, t.Name))
	}
	return e, nil
}

// String renders the canonical text of the form, parseable by the spec
// constraint/dep expression grammar (e.g. "2*N + 1", "N - m - 1", "0").
func (a Affine) String() string {
	a = a.Norm()
	var b strings.Builder
	first := true
	for _, t := range a.Terms {
		switch {
		case first && t.Coef == 1:
			b.WriteString(t.Name)
		case first && t.Coef == -1:
			b.WriteString("-" + t.Name)
		case first:
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Name)
		case t.Coef == 1:
			b.WriteString(" + " + t.Name)
		case t.Coef == -1:
			b.WriteString(" - " + t.Name)
		case t.Coef > 0:
			fmt.Fprintf(&b, " + %d*%s", t.Coef, t.Name)
		default:
			fmt.Fprintf(&b, " - %d*%s", -t.Coef, t.Name)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", a.K)
	case a.K > 0:
		fmt.Fprintf(&b, " + %d", a.K)
	case a.K < 0:
		fmt.Fprintf(&b, " - %d", -a.K)
	}
	return b.String()
}

// affineFromExpr decomposes a lin expression into an Affine.
func affineFromExpr(e lin.Expr) Affine {
	a := Affine{K: e.K}
	sp := e.Space()
	for i := 0; i < sp.N(); i++ {
		if c := e.CoeffAt(i); c != 0 {
			a.Terms = append(a.Terms, AffTerm{Coef: c, Name: sp.Name(i)})
		}
	}
	return a.Norm()
}

// ParamBound declares the inclusive range a parameter may take. Bounds
// are required for every parameter used inside a dependence template
// (offset, direction, or length), because the generator sizes ghost
// shells and tile-to-tile crossings from the template's bounding hull
// over all admissible parameter values.
type ParamBound struct {
	Name   string
	Lo, Hi int64
}

// Bound declares (or overwrites) the range of a parameter.
func (sp *Spec) Bound(name string, lo, hi int64) {
	for i := range sp.ParamBounds {
		if sp.ParamBounds[i].Name == name {
			sp.ParamBounds[i].Lo, sp.ParamBounds[i].Hi = lo, hi
			return
		}
	}
	sp.ParamBounds = append(sp.ParamBounds, ParamBound{Name: name, Lo: lo, Hi: hi})
}

// BoundOf returns the declared bound for a parameter, if any.
func (sp *Spec) BoundOf(name string) (ParamBound, bool) {
	for _, b := range sp.ParamBounds {
		if b.Name == name {
			return b, true
		}
	}
	return ParamBound{}, false
}

// affRange returns the inclusive interval the form can take when every
// named parameter stays within its declared bound. Loop variables are
// rejected: callers bound those separately (see Tiling's length hull).
func (sp *Spec) affRange(a Affine) (lo, hi int64, err error) {
	lo, hi = a.K, a.K
	for _, t := range a.Terms {
		i := sp.space.Index(t.Name)
		if i < 0 || !sp.space.IsParam(i) {
			return 0, 0, fmt.Errorf("spec %q: affine form %q uses non-parameter %q", sp.Name, a, t.Name)
		}
		b, ok := sp.BoundOf(t.Name)
		if !ok {
			return 0, 0, fmt.Errorf("spec %q: parameter %q used in a template needs a declared bound (bound %s lo hi)",
				sp.Name, t.Name, t.Name)
		}
		v1 := ints.MulChecked(t.Coef, b.Lo)
		v2 := ints.MulChecked(t.Coef, b.Hi)
		lo = ints.AddChecked(lo, ints.Min(v1, v2))
		hi = ints.AddChecked(hi, ints.Max(v1, v2))
	}
	return lo, hi, nil
}

// ExprHull returns the inclusive range a parameters-only expression can
// take over the declared parameter bounds.
func (sp *Spec) ExprHull(e lin.Expr) (lo, hi int64, err error) {
	return sp.affRange(affineFromExpr(e))
}

// Hull is the bounding geometry of all dependence templates: Lo/Hi are
// the per-dimension ghost reaches, DepLo/DepHi the per-dependence
// per-dimension footprint intervals over all admissible parameter
// values and range steps.
type Hull struct {
	Lo, Hi       []int64
	DepLo, DepHi [][]int64
}

// TemplateHull computes the dependence footprint hull. lmax gives, per
// dependence, an upper bound on the range length (0 or 1 for point
// dependences); the Tiling computes it by Fourier–Motzkin maximization
// of the length form over the iteration space and the parameter bounds.
// It also enforces the structural rules the tiled-wavefront execution
// needs: a single dependence direction per dimension across the whole
// hull, and no footprint that can contain the zero vector (a cell
// depending on itself).
func (sp *Spec) TemplateHull(lmax []int64) (*Hull, error) {
	d := len(sp.Vars)
	h := &Hull{
		Lo:    make([]int64, d),
		Hi:    make([]int64, d),
		DepLo: make([][]int64, len(sp.Deps)),
		DepHi: make([][]int64, len(sp.Deps)),
	}
	for j, dep := range sp.Deps {
		fLo := make([]int64, d)
		fHi := make([]int64, d)
		for k := 0; k < d; k++ {
			bLo, bHi := dep.Vec[k], dep.Vec[k]
			if dep.PVec != nil && !dep.PVec[k].IsZero() {
				rlo, rhi, err := sp.affRange(dep.PVec[k])
				if err != nil {
					return nil, fmt.Errorf("spec %q: dep %q offset %s: %w", sp.Name, dep.Name, sp.Vars[k], err)
				}
				bLo, bHi = ints.AddChecked(bLo, rlo), ints.AddChecked(bHi, rhi)
			}
			fLo[k], fHi[k] = bLo, bHi
			if dep.IsRange() && j < len(lmax) && lmax[j] > 1 {
				dLo, dHi := int64(0), int64(0)
				if dep.Dir != nil {
					dLo, dHi = dep.Dir[k], dep.Dir[k]
				}
				if dep.PDir != nil && !dep.PDir[k].IsZero() {
					rlo, rhi, err := sp.affRange(dep.PDir[k])
					if err != nil {
						return nil, fmt.Errorf("spec %q: dep %q direction %s: %w", sp.Name, dep.Name, sp.Vars[k], err)
					}
					dLo, dHi = ints.AddChecked(dLo, rlo), ints.AddChecked(dHi, rhi)
				}
				tmax := lmax[j] - 1
				fLo[k] = ints.AddChecked(fLo[k], ints.Min(0, ints.MulChecked(dLo, tmax)))
				fHi[k] = ints.AddChecked(fHi[k], ints.Max(0, ints.MulChecked(dHi, tmax)))
			}
		}
		// A footprint that can contain the zero vector would make a cell
		// depend on itself; require some dimension whose interval
		// excludes zero.
		nonzero := false
		for k := 0; k < d; k++ {
			if fLo[k] > 0 || fHi[k] < 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			return nil, fmt.Errorf("spec %q: dependence %q footprint can contain the zero vector (self-dependence)",
				sp.Name, dep.Name)
		}
		h.DepLo[j], h.DepHi[j] = fLo, fHi
		for k := 0; k < d; k++ {
			h.Lo[k] = ints.Min(h.Lo[k], fLo[k])
			h.Hi[k] = ints.Max(h.Hi[k], fHi[k])
		}
	}
	for k := 0; k < d; k++ {
		if h.Lo[k] < 0 && h.Hi[k] > 0 {
			return nil, fmt.Errorf("spec %q: dimension %s has both positive and negative template components over the parameter bounds",
				sp.Name, sp.Vars[k])
		}
	}
	// Convert to ghost reaches: Lo becomes the (nonnegative) downward
	// shell thickness.
	for k := 0; k < d; k++ {
		h.Lo[k] = ints.Max(0, -h.Lo[k])
		h.Hi[k] = ints.Max(0, h.Hi[k])
	}
	return h, nil
}
