// Package ehrhart reconstructs Ehrhart quasi-polynomials — polynomials
// that count the integer points of a parametric polytope as a function of
// its size parameter (Clauss; used by the paper via the Barvinok
// library). The paper computes two such polynomials for load balancing:
// the total work of the problem and the work of the tile slabs with fixed
// load-balancing indices.
//
// This implementation substitutes exact counting plus rational
// interpolation for Barvinok's generating-function algorithm: for a
// polytope with one size parameter N, the count is a quasi-polynomial of
// degree d (the dimension) and period L dividing the lcm of the loop-
// bound divisors; sampling d+1 counts per residue class determines the
// polynomial exactly, and extra samples verify it.
package ehrhart

import (
	"fmt"
	"math/big"

	"dpgen/internal/ints"
	"dpgen/internal/loopgen"
)

// QuasiPoly is a univariate quasi-polynomial: for N with residue r =
// N mod Period, the value is sum_k Coeffs[r][k] * N^k.
type QuasiPoly struct {
	Period int64
	Degree int
	Coeffs [][]*big.Rat // [Period][Degree+1]
}

// Eval evaluates the quasi-polynomial at N. It panics if the value is not
// an integer (which would indicate a reconstruction bug).
func (q *QuasiPoly) Eval(N int64) int64 {
	r := ((N % q.Period) + q.Period) % q.Period
	acc := new(big.Rat)
	pow := new(big.Rat).SetInt64(1)
	bigN := new(big.Rat).SetInt64(N)
	term := new(big.Rat)
	for k := 0; k <= q.Degree; k++ {
		term.Mul(q.Coeffs[r][k], pow)
		acc.Add(acc, term)
		pow.Mul(pow, bigN)
	}
	if !acc.IsInt() {
		panic(fmt.Sprintf("ehrhart: non-integral value %v at N=%d", acc, N))
	}
	return acc.Num().Int64()
}

// String renders the residue-0 polynomial (and notes the period).
func (q *QuasiPoly) String() string {
	s := ""
	for k := q.Degree; k >= 0; k-- {
		c := q.Coeffs[0][k]
		if c.Sign() == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch k {
		case 0:
			s += c.RatString()
		case 1:
			s += c.RatString() + "*N"
		default:
			s += fmt.Sprintf("%s*N^%d", c.RatString(), k)
		}
	}
	if s == "" {
		s = "0"
	}
	if q.Period > 1 {
		s += fmt.Sprintf(" (period %d)", q.Period)
	}
	return s
}

// Options tunes interpolation.
type Options struct {
	// MinN is the smallest parameter value at which the quasi-polynomial
	// must already be exact. Samples are taken at and above it.
	// Default 0.
	MinN int64
	// Verify is the number of extra samples (per residue) checked against
	// the reconstruction. Default 2.
	Verify int
}

// Interpolate reconstructs the Ehrhart quasi-polynomial of the nest's
// point count. The nest's space must have exactly one parameter.
func Interpolate(nest *loopgen.Nest, opts Options) (*QuasiPoly, error) {
	if nest.Space().NumParams() != 1 {
		return nil, fmt.Errorf("ehrhart: need exactly 1 parameter, have %d", nest.Space().NumParams())
	}
	verify := opts.Verify
	if verify == 0 {
		verify = 2
	}
	period := int64(1)
	for _, d := range nest.Divisors() {
		period = ints.LCM(period, d)
	}
	deg := len(nest.Levels)
	q := &QuasiPoly{Period: period, Degree: deg, Coeffs: make([][]*big.Rat, period)}
	for r := int64(0); r < period; r++ {
		// Sample deg+1 points N = base + j*period in this residue class.
		base := opts.MinN + ((r-opts.MinN)%period+period)%period
		xs := make([]int64, deg+1)
		ys := make([]int64, deg+1)
		for j := 0; j <= deg; j++ {
			xs[j] = base + int64(j)*period
			ys[j] = nest.Count([]int64{xs[j]})
		}
		coeffs, err := polyFit(xs, ys)
		if err != nil {
			return nil, err
		}
		q.Coeffs[r] = coeffs
		// Verification samples beyond the fitting window.
		for j := deg + 1; j <= deg+verify; j++ {
			N := base + int64(j)*period
			if got, want := q.Eval(N), nest.Count([]int64{N}); got != want {
				return nil, fmt.Errorf("ehrhart: verification failed at N=%d: poly=%d count=%d", N, got, want)
			}
		}
	}
	return q, nil
}

// polyFit solves the Vandermonde system for coefficients of the unique
// polynomial of degree len(xs)-1 through the points (xs[i], ys[i]).
func polyFit(xs, ys []int64) ([]*big.Rat, error) {
	n := len(xs)
	// Build augmented matrix [V | y].
	m := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		m[i] = make([]*big.Rat, n+1)
		pow := new(big.Rat).SetInt64(1)
		x := new(big.Rat).SetInt64(xs[i])
		for k := 0; k < n; k++ {
			m[i][k] = new(big.Rat).Set(pow)
			pow = new(big.Rat).Mul(pow, x)
		}
		m[i][n] = new(big.Rat).SetInt64(ys[i])
	}
	// Gaussian elimination with partial (first nonzero) pivoting.
	for col := 0; col < n; col++ {
		p := -1
		for r := col; r < n; r++ {
			if m[r][col].Sign() != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("ehrhart: singular Vandermonde system (duplicate sample points?)")
		}
		m[col], m[p] = m[p], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for k := col; k <= n; k++ {
			m[col][k].Mul(m[col][k], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			tmp := new(big.Rat)
			for k := col; k <= n; k++ {
				tmp.Mul(m[col][k], f)
				m[r][k].Sub(m[r][k], tmp)
			}
		}
	}
	out := make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n]
	}
	return out, nil
}
