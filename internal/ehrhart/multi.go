package ehrhart

import (
	"fmt"
	"math/big"

	"dpgen/internal/ints"
	"dpgen/internal/loopgen"
)

// MultiPoly is a multivariate quasi-polynomial in p parameters: for a
// parameter vector q with residues r_i = q_i mod Period, the value is
// the total-degree-bounded polynomial whose coefficients are stored per
// residue class.
//
// The reconstruction assumes the counting function is a single
// quasi-polynomial over the sampled region (one "chamber" in Barvinok
// terms). That holds for box-like spaces (every sequence problem here)
// but not for counts like |{x : 0 <= x <= min(N, M)}|; InterpolateMulti
// verifies with held-out samples and reports an error in such cases
// rather than returning a wrong polynomial.
type MultiPoly struct {
	Params int
	Period int64
	Degree int
	// Exps lists the monomial exponent vectors (total degree <= Degree).
	Exps [][]int
	// Coeffs[residueKey][m] is the coefficient of monomial Exps[m].
	Coeffs map[string][]*big.Rat
}

// Eval evaluates the quasi-polynomial at the parameter vector q,
// panicking if the value is not integral.
func (m *MultiPoly) Eval(q []int64) int64 {
	if len(q) != m.Params {
		panic(fmt.Sprintf("ehrhart: Eval with %d params, want %d", len(q), m.Params))
	}
	coeffs, ok := m.Coeffs[m.residueKey(q)]
	if !ok {
		panic(fmt.Sprintf("ehrhart: missing residue class for %v", q))
	}
	acc := new(big.Rat)
	term := new(big.Rat)
	for mi, exp := range m.Exps {
		if coeffs[mi].Sign() == 0 {
			continue
		}
		term.Set(coeffs[mi])
		for i, e := range exp {
			for k := 0; k < e; k++ {
				term.Mul(term, new(big.Rat).SetInt64(q[i]))
			}
		}
		acc.Add(acc, term)
	}
	if !acc.IsInt() {
		panic(fmt.Sprintf("ehrhart: non-integral value %v at %v", acc, q))
	}
	return acc.Num().Int64()
}

func (m *MultiPoly) residueKey(q []int64) string {
	out := make([]byte, 0, 2*len(q))
	for _, v := range q {
		r := ((v % m.Period) + m.Period) % m.Period
		out = appendI64(out, r)
		out = append(out, ',')
	}
	return string(out)
}

func appendI64(b []byte, v int64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// maxResidueClasses caps Period^Params, the number of independent
// interpolations.
const maxResidueClasses = 4096

// InterpolateMulti reconstructs the multivariate Ehrhart
// quasi-polynomial of a nest with any number of parameters. opts.MinN
// is the smallest parameter value sampled (per coordinate); opts.Verify
// extra diagonal layers check the fit.
func InterpolateMulti(nest *loopgen.Nest, opts Options) (*MultiPoly, error) {
	p := nest.Space().NumParams()
	if p < 1 {
		return nil, fmt.Errorf("ehrhart: nest has no parameters")
	}
	verify := opts.Verify
	if verify == 0 {
		verify = 2
	}
	period := int64(1)
	for _, d := range nest.Divisors() {
		period = ints.LCM(period, d)
	}
	classes := int64(1)
	for i := 0; i < p; i++ {
		classes *= period
		if classes > maxResidueClasses {
			return nil, fmt.Errorf("ehrhart: %d^%d residue classes exceed the cap %d", period, p, maxResidueClasses)
		}
	}
	deg := len(nest.Levels)
	exps := monomials(p, deg)

	m := &MultiPoly{
		Params: p,
		Period: period,
		Degree: deg,
		Exps:   exps,
		Coeffs: make(map[string][]*big.Rat, classes),
	}

	// The principal lattice {j >= 0 : sum j <= deg} is poised for
	// total-degree interpolation; scale by the period per class.
	samples := principalLattice(p, deg)

	residue := make([]int64, p)
	var rec func(i int) error
	rec = func(i int) error {
		if i == p {
			return m.fitClass(nest, residue, samples, opts.MinN)
		}
		for r := int64(0); r < period; r++ {
			residue[i] = r
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	// Held-out verification on diagonal layers beyond the fitting region.
	q := make([]int64, p)
	for layer := 1; layer <= verify; layer++ {
		for i := range q {
			q[i] = opts.MinN + period*int64(deg+layer) + int64(i)*period
		}
		if got, want := m.Eval(q), nest.Count(q); got != want {
			return nil, fmt.Errorf("ehrhart: verification failed at %v: poly=%d count=%d (multiple chambers?)", q, got, want)
		}
		// An asymmetric probe.
		q[0] += period * int64(layer)
		if got, want := m.Eval(q), nest.Count(q); got != want {
			return nil, fmt.Errorf("ehrhart: verification failed at %v: poly=%d count=%d (multiple chambers?)", q, got, want)
		}
	}
	return m, nil
}

// fitClass solves for one residue class's coefficients.
func (m *MultiPoly) fitClass(nest *loopgen.Nest, residue []int64, samples [][]int, minN int64) error {
	p, n := m.Params, len(m.Exps)
	mat := make([][]*big.Rat, n)
	q := make([]int64, p)
	for row, j := range samples {
		// Parameter point: residue + period * (base + j).
		for i := 0; i < p; i++ {
			base := ints.CeilDiv(minN-residue[i], m.Period)
			if base < 0 {
				base = 0
			}
			q[i] = residue[i] + m.Period*(base+int64(j[i]))
		}
		mat[row] = make([]*big.Rat, n+1)
		for col, exp := range m.Exps {
			v := big.NewRat(1, 1)
			for i, e := range exp {
				for k := 0; k < e; k++ {
					v.Mul(v, new(big.Rat).SetInt64(q[i]))
				}
			}
			mat[row][col] = v
		}
		mat[row][n] = new(big.Rat).SetInt64(nest.Count(q))
	}
	coeffs, err := solve(mat)
	if err != nil {
		return fmt.Errorf("ehrhart: residue %v: %w", residue, err)
	}
	key := m.residueKey(residueAsParams(residue))
	m.Coeffs[key] = coeffs
	return nil
}

func residueAsParams(r []int64) []int64 { return r }

// monomials enumerates exponent vectors of total degree <= deg over p
// variables, in a deterministic order.
func monomials(p, deg int) [][]int {
	var out [][]int
	cur := make([]int, p)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == p {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for e := 0; e <= left; e++ {
			cur[i] = e
			rec(i+1, left-e)
		}
		cur[i] = 0
	}
	rec(0, deg)
	return out
}

// principalLattice enumerates {j >= 0 : sum j <= deg} in the same count
// and order as monomials.
func principalLattice(p, deg int) [][]int { return monomials(p, deg) }

// solve performs exact Gaussian elimination on the n x (n+1) augmented
// system.
func solve(m [][]*big.Rat) ([]*big.Rat, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if m[r][col].Sign() != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, fmt.Errorf("singular interpolation system")
		}
		m[col], m[piv] = m[piv], m[col]
		inv := new(big.Rat).Inv(m[col][col])
		for k := col; k <= n; k++ {
			m[col][k].Mul(m[col][k], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(m[r][col])
			tmp := new(big.Rat)
			for k := col; k <= n; k++ {
				tmp.Mul(m[col][k], f)
				m[r][k].Sub(m[r][k], tmp)
			}
		}
	}
	out := make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n]
	}
	return out, nil
}
