package ehrhart

import (
	"math/big"
	"testing"

	"dpgen/internal/fm"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

func simplexNest(t *testing.T, d int) *loopgen.Nest {
	t.Helper()
	vars := make([]string, d)
	for i := range vars {
		vars[i] = string(rune('a' + i))
	}
	s := lin.MustSpace([]string{"N"}, vars)
	sys := lin.NewSystem(s)
	sum := lin.Zero(s)
	for _, v := range vars {
		sys.AddGE(lin.Var(s, v), lin.Zero(s))
		sum = sum.Add(lin.Var(s, v))
	}
	sys.AddLE(sum, lin.Var(s, "N"))
	n, err := loopgen.Build(sys, vars, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// binom computes C(n+d, d).
func binom(n int64, d int) int64 {
	num, den := int64(1), int64(1)
	for i := 1; i <= d; i++ {
		num *= n + int64(i)
		den *= int64(i)
	}
	return num / den
}

func TestInterpolateSimplex(t *testing.T) {
	for d := 1; d <= 4; d++ {
		nest := simplexNest(t, d)
		q, err := Interpolate(nest, Options{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if q.Period != 1 {
			t.Errorf("d=%d: period = %d, want 1", d, q.Period)
		}
		for _, N := range []int64{0, 1, 2, 7, 20, 50, 1000} {
			if got, want := q.Eval(N), binom(N, d); got != want {
				t.Errorf("d=%d N=%d: Eval=%d want=%d", d, N, got, want)
			}
		}
	}
}

func TestInterpolateLeadingCoefficient(t *testing.T) {
	// Volume of the standard 4-simplex is 1/24: leading Ehrhart
	// coefficient of the bandit-style space.
	nest := simplexNest(t, 4)
	q, err := Interpolate(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Coeffs[0][4].Cmp(big.NewRat(1, 24)) != 0 {
		t.Errorf("leading coeff = %v, want 1/24", q.Coeffs[0][4])
	}
}

func TestInterpolatePeriodic(t *testing.T) {
	// 0 <= 2x <= N: count floor(N/2)+1, quasi-polynomial with period 2.
	s := lin.MustSpace([]string{"N"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Term(s, 2, "x"), lin.Var(s, "N"))
	nest, err := loopgen.Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Interpolate(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Period != 2 {
		t.Fatalf("period = %d, want 2", q.Period)
	}
	for N := int64(0); N <= 21; N++ {
		if got, want := q.Eval(N), N/2+1; got != want {
			t.Errorf("N=%d: Eval=%d want=%d", N, got, want)
		}
	}
}

func TestInterpolateTiledSpace(t *testing.T) {
	// A tiled 1-D space: 0 <= x <= N, x = i + 6t, 0 <= i <= 5; tile count
	// is floor(N/6)+1, period 6 — the shape the load balancer sees.
	s := lin.MustSpace([]string{"N"}, []string{"t"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "t"), lin.Zero(s))
	sys.AddLE(lin.Term(s, 6, "t"), lin.Var(s, "N"))
	nest, err := loopgen.Build(sys, []string{"t"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Interpolate(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for N := int64(0); N <= 40; N++ {
		if got, want := q.Eval(N), N/6+1; got != want {
			t.Errorf("N=%d: Eval=%d want=%d", N, got, want)
		}
	}
}

func TestInterpolateRejectsMultiParam(t *testing.T) {
	s := lin.MustSpace([]string{"N", "M"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "N"))
	nest, err := loopgen.Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interpolate(nest, Options{}); err == nil {
		t.Error("multi-parameter interpolation should fail")
	}
}

func TestEvalNegativeResidue(t *testing.T) {
	// Eval must handle N < 0 residues without panicking (counts there are
	// extrapolations; we only check it does not crash and stays integral).
	nest := simplexNest(t, 2)
	q, err := Interpolate(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Eval(-3)
}

func TestStringForm(t *testing.T) {
	nest := simplexNest(t, 2)
	q, err := Interpolate(nest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := q.String()
	// (N+1)(N+2)/2 = 1/2 N^2 + 3/2 N + 1
	if got != "1/2*N^2 + 3/2*N + 1" {
		t.Errorf("String = %q", got)
	}
}

func TestPolyFitExactness(t *testing.T) {
	// Fit x^2 - 3x + 2 through 3 points.
	xs := []int64{0, 1, 2}
	ys := []int64{2, 0, 0}
	c, err := polyFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []*big.Rat{big.NewRat(2, 1), big.NewRat(-3, 1), big.NewRat(1, 1)}
	for i := range want {
		if c[i].Cmp(want[i]) != 0 {
			t.Errorf("coeff[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestPolyFitDuplicatePoints(t *testing.T) {
	if _, err := polyFit([]int64{1, 1}, []int64{2, 2}); err == nil {
		t.Error("duplicate sample points should fail")
	}
}
