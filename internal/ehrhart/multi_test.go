package ehrhart

import (
	"testing"

	"dpgen/internal/fm"
	"dpgen/internal/lin"
	"dpgen/internal/loopgen"
)

// boxNest builds the p-parameter box 0 <= x_i <= P_i.
func boxNest(t *testing.T, p int) *loopgen.Nest {
	t.Helper()
	params := make([]string, p)
	vars := make([]string, p)
	for i := range params {
		params[i] = "P" + string(rune('1'+i))
		vars[i] = "x" + string(rune('1'+i))
	}
	s := lin.MustSpace(params, vars)
	sys := lin.NewSystem(s)
	for i := range vars {
		sys.AddGE(lin.Var(s, vars[i]), lin.Zero(s))
		sys.AddLE(lin.Var(s, vars[i]), lin.Var(s, params[i]))
	}
	n, err := loopgen.Build(sys, vars, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInterpolateMultiBox2(t *testing.T) {
	n := boxNest(t, 2)
	m, err := InterpolateMulti(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]int64{{0, 0}, {1, 5}, {7, 3}, {20, 40}, {100, 1}} {
		if got, want := m.Eval(q), (q[0]+1)*(q[1]+1); got != want {
			t.Errorf("Eval(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestInterpolateMultiBox3(t *testing.T) {
	n := boxNest(t, 3)
	m, err := InterpolateMulti(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]int64{{2, 3, 4}, {10, 1, 7}, {25, 25, 25}} {
		want := (q[0] + 1) * (q[1] + 1) * (q[2] + 1)
		if got := m.Eval(q); got != want {
			t.Errorf("Eval(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestInterpolateMultiMixedConstraint(t *testing.T) {
	// 0 <= x <= P1, 0 <= y <= P2, x + y <= P1 + P2 (redundant sum keeps
	// one chamber): count (P1+1)(P2+1).
	s := lin.MustSpace([]string{"P1", "P2"}, []string{"x", "y"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "P1"))
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "y"), lin.Var(s, "P2"))
	n, err := loopgen.Build(sys, []string{"x", "y"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := InterpolateMulti(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval([]int64{9, 13}); got != 140 {
		t.Errorf("got %d, want 140", got)
	}
}

func TestInterpolateMultiPeriodic(t *testing.T) {
	// 0 <= 2x <= P1, 0 <= y <= P2: count (floor(P1/2)+1)(P2+1), period 2.
	s := lin.MustSpace([]string{"P1", "P2"}, []string{"x", "y"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Term(s, 2, "x"), lin.Var(s, "P1"))
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "y"), lin.Var(s, "P2"))
	n, err := loopgen.Build(sys, []string{"x", "y"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := InterpolateMulti(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Period != 2 {
		t.Fatalf("period = %d, want 2", m.Period)
	}
	for p1 := int64(0); p1 <= 9; p1++ {
		for p2 := int64(0); p2 <= 5; p2++ {
			want := (p1/2 + 1) * (p2 + 1)
			if got := m.Eval([]int64{p1, p2}); got != want {
				t.Errorf("Eval(%d,%d) = %d, want %d", p1, p2, got, want)
			}
		}
	}
}

func TestInterpolateMultiDetectsChambers(t *testing.T) {
	// 0 <= x <= P1 and x <= P2: count min(P1,P2)+1 — piecewise, so the
	// verification must reject the fit.
	s := lin.MustSpace([]string{"P1", "P2"}, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "P1"))
	sys.AddLE(lin.Var(s, "x"), lin.Var(s, "P2"))
	n, err := loopgen.Build(sys, []string{"x"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InterpolateMulti(n, Options{}); err == nil {
		t.Error("chambered count should fail verification")
	}
}

func TestInterpolateMultiMatchesUnivariate(t *testing.T) {
	// For a 1-parameter nest, the multivariate path must agree with the
	// univariate interpolation.
	s := lin.MustSpace([]string{"N"}, []string{"a", "b"})
	sys := lin.NewSystem(s)
	sum := lin.Var(s, "a").Add(lin.Var(s, "b"))
	sys.AddGE(lin.Var(s, "a"), lin.Zero(s))
	sys.AddGE(lin.Var(s, "b"), lin.Zero(s))
	sys.AddLE(sum, lin.Var(s, "N"))
	n, err := loopgen.Build(sys, []string{"a", "b"}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Interpolate(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := InterpolateMulti(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for N := int64(0); N <= 30; N++ {
		if uni.Eval(N) != multi.Eval([]int64{N}) {
			t.Errorf("N=%d: uni %d != multi %d", N, uni.Eval(N), multi.Eval([]int64{N}))
		}
	}
}

func TestInterpolateMultiResidueCap(t *testing.T) {
	// Period 7 over 5 parameters exceeds the residue-class cap.
	params := []string{"P1", "P2", "P3", "P4", "P5"}
	vars := []string{"x1", "x2", "x3", "x4", "x5"}
	s := lin.MustSpace(params, vars)
	sys := lin.NewSystem(s)
	for i := range vars {
		sys.AddGE(lin.Var(s, vars[i]), lin.Zero(s))
		sys.AddLE(lin.Term(s, 7, vars[i]), lin.Var(s, params[i]))
	}
	n, err := loopgen.Build(sys, vars, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InterpolateMulti(n, Options{}); err == nil {
		t.Error("residue explosion should be rejected")
	}
}
