package simsched

import (
	"bytes"
	"testing"

	"dpgen/internal/engine"
	"dpgen/internal/obs"
)

// obsKernel is the two-armed bandit recurrence, duplicated from the
// engine tests so a real run and a simulated run of the same problem
// can be traced side by side.
func obsKernel(c *engine.Ctx) {
	if !c.DepValid[0] {
		c.V[c.Loc] = 0
		return
	}
	s1, f1 := float64(c.X[0]), float64(c.X[1])
	s2, f2 := float64(c.X[2]), float64(c.X[3])
	p1 := (s1 + 1) / (s1 + f1 + 2)
	p2 := (s2 + 1) / (s2 + f2 + 2)
	v1 := p1*(1+c.V[c.DepLoc[0]]) + (1-p1)*c.V[c.DepLoc[1]]
	v2 := p2*(1+c.V[c.DepLoc[2]]) + (1-p2)*c.V[c.DepLoc[3]]
	if v1 > v2 {
		c.V[c.Loc] = v1
	} else {
		c.V[c.Loc] = v2
	}
}

// TestSimTraceInvariants checks the simulated trace against the
// simulator's own aggregate result: one pop/kernel/ready triple per
// tile, one recv per remote message, traced elements matching Elems,
// and traced cells matching TotalCells.
func TestSimTraceInvariants(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := []int64{20}
	tracer := obs.NewTracer()
	res, err := Simulate(tl, N, Config{Nodes: 3, Cores: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.Snapshot()
	if tr.Dropped() != 0 {
		t.Fatalf("%d events dropped", tr.Dropped())
	}
	counts := map[obs.Kind]int64{}
	var cells, sentElems, recvElems int64
	for _, e := range tr.Events {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KKernel:
			cells += e.Val
		case obs.KSend:
			sentElems += e.Val
		case obs.KRecv:
			recvElems += e.Val
		}
	}
	if counts[obs.KKernel] != res.TilesExecuted || counts[obs.KPop] != res.TilesExecuted {
		t.Errorf("kernel %d / pop %d events, %d tiles executed",
			counts[obs.KKernel], counts[obs.KPop], res.TilesExecuted)
	}
	if counts[obs.KReady] != res.TilesExecuted {
		t.Errorf("ready %d events, want %d", counts[obs.KReady], res.TilesExecuted)
	}
	if counts[obs.KPending] != res.TilesExecuted {
		t.Errorf("pending samples %d, want one per tile (%d)", counts[obs.KPending], res.TilesExecuted)
	}
	if cells != res.TotalCells {
		t.Errorf("traced cells %d != TotalCells %d", cells, res.TotalCells)
	}
	if counts[obs.KSend] != res.Messages || counts[obs.KRecv] != res.Messages {
		t.Errorf("send %d / recv %d events, %d messages", counts[obs.KSend], counts[obs.KRecv], res.Messages)
	}
	if sentElems != res.Elems || recvElems != res.Elems {
		t.Errorf("traced elems sent %d / recv %d, want %d", sentElems, recvElems, res.Elems)
	}
	// The trace's timeline must close exactly at the simulated makespan.
	if got, want := tr.Makespan().Seconds(), res.Makespan; got > want*1.0001 {
		t.Errorf("trace makespan %v exceeds simulated makespan %v", got, want)
	}
}

// TestSimCriticalPathWithinMakespan: the replay guarantee holds on
// simulated traces too.
func TestSimCriticalPathWithinMakespan(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	offsets := make([][]int64, len(tl.TileDeps))
	for j := range tl.TileDeps {
		offsets[j] = tl.TileDeps[j].Offset
	}
	for _, nodes := range []int{1, 4} {
		tracer := obs.NewTracer()
		if _, err := Simulate(tl, []int64{20}, Config{Nodes: nodes, Cores: 3, Tracer: tracer}); err != nil {
			t.Fatal(err)
		}
		rep, err := obs.CriticalPath(tracer.Snapshot(), offsets)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CriticalPath <= 0 || rep.CriticalPath > rep.Makespan {
			t.Errorf("nodes=%d: critical path %v vs makespan %v", nodes, rep.CriticalPath, rep.Makespan)
		}
		if nodes == 1 && rep.Comm != 0 {
			t.Errorf("single node reported %v of communication on the critical path", rep.Comm)
		}
		if nodes > 1 && rep.Comm <= 0 {
			t.Errorf("multi-node critical path has no communication component: %v", rep)
		}
	}
}

// TestUnifiedSchemaRealAndSimulated is the schema contract: a real
// engine run and a simulated run of the same problem both export
// Chrome trace JSON that one decoder parses, and both support the same
// downstream analyses (event counting, critical path).
func TestUnifiedSchemaRealAndSimulated(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := []int64{14}
	offsets := make([][]int64, len(tl.TileDeps))
	for j := range tl.TileDeps {
		offsets[j] = tl.TileDeps[j].Offset
	}
	wantTiles := tl.TileCount(N)

	engTracer := obs.NewTracer()
	if _, err := engine.Run(tl, obsKernel, N, engine.Config{Nodes: 2, Threads: 2, Tracer: engTracer}); err != nil {
		t.Fatal(err)
	}
	simTracer := obs.NewTracer()
	if _, err := Simulate(tl, N, Config{Nodes: 2, Cores: 2, Tracer: simTracer}); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		tr   *obs.Trace
	}{
		{"engine", engTracer.Snapshot()},
		{"simsched", simTracer.Snapshot()},
	} {
		var buf bytes.Buffer
		if err := tc.tr.WriteChrome(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		back, err := obs.ParseChrome(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		var kernels int64
		for _, e := range back.Events {
			if e.Kind == obs.KKernel {
				kernels++
			}
		}
		if kernels != wantTiles {
			t.Errorf("%s: decoded %d kernel events, want %d", tc.name, kernels, wantTiles)
		}
		rep, err := obs.CriticalPath(back, offsets)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Tiles != int(wantTiles) {
			t.Errorf("%s: analyzer saw %d tiles, want %d", tc.name, rep.Tiles, wantTiles)
		}
		if rep.CriticalPath <= 0 || rep.CriticalPath > rep.Makespan {
			t.Errorf("%s: critical path %v vs makespan %v", tc.name, rep.CriticalPath, rep.Makespan)
		}
	}
}
