// Package simsched is a deterministic discrete-event simulator of the
// generated hybrid programs. It replays the exact tile DAG, ownership
// map, priority policy and communication pattern that the real runtime
// (dpgen/internal/engine) executes, against a calibrated cost model of
// cores, NICs and links — substituting for the paper's 8-node, 24-core
// testbed, which this reproduction does not have.
//
// The simulator is what regenerates the scaling figures (Figures 6 and 7)
// and the tile-size and buffer-count sweeps of Section VI-C: those
// results are properties of the DAG shape, the static load balance, the
// pipeline structure and the compute/communication ratio, all of which
// are preserved here; only the absolute constants are the model's.
package simsched

import (
	"container/heap"
	"fmt"
	"strconv"

	"dpgen/internal/balance"
	"dpgen/internal/engine"
	"dpgen/internal/obs"
	"dpgen/internal/tiling"
)

// CostModel holds the simulated machine constants, in seconds.
type CostModel struct {
	// CellTime is the compute time per iteration-space cell.
	CellTime float64
	// TileOverhead is the per-tile scheduling/allocation cost.
	TileOverhead float64
	// ElemCPU is the per-element pack/unpack CPU cost (charged on both
	// the producing and consuming core).
	ElemCPU float64
	// ElemWire is the per-element wire time (inverse bandwidth).
	ElemWire float64
	// MsgLatency is the per-message latency between nodes.
	MsgLatency float64
	// CoreContention models shared memory-bandwidth pressure: the
	// effective per-cell (and per-element CPU) time is multiplied by
	// 1 + CoreContention*(Cores-1). Dynamic programming cells are
	// memory-bound, so a fully loaded 24-core node runs each core
	// slightly slower than a lone core — the effect that keeps the
	// paper's 24-core speedups near 22 rather than 24.
	CoreContention float64
}

// DefaultCostModel returns constants representative of the paper's era
// (2011 cluster: ~GHz cores, DDR InfiniBand-class interconnect).
func DefaultCostModel() CostModel {
	return CostModel{
		CellTime:       40e-9,
		TileOverhead:   5e-6,
		ElemCPU:        2e-9,
		ElemWire:       5e-9,
		MsgLatency:     20e-6,
		CoreContention: 0.003,
	}
}

// Config selects the simulated machine and runtime policies.
type Config struct {
	Nodes    int // MPI ranks (default 1)
	Cores    int // cores per node (default 1)
	SendBufs int // in-flight sends per node before the sender stalls (default 16)
	Priority engine.Priority
	Balance  balance.Method
	Cost     CostModel // zero value means DefaultCostModel
	// Cache, if non-nil, memoizes per-tile cell and edge counts across
	// Simulate calls. A cache is only valid for one (tiling, params)
	// pair; the caller owns that scoping.
	Cache *CostCache
	// Assign, if non-nil, overrides the load-balance computation (it
	// must have been built for the same tiling, params and node count).
	Assign *balance.Assignment
	// ReverseKey flips the column-major key orientation to prefer the
	// least-advanced tiles — the naive reading of "column-major" that
	// starves the cross-node pipeline. Exists to demonstrate the
	// priority-orientation finding (see EXPERIMENTS.md fig7).
	ReverseKey bool
	// Tracer, if non-nil, records the simulated tile lifecycle in the
	// same event schema the real runtime emits (see dpgen/internal/obs),
	// with simulated seconds mapped to trace nanoseconds from t=0. A
	// real run and its model can then be diffed timeline to timeline.
	Tracer *obs.Tracer
}

// CostCache memoizes tile geometry counts for repeated simulations of
// the same problem instance (e.g. a thread-count sweep).
type CostCache struct {
	cells map[string]int64
	edges map[string]int64
}

// NewCostCache creates an empty cache.
func NewCostCache() *CostCache {
	return &CostCache{cells: map[string]int64{}, edges: map[string]int64{}}
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.SendBufs == 0 {
		c.SendBufs = 16
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// Result summarizes a simulated run.
type Result struct {
	// Makespan is the simulated completion time in seconds.
	Makespan float64
	// SerialWork is the sum of all tile costs: the one-core, zero-
	// communication lower bound used for speedup calculations.
	SerialWork float64
	// BusyTime is total core-busy seconds per node.
	BusyTime []float64
	// IdleFrac is the idle fraction per node over the makespan.
	IdleFrac []float64
	// PeakPendingEdges is the per-node maximum number of buffered edges.
	PeakPendingEdges []int64
	// Messages and Elems count remote edge traffic.
	Messages, Elems int64
	// TotalCells is the iteration-space size.
	TotalCells int64
	// TilesExecuted counts tiles (all of them, across nodes).
	TilesExecuted int64
}

// Speedup returns SerialWork / Makespan.
func (r *Result) Speedup() float64 { return r.SerialWork / r.Makespan }

// simTile is the simulator's per-tile state.
type simTile struct {
	tile      []int64
	remaining int
	inElems   int64 // received edge elements (unpack cost)
	key       []int64
	level     int64
	seq       int64
	index     int

	// Tracing state (only maintained when a Tracer is attached).
	core  int   // simulated core the tile ran on
	cells int64 // cell count, recorded by tileCost
}

// readyHeap mirrors the engine's priority queue.
type readyHeap struct {
	items []*simTile
	prio  engine.Priority
}

func (h *readyHeap) Len() int { return len(h.items) }
func (h *readyHeap) Less(a, b int) bool {
	x, y := h.items[a], h.items[b]
	switch h.prio {
	case engine.FIFO:
		return x.seq < y.seq
	case engine.LevelSet:
		if x.level != y.level {
			return x.level < y.level
		}
	}
	for k := range x.key {
		if x.key[k] != y.key[k] {
			return x.key[k] < y.key[k]
		}
	}
	return x.seq < y.seq
}
func (h *readyHeap) Swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.items[a].index = a
	h.items[b].index = b
}
func (h *readyHeap) Push(v any) {
	p := v.(*simTile)
	p.index = len(h.items)
	h.items = append(h.items, p)
}
func (h *readyHeap) Pop() any {
	old := h.items
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return p
}

// event is a point in simulated time.
type event struct {
	at   float64
	seq  int64
	kind int // 0 = tile finish, 1 = message arrival, 2 = blocked core freed
	node int
	tile *simTile // finish: the finished tile; arrival: the consumer
	dep  int      // arrival: tile dependence index
	data int64    // arrival: element count
	core int      // blocked-core-freed: which core (tracing only)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int)     { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(v any)       { *h = append(*h, v.(*event)) }
func (h *eventHeap) Pop() any         { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e *event)    { heap.Push(h, e) }
func (h *eventHeap) popEvent() *event { return heap.Pop(h).(*event) }
func (h *eventHeap) empty() bool      { return h.Len() == 0 }

// simNode is the per-node simulator state.
type simNode struct {
	ready     readyHeap
	pending   map[string]*simTile
	freeCores int
	busy      float64
	seq       int64

	// NIC model: sends serialize on the wire; SendBufs slots gate how
	// far the cores can run ahead of the wire.
	nicFree   float64
	slotTimes []float64
	nextSlot  int

	pendingEdges int64
	peakEdges    int64
	executed     int64
	owned        int64

	// Tracing state (nil / unused without a Tracer). Lane numbering
	// mirrors the engine: cores 0..Cores-1, receiver at Cores, init at
	// Cores+1. The simulator is single-threaded, so the single-writer
	// lane contract holds trivially.
	coreLanes   []*obs.Lane
	recvLane    *obs.Lane
	initLane    *obs.Lane
	freeCoreIDs []int
}

type sim struct {
	tl      *tiling.Tiling
	params  []int64
	cfg     Config
	assign  *balance.Assignment
	nodes   []*simNode
	events  eventHeap
	eseq    int64
	keyDims []int
	now     float64
	res     Result
}

// Simulate runs the model to completion.
func Simulate(tl *tiling.Tiling, params []int64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	assign := cfg.Assign
	if assign == nil {
		var err error
		assign, err = balance.Build(tl, params, cfg.Nodes, cfg.Balance)
		if err != nil {
			return nil, err
		}
	} else if assign.Nodes != cfg.Nodes {
		return nil, fmt.Errorf("simsched: assignment built for %d nodes, config wants %d", assign.Nodes, cfg.Nodes)
	}
	s := &sim{tl: tl, params: params, cfg: cfg, assign: assign}
	s.buildKeyDims()
	s.nodes = make([]*simNode, cfg.Nodes)
	for i := range s.nodes {
		n := &simNode{
			ready:     readyHeap{prio: cfg.Priority},
			pending:   make(map[string]*simTile),
			freeCores: cfg.Cores,
			slotTimes: make([]float64, cfg.SendBufs),
		}
		if cfg.Tracer != nil {
			n.coreLanes = make([]*obs.Lane, cfg.Cores)
			n.freeCoreIDs = make([]int, cfg.Cores)
			for c := 0; c < cfg.Cores; c++ {
				n.coreLanes[c] = cfg.Tracer.Lane(i, c, "core"+strconv.Itoa(c))
				n.freeCoreIDs[c] = cfg.Cores - 1 - c // pop core 0 first
			}
			n.recvLane = cfg.Tracer.Lane(i, cfg.Cores, "recv")
			n.initLane = cfg.Tracer.Lane(i, cfg.Cores+1, "init")
		}
		s.nodes[i] = n
	}

	// Initial tiles and ownership.
	tl.ForEachTile(params, func(t []int64) bool {
		owner := assign.Owner(t)
		s.nodes[owner].owned++
		if tl.DepCount(params, t) == 0 {
			st := s.newSimTile(t, 0)
			n := s.nodes[owner]
			st.seq = n.seq
			n.seq++
			heap.Push(&n.ready, st)
			if n.initLane != nil {
				n.initLane.Emit(obs.Event{Kind: obs.KReady, Tile: obs.TileID(t), Dep: -1})
			}
		}
		return true
	})

	// Start as many tiles as there are free cores.
	for id := range s.nodes {
		s.dispatch(id)
	}
	if s.events.empty() {
		return nil, fmt.Errorf("simsched: nothing to execute for params %v", params)
	}

	for !s.events.empty() {
		e := s.events.popEvent()
		s.now = e.at
		switch e.kind {
		case 0:
			s.finishTile(e)
		case 1:
			s.arrive(e)
		case 2: // a core blocked in Send becomes free
			n := s.nodes[e.node]
			n.freeCores++
			if n.coreLanes != nil {
				n.freeCoreIDs = append(n.freeCoreIDs, e.core)
			}
			s.dispatch(e.node)
		}
	}

	var total int64
	for id, n := range s.nodes {
		if n.executed != n.owned {
			return nil, fmt.Errorf("simsched: node %d executed %d of %d tiles (deadlocked DAG?)", id, n.executed, n.owned)
		}
		total += n.executed
	}
	s.res.TilesExecuted = total
	s.res.Makespan = s.now
	s.res.BusyTime = make([]float64, cfg.Nodes)
	s.res.IdleFrac = make([]float64, cfg.Nodes)
	s.res.PeakPendingEdges = make([]int64, cfg.Nodes)
	for i, n := range s.nodes {
		s.res.BusyTime[i] = n.busy
		if s.now > 0 {
			s.res.IdleFrac[i] = 1 - n.busy/(float64(cfg.Cores)*s.now)
		}
		s.res.PeakPendingEdges[i] = n.peakEdges
	}
	return &s.res, nil
}

func (s *sim) buildKeyDims() {
	inLB := map[int]bool{}
	for _, k := range s.tl.LBIndices() {
		s.keyDims = append(s.keyDims, k)
		inLB[k] = true
	}
	for _, v := range s.tl.Spec.Order() {
		k := s.tl.Spec.VarIndex(v)
		if !inLB[k] {
			s.keyDims = append(s.keyDims, k)
		}
	}
}

func (s *sim) newSimTile(t []int64, remaining int) *simTile {
	st := &simTile{tile: append([]int64(nil), t...), remaining: remaining}
	st.key = make([]int64, len(s.keyDims))
	for i, k := range s.keyDims {
		// Most-advanced-first orientation; see engine.makeKey.
		if (s.tl.ExecDirs[k] < 0) != s.cfg.ReverseKey {
			st.key[i] = t[k]
		} else {
			st.key[i] = -t[k]
		}
	}
	for _, v := range st.key {
		st.level -= v
	}
	return st
}

// dispatch starts ready tiles on free cores of node id.
func (s *sim) dispatch(id int) {
	n := s.nodes[id]
	for n.freeCores > 0 && n.ready.Len() > 0 {
		st := heap.Pop(&n.ready).(*simTile)
		n.freeCores--
		cost := s.tileCost(st)
		n.busy += cost
		s.res.SerialWork += cost
		if n.coreLanes != nil {
			st.core = n.freeCoreIDs[len(n.freeCoreIDs)-1]
			n.freeCoreIDs = n.freeCoreIDs[:len(n.freeCoreIDs)-1]
			lane := n.coreLanes[st.core]
			tid := obs.TileID(st.tile)
			lane.Emit(obs.Event{Kind: obs.KPop, Start: ns(s.now), Tile: tid, Dep: -1})
			lane.Emit(obs.Event{Kind: obs.KKernel, Start: ns(s.now),
				Dur: ns(s.now+cost) - ns(s.now), Tile: tid, Dep: -1, Val: st.cells})
		}
		s.eseq++
		s.events.push(&event{at: s.now + cost, seq: s.eseq, kind: 0, node: id, tile: st})
	}
}

// ns maps simulated seconds to trace nanoseconds (origin t=0) — the
// unit contract of the obs event schema.
func ns(sec float64) int64 { return int64(sec * 1e9) }

// tileCost models one tile's core time: overhead + cells + pack/unpack.
func (s *sim) tileCost(st *simTile) float64 {
	cells := s.cellCount(st.tile)
	st.cells = cells
	s.res.TotalCells += cells
	var outElems int64
	probe := make([]int64, len(st.tile))
	for j := range s.tl.TileDeps {
		for k := range st.tile {
			probe[k] = st.tile[k] - s.tl.TileDeps[j].Offset[k]
		}
		if s.tl.InTileSpace(s.params, probe) {
			outElems += s.edgeSize(st.tile, j)
		}
	}
	c := s.cfg.Cost
	contention := 1 + c.CoreContention*float64(s.cfg.Cores-1)
	return c.TileOverhead + float64(cells)*c.CellTime*contention +
		float64(st.inElems+outElems)*c.ElemCPU*contention
}

// cellCount and edgeSize consult the optional cross-run cache.
func (s *sim) cellCount(tile []int64) int64 {
	if s.cfg.Cache == nil {
		return s.tl.CellCount(s.params, tile)
	}
	k := tileKey(tile)
	if v, ok := s.cfg.Cache.cells[k]; ok {
		return v
	}
	v := s.tl.CellCount(s.params, tile)
	s.cfg.Cache.cells[k] = v
	return v
}

func (s *sim) edgeSize(tile []int64, dep int) int64 {
	if s.cfg.Cache == nil {
		return s.tl.EdgeSize(s.params, tile, dep)
	}
	k := tileKey(tile) + "|" + string(rune('0'+dep))
	if v, ok := s.cfg.Cache.edges[k]; ok {
		return v
	}
	v := s.tl.EdgeSize(s.params, tile, dep)
	s.cfg.Cache.edges[k] = v
	return v
}

// finishTile delivers the finished tile's edges and frees its core.
func (s *sim) finishTile(e *event) {
	n := s.nodes[e.node]
	st := e.tile
	n.executed++
	var lane *obs.Lane
	var tid string
	if n.coreLanes != nil {
		lane = n.coreLanes[st.core]
		tid = obs.TileID(st.tile)
	}
	coreTime := s.now
	probe := make([]int64, len(st.tile))
	for j := range s.tl.TileDeps {
		for k := range st.tile {
			probe[k] = st.tile[k] - s.tl.TileDeps[j].Offset[k]
		}
		if !s.tl.InTileSpace(s.params, probe) {
			continue
		}
		elems := s.edgeSize(st.tile, j)
		owner := s.assign.Owner(probe)
		if owner == e.node {
			s.deliver(owner, probe, j, elems, s.now)
			continue
		}
		// Remote: wait for a send-buffer slot if necessary (this is the
		// Section VI-C buffer effect), serialize on the NIC, add latency.
		// A slot is held until the receiver consumes the message — the
		// MPI buffered-send semantics the generated programs rely on —
		// so with too few buffers a send degenerates to a rendezvous.
		c := s.cfg.Cost
		slotFree := n.slotTimes[n.nextSlot]
		if slotFree > coreTime {
			if lane != nil {
				lane.Emit(obs.Event{Kind: obs.KStall, Start: ns(coreTime),
					Dur: ns(slotFree) - ns(coreTime), Tile: tid, Dep: int32(j)})
			}
			coreTime = slotFree // the core blocks in Send
		}
		start := coreTime
		if n.nicFree > start {
			start = n.nicFree
		}
		wireDone := start + float64(elems)*c.ElemWire
		n.slotTimes[n.nextSlot] = wireDone + c.MsgLatency // freed at delivery
		n.nextSlot = (n.nextSlot + 1) % len(n.slotTimes)
		n.nicFree = wireDone
		s.res.Messages++
		s.res.Elems += elems
		if lane != nil {
			lane.Emit(obs.Event{Kind: obs.KSend, Start: ns(start),
				Dur: ns(wireDone) - ns(start), Tile: obs.TileID(probe), Dep: int32(j), Val: elems})
		}
		s.eseq++
		s.events.push(&event{
			at: wireDone + c.MsgLatency, seq: s.eseq, kind: 1,
			node: owner, tile: s.consumerStub(probe), dep: j, data: elems,
		})
	}
	if lane != nil {
		// Sample the pending-edge curve at tile completion, mirroring
		// the engine's KPending series.
		lane.Emit(obs.Event{Kind: obs.KPending, Start: ns(s.now), Dep: -1, Val: n.pendingEdges})
	}
	if coreTime > s.now {
		// The core was additionally occupied while blocked in Send
		// (all send buffers in flight); release it when the slot frees.
		n.busy += coreTime - s.now
		s.eseq++
		s.events.push(&event{at: coreTime, seq: s.eseq, kind: 2, node: e.node, core: st.core})
		return
	}
	n.freeCores++
	if n.coreLanes != nil {
		n.freeCoreIDs = append(n.freeCoreIDs, st.core)
	}
	s.dispatch(e.node)
}

// consumerStub wraps a consumer tile index for an arrival event.
func (s *sim) consumerStub(t []int64) *simTile {
	return &simTile{tile: append([]int64(nil), t...)}
}

// arrive processes a remote edge arrival at its consumer node.
func (s *sim) arrive(e *event) {
	if n := s.nodes[e.node]; n.recvLane != nil {
		n.recvLane.Emit(obs.Event{Kind: obs.KRecv, Start: ns(s.now),
			Tile: obs.TileID(e.tile.tile), Dep: int32(e.dep), Val: e.data})
	}
	s.deliver(e.node, e.tile.tile, e.dep, e.data, s.now)
	s.dispatch(e.node)
}

// deliver records an edge for a consumer tile and readies it when all
// dependencies have arrived.
func (s *sim) deliver(id int, consumer []int64, dep int, elems int64, at float64) {
	n := s.nodes[id]
	k := tileKey(consumer)
	st := n.pending[k]
	if st == nil {
		st = s.newSimTile(consumer, s.tl.DepCount(s.params, consumer))
		n.pending[k] = st
	}
	st.remaining--
	st.inElems += elems
	n.pendingEdges++
	if n.pendingEdges > n.peakEdges {
		n.peakEdges = n.pendingEdges
	}
	if st.remaining == 0 {
		delete(n.pending, k)
		// Its buffered edges are consumed when execution starts; account
		// them as released at dispatch. Simplification: release now.
		n.pendingEdges -= int64(countEdges(s.tl, s.params, st.tile))
		st.seq = n.seq
		n.seq++
		heap.Push(&n.ready, st)
		if n.recvLane != nil {
			n.recvLane.Emit(obs.Event{Kind: obs.KReady, Start: ns(at), Tile: obs.TileID(st.tile), Dep: -1})
		}
		s.dispatch(id)
	}
}

func countEdges(tl *tiling.Tiling, params []int64, t []int64) int {
	return tl.DepCount(params, t)
}

func tileKey(t []int64) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = appendInt(b, v)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
