package simsched

import (
	"testing"

	"dpgen/internal/engine"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

func bandit2Tiling(t testing.TB, w int64, lb []string) *tiling.Tiling {
	t.Helper()
	sp := spec.MustNew("bandit2", []string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sp.MustConstrain("s1 + f1 + s2 + f2 <= N")
	for _, v := range sp.Vars {
		sp.MustConstrain(v + " >= 0")
	}
	sp.AddDep("r1", 1, 0, 0, 0)
	sp.AddDep("r2", 0, 1, 0, 0)
	sp.AddDep("r3", 0, 0, 1, 0)
	sp.AddDep("r4", 0, 0, 0, 1)
	sp.TileWidths = []int64{w, w, w, w}
	sp.LBDims = lb
	tl, err := tiling.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestSimulateCompletesAllTiles(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	N := int64(24)
	res, err := Simulate(tl, []int64{N}, Config{Nodes: 2, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TilesExecuted != tl.TileCount([]int64{N}) {
		t.Errorf("executed %d tiles, want %d", res.TilesExecuted, tl.TileCount([]int64{N}))
	}
	want := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
	if res.TotalCells != want {
		t.Errorf("cells %d, want %d", res.TotalCells, want)
	}
	if res.Makespan <= 0 || res.SerialWork <= 0 {
		t.Errorf("times: makespan=%v serial=%v", res.Makespan, res.SerialWork)
	}
}

func TestSingleCoreMakespanEqualsSerialWork(t *testing.T) {
	tl := bandit2Tiling(t, 4, nil)
	res, err := Simulate(tl, []int64{16}, Config{Nodes: 1, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Makespan - res.SerialWork; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("1-core makespan %v != serial work %v", res.Makespan, res.SerialWork)
	}
	if res.Messages != 0 {
		t.Errorf("single node sent %d messages", res.Messages)
	}
	if res.IdleFrac[0] > 1e-9 {
		t.Errorf("single core idle frac %v", res.IdleFrac[0])
	}
}

func TestSpeedupMonotoneInCores(t *testing.T) {
	tl := bandit2Tiling(t, 5, []string{"s1", "f1"})
	N := int64(60)
	prev := 0.0
	for _, cores := range []int{1, 4, 12, 24} {
		res, err := Simulate(tl, []int64{N}, Config{Nodes: 1, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		sp := res.Speedup()
		if sp < prev*0.999 {
			t.Errorf("speedup fell from %v to %v at %d cores", prev, sp, cores)
		}
		if sp > float64(cores) {
			t.Errorf("superlinear speedup %v on %d cores", sp, cores)
		}
		prev = sp
	}
	if prev < 6 {
		t.Errorf("24-core speedup only %.1f for N=%d; DAG or scheduler defect?", prev, N)
	}
}

func TestDeterminism(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	cfg := Config{Nodes: 3, Cores: 4}
	a, err := Simulate(tl, []int64{20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tl, []int64{20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Messages != b.Messages || a.SerialWork != b.SerialWork {
		t.Errorf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

func TestWeakScalingEfficiencyReasonable(t *testing.T) {
	// Scale the problem so locations per node stay roughly constant and
	// check time-per-location-normalized efficiency stays high — the
	// Figure 7 measurement at small scale.
	tl := bandit2Tiling(t, 5, []string{"s1", "f1"})
	base, err := Simulate(tl, []int64{50}, Config{Nodes: 1, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes: N for ~2x locations: 50 * 2^(1/4) ~ 60.
	two, err := Simulate(tl, []int64{60}, Config{Nodes: 2, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	perLoc1 := base.Makespan / float64(base.TotalCells)
	perLoc2 := two.Makespan * 2 / float64(two.TotalCells)
	eff := perLoc1 / perLoc2
	if eff < 0.5 || eff > 1.05 {
		t.Errorf("2-node weak efficiency %.2f out of plausible range", eff)
	}
}

func TestFewerSendBufsSlower(t *testing.T) {
	// With a high-communication configuration, 1 send buffer must not be
	// faster than 8 (Section VI-C).
	tl := bandit2Tiling(t, 4, []string{"s1"})
	cost := DefaultCostModel()
	cost.ElemWire = 2e-6 // strongly communication-bound
	cost.MsgLatency = 1e-3
	one, err := Simulate(tl, []int64{30}, Config{Nodes: 4, Cores: 4, SendBufs: 1, Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Simulate(tl, []int64{30}, Config{Nodes: 4, Cores: 4, SendBufs: 8, Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan < eight.Makespan*0.999 {
		t.Errorf("1 buffer (%v) faster than 8 buffers (%v)", one.Makespan, eight.Makespan)
	}
}

func TestPriorityPoliciesComplete(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	for _, p := range []engine.Priority{engine.ColumnMajor, engine.LevelSet, engine.FIFO} {
		res, err := Simulate(tl, []int64{16}, Config{Nodes: 2, Cores: 2, Priority: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.TilesExecuted != tl.TileCount([]int64{16}) {
			t.Errorf("%v: executed %d tiles", p, res.TilesExecuted)
		}
	}
}

func TestBusyTimeConservation(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1", "f1"})
	cfg := Config{Nodes: 3, Cores: 4}
	res, err := Simulate(tl, []int64{24}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var busy float64
	for _, b := range res.BusyTime {
		busy += b
	}
	// Busy time is at least the serial work (plus blocked-send time) and
	// at most cores * makespan.
	if busy < res.SerialWork*0.999 {
		t.Errorf("busy %v < serial work %v", busy, res.SerialWork)
	}
	if busy > float64(cfg.Nodes*cfg.Cores)*res.Makespan*1.001 {
		t.Errorf("busy %v exceeds capacity %v", busy, float64(cfg.Nodes*cfg.Cores)*res.Makespan)
	}
}

func TestDefaultsApplied(t *testing.T) {
	tl := bandit2Tiling(t, 6, nil)
	if _, err := Simulate(tl, []int64{12}, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestCostCacheConsistent(t *testing.T) {
	tl := bandit2Tiling(t, 4, []string{"s1"})
	cache := NewCostCache()
	cfg := Config{Nodes: 2, Cores: 4, Cache: cache}
	a, err := Simulate(tl, []int64{20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tl, []int64{20}, cfg) // warm cache
	if err != nil {
		t.Fatal(err)
	}
	nocache, err := Simulate(tl, []int64{20}, Config{Nodes: 2, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Makespan != nocache.Makespan {
		t.Errorf("cache changed results: %v %v %v", a.Makespan, b.Makespan, nocache.Makespan)
	}
	if len(cache.cells) == 0 {
		t.Error("cache unused")
	}
}

// TestReverseKeyStarvesPipeline: the naive key orientation must cost
// real time at multi-node scale (the EXPERIMENTS.md prio finding).
func TestReverseKeyStarvesPipeline(t *testing.T) {
	tl := bandit2Tiling(t, 6, []string{"s1", "f1"})
	N := int64(120)
	cache := NewCostCache()
	fwd, err := Simulate(tl, []int64{N}, Config{Nodes: 4, Cores: 24, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Simulate(tl, []int64{N}, Config{Nodes: 4, Cores: 24, Cache: cache, ReverseKey: true})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Makespan < fwd.Makespan*1.2 {
		t.Errorf("reversed key makespan %.5f not clearly worse than %.5f", rev.Makespan, fwd.Makespan)
	}
}
