// Package fm implements Fourier–Motzkin elimination (Section IV-D of the
// paper) over systems of linear inequalities with exact integer
// coefficients.
//
// Eliminating a variable pairs every lower bound on it with every upper
// bound, so the constraint count can grow as n^2/4 per step; as the paper
// notes, duplicate and redundant constraints must be removed after each
// iteration to keep the method practical. This package removes exact
// duplicates always, and optionally prunes redundant inequalities with an
// exact rational simplex (see dpgen/internal/simplex).
package fm

import (
	"fmt"

	"dpgen/internal/ints"
	"dpgen/internal/lin"
	"dpgen/internal/simplex"
)

// PruneLevel selects how aggressively redundant inequalities are removed
// after each elimination step.
type PruneLevel int

const (
	// PruneAuto uses simplex pruning only when the system grows beyond a
	// size threshold; the right default for program generation.
	PruneAuto PruneLevel = iota
	// PruneSyntactic removes exact duplicates only.
	PruneSyntactic
	// PruneSimplex always runs the full redundancy elimination.
	PruneSimplex
)

// autoThreshold is the constraint count beyond which PruneAuto switches
// from syntactic deduplication to full simplex-based pruning.
const autoThreshold = 24

// Options configures elimination.
type Options struct {
	Prune PruneLevel
}

// ErrInfeasible is returned when elimination derives a constant
// contradiction, i.e. the system has no integer (indeed no rational)
// points for any parameter values.
var ErrInfeasible = fmt.Errorf("fm: system is infeasible")

// Eliminate returns a system over the same space in which no inequality
// involves name. The integer points of the result contain the projection
// of the input's integer points (exactly its rational shadow).
func Eliminate(sys *lin.System, name string, opts Options) (*lin.System, error) {
	idx := sys.Space().Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("fm: Eliminate(%q): not in space %v", name, sys.Space())
	}
	var lower, upper []lin.Ineq // coef > 0 (lower bounds), coef < 0 (upper bounds)
	out := lin.NewSystem(sys.Space())
	for _, q := range sys.Ineqs {
		switch c := q.CoeffAt(idx); {
		case c > 0:
			lower = append(lower, q)
		case c < 0:
			upper = append(upper, q)
		default:
			out.Ineqs = append(out.Ineqs, q)
		}
	}
	for _, l := range lower {
		a := l.CoeffAt(idx) // > 0
		for _, u := range upper {
			b := -u.CoeffAt(idx) // > 0
			g := ints.GCD(a, b)
			// (b/g)*l + (a/g)*u has zero coefficient on name.
			comb := l.Expr.Scale(b / g).Add(u.Expr.Scale(a / g))
			q := lin.Ineq{Expr: comb}.Tighten()
			if q.IsContradiction() {
				return nil, ErrInfeasible
			}
			if q.IsTautology() {
				continue
			}
			out.Ineqs = append(out.Ineqs, q)
		}
	}
	if out.Dedup() {
		return nil, ErrInfeasible
	}
	prune(out, opts)
	return out, nil
}

// EliminateAll eliminates each name in order, pruning between steps.
func EliminateAll(sys *lin.System, names []string, opts Options) (*lin.System, error) {
	cur := sys
	var err error
	for _, n := range names {
		cur, err = Eliminate(cur, n, opts)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// Simplify removes duplicates and (per options) redundant inequalities
// without eliminating anything.
func Simplify(sys *lin.System, opts Options) (*lin.System, error) {
	out := sys.Clone()
	if out.Dedup() {
		return nil, ErrInfeasible
	}
	prune(out, opts)
	return out, nil
}

func prune(sys *lin.System, opts Options) {
	switch opts.Prune {
	case PruneSyntactic:
		return
	case PruneAuto:
		if len(sys.Ineqs) <= autoThreshold {
			return
		}
	}
	// An infeasible system must not be pruned: every inequality of an
	// infeasible system is vacuously implied by the rest, so the greedy
	// removal below would strip constraints until the leftovers are
	// feasible — and meaningless. Parametrically empty systems (e.g. a
	// pack slab for a tile offset no real tile index ever crosses) are
	// legitimate inputs here; left intact, their emptiness surfaces
	// correctly as empty loop bounds or a constant contradiction in a
	// later elimination step.
	if !simplex.Feasible(sys) {
		return
	}
	// Greedy removal: walk the list, dropping any inequality implied by
	// the others that remain.
	for i := 0; i < len(sys.Ineqs); {
		if simplex.Redundant(sys, i) {
			sys.Ineqs = append(sys.Ineqs[:i], sys.Ineqs[i+1:]...)
			continue
		}
		i++
	}
}
