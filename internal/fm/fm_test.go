package fm

import (
	"math/rand"
	"testing"

	"dpgen/internal/lin"
)

// chainSystem is the paper's Section IV-D example: x1 <= x2, x2 <= x3.
func chainSystem() *lin.System {
	s := lin.MustSpace(nil, []string{"x1", "x2", "x3"})
	sys := lin.NewSystem(s)
	sys.AddLE(lin.Var(s, "x1"), lin.Var(s, "x2"))
	sys.AddLE(lin.Var(s, "x2"), lin.Var(s, "x3"))
	return sys
}

func TestEliminateChain(t *testing.T) {
	sys := chainSystem()
	out, err := Eliminate(sys, "x2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ineqs) != 1 {
		t.Fatalf("got %d ineqs, want 1: %v", len(out.Ineqs), out)
	}
	q := out.Ineqs[0]
	// x3 - x1 >= 0
	if q.Coeff("x3") != 1 || q.Coeff("x1") != -1 || q.K != 0 {
		t.Errorf("wrong combined constraint: %v", q)
	}
}

func TestEliminateKeepsUninvolved(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x", "y"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "y"), lin.Zero(s))
	sys.AddGE(lin.Var(s, "x"), lin.Zero(s))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 5))
	out, err := Eliminate(sys, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.InvolvedIn("x") {
		t.Error("x survived elimination")
	}
	if !out.InvolvedIn("y") {
		t.Error("y >= 0 lost")
	}
}

func TestEliminateInfeasible(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 5))
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 3))
	if _, err := Eliminate(sys, "x", Options{}); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestEliminateAllBandit(t *testing.T) {
	// Projecting the full 2-arm bandit space onto the parameter leaves
	// exactly N >= 0.
	s := lin.MustSpace([]string{"N"}, []string{"s1", "f1", "s2", "f2"})
	sys := lin.NewSystem(s)
	sum := lin.Var(s, "s1").Add(lin.Var(s, "f1")).Add(lin.Var(s, "s2")).Add(lin.Var(s, "f2"))
	sys.AddLE(sum, lin.Var(s, "N"))
	for _, v := range s.Vars() {
		sys.AddGE(lin.Var(s, v), lin.Zero(s))
	}
	out, err := EliminateAll(sys, s.Vars(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ineqs) != 1 {
		t.Fatalf("got %d ineqs, want 1: %v", len(out.Ineqs), out)
	}
	q := out.Ineqs[0]
	if q.Coeff("N") != 1 || q.K != 0 {
		t.Errorf("projection onto N wrong: %v", q)
	}
}

func TestEliminateTightensDivisibility(t *testing.T) {
	// 2x >= y and 2x <= y imply after eliminating x: nothing on y beyond
	// existing bounds; but 2x >= y+1 and 2x <= y gives contradiction.
	s := lin.MustSpace(nil, []string{"y", "x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Term(s, 2, "x"), lin.Var(s, "y").AddConst(1))
	sys.AddLE(lin.Term(s, 2, "x"), lin.Var(s, "y"))
	if _, err := Eliminate(sys, "x", Options{}); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestEliminateUnknownName(t *testing.T) {
	sys := chainSystem()
	if _, err := Eliminate(sys, "zzz", Options{}); err == nil {
		t.Error("unknown name should error")
	}
}

func TestSimplexPruneShrinks(t *testing.T) {
	s := lin.MustSpace(nil, []string{"x"})
	sys := lin.NewSystem(s)
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 5))
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 3)) // redundant
	sys.AddGE(lin.Var(s, "x"), lin.Const(s, 1)) // redundant
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 9))
	out, err := Simplify(sys, Options{Prune: PruneSimplex})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ineqs) != 2 {
		t.Errorf("prune left %d ineqs, want 2: %v", len(out.Ineqs), out)
	}
}

// enumerate collects all integer points of sys over the box [-b, b]^d.
func enumerate(sys *lin.System, b int64) [][]int64 {
	n := sys.Space().N()
	var out [][]int64
	pt := make([]int64, n)
	var rec func(int)
	rec = func(k int) {
		if k == n {
			if sys.Contains(pt) {
				out = append(out, append([]int64(nil), pt...))
			}
			return
		}
		for v := -b; v <= b; v++ {
			pt[k] = v
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// Property: the FM shadow contains the projection of every integer point
// (soundness of projection), on random small systems.
func TestShadowContainsProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := lin.MustSpace(nil, []string{"a", "b", "c"})
	for trial := 0; trial < 50; trial++ {
		sys := lin.NewSystem(s)
		for i := 0; i < 4; i++ {
			e := lin.Const(s, int64(rng.Intn(9)-2))
			for _, v := range s.Vars() {
				e = e.Add(lin.Term(s, int64(rng.Intn(5)-2), v))
			}
			sys.Ineqs = append(sys.Ineqs, lin.Ineq{Expr: e})
		}
		// Keep the box bounded so enumeration terminates.
		for _, v := range s.Vars() {
			sys.AddGE(lin.Var(s, v), lin.Const(s, -3))
			sys.AddLE(lin.Var(s, v), lin.Const(s, 3))
		}
		out, err := Eliminate(sys, "c", Options{Prune: PruneSimplex})
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range enumerate(sys, 3) {
			if !out.Contains(pt) { // same space; c coefficient is zero in out
				t.Fatalf("trial %d: projected point %v not in shadow\nsys=%v\nout=%v",
					trial, pt, sys, out)
			}
		}
	}
}

// Property: for unimodular-style systems (coefficients in {-1,0,1}), the
// shadow is exact: every integer point of the shadow extends to an integer
// point of the original system.
func TestShadowExactForUnitCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := lin.MustSpace(nil, []string{"a", "b", "c"})
	for trial := 0; trial < 50; trial++ {
		sys := lin.NewSystem(s)
		for i := 0; i < 4; i++ {
			e := lin.Const(s, int64(rng.Intn(7)-1))
			for _, v := range s.Vars() {
				e = e.Add(lin.Term(s, int64(rng.Intn(3)-1), v))
			}
			sys.Ineqs = append(sys.Ineqs, lin.Ineq{Expr: e})
		}
		for _, v := range s.Vars() {
			sys.AddGE(lin.Var(s, v), lin.Const(s, -3))
			sys.AddLE(lin.Var(s, v), lin.Const(s, 3))
		}
		out, err := Eliminate(sys, "c", Options{Prune: PruneSimplex})
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Collect projected original points into a set keyed by (a,b).
		have := map[[2]int64]bool{}
		for _, pt := range enumerate(sys, 3) {
			have[[2]int64{pt[0], pt[1]}] = true
		}
		// Every shadow point with c fixed at any value... the shadow does
		// not involve c, so enumerate (a,b) and check extension exists.
		for a := int64(-3); a <= 3; a++ {
			for b := int64(-3); b <= 3; b++ {
				if out.Contains([]int64{a, b, 0}) && !have[[2]int64{a, b}] {
					t.Fatalf("trial %d: shadow point (%d,%d) has no integer extension\nsys=%v\nout=%v",
						trial, a, b, sys, out)
				}
			}
		}
	}
}

func TestAutoPruneTriggersOnLargeSystems(t *testing.T) {
	// Build a system with many parallel redundant constraints; PruneAuto
	// should collapse it once it crosses the threshold.
	s := lin.MustSpace(nil, []string{"x", "y"})
	sys := lin.NewSystem(s)
	for k := int64(0); k < 40; k++ {
		sys.AddGE(lin.Var(s, "x").Add(lin.Term(s, 1, "y")), lin.Const(s, -k))
	}
	sys.AddLE(lin.Var(s, "x"), lin.Const(s, 10))
	out, err := Simplify(sys, Options{Prune: PruneAuto})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ineqs) > 3 {
		t.Errorf("auto prune left %d constraints", len(out.Ineqs))
	}
}
