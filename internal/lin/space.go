// Package lin implements the symbolic linear algebra that underlies the
// program generator: variable spaces, affine expressions with exact int64
// coefficients, linear inequalities of the form expr >= 0, and systems of
// such inequalities over parametric integer spaces.
//
// A Space is an ordered list of names. The first NumParams names are
// problem parameters (such as N for the bandit problems); the remaining
// names are iteration variables. All names range over the integers.
// Inequality systems over a Space describe parametric polytopes — the
// iteration spaces of Section IV-E of the paper.
package lin

import (
	"fmt"
	"strings"
)

// Space is an ordered set of integer-valued names: parameters first,
// then iteration variables. Spaces are immutable once created.
type Space struct {
	names   []string
	index   map[string]int
	nparams int
}

// NewSpace creates a space with the given parameters and variables.
// Names must be non-empty and pairwise distinct.
func NewSpace(params, vars []string) (*Space, error) {
	s := &Space{
		names:   make([]string, 0, len(params)+len(vars)),
		index:   make(map[string]int, len(params)+len(vars)),
		nparams: len(params),
	}
	for _, n := range append(append([]string{}, params...), vars...) {
		if n == "" {
			return nil, fmt.Errorf("lin: empty name in space")
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("lin: duplicate name %q in space", n)
		}
		s.index[n] = len(s.names)
		s.names = append(s.names, n)
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; for tests and fixed setups.
func MustSpace(params, vars []string) *Space {
	s, err := NewSpace(params, vars)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the total number of names (parameters plus variables).
func (s *Space) N() int { return len(s.names) }

// NumParams returns the number of parameters.
func (s *Space) NumParams() int { return s.nparams }

// NumVars returns the number of iteration variables.
func (s *Space) NumVars() int { return len(s.names) - s.nparams }

// Names returns a copy of all names in order.
func (s *Space) Names() []string { return append([]string(nil), s.names...) }

// Params returns a copy of the parameter names.
func (s *Space) Params() []string { return append([]string(nil), s.names[:s.nparams]...) }

// Vars returns a copy of the variable names.
func (s *Space) Vars() []string { return append([]string(nil), s.names[s.nparams:]...) }

// Name returns the name at index i.
func (s *Space) Name(i int) string { return s.names[i] }

// Index returns the position of name, or -1 if absent.
func (s *Space) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the space contains name.
func (s *Space) Has(name string) bool { _, ok := s.index[name]; return ok }

// IsParam reports whether index i denotes a parameter.
func (s *Space) IsParam(i int) bool { return i < s.nparams }

// ExtendVars returns a new space with extra variables appended after the
// existing ones. Parameters are unchanged.
func (s *Space) ExtendVars(extra ...string) (*Space, error) {
	return NewSpace(s.names[:s.nparams], append(s.Vars(), extra...))
}

// WithParams returns a new space over the same names where the set of
// names treated as parameters is exactly params (which must be a prefix-
// reorderable subset of this space's names). The returned space orders
// params first, then the remaining names in their original order.
func (s *Space) WithParams(params []string) (*Space, error) {
	isP := make(map[string]bool, len(params))
	for _, p := range params {
		if !s.Has(p) {
			return nil, fmt.Errorf("lin: WithParams: %q not in space", p)
		}
		isP[p] = true
	}
	var vars []string
	for _, n := range s.names {
		if !isP[n] {
			vars = append(vars, n)
		}
	}
	return NewSpace(params, vars)
}

// Equal reports whether two spaces have identical names, order and
// parameter split.
func (s *Space) Equal(o *Space) bool {
	if s == o {
		return true
	}
	if s.nparams != o.nparams || len(s.names) != len(o.names) {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

func (s *Space) String() string {
	return fmt.Sprintf("[%s | %s]",
		strings.Join(s.names[:s.nparams], ","),
		strings.Join(s.names[s.nparams:], ","))
}
