package lin

import (
	"strings"
	"testing"
	"testing/quick"
)

func banditSpace(t testing.TB) *Space {
	t.Helper()
	s, err := NewSpace([]string{"N"}, []string{"s1", "f1", "s2", "f2"})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace([]string{"N"}, []string{"N"}); err == nil {
		t.Error("duplicate name across params/vars should fail")
	}
	if _, err := NewSpace(nil, []string{"x", "x"}); err == nil {
		t.Error("duplicate var should fail")
	}
	if _, err := NewSpace(nil, []string{""}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSpaceAccessors(t *testing.T) {
	s := banditSpace(t)
	if s.N() != 5 || s.NumParams() != 1 || s.NumVars() != 4 {
		t.Fatalf("sizes wrong: N=%d params=%d vars=%d", s.N(), s.NumParams(), s.NumVars())
	}
	if s.Index("s2") != 3 || s.Index("nope") != -1 {
		t.Error("Index wrong")
	}
	if !s.IsParam(0) || s.IsParam(1) {
		t.Error("IsParam wrong")
	}
	if got := s.Vars(); len(got) != 4 || got[0] != "s1" {
		t.Errorf("Vars = %v", got)
	}
}

func TestExtendVars(t *testing.T) {
	s := banditSpace(t)
	s2, err := s.ExtendVars("t1", "i1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != 7 || s2.NumParams() != 1 {
		t.Fatalf("extended space wrong: %v", s2)
	}
	// Lifting preserves coefficients by name.
	e := Var(s, "s1").Add(Term(s, 3, "N")).AddConst(7)
	le := e.Lift(s2)
	if le.Coeff("s1") != 1 || le.Coeff("N") != 3 || le.K != 7 || le.Coeff("t1") != 0 {
		t.Errorf("Lift wrong: %v", le)
	}
}

func TestWithParams(t *testing.T) {
	s := banditSpace(t)
	s2, err := s.WithParams([]string{"N", "s1", "f1"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumParams() != 3 || s2.NumVars() != 2 {
		t.Fatalf("WithParams wrong: %v", s2)
	}
	if s2.Index("s2") != 3 {
		t.Errorf("reordered index wrong: %d", s2.Index("s2"))
	}
	if _, err := s.WithParams([]string{"zz"}); err == nil {
		t.Error("unknown param should fail")
	}
}

func TestExprArithmetic(t *testing.T) {
	s := banditSpace(t)
	// e = 2*s1 - f1 + 5
	e := Term(s, 2, "s1").Sub(Var(s, "f1")).AddConst(5)
	if e.Coeff("s1") != 2 || e.Coeff("f1") != -1 || e.K != 5 {
		t.Fatalf("build wrong: %v", e)
	}
	// N=10, s1=3, f1=1, s2=0, f2=0 -> 2*3 - 1 + 5 = 10
	if got := e.Eval([]int64{10, 3, 1, 0, 0}); got != 10 {
		t.Errorf("Eval = %d, want 10", got)
	}
	neg := e.Neg()
	if neg.Coeff("s1") != -2 || neg.K != -5 {
		t.Errorf("Neg wrong: %v", neg)
	}
	sc := e.Scale(3)
	if sc.Coeff("s1") != 6 || sc.K != 15 {
		t.Errorf("Scale wrong: %v", sc)
	}
}

func TestExprSubst(t *testing.T) {
	s := MustSpace([]string{"N"}, []string{"x", "i", "t"})
	// x := i + 4*t  applied to  e = 2*x + N - 1
	e := Term(s, 2, "x").Add(Var(s, "N")).AddConst(-1)
	rep := Var(s, "i").Add(Term(s, 4, "t"))
	got := e.Subst("x", rep)
	if got.Coeff("x") != 0 || got.Coeff("i") != 2 || got.Coeff("t") != 8 ||
		got.Coeff("N") != 1 || got.K != -1 {
		t.Errorf("Subst wrong: %v", got)
	}
	// Substituting an uninvolved name is a no-op.
	e2 := Var(s, "N")
	if !e2.Subst("x", rep).Equal(e2) {
		t.Error("Subst of absent name changed expr")
	}
}

func TestExprEvalPartial(t *testing.T) {
	s := banditSpace(t)
	e := Var(s, "N").Sub(Var(s, "s1")).Sub(Var(s, "f1"))
	r := e.EvalPartial(map[string]int64{"N": 20, "s1": 3})
	if r.K != 17 || r.Coeff("N") != 0 || r.Coeff("f1") != -1 {
		t.Errorf("EvalPartial wrong: %v", r)
	}
}

func TestExprString(t *testing.T) {
	s := banditSpace(t)
	e := Term(s, 2, "s1").Sub(Var(s, "f1")).AddConst(-3)
	if got := e.String(); got != "2*s1 - f1 - 3" {
		t.Errorf("String = %q", got)
	}
	if got := Const(s, 0).String(); got != "0" {
		t.Errorf("zero String = %q", got)
	}
	if got := Var(s, "N").Neg().String(); got != "-N" {
		t.Errorf("String = %q", got)
	}
}

func TestIneqTighten(t *testing.T) {
	s := MustSpace(nil, []string{"x"})
	// 2x + 3 >= 0  ==>  x + 1 >= 0  (floor(3/2) = 1)
	q := Ineq{Term(s, 2, "x").AddConst(3)}.Tighten()
	if q.Coeff("x") != 1 || q.K != 1 {
		t.Errorf("Tighten wrong: %v", q)
	}
	// -2x + 3 >= 0  ==>  -x + 1 >= 0
	q2 := Ineq{Term(s, -2, "x").AddConst(3)}.Tighten()
	if q2.Coeff("x") != -1 || q2.K != 1 {
		t.Errorf("Tighten wrong: %v", q2)
	}
	// constant stays
	q3 := Ineq{Const(s, -5)}
	if !q3.Tighten().IsContradiction() {
		t.Error("constant contradiction lost")
	}
}

// Property: tightening never changes the integer solution set (checked on
// single-variable inequalities over a sampled range).
func TestTightenPreservesIntegerSolutions(t *testing.T) {
	s := MustSpace(nil, []string{"x"})
	f := func(a int8, k int16) bool {
		if a == 0 {
			return true
		}
		q := Ineq{Term(s, int64(a), "x").AddConst(int64(k))}
		tq := q.Tighten()
		for x := int64(-100); x <= 100; x++ {
			if q.Holds([]int64{x}) != tq.Holds([]int64{x}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSystemBanditContains(t *testing.T) {
	s := banditSpace(t)
	sys := banditSystem(s)
	if !sys.Contains([]int64{10, 3, 2, 1, 0}) {
		t.Error("interior point rejected")
	}
	if !sys.Contains([]int64{10, 10, 0, 0, 0}) {
		t.Error("boundary point rejected")
	}
	if sys.Contains([]int64{10, 11, 0, 0, 0}) {
		t.Error("outside point accepted (sum > N)")
	}
	if sys.Contains([]int64{10, -1, 0, 0, 0}) {
		t.Error("negative point accepted")
	}
}

// banditSystem builds the 2-arm bandit iteration space of Section II:
// s1+f1+s2+f2 <= N, all vars >= 0.
func banditSystem(s *Space) *System {
	sum := Var(s, "s1").Add(Var(s, "f1")).Add(Var(s, "s2")).Add(Var(s, "f2"))
	sys := NewSystem(s)
	sys.AddLE(sum, Var(s, "N"))
	for _, v := range []string{"s1", "f1", "s2", "f2"} {
		sys.AddGE(Var(s, v), Zero(s))
	}
	return sys
}

func TestSystemDedup(t *testing.T) {
	s := MustSpace(nil, []string{"x"})
	sys := NewSystem(s)
	sys.AddGE(Var(s, "x"), Zero(s))
	sys.AddGE(Var(s, "x"), Zero(s))
	sys.AddGE(Term(s, 2, "x"), Zero(s)) // tightens to same as above
	sys.Add(Ineq{Const(s, 5)})          // tautology, dropped at Add
	if c := sys.Dedup(); c {
		t.Error("unexpected contradiction")
	}
	if len(sys.Ineqs) != 1 {
		t.Errorf("Dedup left %d ineqs, want 1: %v", len(sys.Ineqs), sys)
	}
	sys.Add(Ineq{Const(s, -1)})
	if c := sys.Dedup(); !c {
		t.Error("contradiction not detected")
	}
}

func TestSystemSubstAndProject(t *testing.T) {
	s := MustSpace([]string{"N"}, []string{"x", "i", "t"})
	sys := NewSystem(s)
	sys.AddLE(Var(s, "x"), Var(s, "N"))
	sys.AddGE(Var(s, "x"), Zero(s))
	sub := sys.Subst("x", Var(s, "i").Add(Term(s, 4, "t")))
	if sub.InvolvedIn("x") {
		t.Error("x still involved after Subst")
	}
	small := MustSpace([]string{"N"}, []string{"i", "t"})
	proj, err := sub.Project(small)
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if proj.Space().N() != 3 {
		t.Errorf("projected space wrong: %v", proj.Space())
	}
	if _, err := sys.Project(small); err == nil {
		t.Error("Project with live name should fail")
	}
}

func TestSystemString(t *testing.T) {
	s := MustSpace(nil, []string{"x", "y"})
	sys := NewSystem(s)
	sys.AddGE(Var(s, "x"), Zero(s))
	sys.AddLE(Var(s, "y"), Const(s, 3))
	got := sys.String()
	if !strings.Contains(got, "x >= 0") || !strings.Contains(got, "-y + 3 >= 0") {
		t.Errorf("String = %q", got)
	}
}

func TestLiftProjectRoundTrip(t *testing.T) {
	small := MustSpace([]string{"N"}, []string{"x"})
	big, _ := small.ExtendVars("y", "z")
	e := Term(small, 3, "x").Add(Var(small, "N")).AddConst(-2)
	back, err := e.Lift(big).Project(small)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(e) {
		t.Errorf("round trip changed expr: %v vs %v", back, e)
	}
}

func TestSystemCloneIndependence(t *testing.T) {
	s := MustSpace(nil, []string{"x"})
	sys := NewSystem(s)
	sys.AddGE(Var(s, "x"), Zero(s))
	cl := sys.Clone()
	cl.AddLE(Var(s, "x"), Const(s, 5))
	if len(sys.Ineqs) != 1 || len(cl.Ineqs) != 2 {
		t.Errorf("clone not independent: %d vs %d", len(sys.Ineqs), len(cl.Ineqs))
	}
	cl.Ineqs[0].Coef[0] = 99
	if sys.Ineqs[0].Coef[0] == 99 {
		t.Error("clone shares coefficient storage")
	}
}

func TestSystemLiftAndAddEq(t *testing.T) {
	small := MustSpace([]string{"N"}, []string{"x"})
	sys := NewSystem(small)
	sys.AddEq(Var(small, "x"), Const(small, 3))
	if len(sys.Ineqs) != 2 {
		t.Fatalf("AddEq gave %d ineqs", len(sys.Ineqs))
	}
	if !sys.Contains([]int64{9, 3}) || sys.Contains([]int64{9, 4}) {
		t.Error("equality semantics wrong")
	}
	big, _ := small.ExtendVars("y")
	lifted := sys.Lift(big)
	if !lifted.Contains([]int64{9, 3, 77}) {
		t.Error("lifted system rejects valid point")
	}
}

func TestSpaceAccessorCopies(t *testing.T) {
	s := MustSpace([]string{"N"}, []string{"x", "y"})
	names := s.Names()
	names[0] = "corrupted"
	if s.Name(0) != "N" {
		t.Error("Names() aliases internal storage")
	}
	ps := s.Params()
	ps[0] = "zz"
	if s.Name(0) != "N" {
		t.Error("Params() aliases internal storage")
	}
	if s.NumVars() != 2 {
		t.Error("NumVars wrong")
	}
}

func TestSpaceEqual(t *testing.T) {
	a := MustSpace([]string{"N"}, []string{"x"})
	b := MustSpace([]string{"N"}, []string{"x"})
	c := MustSpace([]string{"N"}, []string{"y"})
	d := MustSpace(nil, []string{"N", "x"})
	if !a.Equal(b) || !a.Equal(a) {
		t.Error("equal spaces not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different spaces Equal")
	}
}

func TestExprEqualAndCoeffAt(t *testing.T) {
	s := MustSpace(nil, []string{"x", "y"})
	a := Term(s, 2, "x").AddConst(1)
	b := Term(s, 2, "x").AddConst(1)
	c := Term(s, 2, "x").AddConst(2)
	d := Term(s, 2, "y").AddConst(1)
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Expr.Equal wrong")
	}
	if a.CoeffAt(0) != 2 || a.CoeffAt(1) != 0 {
		t.Error("CoeffAt wrong")
	}
	if a.Coeff("zz") != 0 {
		t.Error("Coeff of unknown name should be 0")
	}
}

func TestMixedSpacePanics(t *testing.T) {
	a := MustSpace(nil, []string{"x"})
	b := MustSpace(nil, []string{"y"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mixed spaces")
		}
	}()
	Var(a, "x").Add(Var(b, "y"))
}
