package lin

import (
	"fmt"
	"strings"

	"dpgen/internal/ints"
)

// Expr is an affine expression sum(Coef[i]*name[i]) + K over a Space.
// The zero value is not usable; construct with Zero, Var, Const, or the
// arithmetic methods, all of which return fresh values (Exprs are treated
// as immutable).
type Expr struct {
	space *Space
	Coef  []int64
	K     int64
}

// Zero returns the zero expression over s.
func Zero(s *Space) Expr { return Expr{space: s, Coef: make([]int64, s.N())} }

// Const returns the constant expression k over s.
func Const(s *Space, k int64) Expr {
	e := Zero(s)
	e.K = k
	return e
}

// Var returns the expression consisting of the single name with
// coefficient 1. It panics if the name is not in the space.
func Var(s *Space, name string) Expr {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("lin: Var(%q): not in space %v", name, s))
	}
	e := Zero(s)
	e.Coef[i] = 1
	return e
}

// Term returns c*name over s.
func Term(s *Space, c int64, name string) Expr { return Var(s, name).Scale(c) }

// Space returns the space the expression is defined over.
func (e Expr) Space() *Space { return e.space }

// Clone returns a deep copy.
func (e Expr) Clone() Expr {
	return Expr{space: e.space, Coef: append([]int64(nil), e.Coef...), K: e.K}
}

// Coeff returns the coefficient of name (0 if the name is absent).
func (e Expr) Coeff(name string) int64 {
	i := e.space.Index(name)
	if i < 0 {
		return 0
	}
	return e.Coef[i]
}

// CoeffAt returns the coefficient at space index i.
func (e Expr) CoeffAt(i int) int64 { return e.Coef[i] }

// IsConst reports whether all coefficients are zero.
func (e Expr) IsConst() bool {
	for _, c := range e.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add returns e + o. Both must share a space.
func (e Expr) Add(o Expr) Expr {
	e.mustShare(o)
	r := e.Clone()
	for i, c := range o.Coef {
		r.Coef[i] = ints.AddChecked(r.Coef[i], c)
	}
	r.K = ints.AddChecked(r.K, o.K)
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// Scale returns c*e.
func (e Expr) Scale(c int64) Expr {
	r := e.Clone()
	for i := range r.Coef {
		r.Coef[i] = ints.MulChecked(r.Coef[i], c)
	}
	r.K = ints.MulChecked(r.K, c)
	return r
}

// AddConst returns e + k.
func (e Expr) AddConst(k int64) Expr {
	r := e.Clone()
	r.K = ints.AddChecked(r.K, k)
	return r
}

// Subst returns the expression obtained by replacing name with the
// expression rep (which must share e's space). The coefficient of name in
// the result is zero.
func (e Expr) Subst(name string, rep Expr) Expr {
	e.mustShare(rep)
	i := e.space.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("lin: Subst(%q): not in space", name))
	}
	c := e.Coef[i]
	if c == 0 {
		return e.Clone()
	}
	r := e.Clone()
	r.Coef[i] = 0
	return r.Add(rep.Scale(c))
}

// Lift maps the expression into the (super)space to: every name of e's
// space must exist in to. Coefficients move by name.
func (e Expr) Lift(to *Space) Expr {
	r := Zero(to)
	r.K = e.K
	for i, c := range e.Coef {
		if c == 0 {
			continue
		}
		j := to.Index(e.space.Name(i))
		if j < 0 {
			panic(fmt.Sprintf("lin: Lift: name %q missing from target space", e.space.Name(i)))
		}
		r.Coef[j] = c
	}
	return r
}

// Project maps the expression into the (sub)space to. Names absent from
// to must have zero coefficient in e.
func (e Expr) Project(to *Space) (Expr, error) {
	r := Zero(to)
	r.K = e.K
	for i, c := range e.Coef {
		if c == 0 {
			continue
		}
		j := to.Index(e.space.Name(i))
		if j < 0 {
			return Expr{}, fmt.Errorf("lin: Project: nonzero coefficient on %q not in target space", e.space.Name(i))
		}
		r.Coef[j] = c
	}
	return r, nil
}

// Eval evaluates the expression with vals[i] the value of name i.
// len(vals) must equal the space size.
func (e Expr) Eval(vals []int64) int64 {
	if len(vals) != len(e.Coef) {
		panic(fmt.Sprintf("lin: Eval: got %d values for space of size %d", len(vals), len(e.Coef)))
	}
	acc := e.K
	for i, c := range e.Coef {
		if c != 0 {
			acc = ints.AddChecked(acc, ints.MulChecked(c, vals[i]))
		}
	}
	return acc
}

// EvalPartial substitutes concrete values for a prefix of the space
// (typically the parameters) and returns the residual expression over the
// same space with those coefficients folded into the constant.
func (e Expr) EvalPartial(vals map[string]int64) Expr {
	r := e.Clone()
	for name, v := range vals {
		i := r.space.Index(name)
		if i < 0 || r.Coef[i] == 0 {
			continue
		}
		r.K = ints.AddChecked(r.K, ints.MulChecked(r.Coef[i], v))
		r.Coef[i] = 0
	}
	return r
}

// ContentGCD returns the gcd of all coefficients (excluding the constant),
// or 0 if every coefficient is zero.
func (e Expr) ContentGCD() int64 {
	var g int64
	for _, c := range e.Coef {
		g = ints.GCD(g, c)
	}
	return g
}

// Equal reports exact structural equality.
func (e Expr) Equal(o Expr) bool {
	if !e.space.Equal(o.space) || e.K != o.K {
		return false
	}
	for i, c := range e.Coef {
		if o.Coef[i] != c {
			return false
		}
	}
	return true
}

// Key returns a canonical comparable key for deduplication within one space.
func (e Expr) Key() string {
	var b strings.Builder
	for _, c := range e.Coef {
		fmt.Fprintf(&b, "%d,", c)
	}
	fmt.Fprintf(&b, "|%d", e.K)
	return b.String()
}

func (e Expr) String() string {
	var b strings.Builder
	first := true
	for i, c := range e.Coef {
		if c == 0 {
			continue
		}
		name := e.space.Name(i)
		switch {
		case first && c == 1:
			b.WriteString(name)
		case first && c == -1:
			b.WriteString("-" + name)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString(" + " + name)
		case c == -1:
			b.WriteString(" - " + name)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, name)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, name)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", e.K)
	case e.K > 0:
		fmt.Fprintf(&b, " + %d", e.K)
	case e.K < 0:
		fmt.Fprintf(&b, " - %d", -e.K)
	}
	return b.String()
}

func (e Expr) mustShare(o Expr) {
	if !e.space.Equal(o.space) {
		panic(fmt.Sprintf("lin: mixed spaces %v and %v", e.space, o.space))
	}
}
