package lin

import (
	"fmt"
	"sort"
	"strings"

	"dpgen/internal/ints"
)

// Ineq is the linear inequality Expr >= 0 over integer points.
type Ineq struct {
	Expr
}

// GE constructs the inequality a >= b, i.e. (a - b) >= 0.
func GE(a, b Expr) Ineq { return Ineq{a.Sub(b)} }

// LE constructs the inequality a <= b, i.e. (b - a) >= 0.
func LE(a, b Expr) Ineq { return Ineq{b.Sub(a)} }

// Tighten normalizes the inequality for integer points: dividing all
// coefficients by their gcd g and flooring the constant, since
// g*(a.z) + K >= 0 with integral a.z is equivalent to
// a.z + floor(K/g) >= 0. A constant inequality is returned unchanged.
func (q Ineq) Tighten() Ineq {
	g := q.ContentGCD()
	if g == 0 || g == 1 {
		return q
	}
	r := q.Clone()
	for i := range r.Coef {
		r.Coef[i] /= g
	}
	r.K = ints.FloorDiv(r.K, g)
	return Ineq{r}
}

// Holds reports whether the inequality holds at the given point.
func (q Ineq) Holds(vals []int64) bool { return q.Eval(vals) >= 0 }

// IsTautology reports whether the inequality is a constant true (K >= 0
// with no variables).
func (q Ineq) IsTautology() bool { return q.IsConst() && q.K >= 0 }

// IsContradiction reports whether the inequality is constant false.
func (q Ineq) IsContradiction() bool { return q.IsConst() && q.K < 0 }

func (q Ineq) String() string { return q.Expr.String() + " >= 0" }

// System is a conjunction of linear inequalities over one space: the
// integer points of a parametric polyhedron.
type System struct {
	space *Space
	Ineqs []Ineq
}

// NewSystem creates an empty system over s.
func NewSystem(s *Space) *System { return &System{space: s} }

// Space returns the system's space.
func (sys *System) Space() *Space { return sys.space }

// Clone returns a deep copy of the system.
func (sys *System) Clone() *System {
	out := NewSystem(sys.space)
	out.Ineqs = make([]Ineq, len(sys.Ineqs))
	for i, q := range sys.Ineqs {
		out.Ineqs[i] = Ineq{q.Clone()}
	}
	return out
}

// Add appends inequalities (tightened); tautologies are dropped and
// duplicates removed lazily by Dedup.
func (sys *System) Add(qs ...Ineq) *System {
	for _, q := range qs {
		if !q.Space().Equal(sys.space) {
			panic("lin: System.Add: inequality from different space")
		}
		t := q.Tighten()
		if t.IsTautology() {
			continue
		}
		sys.Ineqs = append(sys.Ineqs, t)
	}
	return sys
}

// AddGE appends a >= b.
func (sys *System) AddGE(a, b Expr) *System { return sys.Add(GE(a, b)) }

// AddLE appends a <= b.
func (sys *System) AddLE(a, b Expr) *System { return sys.Add(LE(a, b)) }

// AddEq appends a == b as a pair of inequalities.
func (sys *System) AddEq(a, b Expr) *System { return sys.Add(GE(a, b), LE(a, b)) }

// Dedup removes duplicate inequalities (after tightening) and constant
// tautologies. It reports whether a constant contradiction is present, in
// which case the system is infeasible for every parameter value.
func (sys *System) Dedup() (contradiction bool) {
	seen := make(map[string]bool, len(sys.Ineqs))
	out := sys.Ineqs[:0]
	for _, q := range sys.Ineqs {
		if q.IsTautology() {
			continue
		}
		if q.IsContradiction() {
			contradiction = true
			continue
		}
		k := q.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	sys.Ineqs = out
	return contradiction
}

// Contains reports whether the point satisfies every inequality.
func (sys *System) Contains(vals []int64) bool {
	for _, q := range sys.Ineqs {
		if !q.Holds(vals) {
			return false
		}
	}
	return true
}

// Lift returns the system expressed over the superspace to.
func (sys *System) Lift(to *Space) *System {
	out := NewSystem(to)
	for _, q := range sys.Ineqs {
		out.Ineqs = append(out.Ineqs, Ineq{q.Expr.Lift(to)})
	}
	return out
}

// Project returns the system expressed over the subspace to. Every
// inequality must have zero coefficients on names missing from to.
func (sys *System) Project(to *Space) (*System, error) {
	out := NewSystem(to)
	for _, q := range sys.Ineqs {
		e, err := q.Expr.Project(to)
		if err != nil {
			return nil, err
		}
		out.Ineqs = append(out.Ineqs, Ineq{e})
	}
	return out, nil
}

// Subst replaces name with rep in every inequality.
func (sys *System) Subst(name string, rep Expr) *System {
	out := NewSystem(sys.space)
	for _, q := range sys.Ineqs {
		out.Ineqs = append(out.Ineqs, Ineq{q.Expr.Subst(name, rep)})
	}
	return out
}

// InvolvedIn reports whether any inequality has a nonzero coefficient on name.
func (sys *System) InvolvedIn(name string) bool {
	i := sys.space.Index(name)
	if i < 0 {
		return false
	}
	for _, q := range sys.Ineqs {
		if q.Coef[i] != 0 {
			return true
		}
	}
	return false
}

// Sorted returns the inequalities in a canonical order (for stable output
// and golden tests).
func (sys *System) Sorted() []Ineq {
	out := append([]Ineq(nil), sys.Ineqs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

func (sys *System) String() string {
	var parts []string
	for _, q := range sys.Sorted() {
		parts = append(parts, q.String())
	}
	return fmt.Sprintf("{%s : %s}", sys.space, strings.Join(parts, "; "))
}
