// A small concurrency-safe fixed-bucket histogram, used for the
// cross-rank edge-latency distribution (dp_edge_latency_seconds). The
// TCP transport observes one sample per received DATA frame from its
// reader goroutines, and the live /metrics endpoint snapshots it while
// the run is in flight — hence the atomic counters.

package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// DefaultLatencyBounds are the bucket upper bounds (seconds) used for
// edge-latency histograms: 10µs to ~2.6s in ×4 steps, a range that
// covers loopback pipes to congested WAN links.
var DefaultLatencyBounds = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3, 163.84e-3, 655.36e-3, 2.62144,
}

// Histogram is a concurrency-safe histogram of durations with fixed
// bucket bounds in seconds. The zero value is not usable; create one
// with NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds, seconds, ascending
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds in seconds (DefaultLatencyBounds when none are given).
// An implicit +Inf bucket is always present.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ObserveNs records one sample of ns nanoseconds (negative samples are
// clamped to zero: clock-offset error can make a fast cross-rank edge
// appear to arrive before it was sent).
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	sec := float64(ns) / 1e9
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Snapshot returns a consistent-enough copy for exposition (buckets are
// read one by one; a scrape during heavy traffic can be off by the few
// samples in flight, which Prometheus semantics tolerate).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumSeconds = float64(h.sumNs.Load()) / 1e9
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, also the form
// histograms take in JSON stats and merged-trace reports.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds; Counts has one
	// extra entry for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Count and SumSeconds are the total sample count and sum.
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sumSeconds"`
}

// Merge adds another snapshot with identical bounds into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(o.Bounds) != len(s.Bounds) || len(o.Counts) != len(s.Counts) {
		return fmt.Errorf("obs: merging histograms with different bucket layouts")
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.SumSeconds += o.SumSeconds
	return nil
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1) in
// seconds: the upper bound of the bucket the quantile falls in (+Inf
// reported as the largest finite bound). Zero when the histogram is
// empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// WritePrometheus writes the snapshot as one Prometheus histogram
// family. labels, when non-empty, is a literal label body without
// braces (e.g. `rank="1"`).
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, help, labels string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	bucketLabels := `le=`
	if labels != "" {
		bucketLabels = labels + `,le=`
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = promNum(s.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%q} %d\n", name, bucketLabels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, plain, promNum(s.SumSeconds)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, plain, s.Count)
	return err
}
