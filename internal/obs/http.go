// Live telemetry endpoints. Each rank of a distributed run (and the
// supervisor itself) can serve /metrics in the Prometheus text format
// plus the standard /debug/pprof handlers on a loopback or cluster
// address, so a run can be inspected while it is in flight — the same
// surface the future multi-tenant dpserve will scrape per tenant.
//
// The metrics callback must only read concurrency-safe state (atomic
// transport counters, histogram snapshots): trace ring buffers are
// single-writer and must not be snapshotted mid-run.

package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves live observability endpoints for one process.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (host:port; port 0 picks a free
// one) with /metrics, /debug/pprof/* and /healthz. metrics is invoked
// per scrape to write a Prometheus text snapshot; it must be safe to
// call concurrently with the run.
func Serve(addr string, metrics func(w io.Writer) error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if metrics == nil {
			return
		}
		if err := metrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
