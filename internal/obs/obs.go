// Package obs is the observability layer of the hybrid runtime: a
// low-overhead tile-lifecycle tracer, aggregate runtime metrics, and a
// critical-path analyzer over recorded traces.
//
// The paper's evaluation (Figures 4, 6 and 7; the Section VI-C tile and
// buffer sweeps) is entirely about where time and memory go inside the
// generated programs. End-of-run counters say *that* a configuration is
// slow; the tracer says *why*: per-worker timelines of tile readiness,
// unpack, kernel, pack, edge traffic, send-buffer stalls and idle gaps,
// exportable as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and as a Prometheus text-exposition snapshot.
//
// Both the real runtime (dpgen/internal/engine) and the cluster
// simulator (dpgen/internal/simsched) emit the same event schema, so a
// real run and its modeled counterpart can be diffed timeline to
// timeline.
//
// Design constraints:
//
//   - When no Tracer is attached, the instrumentation in the runtime
//     must compile down to one nil check per event site.
//   - Each (node, lane) timeline is written by a single goroutine, so
//     Lane.Emit takes no locks: it writes into a fixed-capacity ring
//     buffer. Lane registration (once per goroutine) takes a mutex.
//   - Timestamps are int64 nanoseconds from the trace origin: the
//     tracer's creation time for real runs, t=0 for simulated runs.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind identifies a tile-lifecycle event.
type Kind uint8

const (
	// KReady marks the instant a tile's last dependence edge arrived
	// and it entered the ready queue.
	KReady Kind = iota
	// KPop marks the instant a worker claimed the tile for execution.
	KPop
	// KUnpack spans unpacking the tile's received edges into the tile
	// buffer's ghost shell.
	KUnpack
	// KKernel spans the kernel execution over the tile's cells.
	KKernel
	// KPack spans packing and delivering the tile's outgoing edges
	// (including any send time).
	KPack
	// KSend spans one remote edge send; Val is the element count.
	KSend
	// KRecv marks one remote edge arrival; Val is the element count.
	KRecv
	// KStall spans time a worker was blocked in a send on exhausted
	// send (or destination receive) buffers — the Section VI-C effect.
	KStall
	// KIdle spans time a worker waited with no ready tile.
	KIdle
	// KPending is a counter sample of the node's buffered pending
	// edges (the Figure 4 quantity), taken at tile completion; Val is
	// the count.
	KPending
	// KCheckpoint spans writing one fault-tolerance checkpoint; Val is
	// the encoded size in bytes.
	KCheckpoint
	// KRecover spans restoring a rank's state from a checkpoint at
	// resume; Val is the number of buffered edges replayed.
	KRecover
	// KHeartbeatMiss samples the transport's cumulative heartbeat-miss
	// count (peers silent past one heartbeat interval); Val is the
	// count.
	KHeartbeatMiss
	// KPeerRestart samples the transport's cumulative count of peers
	// that died and successfully rejoined; Val is the count.
	KPeerRestart
	// KPeerDown marks the instant the transport declared a peer dead
	// (heartbeat silence past the miss threshold or a hard connection
	// error); Val is the peer rank.
	KPeerDown
	// KPark marks one send parked against a down peer for later replay;
	// Val is the peer rank.
	KPark
	// KRejoin marks the instant a restarted peer re-established its
	// connection; Val is the peer rank.
	KRejoin
	// KReplay marks the completion of retained-frame replay to a
	// rejoined peer; Val is the number of frames replayed.
	KReplay
	// KQueueDepth is a counter sample of the node's ready-queue depth
	// (tiles queued across the worker shards), taken at tile
	// completion; Val is the depth. KPop's Val distinguishes how the
	// queues drain: 1 for a tile stolen from another worker's shard, 0
	// for a local pop.
	KQueueDepth
	// KEpoch marks a membership view change taking effect on this node
	// (elastic runs); Val is the new epoch number.
	KEpoch
	// KMigrateOut marks the completion of one outgoing migration blob —
	// unexecuted tiles this node no longer owns, shipped to their new
	// owner; Val is the number of tiles in the blob.
	KMigrateOut
	// KMigrateIn marks the application of one incoming migration blob;
	// Val is the number of tiles absorbed.
	KMigrateIn
	kindCount
)

var kindNames = [kindCount]string{
	"ready", "pop", "unpack", "kernel", "pack",
	"send", "recv", "stall", "idle", "pending_edges",
	"checkpoint", "recover", "heartbeat_miss", "peer_restart",
	"peer_down", "park", "rejoin", "replay", "queue_depth",
	"epoch", "migrate_out", "migrate_in",
}

// String returns the kind's wire name (the "k" field of the JSONL
// trace format).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Durable reports whether events of this kind carry a duration (they
// render as complete spans in the Chrome trace; the rest are instants
// or counters).
func (k Kind) Durable() bool {
	switch k {
	case KUnpack, KKernel, KPack, KSend, KStall, KIdle, KCheckpoint, KRecover:
		return true
	}
	return false
}

// Event is one timeline record.
type Event struct {
	Kind  Kind
	Node  int32
	Lane  int32
	Start int64  // ns from the trace origin
	Dur   int64  // ns; 0 for instant and counter events
	Tile  string // tile coordinates (TileID format); "" if not tile-scoped
	Dep   int32  // tile-dependence index for edge events; -1 otherwise
	Val   int64  // payload: elements for edge events, count for KPending
}

// End returns Start + Dur.
func (e Event) End() int64 { return e.Start + e.Dur }

// TileID formats tile coordinates as a stable, comparable identifier
// ("3,0,1"). Both the engine and the simulator use it, so traces from
// the two sources are joinable on tile identity.
func TileID(t []int64) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}

// ParseTileID inverts TileID.
func ParseTileID(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	t := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// DefaultLaneCap is the default per-lane ring capacity. At roughly five
// events per tile, it holds the full lifecycle of ~13k tiles per worker
// before the ring starts overwriting its oldest records.
const DefaultLaneCap = 1 << 16

// Tracer collects per-lane timelines. Create one per run and attach it
// via the runtime's Config; it is not reusable across runs.
type Tracer struct {
	start   time.Time
	laneCap int

	mu    sync.Mutex
	lanes []*Lane
}

// NewTracer creates a tracer with the default per-lane capacity.
func NewTracer() *Tracer { return NewTracerCap(DefaultLaneCap) }

// NewTracerCap creates a tracer whose per-lane ring buffers hold at
// most perLane events; older events are overwritten (and counted as
// dropped) beyond that.
func NewTracerCap(perLane int) *Tracer {
	if perLane < 1 {
		perLane = 1
	}
	return &Tracer{start: time.Now(), laneCap: perLane}
}

// Now returns nanoseconds since the trace origin (monotonic).
func (t *Tracer) Now() int64 { return int64(time.Since(t.start)) }

// Origin returns the trace origin: the wall-clock time event timestamp
// zero corresponds to. Cross-rank trace merging aligns per-rank traces
// by shifting each trace's origin onto rank 0's clock.
func (t *Tracer) Origin() time.Time { return t.start }

// At converts an absolute time to trace-origin nanoseconds.
func (t *Tracer) At(tm time.Time) int64 { return int64(tm.Sub(t.start)) }

// Lane registers (or returns) the timeline for (node, lane). Each lane
// must be written by a single goroutine; call once per goroutine and
// keep the handle.
func (t *Tracer) Lane(node, lane int, name string) *Lane {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.lanes {
		if l.node == int32(node) && l.lane == int32(lane) {
			return l
		}
	}
	initial := t.laneCap
	if initial > 1024 {
		initial = 1024 // grown on demand up to laneCap
	}
	l := &Lane{
		tr:   t,
		node: int32(node),
		lane: int32(lane),
		name: name,
		buf:  make([]Event, initial),
	}
	t.lanes = append(t.lanes, l)
	return l
}

// Lane is one single-writer timeline: all events of one worker,
// receiver or simulated core.
type Lane struct {
	tr   *Tracer
	node int32
	lane int32
	name string
	buf  []Event // ring
	n    uint64  // total events emitted
}

// Now returns nanoseconds since the trace origin.
func (l *Lane) Now() int64 { return l.tr.Now() }

// At converts an absolute time to trace-origin nanoseconds.
func (l *Lane) At(tm time.Time) int64 { return l.tr.At(tm) }

// Emit appends one event, stamping the lane identity. Not safe for
// concurrent use on the same lane. The backing buffer grows on demand
// up to the tracer's per-lane capacity and only then starts behaving
// as a ring, so short runs never pay for the full capacity.
func (l *Lane) Emit(e Event) {
	e.Node = l.node
	e.Lane = l.lane
	if l.n == uint64(len(l.buf)) && len(l.buf) < l.tr.laneCap {
		grown := 2 * len(l.buf)
		if grown > l.tr.laneCap {
			grown = l.tr.laneCap
		}
		nb := make([]Event, grown)
		copy(nb, l.buf)
		l.buf = nb
	}
	l.buf[l.n%uint64(len(l.buf))] = e
	l.n++
}

// Span is shorthand for a duration event from start (ns) to now.
func (l *Lane) Span(k Kind, tile string, dep int32, val int64, start int64) {
	l.Emit(Event{Kind: k, Start: start, Dur: l.Now() - start, Tile: tile, Dep: dep, Val: val})
}

// Instant is shorthand for a zero-duration event at now.
func (l *Lane) Instant(k Kind, tile string, dep int32, val int64) {
	l.Emit(Event{Kind: k, Start: l.Now(), Tile: tile, Dep: dep, Val: val})
}

// LaneInfo describes one timeline in a snapshot.
type LaneInfo struct {
	Node    int32  `json:"node"`
	Lane    int32  `json:"lane"`
	Name    string `json:"name"`
	Dropped uint64 `json:"dropped"` // events lost to ring overwrite
}

// TraceMeta carries the per-rank clock-alignment metadata a distributed
// run stamps into each trace file. It is what lets MergeRanks place all
// ranks' events on rank 0's timeline: an event at Start ns in this
// trace happened at wall time OriginUnixNs + Start on the local clock,
// which is OriginUnixNs + ClockOffsetNs + Start on rank 0's clock.
type TraceMeta struct {
	// Rank is the MPI rank that recorded the trace; -1 for a merged
	// trace.
	Rank int `json:"rank"`
	// Ranks is the world size of the run.
	Ranks int `json:"ranks"`
	// OriginUnixNs is the trace origin (Tracer.Origin) as Unix
	// nanoseconds on the recording rank's local clock.
	OriginUnixNs int64 `json:"originUnixNs"`
	// ClockOffsetNs is the estimated offset of rank 0's clock relative
	// to this rank's (rank0 = local + offset), from the ping-pong
	// estimation during the transport handshake. Zero on rank 0.
	ClockOffsetNs int64 `json:"clockOffsetNs"`
	// ClockRTTNs is the round-trip time of the min-RTT probe the offset
	// was taken from; the estimation error is bounded by ClockRTTNs/2.
	ClockRTTNs int64 `json:"clockRttNs"`
	// Aligned is true once all event timestamps have been shifted onto
	// the shared run timeline (the output of MergeRanks).
	Aligned bool `json:"aligned,omitempty"`
}

// Flow is one cross-rank message arrow: a remote dependence edge leaving
// a producer rank's send span and arriving at a consumer rank's receive
// instant. Flows are synthesized at merge time by pairing KSend and
// KRecv events on (Tile, Dep) identity and render as Perfetto flow
// arrows.
type Flow struct {
	// ID is the flow's identity in the Chrome trace (unique per trace,
	// starting at 1).
	ID int64 `json:"id"`
	// Tile and Dep identify the dependence edge: the consumer tile and
	// the index of the dependence that the message satisfies.
	Tile string `json:"tile"`
	Dep  int32  `json:"dep"`
	// FromNode/FromLane/FromTS locate the producer's send event
	// (aligned ns); ToNode/ToLane/ToTS the consumer's receive event.
	FromNode int32 `json:"fromNode"`
	FromLane int32 `json:"fromLane"`
	FromTS   int64 `json:"fromTs"`
	ToNode   int32 `json:"toNode"`
	ToLane   int32 `json:"toLane"`
	ToTS     int64 `json:"toTs"`
	// Elems is the element count of the edge payload.
	Elems int64 `json:"elems"`
}

// LatencyNs returns the send-start-to-arrival latency of the flow on
// the aligned timeline, clamped at zero (clock-offset error can make a
// very fast edge appear to arrive before it was sent).
func (f Flow) LatencyNs() int64 {
	if l := f.ToTS - f.FromTS; l > 0 {
		return l
	}
	return 0
}

// Trace is an immutable snapshot of a tracer: all surviving events in
// global start-time order.
type Trace struct {
	Events []Event
	Lanes  []LaneInfo
	// Meta is the clock-alignment metadata of a distributed run; nil
	// for single-process and simulated traces.
	Meta *TraceMeta
	// Flows are the cross-rank message arrows of a merged trace (see
	// MergeRanks); empty otherwise.
	Flows []Flow
}

// Snapshot collects the current contents of every lane. Call it only
// after the traced run has finished (lane writers stopped).
func (t *Tracer) Snapshot() *Trace {
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()
	tr := &Trace{}
	for _, l := range lanes {
		cap64 := uint64(len(l.buf))
		info := LaneInfo{Node: l.node, Lane: l.lane, Name: l.name}
		if l.n > cap64 {
			info.Dropped = l.n - cap64
			head := l.n % cap64
			tr.Events = append(tr.Events, l.buf[head:]...)
			tr.Events = append(tr.Events, l.buf[:head]...)
		} else {
			tr.Events = append(tr.Events, l.buf[:l.n]...)
		}
		tr.Lanes = append(tr.Lanes, info)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		return tr.Events[i].Start < tr.Events[j].Start
	})
	sort.Slice(tr.Lanes, func(i, j int) bool {
		if tr.Lanes[i].Node != tr.Lanes[j].Node {
			return tr.Lanes[i].Node < tr.Lanes[j].Node
		}
		return tr.Lanes[i].Lane < tr.Lanes[j].Lane
	})
	return tr
}

// Span returns the earliest start and latest end over all events; both
// zero when the trace is empty.
func (tr *Trace) Span() (start, end int64) {
	if len(tr.Events) == 0 {
		return 0, 0
	}
	start = tr.Events[0].Start
	end = start
	for _, e := range tr.Events {
		if e.Start < start {
			start = e.Start
		}
		if e.End() > end {
			end = e.End()
		}
	}
	return start, end
}

// Makespan returns the trace's end-to-end wall time.
func (tr *Trace) Makespan() time.Duration {
	s, e := tr.Span()
	return time.Duration(e - s)
}

// Dropped returns the total events lost to ring overwrite.
func (tr *Trace) Dropped() uint64 {
	var d uint64
	for _, l := range tr.Lanes {
		d += l.Dropped
	}
	return d
}
