// Chrome trace-event export and import. The format is the JSON-object
// form of the Trace Event Format ({"traceEvents": [...]}) understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing: one process per
// node, one thread per lane, complete ("X") events for spans, instant
// ("i") events for markers and counter ("C") events for the
// pending-edge series.
//
// ParseChrome inverts WriteChrome; it is the single decoder that reads
// traces from both the real runtime and the simulator, which is what
// makes a measured run and its modeled counterpart diffable.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one record of the Trace Event Format. Timestamps and
// durations are microseconds (float64, so sub-microsecond resolution
// survives).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    int64          `json:"id,omitempty"` // flow-event binding id
	BP    string         `json:"bp,omitempty"` // flow binding point ("e" on finish)
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object container. The dpMeta key is our own
// extension carrying the clock-alignment metadata; Perfetto and
// chrome://tracing ignore unknown top-level keys, so the file stays
// loadable in both. TraceMeta's absolute nanosecond fields stay int64
// here (never float64 trace timestamps), because Unix nanoseconds
// exceed float64's 53-bit integer range.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	DPMeta          *TraceMeta    `json:"dpMeta,omitempty"`
}

// WriteChrome writes the trace as Chrome trace-event JSON.
func (tr *Trace) WriteChrome(w io.Writer) error {
	f := chromeFile{DisplayTimeUnit: "ms", DPMeta: tr.Meta}
	f.TraceEvents = make([]chromeEvent, 0, len(tr.Events)+2*len(tr.Lanes)+2*len(tr.Flows))
	seenNode := map[int32]bool{}
	for _, l := range tr.Lanes {
		if !seenNode[l.Node] {
			seenNode[l.Node] = true
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: l.Node,
				Args: map[string]any{"name": fmt.Sprintf("node%d", l.Node)},
			})
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: l.Node, TID: l.Lane,
			Args: map[string]any{"name": l.Name},
		})
		if l.Dropped > 0 {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "dropped_events", Phase: "M", PID: l.Node, TID: l.Lane,
				Args: map[string]any{"count": l.Dropped},
			})
		}
	}
	for _, e := range tr.Events {
		ce := chromeEvent{
			Cat: e.Kind.String(),
			TS:  float64(e.Start) / 1e3,
			PID: e.Node,
			TID: e.Lane,
		}
		args := map[string]any{}
		if e.Tile != "" {
			args["tile"] = e.Tile
		}
		if e.Dep >= 0 {
			args["dep"] = e.Dep
		}
		switch {
		case e.Kind == KPending:
			ce.Name = "pending_edges"
			ce.Phase = "C"
			args["edges"] = e.Val
		case e.Kind.Durable():
			ce.Name = e.Kind.String()
			if e.Tile != "" {
				ce.Name += " " + e.Tile
			}
			ce.Phase = "X"
			ce.Dur = float64(e.Dur) / 1e3
			if e.Val != 0 {
				args["elems"] = e.Val
			}
		default:
			ce.Name = e.Kind.String()
			if e.Tile != "" {
				ce.Name += " " + e.Tile
			}
			ce.Phase = "i"
			ce.Scope = "t"
			if e.Val != 0 {
				args["elems"] = e.Val
			}
		}
		if len(args) > 0 {
			ce.Args = args
		}
		f.TraceEvents = append(f.TraceEvents, ce)
	}
	for _, fl := range tr.Flows {
		name := "edge " + fl.Tile
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Cat: "dp_edge", Phase: "s", ID: fl.ID,
			TS: float64(fl.FromTS) / 1e3, PID: fl.FromNode, TID: fl.FromLane,
			Args: map[string]any{"tile": fl.Tile, "dep": fl.Dep, "elems": fl.Elems},
		}, chromeEvent{
			Name: name, Cat: "dp_edge", Phase: "f", BP: "e", ID: fl.ID,
			TS: float64(fl.ToTS) / 1e3, PID: fl.ToNode, TID: fl.ToLane,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ParseChrome reads Chrome trace-event JSON produced by WriteChrome
// back into a Trace. Unknown categories (events written by other tools)
// are skipped. Both engine and simsched traces decode through this one
// path — the schema contract the tests pin down.
func ParseChrome(r io.Reader) (*Trace, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	tr := &Trace{Meta: f.DPMeta}
	flowStart := map[int64]*Flow{}
	laneIdx := map[[2]int32]int{}
	lane := func(node, id int32) *LaneInfo {
		k := [2]int32{node, id}
		if i, ok := laneIdx[k]; ok {
			return &tr.Lanes[i]
		}
		laneIdx[k] = len(tr.Lanes)
		tr.Lanes = append(tr.Lanes, LaneInfo{Node: node, Lane: id})
		return &tr.Lanes[len(tr.Lanes)-1]
	}
	for _, ce := range f.TraceEvents {
		if ce.Phase == "M" {
			switch ce.Name {
			case "thread_name":
				if n, ok := ce.Args["name"].(string); ok {
					lane(ce.PID, ce.TID).Name = n
				}
			case "dropped_events":
				if c, ok := ce.Args["count"].(float64); ok {
					lane(ce.PID, ce.TID).Dropped = uint64(c)
				}
			}
			continue
		}
		if ce.Cat == "dp_edge" && (ce.Phase == "s" || ce.Phase == "f") {
			fl := flowStart[ce.ID]
			if fl == nil {
				fl = &Flow{ID: ce.ID, Dep: -1}
				flowStart[ce.ID] = fl
			}
			if ce.Phase == "s" {
				fl.FromNode, fl.FromLane = ce.PID, ce.TID
				fl.FromTS = int64(ce.TS * 1e3)
				if t, ok := ce.Args["tile"].(string); ok {
					fl.Tile = t
				}
				if d, ok := ce.Args["dep"].(float64); ok {
					fl.Dep = int32(d)
				}
				if v, ok := ce.Args["elems"].(float64); ok {
					fl.Elems = int64(v)
				}
			} else {
				fl.ToNode, fl.ToLane = ce.PID, ce.TID
				fl.ToTS = int64(ce.TS * 1e3)
			}
			continue
		}
		var k Kind
		var ok bool
		if ce.Phase == "C" && ce.Name == "pending_edges" {
			k = KPending
		} else if k, ok = KindFromString(ce.Cat); !ok {
			continue
		}
		e := Event{
			Kind:  k,
			Node:  ce.PID,
			Lane:  ce.TID,
			Start: int64(ce.TS * 1e3),
			Dur:   int64(ce.Dur * 1e3),
			Dep:   -1,
		}
		if t, ok := ce.Args["tile"].(string); ok {
			e.Tile = t
		}
		if d, ok := ce.Args["dep"].(float64); ok {
			e.Dep = int32(d)
		}
		if v, ok := ce.Args["elems"].(float64); ok {
			e.Val = int64(v)
		}
		if v, ok := ce.Args["edges"].(float64); ok {
			e.Val = int64(v)
		}
		lane(e.Node, e.Lane)
		tr.Events = append(tr.Events, e)
	}
	for _, fl := range flowStart {
		tr.Flows = append(tr.Flows, *fl)
	}
	sort.Slice(tr.Flows, func(i, j int) bool { return tr.Flows[i].ID < tr.Flows[j].ID })
	return tr, nil
}
