package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTileIDRoundTrip(t *testing.T) {
	for _, tc := range [][]int64{{0}, {1, 2, 3}, {-4, 0, 17}, {}} {
		id := TileID(tc)
		got, err := ParseTileID(id)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if len(got) != len(tc) {
			t.Fatalf("%v -> %q -> %v", tc, id, got)
		}
		for i := range tc {
			if got[i] != tc[i] {
				t.Fatalf("%v -> %q -> %v", tc, id, got)
			}
		}
	}
}

func TestLaneRingOverwrite(t *testing.T) {
	tr := NewTracerCap(4)
	l := tr.Lane(0, 0, "w0")
	for i := 0; i < 10; i++ {
		l.Emit(Event{Kind: KPop, Start: int64(i), Tile: TileID([]int64{int64(i)})})
	}
	snap := tr.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(snap.Events))
	}
	// Oldest events dropped; survivors are 6..9 in order.
	for i, e := range snap.Events {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("event %d start %d, want %d", i, e.Start, want)
		}
	}
	if snap.Lanes[0].Dropped != 6 {
		t.Errorf("dropped = %d, want 6", snap.Lanes[0].Dropped)
	}
	if snap.Dropped() != 6 {
		t.Errorf("total dropped = %d, want 6", snap.Dropped())
	}
}

func TestLaneRegistrationIdempotent(t *testing.T) {
	tr := NewTracer()
	a := tr.Lane(1, 2, "x")
	b := tr.Lane(1, 2, "x")
	if a != b {
		t.Fatal("Lane() returned distinct handles for the same (node, lane)")
	}
	if tr.Lane(1, 3, "y") == a {
		t.Fatal("distinct lanes share a handle")
	}
}

func TestSnapshotOrderAndSpan(t *testing.T) {
	tr := NewTracerCap(16)
	l0 := tr.Lane(0, 0, "w0")
	l1 := tr.Lane(1, 0, "w0")
	l1.Emit(Event{Kind: KKernel, Start: 50, Dur: 25, Tile: "1"})
	l0.Emit(Event{Kind: KKernel, Start: 10, Dur: 30, Tile: "0"})
	snap := tr.Snapshot()
	if snap.Events[0].Start != 10 || snap.Events[1].Start != 50 {
		t.Fatalf("events not time-sorted: %+v", snap.Events)
	}
	s, e := snap.Span()
	if s != 10 || e != 75 {
		t.Fatalf("span = [%d,%d], want [10,75]", s, e)
	}
}

// buildTestTrace makes a small two-node trace by hand: tiles 2 -> 1 ->
// 0 in a 1-D chain (dep offset +1), with the 1->0 edge crossing nodes.
func buildTestTrace() *Trace {
	tr := NewTracerCap(64)
	w0 := tr.Lane(0, 0, "worker0")
	w1 := tr.Lane(1, 0, "worker0")
	rv := tr.Lane(1, 1, "recv")
	// Tile "2": source, node 0, exec [0, 100].
	w0.Emit(Event{Kind: KPop, Start: 0, Tile: "2", Dep: -1})
	w0.Emit(Event{Kind: KUnpack, Start: 0, Dur: 10, Tile: "2", Dep: -1})
	w0.Emit(Event{Kind: KKernel, Start: 10, Dur: 90, Tile: "2", Dep: -1})
	w0.Emit(Event{Kind: KPack, Start: 100, Dur: 10, Tile: "2", Dep: -1})
	// Tile "1": node 0, local dep on "2", exec [110, 260].
	w0.Emit(Event{Kind: KUnpack, Start: 110, Dur: 10, Tile: "1", Dep: -1})
	w0.Emit(Event{Kind: KKernel, Start: 120, Dur: 140, Tile: "1", Dep: -1})
	w0.Emit(Event{Kind: KPack, Start: 260, Dur: 20, Tile: "1", Dep: -1})
	w0.Emit(Event{Kind: KSend, Start: 262, Dur: 15, Tile: "0", Dep: 0, Val: 8})
	// Edge arrives at node 1 at t=300 (gap from kernel-end 260 = 40).
	rv.Emit(Event{Kind: KRecv, Start: 300, Tile: "0", Dep: 0, Val: 8})
	rv.Emit(Event{Kind: KReady, Start: 300, Tile: "0", Dep: -1})
	// Tile "0": node 1, exec [310, 400].
	w1.Emit(Event{Kind: KUnpack, Start: 310, Dur: 5, Tile: "0", Dep: -1})
	w1.Emit(Event{Kind: KKernel, Start: 315, Dur: 85, Tile: "0", Dep: -1})
	w1.Emit(Event{Kind: KPending, Start: 400, Val: 3})
	return tr.Snapshot()
}

func TestCriticalPathHandBuilt(t *testing.T) {
	tr := buildTestTrace()
	rep, err := CriticalPath(tr, [][]int64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Chain 2 -> 1 -> 0: spans (100-0) + (260-110) + (400-310) = 340,
	// plus the remote gap 300-260 = 40 on the 1->0 edge.
	if rep.CriticalPath.Nanoseconds() != 380 {
		t.Errorf("critical path = %dns, want 380", rep.CriticalPath.Nanoseconds())
	}
	if rep.Compute.Nanoseconds() != 340 || rep.Comm.Nanoseconds() != 40 {
		t.Errorf("compute/comm = %d/%d, want 340/40", rep.Compute.Nanoseconds(), rep.Comm.Nanoseconds())
	}
	if rep.Tiles != 3 || rep.ChainTiles != 3 {
		t.Errorf("tiles = %d chain = %d, want 3/3", rep.Tiles, rep.ChainTiles)
	}
	if want := []string{"2", "1", "0"}; strings.Join(rep.Chain, " ") != strings.Join(want, " ") {
		t.Errorf("chain = %v, want %v", rep.Chain, want)
	}
	if rep.CriticalPath > rep.Makespan {
		t.Errorf("critical path %v exceeds makespan %v", rep.CriticalPath, rep.Makespan)
	}
	if rep.Ratio() <= 0 || rep.Ratio() > 1 {
		t.Errorf("ratio = %v", rep.Ratio())
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := buildTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be a single valid JSON object with a traceEvents array.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := raw["traceEvents"].([]any); !ok {
		t.Fatal("no traceEvents array")
	}
	back, err := ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip %d events, want %d", len(back.Events), len(tr.Events))
	}
	count := func(t *Trace, k Kind) int {
		n := 0
		for _, e := range t.Events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	for k := Kind(0); k < kindCount; k++ {
		if count(back, k) != count(tr, k) {
			t.Errorf("kind %v: %d events after round trip, want %d", k, count(back, k), count(tr, k))
		}
	}
	// Tile identity and payloads survive.
	for i, e := range back.Events {
		if e.Tile != tr.Events[i].Tile || e.Kind != tr.Events[i].Kind || e.Val != tr.Events[i].Val {
			t.Errorf("event %d mismatch: %+v vs %+v", i, e, tr.Events[i])
		}
	}
	// The critical path computed from the decoded trace matches.
	rep, err := CriticalPath(back, [][]int64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalPath.Nanoseconds() != 380 {
		t.Errorf("decoded critical path = %dns, want 380", rep.CriticalPath.Nanoseconds())
	}
}

func TestMetricsAndPrometheus(t *testing.T) {
	tr := buildTestTrace()
	m := tr.Metrics()
	if len(m.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(m.Nodes))
	}
	n0, n1 := m.Nodes[0], m.Nodes[1]
	if n0.TilesExecuted != 2 || n1.TilesExecuted != 1 {
		t.Errorf("tiles = %d/%d, want 2/1", n0.TilesExecuted, n1.TilesExecuted)
	}
	if n0.EdgesSent != 1 || n1.EdgesRecv != 1 || n0.ElemsSent != 8 {
		t.Errorf("edges sent/recv/elems = %d/%d/%d", n0.EdgesSent, n1.EdgesRecv, n0.ElemsSent)
	}
	if n0.BytesSent != 64 {
		t.Errorf("bytes sent = %d, want 64 (8 per element)", n0.BytesSent)
	}
	if n1.PendingEdgesPeak != 3 {
		t.Errorf("pending peak = %d, want 3", n1.PendingEdgesPeak)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dp_tiles_executed_total counter",
		"dp_tiles_executed_total{node=\"0\"} 2",
		"dp_tiles_executed_total{node=\"1\"} 1",
		"dp_edge_elems_sent_total{node=\"0\"} 8",
		"dp_edge_bytes_sent_total{node=\"0\"} 64",
		"dp_pending_edges_peak{node=\"1\"} 3",
		"dp_run_makespan_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	rep, err := CriticalPath(&Trace{}, [][]int64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiles != 0 || rep.CriticalPath != 0 {
		t.Errorf("empty trace report: %+v", rep)
	}
}
