// Cross-rank trace merging. Each rank of a distributed run writes its
// own trace file with TraceMeta carrying the rank's wall-clock origin
// and its estimated offset to rank 0's clock (from the transport's
// ping-pong handshake). MergeRanks shifts every rank's events onto the
// shared rank-0 timeline, rebases the whole run to start at zero, and
// synthesizes Perfetto flow arrows by pairing cross-rank send and
// receive events — producing the one clock-aligned, run-wide file that
// `dprun -launch -trace` emits.

package obs

import (
	"fmt"
	"sort"
)

// MergeRanks merges per-rank traces of one distributed run into a
// single clock-aligned trace. Every input must carry TraceMeta with a
// distinct Rank and a non-zero OriginUnixNs; inputs are not modified.
//
// Alignment: an event at local trace time s in rank r's trace happened
// at OriginUnixNs(r) + ClockOffsetNs(r) + s on rank 0's clock. The
// merged timeline subtracts the earliest aligned origin, so merged
// timestamps stay small enough to survive the float64 microsecond
// representation of the Chrome trace format.
func MergeRanks(traces []*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("obs: merge of zero traces")
	}
	seenRank := map[int]bool{}
	seenNode := map[int32]int{}
	var base int64
	for i, t := range traces {
		if t.Meta == nil || t.Meta.OriginUnixNs == 0 {
			return nil, fmt.Errorf("obs: trace %d lacks clock-alignment metadata (not from a distributed run?)", i)
		}
		if t.Meta.Aligned {
			return nil, fmt.Errorf("obs: trace %d is already merged", i)
		}
		if seenRank[t.Meta.Rank] {
			return nil, fmt.Errorf("obs: two traces claim rank %d", t.Meta.Rank)
		}
		seenRank[t.Meta.Rank] = true
		for _, l := range t.Lanes {
			if r, ok := seenNode[l.Node]; ok && r != t.Meta.Rank {
				return nil, fmt.Errorf("obs: node %d appears in traces of rank %d and rank %d", l.Node, r, t.Meta.Rank)
			}
			seenNode[l.Node] = t.Meta.Rank
		}
		origin := t.Meta.OriginUnixNs + t.Meta.ClockOffsetNs
		if i == 0 || origin < base {
			base = origin
		}
	}
	merged := &Trace{
		Meta: &TraceMeta{Rank: -1, Ranks: len(traces), OriginUnixNs: base, Aligned: true},
	}
	for _, t := range traces {
		shift := t.Meta.OriginUnixNs + t.Meta.ClockOffsetNs - base
		for _, e := range t.Events {
			e.Start += shift
			merged.Events = append(merged.Events, e)
		}
		merged.Lanes = append(merged.Lanes, t.Lanes...)
	}
	sort.SliceStable(merged.Events, func(i, j int) bool {
		return merged.Events[i].Start < merged.Events[j].Start
	})
	sort.Slice(merged.Lanes, func(i, j int) bool {
		if merged.Lanes[i].Node != merged.Lanes[j].Node {
			return merged.Lanes[i].Node < merged.Lanes[j].Node
		}
		return merged.Lanes[i].Lane < merged.Lanes[j].Lane
	})
	merged.Flows = pairFlows(merged.Events)
	return merged, nil
}

// pairFlows synthesizes cross-node flows from the aligned event stream:
// each KSend is matched to the first unconsumed KRecv on a different
// node with the same (tile, dep) identity. The engine stamps KSend with
// the *consumer* tile and the dependence index, and the receiver stamps
// KRecv identically, so the pair identifies one edge message without
// any wire-level sequence plumbing. Replayed frames after a recovery
// can leave unmatched events on either side; those simply get no arrow.
func pairFlows(events []Event) []Flow {
	type key struct {
		tile string
		dep  int32
	}
	recvs := map[key][]int{}
	for i, e := range events {
		if e.Kind == KRecv && e.Tile != "" && e.Dep >= 0 {
			k := key{e.Tile, e.Dep}
			recvs[k] = append(recvs[k], i)
		}
	}
	var flows []Flow
	var id int64
	for _, e := range events {
		if e.Kind != KSend || e.Tile == "" || e.Dep < 0 {
			continue
		}
		k := key{e.Tile, e.Dep}
		cands := recvs[k]
		for n, ri := range cands {
			r := events[ri]
			if r.Node == e.Node {
				continue
			}
			id++
			flows = append(flows, Flow{
				ID:   id,
				Tile: e.Tile, Dep: e.Dep,
				FromNode: e.Node, FromLane: e.Lane, FromTS: e.Start,
				ToNode: r.Node, ToLane: r.Lane, ToTS: r.Start,
				Elems: e.Val,
			})
			recvs[k] = append(cands[:n:n], cands[n+1:]...)
			break
		}
	}
	return flows
}

// VerifyMerged checks the invariants of a merged trace: metadata marks
// it aligned, all timestamps are non-negative and globally sorted,
// every flow references plausible endpoints, and — when strict — every
// cross-node send pairs with exactly one receive and vice versa.
// Strict pairing holds for clean runs; a run that survived a rank
// failure replays retained frames, which legitimately leaves orphaned
// sends (from the dead incarnation) and duplicate receives, so recovery
// runs are verified with strict=false. It returns the list of violated
// invariants, empty when the trace is sound.
func VerifyMerged(tr *Trace, strict bool) []string {
	var issues []string
	bad := func(format string, a ...any) { issues = append(issues, fmt.Sprintf(format, a...)) }
	if tr.Meta == nil || !tr.Meta.Aligned {
		bad("trace is not marked clock-aligned")
	}
	for i, e := range tr.Events {
		if e.Start < 0 {
			bad("event %d (%s %s) has negative aligned timestamp %d", i, e.Kind, e.Tile, e.Start)
			break
		}
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Start < tr.Events[i-1].Start {
			bad("events %d and %d are not in globally monotonic start order", i-1, i)
			break
		}
	}
	nodes := map[int32]bool{}
	for _, l := range tr.Lanes {
		nodes[l.Node] = true
	}
	var crossSends, crossRecvs int
	for _, e := range tr.Events {
		switch e.Kind {
		case KSend:
			crossSends++
		case KRecv:
			crossRecvs++
		}
	}
	seenFlow := map[int64]bool{}
	for _, f := range tr.Flows {
		if seenFlow[f.ID] {
			bad("flow id %d appears twice", f.ID)
		}
		seenFlow[f.ID] = true
		if f.FromNode == f.ToNode {
			bad("flow %d (%s dep %d) is not cross-node", f.ID, f.Tile, f.Dep)
		}
		if !nodes[f.FromNode] || !nodes[f.ToNode] {
			bad("flow %d references unknown node %d or %d", f.ID, f.FromNode, f.ToNode)
		}
	}
	if strict {
		if len(tr.Flows) != crossSends {
			bad("%d send events but %d flows: some sends are unpaired", crossSends, len(tr.Flows))
		}
		if len(tr.Flows) != crossRecvs {
			bad("%d recv events but %d flows: some receives are unpaired", crossRecvs, len(tr.Flows))
		}
	}
	return issues
}
