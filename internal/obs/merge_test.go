package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// synthRank builds a small synthetic single-rank trace: one worker lane
// with a kernel span per tile, plus optional send/recv edge events.
func synthRank(rank int, originNs, offsetNs int64, events []Event) *Trace {
	lanes := map[int32]bool{}
	for _, e := range events {
		lanes[e.Lane] = true
	}
	tr := &Trace{
		Events: append([]Event(nil), events...),
		Meta: &TraceMeta{
			Rank:          rank,
			Ranks:         2,
			OriginUnixNs:  originNs,
			ClockOffsetNs: offsetNs,
		},
	}
	for l := range lanes {
		tr.Lanes = append(tr.Lanes, LaneInfo{Node: int32(rank), Lane: l, Name: "worker"})
	}
	return tr
}

func TestMergeRanksAligns(t *testing.T) {
	// Rank 1's local clock runs 500ns behind rank 0's (offset +500):
	// its origin lands at 10_500 on the aligned timeline vs rank 0's
	// 10_000, so its events shift by +500 relative to rank 0's.
	r0 := synthRank(0, 10_000, 0, []Event{
		{Kind: KKernel, Node: 0, Lane: 0, Start: 0, Dur: 100, Tile: "0,0", Dep: -1},
		{Kind: KSend, Node: 0, Lane: 0, Start: 100, Dur: 10, Tile: "1,0", Dep: 0, Val: 8},
	})
	r1 := synthRank(1, 10_000, 500, []Event{
		{Kind: KRecv, Node: 1, Lane: 0, Start: 200, Dur: 0, Tile: "1,0", Dep: 0, Val: 8},
		{Kind: KKernel, Node: 1, Lane: 0, Start: 210, Dur: 100, Tile: "1,0", Dep: -1},
	})
	m, err := MergeRanks([]*Trace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta == nil || !m.Meta.Aligned || m.Meta.Ranks != 2 || m.Meta.Rank != -1 {
		t.Fatalf("merged meta = %+v", m.Meta)
	}
	if m.Meta.OriginUnixNs != 10_000 {
		t.Errorf("merged origin = %d, want 10000 (min aligned origin)", m.Meta.OriginUnixNs)
	}
	if len(m.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(m.Events))
	}
	// Rank 1's recv at local 200 must land at 200+500 = 700 aligned.
	var recv *Event
	for i := range m.Events {
		if m.Events[i].Kind == KRecv {
			recv = &m.Events[i]
		}
	}
	if recv == nil || recv.Start != 700 {
		t.Fatalf("recv event = %+v, want aligned start 700", recv)
	}
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Start < m.Events[i-1].Start {
			t.Fatalf("events not globally sorted: %v", m.Events)
		}
	}
	if viol := VerifyMerged(m, true); len(viol) != 0 {
		t.Errorf("clean merge violates invariants: %v", viol)
	}
	if len(m.Flows) != 1 {
		t.Fatalf("flows = %v, want one send->recv pair", m.Flows)
	}
	f := m.Flows[0]
	if f.FromNode != 0 || f.ToNode != 1 || f.Tile != "1,0" || f.Dep != 0 {
		t.Errorf("flow endpoints = %+v", f)
	}
	if f.LatencyNs() != 600 {
		t.Errorf("flow latency = %d, want 600 (send@100 -> aligned recv@700)", f.LatencyNs())
	}
}

func TestMergeRanksEventCountPreserved(t *testing.T) {
	mk := func(rank int, n int) *Trace {
		evs := make([]Event, n)
		for i := range evs {
			evs[i] = Event{Kind: KKernel, Node: int32(rank), Lane: 0, Start: int64(i * 10), Dur: 5, Dep: -1}
		}
		return synthRank(rank, int64(1000+rank*7), int64(rank*3), evs)
	}
	a, b := mk(0, 17), mk(1, 23)
	m, err := MergeRanks([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != 40 {
		t.Errorf("merged %d events, want 40: merging must preserve every event", len(m.Events))
	}
}

func TestMergeRanksRejectsBadInputs(t *testing.T) {
	good := func() *Trace {
		return synthRank(0, 1000, 0, []Event{{Kind: KKernel, Node: 0, Lane: 0, Dur: 1, Dep: -1}})
	}
	t.Run("no-meta", func(t *testing.T) {
		tr := good()
		tr.Meta = nil
		if _, err := MergeRanks([]*Trace{tr}); err == nil {
			t.Error("merge accepted a trace without metadata")
		}
	})
	t.Run("duplicate-rank", func(t *testing.T) {
		if _, err := MergeRanks([]*Trace{good(), good()}); err == nil {
			t.Error("merge accepted two traces claiming rank 0")
		}
	})
	t.Run("already-merged", func(t *testing.T) {
		tr := good()
		tr.Meta.Aligned = true
		if _, err := MergeRanks([]*Trace{tr}); err == nil {
			t.Error("merge accepted an already-merged trace")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := MergeRanks(nil); err == nil {
			t.Error("merge accepted zero traces")
		}
	})
}

func TestVerifyMergedStrictness(t *testing.T) {
	// An orphaned send (its receive lost with a crashed incarnation)
	// breaks strict pairing but must pass the lenient recovery rules.
	r0 := synthRank(0, 1000, 0, []Event{
		{Kind: KSend, Node: 0, Lane: 0, Start: 0, Dur: 1, Tile: "1,0", Dep: 0},
		{Kind: KSend, Node: 0, Lane: 0, Start: 5, Dur: 1, Tile: "2,0", Dep: 0},
	})
	r1 := synthRank(1, 1000, 0, []Event{
		{Kind: KRecv, Node: 1, Lane: 0, Start: 10, Tile: "1,0", Dep: 0},
	})
	m, err := MergeRanks([]*Trace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	if viol := VerifyMerged(m, true); len(viol) == 0 {
		t.Error("strict verification missed the orphaned send")
	}
	if viol := VerifyMerged(m, false); len(viol) != 0 {
		t.Errorf("lenient verification rejected a recovery-shaped trace: %v", viol)
	}
}

func TestChromeFlowAndMetaRoundTrip(t *testing.T) {
	r0 := synthRank(0, 5_000, 0, []Event{
		{Kind: KKernel, Node: 0, Lane: 0, Start: 0, Dur: 1000, Tile: "0,0", Dep: -1},
		{Kind: KSend, Node: 0, Lane: 0, Start: 1000, Dur: 100, Tile: "1,0", Dep: 0, Val: 4},
	})
	r1 := synthRank(1, 5_100, -50, []Event{
		{Kind: KRecv, Node: 1, Lane: 0, Start: 2000, Tile: "1,0", Dep: 0, Val: 4},
		{Kind: KKernel, Node: 1, Lane: 0, Start: 2100, Dur: 900, Tile: "1,0", Dep: -1},
	})
	m, err := MergeRanks([]*Trace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta == nil || *got.Meta != *m.Meta {
		t.Errorf("meta round trip: got %+v, want %+v", got.Meta, m.Meta)
	}
	if len(got.Flows) != len(m.Flows) {
		t.Fatalf("flow round trip: got %d flows, want %d", len(got.Flows), len(m.Flows))
	}
	for i := range m.Flows {
		w, g := m.Flows[i], got.Flows[i]
		if g.ID != w.ID || g.Tile != w.Tile || g.FromNode != w.FromNode || g.ToNode != w.ToNode {
			t.Errorf("flow %d: got %+v, want %+v", i, g, w)
		}
		// Timestamps survive the float64-microsecond trip only to µs
		// precision.
		if d := g.ToTS - w.ToTS; d < -1000 || d > 1000 {
			t.Errorf("flow %d: recv ts drifted %dns through the round trip", i, d)
		}
	}
	if viol := VerifyMerged(got, true); len(viol) != 0 {
		t.Errorf("round-tripped trace violates invariants: %v", viol)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1e-6, 10e-6, 100e-6) // bounds in seconds
	for _, ns := range []int64{500, 1500, 1500, 50_000, 2_000_000, -5} {
		h.ObserveNs(ns)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6 (negative clamps to zero, not dropped)", s.Count)
	}
	wantCounts := []int64{2, 2, 1, 1} // (-inf,1µs], (1,10], (10,100], +inf
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if q := s.Quantile(0.5); q != 10e-6 {
		t.Errorf("p50 = %v, want the 10µs bucket bound", q)
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf, "dp_test_seconds", "help text", `rank="1"`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`dp_test_seconds_bucket{rank="1",le="+Inf"} 6`,
		`dp_test_seconds_count{rank="1"} 6`,
		"# TYPE dp_test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output lacks %q:\n%s", want, out)
		}
	}

	// Merging two snapshots with identical bounds sums all buckets.
	h2 := NewHistogram(1e-6, 10e-6, 100e-6)
	h2.ObserveNs(1500)
	m := s
	if err := m.Merge(h2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if m.Count != 7 || m.Counts[1] != 3 {
		t.Errorf("merged count = %d, bucket1 = %d; want 7 and 3", m.Count, m.Counts[1])
	}
}

func TestBuildReportOnMergedTrace(t *testing.T) {
	us := int64(time.Microsecond)
	r0 := synthRank(0, 1_000_000, 0, []Event{
		{Kind: KReady, Node: 0, Lane: 0, Start: 0, Tile: "0,0", Dep: -1},
		{Kind: KKernel, Node: 0, Lane: 0, Start: 0, Dur: 400 * us, Tile: "0,0", Dep: -1},
		{Kind: KSend, Node: 0, Lane: 0, Start: 400 * us, Dur: 20 * us, Tile: "1,0", Dep: 0, Val: 8},
	})
	r1 := synthRank(1, 1_000_000, 0, []Event{
		{Kind: KReady, Node: 1, Lane: 0, Start: 430 * us, Tile: "1,0", Dep: -1},
		{Kind: KRecv, Node: 1, Lane: 0, Start: 430 * us, Tile: "1,0", Dep: 0, Val: 8},
		{Kind: KKernel, Node: 1, Lane: 0, Start: 440 * us, Dur: 100 * us, Tile: "1,0", Dep: -1},
	})
	m, err := MergeRanks([]*Trace{r0, r1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(m, [][]int64{{-1, 0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranks) != 2 {
		t.Fatalf("report covers %d ranks, want 2", len(rep.Ranks))
	}
	if rep.Flows != 1 {
		t.Errorf("report flows = %d, want 1", rep.Flows)
	}
	if rep.ImbalanceRatio <= 1 {
		t.Errorf("imbalance ratio = %v, want > 1 for an unbalanced run", rep.ImbalanceRatio)
	}
	if rep.CritPath == nil {
		t.Fatal("report lacks the critical path")
	}
	if cp, mk := rep.CritPath.CriticalPath, rep.CritPath.Makespan; cp > mk {
		t.Errorf("critical path %v exceeds makespan %v", cp, mk)
	}
	if len(rep.Stragglers) == 0 {
		t.Error("report lists no straggler tiles")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run report:", "load imbalance ratio", "critical path"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report text lacks %q:\n%s", want, buf.String())
		}
	}
}

// TestCriticalPathBoundedUnderSkew is the clamping regression test: a
// maliciously wrong clock offset makes a receive appear long after (or
// before) its send, yet the computed critical path must never exceed
// the merged makespan.
func TestCriticalPathBoundedUnderSkew(t *testing.T) {
	us := int64(time.Microsecond)
	for _, skew := range []int64{-5000 * us, -200 * us, 0, 200 * us, 5000 * us} {
		r0 := synthRank(0, 1_000_000, 0, []Event{
			{Kind: KKernel, Node: 0, Lane: 0, Start: 0, Dur: 100 * us, Tile: "0,0", Dep: -1},
			{Kind: KSend, Node: 0, Lane: 0, Start: 100 * us, Dur: 10 * us, Tile: "1,0", Dep: 0},
		})
		r1 := synthRank(1, 1_000_000, skew, []Event{
			{Kind: KRecv, Node: 1, Lane: 0, Start: 120 * us, Tile: "1,0", Dep: 0},
			{Kind: KKernel, Node: 1, Lane: 0, Start: 130 * us, Dur: 100 * us, Tile: "1,0", Dep: -1},
		})
		m, err := MergeRanks([]*Trace{r0, r1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := CriticalPath(m, [][]int64{{-1, 0}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CriticalPath > rep.Makespan {
			t.Errorf("skew %dns: critical path %v exceeds makespan %v",
				skew, rep.CriticalPath, rep.Makespan)
		}
		if rep.CriticalPath < 0 {
			t.Errorf("skew %dns: negative critical path %v", skew, rep.CriticalPath)
		}
	}
}
