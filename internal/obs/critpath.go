// Critical-path analysis over a recorded trace. The analyzer replays
// the tile DAG with per-tile *measured* times and reports the longest
// dependence chain of compute plus communication — the quantity that
// bounds any schedule of the same DAG from below and therefore explains
// the speedup ceilings of Figures 6 and 7: when measured makespan is
// close to the critical path, no scheduling or buffering change can
// help; only smaller tiles (a deeper DAG cut) can.
//
// The per-tile weight is the measured span from unpack start to kernel
// end, and the weight of a remote dependence edge is the measured gap
// from the producer's kernel end to the edge's arrival at the consumer
// (which includes the producer's pack, the send, the wire and any
// buffering delay). With these definitions every chain occupies
// disjoint, ordered intervals of the recorded timeline — a consumer
// never starts unpacking before its last edge arrives, and an edge
// never arrives before its producer's kernel ends — so the reported
// critical path is guaranteed to be at most the measured makespan.
// Local delivery gaps are folded into the consumer's wait and counted
// as zero.
//
// On a merged cross-rank trace the two timelines come from different
// clocks, aligned only to within half the min-RTT of the offset probe
// (see internal/mpi/tcp clock sync). Residual skew could order an
// arrival after the consumer's own kernel end and break the invariant
// above, so each chain extension through a dependence edge is clamped
// to the producer-to-consumer kernel-end delta: the chain through
// producer p into tile t grows by at most kernelEnd(t)-kernelEnd(p),
// and never by a negative amount. By induction every chain ending at t
// is then at most kernelEnd(t) minus the trace start, which keeps
// CriticalPath <= Makespan on skewed merged traces while reducing to
// the exact measured chain when timestamps are consistent.

package obs

import (
	"fmt"
	"sort"
	"time"
)

// PathReport is the result of a critical-path analysis.
type PathReport struct {
	// CriticalPath is the longest compute+communication chain.
	CriticalPath time.Duration
	// Compute and Comm split the chain into tile-execution time and
	// remote-edge delivery gaps (CriticalPath = Compute + Comm).
	Compute, Comm time.Duration
	// Makespan is the traced end-to-end run time.
	Makespan time.Duration
	// Tiles is the number of tiles observed; ChainTiles the number on
	// the critical chain.
	Tiles, ChainTiles int
	// Chain lists the tile IDs on the critical chain, source first.
	Chain []string
}

// Ratio returns CriticalPath / Makespan: how much of the run is
// explained by the longest chain (1.0 means latency-bound — no
// schedule of this DAG can run faster).
func (r *PathReport) Ratio() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.CriticalPath) / float64(r.Makespan)
}

// String renders the report as the one-line summary printed by the
// dprun -critpath flag.
func (r *PathReport) String() string {
	return fmt.Sprintf("critical path %v (compute %v + comm %v) over %d/%d tiles; makespan %v (ratio %.2f)",
		r.CriticalPath, r.Compute, r.Comm, r.ChainTiles, r.Tiles, r.Makespan, r.Ratio())
}

// cpTile is the analyzer's per-tile state.
type cpTile struct {
	coords      []int64
	unpackStart int64 // ns; kernel start when no unpack event exists
	kernelEnd   int64 // ns
	haveUnpack  bool
	haveKernel  bool

	cpEnd     time.Duration // longest chain ending at this tile
	cpCompute time.Duration
	pred      string // predecessor tile on that chain; "" for a source
}

// CriticalPath analyzes a trace. offsets are the tile-space dependence
// offsets (producer = consumer + offset), as produced by the tiling
// analysis (Tiling.TileDeps[j].Offset); they are what lets the analyzer
// rebuild the DAG from tile identities alone, so it works identically
// on engine and simsched traces.
func CriticalPath(tr *Trace, offsets [][]int64) (*PathReport, error) {
	tiles := map[string]*cpTile{}
	get := func(id string) (*cpTile, error) {
		t := tiles[id]
		if t == nil {
			coords, err := ParseTileID(id)
			if err != nil {
				return nil, fmt.Errorf("obs: bad tile id %q: %w", id, err)
			}
			t = &cpTile{coords: coords}
			tiles[id] = t
		}
		return t, nil
	}
	// arrivals[tile] is the latest remote-edge arrival per (tile, dep).
	type arrival struct{ at int64 }
	arrivals := map[string]map[int32]arrival{}
	for _, e := range tr.Events {
		switch e.Kind {
		case KUnpack:
			t, err := get(e.Tile)
			if err != nil {
				return nil, err
			}
			if !t.haveUnpack || e.Start < t.unpackStart {
				t.unpackStart = e.Start
				t.haveUnpack = true
			}
		case KKernel:
			t, err := get(e.Tile)
			if err != nil {
				return nil, err
			}
			if !t.haveKernel || e.End() > t.kernelEnd {
				t.kernelEnd = e.End()
				t.haveKernel = true
			}
			if !t.haveUnpack {
				t.unpackStart = e.Start
			}
		case KRecv:
			if e.Tile == "" || e.Dep < 0 {
				continue
			}
			m := arrivals[e.Tile]
			if m == nil {
				m = map[int32]arrival{}
				arrivals[e.Tile] = m
			}
			if a, ok := m[e.Dep]; !ok || e.Start > a.at {
				m[e.Dep] = arrival{at: e.Start}
			}
		}
	}
	report := &PathReport{Makespan: tr.Makespan()}
	var ids []string
	for id, t := range tiles {
		if !t.haveKernel {
			delete(tiles, id) // referenced but never executed in-trace
			continue
		}
		ids = append(ids, id)
	}
	report.Tiles = len(ids)
	if len(ids) == 0 {
		return report, nil
	}
	// Execution order is a topological order of the DAG: a consumer
	// cannot start before its producers' kernels end.
	sort.Slice(ids, func(i, j int) bool {
		a, b := tiles[ids[i]], tiles[ids[j]]
		if a.unpackStart != b.unpackStart {
			return a.unpackStart < b.unpackStart
		}
		return a.kernelEnd < b.kernelEnd
	})
	var bestID string
	var best time.Duration = -1
	producer := make([]int64, 0, 8)
	for _, id := range ids {
		t := tiles[id]
		span := time.Duration(t.kernelEnd - t.unpackStart)
		t.cpEnd = span
		t.cpCompute = span
		for j, off := range offsets {
			producer = producer[:0]
			for k, v := range t.coords {
				producer = append(producer, v+off[k])
			}
			pid := TileID(producer)
			p := tiles[pid]
			if p == nil || !p.haveKernel {
				continue
			}
			var gap time.Duration
			if a, ok := arrivals[id][int32(j)]; ok && a.at > p.kernelEnd {
				gap = time.Duration(a.at - p.kernelEnd)
			}
			// Clamp the extension so clock skew on merged traces can
			// never push a chain past the consumer's own kernel end.
			ext := gap + span
			if lim := time.Duration(t.kernelEnd - p.kernelEnd); ext > lim {
				ext = lim
			}
			if ext < 0 {
				ext = 0
			}
			computeExt := span
			if computeExt > ext {
				computeExt = ext
			}
			if c := p.cpEnd + ext; c > t.cpEnd {
				t.cpEnd = c
				t.cpCompute = p.cpCompute + computeExt
				t.pred = pid
			}
		}
		if t.cpEnd > best {
			best = t.cpEnd
			bestID = id
		}
	}
	sink := tiles[bestID]
	report.CriticalPath = sink.cpEnd
	report.Compute = sink.cpCompute
	report.Comm = sink.cpEnd - sink.cpCompute
	for id := bestID; id != ""; id = tiles[id].pred {
		report.Chain = append(report.Chain, id)
		report.ChainTiles++
	}
	// Reverse: source first.
	for i, j := 0, len(report.Chain)-1; i < j; i, j = i+1, j-1 {
		report.Chain[i], report.Chain[j] = report.Chain[j], report.Chain[i]
	}
	return report, nil
}
