// The run-wide report: per-rank busy/stall/comm breakdowns, the load
// imbalance ratio, top-k straggler tiles and the cross-rank critical
// path, computed over a (merged) trace. This is the `dprun -report`
// analyzer — the evidence the paper's Figures 6 and 7 discussion needs:
// which rank is the straggler, whether the slowdown is stall, idle or
// kernel time, and how close the run sits to its latency bound.

package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// RankBreakdown is the time breakdown of one rank (node) in a report.
type RankBreakdown struct {
	// Node is the rank/node id.
	Node int32 `json:"node"`
	// Tiles is the number of tiles the rank executed.
	Tiles int64 `json:"tiles"`
	// ComputeSeconds is kernel plus unpack time; CommSeconds is pack
	// and send time (including send-buffer stalls' enclosing pack
	// spans); StallSeconds is time blocked in sends on exhausted
	// buffers; IdleSeconds is time with no ready tile. All are sums
	// over the rank's worker lanes.
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	StallSeconds   float64 `json:"stall_seconds"`
	IdleSeconds    float64 `json:"idle_seconds"`
}

// BusySeconds is compute plus communication time.
func (r RankBreakdown) BusySeconds() float64 { return r.ComputeSeconds + r.CommSeconds }

// Straggler is one of the slowest tiles of the run: the tiles whose
// ready-to-done latency is largest, i.e. where the schedule lost the
// most time between an available tile and its completion.
type Straggler struct {
	// Tile is the tile id; Node the rank that executed it.
	Tile string `json:"tile"`
	Node int32  `json:"node"`
	// WaitSeconds is ready-to-claim latency, ExecSeconds claim-to-
	// kernel-end, TotalSeconds their sum.
	WaitSeconds  float64 `json:"wait_seconds"`
	ExecSeconds  float64 `json:"exec_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// RunReport is the full analyzer output.
type RunReport struct {
	// MakespanSeconds is the traced end-to-end run time.
	MakespanSeconds float64 `json:"makespan_seconds"`
	// Ranks is the per-rank breakdown, ordered by node id.
	Ranks []RankBreakdown `json:"ranks"`
	// ImbalanceRatio is max busy time over mean busy time across ranks
	// (1.0 = perfectly balanced).
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	// CritPath is the (cross-rank) critical-path analysis.
	CritPath *PathReport `json:"-"`
	// Stragglers are the top-k tiles by ready-to-done latency.
	Stragglers []Straggler `json:"stragglers"`
	// Flows is the number of cross-rank message arrows in the trace;
	// EdgeLatency their latency distribution (nil without flows).
	Flows       int                `json:"flows"`
	EdgeLatency *HistogramSnapshot `json:"edge_latency,omitempty"`
}

// BuildReport computes the run report over a trace. offsets are the
// tile-space dependence offsets as for CriticalPath; topK bounds the
// straggler list (<=0 means 5).
func BuildReport(tr *Trace, offsets [][]int64, topK int) (*RunReport, error) {
	if topK <= 0 {
		topK = 5
	}
	rep := &RunReport{MakespanSeconds: tr.Makespan().Seconds()}
	byNode := map[int32]*RankBreakdown{}
	get := func(node int32) *RankBreakdown {
		b := byNode[node]
		if b == nil {
			b = &RankBreakdown{Node: node}
			byNode[node] = b
		}
		return b
	}
	type tileState struct {
		node                    int32
		ready, claim, kernelEnd int64
		haveReady, haveClaim    bool
		haveEnd                 bool
	}
	tiles := map[string]*tileState{}
	tile := func(id string) *tileState {
		t := tiles[id]
		if t == nil {
			t = &tileState{}
			tiles[id] = t
		}
		return t
	}
	for _, e := range tr.Events {
		sec := float64(e.Dur) / 1e9
		switch e.Kind {
		case KKernel:
			b := get(e.Node)
			b.Tiles++
			b.ComputeSeconds += sec
			if e.Tile != "" {
				t := tile(e.Tile)
				t.node = e.Node
				if !t.haveEnd || e.End() > t.kernelEnd {
					t.kernelEnd = e.End()
					t.haveEnd = true
				}
			}
		case KUnpack:
			get(e.Node).ComputeSeconds += sec
		case KPack, KSend:
			get(e.Node).CommSeconds += sec
		case KStall:
			get(e.Node).StallSeconds += sec
		case KIdle:
			get(e.Node).IdleSeconds += sec
		case KReady:
			if e.Tile != "" {
				t := tile(e.Tile)
				if !t.haveReady || e.Start < t.ready {
					t.ready = e.Start
					t.haveReady = true
				}
			}
		case KPop:
			if e.Tile != "" {
				t := tile(e.Tile)
				if !t.haveClaim || e.Start < t.claim {
					t.claim = e.Start
					t.haveClaim = true
				}
			}
		}
	}
	// KPack spans enclose the stall time of their sends; count stall
	// separately, not twice.
	for _, b := range byNode {
		if b.CommSeconds > b.StallSeconds {
			b.CommSeconds -= b.StallSeconds
		}
	}
	var sumBusy, maxBusy float64
	for _, b := range byNode {
		rep.Ranks = append(rep.Ranks, *b)
		busy := b.BusySeconds()
		sumBusy += busy
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	sort.Slice(rep.Ranks, func(i, j int) bool { return rep.Ranks[i].Node < rep.Ranks[j].Node })
	if len(rep.Ranks) > 0 && sumBusy > 0 {
		rep.ImbalanceRatio = maxBusy * float64(len(rep.Ranks)) / sumBusy
	}
	for id, t := range tiles {
		if !t.haveReady || !t.haveEnd {
			continue
		}
		s := Straggler{Tile: id, Node: t.node}
		claim := t.claim
		if !t.haveClaim || claim < t.ready {
			claim = t.ready
		}
		s.WaitSeconds = float64(claim-t.ready) / 1e9
		s.ExecSeconds = float64(t.kernelEnd-claim) / 1e9
		s.TotalSeconds = float64(t.kernelEnd-t.ready) / 1e9
		rep.Stragglers = append(rep.Stragglers, s)
	}
	sort.Slice(rep.Stragglers, func(i, j int) bool {
		if rep.Stragglers[i].TotalSeconds != rep.Stragglers[j].TotalSeconds {
			return rep.Stragglers[i].TotalSeconds > rep.Stragglers[j].TotalSeconds
		}
		return rep.Stragglers[i].Tile < rep.Stragglers[j].Tile
	})
	if len(rep.Stragglers) > topK {
		rep.Stragglers = rep.Stragglers[:topK]
	}
	rep.Flows = len(tr.Flows)
	if len(tr.Flows) > 0 {
		h := NewHistogram()
		for _, fl := range tr.Flows {
			h.ObserveNs(fl.LatencyNs())
		}
		snap := h.Snapshot()
		rep.EdgeLatency = &snap
	}
	if len(offsets) > 0 {
		cp, err := CriticalPath(tr, offsets)
		if err != nil {
			return nil, err
		}
		rep.CritPath = cp
	}
	return rep, nil
}

// WriteText renders the report for terminals.
func (rep *RunReport) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "run report: makespan %v, %d ranks, %d cross-rank edges\n",
		time.Duration(rep.MakespanSeconds*1e9).Round(time.Microsecond), len(rep.Ranks), rep.Flows)
	fmt.Fprintf(w, "  %-6s %8s %12s %12s %12s %12s %12s\n",
		"rank", "tiles", "busy", "compute", "comm", "stall", "idle")
	for _, b := range rep.Ranks {
		fmt.Fprintf(w, "  %-6d %8d %12s %12s %12s %12s %12s\n",
			b.Node, b.Tiles,
			fmtSec(b.BusySeconds()), fmtSec(b.ComputeSeconds), fmtSec(b.CommSeconds),
			fmtSec(b.StallSeconds), fmtSec(b.IdleSeconds))
	}
	fmt.Fprintf(w, "  load imbalance ratio: %.3f (max busy / mean busy)\n", rep.ImbalanceRatio)
	if rep.EdgeLatency != nil {
		fmt.Fprintf(w, "  edge latency: p50 <= %s, p95 <= %s, p99 <= %s over %d edges\n",
			fmtSec(rep.EdgeLatency.Quantile(0.50)), fmtSec(rep.EdgeLatency.Quantile(0.95)),
			fmtSec(rep.EdgeLatency.Quantile(0.99)), rep.EdgeLatency.Count)
	}
	if len(rep.Stragglers) > 0 {
		fmt.Fprintf(w, "  top straggler tiles (ready -> done):\n")
		for _, s := range rep.Stragglers {
			fmt.Fprintf(w, "    tile %-12s rank %-3d total %s (wait %s + exec %s)\n",
				s.Tile, s.Node, fmtSec(s.TotalSeconds), fmtSec(s.WaitSeconds), fmtSec(s.ExecSeconds))
		}
	}
	if rep.CritPath != nil {
		fmt.Fprintf(w, "  %s\n", rep.CritPath.String())
	}
	return nil
}

func fmtSec(s float64) string {
	return time.Duration(s * 1e9).Round(time.Microsecond).String()
}
