// Aggregate runtime metrics derived from a trace, exported in the
// Prometheus text exposition format (version 0.0.4). This is the
// compact counterpart of the full timeline: what a scrape endpoint or a
// benchmark harness stores per run.

package obs

import (
	"fmt"
	"io"
	"sort"
)

// NodeMetrics are the per-node aggregates of one traced run.
type NodeMetrics struct {
	Node             int32   `json:"node"`
	TilesExecuted    int64   `json:"tiles_executed"`
	KernelSeconds    float64 `json:"kernel_seconds"`
	UnpackSeconds    float64 `json:"unpack_seconds"`
	PackSeconds      float64 `json:"pack_seconds"`
	IdleSeconds      float64 `json:"idle_seconds"`
	SendStallSeconds float64 `json:"send_stall_seconds"`
	EdgesSent        int64   `json:"edges_sent"`
	EdgesRecv        int64   `json:"edges_recv"`
	ElemsSent        int64   `json:"elems_sent"`
	// ElemsRecv and BytesRecv are the receive-side counterparts of
	// ElemsSent/BytesSent, folded from KRecv events.
	ElemsRecv int64 `json:"elems_recv"`
	BytesRecv int64 `json:"bytes_recv"`
	// BytesSent is the payload volume of sent edges (8 bytes per
	// float64 element). It is derived from the same KSend trace events
	// on every transport; the TCP transport additionally counts exact
	// frame bytes (tcp.Transport.Bytes), which exceed this figure by
	// the frame and metadata overhead documented in docs/TRANSPORT.md.
	BytesSent        int64  `json:"bytes_sent"`
	PendingEdgesPeak int64  `json:"pending_edges_peak"`
	// Steals and LocalPops split tile claims by origin, folded from KPop
	// events (Val 1 = taken from another worker's shard, 0 = the popping
	// worker's own). QueueDepthPeak is the highest sampled ready-queue
	// depth (KQueueDepth events) across the node's shards.
	Steals         int64  `json:"steals"`
	LocalPops      int64  `json:"local_pops"`
	QueueDepthPeak int64  `json:"queue_depth_peak"`
	EventsDropped  uint64 `json:"events_dropped"`
	// CheckpointBytes is the total encoded size of fault-tolerance
	// checkpoints written (KCheckpoint events); Checkpoints counts them.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	Checkpoints     int64 `json:"checkpoints"`
	// HeartbeatMisses and PeerRestarts are the transport's recovery
	// counters, sampled at the end of a distributed run (KHeartbeatMiss
	// / KPeerRestart events carry the cumulative value).
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	PeerRestarts    int64 `json:"peer_restarts"`
}

// Metrics are the whole-run aggregates.
type Metrics struct {
	MakespanSeconds float64       `json:"makespan_seconds"`
	Nodes           []NodeMetrics `json:"nodes"`
	// EdgeLatency is the distribution of cross-rank edge latencies from
	// the merged trace's flow events (dp_edge_latency_seconds); nil when
	// the trace has no flows.
	EdgeLatency *HistogramSnapshot `json:"edge_latency,omitempty"`
}

// Metrics folds the trace into per-node aggregates.
func (tr *Trace) Metrics() *Metrics {
	m := &Metrics{MakespanSeconds: tr.Makespan().Seconds()}
	byNode := map[int32]*NodeMetrics{}
	get := func(node int32) *NodeMetrics {
		nm := byNode[node]
		if nm == nil {
			nm = &NodeMetrics{Node: node}
			byNode[node] = nm
		}
		return nm
	}
	for _, e := range tr.Events {
		nm := get(e.Node)
		sec := float64(e.Dur) / 1e9
		switch e.Kind {
		case KKernel:
			nm.TilesExecuted++
			nm.KernelSeconds += sec
		case KUnpack:
			nm.UnpackSeconds += sec
		case KPack:
			nm.PackSeconds += sec
		case KIdle:
			nm.IdleSeconds += sec
		case KStall:
			nm.SendStallSeconds += sec
		case KSend:
			nm.EdgesSent++
			nm.ElemsSent += e.Val
			nm.BytesSent += 8 * e.Val
		case KRecv:
			nm.EdgesRecv++
			nm.ElemsRecv += e.Val
			nm.BytesRecv += 8 * e.Val
		case KPending:
			if e.Val > nm.PendingEdgesPeak {
				nm.PendingEdgesPeak = e.Val
			}
		case KPop:
			if e.Val == 1 {
				nm.Steals++
			} else {
				nm.LocalPops++
			}
		case KQueueDepth:
			if e.Val > nm.QueueDepthPeak {
				nm.QueueDepthPeak = e.Val
			}
		case KCheckpoint:
			nm.Checkpoints++
			nm.CheckpointBytes += e.Val
		case KHeartbeatMiss:
			if e.Val > nm.HeartbeatMisses {
				nm.HeartbeatMisses = e.Val
			}
		case KPeerRestart:
			if e.Val > nm.PeerRestarts {
				nm.PeerRestarts = e.Val
			}
		}
	}
	for _, l := range tr.Lanes {
		get(l.Node).EventsDropped += l.Dropped
	}
	for _, nm := range byNode {
		m.Nodes = append(m.Nodes, *nm)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Node < m.Nodes[j].Node })
	if len(tr.Flows) > 0 {
		h := NewHistogram()
		for _, fl := range tr.Flows {
			h.ObserveNs(fl.LatencyNs())
		}
		snap := h.Snapshot()
		m.EdgeLatency = &snap
	}
	return m
}

// promFamily describes one exported metric family.
type promFamily struct {
	name, typ, help string
	val             func(nm *NodeMetrics) any
}

var promFamilies = []promFamily{
	{"dp_tiles_executed_total", "counter", "Tiles executed (kernel events) per node.",
		func(n *NodeMetrics) any { return n.TilesExecuted }},
	{"dp_kernel_seconds_total", "counter", "Seconds spent in the user kernel per node.",
		func(n *NodeMetrics) any { return n.KernelSeconds }},
	{"dp_unpack_seconds_total", "counter", "Seconds spent unpacking received edges per node.",
		func(n *NodeMetrics) any { return n.UnpackSeconds }},
	{"dp_pack_seconds_total", "counter", "Seconds spent packing and delivering outgoing edges per node.",
		func(n *NodeMetrics) any { return n.PackSeconds }},
	{"dp_idle_seconds_total", "counter", "Seconds workers waited with no ready tile per node.",
		func(n *NodeMetrics) any { return n.IdleSeconds }},
	{"dp_send_stall_seconds_total", "counter", "Seconds workers blocked in sends on exhausted buffers per node.",
		func(n *NodeMetrics) any { return n.SendStallSeconds }},
	{"dp_edges_sent_total", "counter", "Remote edge messages sent per node.",
		func(n *NodeMetrics) any { return n.EdgesSent }},
	{"dp_edges_recv_total", "counter", "Remote edge messages received per node.",
		func(n *NodeMetrics) any { return n.EdgesRecv }},
	{"dp_edge_elems_sent_total", "counter", "Float64 elements sent in remote edges per node.",
		func(n *NodeMetrics) any { return n.ElemsSent }},
	{"dp_edge_bytes_sent_total", "counter", "Payload bytes sent in remote edges per node (8 per element; excludes framing).",
		func(n *NodeMetrics) any { return n.BytesSent }},
	{"dp_edge_elems_recv_total", "counter", "Float64 elements received in remote edges per node.",
		func(n *NodeMetrics) any { return n.ElemsRecv }},
	{"dp_edge_bytes_recv_total", "counter", "Payload bytes received in remote edges per node (8 per element; excludes framing).",
		func(n *NodeMetrics) any { return n.BytesRecv }},
	{"dp_pending_edges_peak", "gauge", "Peak sampled pending-edge count per node (Figure 4 quantity).",
		func(n *NodeMetrics) any { return n.PendingEdgesPeak }},
	{"dp_steals_total", "counter", "Tiles claimed from another worker's ready-queue shard, per node.",
		func(n *NodeMetrics) any { return n.Steals }},
	{"dp_local_pops_total", "counter", "Tiles claimed from the popping worker's own shard, per node.",
		func(n *NodeMetrics) any { return n.LocalPops }},
	{"dp_ready_queue_depth_peak", "gauge", "Peak sampled ready-queue depth across a node's shards.",
		func(n *NodeMetrics) any { return n.QueueDepthPeak }},
	{"dp_trace_events_dropped_total", "counter", "Trace events lost to ring-buffer overwrite per node.",
		func(n *NodeMetrics) any { return n.EventsDropped }},
	{"dp_checkpoint_bytes_total", "counter", "Bytes written to fault-tolerance checkpoints per node.",
		func(n *NodeMetrics) any { return n.CheckpointBytes }},
	{"dp_heartbeat_misses_total", "counter", "Heartbeat intervals a peer went silent past the miss threshold, per node.",
		func(n *NodeMetrics) any { return n.HeartbeatMisses }},
	{"dp_peer_restarts_total", "counter", "Peers that died and successfully rejoined this node's transport.",
		func(n *NodeMetrics) any { return n.PeerRestarts }},
}

// WritePrometheus writes the metrics in the Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# HELP dp_run_makespan_seconds End-to-end traced run time.\n"+
			"# TYPE dp_run_makespan_seconds gauge\n"+
			"dp_run_makespan_seconds %s\n", promNum(m.MakespanSeconds)); err != nil {
		return err
	}
	for _, f := range promFamilies {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for i := range m.Nodes {
			nm := &m.Nodes[i]
			if _, err := fmt.Fprintf(w, "%s{node=\"%d\"} %s\n", f.name, nm.Node, promNum(f.val(nm))); err != nil {
				return err
			}
		}
	}
	if m.EdgeLatency != nil {
		if err := m.EdgeLatency.WritePrometheus(w,
			"dp_edge_latency_seconds", "Cross-rank edge latency (send start to arrival, clock-aligned).", ""); err != nil {
			return err
		}
	}
	return nil
}

func promNum(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%d", x)
	}
}
